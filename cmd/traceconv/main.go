// Command traceconv records synthetic workloads into the repository's trace
// file format, inspects existing trace files, and works with the
// differential oracle: replay runs a trace file through an oracle-checked
// simulation and prints any divergences; minimize shrinks a divergence-
// reproducing trace to a small replayable regression file. The format (one
// fixed 44-byte record per micro-op, documented in internal/trace/source.go)
// is the bridge for driving the simulator from real traces: convert the
// foreign trace to this format and replay it with srlsim or the library's
// RunFromSource.
//
//	traceconv record -suite SFP2K -n 1000000 -o sfp2k.srlt
//	traceconv info sfp2k.srlt
//	traceconv replay -design srl -run 8000 bug.srlt
//	traceconv minimize -design srl -run 8000 -o min.srlt bug.srlt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"srlproc"
	"srlproc/internal/check"
	"srlproc/internal/core"
	"srlproc/internal/isa"
	"srlproc/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		log.Fatal("usage: traceconv record|info|replay|minimize ...")
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "minimize":
		minimize(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	suite := fs.String("suite", "SINT2K", "benchmark suite")
	n := fs.Uint64("n", 1_000_000, "micro-ops to record")
	seed := fs.Uint64("seed", 1, "workload seed")
	out := fs.String("o", "trace.srlt", "output file")
	fs.Parse(args)

	var su srlproc.Suite
	found := false
	for _, s := range srlproc.AllSuites() {
		if strings.EqualFold(s.String(), *suite) {
			su, found = s, true
		}
	}
	if !found {
		log.Fatalf("unknown suite %q", *suite)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := srlproc.RecordTrace(f, srlproc.NewSyntheticSource(su, *seed), *n); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d %s micro-ops to %s\n", *n, su, *out)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	n := fs.Uint64("n", 0, "inspect at most n records (0 = first pass only)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: traceconv info <file>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	records := uint64(st.Size()-8) / 44
	limit := records
	if *n > 0 && *n < limit {
		limit = *n
	}
	r, err := srlproc.NewTraceReader(f)
	if err != nil {
		log.Fatal(err)
	}
	var loads, stores, branches, fwd, taken uint64
	for i := uint64(0); i < limit; i++ {
		u := r.Next()
		switch u.Class {
		case isa.Load:
			loads++
			if u.MemSeq != 0 {
				fwd++
			}
		case isa.Store:
			stores++
		case isa.Branch:
			branches++
			if u.Taken {
				taken++
			}
		}
	}
	fmt.Printf("%s: %d records (%d inspected)\n", fs.Arg(0), records, limit)
	pct := func(x uint64) float64 { return 100 * float64(x) / float64(limit) }
	fmt.Printf("  loads %.1f%%  stores %.1f%%  branches %.1f%%\n", pct(loads), pct(stores), pct(branches))
	if loads > 0 {
		fmt.Printf("  store-forwarding loads: %.1f%% of loads\n", 100*float64(fwd)/float64(loads))
	}
	if branches > 0 {
		fmt.Printf("  branch taken rate: %.1f%%\n", 100*float64(taken)/float64(branches))
	}
}

// checkFlags registers the design-point flags shared by replay and
// minimize and returns a builder that assembles the oracle-checked Config
// after fs.Parse.
func checkFlags(fs *flag.FlagSet) func() (core.Config, trace.Suite) {
	design := fs.String("design", "srl", "store design: baseline|large-stq|hier|srl|filtered")
	suite := fs.String("suite", "SINT2K", "benchmark suite (selects the trace profile)")
	seed := fs.Uint64("seed", 1, "simulator seed")
	warmup := fs.Uint64("warmup", 0, "warmup uops before the measured region")
	run := fs.Uint64("run", 8000, "measured uops")
	stq := fs.Int("stq", 0, "STQ size override (0 = design default)")
	srlSize := fs.Int("srl-size", 0, "SRL size override (0 = design default)")
	fault := fs.Bool("fault-invert-fwd-age", false, "seed the inverted forwarding-age bug")
	snoops := fs.Bool("snoops", false, "enable external snoop injection")
	return func() (core.Config, trace.Suite) {
		var d core.StoreDesign
		switch strings.ToLower(*design) {
		case "baseline":
			d = core.DesignBaseline
		case "large-stq", "largestq":
			d = core.DesignLargeSTQ
		case "hier", "hierarchical":
			d = core.DesignHierarchical
		case "srl":
			d = core.DesignSRL
		case "filtered", "filtered-stq":
			d = core.DesignFilteredSTQ
		default:
			if err := d.UnmarshalText([]byte(*design)); err != nil {
				log.Fatal(err)
			}
		}
		cfg := core.DefaultConfig(d)
		cfg.Seed = *seed
		cfg.WarmupUops = *warmup
		cfg.RunUops = *run
		if *stq > 0 {
			cfg.STQSize = *stq
		}
		if *srlSize > 0 {
			cfg.SRLSize = *srlSize
		}
		cfg.Check = true
		cfg.FaultInvertFwdAge = *fault
		cfg.SnoopsEnabled = *snoops
		su, found := trace.Suite(0), false
		for _, s := range trace.AllSuites() {
			if strings.EqualFold(s.String(), *suite) {
				su, found = s, true
			}
		}
		if !found {
			log.Fatalf("unknown suite %q", *suite)
		}
		return cfg, su
	}
}

func readTrace(path string) []isa.Uop {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	uops, err := trace.ReadRecords(f)
	if err != nil {
		log.Fatal(err)
	}
	return uops
}

// replay runs a trace file through an oracle-checked simulation and prints
// every divergence. Exit status 1 signals that divergences were found, so
// scripts can assert either direction.
func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	build := checkFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: traceconv replay [flags] <file.srlt>")
	}
	cfg, su := build()
	uops := readTrace(fs.Arg(0))
	res, err := check.RunChecked(cfg, su, uops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d uops, %d cycles, %d divergences\n", fs.Arg(0), len(uops), res.Cycles, res.DivergenceCount)
	for i, d := range res.Divergences {
		fmt.Printf("  [%d] %s\n", i, d)
	}
	if res.DivergenceCount > 0 {
		os.Exit(1)
	}
}

// minimize shrinks a divergence-reproducing trace file to a minimal
// replayable regression trace under the same design point.
func minimize(args []string) {
	fs := flag.NewFlagSet("minimize", flag.ExitOnError)
	build := checkFlags(fs)
	out := fs.String("o", "min.srlt", "output file for the minimized trace")
	budget := fs.Int("budget", check.DefaultMinimizeBudget, "max oracle-checked runs to spend")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: traceconv minimize [flags] <file.srlt>")
	}
	cfg, su := build()
	uops := readTrace(fs.Arg(0))
	min, ok := check.Minimize(cfg, su, uops, *budget)
	if !ok {
		log.Fatalf("%s does not reproduce any divergence under this design point", fs.Arg(0))
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteRecords(f, min); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimized %d uops -> %d, wrote %s\n", len(uops), len(min), *out)
}
