// Command traceconv records synthetic workloads into the repository's trace
// file format and inspects existing trace files. The format (one fixed
// 44-byte record per micro-op, documented in internal/trace/source.go) is
// the bridge for driving the simulator from real traces: convert the
// foreign trace to this format and replay it with srlsim or the library's
// RunFromSource.
//
//	traceconv record -suite SFP2K -n 1000000 -o sfp2k.srlt
//	traceconv info sfp2k.srlt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"srlproc"
	"srlproc/internal/isa"
)

func main() {
	if len(os.Args) < 2 {
		log.Fatal("usage: traceconv record|info ...")
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	suite := fs.String("suite", "SINT2K", "benchmark suite")
	n := fs.Uint64("n", 1_000_000, "micro-ops to record")
	seed := fs.Uint64("seed", 1, "workload seed")
	out := fs.String("o", "trace.srlt", "output file")
	fs.Parse(args)

	var su srlproc.Suite
	found := false
	for _, s := range srlproc.AllSuites() {
		if strings.EqualFold(s.String(), *suite) {
			su, found = s, true
		}
	}
	if !found {
		log.Fatalf("unknown suite %q", *suite)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := srlproc.RecordTrace(f, srlproc.NewSyntheticSource(su, *seed), *n); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d %s micro-ops to %s\n", *n, su, *out)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	n := fs.Uint64("n", 0, "inspect at most n records (0 = first pass only)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: traceconv info <file>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	records := uint64(st.Size()-8) / 44
	limit := records
	if *n > 0 && *n < limit {
		limit = *n
	}
	r, err := srlproc.NewTraceReader(f)
	if err != nil {
		log.Fatal(err)
	}
	var loads, stores, branches, fwd, taken uint64
	for i := uint64(0); i < limit; i++ {
		u := r.Next()
		switch u.Class {
		case isa.Load:
			loads++
			if u.MemSeq != 0 {
				fwd++
			}
		case isa.Store:
			stores++
		case isa.Branch:
			branches++
			if u.Taken {
				taken++
			}
		}
	}
	fmt.Printf("%s: %d records (%d inspected)\n", fs.Arg(0), records, limit)
	pct := func(x uint64) float64 { return 100 * float64(x) / float64(limit) }
	fmt.Printf("  loads %.1f%%  stores %.1f%%  branches %.1f%%\n", pct(loads), pct(stores), pct(branches))
	if loads > 0 {
		fmt.Printf("  store-forwarding loads: %.1f%% of loads\n", 100*float64(fwd)/float64(loads))
	}
	if branches > 0 {
		fmt.Printf("  branch taken rate: %.1f%%\n", 100*float64(taken)/float64(branches))
	}
}
