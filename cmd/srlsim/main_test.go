package main

import (
	"bytes"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"srlproc/internal/cli"
)

// The CLI tests re-exec the test binary as the real srlsim: TestMain
// intercepts the child invocation (marked by SRLSIM_ARGV) and runs main's
// run() with the requested argv, so the tests observe true process exit
// codes, including the signal paths.
func TestMain(m *testing.M) {
	if argv, ok := os.LookupEnv("SRLSIM_ARGV"); ok {
		os.Args = append([]string{"srlsim"}, splitArgv(argv)...)
		os.Exit(run())
	}
	os.Exit(m.Run())
}

// splitArgv splits on the unit separator so arguments may contain spaces.
func splitArgv(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "\x1f")
}

func cliCmd(t *testing.T, args ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "SRLSIM_ARGV="+strings.Join(args, "\x1f"))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	return cmd, &stderr
}

func TestExitOK(t *testing.T) {
	cmd, stderr := cliCmd(t, "-design", "srl", "-suite", "SINT2K", "-uops", "2000", "-warmup", "500")
	cmd.Stdout = nil
	if err := cmd.Run(); err != nil {
		t.Fatalf("exit %v, stderr:\n%s", err, stderr)
	}
}

func TestExitUsage(t *testing.T) {
	cmd, stderr := cliCmd(t, "-design", "nope")
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != cli.Usage {
		t.Fatalf("exit %v, want %d; stderr:\n%s", err, cli.Usage, stderr)
	}
	if !strings.Contains(stderr.String(), "unknown design") {
		t.Fatalf("stderr: %q", stderr)
	}
}

// TestExitTimeout pins the timeout code: an expired -timeout must be
// distinguishable from a generic failure (exit 1) so callers can retry
// with a longer budget.
func TestExitTimeout(t *testing.T) {
	cmd, stderr := cliCmd(t, "-design", "srl", "-suite", "SFP2K",
		"-uops", "500000000", "-timeout", "200ms")
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != cli.Timeout {
		t.Fatalf("exit %v, want %d; stderr:\n%s", err, cli.Timeout, stderr)
	}
	if !strings.Contains(stderr.String(), "timed out") {
		t.Fatalf("stderr: %q", stderr)
	}
}

// TestExitInterrupt delivers a real SIGINT mid-simulation and asserts the
// shell convention 128+2. The signal handler must still be installed —
// every return path runs the NotifyContext stop func, but the run itself
// holds it until done.
func TestExitInterrupt(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("signal delivery is POSIX-only")
	}
	cmd, stderr := cliCmd(t, "-design", "srl", "-suite", "SFP2K", "-uops", "500000000")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The binary installs its handler within the first few milliseconds;
	// the job itself runs for minutes, so this lands mid-simulation.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != cli.Interrupt {
		t.Fatalf("exit %v, want %d; stderr:\n%s", err, cli.Interrupt, stderr)
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("stderr: %q", stderr)
	}
}
