// Command srlsim runs one simulation point — a store-processing design on
// a benchmark suite — and prints its statistics. It is the workhorse for
// interactive exploration; cmd/experiments regenerates the paper's full
// evaluation.
//
// Examples:
//
//	srlsim -design srl -suite SFP2K
//	srlsim -design hier -suite SERVER -uops 500000
//	srlsim -design large -stq 256 -suite WS -v
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"srlproc"
)

func main() {
	design := flag.String("design", "srl", "store design: baseline, large, hier, srl, filtered")
	suite := flag.String("suite", "SINT2K", "benchmark suite: SFP2K, SINT2K, WEB, MM, PROD, SERVER, WS")
	stq := flag.Int("stq", 0, "store queue size for -design large (default 1024)")
	uops := flag.Uint64("uops", 250_000, "measured micro-ops")
	warm := flag.Uint64("warmup", 50_000, "warmup micro-ops")
	seed := flag.Uint64("seed", 1, "workload seed")
	timeout := flag.Duration("timeout", 0, "abort the simulation after this long (e.g. 2m); 0 = no limit")
	noLCF := flag.Bool("no-lcf", false, "disable the loose check filter (srl)")
	noIF := flag.Bool("no-indexed-fwd", false, "disable indexed forwarding (srl)")
	noFC := flag.Bool("no-fc", false, "use the data cache for temporary updates instead of the FC (srl)")
	verbose := flag.Bool("v", false, "print extra counters")
	asJSON := flag.Bool("json", false, "emit results as JSON")
	flag.Parse()

	// Ctrl-C / SIGTERM cancels the run instead of killing it mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var d srlproc.StoreDesign
	switch strings.ToLower(*design) {
	case "baseline":
		d = srlproc.DesignBaseline
	case "large", "ideal":
		d = srlproc.DesignLargeSTQ
	case "hier", "hierarchical":
		d = srlproc.DesignHierarchical
	case "srl":
		d = srlproc.DesignSRL
	case "filtered":
		d = srlproc.DesignFilteredSTQ
	default:
		log.Fatalf("unknown design %q", *design)
	}

	var su srlproc.Suite
	found := false
	for _, s := range srlproc.AllSuites() {
		if strings.EqualFold(s.String(), *suite) {
			su = s
			found = true
			break
		}
	}
	if !found {
		log.Fatalf("unknown suite %q", *suite)
	}

	cfg := srlproc.DefaultConfig(d)
	cfg.RunUops = *uops
	cfg.WarmupUops = *warm
	cfg.Seed = *seed
	if d == srlproc.DesignLargeSTQ || d == srlproc.DesignFilteredSTQ {
		cfg.STQSize = 1024
		if *stq > 0 {
			cfg.STQSize = *stq
		}
	}
	if *noLCF {
		cfg.UseLCF = false
		cfg.UseIndexedFwd = false
	}
	if *noIF {
		cfg.UseIndexedFwd = false
	}
	if *noFC {
		cfg.UseFC = false
	}

	res, err := srlproc.RunContext(ctx, cfg, su)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Printf("interrupted: %v", err)
			os.Exit(130)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("timed out after %v: %v", *timeout, err)
		}
		log.Fatal(err)
	}
	if *asJSON {
		out := map[string]interface{}{
			"design": d.String(), "suite": su.String(),
			"cycles": res.Cycles, "uops": res.Uops, "ipc": res.IPC(),
			"loads": res.Loads, "stores": res.Stores,
			"redoneStoresPct": res.PctRedoneStores(),
			"missDepUopsPct":  res.PctMissDependentUops(),
			"srlStallsPer10k": res.SRLStallsPer10K(),
			"srlOccupiedPct":  res.PctTimeSRLOccupied(),
			"restarts":        res.Restarts, "branchMispredicts": res.BranchMispredicts,
			"memDepViolations": res.MemDepViolations, "snoopViolations": res.SnoopViolations,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(res)
	if d == srlproc.DesignSRL {
		fmt.Printf("  SRL: redone=%.1f%% stalls/10k=%.1f occupied=%.1f%%\n",
			res.PctRedoneStores(), res.SRLStallsPer10K(), res.PctTimeSRLOccupied())
	}
	if *verbose && res.Counters != nil {
		fmt.Fprintln(os.Stdout, res.Counters)
	}
}
