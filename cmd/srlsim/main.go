// Command srlsim runs one simulation point — a store-processing design on
// a benchmark suite — and prints its statistics. It is the workhorse for
// interactive exploration; cmd/experiments regenerates the paper's full
// evaluation.
//
// Examples:
//
//	srlsim -design srl -suite SFP2K
//	srlsim -design hier -suite SERVER -uops 500000
//	srlsim -design large -stq 256 -suite WS -v
//	srlsim -design srl -suite SFP2K -json
//	srlsim -design srl -suite WEB -timeline ts.csv -trace-out trace.json
//
// Exit codes: 0 success, 1 runtime error, 2 usage error, 124 when
// -timeout expired, 130 when interrupted (Ctrl-C / SIGTERM).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"srlproc"
	"srlproc/internal/cli"
)

// main delegates to run so that deferred cleanup — most importantly the
// signal.NotifyContext stop function — executes on every return path.
// os.Exit and log.Fatal inside run would skip those defers.
func main() { os.Exit(run()) }

func run() int {
	design := flag.String("design", "srl", "store design: baseline, large, hier, srl, filtered")
	suite := flag.String("suite", "SINT2K", "benchmark suite: SFP2K, SINT2K, WEB, MM, PROD, SERVER, WS")
	stq := flag.Int("stq", 0, "store queue size for -design large (default 1024)")
	uops := flag.Uint64("uops", 250_000, "measured micro-ops")
	warm := flag.Uint64("warmup", 50_000, "warmup micro-ops")
	seed := flag.Uint64("seed", 1, "workload seed")
	timeout := flag.Duration("timeout", 0, "abort the simulation after this long (e.g. 2m); 0 = no limit")
	noLCF := flag.Bool("no-lcf", false, "disable the loose check filter (srl)")
	noIF := flag.Bool("no-indexed-fwd", false, "disable indexed forwarding (srl)")
	noFC := flag.Bool("no-fc", false, "use the data cache for temporary updates instead of the FC (srl)")
	noSkip := flag.Bool("noskip", false, "disable event-driven cycle skipping (bit-identical results, slower wall clock)")
	verbose := flag.Bool("v", false, "print extra counters")
	asJSON := flag.Bool("json", false, "emit the full results document as JSON")
	asCSV := flag.Bool("csv", false, "emit the results as CSV (header + one row)")
	timelineOut := flag.String("timeline", "", "write the cycle-window timeline as CSV to this file ('-' = stdout); enables sampling")
	traceOut := flag.String("trace-out", "", "write the event trace in Chrome trace format to this file ('-' = stdout); enables tracing")
	sampleEvery := flag.Uint64("sample-every", 0, "timeline sampling window in cycles (default 4096 with -timeline)")
	flag.Parse()

	usage := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "srlsim: "+format+"\n", args...)
		return cli.Usage
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "srlsim: "+format+"\n", args...)
		return cli.Err
	}

	if *asJSON && *asCSV {
		return usage("use -json or -csv, not both")
	}
	if *timelineOut == "-" && *traceOut == "-" {
		return usage("-timeline and -trace-out cannot both write to stdout")
	}
	if (*timelineOut == "-" || *traceOut == "-") && (*asJSON || *asCSV) {
		return usage("-timeline/-trace-out '-' conflicts with -json/-csv on stdout; write to a file instead")
	}
	// When a streaming export owns stdout, the text report moves to stderr
	// so the exported document stays parseable.
	reportOut := io.Writer(os.Stdout)
	if *timelineOut == "-" || *traceOut == "-" {
		reportOut = os.Stderr
	}

	// Ctrl-C / SIGTERM cancels the run instead of killing it mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var d srlproc.StoreDesign
	switch strings.ToLower(*design) {
	case "baseline":
		d = srlproc.DesignBaseline
	case "large", "ideal":
		d = srlproc.DesignLargeSTQ
	case "hier", "hierarchical":
		d = srlproc.DesignHierarchical
	case "srl":
		d = srlproc.DesignSRL
	case "filtered":
		d = srlproc.DesignFilteredSTQ
	default:
		return usage("unknown design %q", *design)
	}

	var su srlproc.Suite
	found := false
	for _, s := range srlproc.AllSuites() {
		if strings.EqualFold(s.String(), *suite) {
			su = s
			found = true
			break
		}
	}
	if !found {
		return usage("unknown suite %q", *suite)
	}

	cfg := srlproc.DefaultConfig(d)
	cfg.RunUops = *uops
	cfg.WarmupUops = *warm
	cfg.Seed = *seed
	if d == srlproc.DesignLargeSTQ || d == srlproc.DesignFilteredSTQ {
		cfg.STQSize = 1024
		if *stq > 0 {
			cfg.STQSize = *stq
		}
	}
	if *noLCF {
		cfg.UseLCF = false
		cfg.UseIndexedFwd = false
	}
	if *noIF {
		cfg.UseIndexedFwd = false
	}
	if *noFC {
		cfg.UseFC = false
	}
	if *noSkip {
		cfg.EventSkip = false
	}
	if *timelineOut != "" || *sampleEvery > 0 {
		cfg.Obs.SampleEvery = *sampleEvery
		if cfg.Obs.SampleEvery == 0 {
			cfg.Obs.SampleEvery = srlproc.DefaultObsConfig().SampleEvery
		}
	}
	if *traceOut != "" {
		cfg.Obs.TraceEvents = true
	}

	res, err := srlproc.RunContext(ctx, cfg, su)
	if err != nil {
		switch code := cli.ExitCode(err); code {
		case cli.Interrupt:
			fmt.Fprintf(os.Stderr, "srlsim: interrupted: %v\n", err)
			return code
		case cli.Timeout:
			fmt.Fprintf(os.Stderr, "srlsim: timed out after %v: %v\n", *timeout, err)
			return code
		default:
			return fail("%v", err)
		}
	}
	if *timelineOut != "" {
		if err := writeTo(*timelineOut, res.Timeline.WriteCSV); err != nil {
			return fail("-timeline: %v", err)
		}
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, func(w io.Writer) error {
			return res.Trace.WriteChromeTrace(w, res.Timeline)
		}); err != nil {
			return fail("-trace-out: %v", err)
		}
	}
	switch {
	case *asJSON:
		// Results.MarshalJSON emits every raw counter plus the derived
		// figures (ipc, redone-store percentages, ...), the typed metric
		// set, and the timeline/trace summary when observability is on.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return fail("%v", err)
		}
	case *asCSV:
		if err := res.WriteCSV(os.Stdout); err != nil {
			return fail("%v", err)
		}
	default:
		fmt.Fprint(reportOut, res)
		if d == srlproc.DesignSRL {
			fmt.Fprintf(reportOut, "  SRL: redone=%.1f%% stalls/10k=%.1f occupied=%.1f%%\n",
				res.PctRedoneStores(), res.SRLStallsPer10K(), res.PctTimeSRLOccupied())
		}
		if *verbose {
			for _, name := range res.ExtraNames() {
				fmt.Fprintf(reportOut, "%-40s %d\n", name, res.Extra(name))
			}
		}
	}
	return cli.OK
}

// writeTo opens path ("-" = stdout) and hands it to write.
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
