// Command benchjson converts `go test -bench` output into a stable,
// machine-readable JSON document, and compares two such documents for the
// CI benchmark-regression gate.
//
// Parse mode (default) reads benchmark text from stdin and writes JSON:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson -o BENCH_core.json
//
// Compare mode exits non-zero when a benchmark present in both documents
// regressed beyond the threshold on ns/op or allocs/op:
//
//	go run ./cmd/benchjson -compare -old BENCH_main.json -new BENCH_pr.json -threshold 5
//
// When a benchmark ran multiple times (go test -count=N), the minimum of
// each metric is kept: simulation workloads are deterministic, so the
// minimum is the least-noisy estimate of the true cost.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's recorded measurements. NsPerOp, BytesPerOp
// and AllocsPerOp come from -benchmem; Extra holds any custom
// b.ReportMetric units (e.g. cache-hits).
type Metrics struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Document is the BENCH_*.json schema: benchmark name (with the CPU-count
// suffix stripped) to metrics.
type Document struct {
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("o", "", "parse mode: output file (default stdout)")
		compare   = flag.Bool("compare", false, "compare two documents instead of parsing")
		oldPath   = flag.String("old", "", "compare mode: baseline document")
		newPath   = flag.String("new", "", "compare mode: candidate document")
		threshold = flag.Float64("threshold", 5, "compare mode: allowed regression in percent")
	)
	flag.Parse()

	if *compare {
		os.Exit(runCompare(os.Stdout, *oldPath, *newPath, *threshold))
	}
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(2)
	}
	b, _ := json.MarshalIndent(doc, "", "  ")
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
}

// stripCPUSuffix removes go test's trailing -<GOMAXPROCS> from a benchmark
// name so documents from machines with different core counts compare.
func stripCPUSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func parse(f *os.File) (*Document, error) {
	doc := &Document{Benchmarks: map[string]Metrics{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark lines are: Name N <value> <unit> [<value> <unit> ...]
		if len(fields) < 4 {
			continue
		}
		m := Metrics{NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			default:
				if m.Extra == nil {
					m.Extra = map[string]float64{}
				}
				m.Extra[unit] = v
			}
		}
		name := stripCPUSuffix(fields[0])
		if prev, ok := doc.Benchmarks[name]; ok {
			m = mergeMin(prev, m)
		}
		doc.Benchmarks[name] = m
	}
	return doc, sc.Err()
}

// mergeMin keeps the minimum of each metric across repeated runs
// (-1 marks a metric the run did not report).
func mergeMin(a, b Metrics) Metrics {
	minOf := func(x, y float64) float64 {
		if x < 0 {
			return y
		}
		if y < 0 || x < y {
			return x
		}
		return y
	}
	out := Metrics{
		NsPerOp:     minOf(a.NsPerOp, b.NsPerOp),
		BytesPerOp:  minOf(a.BytesPerOp, b.BytesPerOp),
		AllocsPerOp: minOf(a.AllocsPerOp, b.AllocsPerOp),
	}
	for _, src := range []map[string]float64{a.Extra, b.Extra} {
		for k, v := range src {
			if out.Extra == nil {
				out.Extra = map[string]float64{}
			}
			if cur, ok := out.Extra[k]; !ok || v < cur {
				out.Extra[k] = v
			}
		}
	}
	return out
}

func load(path string) (*Document, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// runCompare prints a per-benchmark delta table to w and returns 1 when
// any shared benchmark regressed beyond the threshold on ns/op or
// allocs/op. New or vanished benchmarks are reported but never fail the
// gate (the gate must not block adding or retiring benchmarks).
func runCompare(w io.Writer, oldPath, newPath string, threshold float64) int {
	oldDoc, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newDoc, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	names := make([]string, 0, len(newDoc.Benchmarks))
	for name := range newDoc.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		nw := newDoc.Benchmarks[name]
		od, ok := oldDoc.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "NEW    %-50s %12.0f ns/op %10.0f allocs/op\n", name, nw.NsPerOp, nw.AllocsPerOp)
			continue
		}
		nsBad, nsDelta := regressed(od.NsPerOp, nw.NsPerOp, threshold)
		alBad, alDelta := regressed(od.AllocsPerOp, nw.AllocsPerOp, threshold)
		status := "ok    "
		if nsBad || alBad {
			status = "REGRES"
			failed = true
		}
		fmt.Fprintf(w, "%s %-50s ns/op %12.0f -> %12.0f (%s)  allocs/op %10.0f -> %10.0f (%s)\n",
			status, name, od.NsPerOp, nw.NsPerOp, fmtDelta(nsDelta), od.AllocsPerOp, nw.AllocsPerOp, fmtDelta(alDelta))
	}
	gone := make([]string, 0)
	for name := range oldDoc.Benchmarks {
		if _, ok := newDoc.Benchmarks[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "GONE   %s\n", name)
	}
	if failed {
		fmt.Fprintf(w, "\nbenchmark regression beyond %.1f%% threshold\n", threshold)
		return 1
	}
	fmt.Fprintf(w, "\nno regressions beyond %.1f%% threshold\n", threshold)
	return 0
}

// fmtDelta renders a percent delta; NaN marks a delta that has no
// percentage form (a zero or degenerate baseline).
func fmtDelta(delta float64) string {
	if math.IsNaN(delta) {
		return "  n/a "
	}
	return fmt.Sprintf("%+6.1f%%", delta)
}

// regressed reports whether cur is worse than base by more than threshold
// percent, and the percent delta (NaN when no percentage exists). A zero
// baseline (the zero-allocation steady state) regresses on any increase:
// there is no percentage of zero. Degenerate rows — absent metrics
// (recorded as -1), zero-ns parses, or non-finite values from a corrupt
// document — never produce NaN/Inf percentages and never fail the gate on
// arithmetic artifacts alone.
func regressed(base, cur float64, threshold float64) (bool, float64) {
	if base < 0 || cur < 0 {
		return false, math.NaN() // metric absent on one side
	}
	if math.IsNaN(base) || math.IsInf(base, 0) || math.IsNaN(cur) || math.IsInf(cur, 0) {
		return false, math.NaN() // corrupt document; never gate on it
	}
	if base == 0 {
		return cur > 0, math.NaN()
	}
	delta := (cur - base) / base * 100
	return delta > threshold, delta
}
