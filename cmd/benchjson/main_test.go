package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRegressedDegenerateBaselines is the table-driven guard for the
// compare gate's arithmetic: zero-ns and missing-metric baselines must
// never produce NaN/Inf percentages or spurious gate failures.
func TestRegressedDegenerateBaselines(t *testing.T) {
	inf := math.Inf(1)
	for _, tc := range []struct {
		name      string
		base, cur float64
		threshold float64
		wantBad   bool
		wantNaN   bool // delta has no percentage form
		wantDelta float64
	}{
		{"normal regression", 100, 110, 5, true, false, 10},
		{"normal ok", 100, 104, 5, false, false, 4},
		{"improvement", 100, 50, 5, false, false, -50},
		{"zero baseline, still zero", 0, 0, 5, false, true, 0},
		{"zero baseline, any increase regresses", 0, 1, 5, true, true, 0},
		{"zero baseline, large increase regresses", 0, 1e9, 5, true, true, 0},
		{"missing baseline metric", -1, 100, 5, false, true, 0},
		{"missing current metric", 100, -1, 5, false, true, 0},
		{"both missing", -1, -1, 5, false, true, 0},
		{"NaN baseline never gates", math.NaN(), 100, 5, false, true, 0},
		{"NaN current never gates", 100, math.NaN(), 5, false, true, 0},
		{"Inf baseline never gates", inf, 100, 5, false, true, 0},
		{"Inf current never gates", 100, inf, 5, false, true, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bad, delta := regressed(tc.base, tc.cur, tc.threshold)
			if bad != tc.wantBad {
				t.Errorf("regressed(%v,%v) bad=%v want %v", tc.base, tc.cur, bad, tc.wantBad)
			}
			if math.IsInf(delta, 0) {
				t.Errorf("regressed(%v,%v) produced Inf delta", tc.base, tc.cur)
			}
			if tc.wantNaN {
				if !math.IsNaN(delta) {
					t.Errorf("regressed(%v,%v) delta=%v, want NaN (no percentage form)", tc.base, tc.cur, delta)
				}
			} else if delta != tc.wantDelta {
				t.Errorf("regressed(%v,%v) delta=%v want %v", tc.base, tc.cur, delta, tc.wantDelta)
			}
		})
	}
}

func TestFmtDeltaNeverNaN(t *testing.T) {
	if s := fmtDelta(math.NaN()); strings.Contains(s, "NaN") {
		t.Fatalf("fmtDelta(NaN) = %q", s)
	}
	if s := fmtDelta(12.5); s != " +12.5%" {
		t.Fatalf("fmtDelta(12.5) = %q", s)
	}
}

// writeDoc writes a compare document to a temp file.
func writeDoc(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCompareRows drives the whole gate over documents with
// zero-baseline, NEW and GONE rows and checks both the verdict and that
// no NaN/Inf leaks into the report.
func TestRunCompareRows(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", `{"benchmarks":{
		"BenchmarkSteady":  {"ns_per_op": 100, "bytes_per_op": 0, "allocs_per_op": 0},
		"BenchmarkZeroNs":  {"ns_per_op": 0,   "bytes_per_op": -1, "allocs_per_op": -1},
		"BenchmarkRetired": {"ns_per_op": 50,  "bytes_per_op": 8, "allocs_per_op": 1},
		"BenchmarkNoAlloc": {"ns_per_op": 10,  "bytes_per_op": -1, "allocs_per_op": -1}
	}}`)

	t.Run("clean", func(t *testing.T) {
		newPath := writeDoc(t, dir, "new_ok.json", `{"benchmarks":{
			"BenchmarkSteady":  {"ns_per_op": 102, "bytes_per_op": 0, "allocs_per_op": 0},
			"BenchmarkZeroNs":  {"ns_per_op": 0,   "bytes_per_op": -1, "allocs_per_op": -1},
			"BenchmarkNoAlloc": {"ns_per_op": 10,  "bytes_per_op": 16, "allocs_per_op": 2},
			"BenchmarkAdded":   {"ns_per_op": 999, "bytes_per_op": 10, "allocs_per_op": 3}
		}}`)
		var out strings.Builder
		if code := runCompare(&out, oldPath, newPath, 5); code != 0 {
			t.Fatalf("exit %d:\n%s", code, out.String())
		}
		report := out.String()
		// NEW and GONE rows are reported but never gate; a metric that
		// appears (allocs absent -> present) must not gate either.
		for _, want := range []string{"NEW    BenchmarkAdded", "GONE   BenchmarkRetired", "no regressions"} {
			if !strings.Contains(report, want) {
				t.Errorf("report missing %q:\n%s", want, report)
			}
		}
		for _, banned := range []string{"NaN", "Inf", "REGRES"} {
			if strings.Contains(report, banned) {
				t.Errorf("report contains %q:\n%s", banned, report)
			}
		}
	})

	t.Run("zero baseline regresses on any increase", func(t *testing.T) {
		newPath := writeDoc(t, dir, "new_alloc.json", `{"benchmarks":{
			"BenchmarkSteady": {"ns_per_op": 100, "bytes_per_op": 64, "allocs_per_op": 2}
		}}`)
		var out strings.Builder
		if code := runCompare(&out, oldPath, newPath, 5); code != 1 {
			t.Fatalf("zero-baseline alloc increase passed the gate (exit %d):\n%s", code, out.String())
		}
		if s := out.String(); strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
			t.Fatalf("report contains NaN/Inf:\n%s", s)
		}
	})

	t.Run("zero ns baseline alone never gates", func(t *testing.T) {
		newPath := writeDoc(t, dir, "new_zero.json", `{"benchmarks":{
			"BenchmarkZeroNs": {"ns_per_op": 0, "bytes_per_op": -1, "allocs_per_op": -1}
		}}`)
		var out strings.Builder
		if code := runCompare(&out, oldPath, newPath, 5); code != 0 {
			t.Fatalf("exit %d:\n%s", code, out.String())
		}
	})

	t.Run("missing document", func(t *testing.T) {
		var out strings.Builder
		if code := runCompare(&out, filepath.Join(dir, "nope.json"), oldPath, 5); code != 2 {
			t.Fatalf("missing file exit %d", code)
		}
	})
}

// TestParseAndMergeMin covers the parse path the documents come from,
// including the min-across-count merge and CPU-suffix stripping.
func TestParseAndMergeMin(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "bench.txt")
	raw := `goos: linux
BenchmarkCycleLoop-8   	   20000	      5000 ns/op	       0 B/op	       0 allocs/op
BenchmarkCycleLoop-8   	   20000	      4500 ns/op	      16 B/op	       1 allocs/op
BenchmarkExtra-8       	       1	       100 ns/op	       42.0 cache-hits
some unrelated line
`
	if err := os.WriteFile(tmp, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tmp)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	doc, err := parse(f)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := doc.Benchmarks["BenchmarkCycleLoop"]
	if !ok {
		t.Fatalf("CPU suffix not stripped: %v", doc.Benchmarks)
	}
	if m.NsPerOp != 4500 || m.BytesPerOp != 0 || m.AllocsPerOp != 0 {
		t.Fatalf("min-merge wrong: %+v", m)
	}
	if doc.Benchmarks["BenchmarkExtra"].Extra["cache-hits"] != 42 {
		t.Fatalf("extra metric lost: %+v", doc.Benchmarks["BenchmarkExtra"])
	}
}
