// Command srlserved runs the simulator as a long-lived HTTP service.
//
//	srlserved -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST -H 'Content-Type: application/json' localhost:8080/v1/simulate \
//	     -d '{"design":"srl","suite":"SINT2K","run_uops":40000,"warmup_uops":8000}'
//	curl -s -X POST -H 'Content-Type: application/json' localhost:8080/v1/sweep \
//	     -d '{"experiment":"table3","quick":true}'
//	curl -N -s -X POST -H 'Content-Type: application/json' localhost:8080/v1/sweep \
//	     -d '{"experiment":"fig6","quick":true,"stream":true}'
//
// The server executes jobs on the internal sweep worker pool with
// per-request deadlines, sheds load with 429 + Retry-After once its
// bounded queue is full, collapses retried identical requests onto the
// bounded memo cache, and exports /healthz and /metrics. With -store-dir
// the memo cache gains a persistent tier: results survive restarts (a
// restarted server answers repeated sweeps without simulating), persisted
// points are served by GET /v1/results/{fingerprint}, and GET
// /v1/store/stats reports the store counters.
//
// Cluster mode distributes sweeps across several srlserved processes:
//
//	srlserved -addr :8081 -worker            # worker 1
//	srlserved -addr :8082 -worker            # worker 2
//	srlserved -addr :8080 -workers 127.0.0.1:8081,127.0.0.1:8082
//
// The coordinator splits every /v1/sweep into per-point /v1/jobs RPCs
// routed by consistent hash of each point's fingerprint (so repeated
// sweeps hit the same workers' caches), steals work from stragglers,
// re-dispatches jobs from failed workers, and merges the partial
// reports into a document byte-identical to a single-node run. SIGTERM or
// SIGINT starts a graceful drain: the listener stops accepting, in-flight
// jobs finish, and after -drain-timeout whatever remains is cancelled.
// A clean drain exits 0; a drain that hit the hard deadline exits 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"srlproc/internal/serve"
	"srlproc/internal/store"
	"srlproc/internal/sweep"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		concurrency  = flag.Int("concurrency", 2, "jobs executing at once")
		queue        = flag.Int("queue", 8, "admitted jobs waiting beyond the running ones (0 = shed immediately); excess requests get 429")
		sweepWorkers = flag.Int("sweep-workers", 0, "sweep worker-pool size inside one job (0 = one per CPU)")
		workers      = flag.String("workers", "", "comma-separated cluster worker addresses (host:port or URLs); non-empty makes this node the coordinator")
		workerMode   = flag.Bool("worker", false, "mark this node a cluster worker (role reporting only; every node answers /v1/jobs)")
		timeout      = flag.Duration("timeout", 2*time.Minute, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 10*time.Minute, "cap on client-requested deadlines")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain hard deadline after SIGTERM")
		cacheEntries = flag.Int("cache-entries", sweep.DefaultCacheEntries, "memo cache entry budget (<=0 = unbounded)")
		cacheMB      = flag.Int64("cache-mb", sweep.DefaultCacheBytes>>20, "memo cache byte budget in MiB (<=0 = unbounded)")
		storeDir     = flag.String("store-dir", "", "persistent result-store directory: warm-start the cache across restarts and serve GET /v1/results")
	)
	flag.Parse()

	// SIGTERM/SIGINT cancels the serve context, starting the drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srlserved:", err)
		return 1
	}

	// The Config zero value means "default depth", so a -queue 0 operator
	// request for an actually-empty queue maps to the explicit -1 form.
	queueDepth := *queue
	if queueDepth <= 0 {
		queueDepth = -1
	}
	var resultStore store.ResultStore
	if *storeDir != "" {
		st, err := store.OpenDisk(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "srlserved: -store-dir:", err)
			return 1
		}
		defer st.Close()
		resultStore = st
	}
	var clusterWorkers []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			clusterWorkers = append(clusterWorkers, w)
		}
	}
	if len(clusterWorkers) > 0 && *workerMode {
		fmt.Fprintln(os.Stderr, "srlserved: use -workers (coordinator) or -worker (worker), not both")
		return 1
	}
	srv := serve.New(serve.Config{
		MaxConcurrent:  *concurrency,
		QueueDepth:     queueDepth,
		Workers:        *sweepWorkers,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DrainTimeout:   *drainTimeout,
		Cache:          sweep.NewCacheWithBudget(*cacheEntries, *cacheMB<<20),
		Store:          resultStore,
		ClusterWorkers: clusterWorkers,
		WorkerMode:     *workerMode,
	})
	if resultStore != nil {
		fmt.Fprintf(os.Stderr, "srlserved: result store at %s (stamp %s)\n", *storeDir, store.CodeStamp())
	}
	switch {
	case len(clusterWorkers) > 0:
		fmt.Fprintf(os.Stderr, "srlserved: coordinator for %d workers: %s\n",
			len(clusterWorkers), strings.Join(clusterWorkers, ", "))
	case *workerMode:
		fmt.Fprintln(os.Stderr, "srlserved: cluster worker mode")
	}
	fmt.Fprintf(os.Stderr, "srlserved: listening on %s (concurrency %d, queue %d)\n",
		ln.Addr(), *concurrency, *queue)

	err = srv.Serve(ctx, ln)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "srlserved:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "srlserved: drained cleanly")
	return 0
}
