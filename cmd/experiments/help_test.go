package main

import (
	"strings"
	"testing"

	"srlproc/internal/bench"
)

// TestOnlyHelpNamesRoundTrip pins the -only help text to reality: every
// name it advertises must either parse back to the experiment it names or
// be a declared CLI-only section. A renamed or added experiment that
// misses the help text fails here, not in a user's shell.
func TestOnlyHelpNamesRoundTrip(t *testing.T) {
	help := onlyHelp()
	_, list, ok := strings.Cut(help, ": ")
	if !ok {
		t.Fatalf("help text %q has no name list", help)
	}
	sections := map[string]bool{}
	for _, s := range cliOnlySections {
		sections[s] = true
	}
	for _, name := range strings.Split(list, ",") {
		t.Run(name, func(t *testing.T) {
			if sections[name] {
				return
			}
			id, err := bench.ParseExperimentID(name)
			if err != nil {
				t.Fatalf("advertised name does not parse: %v", err)
			}
			if id.String() != name {
				t.Fatalf("advertised name %q is the alias of %q; the help must use canonical names", name, id)
			}
		})
	}
}

// TestOnlyHelpIsComplete checks the converse: everything selectable is
// advertised — each runnable experiment exactly once, in presentation
// order, plus every CLI-only section.
func TestOnlyHelpIsComplete(t *testing.T) {
	advertised := map[string]int{}
	_, list, _ := strings.Cut(onlyHelp(), ": ")
	for _, name := range strings.Split(list, ",") {
		advertised[name]++
	}
	for _, id := range bench.AllExperiments() {
		if advertised[id.String()] != 1 {
			t.Errorf("experiment %s advertised %d times, want 1", id, advertised[id.String()])
		}
	}
	for _, s := range cliOnlySections {
		if advertised[s] != 1 {
			t.Errorf("section %s advertised %d times, want 1", s, advertised[s])
		}
	}
	if len(advertised) != len(bench.AllExperiments())+len(cliOnlySections) {
		t.Errorf("help advertises %d names, want %d", len(advertised), len(bench.AllExperiments())+len(cliOnlySections))
	}
	// The run loop's presentation order covers the same experiment set.
	if len(presentationOrder) != len(bench.AllExperiments()) {
		t.Errorf("presentationOrder has %d experiments, AllExperiments %d", len(presentationOrder), len(bench.AllExperiments()))
	}
	seen := map[bench.ExperimentID]bool{}
	for _, id := range presentationOrder {
		if seen[id] {
			t.Errorf("presentationOrder lists %s twice", id)
		}
		seen[id] = true
	}
}
