package main

import (
	"bytes"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"srlproc/internal/cli"
)

// Re-exec harness: the child invocation (marked by EXPERIMENTS_ARGV) runs
// main's run() with the requested argv so tests observe real exit codes.
func TestMain(m *testing.M) {
	if argv, ok := os.LookupEnv("EXPERIMENTS_ARGV"); ok {
		os.Args = []string{"experiments"}
		if argv != "" {
			os.Args = append(os.Args, strings.Split(argv, "\x1f")...)
		}
		os.Exit(run())
	}
	os.Exit(m.Run())
}

func cliCmd(t *testing.T, args ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "EXPERIMENTS_ARGV="+strings.Join(args, "\x1f"))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	return cmd, &stderr
}

func TestExitUsage(t *testing.T) {
	cmd, stderr := cliCmd(t, "-only", "fig2", "-figure", "6")
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != cli.Usage {
		t.Fatalf("exit %v, want %d; stderr:\n%s", err, cli.Usage, stderr)
	}
}

func TestExitTimeout(t *testing.T) {
	cmd, stderr := cliCmd(t, "-only", "fig2", "-uops", "500000000", "-warmup", "1000",
		"-workers", "2", "-timeout", "200ms")
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != cli.Timeout {
		t.Fatalf("exit %v, want %d; stderr:\n%s", err, cli.Timeout, stderr)
	}
	if !strings.Contains(stderr.String(), "timed out") {
		t.Fatalf("stderr: %q", stderr)
	}
}

func TestExitInterrupt(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("signal delivery is POSIX-only")
	}
	cmd, stderr := cliCmd(t, "-only", "fig2", "-uops", "500000000", "-warmup", "1000", "-workers", "2")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != cli.Interrupt {
		t.Fatalf("exit %v, want %d; stderr:\n%s", err, cli.Interrupt, stderr)
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("stderr: %q", stderr)
	}
}
