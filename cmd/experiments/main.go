// Command experiments regenerates every table and figure in the paper's
// evaluation section and prints them in order.
//
// Simulation points run on the bounded worker pool of internal/sweep:
// -workers sizes the pool, -timeout bounds the whole run, -progress prints
// live per-point progress, and -nocache disables the cross-experiment
// result memoization that otherwise simulates recurring configurations
// (the baseline, the SRL) only once. Ctrl-C cancels gracefully: in-flight
// points abort and the process exits instead of leaking goroutines.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"srlproc/internal/bench"
	"srlproc/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale for a fast sanity pass")
	uops := flag.Uint64("uops", 0, "override measured micro-ops per point")
	warm := flag.Uint64("warmup", 0, "override warmup micro-ops per point")
	seed := flag.Uint64("seed", 1, "workload seed")
	only := flag.String("only", "", "run only one experiment: table1,table2,fig2,fig6,table3,fig7,fig8,fig9,fig10,energy,latency,power")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = one per CPU, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (e.g. 10m); 0 = no limit")
	progress := flag.Bool("progress", false, "print live sweep progress to stderr")
	nocache := flag.Bool("nocache", false, "disable cross-experiment result memoization")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	o := bench.DefaultOptions()
	if *quick {
		o = bench.QuickOptions()
	}
	if *uops > 0 {
		o.RunUops = *uops
	}
	if *warm > 0 {
		o.WarmupUops = *warm
	}
	o.Seed = *seed
	o.Workers = *workers
	o.NoCache = *nocache
	if *progress {
		o.Progress = progressPrinter()
	}

	want := func(name string) bool { return *only == "" || *only == name }

	if want("table1") {
		fmt.Println(bench.RenderTable1())
	}
	if want("table2") {
		fmt.Println(bench.RenderTable2())
	}
	run := func(name string, f func(context.Context, bench.Options) (fmt.Stringer, error)) {
		if !want(name) {
			return
		}
		r, err := f(ctx, o)
		if *progress {
			fmt.Fprintln(os.Stderr)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				log.Printf("%s: interrupted: %v", name, ctx.Err())
				os.Exit(130)
			}
			if errors.Is(err, context.DeadlineExceeded) {
				log.Printf("%s: timed out: %v", name, err)
				os.Exit(1)
			}
			log.Printf("%s: %v", name, err)
			os.Exit(1)
		}
		fmt.Println(r.String())
	}
	run("fig2", func(ctx context.Context, o bench.Options) (fmt.Stringer, error) { return bench.RunFigure2Context(ctx, o) })
	run("fig6", func(ctx context.Context, o bench.Options) (fmt.Stringer, error) { return bench.RunFigure6Context(ctx, o) })
	run("table3", func(ctx context.Context, o bench.Options) (fmt.Stringer, error) { return bench.RunTable3Context(ctx, o) })
	run("fig7", func(ctx context.Context, o bench.Options) (fmt.Stringer, error) { return bench.RunFigure7Context(ctx, o) })
	run("fig8", func(ctx context.Context, o bench.Options) (fmt.Stringer, error) { return bench.RunFigure8Context(ctx, o) })
	run("fig9", func(ctx context.Context, o bench.Options) (fmt.Stringer, error) { return bench.RunFigure9Context(ctx, o) })
	run("fig10", func(ctx context.Context, o bench.Options) (fmt.Stringer, error) { return bench.RunFigure10Context(ctx, o) })
	run("energy", func(ctx context.Context, o bench.Options) (fmt.Stringer, error) { return bench.RunEnergyContext(ctx, o) })
	run("latency", func(ctx context.Context, o bench.Options) (fmt.Stringer, error) {
		return bench.RunLatencySweepContext(ctx, o, trace.SFP2K)
	})
	if want("power") {
		fmt.Println(bench.RunPowerArea())
	}
}

// progressPrinter renders an in-place progress line on stderr.
func progressPrinter() bench.ProgressFunc {
	return func(p bench.Progress) {
		eta := "--"
		if p.ETA > 0 {
			eta = p.ETA.Round(time.Second).String()
		}
		fmt.Fprintf(os.Stderr, "\r%3d/%d points  %d cached  %d failed  elapsed %s  eta %s   [%s]      ",
			p.Done, p.Total, p.CacheHits, p.Failed,
			p.Elapsed.Round(time.Second), eta, p.Last)
	}
}
