// Command experiments regenerates every table and figure in the paper's
// evaluation section and prints them in order.
//
// Simulation points run on the bounded worker pool of internal/sweep:
// -workers sizes the pool, -timeout bounds the whole run, -progress prints
// live per-point progress, and -nocache disables the cross-experiment
// result memoization that otherwise simulates recurring configurations
// (the baseline, the SRL) only once. Ctrl-C cancels gracefully: in-flight
// points abort and the process exits instead of leaking goroutines.
//
// -store-dir points at a persistent result store (internal/store): points
// simulated by earlier runs of the same binary are replayed from disk
// instead of recomputed, and fresh results are persisted for the next run.
//
// Output is the paper's tables by default; -json and -csv switch to
// machine-readable exports. -timeline and -trace-out enable per-run
// observability (internal/obs) and export the cycle-window time-series
// and the Chrome-trace event stream of the simulated points.
//
// Exit codes: 0 success, 1 runtime error, 2 usage error, 124 when
// -timeout expired, 130 when interrupted (Ctrl-C / SIGTERM).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"srlproc/internal/bench"
	"srlproc/internal/cli"
	"srlproc/internal/core"
	"srlproc/internal/obs"
	"srlproc/internal/store"
	"srlproc/internal/sweep"
	"srlproc/internal/trace"
)

// presentationOrder is the report's experiment order (Table 3 sits
// between Figures 6 and 7, unlike the ExperimentID declaration order).
// The run loop and the -only help text both derive from it, so the help
// can never drift from what the command actually accepts.
var presentationOrder = []bench.ExperimentID{
	bench.Fig2, bench.Fig6, bench.Table3, bench.Fig7, bench.Fig8,
	bench.Fig9, bench.Fig10, bench.Energy, bench.Latency, bench.Ordering,
}

// cliOnlySections are the -only selections that are rendered report
// sections rather than sweepable experiments.
var cliOnlySections = []string{"table1", "table2", "power"}

// onlyHelp builds the -only flag's help text from the real selection sets.
func onlyHelp() string {
	names := []string{cliOnlySections[0], cliOnlySections[1]}
	for _, id := range presentationOrder {
		names = append(names, id.String())
	}
	names = append(names, cliOnlySections[2])
	return "run only one experiment: " + strings.Join(names, ",")
}

// main delegates to run so that deferred cleanup — most importantly the
// signal.NotifyContext stop function — executes on every return path.
// os.Exit and log.Fatal inside run would skip those defers.
func main() { os.Exit(run()) }

func run() int {
	quick := flag.Bool("quick", false, "run at reduced scale for a fast sanity pass")
	uops := flag.Uint64("uops", 0, "override measured micro-ops per point")
	warm := flag.Uint64("warmup", 0, "override warmup micro-ops per point")
	seed := flag.Uint64("seed", 1, "workload seed")
	only := flag.String("only", "", onlyHelp())
	figure := flag.Int("figure", 0, "run only one figure by number (2,6,7,8,9,10); shorthand for -only figN")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = one per CPU, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (e.g. 10m); 0 = no limit")
	progress := flag.Bool("progress", false, "print live sweep progress to stderr")
	nocache := flag.Bool("nocache", false, "disable cross-experiment result memoization")
	noSkip := flag.Bool("noskip", false, "disable event-driven cycle skipping (bit-identical results, slower wall clock)")
	storeDir := flag.String("store-dir", "", "persistent result-store directory: reuse results from earlier runs of this binary and persist new ones")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of tables")
	csvOut := flag.Bool("csv", false, "emit results as CSV instead of tables")
	timelineOut := flag.String("timeline", "", "write every point's cycle-window timeline as one CSV to this file ('-' = stdout); enables sampling")
	traceOut := flag.String("trace-out", "", "write one point's event trace in Chrome trace format to this file ('-' = stdout); enables tracing")
	tracePoint := flag.String("trace-point", "", "point whose trace -trace-out exports, as 'label/SUITE' (default: first point with events)")
	sampleEvery := flag.Uint64("sample-every", obs.DefaultSampleEvery, "timeline sampling window in cycles (with -timeline)")
	flag.Parse()

	usage := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
		return cli.Usage
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
		return cli.Err
	}

	if *figure != 0 {
		if *only != "" {
			return usage("use -only or -figure, not both")
		}
		*only = fmt.Sprintf("fig%d", *figure)
	}
	// Selections resolve through bench.ParseExperimentID, so the
	// "figure2"-style aliases work and a typo'd or unknown name fails
	// loudly instead of silently running nothing. table1/table2/power are
	// rendered sections, not sweepable experiments, and stay CLI-only.
	if *only != "" {
		switch *only {
		case cliOnlySections[0], cliOnlySections[1], cliOnlySections[2]:
		default:
			id, err := bench.ParseExperimentID(*only)
			if err != nil {
				return usage("%v (or a CLI-only section: %s)", err, strings.Join(cliOnlySections, ", "))
			}
			*only = id.String()
		}
	}
	if *jsonOut && *csvOut {
		return usage("use -json or -csv, not both")
	}
	if *timelineOut == "-" && *traceOut == "-" {
		return usage("-timeline and -trace-out cannot both write to stdout")
	}
	if (*timelineOut == "-" || *traceOut == "-") && (*jsonOut || *csvOut) {
		return usage("-timeline/-trace-out '-' conflicts with -json/-csv on stdout; write to a file instead")
	}
	// When a streaming export owns stdout, the human-readable tables move
	// to stderr so the exported document stays parseable.
	reportOut := io.Writer(os.Stdout)
	if *timelineOut == "-" || *traceOut == "-" {
		reportOut = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	o := bench.DefaultOptions()
	if *quick {
		o = bench.QuickOptions()
	}
	if *uops > 0 {
		o.RunUops = *uops
	}
	if *warm > 0 {
		o.WarmupUops = *warm
	}
	o.Seed = *seed
	o.Workers = *workers
	o.NoCache = *nocache
	o.NoEventSkip = *noSkip
	if *progress {
		o.Progress = progressPrinter()
	}
	if *timelineOut != "" {
		o.Obs.SampleEvery = *sampleEvery
	}
	if *traceOut != "" {
		o.Obs.TraceEvents = true
	}
	if err := o.Validate(); err != nil {
		return usage("%v", err)
	}

	// -store-dir makes the run's results durable: the memo cache falls
	// through to the on-disk store before simulating, so a rerun of the
	// same binary over the same points replays instead of recomputing.
	if *storeDir != "" {
		st, err := store.OpenDisk(*storeDir)
		if err != nil {
			return fail("-store-dir: %v", err)
		}
		cache := o.Cache
		if cache == nil {
			cache = sweep.Global()
		}
		cache.AttachStore(st)
		defer func() {
			cache.FlushStore()
			cache.AttachStore(nil)
			st.Close()
		}()
	}

	want := func(name string) bool { return *only == "" || *only == name }

	// jsonDocs collects every selected experiment's JSON document; a single
	// selection prints bare, multiple print as one name-keyed object.
	type namedDoc struct {
		name string
		doc  json.RawMessage
	}
	var jsonDocs []namedDoc
	var observed []labeledResult

	emitText := func(name, text string) int {
		switch {
		case *jsonOut:
			doc, err := json.Marshal(text)
			if err != nil {
				return fail("%s: %v", name, err)
			}
			jsonDocs = append(jsonDocs, namedDoc{name, doc})
		case *csvOut:
			// Configuration echoes have no CSV form; skip them silently
			// unless explicitly selected.
			if *only == name {
				return usage("%s has no CSV form", name)
			}
		default:
			fmt.Fprintln(reportOut, text)
		}
		return cli.OK
	}

	if want("table1") {
		if code := emitText("table1", bench.RenderTable1()); code != cli.OK {
			return code
		}
	}
	if want("table2") {
		if code := emitText("table2", bench.RenderTable2()); code != cli.OK {
			return code
		}
	}
	runExp := func(name string, f func(context.Context, bench.Options) (fmt.Stringer, error)) int {
		if !want(name) {
			return cli.OK
		}
		r, err := f(ctx, o)
		if *progress {
			fmt.Fprintln(os.Stderr)
		}
		if err != nil {
			switch code := cli.ExitCode(err); code {
			case cli.Interrupt:
				fmt.Fprintf(os.Stderr, "experiments: %s: interrupted: %v\n", name, err)
				return code
			case cli.Timeout:
				fmt.Fprintf(os.Stderr, "experiments: %s: timed out: %v\n", name, err)
				return code
			default:
				return fail("%s: %v", name, err)
			}
		}
		observed = append(observed, rawResults(r)...)
		switch {
		case *jsonOut:
			doc, err := json.Marshal(r)
			if err != nil {
				return fail("%s: %v", name, err)
			}
			jsonDocs = append(jsonDocs, namedDoc{name, doc})
		case *csvOut:
			cw, ok := r.(interface{ WriteCSV(io.Writer) error })
			if !ok {
				return usage("%s has no CSV form", name)
			}
			if *only == "" {
				fmt.Printf("# %s\n", name)
			}
			if err := cw.WriteCSV(os.Stdout); err != nil {
				return fail("%s: %v", name, err)
			}
		default:
			fmt.Fprintln(reportOut, r.String())
		}
		return cli.OK
	}
	// Every experiment dispatches through bench.RunExperiment, in
	// presentation order.
	for _, id := range presentationOrder {
		id := id
		f := func(ctx context.Context, o bench.Options) (fmt.Stringer, error) {
			r, err := bench.RunExperiment(ctx, id, o)
			if err != nil {
				return nil, err
			}
			return r.Value().(fmt.Stringer), nil
		}
		if code := runExp(id.String(), f); code != cli.OK {
			return code
		}
	}
	if want("power") {
		if code := emitText("power", bench.RunPowerArea()); code != cli.OK {
			return code
		}
	}

	if *jsonOut {
		out := bufio.NewWriter(os.Stdout)
		if len(jsonDocs) == 1 {
			out.Write(jsonDocs[0].doc)
			out.WriteByte('\n')
		} else {
			obj := make(map[string]json.RawMessage, len(jsonDocs))
			for _, d := range jsonDocs {
				obj[d.name] = d.doc
			}
			enc := json.NewEncoder(out)
			if err := enc.Encode(obj); err != nil {
				return fail("%v", err)
			}
		}
		if err := out.Flush(); err != nil {
			return fail("%v", err)
		}
	}

	if *timelineOut != "" {
		if err := writeTimelines(*timelineOut, observed); err != nil {
			return fail("-timeline: %v", err)
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, *tracePoint, observed); err != nil {
			return fail("-trace-out: %v", err)
		}
	}
	return cli.OK
}

// labeledResult names one simulated point's results for export.
type labeledResult struct {
	Label string
	Suite trace.Suite
	Res   *core.Results
}

// rawResults extracts the per-point results an experiment retains, in
// deterministic (label, suite) order. Experiments without raw results
// (energy, latency) contribute nothing.
func rawResults(r fmt.Stringer) []labeledResult {
	var out []labeledResult
	bySuite := func(label string, m map[trace.Suite]*core.Results) {
		for _, su := range trace.AllSuites() {
			if res := m[su]; res != nil {
				out = append(out, labeledResult{label, su, res})
			}
		}
	}
	switch v := r.(type) {
	case *bench.FigureResult:
		labels := make([]string, 0, len(v.Raw))
		for label := range v.Raw {
			labels = append(labels, label)
		}
		sort.Strings(labels)
		for _, label := range labels {
			bySuite(label, v.Raw[label])
		}
	case *bench.Table3Result:
		bySuite("srl", v.Raw)
	case *bench.Figure7Result:
		bySuite("srl", v.Raw)
	}
	return out
}

// writeTimelines renders every observed point's timeline into one CSV,
// with leading label/suite columns so a plotting script can facet on them.
func writeTimelines(path string, points []labeledResult) error {
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	defer closeFn()
	bw := bufio.NewWriter(w)
	wrote := false
	for _, p := range points {
		if p.Res.Timeline == nil {
			continue
		}
		var sb strings.Builder
		if err := p.Res.Timeline.WriteCSV(&sb); err != nil {
			return err
		}
		lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
		if !wrote {
			fmt.Fprintf(bw, "label,suite,%s\n", lines[0])
			wrote = true
		}
		for _, line := range lines[1:] {
			fmt.Fprintf(bw, "%s,%s,%s\n", p.Label, p.Suite, line)
		}
	}
	if !wrote {
		return errors.New("no timelines recorded (cache hit? rerun with -nocache)")
	}
	return bw.Flush()
}

// writeTrace renders one observed point's event trace in Chrome trace
// format. sel selects the point as "label/SUITE"; empty means the first
// point that recorded any events.
func writeTrace(path, sel string, points []labeledResult) error {
	var chosen *labeledResult
	for i := range points {
		p := &points[i]
		if p.Res.Trace == nil {
			continue
		}
		if sel != "" {
			if sel == p.Label+"/"+p.Suite.String() {
				chosen = p
				break
			}
			continue
		}
		if p.Res.Trace.Len() > 0 {
			chosen = p
			break
		}
	}
	if chosen == nil {
		if sel != "" {
			return fmt.Errorf("point %q not found or recorded no trace (cache hit? rerun with -nocache)", sel)
		}
		return errors.New("no traces recorded (cache hit? rerun with -nocache)")
	}
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	defer closeFn()
	fmt.Fprintf(os.Stderr, "trace-out: exporting %s/%s (%d events)\n", chosen.Label, chosen.Suite, chosen.Res.Trace.Len())
	return chosen.Res.Trace.WriteChromeTrace(w, chosen.Res.Timeline)
}

// openOut opens path for writing; "-" means stdout.
func openOut(path string) (io.Writer, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// progressPrinter renders an in-place progress line on stderr.
func progressPrinter() bench.ProgressFunc {
	return func(p bench.Progress) {
		eta := "--"
		if p.ETA > 0 {
			eta = p.ETA.Round(time.Second).String()
		}
		fmt.Fprintf(os.Stderr, "\r%3d/%d points  %d cached  %d failed  elapsed %s  eta %s   [%s]      ",
			p.Done, p.Total, p.CacheHits, p.Failed,
			p.Elapsed.Round(time.Second), eta, p.Last)
	}
}
