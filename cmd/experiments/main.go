// Command experiments regenerates every table and figure in the paper's
// evaluation section and prints them in order.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"srlproc/internal/bench"
	"srlproc/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale for a fast sanity pass")
	uops := flag.Uint64("uops", 0, "override measured micro-ops per point")
	warm := flag.Uint64("warmup", 0, "override warmup micro-ops per point")
	seed := flag.Uint64("seed", 1, "workload seed")
	only := flag.String("only", "", "run only one experiment: table1,table2,fig2,fig6,table3,fig7,fig8,fig9,fig10,energy,power")
	flag.Parse()

	o := bench.DefaultOptions()
	if *quick {
		o = bench.QuickOptions()
	}
	if *uops > 0 {
		o.RunUops = *uops
	}
	if *warm > 0 {
		o.WarmupUops = *warm
	}
	o.Seed = *seed

	want := func(name string) bool { return *only == "" || *only == name }

	if want("table1") {
		fmt.Println(bench.RenderTable1())
	}
	if want("table2") {
		fmt.Println(bench.RenderTable2())
	}
	run := func(name string, f func(bench.Options) (fmt.Stringer, error)) {
		if !want(name) {
			return
		}
		r, err := f(o)
		if err != nil {
			log.Printf("%s: %v", name, err)
			os.Exit(1)
		}
		fmt.Println(r.String())
	}
	run("fig2", func(o bench.Options) (fmt.Stringer, error) { return bench.RunFigure2(o) })
	run("fig6", func(o bench.Options) (fmt.Stringer, error) { return bench.RunFigure6(o) })
	run("table3", func(o bench.Options) (fmt.Stringer, error) { return bench.RunTable3(o) })
	run("fig7", func(o bench.Options) (fmt.Stringer, error) { return bench.RunFigure7(o) })
	run("fig8", func(o bench.Options) (fmt.Stringer, error) { return bench.RunFigure8(o) })
	run("fig9", func(o bench.Options) (fmt.Stringer, error) { return bench.RunFigure9(o) })
	run("fig10", func(o bench.Options) (fmt.Stringer, error) { return bench.RunFigure10(o) })
	run("energy", func(o bench.Options) (fmt.Stringer, error) { return bench.RunEnergy(o) })
	run("latency", func(o bench.Options) (fmt.Stringer, error) { return bench.RunLatencySweep(o, trace.SFP2K) })
	if want("power") {
		fmt.Println(bench.RunPowerArea())
	}
}
