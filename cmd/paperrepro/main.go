// Command paperrepro regenerates the paper's artifacts end to end: it
// executes the declarative experiment grid (scripts/paper/experiments.json)
// and writes one run directory — paper_runs/<stamp>/ — holding validated
// CSVs, grouped summary statistics, Markdown and LaTeX tables, SVG plots,
// a report.md index, and a manifest recording exactly which code and
// configuration produced them.
//
// Experiments run in-process on the sweep engine by default; -server URL
// dispatches them to a running srlserved via POST /v1/sweep instead (the
// artifacts are byte-identical either way — the CSV is always rendered
// from the result document). -store-dir warm-starts the run from a
// persistent result store. -resume continues an interrupted run; -profile
// selects the scale (quick for CI smoke, full for the paper numbers).
//
// -check additionally byte-compares the result documents across repeats
// (the simulator is deterministic; divergence is a bug) and asserts
// headline metrics against the tolerance bands in
// scripts/paper/expectations.json, failing the run on any violation.
//
// Exit codes: 0 success, 1 runtime or check error, 2 usage error, 124
// when -timeout expired, 130 when interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"srlproc/internal/bench"
	"srlproc/internal/cli"
	"srlproc/internal/paper"
	"srlproc/internal/store"
	"srlproc/internal/sweep"
)

func main() { os.Exit(run()) }

func run() int {
	config := flag.String("config", filepath.Join("scripts", "paper", "experiments.json"), "experiment grid to execute")
	expectations := flag.String("expectations", filepath.Join("scripts", "paper", "expectations.json"), "tolerance bands for -check")
	out := flag.String("out", "paper_runs", "parent directory for run directories")
	stamp := flag.String("stamp", "", "run directory name under -out (default: current UTC time; with -resume/-analyze-only: the newest run)")
	profile := flag.String("profile", paper.FullProfile, "grid profile to run (e.g. quick)")
	only := flag.String("only", "", "comma-separated experiments to run instead of the whole grid (e.g. fig6,table3)")
	repeats := flag.Int("repeats", 0, "override every experiment's repeat count (0 = use the grid's)")
	server := flag.String("server", "", "execute experiments against a running srlserved at this base URL instead of in-process")
	storeDir := flag.String("store-dir", "", "persistent result-store directory to warm-start from (in-process mode)")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (e.g. 2h); 0 = no limit")
	resume := flag.Bool("resume", false, "continue an interrupted run directory instead of demanding a fresh one")
	check := flag.Bool("check", false, "byte-compare repeats and assert expectation bands; violations fail the run")
	analyzeOnly := flag.Bool("analyze-only", false, "skip execution; re-run analysis (and -check) over an existing run directory")
	flag.Parse()

	usage := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "paperrepro: "+format+"\n", args...)
		return cli.Usage
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "paperrepro: "+format+"\n", args...)
		return cli.Err
	}

	grid, gridBytes, err := paper.LoadGrid(*config)
	if err != nil {
		return usage("%v", err)
	}
	var onlyIDs []bench.ExperimentID
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			id, err := bench.ParseExperimentID(strings.TrimSpace(name))
			if err != nil {
				return usage("-only: %v", err)
			}
			onlyIDs = append(onlyIDs, id)
		}
	}
	if *server != "" && *storeDir != "" {
		return usage("-store-dir warms the in-process engine; with -server the store lives on the server side")
	}

	// Resolve the run directory. A fresh run stamps with the current UTC
	// time; -resume and -analyze-only default to the newest existing run.
	if *stamp == "" {
		if *resume || *analyzeOnly {
			latest, err := latestStamp(*out)
			if err != nil {
				return fail("%v", err)
			}
			*stamp = latest
			fmt.Fprintf(os.Stderr, "paperrepro: continuing run %s\n", *stamp)
		} else {
			*stamp = time.Now().UTC().Format("20060102-150405")
		}
	}
	dir := filepath.Join(*out, *stamp)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// -store-dir warm-starts the sweep engine from earlier runs' persisted
	// results and persists this run's fresh ones (same wiring as
	// cmd/experiments).
	if *storeDir != "" && !*analyzeOnly {
		st, err := store.OpenDisk(*storeDir)
		if err != nil {
			return fail("-store-dir: %v", err)
		}
		cache := sweep.Global()
		cache.AttachStore(st)
		defer func() {
			cache.FlushStore()
			cache.AttachStore(nil)
			st.Close()
		}()
	}

	if !*analyzeOnly {
		runner, err := paper.NewRunner(paper.RunnerConfig{
			Grid: grid, GridBytes: gridBytes, Profile: *profile,
			Only: onlyIDs, Repeats: *repeats,
			Dir: dir, Stamp: *stamp,
			Server: *server, Workers: *workers, Resume: *resume,
			Log: os.Stderr,
		})
		if err != nil {
			return usage("%v", err)
		}
		m, err := runner.Run(ctx)
		if err != nil {
			switch code := cli.ExitCode(err); code {
			case cli.Interrupt:
				fmt.Fprintf(os.Stderr, "paperrepro: interrupted: %v (rerun with -resume -stamp %s to continue)\n", err, *stamp)
				return code
			case cli.Timeout:
				fmt.Fprintf(os.Stderr, "paperrepro: timed out: %v (rerun with -resume -stamp %s to continue)\n", err, *stamp)
				return code
			default:
				return fail("%v", err)
			}
		}
		fmt.Fprintf(os.Stderr, "paperrepro: %d unit(s) complete in %s\n", len(m.Units), (time.Duration(m.WallMs) * time.Millisecond).Round(time.Millisecond))
	}

	if err := paper.Analyze(paper.AnalyzeConfig{
		Grid: grid, Profile: *profile, Only: onlyIDs, Repeats: *repeats, Dir: dir,
	}); err != nil {
		return fail("analyze: %v", err)
	}

	if *check {
		exp, err := paper.LoadExpectations(*expectations)
		if err != nil {
			return fail("-check: %v", err)
		}
		units, err := grid.Plan(*profile, onlyIDs, *repeats)
		if err != nil {
			return fail("%v", err)
		}
		results, err := paper.Check(dir, units, exp, *profile)
		for _, r := range results {
			verdict := "PASS"
			switch {
			case r.Skip:
				verdict = "SKIP"
			case !r.OK:
				verdict = "FAIL"
			}
			fmt.Fprintf(os.Stderr, "paperrepro: check %s %s — %s\n", verdict, r.Name, r.Info)
		}
		if err != nil {
			return fail("%v", err)
		}
	}

	fmt.Printf("%s\n", dir)
	return cli.OK
}

// latestStamp picks the lexically newest run directory under out — with
// time-formatted stamps that is the most recent run.
func latestStamp(out string) (string, error) {
	entries, err := os.ReadDir(out)
	if err != nil {
		return "", fmt.Errorf("no run to continue: %w", err)
	}
	var stamps []string
	for _, e := range entries {
		if e.IsDir() {
			stamps = append(stamps, e.Name())
		}
	}
	if len(stamps) == 0 {
		return "", fmt.Errorf("no run to continue under %s", out)
	}
	sort.Strings(stamps)
	return stamps[len(stamps)-1], nil
}
