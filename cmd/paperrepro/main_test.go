package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"srlproc/internal/cli"
)

// Re-exec harness: the child invocation (marked by PAPERREPRO_ARGV) runs
// main's run() with the requested argv so tests observe real exit codes.
func TestMain(m *testing.M) {
	if argv, ok := os.LookupEnv("PAPERREPRO_ARGV"); ok {
		os.Args = []string{"paperrepro"}
		if argv != "" {
			os.Args = append(os.Args, strings.Split(argv, "\x1f")...)
		}
		os.Exit(run())
	}
	os.Exit(m.Run())
}

func cliCmd(t *testing.T, args ...string) (*exec.Cmd, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "PAPERREPRO_ARGV="+strings.Join(args, "\x1f"))
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	return cmd, &stdout, &stderr
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

func writeTestGrid(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "grid.json")
	grid := `{
  "repeats": 2,
  "common": { "uops": 10000, "warmup": 2000, "seed": 1 },
  "profiles": { "quick": { "uops": 5000, "warmup": 1000 } },
  "experiments": [ { "id": "table3" } ]
}`
	if err := os.WriteFile(path, []byte(grid), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUsageErrors(t *testing.T) {
	grid := writeTestGrid(t)
	cases := []struct {
		name string
		args []string
	}{
		{"missing config", []string{"-config", filepath.Join(t.TempDir(), "nope.json")}},
		{"bad only", []string{"-config", grid, "-only", "fig99"}},
		{"unknown profile", []string{"-config", grid, "-profile", "huge"}},
		{"server with store", []string{"-config", grid, "-server", "http://x", "-store-dir", t.TempDir()}},
		{"only outside grid", []string{"-config", grid, "-only", "fig2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd, _, stderr := cliCmd(t, tc.args...)
			if code := exitCode(cmd.Run()); code != cli.Usage {
				t.Fatalf("exit %d, want %d; stderr:\n%s", code, cli.Usage, stderr)
			}
		})
	}
}

// TestQuickRunEndToEnd drives the binary over a one-experiment grid and
// checks the run directory and -check behavior, including resuming.
func TestQuickRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	grid := writeTestGrid(t)
	out := t.TempDir()
	expPath := filepath.Join(t.TempDir(), "expectations.json")
	if err := os.WriteFile(expPath, []byte(`{
  "profiles": { "quick": [
    { "experiment": "table3", "column": "pct_time_srl_occupied", "min": 0, "max": 100 }
  ] }
}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd, stdout, stderr := cliCmd(t,
		"-config", grid, "-expectations", expPath,
		"-out", out, "-stamp", "run1", "-profile", "quick", "-check")
	if code := exitCode(cmd.Run()); code != cli.OK {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr)
	}
	if got := strings.TrimSpace(stdout.String()); got != filepath.Join(out, "run1") {
		t.Errorf("stdout = %q, want the run dir", got)
	}
	for _, f := range []string{
		"manifest.json", "csv/table3_r01.csv", "csv/table3_r02.json",
		"analysis/report.md", "analysis/check.md", "analysis/tables/table3.tex",
	} {
		if _, err := os.Stat(filepath.Join(out, "run1", f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	if !strings.Contains(stderr.String(), "check PASS") {
		t.Errorf("stderr lacks check verdicts:\n%s", stderr)
	}

	// Re-running the same stamp without -resume refuses.
	cmd, _, stderr = cliCmd(t, "-config", grid, "-out", out, "-stamp", "run1", "-profile", "quick")
	if code := exitCode(cmd.Run()); code != cli.Err {
		t.Fatalf("restart exit %d, want %d; stderr:\n%s", code, cli.Err, stderr)
	}

	// -resume with no -stamp picks the newest run and replays from state.
	cmd, _, stderr = cliCmd(t, "-config", grid, "-out", out, "-profile", "quick", "-resume")
	if code := exitCode(cmd.Run()); code != cli.OK {
		t.Fatalf("resume exit %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr.String(), "continuing run run1") {
		t.Errorf("resume did not pick the newest run:\n%s", stderr)
	}

	// -analyze-only re-renders analysis without touching results.
	cmd, _, stderr = cliCmd(t, "-config", grid, "-out", out, "-stamp", "run1", "-profile", "quick", "-analyze-only")
	if code := exitCode(cmd.Run()); code != cli.OK {
		t.Fatalf("analyze-only exit %d; stderr:\n%s", code, stderr)
	}

	// A violated expectation band fails the run with exit 1.
	if err := os.WriteFile(expPath, []byte(`{
  "profiles": { "quick": [
    { "experiment": "table3", "column": "pct_time_srl_occupied", "min": 1000, "max": 2000 }
  ] }
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd, _, stderr = cliCmd(t,
		"-config", grid, "-expectations", expPath,
		"-out", out, "-stamp", "run1", "-profile", "quick", "-analyze-only", "-check")
	if code := exitCode(cmd.Run()); code != cli.Err {
		t.Fatalf("violated band exit %d, want %d; stderr:\n%s", code, cli.Err, stderr)
	}
	if !strings.Contains(stderr.String(), "check FAIL") {
		t.Errorf("stderr lacks the failing check:\n%s", stderr)
	}
}
