#!/bin/sh
# End-to-end smoke test for cmd/srlserved, used by `make serve-smoke` and
# the CI serve-smoke step. Starts the server on an ephemeral port, runs
# one simulate and one sweep request, checks /healthz and /metrics, then
# sends SIGTERM and requires a clean drain (exit 0) within the deadline.
# A second leg restarts the same binary against the same -store-dir and
# requires the repeated sweep to be answered entirely from the persistent
# store: zero store misses, at least one store hit, and the simulated
# point retrievable by fingerprint via GET /v1/results/{fp}.
set -eu

ADDR="${SERVE_SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/srlserved"
LOG="$(mktemp)"
STOREDIR="$(mktemp -d)"
HDRS="$(mktemp)"

cleanup() {
    kill "$pid" 2>/dev/null || true
    rm -f "$LOG" "$HDRS"
    rm -rf "$STOREDIR"
}

go build -o "$BIN" ./cmd/srlserved

"$BIN" -addr "$ADDR" -drain-timeout 30s 2>"$LOG" &
pid=$!
trap cleanup EXIT INT TERM

# wait_healthy blocks until the current server answers /healthz.
wait_healthy() {
    i=0
    until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "serve-smoke: server never became healthy" >&2
            cat "$LOG" >&2
            exit 1
        fi
        sleep 0.2
    done
}

# drain_clean SIGTERMs the current server and requires exit 0.
drain_clean() {
    kill -TERM "$pid"
    i=0
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 150 ]; then
            echo "serve-smoke: server did not drain within deadline" >&2
            cat "$LOG" >&2
            exit 1
        fi
        sleep 0.2
    done
    set +e
    wait "$pid"
    status=$?
    set -e
    if [ "$status" -ne 0 ]; then
        echo "serve-smoke: drain exited $status, want 0" >&2
        cat "$LOG" >&2
        exit 1
    fi
}

wait_healthy

echo "serve-smoke: /v1/simulate"
out=$(curl -sf -X POST -H 'Content-Type: application/json' "$BASE/v1/simulate" \
    -d '{"design":"srl","suite":"SINT2K","run_uops":20000,"warmup_uops":4000}')
case "$out" in
*'"uops"'*) ;;
*) echo "serve-smoke: simulate response missing uops: $out" >&2; exit 1 ;;
esac

echo "serve-smoke: /v1/sweep (table3, quick)"
out=$(curl -sf -X POST -H 'Content-Type: application/json' "$BASE/v1/sweep" \
    -d '{"experiment":"table3","quick":true,"run_uops":4000,"warmup_uops":1000}')
case "$out" in
*'"srl"'* | *'"suites"'* | *'"rows"'* | *'{'*) ;;
*) echo "serve-smoke: sweep response not JSON: $out" >&2; exit 1 ;;
esac

echo "serve-smoke: /metrics"
out=$(curl -sf "$BASE/metrics")
case "$out" in
*'"completed_total"'*) ;;
*) echo "serve-smoke: metrics missing counters: $out" >&2; exit 1 ;;
esac

echo "serve-smoke: SIGTERM drain"
drain_clean

# --- Warm-restart leg: persistence across processes via -store-dir. ---
SIM='{"design":"srl","suite":"SINT2K","run_uops":20000,"warmup_uops":4000}'
SWEEP='{"experiment":"table3","quick":true,"run_uops":4000,"warmup_uops":1000}'

echo "serve-smoke: cold start with -store-dir"
"$BIN" -addr "$ADDR" -drain-timeout 30s -store-dir "$STOREDIR" 2>"$LOG" &
pid=$!
wait_healthy
curl -sf -X POST -H 'Content-Type: application/json' "$BASE/v1/simulate" -d "$SIM" -D "$HDRS" >/dev/null
FP=$(tr -d '\r' <"$HDRS" | awk -F': ' 'tolower($1)=="x-srlproc-point"{print $2}')
if [ -z "$FP" ]; then
    echo "serve-smoke: no X-Srlproc-Point header on simulate" >&2
    exit 1
fi
curl -sf -X POST -H 'Content-Type: application/json' "$BASE/v1/sweep" -d "$SWEEP" >/dev/null
drain_clean

echo "serve-smoke: warm restart from $STOREDIR"
"$BIN" -addr "$ADDR" -drain-timeout 30s -store-dir "$STOREDIR" 2>"$LOG" &
pid=$!
wait_healthy
out=$(curl -sf "$BASE/v1/results/$FP")
case "$out" in
*'"uops"'*) ;;
*) echo "serve-smoke: /v1/results/$FP missing uops: $out" >&2; exit 1 ;;
esac
curl -sf -X POST -H 'Content-Type: application/json' "$BASE/v1/simulate" -d "$SIM" >/dev/null
curl -sf -X POST -H 'Content-Type: application/json' "$BASE/v1/sweep" -d "$SWEEP" -D "$HDRS" >/dev/null
EXP=$(tr -d '\r' <"$HDRS" | awk -F': ' 'tolower($1)=="x-srlproc-experiment"{print $2}')
if [ "$EXP" != "table3" ]; then
    echo "serve-smoke: X-Srlproc-Experiment header $EXP, want table3" >&2
    exit 1
fi
stats=$(curl -sf "$BASE/v1/store/stats")
case "$stats" in
*'"misses":0'*) ;;
*) echo "serve-smoke: warm restart had store misses: $stats" >&2; exit 1 ;;
esac
case "$stats" in
*'"hits":0'*) echo "serve-smoke: warm restart never hit the store: $stats" >&2; exit 1 ;;
*'"hits":'*) ;;
*) echo "serve-smoke: store stats missing hits: $stats" >&2; exit 1 ;;
esac
drain_clean

trap - EXIT INT TERM
rm -f "$LOG" "$HDRS"
rm -rf "$STOREDIR"
echo "serve-smoke: ok (clean drain, warm restart served from store)"
