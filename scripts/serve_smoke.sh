#!/bin/sh
# End-to-end smoke test for cmd/srlserved, used by `make serve-smoke` and
# the CI serve-smoke step. Starts the server on an ephemeral port, runs
# one simulate and one sweep request, checks /healthz and /metrics, then
# sends SIGTERM and requires a clean drain (exit 0) within the deadline.
set -eu

ADDR="${SERVE_SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/srlserved"
LOG="$(mktemp)"

cleanup() {
    kill "$pid" 2>/dev/null || true
    rm -f "$LOG"
}

go build -o "$BIN" ./cmd/srlserved

"$BIN" -addr "$ADDR" -drain-timeout 30s 2>"$LOG" &
pid=$!
trap cleanup EXIT INT TERM

# Wait for the listener.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: server never became healthy" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done

echo "serve-smoke: /v1/simulate"
out=$(curl -sf -X POST "$BASE/v1/simulate" \
    -d '{"design":"srl","suite":"SINT2K","run_uops":20000,"warmup_uops":4000}')
case "$out" in
*'"uops"'*) ;;
*) echo "serve-smoke: simulate response missing uops: $out" >&2; exit 1 ;;
esac

echo "serve-smoke: /v1/sweep (table3, quick)"
out=$(curl -sf -X POST "$BASE/v1/sweep" \
    -d '{"experiment":"table3","quick":true,"run_uops":4000,"warmup_uops":1000}')
case "$out" in
*'"srl"'* | *'"suites"'* | *'"rows"'* | *'{'*) ;;
*) echo "serve-smoke: sweep response not JSON: $out" >&2; exit 1 ;;
esac

echo "serve-smoke: /metrics"
out=$(curl -sf "$BASE/metrics")
case "$out" in
*'"completed_total"'*) ;;
*) echo "serve-smoke: metrics missing counters: $out" >&2; exit 1 ;;
esac

echo "serve-smoke: SIGTERM drain"
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "serve-smoke: server did not drain within deadline" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done
set +e
wait "$pid"
status=$?
set -e
if [ "$status" -ne 0 ]; then
    echo "serve-smoke: drain exited $status, want 0" >&2
    cat "$LOG" >&2
    exit 1
fi
trap - EXIT INT TERM
rm -f "$LOG"
echo "serve-smoke: ok (clean drain)"
