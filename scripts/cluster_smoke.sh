#!/bin/sh
# Multi-process cluster smoke test for cmd/srlserved, used by
# `make cluster-smoke` and the CI cluster-smoke step.
#
# Leg 1: a standalone server produces the golden fig6 document.
# Leg 2: a coordinator + two workers run the same sweep; the merged
#         document must be byte-identical to the golden, and the
#         coordinator /metrics cluster section must show both workers.
# Leg 3: the same sweep again (fresh coordinator memo state is not a
#         concern — sweeps always re-dispatch), but one worker is killed
#         while the sweep is in flight; the coordinator must re-dispatch
#         the dead worker's points and still answer the identical
#         document, with the failure visible in /metrics.
set -eu

PORT_BASE="${CLUSTER_SMOKE_PORT_BASE:-18180}"
A1="127.0.0.1:$PORT_BASE"        # standalone / golden
A2="127.0.0.1:$((PORT_BASE + 1))" # worker 1
A3="127.0.0.1:$((PORT_BASE + 2))" # worker 2
A4="127.0.0.1:$((PORT_BASE + 3))" # coordinator
BIN="$(mktemp -d)/srlserved"
TMP="$(mktemp -d)"
SWEEP='{"experiment":"fig6","run_uops":60000,"warmup_uops":10000,"seed":1}'
# The kill leg bypasses the workers' memo caches (a cached rerun would
# finish before the kill lands) and runs big enough to still be in
# flight when the worker dies. no_cache changes timings, never results.
SWEEP_KILL='{"experiment":"fig6","run_uops":60000,"warmup_uops":10000,"seed":1,"no_cache":true}'

pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP" "$(dirname "$BIN")"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/srlserved

wait_healthy() {
    i=0
    until curl -sf "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "cluster-smoke: $1 never became healthy" >&2
            cat "$TMP"/*.log >&2
            exit 1
        fi
        sleep 0.2
    done
}

post_sweep() {
    curl -sf -X POST -H 'Content-Type: application/json' \
        "http://$1/v1/sweep" -d "$SWEEP"
}

echo "cluster-smoke: golden single-node run"
"$BIN" -addr "$A1" 2>"$TMP/standalone.log" &
pids="$pids $!"
wait_healthy "$A1"
post_sweep "$A1" >"$TMP/golden.json"
[ -s "$TMP/golden.json" ] || { echo "cluster-smoke: empty golden" >&2; exit 1; }

echo "cluster-smoke: coordinator + 2 workers"
"$BIN" -addr "$A2" -worker 2>"$TMP/w1.log" &
w1=$!; pids="$pids $w1"
"$BIN" -addr "$A3" -worker 2>"$TMP/w2.log" &
w2=$!; pids="$pids $w2"
"$BIN" -addr "$A4" -workers "$A2,$A3" 2>"$TMP/coord.log" &
pids="$pids $!"
wait_healthy "$A2"
wait_healthy "$A3"
wait_healthy "$A4"

role=$(curl -sf "http://$A4/healthz")
case "$role" in
*'"role":"coordinator"'*) ;;
*) echo "cluster-smoke: coordinator healthz missing role: $role" >&2; exit 1 ;;
esac
role=$(curl -sf "http://$A2/healthz")
case "$role" in
*'"role":"worker"'*) ;;
*) echo "cluster-smoke: worker healthz missing role: $role" >&2; exit 1 ;;
esac

post_sweep "$A4" >"$TMP/cluster.json"
if ! cmp -s "$TMP/golden.json" "$TMP/cluster.json"; then
    echo "cluster-smoke: cluster document differs from single-node golden" >&2
    diff "$TMP/golden.json" "$TMP/cluster.json" >&2 || true
    exit 1
fi
metrics=$(curl -sf "http://$A4/metrics")
case "$metrics" in
*'"role":"coordinator"'*) ;;
*) echo "cluster-smoke: coordinator metrics missing cluster section: $metrics" >&2; exit 1 ;;
esac

echo "cluster-smoke: worker death mid-sweep"
curl -sf -X POST -H 'Content-Type: application/json' \
    "http://$A4/v1/sweep" -d "$SWEEP_KILL" >"$TMP/killed.json" &
sweep_pid=$!
sleep 1
kill -KILL "$w2" 2>/dev/null || true
if ! wait "$sweep_pid"; then
    echo "cluster-smoke: sweep failed after worker kill" >&2
    cat "$TMP/coord.log" >&2
    exit 1
fi
if ! cmp -s "$TMP/golden.json" "$TMP/killed.json"; then
    echo "cluster-smoke: post-kill document differs from golden" >&2
    diff "$TMP/golden.json" "$TMP/killed.json" >&2 || true
    exit 1
fi
metrics=$(curl -sf "http://$A4/metrics")
case "$metrics" in
*'"worker_failures_total":'*) ;;
*) echo "cluster-smoke: no worker failure recorded after kill: $metrics" >&2; exit 1 ;;
esac

echo "cluster-smoke: ok (cluster document byte-identical to single node, incl. after worker kill)"
