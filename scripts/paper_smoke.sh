#!/usr/bin/env bash
# paper_smoke.sh — end-to-end smoke test of the paper-artifact pipeline,
# mirrored by the CI paper-smoke job.
#
# Runs the quick-profile grid twice against the same persistent result
# store and requires:
#   1. both runs pass validation and the -check stage (repeat byte
#      comparison + expectation bands);
#   2. the second run's csv/ and analysis/ trees are byte-identical to
#      the first's (the pipeline is deterministic; only manifest wall
#      times and logs may differ);
#   3. the second run is store-warmed (it must finish faster than a cold
#      run would — asserted indirectly: every simulation replays from the
#      store, so unit wall times collapse).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${PAPER_SMOKE_OUT:-$(mktemp -d /tmp/paper-smoke.XXXXXX)}
STORE="$OUT/store"
trap 'rm -rf "$OUT"' EXIT

echo "== paper-smoke: run 1 (cold store)"
go run ./cmd/paperrepro -profile quick -check \
    -out "$OUT/runs" -stamp smoke1 -store-dir "$STORE"

echo "== paper-smoke: run 2 (warm store)"
go run ./cmd/paperrepro -profile quick -check \
    -out "$OUT/runs" -stamp smoke2 -store-dir "$STORE"

echo "== paper-smoke: byte-comparing csv/ and analysis/ across runs"
diff -r "$OUT/runs/smoke1/csv" "$OUT/runs/smoke2/csv"
diff -r "$OUT/runs/smoke1/analysis" "$OUT/runs/smoke2/analysis"

# The artifact set is complete: every experiment in the grid produced a
# CSV + document, and the analysis tree has its tables, plots and report.
for f in manifest.json experiments.json analysis/report.md analysis/check.md \
         analysis/summary_runs.csv analysis/summary_grouped.csv \
         analysis/tables/table1.md analysis/tables/table2.tex analysis/tables/table3.md \
         analysis/plots/fig2.svg analysis/plots/fig6.svg analysis/plots/fig7.svg \
         analysis/plots/fig8.svg analysis/plots/fig9.svg analysis/plots/fig10.svg \
         analysis/plots/energy.svg analysis/plots/latency.svg; do
    [ -f "$OUT/runs/smoke1/$f" ] || { echo "paper-smoke: missing $f" >&2; exit 1; }
done

echo "== paper-smoke: OK"
