// Package stats collects the counters, histograms and occupancy-time
// distributions the simulator reports, and formats them into the tables and
// figure series the paper's evaluation section uses.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters is a named set of monotonically increasing event counts.
type Counters struct {
	m     map[string]uint64
	order []string
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]uint64)}
}

// Add increments counter name by delta.
func (c *Counters) Add(name string, delta uint64) {
	if _, ok := c.m[name]; !ok {
		c.order = append(c.order, name)
	}
	c.m[name] += delta
}

// Inc increments counter name by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the current value of name (zero if never incremented).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Names returns counter names in first-touch order.
func (c *Counters) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// String renders all counters, one per line, in first-touch order.
func (c *Counters) String() string {
	var b strings.Builder
	for _, n := range c.order {
		fmt.Fprintf(&b, "%-40s %d\n", n, c.m[n])
	}
	return b.String()
}

// MarshalJSON renders the counters as a name→value object.
func (c *Counters) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.m)
}

// UnmarshalJSON rebuilds the counter set from its MarshalJSON form. The
// first-touch order is not part of the JSON document, so a rehydrated set
// iterates in sorted-name order; the JSON form (which sorts map keys)
// round-trips byte-identically, which is what the persistent result store
// relies on.
func (c *Counters) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	c.m = m
	c.order = c.order[:0]
	for name := range m {
		c.order = append(c.order, name)
	}
	sort.Strings(c.order)
	return nil
}

// Histogram is a fixed-bucket histogram over non-negative integer samples.
type Histogram struct {
	// Bounds are inclusive upper bounds of each bucket except the last,
	// which is open (> Bounds[len-2]).
	bounds []uint64
	counts []uint64
	total  uint64
	sum    uint64
	max    uint64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds; an implicit overflow bucket is appended.
func NewHistogram(bounds []uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must ascend")
		}
	}
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) { h.ObserveN(v, 1) }

// ObserveN records a sample with weight n (e.g. cycles spent at a value).
func (h *Histogram) ObserveN(v, n uint64) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[idx] += n
	h.total += n
	h.sum += v * n
	if v > h.max {
		h.max = v
	}
}

// Total returns the total observation weight.
func (h *Histogram) Total() uint64 { return h.total }

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the weighted mean of observations (zero if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// FracAbove returns the fraction of observation weight with value strictly
// greater than bound. Bound must be one of the construction bounds: a
// bucketed histogram cannot split a bucket, so any other bound would
// silently misattribute the samples below it inside that bucket. Passing a
// non-construction bound panics.
func (h *Histogram) FracAbove(bound uint64) float64 {
	found := false
	for _, b := range h.bounds {
		if b == bound {
			found = true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("stats: FracAbove(%d) is not a construction bound of %v", bound, h.bounds))
	}
	if h.total == 0 {
		return 0
	}
	var above uint64
	for i, b := range h.bounds {
		if b > bound {
			above += h.counts[i]
		}
	}
	above += h.counts[len(h.counts)-1] // overflow bucket
	return float64(above) / float64(h.total)
}

// MarshalJSON renders the histogram as its bucket list plus summary stats.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	type bucket struct {
		Bound uint64 `json:"bound"` // ^uint64(0) renders as 18446744073709551615 (overflow)
		Count uint64 `json:"count"`
	}
	bks := h.Buckets()
	out := make([]bucket, len(bks))
	for i, b := range bks {
		out[i] = bucket{b.Bound, b.Count}
	}
	return json.Marshal(struct {
		Total   uint64   `json:"total"`
		Max     uint64   `json:"max"`
		Mean    float64  `json:"mean"`
		Buckets []bucket `json:"buckets"`
	}{h.total, h.max, h.Mean(), out})
}

// UnmarshalJSON rebuilds the histogram from its MarshalJSON form: bucket
// bounds and counts are explicit in the document; the internal weighted sum
// is recovered from mean*total (exact for any realistic simulation total,
// and the persistent result store verifies full-document round-trips before
// relying on them).
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var doc struct {
		Total   uint64  `json:"total"`
		Max     uint64  `json:"max"`
		Mean    float64 `json:"mean"`
		Buckets []struct {
			Bound uint64 `json:"bound"`
			Count uint64 `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if len(doc.Buckets) < 1 {
		return fmt.Errorf("stats: histogram document has no buckets")
	}
	n := len(doc.Buckets) - 1 // last bucket is the overflow bucket
	if doc.Buckets[n].Bound != ^uint64(0) {
		return fmt.Errorf("stats: histogram document missing overflow bucket")
	}
	bounds := make([]uint64, n)
	counts := make([]uint64, n+1)
	for i := 0; i < n; i++ {
		if i > 0 && doc.Buckets[i].Bound <= doc.Buckets[i-1].Bound {
			return fmt.Errorf("stats: histogram document bounds must ascend")
		}
		bounds[i] = doc.Buckets[i].Bound
		counts[i] = doc.Buckets[i].Count
	}
	counts[n] = doc.Buckets[n].Count
	h.bounds = bounds
	h.counts = counts
	h.total = doc.Total
	h.max = doc.Max
	h.sum = uint64(math.Round(doc.Mean * float64(doc.Total)))
	return nil
}

// Buckets returns (upper-bound, count) pairs; the final pair has bound
// ^uint64(0) for the overflow bucket.
func (h *Histogram) Buckets() []struct {
	Bound uint64
	Count uint64
} {
	out := make([]struct {
		Bound uint64
		Count uint64
	}, len(h.counts))
	for i := range h.bounds {
		out[i].Bound = h.bounds[i]
		out[i].Count = h.counts[i]
	}
	out[len(out)-1].Bound = ^uint64(0)
	out[len(out)-1].Count = h.counts[len(h.counts)-1]
	return out
}

// OccupancyTracker integrates the time (cycles) a structure spends at each
// occupancy level, producing the "percent of occupied time with more than N
// entries" distribution of the paper's Figure 7.
type OccupancyTracker struct {
	hist      *Histogram
	lastLevel uint64
	lastCycle uint64
	started   bool
}

// NewOccupancyTracker creates a tracker with Figure-7 bucket bounds.
func NewOccupancyTracker() *OccupancyTracker {
	return &OccupancyTracker{
		hist: NewHistogram([]uint64{0, 64, 128, 192, 256, 384, 512, 768, 1024}),
	}
}

// Set records that the occupancy changed to level at the given cycle. Time
// since the previous Set accrues to the previous level.
func (o *OccupancyTracker) Set(cycle, level uint64) {
	if o.started && cycle > o.lastCycle {
		o.hist.ObserveN(o.lastLevel, cycle-o.lastCycle)
	}
	o.lastLevel = level
	o.lastCycle = cycle
	o.started = true
}

// Finish flushes time up to endCycle at the current level.
func (o *OccupancyTracker) Finish(endCycle uint64) {
	if o.started && endCycle > o.lastCycle {
		o.hist.ObserveN(o.lastLevel, endCycle-o.lastCycle)
		o.lastCycle = endCycle
	}
}

// OccupiedCycles returns cycles spent with occupancy > 0.
func (o *OccupancyTracker) OccupiedCycles() uint64 {
	var occ uint64
	bk := o.hist.Buckets()
	for i, b := range bk {
		if i == 0 && b.Bound == 0 {
			continue // the v==0 bucket
		}
		occ += b.Count
	}
	return occ
}

// TotalCycles returns all cycles observed.
func (o *OccupancyTracker) TotalCycles() uint64 { return o.hist.Total() }

// FracOccupiedAbove returns, among occupied cycles, the fraction with more
// than n entries. n must be one of Figure 7's thresholds
// (0, 64, 128, 192, 256, 384, 512, 768, 1024).
func (o *OccupancyTracker) FracOccupiedAbove(n uint64) float64 {
	occ := o.OccupiedCycles()
	if occ == 0 {
		return 0
	}
	var above uint64
	for _, b := range o.hist.Buckets() {
		if b.Bound != ^uint64(0) && b.Bound <= n {
			continue
		}
		above += b.Count
	}
	return float64(above) / float64(occ)
}

// MarshalJSON renders the tracker as its occupancy histogram plus the
// occupied-cycle summary.
func (o *OccupancyTracker) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		TotalCycles    uint64     `json:"totalCycles"`
		OccupiedCycles uint64     `json:"occupiedCycles"`
		Histogram      *Histogram `json:"histogram"`
	}{o.TotalCycles(), o.OccupiedCycles(), o.hist})
}

// UnmarshalJSON rebuilds the tracker from its MarshalJSON form. The
// occupied/total summaries are re-derived from the histogram; the
// integration cursor (last level/cycle) is not part of the document, so a
// rehydrated tracker is read-only — exactly how every consumer treats a
// finished run's tracker.
func (o *OccupancyTracker) UnmarshalJSON(data []byte) error {
	var doc struct {
		Histogram *Histogram `json:"histogram"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Histogram == nil {
		return fmt.Errorf("stats: occupancy document has no histogram")
	}
	o.hist = doc.Histogram
	o.lastLevel, o.lastCycle, o.started = 0, 0, false
	return nil
}

// Figure7Thresholds are the x-axis points of the paper's Figure 7.
var Figure7Thresholds = []uint64{0, 64, 128, 192, 256, 384, 512, 768, 1024}
