package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned text tables for the experiment harness, mirroring
// the rows/series the paper's tables and figures report.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row of cells; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row where each cell is formatted with fmt.Sprint
// applied to the corresponding value; float64 values render with one
// decimal place (the paper's precision).
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.1f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
