package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Add("b", 5)
	c.Inc("a")
	if c.Get("a") != 2 || c.Get("b") != 5 {
		t.Fatalf("got a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	if c.Get("missing") != 0 {
		t.Fatal("missing counter not zero")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names %v", names)
	}
	if !strings.Contains(c.String(), "a") {
		t.Fatal("String missing counter name")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]uint64{0, 10, 100})
	h.Observe(0)    // bucket <=0
	h.Observe(5)    // <=10
	h.Observe(10)   // <=10
	h.Observe(50)   // <=100
	h.Observe(1000) // overflow
	bk := h.Buckets()
	want := []uint64{1, 2, 1, 1}
	for i, w := range want {
		if bk[i].Count != w {
			t.Fatalf("bucket %d: got %d want %d", i, bk[i].Count, w)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Max() != 1000 {
		t.Fatalf("max %d", h.Max())
	}
}

func TestHistogramFracAbove(t *testing.T) {
	h := NewHistogram([]uint64{0, 10, 100})
	h.ObserveN(0, 6)
	h.ObserveN(5, 2)
	h.ObserveN(50, 1)
	h.ObserveN(500, 1)
	if got := h.FracAbove(0); got != 0.4 {
		t.Fatalf("FracAbove(0) = %v", got)
	}
	if got := h.FracAbove(10); got != 0.2 {
		t.Fatalf("FracAbove(10) = %v", got)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds did not panic")
		}
	}()
	NewHistogram([]uint64{5, 3})
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram([]uint64{0, 10})
	h.ObserveN(4, 5)
	h.ObserveN(8, 5)
	if got := h.Mean(); got != 6 {
		t.Fatalf("mean %v", got)
	}
	var empty Histogram
	if empty.Mean() != 0 {
		t.Fatal("empty mean not zero")
	}
}

func TestOccupancyTracker(t *testing.T) {
	o := NewOccupancyTracker()
	o.Set(0, 0)    // empty from cycle 0
	o.Set(100, 50) // occupied (level 50) from 100
	o.Set(300, 0)  // empty from 300
	o.Finish(400)
	if o.TotalCycles() != 400 {
		t.Fatalf("total %d", o.TotalCycles())
	}
	if o.OccupiedCycles() != 200 {
		t.Fatalf("occupied %d", o.OccupiedCycles())
	}
	// All occupied time was at level 50, which is > 0 but <= 64.
	if got := o.FracOccupiedAbove(0); got != 1.0 {
		t.Fatalf("FracOccupiedAbove(0) = %v", got)
	}
	if got := o.FracOccupiedAbove(64); got != 0 {
		t.Fatalf("FracOccupiedAbove(64) = %v", got)
	}
}

func TestOccupancyTrackerDeepLevels(t *testing.T) {
	o := NewOccupancyTracker()
	o.Set(0, 700) // between 512 and 768
	o.Finish(100)
	if got := o.FracOccupiedAbove(512); got != 1.0 {
		t.Fatalf("above 512: %v", got)
	}
	if got := o.FracOccupiedAbove(768); got != 0 {
		t.Fatalf("above 768: %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "Suite", "Value")
	tb.AddRowf("SFP2K", 12.345)
	tb.AddRow("X")
	s := tb.String()
	if !strings.Contains(s, "Title") || !strings.Contains(s, "SFP2K") {
		t.Fatalf("render missing content:\n%s", s)
	}
	if !strings.Contains(s, "12.3") {
		t.Fatalf("float not rendered at paper precision:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), s)
	}
}

func TestHistogramFracAbovePanicsOnNonBound(t *testing.T) {
	h := NewHistogram([]uint64{0, 10, 100})
	defer func() {
		if recover() == nil {
			t.Fatal("FracAbove(7) with bounds {0,10,100} did not panic")
		}
	}()
	h.FracAbove(7)
}

func TestStatsMarshalJSON(t *testing.T) {
	c := NewCounters()
	c.Add("alpha", 3)
	c.Inc("beta")
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]uint64
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["alpha"] != 3 || m["beta"] != 1 {
		t.Fatalf("counters round-trip = %v", m)
	}

	h := NewHistogram([]uint64{0, 10})
	h.Observe(0)
	h.ObserveN(5, 2)
	h.Observe(99)
	b, err = json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var hv struct {
		Total   uint64  `json:"total"`
		Max     uint64  `json:"max"`
		Mean    float64 `json:"mean"`
		Buckets []struct {
			Bound uint64 `json:"bound"`
			Count uint64 `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(b, &hv); err != nil {
		t.Fatal(err)
	}
	if hv.Total != 4 || hv.Max != 99 || len(hv.Buckets) != 3 {
		t.Fatalf("histogram JSON = %+v", hv)
	}

	o := NewOccupancyTracker()
	o.Set(0, 100)
	o.Finish(50)
	b, err = json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var ov struct {
		TotalCycles    uint64 `json:"totalCycles"`
		OccupiedCycles uint64 `json:"occupiedCycles"`
	}
	if err := json.Unmarshal(b, &ov); err != nil {
		t.Fatal(err)
	}
	if ov.TotalCycles != 50 || ov.OccupiedCycles != 50 {
		t.Fatalf("occupancy JSON = %+v", ov)
	}
}
