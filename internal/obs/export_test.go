package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixture builds a small deterministic timeline + trace pair exercising
// every export path: warmup and measured samples, a redo episode, an
// unmatched redo-start, and each instant event kind.
func fixture() (*Timeline, *TraceWriter) {
	tl := NewTimeline(1000, 8)
	tl.Append(Sample{
		Cycle: 1000, Measuring: false, Uops: 900, IPC: 0.9,
		SRLOcc: 3, STQOcc: 12, LoadBufOcc: 40, WindowOcc: 300, SDBOcc: 0, Ckpts: 4,
		OutstandingMisses: 0, RedoActive: false,
		Stalls:   StallBreakdown{STQ: 10, Sched: 5},
		Forwards: ForwardMix{L1STQ: 30},
		Restarts: 1,
	})
	tl.Append(Sample{
		Cycle: 2000, Measuring: true, Uops: 200, IPC: 0.2,
		SRLOcc: 150, STQOcc: 48, L2STQOcc: 7, LoadBufOcc: 600, WindowOcc: 2000, SDBOcc: 90, Ckpts: 8,
		OutstandingMisses: 3, RedoActive: true,
		Stalls:   StallBreakdown{STQ: 400, LQ: 2, Regs: 80, Ckpt: 9, Window: 100, SDB: 4},
		Forwards: ForwardMix{L1STQ: 12, FC: 44, Indexed: 5},
		Restarts: 0,
	})

	tr := NewTraceWriter(64)
	tr.Record(100, EvCheckpointCreate, 1)
	tr.Record(900, EvBranchMispredict, 0x4010)
	tr.Record(950, EvRestart, 1)
	tr.Record(1200, EvMissReturn, 0x8000_0040)
	tr.Record(1200, EvRedoStart, 150)
	tr.Record(1450, EvMemDepViolation, 0x8000_0080)
	tr.Record(1500, EvRedoEnd, 0)
	tr.Record(1600, EvCheckpointCommit, 1)
	tr.Record(1700, EvSnoopViolation, 0x8000_00c0)
	tr.Record(1800, EvOverflowViolation, 0x8000_0100)
	tr.Record(1900, EvRedoStart, 80) // left open: exporter must close it
	return tl, tr
}

// checkGolden compares got against testdata/<name>, rewriting with
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/obs -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestTimelineCSVGolden(t *testing.T) {
	tl, _ := fixture()
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeline.csv", buf.Bytes())
}

func TestTimelineJSONGolden(t *testing.T) {
	tl, _ := fixture()
	got, err := json.MarshalIndent(tl, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeline.json", append(got, '\n'))
	// And it must round-trip as generic JSON.
	var doc struct {
		SampleEvery uint64 `json:"sampleEvery"`
		Samples     []Sample
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SampleEvery != 1000 || len(doc.Samples) != 2 {
		t.Fatalf("round-trip = %+v", doc)
	}
}

func TestTraceJSONLGolden(t *testing.T) {
	_, tr := fixture()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.jsonl", buf.Bytes())
}

func TestChromeTraceGolden(t *testing.T) {
	tl, tr := fixture()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, tl); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.chrome.json", buf.Bytes())
	// The document must parse and use the trace-event envelope.
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var slices, instants, counters int
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "X":
			slices++
		case "i":
			instants++
		case "C":
			counters++
		}
	}
	// One closed redo pair + one open redo closed by the exporter; 8
	// non-redo events; 2 samples x 2 counter tracks.
	if slices != 2 || instants != 8 || counters != 4 {
		t.Fatalf("chrome trace shape: slices=%d instants=%d counters=%d", slices, instants, counters)
	}
}

func TestMetricSetJSON(t *testing.T) {
	var s MetricSet
	s.Inc(MetricSnoopsInjected)
	s.Add(MetricSRLDrainWaitWAR, 42)
	b, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]uint64
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["snoops_injected"] != 1 || m["srl_drain_wait_war"] != 42 {
		t.Fatalf("metric set JSON = %v", m)
	}
}

func TestTimelineRingEviction(t *testing.T) {
	tl := NewTimeline(10, 3)
	for i := uint64(1); i <= 5; i++ {
		tl.Append(Sample{Cycle: i * 10})
	}
	if tl.Len() != 3 || tl.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", tl.Len(), tl.Dropped())
	}
	ss := tl.Samples()
	if ss[0].Cycle != 30 || ss[2].Cycle != 50 {
		t.Fatalf("ring order = %+v", ss)
	}
	if tl.Last().Cycle != 50 {
		t.Fatalf("last = %+v", tl.Last())
	}
}

func TestTraceCap(t *testing.T) {
	tr := NewTraceWriter(2)
	for i := 0; i < 5; i++ {
		tr.Record(uint64(i), EvRestart, 0)
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	if tr.Count(EvRestart) != 5 {
		t.Fatalf("byKind count = %d, want 5 (keeps counting past cap)", tr.Count(EvRestart))
	}
}
