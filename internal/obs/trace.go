package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// EventKind is a typed pipeline event the trace hook records.
type EventKind uint8

const (
	// EvCheckpointCreate: a new CPR checkpoint opened (Arg = checkpoint id).
	EvCheckpointCreate EventKind = iota
	// EvCheckpointCommit: a checkpoint bulk-committed (Arg = checkpoint id).
	EvCheckpointCommit
	// EvRestart: execution rolled back to a checkpoint (Arg = checkpoint id).
	EvRestart
	// EvMissReturn: a long-latency miss's data returned (Arg = address).
	EvMissReturn
	// EvRedoStart: the SRL began draining — store redo mode entered.
	EvRedoStart
	// EvRedoEnd: the SRL drained empty — store redo mode left.
	EvRedoEnd
	// EvMemDepViolation: a store exposed a memory ordering violation
	// against an executed younger load (Arg = address).
	EvMemDepViolation
	// EvSnoopViolation: an external snoop hit the load buffer (Arg = address).
	EvSnoopViolation
	// EvOverflowViolation: a load-buffer set overflow forced a violation
	// restart (Arg = address).
	EvOverflowViolation
	// EvBranchMispredict: a mispredicted branch resolved (Arg = PC).
	EvBranchMispredict
	// EvDivergence: the differential oracle detected a disagreement with
	// the reference memory system (Arg = address).
	EvDivergence

	numEventKinds
)

var eventNames = [numEventKinds]string{
	EvCheckpointCreate:  "ckpt-create",
	EvCheckpointCommit:  "ckpt-commit",
	EvRestart:           "restart",
	EvMissReturn:        "miss-return",
	EvRedoStart:         "redo-start",
	EvRedoEnd:           "redo-end",
	EvMemDepViolation:   "memdep-violation",
	EvSnoopViolation:    "snoop-violation",
	EvOverflowViolation: "overflow-violation",
	EvBranchMispredict:  "branch-mispredict",
	EvDivergence:        "divergence",
}

// eventCats groups kinds into Chrome trace categories so Perfetto's track
// filter separates checkpointing, the miss/redo machinery and violations.
var eventCats = [numEventKinds]string{
	EvCheckpointCreate:  "ckpt",
	EvCheckpointCommit:  "ckpt",
	EvRestart:           "recovery",
	EvMissReturn:        "miss",
	EvRedoStart:         "redo",
	EvRedoEnd:           "redo",
	EvMemDepViolation:   "violation",
	EvSnoopViolation:    "violation",
	EvOverflowViolation: "violation",
	EvBranchMispredict:  "recovery",
	EvDivergence:        "violation",
}

// String returns the event kind's stable name.
func (k EventKind) String() string {
	if k < numEventKinds {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one recorded pipeline event. Arg is kind-specific: a checkpoint
// id, an address, or a PC (see the EventKind docs).
type Event struct {
	Cycle uint64    `json:"cycle"`
	Kind  EventKind `json:"-"`
	Arg   uint64    `json:"arg"`
}

// MarshalJSON names the kind instead of emitting its enum value.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Cycle uint64 `json:"cycle"`
		Kind  string `json:"kind"`
		Arg   uint64 `json:"arg"`
	}{e.Cycle, e.Kind.String(), e.Arg})
}

// TraceWriter collects typed pipeline events up to a bounded count. The
// zero value is not usable; construct with NewTraceWriter (or through
// Config.NewTraceWriter). It is not safe for concurrent use — each
// simulated core owns its own trace.
type TraceWriter struct {
	events  []Event
	cap     int
	dropped int
	byKind  [numEventKinds]uint64
}

// NewTraceWriter creates a trace bounded to cap events (DefaultTraceCap if
// cap <= 0).
func NewTraceWriter(cap int) *TraceWriter {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &TraceWriter{cap: cap}
}

// Record appends one event; once the cap is reached further events are
// counted as dropped (per-kind totals keep counting).
func (t *TraceWriter) Record(cycle uint64, kind EventKind, arg uint64) {
	t.byKind[kind]++
	if len(t.events) >= t.cap {
		t.dropped++
		return
	}
	t.events = append(t.events, Event{Cycle: cycle, Kind: kind, Arg: arg})
}

// Len returns the number of retained events.
func (t *TraceWriter) Len() int { return len(t.events) }

// Dropped returns how many events the cap discarded.
func (t *TraceWriter) Dropped() int { return t.dropped }

// Count returns how many events of the given kind were recorded
// (including any dropped past the cap).
func (t *TraceWriter) Count(kind EventKind) uint64 { return t.byKind[kind] }

// Events returns the retained events in record order (a copy).
func (t *TraceWriter) Events() []Event {
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// MarshalJSON summarises the trace (length, drops, per-kind counts) —
// the full event stream is exported with WriteJSONL or WriteChromeTrace,
// not embedded in every Results document.
func (t *TraceWriter) MarshalJSON() ([]byte, error) {
	byKind := make(map[string]uint64, numEventKinds)
	for k, n := range t.byKind {
		if n > 0 {
			byKind[EventKind(k).String()] = n
		}
	}
	return json.Marshal(struct {
		Events  int               `json:"events"`
		Dropped int               `json:"dropped"`
		ByKind  map[string]uint64 `json:"byKind"`
	}{len(t.events), t.dropped, byKind})
}

// WriteJSONL renders one Event object per line, in record order.
func (t *TraceWriter) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// One simulated cycle maps to one microsecond of trace time.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    uint64            `json:"ts"`
	Dur   uint64            `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]uint64 `json:"args,omitempty"`
}

// WriteChromeTrace renders the trace in Chrome trace-event format so it
// opens directly in chrome://tracing or https://ui.perfetto.dev. Instant
// events land on one track; EvRedoStart/EvRedoEnd pairs become duration
// slices on a second track; if timeline is non-nil its occupancy and IPC
// series are added as counter tracks.
func (t *TraceWriter) WriteChromeTrace(w io.Writer, timeline *Timeline) error {
	var evs []chromeEvent
	var redoStart uint64
	redoOpen := false
	for _, e := range t.events {
		switch e.Kind {
		case EvRedoStart:
			redoStart, redoOpen = e.Cycle, true
		case EvRedoEnd:
			if redoOpen {
				dur := e.Cycle - redoStart
				if dur == 0 {
					dur = 1
				}
				evs = append(evs, chromeEvent{
					Name: "redo-drain", Cat: "redo", Phase: "X",
					TS: redoStart, Dur: dur, PID: 0, TID: 1,
				})
				redoOpen = false
			}
		default:
			evs = append(evs, chromeEvent{
				Name: e.Kind.String(), Cat: eventCats[e.Kind], Phase: "i",
				TS: e.Cycle, PID: 0, TID: 0, Scope: "t",
				Args: map[string]uint64{"arg": e.Arg},
			})
		}
	}
	if redoOpen {
		// Run ended mid-redo; close the slice at the last event's cycle.
		end := redoStart + 1
		if n := len(t.events); n > 0 && t.events[n-1].Cycle > redoStart {
			end = t.events[n-1].Cycle
		}
		evs = append(evs, chromeEvent{
			Name: "redo-drain", Cat: "redo", Phase: "X",
			TS: redoStart, Dur: end - redoStart, PID: 0, TID: 1,
		})
	}
	if timeline != nil {
		for _, s := range timeline.Samples() {
			evs = append(evs, chromeEvent{
				Name: "occupancy", Cat: "timeline", Phase: "C", TS: s.Cycle, PID: 0,
				Args: map[string]uint64{
					"srl":     uint64(s.SRLOcc),
					"stq":     uint64(s.STQOcc),
					"loadbuf": uint64(s.LoadBufOcc),
					"window":  uint64(s.WindowOcc),
				},
			})
			evs = append(evs, chromeEvent{
				Name: "ipc-x100", Cat: "timeline", Phase: "C", TS: s.Cycle, PID: 0,
				Args: map[string]uint64{"ipc_x100": uint64(s.IPC * 100)},
			})
		}
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		OtherData       struct {
			TimeUnit string `json:"timeUnit"`
		} `json:"otherData"`
	}{TraceEvents: evs, DisplayTimeUnit: "ms"}
	doc.OtherData.TimeUnit = "1 cycle = 1us"
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}
