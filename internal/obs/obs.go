package obs

// Config enables and sizes a run's observability. It is a pure value type
// (no pointers, maps or slices) so it can live inside core.Config without
// breaking the config fingerprint the sweep memoization keys on; an
// observed and an unobserved run of the same machine fingerprint
// differently, which is correct — their Results differ (one carries a
// timeline and a trace).
//
// The zero value disables everything; a disabled run pays a single pointer
// comparison per simulated cycle and allocates nothing.
type Config struct {
	// SampleEvery is the cycle-window width of the time-series sampler:
	// every SampleEvery cycles one Sample is appended to the run's
	// Timeline. Zero disables sampling.
	SampleEvery uint64

	// TimelineCap bounds the in-memory sample ring; once full, the oldest
	// samples are evicted (and counted in Timeline.Dropped). Zero means
	// DefaultTimelineCap.
	TimelineCap int

	// TraceEvents enables the typed event trace (checkpoint create/commit,
	// restarts, miss returns, redo-drain episodes, violations).
	TraceEvents bool

	// TraceCap bounds the retained event count; further events are dropped
	// and counted. Zero means DefaultTraceCap.
	TraceCap int
}

// Defaults for the bounded in-memory buffers.
const (
	// DefaultSampleEvery is the paper-scale default sampling window: 4K
	// cycles resolves the SRL occupancy ramps and redo bursts of Figure 7
	// while keeping a 150K-uop run under ~100 samples.
	DefaultSampleEvery = 4096

	// DefaultTimelineCap retains ~64M cycles of history at the default
	// window before the ring starts evicting.
	DefaultTimelineCap = 16384

	// DefaultTraceCap bounds the event trace to ~24 MB of events.
	DefaultTraceCap = 1 << 20
)

// Enabled reports whether any observability is requested.
func (c Config) Enabled() bool { return c.SampleEvery > 0 || c.TraceEvents }

// DefaultConfig returns full observability at default scale: 4K-cycle
// sampling windows plus the typed event trace.
func DefaultConfig() Config {
	return Config{SampleEvery: DefaultSampleEvery, TraceEvents: true}
}

// timelineCap resolves the configured cap.
func (c Config) timelineCap() int {
	if c.TimelineCap > 0 {
		return c.TimelineCap
	}
	return DefaultTimelineCap
}

// traceCap resolves the configured cap.
func (c Config) traceCap() int {
	if c.TraceCap > 0 {
		return c.TraceCap
	}
	return DefaultTraceCap
}

// NewTimeline builds the run's timeline per the config, or nil when
// sampling is disabled.
func (c Config) NewTimeline() *Timeline {
	if c.SampleEvery == 0 {
		return nil
	}
	return NewTimeline(c.SampleEvery, c.timelineCap())
}

// NewTraceWriter builds the run's event trace per the config, or nil when
// tracing is disabled.
func (c Config) NewTraceWriter() *TraceWriter {
	if !c.TraceEvents {
		return nil
	}
	return NewTraceWriter(c.traceCap())
}
