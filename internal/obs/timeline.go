package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// StallBreakdown is the allocation-stall accounting of one sampling window:
// cycles the front end could not allocate, by cause.
type StallBreakdown struct {
	STQ    uint64 `json:"stq"`
	LQ     uint64 `json:"lq"`
	Sched  uint64 `json:"sched"`
	Regs   uint64 `json:"regs"`
	Ckpt   uint64 `json:"ckpt"`
	Window uint64 `json:"window"`
	SDB    uint64 `json:"sdb"`
}

// Sub returns the per-window delta s - base, saturating at zero so a stats
// reset between snapshots cannot underflow.
func (s StallBreakdown) Sub(base StallBreakdown) StallBreakdown {
	return StallBreakdown{
		STQ:    satSub(s.STQ, base.STQ),
		LQ:     satSub(s.LQ, base.LQ),
		Sched:  satSub(s.Sched, base.Sched),
		Regs:   satSub(s.Regs, base.Regs),
		Ckpt:   satSub(s.Ckpt, base.Ckpt),
		Window: satSub(s.Window, base.Window),
		SDB:    satSub(s.SDB, base.SDB),
	}
}

// ForwardMix is the store-to-load forwarding source mix of one window.
type ForwardMix struct {
	L1STQ   uint64 `json:"l1stq"`
	L2STQ   uint64 `json:"l2stq"`
	FC      uint64 `json:"fc"`
	Indexed uint64 `json:"indexed"`
}

// Sub returns the per-window delta m - base, saturating at zero.
func (m ForwardMix) Sub(base ForwardMix) ForwardMix {
	return ForwardMix{
		L1STQ:   satSub(m.L1STQ, base.L1STQ),
		L2STQ:   satSub(m.L2STQ, base.L2STQ),
		FC:      satSub(m.FC, base.FC),
		Indexed: satSub(m.Indexed, base.Indexed),
	}
}

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Sample is one cycle-window snapshot of the machine: window-relative
// rates (uops, IPC, stalls, forwards, restarts) plus instantaneous
// structure occupancies at the window's closing cycle.
type Sample struct {
	// Cycle is the window's closing cycle (the sample time).
	Cycle uint64 `json:"cycle"`
	// Measuring is false for warmup-region samples.
	Measuring bool `json:"measuring"`

	// Window-relative throughput.
	Uops uint64  `json:"uops"` // committed in this window
	IPC  float64 `json:"ipc"`

	// Instantaneous occupancies.
	SRLOcc     int `json:"srlOcc"`
	STQOcc     int `json:"stqOcc"`   // L1 STQ
	L2STQOcc   int `json:"l2stqOcc"` // hierarchical design only
	LoadBufOcc int `json:"loadBufOcc"`
	WindowOcc  int `json:"windowOcc"` // in-flight window population
	SDBOcc     int `json:"sdbOcc"`
	Ckpts      int `json:"ckpts"` // live checkpoints

	// Machine mode at the sample cycle.
	OutstandingMisses int  `json:"outstandingMisses"`
	RedoActive        bool `json:"redoActive"`

	// Window-relative event rates.
	Stalls   StallBreakdown `json:"stalls"`
	Forwards ForwardMix     `json:"forwards"`
	Restarts uint64         `json:"restarts"`
}

// Timeline is the run's in-memory time-series: a bounded ring of Samples
// in chronological order. Appending to a full ring evicts the oldest
// sample and counts it in Dropped, so a very long run keeps its most
// recent history instead of growing without bound.
type Timeline struct {
	sampleEvery uint64
	samples     []Sample
	start       int // index of the oldest sample
	count       int
	dropped     int
}

// NewTimeline creates a timeline sampling every sampleEvery cycles with a
// ring of cap samples.
func NewTimeline(sampleEvery uint64, cap int) *Timeline {
	if cap <= 0 {
		cap = DefaultTimelineCap
	}
	return &Timeline{sampleEvery: sampleEvery, samples: make([]Sample, 0, cap)}
}

// SampleEvery returns the configured cycle-window width.
func (t *Timeline) SampleEvery() uint64 { return t.sampleEvery }

// Len returns the number of retained samples.
func (t *Timeline) Len() int { return t.count }

// Dropped returns how many old samples the ring evicted.
func (t *Timeline) Dropped() int { return t.dropped }

// Append adds one sample, evicting the oldest if the ring is full.
func (t *Timeline) Append(s Sample) {
	if t.count < cap(t.samples) {
		t.samples = append(t.samples, s)
		t.count++
		return
	}
	t.samples[t.start] = s
	t.start = (t.start + 1) % len(t.samples)
	t.dropped++
}

// Samples returns the retained samples in chronological order (a copy).
func (t *Timeline) Samples() []Sample {
	out := make([]Sample, t.count)
	for i := 0; i < t.count; i++ {
		out[i] = t.samples[(t.start+i)%len(t.samples)]
	}
	return out
}

// Last returns the most recent sample, or a zero Sample if empty.
func (t *Timeline) Last() Sample {
	if t.count == 0 {
		return Sample{}
	}
	return t.samples[(t.start+t.count-1)%len(t.samples)]
}

// timelineHeader is the CSV column set, kept in one place so the header
// and the row writer cannot drift apart.
var timelineHeader = []string{
	"cycle", "measuring", "uops", "ipc",
	"srl_occ", "stq_occ", "l2stq_occ", "loadbuf_occ", "window_occ", "sdb_occ", "ckpts",
	"outstanding_misses", "redo_active",
	"stall_stq", "stall_lq", "stall_sched", "stall_regs", "stall_ckpt", "stall_window", "stall_sdb",
	"fwd_l1stq", "fwd_l2stq", "fwd_fc", "fwd_indexed",
	"restarts",
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// WriteCSV renders the timeline as CSV: one header row, one row per
// sample, chronological.
func (t *Timeline) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, h := range timelineHeader {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(h)
	}
	bw.WriteByte('\n')
	for _, s := range t.Samples() {
		fmt.Fprintf(bw, "%d,%d,%d,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Cycle, b2i(s.Measuring), s.Uops, s.IPC,
			s.SRLOcc, s.STQOcc, s.L2STQOcc, s.LoadBufOcc, s.WindowOcc, s.SDBOcc, s.Ckpts,
			s.OutstandingMisses, b2i(s.RedoActive),
			s.Stalls.STQ, s.Stalls.LQ, s.Stalls.Sched, s.Stalls.Regs, s.Stalls.Ckpt, s.Stalls.Window, s.Stalls.SDB,
			s.Forwards.L1STQ, s.Forwards.L2STQ, s.Forwards.FC, s.Forwards.Indexed,
			s.Restarts)
	}
	return bw.Flush()
}

// WriteJSONL renders the timeline as JSON Lines: one Sample object per
// line, chronological.
func (t *Timeline) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.Samples() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MarshalJSON renders the whole timeline as one object: the window width,
// eviction count and the retained samples.
func (t *Timeline) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		SampleEvery uint64   `json:"sampleEvery"`
		Dropped     int      `json:"dropped"`
		Samples     []Sample `json:"samples"`
	}{t.sampleEvery, t.dropped, t.Samples()})
}
