// Package obs is the simulator's observability layer: typed metric keys
// replacing free-form string counters on the cycle-loop hot path, a
// cycle-window time-series sampler (IPC, structure occupancy, stall causes,
// forwarding mix), and a typed event trace with a Chrome trace-format
// exporter, so runs open in chrome://tracing or Perfetto.
//
// Everything here is designed to be nil-cost when disabled: the core holds
// one pointer that is nil for unobserved runs, metric increments are array
// indexing (no map, no allocation), and no per-cycle work happens beyond a
// single comparison.
package obs

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Metric is a typed key for one hot-path event counter. Using a dense enum
// instead of string keys keeps counting allocation-free (a fixed array
// increment) and makes the set of metrics a simulator version exports part
// of its API rather than an emergent property of its printf calls.
type Metric uint8

// The typed hot-path metrics. The name table below defines the stable
// machine-readable identifier of each; String returns it.
const (
	// Coherence traffic.
	MetricSnoopsInjected Metric = iota // synthetic external snoops injected
	MetricSnoopsExternal               // snoops delivered via ExternalSnoop (multicore)

	// Cycle-occupancy conditions (incremented at most once per cycle).
	MetricCyclesMissOutstanding // cycles with >=1 long-latency miss in flight
	MetricCyclesSRLNonEmpty     // cycles the SRL held at least one store
	MetricCyclesSRLHeadReady    // cycles the SRL head had its data ready

	// Miss classification.
	MetricMissRegionStream // long-latency misses to the streaming region
	MetricMissRegionHeap   // long-latency misses to the heap region
	MetricMissRegionHot    // long-latency misses to the hot region
	MetricPoisonNewMiss    // poisons that opened a new memory-level miss
	MetricPoisonMerged     // poisons merged into an outstanding miss

	// Slice (CFP) drain causes.
	MetricSDBCauseMissRoot // uops drained as the miss root itself
	MetricSDBCauseMemDep   // uops drained behind a poisoned store dependence

	// Store-queue allocation stalls by machine mode.
	MetricSTQStallSRLMode  // allocation stalled on the STQ during SRL mode
	MetricSTQStallMissMode // stalled with a miss outstanding, SRL empty
	MetricSTQStallQuiet    // stalled with no miss in flight

	// SRL drain gating and conflicts.
	MetricSRLDrainWaitData      // head not drained: data not yet re-executed
	MetricSRLDrainWaitWAR       // head not drained: older loads unfinished
	MetricSRLDrainTempDiscards  // stale temporary updates discarded by redo
	MetricSRLDrainSpecConflicts // one-version speculative write conflicts
	MetricSRLStallLoadCycles    // load-cycles spent stalled on the SRL

	// §6.5 data-cache temporary-update variant.
	MetricTempUpdateFetchStalls   // store processing held for a line fetch
	MetricTempUpdateVersionStalls // held for a conflicting version writeback
	MetricSpecWritebacks          // dirty blocks written back before a temp update
	MetricSpecConflicts           // temp updates lost to one-version conflicts

	// Related-work filtered store queue.
	MetricFilteredSearchesSaved // CAM searches skipped by the membership filter

	// Memory-ordering enforcement (fence / release-acquire, DESIGN.md §12).
	MetricSRLDrainWaitRelease // head not drained: release waits for older loads
	MetricSRLDrainWaitSync    // head not drained: older fence/acquire pending
	MetricFenceWaitCycles     // cycles a fence waited for older ops to perform
	MetricLoadsBlockedOnSync  // loads blocked behind an older fence/acquire

	// NumMetrics bounds the enum; it must stay last.
	NumMetrics
)

// metricNames is the stable name table. Names keep the snake_case spelling
// the free-form counters used, so existing output consumers keep working.
var metricNames = [NumMetrics]string{
	MetricSnoopsInjected:          "snoops_injected",
	MetricSnoopsExternal:          "snoops_external",
	MetricCyclesMissOutstanding:   "cycles_miss_outstanding",
	MetricCyclesSRLNonEmpty:       "cycles_srl_nonempty",
	MetricCyclesSRLHeadReady:      "cycles_srl_head_ready",
	MetricMissRegionStream:        "miss_region_stream",
	MetricMissRegionHeap:          "miss_region_heap",
	MetricMissRegionHot:           "miss_region_hot",
	MetricPoisonNewMiss:           "poison_new_miss",
	MetricPoisonMerged:            "poison_merged",
	MetricSDBCauseMissRoot:        "sdb_cause_miss_root",
	MetricSDBCauseMemDep:          "sdb_cause_memdep",
	MetricSTQStallSRLMode:         "stq_stall_srlmode",
	MetricSTQStallMissMode:        "stq_stall_missmode",
	MetricSTQStallQuiet:           "stq_stall_quiet",
	MetricSRLDrainWaitData:        "srl_drain_wait_data",
	MetricSRLDrainWaitWAR:         "srl_drain_wait_war",
	MetricSRLDrainTempDiscards:    "srl_drain_temp_discards",
	MetricSRLDrainSpecConflicts:   "srl_drain_spec_conflicts",
	MetricSRLStallLoadCycles:      "srl_stall_load_cycles",
	MetricTempUpdateFetchStalls:   "temp_update_fetch_stalls",
	MetricTempUpdateVersionStalls: "temp_update_version_stalls",
	MetricSpecWritebacks:          "spec_writebacks",
	MetricSpecConflicts:           "spec_conflicts",
	MetricFilteredSearchesSaved:   "filtered_searches_saved",
	MetricSRLDrainWaitRelease:     "srl_drain_wait_release",
	MetricSRLDrainWaitSync:        "srl_drain_wait_sync",
	MetricFenceWaitCycles:         "fence_wait_cycles",
	MetricLoadsBlockedOnSync:      "loads_blocked_on_sync",
}

// String returns the metric's stable machine-readable name.
func (m Metric) String() string {
	if m < NumMetrics {
		return metricNames[m]
	}
	return fmt.Sprintf("metric(%d)", uint8(m))
}

// MetricByName resolves a stable name back to its Metric key.
func MetricByName(name string) (Metric, bool) {
	for m, n := range metricNames {
		if n == name {
			return Metric(m), true
		}
	}
	return 0, false
}

// AllMetrics lists every typed metric in declaration order.
func AllMetrics() []Metric {
	out := make([]Metric, NumMetrics)
	for i := range out {
		out[i] = Metric(i)
	}
	return out
}

// MetricSet is a fixed, allocation-free set of typed counters. The zero
// value is ready to use; incrementing is a single array-indexed add, which
// is what lets the cycle loop count events with no map hashing and no
// per-cycle allocation.
type MetricSet [NumMetrics]uint64

// Inc increments metric m by one.
func (s *MetricSet) Inc(m Metric) { s[m]++ }

// Add increments metric m by delta.
func (s *MetricSet) Add(m Metric, delta uint64) { s[m] += delta }

// Get returns the current value of metric m.
func (s *MetricSet) Get(m Metric) uint64 { return s[m] }

// Merge adds every counter of o into s. Long-lived processes (the
// srlserved HTTP server) use it to aggregate per-run metric sets into a
// service-lifetime snapshot.
func (s *MetricSet) Merge(o *MetricSet) {
	for i := range s {
		s[i] += o[i]
	}
}

// Snapshot returns a name→value copy of the non-zero metrics, decoupled
// from the live set so callers can export it without holding whatever lock
// guards the original.
func (s *MetricSet) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	for i, v := range s {
		if v != 0 {
			out[Metric(i).String()] = v
		}
	}
	return out
}

// NonZero returns the metrics with non-zero values, in declaration order.
func (s *MetricSet) NonZero() []Metric {
	var out []Metric
	for i, v := range s {
		if v != 0 {
			out = append(out, Metric(i))
		}
	}
	return out
}

// String renders the non-zero metrics one per line, aligned like
// stats.Counters output.
func (s *MetricSet) String() string {
	var b strings.Builder
	for _, m := range s.NonZero() {
		fmt.Fprintf(&b, "%-40s %d\n", m.String(), s[m])
	}
	return b.String()
}

// UnmarshalJSON rebuilds the set from its MarshalJSON name→value form.
// Unknown metric names are an error rather than silently dropped: a
// document that names a metric this build does not know was produced by a
// different code version, and the persistent result store treats such
// entries as unreadable instead of returning a lossy rehydration.
func (s *MetricSet) UnmarshalJSON(data []byte) error {
	var byName map[string]uint64
	if err := json.Unmarshal(data, &byName); err != nil {
		return err
	}
	*s = MetricSet{}
	for name, v := range byName {
		m, ok := MetricByName(name)
		if !ok {
			return fmt.Errorf("obs: unknown metric %q in document", name)
		}
		s[m] = v
	}
	return nil
}

// MarshalJSON renders the non-zero metrics as a name→value object in
// declaration order.
func (s *MetricSet) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, m := range s.NonZero() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:%d", m.String(), s[m])
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}
