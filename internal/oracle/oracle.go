// Package oracle implements a deliberately simple reference memory system
// that runs in lockstep with the real pipeline (behind core.Config.Check):
// a fully searched program-ordered store record set, a program-ordered load
// record set, and a per-word architectural image built from commits and
// drains. It has no timing, no capacity limits, no hashing and no filters —
// every question is answered by a direct search over program-ordered
// records — which is exactly what makes it a useful differential oracle for
// the CAM-free SRL/LCF/FC/load-buffer machinery: any place the fast path's
// answer differs from the slow obvious one is a divergence.
//
// The simulator is a timing model and carries no data values, so "the load
// got the right value" is checked as "the load's producer store is the one
// a full program-ordered search would pick" (store identity implies value
// identity for a deterministic trace). The oracle distinguishes decisions
// that must be exactly right immediately (forwarding: the producer must be
// the youngest resolved+ready older store to the word) from legitimate
// speculation that the machine is allowed to get wrong as long as detection
// machinery catches it before commit (reading memory past a still-unknown
// or unready store); the latter is checked at commit time instead.
package oracle

import (
	"encoding/json"
	"fmt"

	"srlproc/internal/obs"
)

// ForwardKind identifies the mechanism that supplied a load's data.
type ForwardKind uint8

const (
	// FwdMemory: the load read the data cache / memory (no forwarding).
	FwdMemory ForwardKind = iota
	// FwdL1STQ: forwarded from the L1 store queue CAM search.
	FwdL1STQ
	// FwdL2STQ: forwarded from the hierarchical design's L2 store queue.
	FwdL2STQ
	// FwdFC: forwarded from the Forwarding Cache.
	FwdFC
	// FwdIndexed: indexed forwarding through the LCF's last-index.
	FwdIndexed
	// FwdTempCache: the §6.5 variant's temporary update in the data cache.
	// The design records only the load's nearest store identifier (relative
	// age per line is not kept), so this kind is a documented approximation
	// and is exempt from producer checks; its errors are caught by the load
	// buffer during redo.
	FwdTempCache

	numForwardKinds
)

var forwardNames = [numForwardKinds]string{
	FwdMemory: "memory", FwdL1STQ: "l1stq", FwdL2STQ: "l2stq",
	FwdFC: "fc", FwdIndexed: "indexed", FwdTempCache: "tempcache",
}

// String names the forwarding mechanism.
func (k ForwardKind) String() string {
	if k < numForwardKinds {
		return forwardNames[k]
	}
	return fmt.Sprintf("fwd(%d)", uint8(k))
}

// Kind classifies a divergence between the pipeline and the reference model.
type Kind uint8

const (
	// KindForwardAge: a load forwarded from a store that is not older than
	// it in program order (wrong-data; the seeded FaultInvertFwdAge bug
	// lands here).
	KindForwardAge Kind = iota
	// KindForwardSource: a load forwarded from a store the reference model
	// does not know as resolved+ready (unknown identifier, unresolved
	// address, or data not captured).
	KindForwardSource
	// KindForwardAddr: a load forwarded from a store that writes a
	// different word.
	KindForwardAddr
	// KindForwardStale: a load forwarded from an older store than the
	// youngest resolved+ready older store to the same word — silently stale
	// data that no later check can catch (the younger store's own
	// load-buffer check already ran).
	KindForwardStale
	// KindMemoryStale: a load read memory while a resolved+ready undrained
	// older store to the same word was visible to the design's search
	// machinery (only checked for designs whose structures promise
	// detection at decision time; see Options.StrictMemory).
	KindMemoryStale
	// KindCommitProducer: a load committed with a producer that is not the
	// youngest committed older store to its word (stale forward that every
	// detection net missed).
	KindCommitProducer
	// KindCommitVisibility: a load that read memory committed although the
	// youngest committed older store to its word had not drained to memory
	// before the load's access — the load read the pre-store image and
	// nothing caught it.
	KindCommitVisibility
	// KindCommitMissing: a load committed without a recorded decision.
	KindCommitMissing
	// KindCommitStore: a store committed without resolving its address and
	// data.
	KindCommitStore
	// KindDrainOrder: two drains to the same word happened out of program
	// order (memory image corruption).
	KindDrainOrder
	// KindImageMismatch: end-of-run memory image bookkeeping inconsistent
	// (a drained store the commit image does not dominate, or a revocable
	// drain left behind by a squash).
	KindImageMismatch
	// KindLCFFalseNegative: the loose check filter's counter is zero for a
	// store that is resident (and counted) in the SRL — the "no false
	// negatives" guarantee of Section 4.3 is broken.
	KindLCFFalseNegative
	// KindSRLOrder: SRL residency violates FIFO program order or index
	// contiguity.
	KindSRLOrder
	// KindLoadBufOrder: load-buffer nearest-store identifiers are not
	// monotonic in sequence order.
	KindLoadBufOrder
	// KindWARGate: the SRL head drained although a load older than it in
	// program order had not executed (the write-after-read order tracker
	// opened the gate too early).
	KindWARGate
	// KindSyncOrder: a load performed, or a store drained, past an
	// unperformed older fence or load-acquire (the ordering gate of
	// DESIGN.md §12 failed to hold it; the seeded FaultDropSyncGate bug
	// lands here).
	KindSyncOrder
	// KindFenceOrder: a fence performed while an older load was
	// unperformed, an older store undrained, or an older sync unperformed —
	// the fence's full-barrier obligation was not discharged.
	KindFenceOrder
	// KindReleaseOrder: a store-release drained while an older load was
	// still unperformed (release semantics require all older accesses
	// visible before the release's write becomes visible).
	KindReleaseOrder
	// KindSyncVersion: ordering-version bookkeeping inconsistent — a
	// younger release carried a version no greater than an older one's
	// (versions must grow monotonically along program order).
	KindSyncVersion

	numKinds
)

var kindNames = [numKinds]string{
	KindForwardAge:       "forward-age",
	KindForwardSource:    "forward-source",
	KindForwardAddr:      "forward-addr",
	KindForwardStale:     "forward-stale",
	KindMemoryStale:      "memory-stale",
	KindCommitProducer:   "commit-producer",
	KindCommitVisibility: "commit-visibility",
	KindCommitMissing:    "commit-missing",
	KindCommitStore:      "commit-store",
	KindDrainOrder:       "drain-order",
	KindImageMismatch:    "image-mismatch",
	KindLCFFalseNegative: "lcf-false-negative",
	KindSRLOrder:         "srl-order",
	KindLoadBufOrder:     "loadbuf-order",
	KindWARGate:          "war-gate",
	KindSyncOrder:        "sync-order",
	KindFenceOrder:       "fence-order",
	KindReleaseOrder:     "release-order",
	KindSyncVersion:      "sync-version",
}

// String returns the divergence kind's stable name.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Divergence is one detected disagreement between the pipeline and the
// reference model. Expected/Actual are kind-specific identifiers (store
// identifiers for forwarding kinds, sequence numbers for ordering kinds).
type Divergence struct {
	Kind     Kind
	Cycle    uint64
	LoadSeq  uint64
	StoreSeq uint64
	Addr     uint64
	Expected uint64
	Actual   uint64
	Detail   string
	// Events carries the most recent typed pipeline events before the
	// divergence (restarts, redo episodes, violations), attached by the
	// core's checker for post-mortem context.
	Events []obs.Event
}

// String renders the divergence for logs and test failures.
func (d Divergence) String() string {
	return fmt.Sprintf("%s @cycle %d: load=%d store=%d addr=%#x expected=%d actual=%d (%s)",
		d.Kind, d.Cycle, d.LoadSeq, d.StoreSeq, d.Addr, d.Expected, d.Actual, d.Detail)
}

// MarshalJSON names the kind instead of emitting its enum value.
func (d Divergence) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Kind     string      `json:"kind"`
		Cycle    uint64      `json:"cycle"`
		LoadSeq  uint64      `json:"loadSeq,omitempty"`
		StoreSeq uint64      `json:"storeSeq,omitempty"`
		Addr     uint64      `json:"addr,omitempty"`
		Expected uint64      `json:"expected,omitempty"`
		Actual   uint64      `json:"actual,omitempty"`
		Detail   string      `json:"detail,omitempty"`
		Events   []obs.Event `json:"events,omitempty"`
	}{d.Kind.String(), d.Cycle, d.LoadSeq, d.StoreSeq, d.Addr, d.Expected, d.Actual, d.Detail, d.Events})
}

// Options configures an Oracle.
type Options struct {
	// StrictMemory enables the decision-time memory-staleness check
	// (KindMemoryStale). It must be set only for configurations whose
	// search machinery promises to find every resolved+ready older store
	// at load-issue time: the CAM-searched designs, and the SRL design
	// with the LCF enabled (a zero counter proves absence). Without the
	// LCF the SRL design legitimately lets such loads speculate (FC
	// eviction, discarded temporary updates) and relies on the load
	// buffer to catch them — the commit-time checks still apply.
	StrictMemory bool
	// MaxDivergences bounds the retained divergence list (the count keeps
	// counting past it). Zero means DefaultMaxDivergences.
	MaxDivergences int
	// OnDivergence, when set, is called for each retained divergence
	// before it is stored, so the caller can attach context (the event
	// trace).
	OnDivergence func(*Divergence)
}

// DefaultMaxDivergences bounds retained divergences per run.
const DefaultMaxDivergences = 16

// NoProducer is the producer value of a load that read memory (mirrors
// lsq.NoFwd without importing lsq).
const NoProducer = ^uint64(0)

// storeRec is the reference model's record of one store.
type storeRec struct {
	seq, id   uint64
	addr      uint64
	size      uint8
	resolved  bool // address known to the disambiguation machinery
	ready     bool // data captured (forwardable)
	drained   bool
	drainCyc  uint64
	committed bool
	rel       bool   // store-release (DESIGN.md §12)
	ver       uint64 // ordering version stamped at allocation
}

// loadRec is the reference model's record of one load's decision.
type loadRec struct {
	seq      uint64
	addr     uint64
	kind     ForwardKind
	producer uint64
	cycle    uint64 // decision cycle: when the load read its source
}

// wordState is the per-word architectural bookkeeping.
type wordState struct {
	// inflight holds resolved, uncommitted stores to the word (any drain
	// state), in resolution order.
	inflight []*storeRec
	// commit is the youngest committed store to the word.
	commit *storeRec
	// archDrain is the sequence number of the youngest drained committed
	// store (irrevocable); specDrains are drains of still-uncommitted
	// stores, in increasing sequence order, popped from the tail on squash
	// and migrated to archDrain at commit.
	archDrain  uint64
	specDrains []uint64
}

// Oracle is the lockstep reference model. All hooks are synchronous: the
// core calls them at the architectural event they mirror, so the oracle's
// state at a hook is exactly the machine's program-order state at that
// moment. It is not safe for concurrent use — each core owns one.
type Oracle struct {
	strictMemory bool
	maxDivs      int
	onDiv        func(*Divergence)

	stores      map[uint64]*storeRec // by sequence number
	byID        map[uint64]*storeRec // by store identifier
	uncommitted map[uint64]*storeRec // squash working set (by seq)
	loads       map[uint64]*loadRec
	words       map[uint64]*wordState
	specWords   map[uint64]struct{} // words with non-empty specDrains

	// Memory-ordering model (DESIGN.md §12). pendingLoads holds every
	// allocated load that has not yet performed (made its data-source
	// decision); pendingSyncOps holds every allocated unperformed ordering
	// operation — true for a full fence, false for a load-acquire.
	// undrained holds every allocated store whose value has not reached the
	// memory image, committed or not (the fence barrier spans both).
	pendingLoads   map[uint64]struct{}
	pendingSyncOps map[uint64]bool
	undrained      map[uint64]*storeRec
	// lastRelSeq/lastRelVer track the youngest surviving release for the
	// version-monotonicity check; reset when a squash removes it.
	lastRelSeq uint64
	lastRelVer uint64

	divs  []Divergence
	count uint64
}

// New builds an oracle.
func New(opts Options) *Oracle {
	if opts.MaxDivergences <= 0 {
		opts.MaxDivergences = DefaultMaxDivergences
	}
	return &Oracle{
		strictMemory:   opts.StrictMemory,
		maxDivs:        opts.MaxDivergences,
		onDiv:          opts.OnDivergence,
		stores:         make(map[uint64]*storeRec),
		byID:           make(map[uint64]*storeRec),
		uncommitted:    make(map[uint64]*storeRec),
		loads:          make(map[uint64]*loadRec),
		words:          make(map[uint64]*wordState),
		specWords:      make(map[uint64]struct{}),
		pendingLoads:   make(map[uint64]struct{}),
		pendingSyncOps: make(map[uint64]bool),
		undrained:      make(map[uint64]*storeRec),
	}
}

func word(addr uint64) uint64 { return addr >> 3 }

func (o *Oracle) wordState(w uint64) *wordState {
	ws := o.words[w]
	if ws == nil {
		ws = &wordState{}
		o.words[w] = ws
	}
	return ws
}

// Report files a divergence (also used by the core-side structure invariant
// sweeps so every divergence flows through one bounded, context-attaching
// path).
func (o *Oracle) Report(d Divergence) {
	o.count++
	if len(o.divs) >= o.maxDivs {
		return
	}
	if o.onDiv != nil {
		o.onDiv(&d)
	}
	o.divs = append(o.divs, d)
}

// Count returns the total number of divergences detected (including any
// past the retention cap).
func (o *Oracle) Count() uint64 { return o.count }

// Divergences returns the retained divergences in detection order.
func (o *Oracle) Divergences() []Divergence { return o.divs }

// StoreAlloc records a store entering the window with its identifier
// (called once per allocation; a replayed store re-enters after Squash
// removed its previous incarnation). rel marks a store-release and ver is
// the ordering version the core stamps at allocation; release versions
// must grow monotonically along program order (each release bumps the
// counter after stamping its own value).
func (o *Oracle) StoreAlloc(cycle, seq, id uint64, rel bool, ver uint64) {
	r := &storeRec{seq: seq, id: id, rel: rel, ver: ver}
	o.stores[seq] = r
	o.byID[id] = r
	o.uncommitted[seq] = r
	o.undrained[seq] = r
	if rel {
		if seq > o.lastRelSeq && o.lastRelSeq != 0 && ver <= o.lastRelVer {
			o.Report(Divergence{Kind: KindSyncVersion, Cycle: cycle, StoreSeq: seq,
				Expected: o.lastRelVer + 1, Actual: ver,
				Detail: "release version not greater than an older release's"})
		}
		o.lastRelSeq, o.lastRelVer = seq, ver
	}
}

// LoadAlloc records a load entering the window; acq marks a load-acquire,
// which doubles as an ordering operation younger accesses may not pass.
func (o *Oracle) LoadAlloc(cycle, seq uint64, acq bool) {
	o.pendingLoads[seq] = struct{}{}
	if acq {
		o.pendingSyncOps[seq] = false
	}
}

// FenceAlloc records a full fence entering the window.
func (o *Oracle) FenceAlloc(cycle, seq uint64) {
	o.pendingSyncOps[seq] = true
}

// FencePerformed checks a fence's full-barrier obligation at the moment the
// machine considers it performed: every older load must have performed,
// every older store must have drained out to the memory image, and every
// older ordering operation must itself have performed.
func (o *Oracle) FencePerformed(cycle, seq uint64) {
	delete(o.pendingSyncOps, seq)
	if ls := oldestBelow(o.pendingLoads, seq); ls != 0 {
		o.Report(Divergence{Kind: KindFenceOrder, Cycle: cycle, LoadSeq: ls, StoreSeq: seq,
			Detail: "fence performed past an unperformed older load"})
		return
	}
	var oldest *storeRec
	for ss, r := range o.undrained {
		if ss < seq && (oldest == nil || ss < oldest.seq) {
			oldest = r
		}
	}
	if oldest != nil {
		o.Report(Divergence{Kind: KindFenceOrder, Cycle: cycle, StoreSeq: seq,
			Addr: oldest.addr, Actual: oldest.seq,
			Detail: "fence performed past an undrained older store"})
		return
	}
	if ps := oldestSyncBelow(o.pendingSyncOps, seq); ps != 0 {
		o.Report(Divergence{Kind: KindFenceOrder, Cycle: cycle, StoreSeq: seq, Actual: ps,
			Detail: "fence performed past an unperformed older sync operation"})
	}
}

// oldestBelow returns the smallest key < seq, or 0 when none. Map
// iteration order is randomized, so every ordering check must pick its
// witness deterministically — divergence documents are compared
// byte-for-byte across skip-inverted runs.
func oldestBelow(m map[uint64]struct{}, seq uint64) uint64 {
	best := uint64(0)
	for k := range m {
		if k < seq && (best == 0 || k < best) {
			best = k
		}
	}
	return best
}

func oldestSyncBelow(m map[uint64]bool, seq uint64) uint64 {
	best := uint64(0)
	for k := range m {
		if k < seq && (best == 0 || k < best) {
			best = k
		}
	}
	return best
}

// StoreResolved records a store's address becoming known to the
// disambiguation machinery; ready additionally marks its data captured
// (forwardable). A store may resolve unready first (early address from the
// slice path) and upgrade later.
func (o *Oracle) StoreResolved(cycle, seq, addr uint64, size uint8, ready bool) {
	r := o.stores[seq]
	if r == nil {
		// Tolerate a resolve without alloc rather than crash mid-run; it
		// will surface as a commit-store divergence if real.
		return
	}
	if !r.resolved {
		r.resolved = true
		r.addr, r.size = addr, size
		ws := o.wordState(word(addr))
		ws.inflight = append(ws.inflight, r)
	}
	if ready {
		r.ready = true
	}
}

// StoreDrained records a store's value reaching the memory image (an
// architectural write behind commit, or a speculative redo write from the
// SRL). Per-word drains must follow program order.
func (o *Oracle) StoreDrained(cycle, seq uint64) {
	r := o.stores[seq]
	if r == nil || !r.resolved {
		o.Report(Divergence{Kind: KindDrainOrder, Cycle: cycle, StoreSeq: seq,
			Detail: "drain of unknown or unresolved store"})
		return
	}
	w := word(r.addr)
	ws := o.wordState(w)
	last := ws.archDrain
	if n := len(ws.specDrains); n > 0 {
		last = ws.specDrains[n-1]
	}
	if r.drained || seq <= last {
		o.Report(Divergence{Kind: KindDrainOrder, Cycle: cycle, StoreSeq: seq,
			Addr: r.addr, Expected: last, Actual: seq,
			Detail: "same-word drains out of program order"})
		return
	}
	// Ordering gates (DESIGN.md §12): no store's value may reach the memory
	// image past an unperformed older fence/acquire, and a store-release may
	// not drain while any older load is unperformed.
	if ps := oldestSyncBelow(o.pendingSyncOps, seq); ps != 0 {
		o.Report(Divergence{Kind: KindSyncOrder, Cycle: cycle, StoreSeq: seq,
			Addr: r.addr, Actual: ps,
			Detail: "store drained past an unperformed older sync operation"})
	}
	if r.rel {
		if ls := oldestBelow(o.pendingLoads, seq); ls != 0 {
			o.Report(Divergence{Kind: KindReleaseOrder, Cycle: cycle, LoadSeq: ls,
				StoreSeq: seq, Addr: r.addr,
				Detail: "store-release drained past an unperformed older load"})
		}
	}
	r.drained = true
	r.drainCyc = cycle
	delete(o.undrained, seq)
	if r.committed {
		ws.archDrain = seq
		if ws.commit != r {
			// Superseded committed store: this drain was its last act.
			delete(o.stores, seq)
			delete(o.byID, r.id)
		}
	} else {
		ws.specDrains = append(ws.specDrains, seq)
		o.specWords[w] = struct{}{}
	}
}

// CommitStore records a store becoming architectural. Commits arrive in
// program order (bulk checkpoint commits walk the window in sequence
// order), so the per-word commit image always holds the youngest committed
// store.
func (o *Oracle) CommitStore(cycle, seq uint64) {
	r := o.stores[seq]
	if r == nil || !r.resolved || !r.ready {
		o.Report(Divergence{Kind: KindCommitStore, Cycle: cycle, StoreSeq: seq,
			Detail: "store committed without resolved address and data"})
		if r == nil {
			return
		}
	}
	r.committed = true
	delete(o.uncommitted, seq)
	w := word(r.addr)
	ws := o.wordState(w)
	ws.inflight = removeRec(ws.inflight, r)
	if old := ws.commit; old != nil && old.drained {
		// The replaced commit record has fully retired (drained and
		// superseded); an undrained one must stay reachable for its drain,
		// which may trail commit by many cycles (drain bandwidth).
		delete(o.stores, old.seq)
		delete(o.byID, old.id)
	}
	ws.commit = r
	if r.drained {
		// Its drain (if speculative) becomes irrevocable: drains and
		// commits both follow program order per word, so it is the front.
		if len(ws.specDrains) > 0 && ws.specDrains[0] == seq {
			ws.specDrains = ws.specDrains[1:]
			if len(ws.specDrains) == 0 {
				delete(o.specWords, w)
			}
		}
		if seq > ws.archDrain {
			ws.archDrain = seq
		}
	}
}

// refProducer returns the store a full program-ordered search would forward
// from: the youngest resolved+ready store to the word older than the load
// (committed or not, drained or not — temporary forwarding structures
// legitimately outlive drains), or nil when the load should read memory.
func (o *Oracle) refProducer(ws *wordState, loadSeq uint64) *storeRec {
	var best *storeRec
	for _, r := range ws.inflight {
		if r.ready && r.seq < loadSeq && (best == nil || r.seq > best.seq) {
			best = r
		}
	}
	if best == nil && ws.commit != nil {
		// Committed stores are older than every uncommitted load.
		best = ws.commit
	}
	return best
}

// staleMatch returns a resolved+ready undrained store older than the load,
// if one exists — the witness that a memory read returns pre-store data.
func (o *Oracle) staleMatch(ws *wordState, loadSeq uint64) *storeRec {
	for _, r := range ws.inflight {
		if r.ready && !r.drained && r.seq < loadSeq {
			return r
		}
	}
	if c := ws.commit; c != nil && !c.drained {
		return c
	}
	return nil
}

// LoadDecision records (and checks) a load's data-source decision at the
// moment it reads its source: producer is the forwarding store's identifier
// or NoProducer for a memory read.
func (o *Oracle) LoadDecision(cycle, seq, addr uint64, kind ForwardKind, producer uint64) {
	o.loads[seq] = &loadRec{seq: seq, addr: addr, kind: kind, producer: producer, cycle: cycle}
	// Ordering gate (DESIGN.md §12): a load may not perform past an
	// unperformed older fence or load-acquire. An acquire checking its own
	// decision is excluded by the strict inequality; it stops being pending
	// the moment it performs.
	if ps := oldestSyncBelow(o.pendingSyncOps, seq); ps != 0 {
		o.Report(Divergence{Kind: KindSyncOrder, Cycle: cycle, LoadSeq: seq,
			Addr: addr, Actual: ps,
			Detail: "load performed past an unperformed older sync operation"})
	}
	delete(o.pendingLoads, seq)
	delete(o.pendingSyncOps, seq) // a performed acquire releases its gate
	w := word(addr)
	switch kind {
	case FwdTempCache:
		// Documented approximation (§6.5): exempt.
	case FwdMemory:
		if !o.strictMemory {
			return
		}
		ws := o.words[w]
		if ws == nil {
			return
		}
		if m := o.staleMatch(ws, seq); m != nil {
			o.Report(Divergence{Kind: KindMemoryStale, Cycle: cycle, LoadSeq: seq,
				StoreSeq: m.seq, Addr: addr, Expected: m.id, Actual: NoProducer,
				Detail: "load read memory past a visible matching store"})
		}
	default:
		p := o.byID[producer]
		switch {
		case p == nil || !p.resolved || !p.ready:
			o.Report(Divergence{Kind: KindForwardSource, Cycle: cycle, LoadSeq: seq,
				Addr: addr, Actual: producer,
				Detail: kind.String() + " forward from a store the reference model has no resolved+ready record of"})
		case word(p.addr) != w:
			o.Report(Divergence{Kind: KindForwardAddr, Cycle: cycle, LoadSeq: seq,
				StoreSeq: p.seq, Addr: addr, Expected: word(p.addr), Actual: w,
				Detail: kind.String() + " forward from a store to a different word"})
		case p.seq >= seq:
			o.Report(Divergence{Kind: KindForwardAge, Cycle: cycle, LoadSeq: seq,
				StoreSeq: p.seq, Addr: addr, Expected: seq, Actual: p.seq,
				Detail: kind.String() + " forward from a store not older than the load"})
		default:
			if ref := o.refProducer(o.wordState(w), seq); ref != nil && ref.id != producer {
				o.Report(Divergence{Kind: KindForwardStale, Cycle: cycle, LoadSeq: seq,
					StoreSeq: p.seq, Addr: addr, Expected: ref.id, Actual: producer,
					Detail: kind.String() + " forward skipped a younger resolved+ready older store"})
			}
		}
	}
}

// CommitLoad checks a load against the architectural image as it commits:
// its producer must be the word's youngest committed older store, and a
// memory read requires that store to have drained before the load's access.
func (o *Oracle) CommitLoad(cycle, seq uint64) {
	r := o.loads[seq]
	if r == nil {
		o.Report(Divergence{Kind: KindCommitMissing, Cycle: cycle, LoadSeq: seq,
			Detail: "load committed without a recorded decision"})
		return
	}
	delete(o.loads, seq)
	if r.kind == FwdTempCache {
		return
	}
	ws := o.words[word(r.addr)]
	var expected *storeRec
	if ws != nil {
		expected = ws.commit
	}
	if r.kind == FwdMemory {
		if expected != nil && (!expected.drained || expected.drainCyc > r.cycle) {
			o.Report(Divergence{Kind: KindCommitVisibility, Cycle: cycle, LoadSeq: seq,
				StoreSeq: expected.seq, Addr: r.addr, Expected: expected.id, Actual: NoProducer,
				Detail: "memory load committed before its architectural producer drained"})
		}
		return
	}
	if expected == nil || expected.id != r.producer {
		want := NoProducer
		if expected != nil {
			want = expected.id
		}
		o.Report(Divergence{Kind: KindCommitProducer, Cycle: cycle, LoadSeq: seq,
			Addr: r.addr, Expected: want, Actual: r.producer,
			Detail: r.kind.String() + " load committed with a non-architectural producer"})
	}
}

// Squash discards every record with sequence number >= fromSeq (checkpoint
// restart): loads, uncommitted stores, and their revocable drains.
func (o *Oracle) Squash(fromSeq uint64) {
	for seq, r := range o.uncommitted {
		if seq < fromSeq {
			continue
		}
		if r.resolved {
			ws := o.words[word(r.addr)]
			if ws != nil {
				ws.inflight = removeRec(ws.inflight, r)
			}
		}
		delete(o.stores, seq)
		delete(o.byID, r.id)
		delete(o.uncommitted, seq)
		delete(o.undrained, seq)
	}
	for seq := range o.pendingLoads {
		if seq >= fromSeq {
			delete(o.pendingLoads, seq)
		}
	}
	for seq := range o.pendingSyncOps {
		if seq >= fromSeq {
			delete(o.pendingSyncOps, seq)
		}
	}
	if o.lastRelSeq >= fromSeq {
		// The youngest-known release was squashed; its replayed incarnation
		// re-stamps a fresh (never rolled back, so still larger) version.
		o.lastRelSeq, o.lastRelVer = 0, 0
	}
	for w := range o.specWords {
		ws := o.words[w]
		sd := ws.specDrains
		for len(sd) > 0 && sd[len(sd)-1] >= fromSeq {
			sd = sd[:len(sd)-1]
		}
		ws.specDrains = sd
		if len(sd) == 0 {
			delete(o.specWords, w)
		}
	}
	for seq := range o.loads {
		if seq >= fromSeq {
			delete(o.loads, seq)
		}
	}
}

// Finish runs the end-of-run image cross-check: the commit image must
// dominate every irrevocable drain, and every remaining revocable drain
// must belong to a live, drained, uncommitted store.
func (o *Oracle) Finish(cycle uint64) {
	for w, ws := range o.words {
		if ws.archDrain > 0 && (ws.commit == nil || ws.commit.seq < ws.archDrain) {
			got := uint64(0)
			if ws.commit != nil {
				got = ws.commit.seq
			}
			o.Report(Divergence{Kind: KindImageMismatch, Cycle: cycle,
				Addr: w << 3, Expected: ws.archDrain, Actual: got,
				Detail: "commit image older than an irrevocable drain"})
		}
		for _, seq := range ws.specDrains {
			r := o.stores[seq]
			if r == nil || !r.drained || r.committed {
				o.Report(Divergence{Kind: KindImageMismatch, Cycle: cycle,
					Addr: w << 3, Actual: seq,
					Detail: "revocable drain with no matching live store"})
			}
		}
	}
}

func removeRec(s []*storeRec, r *storeRec) []*storeRec {
	for i, x := range s {
		if x == r {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}
