package oracle

import (
	"encoding/json"
	"strings"
	"testing"
)

func newTest(strict bool) *Oracle {
	return New(Options{StrictMemory: strict})
}

// allocResolved is shorthand: a plain (non-release) store allocated,
// resolved, and ready.
func allocResolved(o *Oracle, cycle, seq, id, addr uint64) {
	o.StoreAlloc(cycle, seq, id, false, 0)
	o.StoreResolved(cycle, seq, addr, 8, true)
}

func wantKinds(t *testing.T, o *Oracle, kinds ...Kind) {
	t.Helper()
	got := o.Divergences()
	if uint64(len(kinds)) != o.Count() || len(got) != len(kinds) {
		t.Fatalf("want %d divergences %v, got count=%d %v", len(kinds), kinds, o.Count(), got)
	}
	for i, k := range kinds {
		if got[i].Kind != k {
			t.Fatalf("divergence %d: want %v, got %v", i, k, got[i])
		}
	}
}

func TestCleanForwardAndCommit(t *testing.T) {
	o := newTest(true)
	allocResolved(o, 1, 10, 100, 0x40)
	// Load 11 forwards from store 10 — the unique older ready match.
	o.LoadDecision(2, 11, 0x40, FwdL1STQ, 100)
	o.CommitStore(3, 10)
	o.CommitLoad(3, 11)
	o.StoreDrained(4, 10)
	// A later memory load sees the drained image.
	o.LoadDecision(5, 12, 0x44, FwdMemory, NoProducer)
	o.CommitLoad(6, 12)
	o.Finish(7)
	wantKinds(t, o)
}

func TestForwardAgeAndAddrAndSource(t *testing.T) {
	o := newTest(true)
	allocResolved(o, 1, 20, 200, 0x80)
	// Forward from a younger store (the seeded-bug signature).
	o.LoadDecision(2, 15, 0x80, FwdFC, 200)
	// Forward from a store to a different word.
	o.LoadDecision(3, 25, 0x10, FwdFC, 200)
	// Forward from an unknown producer.
	o.LoadDecision(4, 26, 0x80, FwdIndexed, 999)
	// Forward from a resolved-but-unready store.
	o.StoreAlloc(5, 27, 201, false, 0)
	o.StoreResolved(5, 27, 0x88, 8, false)
	o.LoadDecision(6, 28, 0x88, FwdL1STQ, 201)
	wantKinds(t, o, KindForwardAge, KindForwardAddr, KindForwardSource, KindForwardSource)
}

func TestForwardStale(t *testing.T) {
	o := newTest(true)
	allocResolved(o, 1, 10, 100, 0x40)
	allocResolved(o, 2, 12, 102, 0x40)
	// Load 13 must pick store 12, not the older 10.
	o.LoadDecision(3, 13, 0x40, FwdL1STQ, 100)
	wantKinds(t, o, KindForwardStale)
}

func TestMemoryStaleStrictOnly(t *testing.T) {
	for _, strict := range []bool{true, false} {
		o := newTest(strict)
		allocResolved(o, 1, 10, 100, 0x40)
		o.LoadDecision(2, 11, 0x40, FwdMemory, NoProducer)
		if strict {
			wantKinds(t, o, KindMemoryStale)
		} else {
			wantKinds(t, o)
		}
	}
}

func TestMemoryPastDrainedStoreIsClean(t *testing.T) {
	o := newTest(true)
	allocResolved(o, 1, 10, 100, 0x40)
	o.StoreDrained(2, 10) // speculative redo drain: value visible in memory
	o.LoadDecision(3, 11, 0x40, FwdMemory, NoProducer)
	o.CommitStore(4, 10)
	o.CommitLoad(4, 11)
	wantKinds(t, o)
}

func TestCommitProducerAndVisibility(t *testing.T) {
	o := newTest(false)
	allocResolved(o, 1, 10, 100, 0x40)
	allocResolved(o, 1, 12, 102, 0x40)
	// Load 13 forwarded from the stale store 10; both stores commit first.
	o.LoadDecision(2, 13, 0x40, FwdFC, 100)
	// Load 14 read memory although store 12 has not drained.
	o.LoadDecision(2, 14, 0x40, FwdMemory, NoProducer)
	o.CommitStore(3, 10)
	o.CommitStore(3, 12)
	o.CommitLoad(3, 13)
	o.CommitLoad(3, 14)
	// The forward-stale decision fires at decision time too when strict is
	// off? No: FwdFC checks run regardless of StrictMemory.
	wantKinds(t, o, KindForwardStale, KindCommitProducer, KindCommitVisibility)
}

func TestCommitVisibilityDrainAfterAccess(t *testing.T) {
	o := newTest(false)
	allocResolved(o, 1, 10, 100, 0x40)
	// Load reads memory at cycle 2; the store drains only at cycle 5.
	o.LoadDecision(2, 11, 0x40, FwdMemory, NoProducer)
	o.CommitStore(4, 10)
	o.StoreDrained(5, 10)
	o.CommitLoad(6, 11)
	wantKinds(t, o, KindCommitVisibility)
}

func TestCommitMissingAndCommitStore(t *testing.T) {
	o := newTest(false)
	o.CommitLoad(1, 5)
	o.StoreAlloc(2, 6, 60, false, 0)
	o.CommitStore(3, 6) // never resolved
	wantKinds(t, o, KindCommitMissing, KindCommitStore)
}

func TestDrainOrder(t *testing.T) {
	o := newTest(false)
	allocResolved(o, 1, 10, 100, 0x40)
	allocResolved(o, 1, 12, 102, 0x40)
	o.StoreDrained(2, 12)
	o.StoreDrained(3, 10) // older drains after younger: image corruption
	wantKinds(t, o, KindDrainOrder)
}

func TestSquashRevokesDrainsAndRecords(t *testing.T) {
	o := newTest(true)
	allocResolved(o, 1, 10, 100, 0x40)
	allocResolved(o, 1, 12, 102, 0x40)
	o.StoreDrained(2, 10)
	o.StoreDrained(2, 12)
	o.LoadDecision(2, 13, 0x40, FwdL1STQ, 102)
	// Restart from seq 12: store 12's drain and load 13 vanish.
	o.Squash(12)
	// Replay: store 12 reallocates with a fresh identifier and drains again
	// — not a drain-order violation, its old incarnation was revoked.
	allocResolved(o, 3, 12, 103, 0x40)
	o.StoreDrained(4, 12)
	o.LoadDecision(5, 13, 0x40, FwdL1STQ, 103)
	o.CommitStore(6, 10)
	o.CommitStore(6, 12)
	o.CommitLoad(6, 13)
	o.Finish(7)
	wantKinds(t, o)
}

func TestFinishImageMismatch(t *testing.T) {
	o := newTest(false)
	allocResolved(o, 1, 10, 100, 0x40)
	o.CommitStore(2, 10)
	o.StoreDrained(3, 10)
	// Corrupt the bookkeeping deliberately to prove Finish checks it.
	o.words[word(0x40)].commit = nil
	o.Finish(4)
	wantKinds(t, o, KindImageMismatch)
}

func TestDivergenceCapAndCount(t *testing.T) {
	o := New(Options{MaxDivergences: 2})
	for i := 0; i < 5; i++ {
		o.CommitLoad(1, uint64(100+i))
	}
	if o.Count() != 5 || len(o.Divergences()) != 2 {
		t.Fatalf("want count 5, retained 2; got %d, %d", o.Count(), len(o.Divergences()))
	}
}

func TestOnDivergenceCallback(t *testing.T) {
	var seen []Kind
	o := New(Options{OnDivergence: func(d *Divergence) { seen = append(seen, d.Kind) }})
	o.CommitLoad(1, 5)
	if len(seen) != 1 || seen[0] != KindCommitMissing {
		t.Fatalf("callback saw %v", seen)
	}
}

func TestDivergenceJSON(t *testing.T) {
	d := Divergence{Kind: KindForwardAge, Cycle: 7, LoadSeq: 3, Detail: "x"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"kind":"forward-age"`) {
		t.Fatalf("kind not named in %s", b)
	}
}

func TestSyncOrderLoadPastFence(t *testing.T) {
	o := newTest(false)
	o.FenceAlloc(1, 10)
	o.LoadAlloc(1, 11, false)
	o.LoadDecision(2, 11, 0x40, FwdMemory, NoProducer)
	wantKinds(t, o, KindSyncOrder)
}

func TestAcquireSelfDecisionClean(t *testing.T) {
	o := newTest(false)
	// The acquire's own decision is not gated by itself, and once performed
	// it no longer gates younger loads.
	o.LoadAlloc(1, 10, true)
	o.LoadDecision(2, 10, 0x40, FwdMemory, NoProducer)
	o.LoadAlloc(3, 11, false)
	o.LoadDecision(4, 11, 0x48, FwdMemory, NoProducer)
	wantKinds(t, o)
}

func TestSyncOrderStoreDrainPastAcquire(t *testing.T) {
	o := newTest(false)
	o.LoadAlloc(1, 10, true) // unperformed acquire
	allocResolved(o, 1, 11, 100, 0x40)
	o.StoreDrained(2, 11)
	wantKinds(t, o, KindSyncOrder)
}

func TestReleaseOrderDrainPastLoad(t *testing.T) {
	o := newTest(false)
	o.LoadAlloc(1, 10, false)
	o.StoreAlloc(1, 11, 100, true, 1)
	o.StoreResolved(1, 11, 0x40, 8, true)
	o.StoreDrained(2, 11)
	wantKinds(t, o, KindReleaseOrder)
}

func TestFenceOrderChecks(t *testing.T) {
	// Unperformed older load.
	o := newTest(false)
	o.LoadAlloc(1, 10, false)
	o.FenceAlloc(1, 11)
	o.FencePerformed(2, 11)
	wantKinds(t, o, KindFenceOrder)
	// Undrained older store.
	o = newTest(false)
	allocResolved(o, 1, 10, 100, 0x40)
	o.FenceAlloc(1, 11)
	o.FencePerformed(2, 11)
	wantKinds(t, o, KindFenceOrder)
	// Unperformed older sync.
	o = newTest(false)
	o.FenceAlloc(1, 10)
	o.FenceAlloc(1, 11)
	o.FencePerformed(2, 11)
	wantKinds(t, o, KindFenceOrder)
}

func TestFenceCleanAfterAllOlderDone(t *testing.T) {
	o := newTest(false)
	o.LoadAlloc(1, 10, false)
	allocResolved(o, 1, 11, 100, 0x40)
	o.FenceAlloc(1, 12)
	o.LoadDecision(2, 10, 0x48, FwdMemory, NoProducer)
	o.StoreDrained(3, 11)
	o.FencePerformed(4, 12)
	wantKinds(t, o)
}

func TestSyncVersionMonotonic(t *testing.T) {
	o := newTest(false)
	o.StoreAlloc(1, 10, 100, true, 5)
	o.StoreAlloc(2, 12, 101, true, 5) // version failed to advance
	wantKinds(t, o, KindSyncVersion)
}

func TestSquashClearsOrderingState(t *testing.T) {
	o := newTest(false)
	o.LoadAlloc(1, 10, false)
	o.FenceAlloc(1, 11)
	o.StoreAlloc(1, 12, 100, true, 3)
	o.Squash(10)
	// Replay: the fence performs immediately — nothing older survives — and
	// the release's fresh version restarts the monotonicity chain.
	o.FenceAlloc(2, 11)
	o.FencePerformed(3, 11)
	o.StoreAlloc(4, 12, 101, true, 4)
	wantKinds(t, o)
}

func TestKindAndForwardKindNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	for k := ForwardKind(0); k < numForwardKinds; k++ {
		if strings.HasPrefix(k.String(), "fwd(") {
			t.Fatalf("forward kind %d unnamed", k)
		}
	}
}
