package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"srlproc/internal/core"
	"srlproc/internal/store"
	"srlproc/internal/trace"
)

func storePoints(n int) []Point {
	var pts []Point
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(core.DesignSRL)
		cfg.WarmupUops = 500
		cfg.RunUops = 3_000
		cfg.Seed = uint64(7000 + i)
		pts = append(pts, Point{Label: fmt.Sprintf("p%d", i), Cfg: cfg, Suite: trace.WEB})
	}
	return pts
}

// TestWarmRestartFromDiskStore is the end-to-end warm-restart guarantee of
// the two-tier design: a sweep runs against a fresh memo cache backed by a
// disk store, the "process" restarts (new Cache, same store directory),
// and the identical sweep replays with zero simulations and byte-identical
// result documents.
func TestWarmRestartFromDiskStore(t *testing.T) {
	dir := t.TempDir()
	pts := storePoints(3)

	open := func() *Cache {
		disk, err := store.OpenDisk(dir)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCache()
		c.AttachStore(disk)
		return c
	}

	c1 := open()
	rep1, err := Run(context.Background(), pts, Options{Workers: 2, Cache: c1})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Simulated != len(pts) || rep1.CacheHits != 0 {
		t.Fatalf("cold sweep: simulated=%d hits=%d", rep1.Simulated, rep1.CacheHits)
	}
	c1.FlushStore() // the restarting process drains write-through first
	if st := c1.Stats(); st.StorePuts != uint64(len(pts)) || st.StoreHits != 0 {
		t.Fatalf("cold sweep store stats: %+v", st)
	}

	c2 := open() // fresh memo tier — simulates a process restart
	rep2, err := Run(context.Background(), pts, Options{Workers: 2, Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Simulated != 0 {
		t.Fatalf("warm sweep simulated %d points, want 0", rep2.Simulated)
	}
	if rep2.CacheHits != len(pts) {
		t.Fatalf("warm sweep hits=%d, want %d", rep2.CacheHits, len(pts))
	}
	st := c2.Stats()
	if st.StoreHits != uint64(len(pts)) || st.StoreMisses != 0 || st.StorePuts != 0 {
		t.Fatalf("warm sweep store stats: %+v", st)
	}
	for i := range pts {
		want, err := json.Marshal(rep1.Points[i].Results)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(rep2.Points[i].Results)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("point %d: warm-restart results are not byte-identical", i)
		}
	}
}

// TestCacheStoreStampFlip pins the code-version isolation at the cache
// layer: a cache whose stamp differs (a rebuilt binary) misses the store
// and recomputes rather than hydrating another build's results.
func TestCacheStoreStampFlip(t *testing.T) {
	mem := store.NewMem()
	pts := storePoints(1)

	c1 := NewCache()
	c1.AttachStore(mem)
	if _, err := Run(context.Background(), pts, Options{Workers: 1, Cache: c1}); err != nil {
		t.Fatal(err)
	}
	c1.FlushStore()

	c2 := NewCache()
	c2.AttachStore(mem)
	c2.stamp += "-other-build" // what a rebuilt binary's CodeStamp looks like
	rep, err := Run(context.Background(), pts, Options{Workers: 1, Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Simulated != 1 {
		t.Fatalf("flipped stamp served stale store results: %+v", rep)
	}
	if st := c2.Stats(); st.StoreMisses != 1 || st.StoreHits != 0 {
		t.Fatalf("flipped stamp store stats: %+v", st)
	}

	c3 := NewCache()
	c3.AttachStore(mem)
	rep3, err := Run(context.Background(), pts, Options{Workers: 1, Cache: c3})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Simulated != 0 {
		t.Fatalf("matching stamp missed the store: %+v", rep3)
	}
}

// TestStoreErrorsNeverFailSweep: a persistent tier that fails every
// operation must degrade the cache to tier-1-only behaviour, not fail (or
// stall) the sweep.
func TestStoreErrorsNeverFailSweep(t *testing.T) {
	c := NewCache()
	c.AttachStore(failingStore{})
	pts := storePoints(2)
	rep, err := Run(context.Background(), pts, Options{Workers: 2, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	c.FlushStore()
	if rep.Simulated != 2 || rep.Failed != 0 {
		t.Fatalf("sweep over failing store: %+v", rep)
	}
	st := c.Stats()
	if st.StoreErrors == 0 || st.StorePuts != 0 {
		t.Fatalf("failing store stats: %+v", st)
	}
}

// TestFailedComputationsNotWrittenThrough: only successful simulations may
// reach the persistent tier.
func TestFailedComputationsNotWrittenThrough(t *testing.T) {
	mem := store.NewMem()
	c := NewCache()
	c.AttachStore(mem)
	cfg := churnCfg(8000)
	boom := errors.New("boom")
	_, _, err := c.do(context.Background(), cfg, trace.WEB, func() (*core.Results, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	c.FlushStore()
	if st := mem.Stats(); st.Puts != 0 || st.Entries != 0 {
		t.Fatalf("failed computation reached the store: %+v", st)
	}
}

// TestConcurrentSweepWithStore runs duplicate points through a
// store-backed cache under the race detector: single-flight collapse, the
// store probe and asynchronous write-through all race here.
func TestConcurrentSweepWithStore(t *testing.T) {
	disk, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	c.AttachStore(disk)
	base := storePoints(2)
	var pts []Point
	for i := 0; i < 4; i++ {
		pts = append(pts, base...)
	}
	rep, err := Run(context.Background(), pts, Options{Workers: 4, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Simulated != len(base) {
		t.Fatalf("duplicate points simulated %d times, want %d", rep.Simulated, len(base))
	}
	c.FlushStore()
	if st, ok := c.StoreStats(); !ok || st.Puts != uint64(len(base)) {
		t.Fatalf("store stats: ok=%v %+v", ok, st)
	}
}

// failingStore errors on every operation.
type failingStore struct{}

var errStoreDown = errors.New("store down")

func (failingStore) Get(store.Key) (*core.Results, bool, error) { return nil, false, errStoreDown }
func (failingStore) Put(store.Key, *core.Results) (store.Entry, error) {
	return store.Entry{}, errStoreDown
}
func (failingStore) Delete(store.Key) error       { return errStoreDown }
func (failingStore) List() ([]store.Entry, error) { return nil, errStoreDown }
func (failingStore) Stats() store.Stats           { return store.Stats{} }
func (failingStore) Close() error                 { return nil }
