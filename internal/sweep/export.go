package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"srlproc/internal/core"
)

// MarshalJSON renders one point outcome: its label/suite key, cost, and
// the full Results document (with its derived figures) when successful.
func (p *PointResult) MarshalJSON() ([]byte, error) {
	var errStr string
	if p.Err != nil {
		errStr = p.Err.Error()
	}
	return json.Marshal(struct {
		Label      string        `json:"label"`
		Suite      string        `json:"suite"`
		CacheHit   bool          `json:"cacheHit"`
		WallSecs   float64       `json:"wallSecs"`
		UopsPerSec float64       `json:"uopsPerSec"`
		Err        string        `json:"err,omitempty"`
		Results    *core.Results `json:"results,omitempty"`
	}{
		Label:      p.Point.Label,
		Suite:      p.Point.Suite.String(),
		CacheHit:   p.CacheHit,
		WallSecs:   p.Wall.Seconds(),
		UopsPerSec: p.UopsPerSec,
		Err:        errStr,
		Results:    p.Results,
	})
}

// MarshalJSON renders the whole sweep: per-point outcomes plus the
// pool-level metrics (elapsed, cache hit ratio, worker utilization).
func (r *Report) MarshalJSON() ([]byte, error) {
	var errStr string
	if r.Err != nil {
		errStr = r.Err.Error()
	}
	points := make([]*PointResult, len(r.Points))
	for i := range r.Points {
		points[i] = &r.Points[i]
	}
	return json.Marshal(struct {
		Points            []*PointResult `json:"points"`
		ElapsedSecs       float64        `json:"elapsedSecs"`
		CacheHits         int            `json:"cacheHits"`
		CacheHitRatio     float64        `json:"cacheHitRatio"`
		Simulated         int            `json:"simulated"`
		Failed            int            `json:"failed"`
		Workers           int            `json:"workers"`
		WorkerUtilization float64        `json:"workerUtilization"`
		Throughput        float64        `json:"uopsPerSec"`
		Err               string         `json:"err,omitempty"`
	}{
		Points:            points,
		ElapsedSecs:       r.Elapsed.Seconds(),
		CacheHits:         r.CacheHits,
		CacheHitRatio:     r.CacheHitRatio(),
		Simulated:         r.Simulated,
		Failed:            r.Failed,
		Workers:           r.Workers,
		WorkerUtilization: r.WorkerUtilization(),
		Throughput:        r.Throughput(),
		Err:               errStr,
	})
}

// WriteCSV renders the sweep as CSV: one row per point with its key
// figures and cost, in input order.
func (r *Report) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("label,suite,cache_hit,wall_secs,uops_per_sec,cycles,uops,ipc,err\n")
	for i := range r.Points {
		p := &r.Points[i]
		var cycles, uops uint64
		var ipc float64
		if p.Results != nil {
			cycles, uops, ipc = p.Results.Cycles, p.Results.Uops, p.Results.IPC()
		}
		errStr := ""
		if p.Err != nil {
			errStr = csvQuote(p.Err.Error())
		}
		fmt.Fprintf(bw, "%s,%s,%d,%.3f,%.0f,%d,%d,%.4f,%s\n",
			csvQuote(p.Point.Label), p.Point.Suite, b2i(p.CacheHit),
			p.Wall.Seconds(), p.UopsPerSec, cycles, uops, ipc, errStr)
	}
	return bw.Flush()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// csvQuote quotes a field only when it needs it (commas, quotes, newlines).
func csvQuote(s string) string {
	needs := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' || c == '\r' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out = append(out, '"')
		}
		out = append(out, s[i])
	}
	return string(append(out, '"'))
}
