package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"srlproc/internal/core"
	"srlproc/internal/trace"
)

// churnCfg returns distinct fingerprints cheaply (no real simulation runs
// behind these: the tests below use fake compute functions).
func churnCfg(seed uint64) core.Config {
	cfg := core.DefaultConfig(core.DesignSRL)
	cfg.Seed = seed
	return cfg
}

// TestCacheChurnStaysWithinBudget is the regression test for the
// unbounded-memoization leak: a capped cache fed far more distinct points
// than its budget must stay inside both the entry and byte budgets, with
// the overflow accounted as evictions.
func TestCacheChurnStaysWithinBudget(t *testing.T) {
	const budget = 8
	c := NewCacheWithBudget(budget, 0)
	const churn = 100
	for i := 0; i < churn; i++ {
		cfg := churnCfg(uint64(1000 + i))
		res, hit, err := c.do(context.Background(), cfg, trace.WEB, func() (*core.Results, error) {
			return fakeResults(cfg, trace.WEB), nil
		})
		if err != nil || hit || res == nil {
			t.Fatalf("point %d: res=%v hit=%v err=%v", i, res, hit, err)
		}
		if n := c.Len(); n > budget {
			t.Fatalf("point %d: cache holds %d entries, budget %d", i, n, budget)
		}
	}
	st := c.Stats()
	if st.Entries != budget {
		t.Fatalf("entries=%d, want budget %d", st.Entries, budget)
	}
	if st.Evictions != churn-budget {
		t.Fatalf("evictions=%d, want %d", st.Evictions, churn-budget)
	}
	if st.Misses != churn || st.Hits != 0 {
		t.Fatalf("hits=%d misses=%d", st.Hits, st.Misses)
	}
}

// TestCacheByteBudget pins the byte bound: results carrying large
// observability buffers must evict older entries once the estimated
// footprint passes the budget.
func TestCacheByteBudget(t *testing.T) {
	// Each fake result has a fixed base footprint (~4 KiB); budget three.
	c := NewCacheWithBudget(0, 3*4096)
	for i := 0; i < 20; i++ {
		cfg := churnCfg(uint64(2000 + i))
		_, _, err := c.do(context.Background(), cfg, trace.MM, func() (*core.Results, error) {
			return fakeResults(cfg, trace.MM), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if b := c.Bytes(); b > 3*4096 {
			t.Fatalf("point %d: cache bytes %d over budget", i, b)
		}
	}
	if c.Evictions() == 0 {
		t.Fatal("byte budget never evicted")
	}
}

// TestCacheLRUOrder verifies a touched (hit) entry survives eviction in
// favour of a colder one.
func TestCacheLRUOrder(t *testing.T) {
	c := NewCacheWithBudget(2, 0)
	run := func(seed uint64) (*core.Results, bool) {
		cfg := churnCfg(seed)
		res, hit, err := c.do(context.Background(), cfg, trace.WS, func() (*core.Results, error) {
			return fakeResults(cfg, trace.WS), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, hit
	}
	run(1) // cache: [1]
	run(2) // cache: [2 1]
	if _, hit := run(1); !hit {
		t.Fatal("expected hit on 1") // cache: [1 2]
	}
	run(3) // evicts 2, the LRU: cache [3 1]
	if _, hit := run(1); !hit {
		t.Fatal("touched entry 1 was evicted before colder entry 2")
	}
	if _, hit := run(2); hit {
		t.Fatal("cold entry 2 survived eviction")
	}
}

// TestCachePoisonedRetryAccounting pins hit/miss accounting on the
// failed-attempt retry path: a poisoned point whose waiter retries must
// neither double-count nor deadlock. Goroutine A fails (one miss), waiter
// B loops and computes fresh (one miss), waiter C of B's attempt counts
// one hit — hits+misses equals completed do calls exactly.
func TestCachePoisonedRetryAccounting(t *testing.T) {
	c := NewCache()
	cfg := churnCfg(3000)

	firstEntered := make(chan struct{})
	releaseFirst := make(chan struct{})
	poisonErr := errors.New("poisoned attempt")

	var wg sync.WaitGroup
	// A: enters first, fails after release.
	wg.Add(1)
	var aHit bool
	var aErr error
	go func() {
		defer wg.Done()
		_, aHit, aErr = c.do(context.Background(), cfg, trace.PROD, func() (*core.Results, error) {
			close(firstEntered)
			<-releaseFirst
			return nil, poisonErr
		})
	}()
	<-firstEntered

	// B and C: wait on A's in-flight attempt. After A fails, exactly one
	// of them becomes the fresh computer and the other waits on it.
	results := make(chan struct {
		hit bool
		err error
	}, 2)
	var computes int32
	var computeMu sync.Mutex
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, hit, err := c.do(context.Background(), cfg, trace.PROD, func() (*core.Results, error) {
				computeMu.Lock()
				computes++
				computeMu.Unlock()
				time.Sleep(2 * time.Millisecond) // widen the single-flight window
				return fakeResults(cfg, trace.PROD), nil
			})
			results <- struct {
				hit bool
				err error
			}{hit, err}
		}()
	}
	// Give B and C time to park on A's entry, then poison it.
	time.Sleep(5 * time.Millisecond)
	close(releaseFirst)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("poisoned-then-retried point deadlocked")
	}

	if aErr == nil || aHit {
		t.Fatalf("first attempt: hit=%v err=%v", aHit, aErr)
	}
	var hits, freshes int
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("retried caller failed: %v", r.err)
		}
		if r.hit {
			hits++
		} else {
			freshes++
		}
	}
	// The scheduler decides whether C parks on B's attempt (1 fresh + 1
	// hit) or both retry serially against a ready entry (also 1 fresh + 1
	// hit) — but a double fresh compute would mean single-flight broke.
	if computes != 1 || freshes != 1 || hits != 1 {
		t.Fatalf("computes=%d freshes=%d hits=%d, want 1/1/1", computes, freshes, hits)
	}
	// Exactly one hit, and exactly two misses (A's failure + the retry).
	if c.Hits() != 1 || c.Misses() != 2 {
		t.Fatalf("cache accounting hits=%d misses=%d, want 1/2", c.Hits(), c.Misses())
	}
}

// TestCacheWaiterCancellation pins ctx behaviour on the waiting path: a
// waiter cancelled while an attempt is in flight returns ctx.Err() without
// counting a hit or a miss and without disturbing the computation.
func TestCacheWaiterCancellation(t *testing.T) {
	c := NewCache()
	cfg := churnCfg(3100)
	entered := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.do(context.Background(), cfg, trace.SERVER, func() (*core.Results, error) {
			close(entered)
			<-release
			return fakeResults(cfg, trace.SERVER), nil
		})
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	_, hit, err := c.do(ctx, cfg, trace.SERVER, func() (*core.Results, error) {
		t.Error("cancelled waiter must not compute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) || hit {
		t.Fatalf("cancelled waiter: hit=%v err=%v", hit, err)
	}
	if c.Hits() != 0 {
		t.Fatalf("cancelled waiter counted a hit")
	}

	close(release)
	wg.Wait()
	// The in-flight computation completed and cached normally.
	if c.Misses() != 1 || c.Len() != 1 {
		t.Fatalf("computation disturbed: misses=%d len=%d", c.Misses(), c.Len())
	}
}

// TestCacheResetDuringInflightCompute pins Reset safety: a Reset racing an
// in-flight computation must not let the stale entry re-insert itself or
// corrupt the accounting, and a fresh compute for the same key after Reset
// proceeds independently.
func TestCacheResetDuringInflightCompute(t *testing.T) {
	c := NewCache()
	cfg := churnCfg(3200)
	entered := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, hit, err := c.do(context.Background(), cfg, trace.SFP2K, func() (*core.Results, error) {
			close(entered)
			<-release
			return fakeResults(cfg, trace.SFP2K), nil
		})
		// The stale computer still gets its own result back.
		if res == nil || hit || err != nil {
			t.Errorf("stale compute: res=%v hit=%v err=%v", res, hit, err)
		}
	}()
	<-entered
	c.Reset()
	if c.Len() != 0 || c.Misses() != 0 {
		t.Fatalf("reset left state: len=%d misses=%d", c.Len(), c.Misses())
	}
	close(release)
	wg.Wait()

	// The completed stale entry must not have re-registered itself.
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("stale compute re-inserted after Reset: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	// A fresh compute after Reset is a normal miss-then-hit.
	for want, wantHit := 0, false; want < 2; want, wantHit = want+1, true {
		_, hit, err := c.do(context.Background(), cfg, trace.SFP2K, func() (*core.Results, error) {
			return fakeResults(cfg, trace.SFP2K), nil
		})
		if err != nil || hit != wantHit {
			t.Fatalf("post-reset call %d: hit=%v err=%v", want, hit, err)
		}
	}
}

// TestCacheResetConcurrentChurn hammers Reset against concurrent do calls
// under the race detector and checks the budget invariant afterwards.
func TestCacheResetConcurrentChurn(t *testing.T) {
	const budget = 4
	c := NewCacheWithBudget(budget, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cfg := churnCfg(uint64(4000 + (w*31+i)%16))
				c.do(context.Background(), cfg, trace.SINT2K, func() (*core.Results, error) {
					if i%7 == 3 {
						return nil, fmt.Errorf("transient failure")
					}
					return fakeResults(cfg, trace.SINT2K), nil
				})
			}
		}(w)
	}
	for r := 0; r < 20; r++ {
		time.Sleep(time.Millisecond)
		c.Reset()
	}
	close(stop)
	wg.Wait()
	// Quiesced: every ready entry is within budget (in-flight entries have
	// drained with the workers).
	if n := c.Len(); n > budget {
		t.Fatalf("after churn+resets cache holds %d entries, budget %d", n, budget)
	}
}

// TestCacheSetBudgetEvictsImmediately verifies shrinking the budget on a
// live cache trims it in place.
func TestCacheSetBudgetEvictsImmediately(t *testing.T) {
	c := NewCacheWithBudget(0, 0) // unbounded
	for i := 0; i < 10; i++ {
		cfg := churnCfg(uint64(5000 + i))
		c.do(context.Background(), cfg, trace.WEB, func() (*core.Results, error) {
			return fakeResults(cfg, trace.WEB), nil
		})
	}
	if c.Len() != 10 {
		t.Fatalf("len=%d", c.Len())
	}
	c.SetBudget(3, 0)
	if c.Len() != 3 || c.Evictions() != 7 {
		t.Fatalf("after SetBudget: len=%d evictions=%d", c.Len(), c.Evictions())
	}
}
