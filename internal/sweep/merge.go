package sweep

import (
	"errors"
	"fmt"

	"srlproc/internal/core"
)

// MergeReports combines partial reports from sharded execution into one
// Report over the canonical point list, in canonical order.
//
// points is the full sweep (for an experiment, bench.ExperimentPoints);
// each part covers some subset of it, matched by core.PointFingerprint.
// Shards may overlap — re-dispatch after a worker failure can legitimately
// run a point twice — and the first result for a point wins, which is
// sound because the simulator is deterministic in its config: every run of
// a point produces identical Results. A part point whose fingerprint does
// not appear in the canonical list is an error (the shards are answering a
// different sweep); a canonical point no part covered is reported as a
// failed point, mirroring how Run reports points a cancelled pool never
// reached.
//
// Aggregate counters are summed across shards: CacheHits, Simulated,
// Failed, and Workers (the cluster-wide pool size). Elapsed is the maximum
// part elapsed — shards run concurrently, so the slowest shard bounds the
// wall time. Err is rebuilt with errors.Join over the merged points, like
// Run's.
func MergeReports(points []Point, parts ...*Report) (*Report, error) {
	rep := &Report{Points: make([]PointResult, len(points))}
	index := make(map[uint64]int, len(points))
	for i, p := range points {
		rep.Points[i].Point = p
		fp := core.PointFingerprint(p.Cfg, p.Suite)
		if prev, dup := index[fp]; dup {
			return nil, fmt.Errorf("sweep: merge: points %d and %d share fingerprint %016x", prev, i, fp)
		}
		index[fp] = i
	}
	covered := make([]bool, len(points))
	for _, part := range parts {
		if part == nil {
			continue
		}
		if part.Elapsed > rep.Elapsed {
			rep.Elapsed = part.Elapsed
		}
		rep.Workers += part.Workers
		for i := range part.Points {
			pr := &part.Points[i]
			fp := core.PointFingerprint(pr.Point.Cfg, pr.Point.Suite)
			at, ok := index[fp]
			if !ok {
				return nil, fmt.Errorf("sweep: merge: shard point %s (fingerprint %016x) is not in the sweep", pr.Point, fp)
			}
			if covered[at] {
				continue // re-dispatched duplicate; determinism makes it identical
			}
			covered[at] = true
			rep.Points[at] = *pr
		}
	}
	for i := range rep.Points {
		if !covered[i] {
			rep.Points[i].Err = fmt.Errorf("sweep: point not run in any shard")
		}
	}
	var errs []error
	for i := range rep.Points {
		pr := &rep.Points[i]
		switch {
		case pr.CacheHit:
			rep.CacheHits++
		case pr.Err == nil:
			rep.Simulated++
		}
		if pr.Err != nil {
			rep.Failed++
			errs = append(errs, fmt.Errorf("%s: %w", pr.Point, pr.Err))
		}
	}
	rep.Err = errors.Join(errs...)
	return rep, nil
}
