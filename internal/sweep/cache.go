package sweep

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"srlproc/internal/core"
	"srlproc/internal/store"
	"srlproc/internal/trace"
)

// Cache memoizes simulation results by the stable fingerprint of their
// (Config, suite) point — the seed and run lengths are part of the config
// and therefore part of the key. The simulator is deterministic in its
// config, so a cached *core.Results is indistinguishable from a fresh run.
//
// Concurrent requests for the same point are collapsed: the first caller
// simulates, later callers wait for its result (single-flight), so one
// sweep never simulates a point twice no matter how its worker pool
// schedules duplicates. Failed or cancelled computations are not cached.
//
// The cache is bounded: it holds at most its entry budget of memoized
// points and at most its byte budget of estimated result footprint,
// evicting the least-recently-used ready entry when either is exceeded.
// A long-lived process (the srlserved HTTP server) can therefore keep the
// process-global cache hot indefinitely without it growing into a memory
// leak. In-flight computations are never evicted — single-flight collapse
// always holds — and eviction never invalidates a pointer a caller already
// received.
//
// Cached results are shared pointers and must be treated as read-only by
// all consumers, which every aggregation path in this repository does.
type Cache struct {
	mu         sync.Mutex
	m          map[uint64]*cacheEntry
	lru        *list.List // ready entries, most recently used at front
	bytes      int64
	maxEntries int
	maxBytes   int64
	hits       uint64
	misses     uint64
	evictions  uint64

	// Persistent tier (see AttachStore in store.go). store is nil unless
	// attached; stamp is the binary's code-version stamp folded into every
	// store key; writeSem bounds asynchronous write-through goroutines and
	// writeWG lets FlushStore wait for them.
	store       store.ResultStore
	stamp       string
	writeSem    chan struct{}
	writeWG     sync.WaitGroup
	storeHits   uint64
	storeMisses uint64
	storePuts   uint64
	storeErrors uint64
}

type cacheEntry struct {
	key   uint64
	ready chan struct{} // closed when res/err are final
	res   *core.Results
	err   error

	// LRU bookkeeping, guarded by Cache.mu. elem is nil while the
	// computation is in flight and after eviction.
	elem  *list.Element
	bytes int64
}

// Default budgets for NewCache and the process-global cache. The byte
// budget is an estimate of retained result footprint (see Stats), sized so
// a steadily churning server stays comfortably inside a small container.
const (
	DefaultCacheEntries = 4096
	DefaultCacheBytes   = 256 << 20 // 256 MiB of estimated result footprint
)

// NewCache returns an empty cache with the default entry and byte budgets.
func NewCache() *Cache {
	return NewCacheWithBudget(DefaultCacheEntries, DefaultCacheBytes)
}

// NewCacheWithBudget returns an empty cache bounded to at most maxEntries
// memoized points and maxBytes of estimated result footprint. A zero or
// negative budget disables that bound.
func NewCacheWithBudget(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		m:          make(map[uint64]*cacheEntry),
		lru:        list.New(),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
}

// globalCache memoizes across every sweep in the process, so the repeated
// points of the paper's evaluation (the baseline and SRL configs recur in
// Figures 2, 6, 8, 9 and 10) are simulated once per process.
var globalCache = NewCache()

// Global returns the process-wide cache that sweeps use by default.
func Global() *Cache { return globalCache }

// Stats is a point-in-time snapshot of a cache's counters and budget.
// Hits and Misses count the in-memory memo tier only; the Store* fields
// count the attached persistent tier (all zero — and elided from JSON —
// when no store is attached, so storeless deployments see an unchanged
// document).
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Entries counts memoized points including in-flight computations;
	// Bytes is the estimated retained footprint of the ready ones.
	Entries    int   `json:"entries"`
	Bytes      int64 `json:"bytes"`
	MaxEntries int   `json:"max_entries,omitempty"`
	MaxBytes   int64 `json:"max_bytes,omitempty"`

	// Persistent-tier traffic from this cache: memo misses served by the
	// store, memo misses the store also missed (simulated fresh), results
	// written through, and store operations that returned errors.
	StoreHits   uint64 `json:"store_hits,omitempty"`
	StoreMisses uint64 `json:"store_misses,omitempty"`
	StorePuts   uint64 `json:"store_puts,omitempty"`
	StoreErrors uint64 `json:"store_errors,omitempty"`
}

// Stats returns a consistent snapshot of the cache's counters and budget.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Entries:     len(c.m),
		Bytes:       c.bytes,
		MaxEntries:  c.maxEntries,
		MaxBytes:    c.maxBytes,
		StoreHits:   c.storeHits,
		StoreMisses: c.storeMisses,
		StorePuts:   c.storePuts,
		StoreErrors: c.storeErrors,
	}
}

// SetBudget adjusts the entry and byte budgets (zero or negative disables
// that bound) and evicts immediately if the cache is now over budget.
func (c *Cache) SetBudget(maxEntries int, maxBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxEntries = maxEntries
	c.maxBytes = maxBytes
	c.evictLocked()
}

// Hits returns how many lookups were served from the cache.
func (c *Cache) Hits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns how many lookups ran a fresh simulation.
func (c *Cache) Misses() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// Evictions returns how many ready entries the budget has evicted.
func (c *Cache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Len returns the number of memoized points (including in-flight ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Bytes returns the estimated retained footprint of the ready entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Reset drops every memoized result and zeroes every counter. It is safe
// against concurrent in-flight computations: they complete, publish to
// their waiters, and — because their entry is no longer the one in the map
// — skip re-inserting themselves into the reset cache.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[uint64]*cacheEntry)
	c.lru = list.New()
	c.bytes = 0
	c.hits, c.misses, c.evictions = 0, 0, 0
	c.storeHits, c.storeMisses, c.storePuts, c.storeErrors = 0, 0, 0, 0
}

// do returns the memoized result for the point, computing it with fn on a
// miss. hit reports whether the result came from the cache — the memo
// tier, another goroutine's in-flight computation, or the attached
// persistent store; only a fresh simulation reports hit=false, which is
// what lets a warm restart replay a sweep with Report.Simulated == 0. A
// ctx cancelled while waiting returns ctx's error without disturbing the
// computation and without counting a hit or a miss.
//
// Accounting invariant (pinned by TestCachePoisonedRetryAccounting): every
// do call that returns a result counts exactly one memo hit, one store
// hit, or one miss, even on the failed-attempt retry path — a waiter that
// wakes on a failed attempt loops, and either becomes the fresh computer
// (one miss) or waits on a newer attempt (one hit on its success).
func (c *Cache) do(ctx context.Context, cfg core.Config, suite trace.Suite,
	fn func() (*core.Results, error)) (res *core.Results, hit bool, err error) {
	key := core.PointFingerprint(cfg, suite)
	for {
		c.mu.Lock()
		if e, ok := c.m[key]; ok {
			c.mu.Unlock()
			select {
			case <-e.ready:
				if e.err == nil {
					c.mu.Lock()
					c.hits++
					c.touchLocked(e)
					c.mu.Unlock()
					return e.res, true, nil
				}
				// The in-flight attempt failed and removed itself from
				// the map; retry so this caller computes (or waits on a
				// newer attempt) and reports its own error.
				continue
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		// Memo miss: insert the in-flight entry first (so duplicate
		// requests collapse onto it even while the store is probed), then
		// fall through to the persistent tier before paying for a
		// simulation. Only a store miss counts as a cache miss.
		e := &cacheEntry{key: key, ready: make(chan struct{})}
		c.m[key] = e
		st, stamp := c.store, c.stamp
		c.mu.Unlock()
		if st != nil {
			if got, ok := c.storeGet(st, stamp, key); ok {
				c.publishFromStore(key, e, got)
				return got, true, nil
			}
		}
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		res, err = c.compute(key, e, fn)
		if err == nil {
			c.writeThrough(key, res)
		}
		return res, false, err
	}
}

// compute runs fn, publishes its outcome on e, and evicts e on failure so
// the point can be retried. A panic in fn is published as an error to any
// waiters before being re-raised to the caller.
func (c *Cache) compute(key uint64, e *cacheEntry,
	fn func() (*core.Results, error)) (res *core.Results, err error) {
	defer func() {
		p := recover()
		if p != nil {
			e.err = fmt.Errorf("sweep: simulation panicked: %v", p)
		} else {
			e.res, e.err = res, err
		}
		c.mu.Lock()
		// Identity check: a concurrent Reset (or a future eviction scheme)
		// may have replaced the map out from under this computation; only
		// the entry still registered for its key may touch the accounting.
		if c.m[key] == e {
			if e.err != nil {
				delete(c.m, key)
			} else {
				e.bytes = resultsFootprint(e.res)
				e.elem = c.lru.PushFront(e)
				c.bytes += e.bytes
				c.evictLocked()
			}
		}
		c.mu.Unlock()
		close(e.ready)
		if p != nil {
			panic(p)
		}
	}()
	res, err = fn()
	return res, err
}

// touchLocked marks e most recently used, if it is still cached.
func (c *Cache) touchLocked(e *cacheEntry) {
	if c.m[e.key] == e && e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
}

// evictLocked drops least-recently-used ready entries until the cache is
// inside both budgets. In-flight entries are not in the LRU list and are
// never evicted, so single-flight collapse is preserved; if only in-flight
// entries remain the cache may transiently exceed the entry budget.
func (c *Cache) evictLocked() {
	for c.overBudgetLocked() {
		el := c.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*cacheEntry)
		delete(c.m, e.key)
		c.lru.Remove(el)
		e.elem = nil
		c.bytes -= e.bytes
		c.evictions++
	}
}

func (c *Cache) overBudgetLocked() bool {
	if c.maxEntries > 0 && len(c.m) > c.maxEntries {
		return true
	}
	if c.maxBytes > 0 && c.bytes > c.maxBytes {
		return true
	}
	return false
}

// resultsFootprint estimates the retained heap footprint of one cached
// result for the byte budget. It is deliberately an estimate — a fixed
// base for the flat counter struct plus the variable-length observability
// buffers — because the budget exists to bound growth, not to meter it.
func resultsFootprint(r *core.Results) int64 {
	if r == nil {
		return 0
	}
	n := int64(4096) // flat Results struct, occupancy tracker, slack
	if r.Timeline != nil {
		n += int64(r.Timeline.Len()) * 192
	}
	if r.Trace != nil {
		n += int64(r.Trace.Len()) * 24
	}
	n += int64(len(r.Divergences)) * 512
	if r.Counters != nil {
		n += 1024
	}
	return n
}
