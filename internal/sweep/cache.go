package sweep

import (
	"context"
	"fmt"
	"sync"

	"srlproc/internal/core"
	"srlproc/internal/trace"
)

// Cache memoizes simulation results by the stable fingerprint of their
// (Config, suite) point — the seed and run lengths are part of the config
// and therefore part of the key. The simulator is deterministic in its
// config, so a cached *core.Results is indistinguishable from a fresh run.
//
// Concurrent requests for the same point are collapsed: the first caller
// simulates, later callers wait for its result (single-flight), so one
// sweep never simulates a point twice no matter how its worker pool
// schedules duplicates. Failed or cancelled computations are not cached.
//
// Cached results are shared pointers and must be treated as read-only by
// all consumers, which every aggregation path in this repository does.
type Cache struct {
	mu     sync.Mutex
	m      map[uint64]*cacheEntry
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	ready chan struct{} // closed when res/err are final
	res   *core.Results
	err   error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[uint64]*cacheEntry)}
}

// globalCache memoizes across every sweep in the process, so the repeated
// points of the paper's evaluation (the baseline and SRL configs recur in
// Figures 2, 6, 8, 9 and 10) are simulated once per process.
var globalCache = NewCache()

// Global returns the process-wide cache that sweeps use by default.
func Global() *Cache { return globalCache }

// Hits returns how many lookups were served from the cache.
func (c *Cache) Hits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns how many lookups ran a fresh simulation.
func (c *Cache) Misses() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// Len returns the number of memoized points.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset drops every memoized result and zeroes the hit/miss counters.
// In-flight computations complete but are not re-cached under old entries.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[uint64]*cacheEntry)
	c.hits, c.misses = 0, 0
}

// do returns the memoized result for the point, computing it with fn on a
// miss. hit reports whether the result came from the cache (including
// waiting on another goroutine's in-flight computation). A ctx cancelled
// while waiting returns ctx's error without disturbing the computation.
func (c *Cache) do(ctx context.Context, cfg core.Config, suite trace.Suite,
	fn func() (*core.Results, error)) (res *core.Results, hit bool, err error) {
	key := core.PointFingerprint(cfg, suite)
	for {
		c.mu.Lock()
		if e, ok := c.m[key]; ok {
			c.mu.Unlock()
			select {
			case <-e.ready:
				if e.err == nil {
					c.mu.Lock()
					c.hits++
					c.mu.Unlock()
					return e.res, true, nil
				}
				// The in-flight attempt failed and removed itself from
				// the map; retry so this caller computes (or waits on a
				// newer attempt) and reports its own error.
				continue
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		e := &cacheEntry{ready: make(chan struct{})}
		c.m[key] = e
		c.misses++
		c.mu.Unlock()
		res, err = c.compute(key, e, fn)
		return res, false, err
	}
}

// compute runs fn, publishes its outcome on e, and evicts e on failure so
// the point can be retried. A panic in fn is published as an error to any
// waiters before being re-raised to the caller.
func (c *Cache) compute(key uint64, e *cacheEntry,
	fn func() (*core.Results, error)) (res *core.Results, err error) {
	defer func() {
		p := recover()
		if p != nil {
			e.err = fmt.Errorf("sweep: simulation panicked: %v", p)
		} else {
			e.res, e.err = res, err
		}
		if e.err != nil {
			c.mu.Lock()
			delete(c.m, key)
			c.mu.Unlock()
		}
		close(e.ready)
		if p != nil {
			panic(p)
		}
	}()
	res, err = fn()
	return res, err
}
