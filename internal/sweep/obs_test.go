package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"srlproc/internal/core"
	"srlproc/internal/trace"
)

// TestConcurrentProgressWithObservability drives a parallel sweep of
// observed simulations with a concurrent ProgressFunc. Run under -race
// (make verify) it proves the progress callback and the per-core samplers
// share no unsynchronised state.
func TestConcurrentProgressWithObservability(t *testing.T) {
	var points []Point
	for i, seed := range []uint64{201, 202, 203, 204, 205, 206} {
		cfg := tinyCfg(core.DesignSRL, seed)
		cfg.Obs.SampleEvery = 256
		cfg.Obs.TraceEvents = true
		points = append(points, Point{Label: "obs", Cfg: cfg, Suite: trace.Suite(i % 3)})
	}
	var calls atomic.Int64
	var lastDone atomic.Int64
	rep, err := Run(context.Background(), points, Options{
		Workers: 4,
		NoCache: true,
		Progress: func(p Progress) {
			calls.Add(1)
			lastDone.Store(int64(p.Done))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(points)) {
		t.Fatalf("progress calls = %d, want %d", got, len(points))
	}
	for i := range rep.Points {
		res := rep.Points[i].Results
		if res == nil {
			t.Fatalf("point %d: nil results", i)
		}
		if res.Timeline == nil || res.Timeline.Len() == 0 {
			t.Fatalf("point %d: no timeline samples", i)
		}
		if res.Trace == nil || res.Trace.Count(0) == 0 && res.Trace.Len() == 0 {
			t.Fatalf("point %d: no trace events", i)
		}
	}
}

// TestReportExports checks the sweep-level metrics and both export forms.
func TestReportExports(t *testing.T) {
	sim := func(ctx context.Context, cfg core.Config, suite trace.Suite) (*core.Results, error) {
		return fakeResults(cfg, suite), nil
	}
	points := []Point{
		{Label: "a", Cfg: tinyCfg(core.DesignBaseline, 301), Suite: trace.PROD},
		{Label: "b", Cfg: tinyCfg(core.DesignSRL, 301), Suite: trace.PROD},
	}
	rep, err := Run(context.Background(), points, Options{Workers: 2, NoCache: true, Simulate: sim})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", rep.Workers)
	}
	if r := rep.CacheHitRatio(); r != 0 {
		t.Fatalf("CacheHitRatio = %v, want 0", r)
	}
	if u := rep.WorkerUtilization(); u < 0 || u > 1 {
		t.Fatalf("WorkerUtilization = %v, want [0,1]", u)
	}

	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Points  []struct{ Label, Suite string } `json:"points"`
		Workers int                             `json:"workers"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(doc.Points) != 2 || doc.Points[0].Label != "a" || doc.Workers != 2 {
		t.Fatalf("report JSON = %+v", doc)
	}

	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "label,suite,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}
