package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"srlproc/internal/core"
	"srlproc/internal/trace"
)

// mergePoints builds n distinct fast points (distinct seeds → distinct
// fingerprints).
func mergePoints(n int, seed uint64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			Label: fmt.Sprintf("m%d", i),
			Cfg:   tinyCfg(core.DesignSRL, seed+uint64(i)),
			Suite: trace.PROD,
		}
	}
	return pts
}

// runShard runs just the given indexes of points through the fake
// simulator and returns the partial report.
func runShard(t *testing.T, points []Point, idx ...int) *Report {
	t.Helper()
	shard := make([]Point, 0, len(idx))
	for _, i := range idx {
		shard = append(shard, points[i])
	}
	rep, err := Run(context.Background(), shard, Options{
		NoCache: true,
		Simulate: func(_ context.Context, cfg core.Config, suite trace.Suite) (*core.Results, error) {
			return fakeResults(cfg, suite), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestMergeReportsRestoresCanonicalOrder(t *testing.T) {
	points := mergePoints(5, 9100)
	// Shards cover the sweep out of order and with overlap (index 2 runs
	// twice, as a re-dispatch after a worker loss would).
	a := runShard(t, points, 3, 1)
	b := runShard(t, points, 4, 2, 0)
	c := runShard(t, points, 2)

	merged, err := MergeReports(points, a, b, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Err != nil || merged.Failed != 0 {
		t.Fatalf("merged report carries errors: failed=%d err=%v", merged.Failed, merged.Err)
	}
	if merged.Simulated != 5 || merged.CacheHits != 0 {
		t.Fatalf("counter merge: simulated=%d cacheHits=%d, want 5/0", merged.Simulated, merged.CacheHits)
	}
	single := runShard(t, points, 0, 1, 2, 3, 4)
	for i := range points {
		if merged.Points[i].Point.String() != points[i].String() {
			t.Fatalf("point %d out of order: got %s want %s", i, merged.Points[i].Point, points[i])
		}
		got, _ := json.Marshal(merged.Points[i].Results)
		want, _ := json.Marshal(single.Points[i].Results)
		if string(got) != string(want) {
			t.Fatalf("point %d results differ from single run:\n%s\nvs\n%s", i, got, want)
		}
	}
	if want := a.Elapsed; merged.Elapsed < want && merged.Elapsed < b.Elapsed && merged.Elapsed < c.Elapsed {
		t.Fatalf("merged elapsed %v below every shard", merged.Elapsed)
	}
}

func TestMergeReportsSumsCounters(t *testing.T) {
	points := mergePoints(4, 9200)
	cache := NewCache()
	run := func(idx ...int) *Report {
		shard := make([]Point, 0, len(idx))
		for _, i := range idx {
			shard = append(shard, points[i])
		}
		rep, err := Run(context.Background(), shard, Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a := run(0, 1)
	b := run(1, 2, 3) // point 1 is now warm: one cache hit in this shard
	if b.CacheHits != 1 {
		t.Fatalf("setup: shard b expected 1 cache hit, got %d", b.CacheHits)
	}
	merged, err := MergeReports(points, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Point 1 appears in both shards; shard a's fresh simulation wins
	// (first result per fingerprint), so the merged report counts 4
	// simulated and 0 hits over its points, while Workers sums the pools.
	if merged.Simulated != 4 || merged.CacheHits != 0 || merged.Failed != 0 {
		t.Fatalf("counters: simulated=%d hits=%d failed=%d", merged.Simulated, merged.CacheHits, merged.Failed)
	}
	if merged.Workers != a.Workers+b.Workers {
		t.Fatalf("workers: got %d want %d", merged.Workers, a.Workers+b.Workers)
	}
}

func TestMergeReportsUncoveredPointFails(t *testing.T) {
	points := mergePoints(3, 9300)
	a := runShard(t, points, 0, 2)
	merged, err := MergeReports(points, a)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Failed != 1 || merged.Err == nil {
		t.Fatalf("uncovered point not failed: failed=%d err=%v", merged.Failed, merged.Err)
	}
	if merged.Points[1].Err == nil || !strings.Contains(merged.Points[1].Err.Error(), "not run in any shard") {
		t.Fatalf("point 1 error: %v", merged.Points[1].Err)
	}
	if merged.Points[0].Err != nil || merged.Points[2].Err != nil {
		t.Fatalf("covered points failed: %v %v", merged.Points[0].Err, merged.Points[2].Err)
	}
}

func TestMergeReportsRejectsForeignPoint(t *testing.T) {
	points := mergePoints(2, 9400)
	foreign := mergePoints(1, 9900)
	a := runShard(t, foreign, 0)
	if _, err := MergeReports(points, a); err == nil || !strings.Contains(err.Error(), "not in the sweep") {
		t.Fatalf("foreign shard point not rejected: %v", err)
	}
}

func TestMergeReportsPropagatesShardFailures(t *testing.T) {
	points := mergePoints(2, 9500)
	boom := fmt.Errorf("simulated fault")
	// Run reports point failures both per-point and as its own error; the
	// partial report is still a valid merge input.
	rep, err := Run(context.Background(), points[:1], Options{
		NoCache: true,
		Simulate: func(context.Context, core.Config, trace.Suite) (*core.Results, error) {
			return nil, boom
		},
	})
	if err == nil || rep == nil {
		t.Fatalf("faulty shard: rep=%v err=%v", rep, err)
	}
	b := runShard(t, points, 1)
	merged, err := MergeReports(points, rep, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Failed != 1 || merged.Simulated != 1 {
		t.Fatalf("counters: failed=%d simulated=%d", merged.Failed, merged.Simulated)
	}
	if merged.Points[0].Err == nil || merged.Err == nil {
		t.Fatalf("shard failure lost in merge: point=%v report=%v", merged.Points[0].Err, merged.Err)
	}
}
