// Package sweep is the experiment-orchestration engine: it runs a set of
// (config, suite) simulation points on a bounded worker pool with
// context.Context cancellation, per-worker panic isolation, progress
// reporting, per-point timing and throughput metrics, and process-wide
// result memoization keyed by a stable config fingerprint.
//
// Package bench builds every table and figure of the paper's evaluation on
// top of this engine; the srlproc facade exposes its knobs (workers,
// progress, cache bypass) through bench.Options and the *Context API.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"srlproc/internal/core"
	"srlproc/internal/trace"
)

// Point is one simulation job: a configuration on a workload suite, with a
// free-form label the caller uses to key its aggregation.
type Point struct {
	Label string
	Cfg   core.Config
	Suite trace.Suite
}

func (p Point) String() string { return p.Label + "/" + p.Suite.String() }

// Progress is a snapshot handed to the ProgressFunc after every completed
// point.
type Progress struct {
	Done      int           // points finished (including failures and hits)
	Total     int           // points in the sweep
	CacheHits int           // points served from the memo cache so far
	Failed    int           // points that returned an error so far
	Elapsed   time.Duration // wall time since the sweep started
	ETA       time.Duration // naive linear estimate of time remaining
	Last      Point         // the point that just finished
}

// ProgressFunc observes sweep progress. It is called from worker
// goroutines with the engine's bookkeeping lock released; implementations
// must be safe for concurrent calls when Workers > 1.
type ProgressFunc func(Progress)

// SimulateFunc produces the results for one point. The default simulator
// builds a core and runs it under the context; tests substitute fakes.
type SimulateFunc func(ctx context.Context, cfg core.Config, suite trace.Suite) (*core.Results, error)

// Simulate is the default SimulateFunc: a fresh core.New + RunContext.
func Simulate(ctx context.Context, cfg core.Config, suite trace.Suite) (*core.Results, error) {
	c, err := core.New(cfg, suite)
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx)
}

// Options configure one sweep.
type Options struct {
	// Workers bounds the pool: 0 (or negative) means runtime.GOMAXPROCS,
	// 1 means fully serial, n > 1 means at most n points in flight.
	Workers int

	// Progress, when non-nil, is invoked after every completed point.
	Progress ProgressFunc

	// NoCache disables result memoization: every point simulates fresh
	// and nothing is published to the cache.
	NoCache bool

	// Cache overrides the memo cache; nil means the process-wide Global()
	// cache. Ignored when NoCache is set.
	Cache *Cache

	// Simulate overrides the point simulator; nil means Simulate. The
	// memo cache keys only on (config, suite), so substituting a
	// simulator mid-process should pair with a private Cache or NoCache.
	Simulate SimulateFunc
}

// PointResult is one point's outcome and cost.
type PointResult struct {
	Point    Point
	Results  *core.Results // nil on error
	Err      error         // nil on success
	Wall     time.Duration // wall time spent on this point (0 for cache hits)
	CacheHit bool
	// UopsPerSec is the simulated micro-op throughput of this point
	// (warmup + measured uops over wall time); 0 for cache hits.
	UopsPerSec float64
}

// Report aggregates a sweep: per-point outcomes in input order plus
// whole-sweep metrics.
type Report struct {
	Points    []PointResult
	Elapsed   time.Duration
	CacheHits int
	Simulated int // points that ran a fresh simulation
	Failed    int
	// Workers is the pool size the sweep actually used (after clamping to
	// the point count).
	Workers int
	// Err is every point error joined with errors.Join (nil if none). A
	// cancelled sweep's Err wraps ctx.Err().
	Err error
}

// CacheHitRatio returns the fraction of points served from the memo cache
// (0 for an empty sweep).
func (r *Report) CacheHitRatio() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(len(r.Points))
}

// WorkerUtilization returns the mean busy fraction of the worker pool:
// total per-point wall time over Workers x Elapsed. 1.0 means every worker
// simulated for the whole sweep; low values mean the pool idled (cache
// hits, stragglers, or too many workers).
func (r *Report) WorkerUtilization() float64 {
	if r.Workers <= 0 || r.Elapsed <= 0 {
		return 0
	}
	var busy time.Duration
	for i := range r.Points {
		busy += r.Points[i].Wall
	}
	return busy.Seconds() / (float64(r.Workers) * r.Elapsed.Seconds())
}

// Get returns the results for the first point matching label and suite, or
// nil if it is absent or failed.
func (r *Report) Get(label string, suite trace.Suite) *core.Results {
	for i := range r.Points {
		if r.Points[i].Point.Label == label && r.Points[i].Point.Suite == suite {
			return r.Points[i].Results
		}
	}
	return nil
}

// TotalSimulatedUops sums warmup+measured micro-ops over freshly simulated
// points (cache hits cost nothing and count nothing).
func (r *Report) TotalSimulatedUops() uint64 {
	var n uint64
	for i := range r.Points {
		if pr := &r.Points[i]; !pr.CacheHit && pr.Results != nil {
			n += pr.Point.Cfg.WarmupUops + pr.Results.Uops
		}
	}
	return n
}

// Throughput returns aggregate simulated micro-ops per wall second.
func (r *Report) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TotalSimulatedUops()) / r.Elapsed.Seconds()
}

// String summarises the sweep for humans.
func (r *Report) String() string {
	return fmt.Sprintf("sweep: %d points (%d simulated, %d cached, %d failed) in %v, %.0f uops/s",
		len(r.Points), r.Simulated, r.CacheHits, r.Failed, r.Elapsed.Round(time.Millisecond), r.Throughput())
}

// Run executes every point on a bounded worker pool and returns the report
// plus the join of all point errors (also stored in Report.Err).
//
// Results are deterministic in the points, not the pool: Report.Points is
// in input order and each point's Results depend only on its config, so
// any Workers value yields identical aggregates.
//
// Cancelling ctx stops the sweep promptly: in-flight simulations poll the
// context and abort, queued points are never started, and every point that
// did not complete carries (and Err wraps) ctx.Err(). A panic inside a
// point is recovered and surfaced as that point's error; the sweep and the
// process keep running.
func Run(ctx context.Context, points []Point, opts Options) (*Report, error) {
	start := time.Now()
	rep := &Report{Points: make([]PointResult, len(points))}
	for i := range points {
		rep.Points[i].Point = points[i]
	}
	if len(points) == 0 {
		rep.Elapsed = time.Since(start)
		return rep, nil
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	sim := opts.Simulate
	if sim == nil {
		sim = Simulate
	}
	cache := opts.Cache
	if cache == nil {
		cache = globalCache
	}
	if opts.NoCache {
		cache = nil
	}

	rep.Workers = workers

	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := range points {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				pr := runOne(ctx, cache, sim, points[i])
				mu.Lock()
				rep.Points[i] = pr
				if pr.CacheHit {
					rep.CacheHits++
				} else if pr.Err == nil {
					rep.Simulated++
				}
				if pr.Err != nil {
					rep.Failed++
				}
				done++
				prog := Progress{
					Done:      done,
					Total:     len(points),
					CacheHits: rep.CacheHits,
					Failed:    rep.Failed,
					Elapsed:   time.Since(start),
					Last:      points[i],
				}
				mu.Unlock()
				if prog.Done > 0 && prog.Done < prog.Total {
					prog.ETA = time.Duration(float64(prog.Elapsed) / float64(prog.Done) * float64(prog.Total-prog.Done))
				}
				if opts.Progress != nil {
					opts.Progress(prog)
				}
			}
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	// Points the pool never reached (cancellation) carry the context error.
	if ctx.Err() != nil {
		for i := range rep.Points {
			pr := &rep.Points[i]
			if pr.Results == nil && pr.Err == nil {
				pr.Err = fmt.Errorf("sweep: point not run: %w", ctx.Err())
				rep.Failed++
			}
		}
	}
	var errs []error
	for i := range rep.Points {
		if pr := &rep.Points[i]; pr.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", pr.Point, pr.Err))
		}
	}
	rep.Err = errors.Join(errs...)
	return rep, rep.Err
}

// runOne executes one point, converting panics (from the simulator or the
// config machinery) into point-level errors.
func runOne(ctx context.Context, cache *Cache, sim SimulateFunc, p Point) (pr PointResult) {
	pr.Point = p
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			pr.Results = nil
			pr.Err = fmt.Errorf("sweep: point panicked: %v", r)
			pr.Wall = time.Since(start)
		}
	}()
	if cache == nil {
		pr.Results, pr.Err = sim(ctx, p.Cfg, p.Suite)
	} else {
		pr.Results, pr.CacheHit, pr.Err = cache.do(ctx, p.Cfg, p.Suite, func() (*core.Results, error) {
			return sim(ctx, p.Cfg, p.Suite)
		})
	}
	pr.Wall = time.Since(start)
	if pr.Err == nil && !pr.CacheHit && pr.Wall > 0 {
		pr.UopsPerSec = float64(p.Cfg.WarmupUops+pr.Results.Uops) / pr.Wall.Seconds()
	}
	return pr
}
