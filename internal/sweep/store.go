package sweep

import (
	"srlproc/internal/core"
	"srlproc/internal/store"
)

// maxStoreWriters bounds the asynchronous write-through goroutines per
// cache. Beyond it, completions write synchronously in the sweep worker —
// backpressure instead of dropped persistence.
const maxStoreWriters = 4

// AttachStore installs st as the cache's persistent tier. Lookups that
// miss the in-memory memo fall through to the store before simulating, and
// fresh completions write through asynchronously (call FlushStore before
// process exit to guarantee the last results are durable).
//
// Store keys combine the point fingerprint with this binary's
// store.CodeStamp, so an attached store can safely outlive the process: a
// rebuilt binary computes under a new stamp and never reads another
// build's results.
//
// Attaching replaces any previous store after flushing its pending writes;
// the caller remains responsible for closing replaced stores. Attaching
// nil detaches the persistent tier.
func (c *Cache) AttachStore(st store.ResultStore) {
	c.FlushStore()
	c.mu.Lock()
	c.store = st
	c.stamp = store.CodeStamp()
	if c.writeSem == nil {
		c.writeSem = make(chan struct{}, maxStoreWriters)
	}
	c.mu.Unlock()
}

// Store returns the attached persistent tier, or nil.
func (c *Cache) Store() store.ResultStore {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

// StoreStats snapshots the attached store's counters; ok is false when no
// store is attached.
func (c *Cache) StoreStats() (st store.Stats, ok bool) {
	c.mu.Lock()
	s := c.store
	c.mu.Unlock()
	if s == nil {
		return store.Stats{}, false
	}
	return s.Stats(), true
}

// FlushStore blocks until every queued write-through has reached the
// store. It is a no-op without an attached store.
func (c *Cache) FlushStore() {
	c.writeWG.Wait()
}

// storeGet probes the persistent tier for key. Store read errors are
// swallowed into a miss — the persistent tier must never be able to fail a
// sweep that could simply recompute.
func (c *Cache) storeGet(st store.ResultStore, stamp string, key uint64) (*core.Results, bool) {
	res, ok, err := st.Get(store.Key{Fingerprint: key, Stamp: stamp})
	c.mu.Lock()
	switch {
	case err != nil:
		c.storeErrors++
		c.storeMisses++
	case ok:
		c.storeHits++
	default:
		c.storeMisses++
	}
	c.mu.Unlock()
	if err != nil || !ok {
		return nil, false
	}
	return res, true
}

// publishFromStore completes an in-flight entry with a store-hydrated
// result, exactly as a successful compute would, and wakes any waiters.
func (c *Cache) publishFromStore(key uint64, e *cacheEntry, res *core.Results) {
	e.res = res
	c.mu.Lock()
	if c.m[key] == e {
		e.bytes = resultsFootprint(res)
		e.elem = c.lru.PushFront(e)
		c.bytes += e.bytes
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
}

// writeThrough persists a freshly computed result to the attached store,
// asynchronously while writer slots are free and synchronously once
// maxStoreWriters are already in flight. Results are never dropped.
func (c *Cache) writeThrough(key uint64, res *core.Results) {
	c.mu.Lock()
	st, stamp, sem := c.store, c.stamp, c.writeSem
	c.mu.Unlock()
	if st == nil {
		return
	}
	c.writeWG.Add(1)
	select {
	case sem <- struct{}{}:
		go func() {
			defer c.writeWG.Done()
			defer func() { <-sem }()
			c.storePut(st, stamp, key, res)
		}()
	default:
		defer c.writeWG.Done()
		c.storePut(st, stamp, key, res)
	}
}

func (c *Cache) storePut(st store.ResultStore, stamp string, key uint64, res *core.Results) {
	_, err := st.Put(store.Key{Fingerprint: key, Stamp: stamp}, res)
	c.mu.Lock()
	if err != nil {
		c.storeErrors++
	} else {
		c.storePuts++
	}
	c.mu.Unlock()
}
