package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"srlproc/internal/core"
	"srlproc/internal/trace"
)

// tinyCfg returns a fast real-simulation config distinguished by seed so
// tests do not collide with each other through the process-global cache.
func tinyCfg(d core.StoreDesign, seed uint64) core.Config {
	cfg := core.DefaultConfig(d)
	cfg.WarmupUops = 500
	cfg.RunUops = 3_000
	cfg.Seed = seed
	return cfg
}

// fakeResults builds a deterministic stand-in result for fake simulators.
func fakeResults(cfg core.Config, suite trace.Suite) *core.Results {
	return &core.Results{Suite: suite, Design: cfg.Design, Cycles: cfg.RunUops * 2, Uops: cfg.RunUops}
}

func TestRunEmpty(t *testing.T) {
	rep, err := Run(context.Background(), nil, Options{})
	if err != nil || len(rep.Points) != 0 {
		t.Fatalf("empty sweep: %v %v", rep, err)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	var points []Point
	for i, d := range []core.StoreDesign{core.DesignBaseline, core.DesignSRL, core.DesignHierarchical} {
		points = append(points, Point{Label: fmt.Sprintf("p%d", i), Cfg: tinyCfg(d, 101), Suite: trace.PROD})
	}
	var got [][]string
	for _, workers := range []int{1, 4} {
		rep, err := Run(context.Background(), points, Options{Workers: workers, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		var rendered []string
		for _, pr := range rep.Points {
			rendered = append(rendered, pr.Point.String()+"\n"+pr.Results.String())
		}
		got = append(got, rendered)
	}
	for i := range got[0] {
		if got[0][i] != got[1][i] {
			t.Fatalf("worker-count dependence at point %d:\n%s\nvs\n%s", i, got[0][i], got[1][i])
		}
	}
}

func TestCacheHitMatchesFreshRun(t *testing.T) {
	p := Point{Label: "srl", Cfg: tinyCfg(core.DesignSRL, 202), Suite: trace.WEB}
	cache := NewCache()
	first, err := Run(context.Background(), []Point{p}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.Points[0].CacheHit || first.Simulated != 1 {
		t.Fatalf("first run not a fresh simulation: %+v", first)
	}
	if first.Points[0].UopsPerSec <= 0 || first.Points[0].Wall <= 0 {
		t.Fatalf("missing per-point metrics: %+v", first.Points[0])
	}
	second, err := Run(context.Background(), []Point{p}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Points[0].CacheHit || second.CacheHits != 1 {
		t.Fatalf("second run missed the cache: %+v", second)
	}
	fresh, err := Run(context.Background(), []Point{p}, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	// The memoized result must be value-identical to an independent fresh
	// simulation of the same point, not merely the same pointer.
	hitRes, freshRes := second.Points[0].Results, fresh.Points[0].Results
	if hitRes.String() != freshRes.String() || hitRes.Cycles != freshRes.Cycles || hitRes.Uops != freshRes.Uops {
		t.Fatalf("cache hit diverges from fresh run:\n%s\nvs\n%s", hitRes, freshRes)
	}
	if cache.Hits() != 1 || cache.Misses() != 1 {
		t.Fatalf("cache stats hits=%d misses=%d", cache.Hits(), cache.Misses())
	}
}

func TestDuplicatePointsSimulateOnce(t *testing.T) {
	var sims atomic.Int64
	counting := func(ctx context.Context, cfg core.Config, suite trace.Suite) (*core.Results, error) {
		sims.Add(1)
		time.Sleep(5 * time.Millisecond) // widen the single-flight window
		return fakeResults(cfg, suite), nil
	}
	p := Point{Label: "dup", Cfg: tinyCfg(core.DesignSRL, 303), Suite: trace.MM}
	points := []Point{p, p, p, p}
	rep, err := Run(context.Background(), points, Options{Workers: 4, Cache: NewCache(), Simulate: counting})
	if err != nil {
		t.Fatal(err)
	}
	if n := sims.Load(); n != 1 {
		t.Fatalf("%d simulations for 4 identical points", n)
	}
	if rep.Simulated != 1 || rep.CacheHits != 3 {
		t.Fatalf("simulated=%d hits=%d", rep.Simulated, rep.CacheHits)
	}
}

func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 16)
	blocking := func(ctx context.Context, cfg core.Config, suite trace.Suite) (*core.Results, error) {
		started <- struct{}{}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("simulation aborted: %w", ctx.Err())
		case <-time.After(30 * time.Second):
			return fakeResults(cfg, suite), nil
		}
	}
	var points []Point
	for i := 0; i < 8; i++ {
		cfg := tinyCfg(core.DesignSRL, uint64(400+i))
		points = append(points, Point{Label: fmt.Sprintf("p%d", i), Cfg: cfg, Suite: trace.WS})
	}
	go func() {
		<-started // at least one point is in flight
		cancel()
	}()
	start := time.Now()
	rep, err := Run(ctx, points, Options{Workers: 2, NoCache: true, Simulate: blocking})
	if err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep error does not wrap ctx.Err(): %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
	// Every point either never ran or carries the cancellation error.
	for _, pr := range rep.Points {
		if pr.Err == nil && pr.Results == nil {
			t.Fatalf("point %s has neither result nor error", pr.Point)
		}
	}
}

func TestPanicSurfacesAsPointError(t *testing.T) {
	exploding := func(ctx context.Context, cfg core.Config, suite trace.Suite) (*core.Results, error) {
		if suite == trace.SERVER {
			panic("simulated invariant violation")
		}
		return fakeResults(cfg, suite), nil
	}
	points := []Point{
		{Label: "ok", Cfg: tinyCfg(core.DesignSRL, 500), Suite: trace.WEB},
		{Label: "boom", Cfg: tinyCfg(core.DesignSRL, 500), Suite: trace.SERVER},
		{Label: "ok2", Cfg: tinyCfg(core.DesignSRL, 500), Suite: trace.MM},
	}
	rep, err := Run(context.Background(), points, Options{Workers: 2, Cache: NewCache(), Simulate: exploding})
	if err == nil {
		t.Fatal("panicking point produced no sweep error")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "simulated invariant violation") {
		t.Fatalf("panic not surfaced in error: %v", err)
	}
	if rep.Points[1].Err == nil || rep.Points[1].Results != nil {
		t.Fatalf("panicking point outcome wrong: %+v", rep.Points[1])
	}
	// The healthy points still completed.
	if rep.Points[0].Results == nil || rep.Points[2].Results == nil {
		t.Fatal("healthy points lost to a neighbouring panic")
	}
	if rep.Failed != 1 {
		t.Fatalf("failed=%d", rep.Failed)
	}
}

func TestAllErrorsJoined(t *testing.T) {
	bad1 := tinyCfg(core.DesignSRL, 600)
	bad1.RunUops = 0 // rejected by Validate
	bad2 := tinyCfg(core.DesignSRL, 600)
	bad2.Checkpoints = 1 // rejected by Validate
	points := []Point{
		{Label: "bad1", Cfg: bad1, Suite: trace.WEB},
		{Label: "bad2", Cfg: bad2, Suite: trace.WEB},
		{Label: "good", Cfg: tinyCfg(core.DesignBaseline, 600), Suite: trace.WEB},
	}
	rep, err := Run(context.Background(), points, Options{Workers: 1, NoCache: true})
	if err == nil {
		t.Fatal("invalid points produced no error")
	}
	for _, want := range []string{"bad1", "bad2", "RunUops", "checkpoints"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error missing %q: %v", want, err)
		}
	}
	if rep.Points[2].Results == nil {
		t.Fatal("valid point did not run despite sibling errors")
	}
}

func TestProgressCallback(t *testing.T) {
	var calls atomic.Int64
	var lastDone atomic.Int64
	opts := Options{
		Workers: 1,
		NoCache: true,
		Simulate: func(ctx context.Context, cfg core.Config, suite trace.Suite) (*core.Results, error) {
			return fakeResults(cfg, suite), nil
		},
		Progress: func(p Progress) {
			calls.Add(1)
			lastDone.Store(int64(p.Done))
			if p.Total != 3 {
				t.Errorf("total %d", p.Total)
			}
		},
	}
	points := []Point{
		{Label: "a", Cfg: tinyCfg(core.DesignSRL, 700), Suite: trace.WEB},
		{Label: "b", Cfg: tinyCfg(core.DesignSRL, 701), Suite: trace.WEB},
		{Label: "c", Cfg: tinyCfg(core.DesignSRL, 702), Suite: trace.WEB},
	}
	if _, err := Run(context.Background(), points, opts); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 || lastDone.Load() != 3 {
		t.Fatalf("progress calls=%d lastDone=%d", calls.Load(), lastDone.Load())
	}
}

func TestReportHelpers(t *testing.T) {
	p := Point{Label: "x", Cfg: tinyCfg(core.DesignBaseline, 800), Suite: trace.SINT2K}
	rep, err := Run(context.Background(), []Point{p}, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Get("x", trace.SINT2K) == nil || rep.Get("y", trace.SINT2K) != nil {
		t.Fatal("Get lookup wrong")
	}
	if rep.TotalSimulatedUops() == 0 || rep.Throughput() <= 0 {
		t.Fatalf("metrics empty: %s", rep)
	}
	if !strings.Contains(rep.String(), "1 points") {
		t.Fatalf("render: %s", rep)
	}
}
