package check

import (
	"encoding/json"
	"testing"

	"srlproc/internal/trace"
	"srlproc/internal/xrand"
)

// FuzzOracle is the native fuzz entry: each case derives a design point
// from the arguments (design and suite pinned by the selectors, every
// other knob sampled from seed), records a workload slice, and runs it
// with the differential oracle in lockstep. Any divergence fails the
// case; `go test -run TestSeedCorpus`-style execution of the seed corpus
// happens on every plain `go test` run, and `make fuzz` gives the engine
// a time budget to explore beyond it.
func FuzzOracle(f *testing.F) {
	// Seed corpus: every design × a couple of suites and seeds, so even
	// the no-budget corpus pass touches all five store organisations.
	for design := uint8(0); design < 5; design++ {
		f.Add(uint64(1), design, uint8(design))
		f.Add(uint64(0x5eed+uint64(design)), design, uint8(6-design))
	}
	// Ordering + far-memory coverage: these seeds sample points with
	// fences/acquire-release traffic AND the far tier enabled (the sampler
	// rolls both knobs from the seed), one per store organisation.
	f.Add(uint64(0), uint8(0), uint8(0))
	f.Add(uint64(7), uint8(1), uint8(0))
	f.Add(uint64(3), uint8(2), uint8(3))
	f.Add(uint64(4), uint8(3), uint8(4))
	f.Add(uint64(7), uint8(4), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, designSel, profSel uint8) {
		pt := PointFromArgs(seed, designSel, profSel)
		uops := CaptureFor(pt.Cfg, pt.Suite)
		res, err := RunChecked(pt.Cfg, pt.Suite, uops)
		if err != nil {
			t.Fatalf("point %s/%s seed=%#x failed to run: %v",
				pt.Cfg.Design, pt.Suite, pt.Cfg.Seed, err)
		}
		if res.DivergenceCount > 0 {
			for _, d := range res.Divergences {
				t.Logf("divergence: %s", d)
			}
			t.Fatalf("%d divergences on %s/%s seed=%#x (srl=%d lcf=%v/%d fc=%v/%d lb=%d/%v ckpt=%d/%d win=%d mshrs=%d pf=%v)",
				res.DivergenceCount, pt.Cfg.Design, pt.Suite, pt.Cfg.Seed,
				pt.Cfg.SRLSize, pt.Cfg.UseLCF, pt.Cfg.LCFSize,
				pt.Cfg.UseFC, pt.Cfg.FCSize,
				pt.Cfg.LoadBufAssoc, pt.Cfg.LoadBufPolicy,
				pt.Cfg.Checkpoints, pt.Cfg.CkptInterval, pt.Cfg.WindowCap,
				pt.Cfg.Mem.MSHRs, pt.Cfg.Mem.PrefetchOn)
		}
		// Skip-identity round: the same point with the cycle-skip
		// fast-forward inverted must produce a byte-identical Results
		// document — the fuzzer explores the config space the curated
		// golden suite cannot.
		flipped := pt.Cfg
		flipped.EventSkip = !pt.Cfg.EventSkip
		res2, err := RunChecked(flipped, pt.Suite, uops)
		if err != nil {
			t.Fatalf("EventSkip=%v rerun failed: %v", flipped.EventSkip, err)
		}
		a, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res2)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("EventSkip changed the Results document on %s/%s seed=%#x\n--- skip=%v ---\n%s\n--- skip=%v ---\n%s",
				pt.Cfg.Design, pt.Suite, pt.Cfg.Seed, pt.Cfg.EventSkip, a, flipped.EventSkip, b)
		}
	})
}

// TestSamplePointValidates proves every sampled configuration is legal:
// the fuzzer must never trip over Config.Validate instead of a real bug.
func TestSamplePointValidates(t *testing.T) {
	rng := xrand.New(7)
	for i := 0; i < 2000; i++ {
		pt := SamplePoint(rng)
		if err := pt.Cfg.Validate(); err != nil {
			t.Fatalf("sample %d invalid: %v (%+v)", i, err, pt.Cfg)
		}
	}
}

// TestSliceSourceLoops pins the slice source's looping semantics to the
// trace.Reader contract: dense monotonic sequence numbers across the wrap
// and producer references shifted with them.
func TestSliceSourceLoops(t *testing.T) {
	uops := Capture(trace.SINT2K, 3, 100)
	src := NewSliceSource(uops)
	var last uint64
	for i := 0; i < 350; i++ {
		u := src.Next()
		if u.Seq != last+1 {
			t.Fatalf("uop %d: seq %d after %d (not dense)", i, u.Seq, last)
		}
		if u.MemSeq != 0 && u.MemSeq >= u.Seq {
			t.Fatalf("uop %d: producer ref %d not older than load %d", i, u.MemSeq, u.Seq)
		}
		last = u.Seq
	}
}
