package check

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"srlproc/internal/core"
	"srlproc/internal/oracle"
	"srlproc/internal/trace"
)

// orderingCfg decorates a design's default configuration with the §12
// scenario-pack knobs: fences and acquire/release tags in the instruction
// stream, and a far-memory tier splitting lines across a CXL-like latency
// band with mid-run degradation.
func orderingCfg(design core.StoreDesign) core.Config {
	cfg := core.DefaultConfig(design)
	cfg.FencePer1K = 3
	cfg.AcquireFrac = 0.12
	cfg.ReleaseFrac = 0.12
	cfg.Mem.FarFrac = 0.5
	cfg.Mem.FarLatency = 2400
	cfg.Mem.FarDegradeAfter = 20_000
	cfg.Mem.FarDegradedLatency = 4800
	return cfg
}

// TestOrderingOracleClean runs every store design on every suite with
// ordering traffic and the far-memory tier enabled, under the lockstep
// oracle, and requires zero divergences — the fence/release gates must
// hold exactly where DESIGN.md §12 claims they do. Reduced lengths by
// default; SRLPROC_ORACLE_FULL=1 runs the figure-scale lengths.
func TestOrderingOracleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering oracle sweep skipped in -short mode")
	}
	warmup, run := uint64(2_000), uint64(8_000)
	if os.Getenv("SRLPROC_ORACLE_FULL") == "1" {
		warmup, run = 8_000, 40_000
	}
	type pt struct {
		name string
		cfg  core.Config
	}
	var pts []pt
	for _, design := range allDesigns {
		pts = append(pts, pt{design.String(), orderingCfg(design)})
	}
	// Without the WAR order tracker the SRL drain path's own release/sync
	// gates are the only thing holding the head back — the configuration
	// where they are load-bearing rather than redundant.
	noWAR := orderingCfg(core.DesignSRL)
	noWAR.UseWARTracker = false
	pts = append(pts, pt{"srl-nowar", noWAR})
	for _, p := range pts {
		for _, su := range trace.AllSuites() {
			p, su := p, su
			t.Run(fmt.Sprintf("%s/%s", p.name, su), func(t *testing.T) {
				t.Parallel()
				cfg := p.cfg
				cfg.WarmupUops = warmup
				cfg.RunUops = run
				cfg.Check = true
				uops := CaptureFor(cfg, su)
				res, err := RunChecked(cfg, su, uops)
				if err != nil {
					t.Fatal(err)
				}
				if res.DivergenceCount != 0 {
					for i, d := range res.Divergences {
						t.Errorf("divergence %d: %s", i, d)
					}
					t.Fatalf("%s/%s: %d divergences", p.name, su, res.DivergenceCount)
				}
				// Skip-identity leg: the ordering waits (fence retries, SRL
				// drain gates) must be linear under the cycle-skip
				// fast-forward — flipping EventSkip may not change a byte.
				flipped := cfg
				flipped.EventSkip = !cfg.EventSkip
				res2, err := RunChecked(flipped, su, uops)
				if err != nil {
					t.Fatal(err)
				}
				a, _ := json.Marshal(res)
				b, _ := json.Marshal(res2)
				if string(a) != string(b) {
					t.Fatalf("EventSkip changed the Results document under ordering traffic on %s/%s", p.name, su)
				}
			})
		}
	}
}

// orderingFaultCfg is the pinned design point for the seeded sync-gate
// tests: the ordering scenario pack on an SRL machine with the drain-path
// release/sync gates removed (Config.FaultDropSyncGate). The WAR order
// tracker is disabled because it independently holds the head behind
// unexecuted older loads, masking the dropped gates (the configuration is
// legal — without the tracker the load buffer catches WAR value errors).
// testdata/regress/ord_*.srlt traces replay under this config.
func orderingFaultCfg() core.Config {
	cfg := orderingCfg(core.DesignSRL)
	cfg.Seed = 1
	cfg.WarmupUops = 0
	cfg.RunUops = 8_000
	cfg.SRLSize = 32
	cfg.Check = true
	cfg.FaultDropSyncGate = true
	cfg.UseWARTracker = false
	cfg.SnoopsEnabled = false
	return cfg
}

// TestSeededOrderingBugCaught runs the deliberately de-gated drain path
// under the oracle and requires it to be detected, minimized, and still
// detected after a round trip through the on-disk trace format.
func TestSeededOrderingBugCaught(t *testing.T) {
	cfg := orderingFaultCfg()
	uops := CaptureFor(cfg, trace.SINT2K)
	res, err := RunChecked(cfg, trace.SINT2K, uops)
	if err != nil {
		t.Fatal(err)
	}
	if res.DivergenceCount == 0 {
		t.Fatal("seeded sync-gate bug not caught: zero divergences")
	}
	sawOrdering := false
	for _, d := range res.Divergences {
		if d.Kind == oracle.KindSyncOrder || d.Kind == oracle.KindReleaseOrder {
			sawOrdering = true
			break
		}
	}
	if !sawOrdering {
		t.Fatalf("expected a sync-order or release-order divergence among %d; first is %v",
			res.DivergenceCount, res.Divergences[0].Kind)
	}
	t.Logf("caught: %d divergences, first %v at cycle %d",
		res.DivergenceCount, res.Divergences[0].Kind, res.Divergences[0].Cycle)

	if testing.Short() {
		t.Skip("skipping minimization in -short mode")
	}
	min, ok := Minimize(cfg, trace.SINT2K, uops, 64)
	if !ok {
		t.Fatal("Minimize failed to reproduce the divergence")
	}
	if len(min) >= len(uops) {
		t.Fatalf("minimization did not shrink the trace: %d -> %d", len(uops), len(min))
	}
	t.Logf("minimized %d uops -> %d", len(uops), len(min))

	path := filepath.Join(t.TempDir(), "min.srlt")
	if os.Getenv("SRLPROC_WRITE_REGRESS") == "1" {
		// Refresh the checked-in regression trace from this minimization.
		path = filepath.Join("testdata", "regress", "ord_drop_sync_gate.srlt")
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteRecords(f, min); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	back, err := trace.ReadRecords(rf)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunChecked(cfg, trace.SINT2K, back)
	if err != nil {
		t.Fatal(err)
	}
	if res2.DivergenceCount == 0 {
		t.Fatal("minimized trace no longer reproduces after file round-trip")
	}
}
