package check

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"srlproc/internal/core"
	"srlproc/internal/oracle"
	"srlproc/internal/trace"
)

// faultCfg is the pinned design point for the seeded-bug tests: an SRL
// machine with Config.FaultInvertFwdAge set, which inverts the forwarding
// cache's older-store age comparison (a load then forwards from a *younger*
// store to the same word). The oracle must catch the wrong value at load
// completion or commit. Seed 1 on SINT2K yields divergences within the
// first few thousand committed uops.
func faultCfg() core.Config {
	cfg := core.DefaultConfig(core.DesignSRL)
	cfg.Seed = 1
	cfg.WarmupUops = 0
	cfg.RunUops = 8000
	cfg.SRLSize = 32
	cfg.Check = true
	cfg.FaultInvertFwdAge = true
	cfg.SnoopsEnabled = false
	return cfg
}

// TestSeededForwardingBugCaught runs the deliberately broken forwarding
// path under the oracle and requires it to be detected, minimized, and
// still detected after a round trip through the on-disk trace format.
func TestSeededForwardingBugCaught(t *testing.T) {
	cfg := faultCfg()
	uops := CaptureFor(cfg, trace.SINT2K)
	res, err := RunChecked(cfg, trace.SINT2K, uops)
	if err != nil {
		t.Fatal(err)
	}
	if res.DivergenceCount == 0 {
		t.Fatal("seeded forwarding-age bug not caught: zero divergences")
	}
	sawAge := false
	for _, d := range res.Divergences {
		if d.Kind == oracle.KindForwardAge {
			sawAge = true
			break
		}
	}
	if !sawAge {
		t.Fatalf("expected a forward-age divergence among %d; first is %v",
			res.DivergenceCount, res.Divergences[0].Kind)
	}
	t.Logf("caught: %d divergences, first at cycle %d", res.DivergenceCount, res.Divergences[0].Cycle)

	if testing.Short() {
		t.Skip("skipping minimization in -short mode")
	}
	min, ok := Minimize(cfg, trace.SINT2K, uops, 64)
	if !ok {
		t.Fatal("Minimize failed to reproduce the divergence")
	}
	if len(min) >= len(uops) {
		t.Fatalf("minimization did not shrink the trace: %d -> %d", len(uops), len(min))
	}
	t.Logf("minimized %d uops -> %d", len(uops), len(min))

	// Round-trip through the on-disk format: a minimized trace is only
	// useful if the file you hand someone still reproduces.
	path := filepath.Join(t.TempDir(), "min.srlt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteRecords(f, min); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	back, err := trace.ReadRecords(rf)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunChecked(cfg, trace.SINT2K, back)
	if err != nil {
		t.Fatal(err)
	}
	if res2.DivergenceCount == 0 {
		t.Fatal("minimized trace no longer reproduces after file round-trip")
	}
}

// regressCfg maps a checked-in regression trace to the config that
// originally exposed it, by filename prefix: fwd_* traces replay the
// forwarding-age fault point, ord_* traces the ordering sync-gate fault
// point.
func regressCfg(base string) core.Config {
	if strings.HasPrefix(base, "ord_") {
		return orderingFaultCfg()
	}
	return faultCfg()
}

// TestRegressionTraces replays every checked-in minimized trace under the
// config that originally exposed it and requires the divergence to persist.
// Each file in testdata/regress is the output of a Minimize run on a real
// or seeded bug; if a refactor makes one stop reproducing, either the bug
// class became unreachable (update the trace) or the oracle lost coverage.
// Every trace runs with event-driven cycle skipping on and off and both
// Results documents must be byte-identical: the fast-forward must not
// move, mask, or duplicate an oracle divergence.
func TestRegressionTraces(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "regress", "*.srlt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no regression traces checked in")
	}
	for _, p := range paths {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			f, err := os.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			uops, err := trace.ReadRecords(f)
			if err != nil {
				t.Fatal(err)
			}
			var docs [2][]byte
			for i, skip := range []bool{true, false} {
				cfg := regressCfg(filepath.Base(p))
				cfg.EventSkip = skip
				res, err := RunChecked(cfg, trace.SINT2K, uops)
				if err != nil {
					t.Fatal(err)
				}
				if res.DivergenceCount == 0 {
					t.Fatalf("regression trace %s no longer reproduces any divergence (EventSkip=%v)", p, skip)
				}
				if docs[i], err = json.Marshal(res); err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					t.Logf("%s: %d divergences (first %v at cycle %d)",
						filepath.Base(p), res.DivergenceCount, res.Divergences[0].Kind, res.Divergences[0].Cycle)
				}
			}
			if string(docs[0]) != string(docs[1]) {
				t.Fatalf("EventSkip changed the checked Results document for %s", p)
			}
		})
	}
}
