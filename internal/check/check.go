// Package check fuzzes the simulator against the differential oracle
// (internal/oracle). It samples random design points — store designs
// crossed with structure sizes, hash kinds, overflow policies and memory
// knobs — pairs each with a recorded slice of a synthetic workload, runs
// the pair oracle-checked, and shrinks any divergence-reproducing stream
// to a minimal replayable trace (see Minimize). The package backs the
// native `go test` fuzz target (FuzzOracle), the figure-sweep oracle
// tests, and the `make fuzz` budgeted run.
package check

import (
	"srlproc/internal/core"
	"srlproc/internal/isa"
	"srlproc/internal/lsq"
	"srlproc/internal/trace"
	"srlproc/internal/xrand"
)

// Point is one fuzz case: a full design point plus the workload suite
// whose profile parameterises it.
type Point struct {
	Cfg   core.Config
	Suite trace.Suite
}

// Fuzz cases run small so a single fuzz budget covers many design points;
// the stream still spans several checkpoint generations, SRL wraps and
// redo episodes at these sizes.
const (
	fuzzWarmupUops = 1_000
	fuzzRunUops    = 6_000
)

var allDesigns = []core.StoreDesign{
	core.DesignBaseline,
	core.DesignLargeSTQ,
	core.DesignHierarchical,
	core.DesignSRL,
	core.DesignFilteredSTQ,
}

// SamplePoint draws a random design point and workload. Every sampled
// configuration passes core.Config.Validate: the LCF stays a power of two,
// indexed forwarding implies the LCF, and the window cap tracks the
// checkpoint interval.
func SamplePoint(rng *xrand.RNG) Point {
	suites := trace.AllSuites()
	suite := suites[rng.Intn(len(suites))]
	design := allDesigns[rng.Intn(len(allDesigns))]
	return samplePointWith(rng, design, suite)
}

// samplePointWith fills in everything below the design/suite choice. The
// sizes deliberately skew small: an 8-entry SRL or 64-entry L2 STQ wraps,
// overflows and redoes thousands of times in a 7K-uop run, which is where
// boundary bugs live.
func samplePointWith(rng *xrand.RNG, design core.StoreDesign, suite trace.Suite) Point {
	cfg := core.DefaultConfig(design)
	cfg.Seed = rng.Uint64()
	cfg.WarmupUops = fuzzWarmupUops
	cfg.RunUops = fuzzRunUops
	cfg.Check = true

	cfg.CkptInterval = pick(rng, 64, 192, 448)
	cfg.Checkpoints = pick(rng, 2, 4, 8)
	cfg.WindowCap = pick(rng, 1024, 2048, 8192)
	if min := cfg.CkptInterval * 2; cfg.WindowCap < min {
		cfg.WindowCap = min
	}

	switch design {
	case core.DesignLargeSTQ, core.DesignFilteredSTQ:
		cfg.STQSize = pick(rng, 128, 256, 512, 1024)
	case core.DesignHierarchical:
		cfg.L2STQSize = pick(rng, 64, 256, 1024)
		cfg.MTBSize = pick(rng, 256, 1024)
	case core.DesignSRL:
		cfg.SRLSize = pick(rng, 8, 32, 128, 1024)
		cfg.UseLCF = rng.Bool(0.75)
		if cfg.UseLCF {
			cfg.LCFSize = pick(rng, 64, 256, 2048)
			if rng.Bool(0.5) {
				cfg.LCFHash = lsq.HashLAB
			} else {
				cfg.LCFHash = lsq.Hash3PAX
			}
			cfg.LCFCounterBits = uint(pick(rng, 2, 6))
			cfg.UseIndexedFwd = rng.Bool(0.5)
		} else {
			cfg.UseIndexedFwd = false
		}
		cfg.UseFC = rng.Bool(0.8)
		if cfg.UseFC {
			cfg.FCSize = pick(rng, 64, 256)
			cfg.FCAssoc = pick(rng, 2, 4)
		}
		cfg.LoadBufAssoc = pick(rng, 4, 8, 1024)
		if rng.Bool(0.5) {
			cfg.LoadBufPolicy = lsq.OverflowVictim
			cfg.LoadBufVictim = pick(rng, 4, 16)
		} else {
			cfg.LoadBufPolicy = lsq.OverflowViolate
		}
	}

	cfg.Mem.PrefetchOn = rng.Bool(0.5)
	cfg.Mem.MSHRs = pick(rng, 4, 32)
	cfg.SnoopsEnabled = rng.Bool(0.5)

	// Memory-ordering traffic (DESIGN.md §12): half the points carry
	// fences and acquire/release tags so the sync gates, the version
	// tracker and the oracle's ordering checks get fuzz coverage; the
	// other half keeps the historical zero-knob stream.
	if rng.Bool(0.5) {
		cfg.FencePer1K = pick(rng, 1, 4, 16)
		cfg.AcquireFrac = float64(pick(rng, 0, 10, 30)) / 100
		cfg.ReleaseFrac = float64(pick(rng, 0, 10, 30)) / 100
	}
	// Far-memory tier: a third of the points split lines across a
	// CXL-like latency band, sometimes with mid-run degradation.
	if rng.Bool(0.33) {
		cfg.Mem.FarFrac = float64(pick(rng, 25, 50)) / 100
		cfg.Mem.FarLatency = uint64(pick(rng, 1200, 2400))
		if rng.Bool(0.5) {
			cfg.Mem.FarDegradeAfter = uint64(pick(rng, 5_000, 20_000))
			cfg.Mem.FarDegradedLatency = 2 * cfg.Mem.FarLatency
		}
	}
	return Point{Cfg: cfg, Suite: suite}
}

// PointFromArgs derives a deterministic fuzz point from raw fuzz-engine
// arguments. The selectors pin the coarse axes (store design, workload
// suite) so the engine can explore them directly; seed drives every other
// knob through the sampler.
func PointFromArgs(seed uint64, designSel, profSel uint8) Point {
	rng := xrand.New(seed*0x9e3779b97f4a7c15 + 0x1234_5678)
	suites := trace.AllSuites()
	suite := suites[int(profSel)%len(suites)]
	design := allDesigns[int(designSel)%len(allDesigns)]
	return samplePointWith(rng, design, suite)
}

func pick(rng *xrand.RNG, choices ...int) int {
	return choices[rng.Intn(len(choices))]
}

// Capture materialises n micro-ops of suite's synthetic workload — the
// recorded slice a checked run replays, so a divergence is immediately
// reproducible and minimizable.
func Capture(suite trace.Suite, seed uint64, n int) []isa.Uop {
	return captureProfile(trace.ProfileFor(suite), seed, n)
}

func captureProfile(p trace.Profile, seed uint64, n int) []isa.Uop {
	g := trace.NewGenerator(p, seed)
	uops := make([]isa.Uop, n)
	for i := range uops {
		uops[i] = g.Next()
	}
	return uops
}

// profileFor mirrors cfg's ordering knobs into suite's profile, exactly as
// core.New does — a captured slice must carry the same fences and
// acquire/release tags the live generator would emit.
func profileFor(cfg core.Config, suite trace.Suite) trace.Profile {
	p := trace.ProfileFor(suite)
	p.FencePer1K = cfg.FencePer1K
	p.AcquireFrac = cfg.AcquireFrac
	p.ReleaseFrac = cfg.ReleaseFrac
	return p
}

// CaptureFor sizes Capture for cfg: the committed budget plus two window
// capacities of fetch-ahead slack. The slice source loops if the machine
// somehow reads past that, so the bound only has to be roughly right.
func CaptureFor(cfg core.Config, suite trace.Suite) []isa.Uop {
	n := int(cfg.WarmupUops+cfg.RunUops) + 2*cfg.WindowCap
	return captureProfile(profileFor(cfg, suite), cfg.Seed, n)
}

// RunChecked simulates cfg over the recorded micro-op slice with the
// differential oracle enabled and returns the run's results (divergences
// included — they never abort the run).
func RunChecked(cfg core.Config, suite trace.Suite, uops []isa.Uop) (*core.Results, error) {
	cfg.Check = true
	c, err := core.NewFromSource(cfg, NewSliceSource(uops), profileFor(cfg, suite))
	if err != nil {
		return nil, err
	}
	return c.Run(), nil
}

// sliceSource replays an in-memory micro-op slice as a trace.Source with
// the same looping semantics as trace.Reader: when the slice is exhausted
// it restarts from the beginning with sequence numbers (and non-zero
// MemSeq producer references) shifted past the last delivered sequence,
// so the stream stays dense and monotonic forever.
type sliceSource struct {
	uops    []isa.Uop
	pos     int
	seqBase uint64
	lastSeq uint64
}

// NewSliceSource wraps uops as a looping trace.Source.
func NewSliceSource(uops []isa.Uop) trace.Source {
	return &sliceSource{uops: uops}
}

// Next implements trace.Source.
func (s *sliceSource) Next() isa.Uop {
	if len(s.uops) == 0 {
		s.lastSeq++
		return isa.Uop{Seq: s.lastSeq, Class: isa.IntALU, Src1: isa.NoReg, Src2: isa.NoReg, Dst: 0}
	}
	if s.pos == len(s.uops) {
		s.pos = 0
		s.seqBase = s.lastSeq
	}
	u := s.uops[s.pos]
	s.pos++
	u.Seq += s.seqBase
	if u.MemSeq != 0 {
		u.MemSeq += s.seqBase
	}
	s.lastSeq = u.Seq
	return u
}
