package check

import (
	"srlproc/internal/core"
	"srlproc/internal/isa"
	"srlproc/internal/trace"
)

// DefaultMinimizeBudget bounds how many replay runs Minimize spends. The
// prefix binary search uses O(log n); the rest goes to chunk removal.
const DefaultMinimizeBudget = 200

// Minimize shrinks a divergence-reproducing micro-op stream to a smaller
// one that still diverges under cfg. It first binary-chops the prefix
// (the divergence has a latest-contributing micro-op; any prefix past it
// reproduces), then runs a ddmin-style pass deleting chunks of shrinking
// size from the middle. Every candidate is renumbered densely before
// replay — the machine's window ring indexes by sequence number — with
// producer references (MemSeq) remapped alongside, or cleared when the
// producing store was deleted (the load then reads memory, which can only
// weaken the repro; the check catches that and keeps the store).
//
// The returned slice is renumbered and replayable as-is (via RunChecked
// or a written trace file). ok is false when the input itself does not
// reproduce under cfg — callers should replay with WarmupUops=0 so
// nothing is hidden by the stats reset.
func Minimize(cfg core.Config, suite trace.Suite, uops []isa.Uop, budget int) (min []isa.Uop, ok bool) {
	if budget <= 0 {
		budget = DefaultMinimizeBudget
	}
	runs := 0
	reproduces := func(cand []isa.Uop) bool {
		if len(cand) == 0 || runs >= budget {
			return false
		}
		runs++
		res, err := RunChecked(cfg, suite, Renumber(cand))
		return err == nil && res.DivergenceCount > 0
	}

	if !reproduces(uops) {
		return nil, false
	}
	cur := uops

	// Phase 1: smallest reproducing prefix, by binary search. Reproduction
	// is not perfectly monotone in prefix length (a shorter stream loops
	// differently), so only prefixes that actually reproduced are eligible;
	// the shortest of those wins.
	best := len(cur)
	lo, hi := 1, len(cur)
	for lo < hi && runs < budget {
		mid := (lo + hi) / 2
		if reproduces(cur[:mid]) {
			best = mid
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cur = cur[:best]

	// Phase 2: ddmin-lite — delete chunks of halving size anywhere in the
	// stream while the divergence survives.
	for chunk := len(cur) / 2; chunk >= 1 && runs < budget; chunk /= 2 {
		for start := 0; start+chunk <= len(cur) && runs < budget; {
			cand := make([]isa.Uop, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if reproduces(cand) {
				cur = cand
				// Re-test the same offset: the next chunk slid into it.
			} else {
				start += chunk
			}
		}
	}
	return Renumber(cur), true
}

// Renumber rewrites uops with dense sequence numbers 1..n (the simulator's
// window ring requires density) and remaps non-zero MemSeq producer
// references through the same renaming; references to deleted stores are
// cleared to 0 ("from memory").
func Renumber(uops []isa.Uop) []isa.Uop {
	out := make([]isa.Uop, len(uops))
	remap := make(map[uint64]uint64, len(uops))
	for i, u := range uops {
		remap[u.Seq] = uint64(i + 1)
		u.Seq = uint64(i + 1)
		out[i] = u
	}
	for i := range out {
		if out[i].MemSeq == 0 {
			continue
		}
		if ns, hit := remap[out[i].MemSeq]; hit {
			out[i].MemSeq = ns
		} else {
			out[i].MemSeq = 0
		}
	}
	return out
}
