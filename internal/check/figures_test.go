package check

import (
	"fmt"
	"os"
	"testing"

	"srlproc/internal/core"
	"srlproc/internal/trace"
)

// figurePoints returns every design point the paper's Figure 2 and Figure 6
// sweeps simulate: the 48-entry baseline, the single-level store queue at
// 128..1K entries, the SRL machine and the hierarchical store queue.
func figurePoints() []struct {
	Name string
	Cfg  core.Config
} {
	var pts []struct {
		Name string
		Cfg  core.Config
	}
	add := func(name string, cfg core.Config) {
		pts = append(pts, struct {
			Name string
			Cfg  core.Config
		}{name, cfg})
	}
	add("baseline", core.DefaultConfig(core.DesignBaseline))
	for _, size := range []int{128, 256, 512, 1024} {
		cfg := core.DefaultConfig(core.DesignLargeSTQ)
		cfg.STQSize = size
		add(fmt.Sprintf("stq%d", size), cfg)
	}
	add("srl", core.DefaultConfig(core.DesignSRL))
	add("hier", core.DefaultConfig(core.DesignHierarchical))
	return pts
}

// TestFiguresOracleClean runs every Figure 2 / Figure 6 design point on
// every suite with the lockstep oracle enabled and requires zero
// divergences. By default each point runs a reduced length (2K warmup / 8K
// measured uops); setting SRLPROC_ORACLE_FULL=1 runs the QuickOptions
// scale the figures themselves use (8K / 40K), which is what `make fuzz`
// and the nightly job exercise.
func TestFiguresOracleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle figure sweep skipped in -short mode")
	}
	warmup, run := uint64(2_000), uint64(8_000)
	if os.Getenv("SRLPROC_ORACLE_FULL") == "1" {
		warmup, run = 8_000, 40_000
	}
	for _, pt := range figurePoints() {
		for _, su := range trace.AllSuites() {
			pt, su := pt, su
			t.Run(fmt.Sprintf("%s/%s", pt.Name, su), func(t *testing.T) {
				t.Parallel()
				cfg := pt.Cfg
				cfg.WarmupUops = warmup
				cfg.RunUops = run
				cfg.Check = true
				uops := CaptureFor(cfg, su)
				res, err := RunChecked(cfg, su, uops)
				if err != nil {
					t.Fatal(err)
				}
				if res.DivergenceCount != 0 {
					for i, d := range res.Divergences {
						t.Errorf("divergence %d: %s", i, d)
					}
					t.Fatalf("%s/%s: %d divergences (config: %+v)", pt.Name, su, res.DivergenceCount, cfg)
				}
			})
		}
	}
}
