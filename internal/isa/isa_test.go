package isa

import (
	"strings"
	"testing"
)

func TestClassProperties(t *testing.T) {
	cases := []struct {
		c     Class
		isFP  bool
		isMem bool
	}{
		{IntALU, false, false},
		{IntMul, false, false},
		{FPAdd, true, false},
		{FPMul, true, false},
		{FPDiv, true, false},
		{Load, false, true},
		{Store, false, true},
		{Branch, false, false},
	}
	for _, tc := range cases {
		if tc.c.IsFP() != tc.isFP {
			t.Errorf("%v IsFP = %v", tc.c, tc.c.IsFP())
		}
		if tc.c.IsMem() != tc.isMem {
			t.Errorf("%v IsMem = %v", tc.c, tc.c.IsMem())
		}
	}
}

func TestLatenciesOrdered(t *testing.T) {
	if IntALU.Latency() != 1 || Branch.Latency() != 1 {
		t.Fatal("single-cycle classes wrong")
	}
	if !(FPDiv.Latency() > FPMul.Latency() && FPMul.Latency() > FPAdd.Latency()) {
		t.Fatal("FP latency ordering broken")
	}
}

func TestClassString(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if strings.HasPrefix(c.String(), "class(") {
			t.Errorf("class %d has no mnemonic", c)
		}
	}
	if !strings.HasPrefix(Class(200).String(), "class(") {
		t.Error("unknown class should render numerically")
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0) != 0 {
		t.Fatal("LineAddr(0)")
	}
	if LineAddr(63) != 0 {
		t.Fatal("LineAddr(63)")
	}
	if LineAddr(64) != 64 {
		t.Fatal("LineAddr(64)")
	}
	if LineAddr(0x12345) != 0x12340 {
		t.Fatalf("LineAddr(0x12345) = %#x", LineAddr(0x12345))
	}
}

func TestUopPredicates(t *testing.T) {
	u := Uop{Class: Load}
	if !u.IsLoad() || u.IsStore() || u.IsBranch() {
		t.Fatal("load predicates")
	}
	u.Class = Store
	if !u.IsStore() {
		t.Fatal("store predicate")
	}
	u.Class = Branch
	if !u.IsBranch() {
		t.Fatal("branch predicate")
	}
}

func TestUopString(t *testing.T) {
	u := Uop{Seq: 7, Class: Load, Dst: 3, Addr: 0x1000}
	if !strings.Contains(u.String(), "load") || !strings.Contains(u.String(), "0x1000") {
		t.Fatalf("load string: %s", u.String())
	}
	u = Uop{Seq: 8, Class: Store, Src2: 5, Addr: 0x2000}
	if !strings.Contains(u.String(), "store") {
		t.Fatalf("store string: %s", u.String())
	}
}
