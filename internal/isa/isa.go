// Package isa defines the micro-operation model the simulator executes.
//
// The paper's simulator executes IA32 micro-ops; that instruction set (and
// the traces driving it) is proprietary, so this reproduction defines a
// compact micro-op vocabulary carrying exactly the information the
// mechanisms under study consume: operation class (for latency and
// functional-unit routing), register dependences (for poison propagation and
// slice formation), memory address and size (for the store/load queues,
// caches and dependence predictor), and branch outcome (for the predictor
// and checkpoint machinery).
package isa

import "fmt"

// Class identifies the functional class of a micro-op.
type Class uint8

// Micro-op classes. Latencies follow a Pentium-4-equivalent unit mix
// (Table 1 of the paper).
const (
	IntALU Class = iota // 1-cycle integer op
	IntMul              // pipelined integer multiply
	FPAdd               // floating point add
	FPMul               // floating point multiply
	FPDiv               // unpipelined floating point divide
	Load                // memory load
	Store               // memory store
	Branch              // conditional branch
	Fence               // full memory ordering barrier
	NumClasses
)

// String returns the mnemonic for the class.
func (c Class) String() string {
	switch c {
	case IntALU:
		return "int"
	case IntMul:
		return "imul"
	case FPAdd:
		return "fadd"
	case FPMul:
		return "fmul"
	case FPDiv:
		return "fdiv"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	case Fence:
		return "fence"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Latency returns the execution latency in cycles for the class, excluding
// memory access time for loads (the cache hierarchy supplies that).
func (c Class) Latency() uint64 {
	switch c {
	case IntALU, Branch, Fence:
		return 1
	case IntMul:
		return 3
	case FPAdd:
		return 4
	case FPMul:
		return 6
	case FPDiv:
		return 20
	case Load:
		return 0 // address generation folded into cache access
	case Store:
		return 1 // address+data capture
	default:
		return 1
	}
}

// IsFP reports whether the class executes in the floating point cluster and
// uses FP registers.
func (c Class) IsFP() bool {
	return c == FPAdd || c == FPMul || c == FPDiv
}

// IsMem reports whether the class occupies the memory scheduler window.
func (c Class) IsMem() bool { return c == Load || c == Store }

// NumArchRegs is the size of the architectural register space the generator
// draws from. A single space is used for dependence purposes (loads feed FP
// ops and store data alike — what matters to the mechanisms under study is
// the dependence graph, not the register file split); the scheduler windows
// and physical register files are still split by operation class.
const NumArchRegs = 32

// NoReg marks an absent register operand.
const NoReg int8 = -1

// Uop is one micro-operation as produced by a workload generator.
//
// Src1/Src2/Dst are architectural register numbers (int or FP space chosen
// by Class), or NoReg. For loads, Dst receives memory data and Src1 is the
// address base. For stores, Src1 is the address base and Src2 the data
// source. MemSeq, for loads that truly depend on an earlier store, is the
// sequence number of that store (0 if none); the simulator uses it as ground
// truth to resolve forwarding and detect mispredicted dependences, exactly
// as an execution-driven simulator would observe the actual values.
type Uop struct {
	Seq    uint64 // global program-order sequence number, starts at 1
	PC     uint64 // synthetic instruction address (for predictors)
	Class  Class
	Src1   int8
	Src2   int8
	Dst    int8
	Addr   uint64 // memory effective address (loads/stores)
	Size   uint8  // access size in bytes (loads/stores)
	Taken  bool   // branch outcome
	MemSeq uint64 // true producing store sequence for loads; 0 if from memory

	// Release-consistency annotations. Acq marks a load-acquire (younger
	// memory operations may not perform before it); Rel marks a
	// store-release (its memory update may not become visible before every
	// older operation has performed). Fence-class uops are full barriers
	// and carry neither flag.
	Acq bool
	Rel bool
}

// IsLoad reports whether u is a load.
func (u *Uop) IsLoad() bool { return u.Class == Load }

// IsStore reports whether u is a store.
func (u *Uop) IsStore() bool { return u.Class == Store }

// IsBranch reports whether u is a branch.
func (u *Uop) IsBranch() bool { return u.Class == Branch }

// String renders a compact human-readable form for debugging.
func (u *Uop) String() string {
	switch u.Class {
	case Load:
		if u.Acq {
			return fmt.Sprintf("#%d load.acq r%d <- [%#x]", u.Seq, u.Dst, u.Addr)
		}
		return fmt.Sprintf("#%d %s r%d <- [%#x]", u.Seq, u.Class, u.Dst, u.Addr)
	case Store:
		if u.Rel {
			return fmt.Sprintf("#%d store.rel [%#x] <- r%d", u.Seq, u.Addr, u.Src2)
		}
		return fmt.Sprintf("#%d %s [%#x] <- r%d", u.Seq, u.Class, u.Addr, u.Src2)
	case Fence:
		return fmt.Sprintf("#%d fence", u.Seq)
	case Branch:
		return fmt.Sprintf("#%d %s pc=%#x taken=%v", u.Seq, u.Class, u.PC, u.Taken)
	default:
		return fmt.Sprintf("#%d %s r%d <- r%d, r%d", u.Seq, u.Class, u.Dst, u.Src1, u.Src2)
	}
}

// CacheLineSize is the L1/L2 line size from Table 1.
const CacheLineSize = 64

// LineAddr returns the cache-line-aligned address of a.
func LineAddr(a uint64) uint64 { return a &^ uint64(CacheLineSize-1) }
