package memdep

import "testing"

func TestInitiallyIndependent(t *testing.T) {
	s := New(1024)
	if s.Dependent(0x100, 0x200) {
		t.Fatal("untrained predictor claims dependence")
	}
	if s.DependentOnAny(0x100) {
		t.Fatal("untrained load in a store set")
	}
}

func TestViolationCreatesSet(t *testing.T) {
	s := New(1024)
	s.RecordViolation(0x100, 0x200)
	if !s.Dependent(0x100, 0x200) {
		t.Fatal("trained pair not dependent")
	}
	if !s.DependentOnAny(0x100) {
		t.Fatal("trained load not in any set")
	}
	if s.Dependent(0x100, 0x300) {
		t.Fatal("unrelated store matched")
	}
}

func TestSetMerging(t *testing.T) {
	s := New(1024)
	s.RecordViolation(0x100, 0x200) // set A: load100, store200
	s.RecordViolation(0x100, 0x300) // store300 joins load100's set
	if !s.Dependent(0x100, 0x300) {
		t.Fatal("store300 did not join")
	}
	// A second load violating with store200 joins the same set, making it
	// dependent on store300 as well (the store-sets transitivity).
	s.RecordViolation(0x400, 0x200)
	if !s.Dependent(0x400, 0x200) {
		t.Fatal("load400/store200 not dependent")
	}
}

func TestBothInDifferentSetsMergeToLower(t *testing.T) {
	s := New(1024)
	s.RecordViolation(0x100, 0x200) // set 0
	s.RecordViolation(0x300, 0x400) // set 1
	// Now load100 (set 0) violates with store400 (set 1).
	s.RecordViolation(0x100, 0x400)
	if !s.Dependent(0x100, 0x400) {
		t.Fatal("cross-set violation not dependent")
	}
}

func TestClear(t *testing.T) {
	s := New(1024)
	s.RecordViolation(0x100, 0x200)
	s.Clear(0x100)
	if s.DependentOnAny(0x100) {
		t.Fatal("cleared load still in a set")
	}
	// The store keeps its membership.
	if !s.DependentOnAny(0x200) {
		t.Fatal("store lost set membership on load clear")
	}
}

func TestAliasingIsByHashedPC(t *testing.T) {
	s := New(64)
	// PCs that collide modulo the table size behave as the same entry —
	// document the aliasing rather than pretending it is absent.
	s.RecordViolation(0x100, 0x200)
	aliased := uint64(0x100 + 64*4)
	if !s.Dependent(aliased, 0x200) {
		t.Fatal("aliased PC should share the SSIT entry")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two size did not panic")
		}
	}()
	New(100)
}
