// Package memdep implements the store-sets memory dependence predictor
// (Chrysos & Emer, ISCA 1998), the predictor Table 1 of the paper specifies.
//
// The predictor learns which static stores a static load has conflicted
// with. In this reproduction it is consulted when a load issues in the
// shadow of a miss while an older store with a poisoned or unknown address
// is in flight: if the predictor says "dependent", the load joins the slice
// (waits); if it says "independent", the load speculates, and a wrong answer
// is later caught by the (secondary) load buffer, forcing a checkpoint
// restart — exactly the flow in Section 4.2's cases (v) and (vi).
package memdep

// StoreSets is the SSIT/LFST predictor, reduced to its dependence-query
// essence: a table mapping PCs to store-set IDs. A load and store that
// violate are merged into the same set.
type StoreSets struct {
	ssit    []int32 // store-set ID table, indexed by hashed PC; -1 = invalid
	nextSet int32
	mask    uint64
}

// New creates a store-sets predictor with the given SSIT size (power of two).
func New(entries int) *StoreSets {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("memdep: entries must be a positive power of two")
	}
	s := &StoreSets{ssit: make([]int32, entries), mask: uint64(entries - 1)}
	for i := range s.ssit {
		s.ssit[i] = -1
	}
	return s
}

func (s *StoreSets) idx(pc uint64) uint64 { return (pc >> 2) & s.mask }

// Dependent reports whether the predictor believes the load at loadPC
// depends on the store at storePC (same store set).
func (s *StoreSets) Dependent(loadPC, storePC uint64) bool {
	ls := s.ssit[s.idx(loadPC)]
	ss := s.ssit[s.idx(storePC)]
	return ls >= 0 && ls == ss
}

// DependentOnAny reports whether the load at loadPC belongs to any store
// set at all (i.e. has a history of conflicting with some store). Used when
// the candidate store's identity is not cheaply known.
func (s *StoreSets) DependentOnAny(loadPC uint64) bool {
	return s.ssit[s.idx(loadPC)] >= 0
}

// RecordViolation merges the load and store into one store set, following
// the store-sets assignment rules (both invalid → new set; one valid → the
// other joins it; both valid → the lower-numbered set wins).
func (s *StoreSets) RecordViolation(loadPC, storePC uint64) {
	li, si := s.idx(loadPC), s.idx(storePC)
	ls, ss := s.ssit[li], s.ssit[si]
	switch {
	case ls < 0 && ss < 0:
		id := s.nextSet
		s.nextSet++
		s.ssit[li], s.ssit[si] = id, id
	case ls >= 0 && ss < 0:
		s.ssit[si] = ls
	case ls < 0 && ss >= 0:
		s.ssit[li] = ss
	default:
		if ls < ss {
			s.ssit[si] = ls
		} else {
			s.ssit[li] = ss
		}
	}
}

// Clear removes the load's store-set membership; called on cyclic false
// dependences (periodic clearing keeps the predictor from over-serialising).
func (s *StoreSets) Clear(pc uint64) { s.ssit[s.idx(pc)] = -1 }
