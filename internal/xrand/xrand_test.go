package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	n := 100_000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", p)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(11)
	n := 200_000
	sum := 0
	for i := 0; i < n; i++ {
		v := r.Geometric(0.25)
		if v < 1 {
			t.Fatalf("geometric sample %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-4.0) > 0.1 {
		t.Fatalf("geometric mean %v, want ~4", mean)
	}
}

func TestGeometricP1(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 1 {
			t.Fatalf("Geometric(1) = %d", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(13)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 100_000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("no skew: rank0=%d rank50=%d", counts[0], counts[50])
	}
	if counts[0] <= 4*counts[99] {
		t.Fatalf("weak skew: rank0=%d rank99=%d", counts[0], counts[99])
	}
}

func TestZipfUniformWhenS0(t *testing.T) {
	r := New(17)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100_000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-10_000) > 600 {
			t.Fatalf("s=0 not uniform: bucket %d has %d", i, c)
		}
	}
}

func TestWeighted(t *testing.T) {
	r := New(19)
	w := NewWeighted(r, []float64{1, 0, 3})
	counts := make([]int, 3)
	for i := 0; i < 100_000; i++ {
		counts[w.Next()]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.25 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
}

func TestWeightedPanics(t *testing.T) {
	for _, weights := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() { recover() }()
			NewWeighted(New(1), weights)
			t.Fatalf("NewWeighted(%v) did not panic", weights)
		}()
	}
}
