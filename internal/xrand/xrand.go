// Package xrand provides a small, fast, deterministic random number
// generator plus the handful of distributions the synthetic workload
// generators need (geometric, Zipf, weighted choice).
//
// The simulator must be bit-for-bit reproducible for a given seed so that
// experiments are comparable across designs: every design point of an
// experiment replays exactly the same instruction stream. A private
// generator (rather than math/rand's global state) guarantees that two
// generators seeded identically produce identical streams regardless of
// what else the process does.
package xrand

import "math"

// RNG is a 64-bit xorshift* pseudo random number generator. The zero value
// is not usable; construct with New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is replaced with a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func New(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r := &RNG{state: seed}
	// Warm up so that low-entropy seeds (1, 2, 3...) diverge quickly.
	for i := 0; i < 8; i++ {
		r.Uint64()
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p (support 1, 2, 3, ...; mean 1/p). p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric probability out of range")
	}
	if p == 1 {
		return 1
	}
	u := r.Float64()
	// Inverse transform sampling; guard against log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	n := int(math.Ceil(math.Log(u) / math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	return n
}

// Zipf draws from a bounded Zipf distribution over [0, n) with exponent s,
// implemented via rejection-free inverse CDF approximation. It favours small
// indices; s=0 degenerates to uniform.
type Zipf struct {
	n    int
	s    float64
	rng  *RNG
	cdf  []float64 // cumulative weights, length n
	norm float64
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s >= 0 using rng.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: Zipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: Zipf with negative exponent")
	}
	z := &Zipf{n: n, s: s, rng: rng, cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	z.norm = sum
	return z
}

// Next returns the next Zipf-distributed index in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64() * z.norm
	// Binary search the CDF.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weighted selects an index proportionally to weights. Weights must be
// non-negative and not all zero.
type Weighted struct {
	cum []float64
	rng *RNG
}

// NewWeighted builds a weighted sampler.
func NewWeighted(rng *RNG, weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("xrand: Weighted with no weights")
	}
	w := &Weighted{cum: make([]float64, len(weights)), rng: rng}
	sum := 0.0
	for i, x := range weights {
		if x < 0 {
			panic("xrand: negative weight")
		}
		sum += x
		w.cum[i] = sum
	}
	if sum == 0 {
		panic("xrand: all weights zero")
	}
	return w
}

// Next returns the next weighted index.
func (w *Weighted) Next() int {
	u := w.rng.Float64() * w.cum[len(w.cum)-1]
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
