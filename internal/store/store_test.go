package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"srlproc/internal/core"
	"srlproc/internal/obs"
	"srlproc/internal/trace"
)

func tinyCfg(d core.StoreDesign, seed uint64) core.Config {
	cfg := core.DefaultConfig(d)
	cfg.WarmupUops = 500
	cfg.RunUops = 3_000
	cfg.Seed = seed
	return cfg
}

// simulate runs a real (tiny) simulation so the tests exercise the
// round-trip gate against genuine result documents — counters, metric
// sets, occupancy trackers and all.
func simulate(t *testing.T, cfg core.Config, suite trace.Suite) *core.Results {
	t.Helper()
	c, err := core.New(cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	return c.Run()
}

func keyFor(cfg core.Config, suite trace.Suite) Key {
	return Key{Fingerprint: core.PointFingerprint(cfg, suite), Stamp: CodeStamp()}
}

// openBoth returns both ResultStore implementations so shared-semantics
// tests run against each.
func openBoth(t *testing.T) map[string]ResultStore {
	t.Helper()
	disk, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]ResultStore{"mem": NewMem(), "disk": disk}
}

// TestRoundTripAllDesigns proves every design's plain result document
// survives Encode's marshal→unmarshal→re-marshal byte-equality gate. This
// is the foundation of the warm-restart guarantee: anything Encode accepts
// is served from the store in place of a fresh simulation.
func TestRoundTripAllDesigns(t *testing.T) {
	for _, d := range []core.StoreDesign{
		core.DesignBaseline, core.DesignLargeSTQ, core.DesignSRL,
		core.DesignHierarchical, core.DesignFilteredSTQ,
	} {
		res := simulate(t, tinyCfg(d, 11), trace.WEB)
		if _, err := Encode(res); err != nil {
			t.Errorf("%v: %v", d, err)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	cfg := tinyCfg(core.DesignSRL, 21)
	res := simulate(t, cfg, trace.MM)
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range openBoth(t) {
		t.Run(name, func(t *testing.T) {
			key := keyFor(cfg, trace.MM)
			e, err := s.Put(key, res)
			if err != nil {
				t.Fatal(err)
			}
			if !e.Hydratable || e.Hash == "" {
				t.Fatalf("SRL result should be hydratable: %+v", e)
			}
			back, ok, err := s.Get(key)
			if err != nil || !ok {
				t.Fatalf("Get: ok=%v err=%v", ok, err)
			}
			got, err := json.Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatal("rehydrated result is not byte-identical to the original")
			}
			st := s.Stats()
			if st.Hits != 1 || st.Puts != 1 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

// TestStampFlipMisses pins the code-version guarantee: the same
// fingerprint under a different stamp must miss, so a rebuilt binary never
// serves results persisted by different code.
func TestStampFlipMisses(t *testing.T) {
	cfg := tinyCfg(core.DesignBaseline, 31)
	res := simulate(t, cfg, trace.WS)
	for name, s := range openBoth(t) {
		t.Run(name, func(t *testing.T) {
			key := keyFor(cfg, trace.WS)
			if _, err := s.Put(key, res); err != nil {
				t.Fatal(err)
			}
			flipped := key
			flipped.Stamp = key.Stamp + "-other-build"
			if _, ok, err := s.Get(flipped); err != nil || ok {
				t.Fatalf("flipped stamp must miss: ok=%v err=%v", ok, err)
			}
			if _, ok, err := s.Get(key); err != nil || !ok {
				t.Fatalf("original stamp must still hit: ok=%v err=%v", ok, err)
			}
		})
	}
}

// TestObservedResultArtifactsOnly: a result carrying live observability
// state (timeline ring, trace writer) does not round-trip through its
// summary JSON form; the store must record it artifacts-only — blobs
// spilled, never served by Get.
func TestObservedResultArtifactsOnly(t *testing.T) {
	cfg := tinyCfg(core.DesignSRL, 41)
	cfg.Obs = obs.Config{SampleEvery: 256, TraceEvents: true}
	res := simulate(t, cfg, trace.PROD)
	if res.Timeline == nil || res.Trace == nil {
		t.Fatal("observed run produced no artifacts; test fixture is stale")
	}
	if _, err := Encode(res); !IsNotPersistable(err) {
		t.Fatalf("observed result must fail the round-trip gate, got %v", err)
	}
	for name, s := range openBoth(t) {
		t.Run(name, func(t *testing.T) {
			key := keyFor(cfg, trace.PROD)
			e, err := s.Put(key, res)
			if err != nil {
				t.Fatal(err)
			}
			if e.Hydratable || e.Hash != "" {
				t.Fatalf("observed entry must be artifacts-only: %+v", e)
			}
			names := make([]string, 0, len(e.Blobs))
			for _, b := range e.Blobs {
				names = append(names, b.Name)
			}
			if got := strings.Join(names, ","); got != "timeline.csv,trace.chrome.json" {
				t.Fatalf("blobs = %q", got)
			}
			if _, ok, err := s.Get(key); err != nil || ok {
				t.Fatalf("artifacts-only entry must not hydrate: ok=%v err=%v", ok, err)
			}
			if st := s.Stats(); st.BlobBytes == 0 || st.Hydratable != 0 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

// TestDiskCorruptionQuarantined: flipping bytes in a content file must be
// detected by the read-side hash check, the file moved to quarantine/, and
// the Get reported as a clean miss — corruption is repaired by
// recomputation, never served.
func TestDiskCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCfg(core.DesignHierarchical, 51)
	res := simulate(t, cfg, trace.WEB)
	key := keyFor(cfg, trace.WEB)
	e, err := s.Put(key, res)
	if err != nil {
		t.Fatal(err)
	}
	cpath := filepath.Join(dir, "sha256", e.Hash[:2], e.Hash+".json")
	doc, err := os.ReadFile(cpath)
	if err != nil {
		t.Fatal(err)
	}
	doc[len(doc)/2] ^= 0xff
	if err := os.WriteFile(cpath, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("corrupt entry served: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(cpath); !os.IsNotExist(err) {
		t.Fatal("corrupt content file still in place")
	}
	quar, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(quar) != 1 {
		t.Fatalf("quarantine holds %d files (err=%v), want 1", len(quar), err)
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats after quarantine: %+v", st)
	}
	// The point transparently recomputes: a fresh Put re-creates content
	// and index, and the next Get hits.
	if _, err := s.Put(key, res); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(key); !ok {
		t.Fatal("re-put after quarantine did not hit")
	}
}

// TestDiskTruncatedEntryQuarantined covers the truncation flavour of
// corruption separately from bit flips.
func TestDiskTruncatedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCfg(core.DesignBaseline, 61)
	res := simulate(t, cfg, trace.MM)
	key := keyFor(cfg, trace.MM)
	e, err := s.Put(key, res)
	if err != nil {
		t.Fatal(err)
	}
	cpath := filepath.Join(dir, "sha256", e.Hash[:2], e.Hash+".json")
	if err := os.Truncate(cpath, e.Size/2); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("truncated entry served: ok=%v err=%v", ok, err)
	}
	if s.Stats().Quarantined != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

// TestDiskCrashSimTempSweep: a writer that dies between CreateTemp and
// rename leaves a .tmp- file; OpenDisk must sweep it, and the store must
// behave as if the interrupted write never happened.
func TestDiskCrashSimTempSweep(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCfg(core.DesignSRL, 71)
	res := simulate(t, cfg, trace.WS)
	key := keyFor(cfg, trace.WS)
	if _, err := s.Put(key, res); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: half a document under a temp name in
	// both the content and index trees.
	for _, p := range []string{
		filepath.Join(dir, "sha256", "ab", ".tmp-1234"),
		filepath.Join(dir, "index", "deadbeef0000", ".tmp-5678"),
	} {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(`{"trunc`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reopened, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmps []string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-") {
			tmps = append(tmps, path)
		}
		return nil
	})
	if len(tmps) != 0 {
		t.Fatalf("temp files survived reopen: %v", tmps)
	}
	// The committed entry is untouched by the sweep.
	if _, ok, err := reopened.Get(key); err != nil || !ok {
		t.Fatalf("committed entry lost after crash sweep: ok=%v err=%v", ok, err)
	}
}

// TestDiskPersistsAcrossReopen is the store-level warm-restart check: a
// second DiskStore over the same root hydrates what the first one wrote.
func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCfg(core.DesignFilteredSTQ, 81)
	res := simulate(t, cfg, trace.PROD)
	key := keyFor(cfg, trace.PROD)
	if _, err := s1.Put(key, res); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	back, ok, err := s2.Get(key)
	if err != nil || !ok {
		t.Fatalf("reopened store missed: ok=%v err=%v", ok, err)
	}
	want, _ := json.Marshal(res)
	got, _ := json.Marshal(back)
	if string(got) != string(want) {
		t.Fatal("reopened store returned different bytes")
	}
}

func TestDeleteAndList(t *testing.T) {
	for name, s := range openBoth(t) {
		t.Run(name, func(t *testing.T) {
			var keys []Key
			for i := 0; i < 3; i++ {
				cfg := tinyCfg(core.DesignBaseline, uint64(90+i))
				res := simulate(t, cfg, trace.WEB)
				key := keyFor(cfg, trace.WEB)
				keys = append(keys, key)
				if _, err := s.Put(key, res); err != nil {
					t.Fatal(err)
				}
			}
			if es, _ := s.List(); len(es) != 3 {
				t.Fatalf("list: %d entries, want 3", len(es))
			}
			if err := s.Delete(keys[1]); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(keys[1]); err != nil {
				t.Fatalf("double delete must be a no-op: %v", err)
			}
			es, err := s.List()
			if err != nil || len(es) != 2 {
				t.Fatalf("list after delete: %d entries err=%v", len(es), err)
			}
			for i := 1; i < len(es); i++ {
				if es[i-1].Stamp > es[i].Stamp ||
					(es[i-1].Stamp == es[i].Stamp && es[i-1].Fingerprint >= es[i].Fingerprint) {
					t.Fatalf("list not sorted: %v", es)
				}
			}
			if _, ok, _ := s.Get(keys[1]); ok {
				t.Fatal("deleted key still hits")
			}
		})
	}
}

// TestConcurrentGetPut exercises both implementations under the race
// detector: concurrent writers and readers over a small keyspace.
func TestConcurrentGetPut(t *testing.T) {
	const points = 4
	cfgs := make([]core.Config, points)
	results := make([]*core.Results, points)
	keys := make([]Key, points)
	for i := range cfgs {
		cfgs[i] = tinyCfg(core.DesignSRL, uint64(100+i))
		results[i] = simulate(t, cfgs[i], trace.MM)
		keys[i] = keyFor(cfgs[i], trace.MM)
	}
	for name, s := range openBoth(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						k := (g + i) % points
						if g%2 == 0 {
							if _, err := s.Put(keys[k], results[k]); err != nil {
								t.Error(err)
								return
							}
						} else {
							if _, _, err := s.Get(keys[k]); err != nil {
								t.Error(err)
								return
							}
						}
						if g == 0 && i == 10 {
							s.Stats()
							if _, err := s.List(); err != nil {
								t.Error(err)
							}
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestCodeStampStable: the stamp is per-process stable (two calls agree)
// and non-empty — the key property the warm-restart path relies on, since
// the smoke test restarts the same binary.
func TestCodeStampStable(t *testing.T) {
	a, b := CodeStamp(), CodeStamp()
	if a == "" || a != b {
		t.Fatalf("CodeStamp unstable: %q %q", a, b)
	}
}

func TestKeyFingerprintHex(t *testing.T) {
	k := Key{Fingerprint: 0xabc, Stamp: "s"}
	if got := k.FingerprintHex(); got != "0000000000000abc" {
		t.Fatalf("FingerprintHex = %q", got)
	}
	if len(fmt.Sprintf("%016x", ^uint64(0))) != 16 {
		t.Fatal("fingerprint hex width")
	}
}
