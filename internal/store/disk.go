package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"srlproc/internal/core"
)

// DiskStore is the durable ResultStore. Layout under the root:
//
//	index/<stamp-digest>/<fingerprint>.json   one Entry per key
//	sha256/<hh>/<hash>.json                   content-addressed Results documents
//	blobs/sha256/<hh>/<hash>-<name>           spilled observability artifacts
//	quarantine/                               files that failed hash or decode checks
//
// Every file lands via write-to-temp + fsync + atomic rename, so a crash
// mid-write leaves at most a stale .tmp- file (swept on Open), never a
// half-written document. Reads re-hash the content file and re-verify the
// decode; any mismatch moves the file to quarantine/ and reports a miss, so
// corruption is repaired by recomputation rather than surfaced as data.
type DiskStore struct {
	root string

	mu      sync.Mutex
	hits    uint64
	misses  uint64
	puts    uint64
	quar    uint64
	deletes uint64
}

// OpenDisk opens (creating if needed) a disk store rooted at dir. Stale
// temporary files left by a crashed writer are removed.
func OpenDisk(dir string) (*DiskStore, error) {
	for _, sub := range []string{"index", "sha256", filepath.Join("blobs", "sha256"), "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	s := &DiskStore{root: dir}
	if err := s.sweepTemp(); err != nil {
		return nil, err
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *DiskStore) Root() string { return s.root }

// sweepTemp removes .tmp- files abandoned by a writer that crashed between
// CreateTemp and rename.
func (s *DiskStore) sweepTemp() error {
	return filepath.WalkDir(s.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-") {
			if rmErr := os.Remove(path); rmErr != nil {
				return fmt.Errorf("store: sweep %s: %w", path, rmErr)
			}
		}
		return nil
	})
}

// indexPath returns the Entry file for key. The stamp is folded in as a
// short digest directory (stamps hold VCS revisions and +dirty markers that
// do not belong in filenames verbatim).
func (s *DiskStore) indexPath(key Key) string {
	sum := sha256.Sum256([]byte(key.Stamp))
	return filepath.Join(s.root, "index", hex.EncodeToString(sum[:])[:12], key.FingerprintHex()+".json")
}

func (s *DiskStore) contentPath(hash string) string {
	return filepath.Join(s.root, "sha256", hash[:2], hash+".json")
}

func (s *DiskStore) blobPath(ref BlobRef) string {
	return filepath.Join(s.root, "blobs", "sha256", ref.Hash[:2], ref.Hash+"-"+ref.Name)
}

// writeFileAtomic writes data to path via a sibling temp file, fsync and
// rename, creating parent directories as needed.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// quarantine moves a failed file aside (never deleting evidence) and counts
// it. Renaming into quarantine/ keeps this atomic too.
func (s *DiskStore) quarantine(path, reason string) {
	dst := filepath.Join(s.root, "quarantine",
		fmt.Sprintf("%d-%s", time.Now().UnixNano(), filepath.Base(path)))
	if err := os.Rename(path, dst); err != nil {
		// Fall back to removal so the bad file cannot be served again.
		os.Remove(path)
	}
	s.mu.Lock()
	s.quar++
	s.mu.Unlock()
	_ = reason
}

func (s *DiskStore) countMiss() { s.mu.Lock(); s.misses++; s.mu.Unlock() }

// Get implements ResultStore. The content file is re-hashed and re-decoded
// on every read; a file that fails either check is quarantined, its index
// entry removed, and the call reports a clean miss.
func (s *DiskStore) Get(key Key) (*core.Results, bool, error) {
	ipath := s.indexPath(key)
	idoc, err := os.ReadFile(ipath)
	if err != nil {
		if os.IsNotExist(err) {
			s.countMiss()
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: read index: %w", err)
	}
	var e Entry
	if err := json.Unmarshal(idoc, &e); err != nil || e.Stamp != key.Stamp {
		s.quarantine(ipath, "index decode/stamp mismatch")
		s.countMiss()
		return nil, false, nil
	}
	if !e.Hydratable || e.Hash == "" {
		s.countMiss()
		return nil, false, nil
	}
	cpath := s.contentPath(e.Hash)
	doc, err := os.ReadFile(cpath)
	if err != nil {
		if os.IsNotExist(err) {
			// Index points at missing content: drop the dangling entry.
			os.Remove(ipath)
			s.countMiss()
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: read content: %w", err)
	}
	if hashHex(doc) != e.Hash {
		s.quarantine(cpath, "content hash mismatch")
		os.Remove(ipath)
		s.countMiss()
		return nil, false, nil
	}
	res, err := Decode(doc)
	if err != nil {
		s.quarantine(cpath, "content decode failure")
		os.Remove(ipath)
		s.countMiss()
		return nil, false, nil
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return res, true, nil
}

// Put implements ResultStore. Documents are deduplicated by content hash;
// results that fail the round-trip gate are recorded artifacts-only.
func (s *DiskStore) Put(key Key, res *core.Results) (Entry, error) {
	doc, err := Encode(res)
	if err != nil && !IsNotPersistable(err) {
		return Entry{}, err
	}
	blobs, err := renderBlobs(res)
	if err != nil {
		return Entry{}, err
	}
	e := Entry{
		Fingerprint: key.FingerprintHex(),
		Stamp:       key.Stamp,
		Suite:       res.Suite.String(),
		Design:      res.Design.String(),
		Hydratable:  doc != nil,
		CreatedUnix: time.Now().Unix(),
	}
	if doc != nil {
		e.Hash = hashHex(doc)
		e.Size = int64(len(doc))
		cpath := s.contentPath(e.Hash)
		if _, statErr := os.Stat(cpath); os.IsNotExist(statErr) {
			if err := writeFileAtomic(cpath, doc); err != nil {
				return Entry{}, fmt.Errorf("store: write content: %w", err)
			}
		}
	}
	for name, data := range blobs {
		ref := BlobRef{Name: name, Hash: hashHex(data), Size: int64(len(data))}
		bpath := s.blobPath(ref)
		if _, statErr := os.Stat(bpath); os.IsNotExist(statErr) {
			if err := writeFileAtomic(bpath, data); err != nil {
				return Entry{}, fmt.Errorf("store: write blob %s: %w", name, err)
			}
		}
		e.Blobs = append(e.Blobs, ref)
	}
	sortBlobs(e.Blobs)
	idoc, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return Entry{}, fmt.Errorf("store: marshal index entry: %w", err)
	}
	if err := writeFileAtomic(s.indexPath(key), append(idoc, '\n')); err != nil {
		return Entry{}, fmt.Errorf("store: write index: %w", err)
	}
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	return e, nil
}

// Delete implements ResultStore. Content files are shared between identical
// documents (and between stamps), so only the key's index entry is removed.
func (s *DiskStore) Delete(key Key) error {
	err := os.Remove(s.indexPath(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: delete: %w", err)
	}
	s.mu.Lock()
	s.deletes++
	s.mu.Unlock()
	return nil
}

// List implements ResultStore; entries sort by (stamp, fingerprint).
// Unreadable index files are skipped rather than failing the listing.
func (s *DiskStore) List() ([]Entry, error) {
	var out []Entry
	err := filepath.WalkDir(filepath.Join(s.root, "index"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".json") {
			return err
		}
		doc, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil
		}
		var e Entry
		if json.Unmarshal(doc, &e) == nil {
			out = append(out, e)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	sortEntries(out)
	return out, nil
}

// Stats implements ResultStore. Sizes come from the index entries, so a
// listing never re-reads content files.
func (s *DiskStore) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Hits:        s.hits,
		Misses:      s.misses,
		Puts:        s.puts,
		Quarantined: s.quar,
		Deletes:     s.deletes,
	}
	s.mu.Unlock()
	entries, err := s.List()
	if err != nil {
		return st
	}
	st.Entries = len(entries)
	seenDoc := make(map[string]bool)
	seenBlob := make(map[string]bool)
	for _, e := range entries {
		if e.Hydratable {
			st.Hydratable++
		}
		if e.Hash != "" && !seenDoc[e.Hash] {
			seenDoc[e.Hash] = true
			st.ResultBytes += e.Size
		}
		for _, b := range e.Blobs {
			if !seenBlob[b.Hash+b.Name] {
				seenBlob[b.Hash+b.Name] = true
				st.BlobBytes += b.Size
			}
		}
	}
	return st
}

// Close implements ResultStore; the disk tier holds no open handles between
// calls, so it is a no-op.
func (s *DiskStore) Close() error { return nil }
