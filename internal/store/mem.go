package store

import (
	"errors"
	"sort"
	"sync"
	"time"

	"srlproc/internal/core"
)

// MemStore is the in-memory ResultStore: the exact Get/Put/List semantics
// of the durable tier — including the round-trip gate and artifacts-only
// entries — without the filesystem. It backs tests, short-lived tools and
// deployments that want two-tier semantics with no persistence.
type MemStore struct {
	mu      sync.Mutex
	entries map[Key]Entry
	docs    map[string][]byte // content hash → canonical Results document
	blobs   map[string][]byte // content hash + name → artifact bytes
	hits    uint64
	misses  uint64
	puts    uint64
	deletes uint64
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore {
	return &MemStore{
		entries: make(map[Key]Entry),
		docs:    make(map[string][]byte),
		blobs:   make(map[string][]byte),
	}
}

// Get implements ResultStore.
func (s *MemStore) Get(key Key) (*core.Results, bool, error) {
	s.mu.Lock()
	e, ok := s.entries[key]
	var doc []byte
	if ok && e.Hydratable {
		doc = s.docs[e.Hash]
	}
	if doc == nil {
		s.misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	s.hits++
	s.mu.Unlock()
	res, err := Decode(doc)
	if err != nil {
		// Cannot happen for documents Encode accepted; treat like the
		// disk tier's quarantine: drop the entry and report a miss.
		s.mu.Lock()
		delete(s.entries, key)
		s.hits--
		s.misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	return res, true, nil
}

// Put implements ResultStore.
func (s *MemStore) Put(key Key, res *core.Results) (Entry, error) {
	doc, err := Encode(res)
	if err != nil && !IsNotPersistable(err) {
		return Entry{}, err
	}
	blobs, err := renderBlobs(res)
	if err != nil {
		return Entry{}, err
	}
	e := Entry{
		Fingerprint: key.FingerprintHex(),
		Stamp:       key.Stamp,
		Suite:       res.Suite.String(),
		Design:      res.Design.String(),
		Hydratable:  doc != nil,
		CreatedUnix: time.Now().Unix(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if doc != nil {
		e.Hash = hashHex(doc)
		e.Size = int64(len(doc))
		s.docs[e.Hash] = doc
	}
	for name, data := range blobs {
		h := hashHex(data)
		s.blobs[h+"-"+name] = data
		e.Blobs = append(e.Blobs, BlobRef{Name: name, Hash: h, Size: int64(len(data))})
	}
	sortBlobs(e.Blobs)
	s.entries[key] = e
	s.puts++
	return e, nil
}

// Delete implements ResultStore. Content is shared between identical
// documents, so only the key's entry is removed.
func (s *MemStore) Delete(key Key) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		delete(s.entries, key)
		s.deletes++
	}
	return nil
}

// List implements ResultStore; entries sort by (stamp, fingerprint).
func (s *MemStore) List() ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sortEntries(out)
	return out, nil
}

// Stats implements ResultStore.
func (s *MemStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Entries: len(s.entries),
		Hits:    s.hits,
		Misses:  s.misses,
		Puts:    s.puts,
		Deletes: s.deletes,
	}
	for _, e := range s.entries {
		if e.Hydratable {
			st.Hydratable++
		}
	}
	for _, doc := range s.docs {
		st.ResultBytes += int64(len(doc))
	}
	for _, b := range s.blobs {
		st.BlobBytes += int64(len(b))
	}
	return st
}

// Close implements ResultStore; it is a no-op for the in-memory tier.
func (s *MemStore) Close() error { return nil }

// IsNotPersistable reports whether err is the round-trip rejection
// (ErrNotPersistable, possibly wrapped).
func IsNotPersistable(err error) bool { return errors.Is(err, ErrNotPersistable) }

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Stamp != es[j].Stamp {
			return es[i].Stamp < es[j].Stamp
		}
		return es[i].Fingerprint < es[j].Fingerprint
	})
}

func sortBlobs(bs []BlobRef) {
	sort.Slice(bs, func(i, j int) bool { return bs[i].Name < bs[j].Name })
}
