// Package store is the persistent tier of the result pipeline: a
// ResultStore holds the canonical Results JSON document of every completed
// simulation point, keyed by the point's core.PointFingerprint plus a
// code-version stamp, so a restarted process (or another node of a sweep
// cluster) replays an identical sweep entirely from durable state instead
// of recomputing it.
//
// Two implementations exist. MemStore keeps documents in memory — it gives
// tests and short-lived tools the exact semantics of the durable tier
// without touching the filesystem. DiskStore writes content-addressed
// files (sha256/<hh>/<hash>.json) plus a small per-key index, with atomic
// rename-on-write, hash re-verification on every read, quarantine of
// corrupted files, and large observability artifacts (timelines, Perfetto
// traces, divergence dumps) spilled to a sibling blob directory.
//
// The store only persists documents that provably round-trip: Encode
// re-hydrates its own output and requires byte equality before anything is
// written. Results carrying process-lifetime artifacts (a live Timeline or
// TraceWriter ring) do not round-trip through their summary JSON form;
// such entries are recorded artifacts-only — their exports land in the
// blob directory, but Get never serves them as a cached result.
//
// internal/sweep.Cache layers its in-memory LRU as tier 1 over a
// ResultStore: misses fall through to the store before simulating, and
// completions write through asynchronously. See Cache.AttachStore.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"srlproc/internal/core"
)

// Key identifies one persisted result: the simulation point's stable
// fingerprint plus the code-version stamp of the binary that produced it.
// The stamp is part of the key, not a filter: a rebuilt binary computes
// under a new stamp and can never be served another build's results, which
// is what makes persisting across restarts sound (the determinism tests
// pin byte-stable output only per build).
type Key struct {
	Fingerprint uint64
	Stamp       string
}

// FingerprintHex renders the fingerprint in the fixed-width hex form used
// by index filenames, the X-Srlproc-Point HTTP header and Entry documents.
func (k Key) FingerprintHex() string { return fmt.Sprintf("%016x", k.Fingerprint) }

// BlobRef names one spilled artifact of an entry.
type BlobRef struct {
	// Name is the artifact's role, e.g. "timeline.csv",
	// "trace.chrome.json" or "divergences.json".
	Name string `json:"name"`
	// Hash is the hex SHA-256 of the blob's content (its address).
	Hash string `json:"hash"`
	Size int64  `json:"size"`
}

// Entry is the index record of one persisted key.
type Entry struct {
	Fingerprint string `json:"fingerprint"` // Key.FingerprintHex
	Stamp       string `json:"stamp"`

	// Suite and Design label the point for humans browsing the store.
	Suite  string `json:"suite,omitempty"`
	Design string `json:"design,omitempty"`

	// Hash and Size address the canonical Results document; both are zero
	// for artifacts-only entries.
	Hash string `json:"hash,omitempty"`
	Size int64  `json:"size,omitempty"`

	// Hydratable reports whether Get can serve this entry as a cached
	// result. False means the run's document did not round-trip (it
	// carried live observability artifacts); its exports are in Blobs.
	Hydratable bool `json:"hydratable"`

	Blobs []BlobRef `json:"blobs,omitempty"`

	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// Stats is a point-in-time snapshot of a store's contents and counters.
type Stats struct {
	Entries     int   `json:"entries"`
	Hydratable  int   `json:"hydratable"`
	ResultBytes int64 `json:"result_bytes"`
	BlobBytes   int64 `json:"blob_bytes"`

	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Quarantined uint64 `json:"quarantined"`
	Deletes     uint64 `json:"deletes"`
}

// ResultStore is the persistent result tier.
//
// Get returns the rehydrated result for key, or (nil, false, nil) when the
// store holds nothing servable for it — absent, artifacts-only, written
// under a different stamp, or quarantined as corrupt. Corruption is never
// surfaced to the caller as data or as an error: the offending files are
// quarantined and the point simply recomputes.
//
// Put persists one completed result. Results whose canonical document does
// not round-trip byte-identically are recorded artifacts-only (their
// exports spill to the blob tier); that is not an error.
//
// Implementations are safe for concurrent use.
type ResultStore interface {
	Get(key Key) (*core.Results, bool, error)
	Put(key Key, res *core.Results) (Entry, error)
	Delete(key Key) error
	List() ([]Entry, error)
	Stats() Stats
	Close() error
}

// ErrNotPersistable reports that a result's canonical JSON document does
// not survive an unmarshal/re-marshal round-trip, so persisting it could
// not honour the byte-identical warm-restart guarantee. Results carrying
// live observability artifacts (Timeline, TraceWriter, Divergences) are
// the expected case.
var ErrNotPersistable = errors.New("store: result document does not round-trip")

// Encode renders res as its canonical JSON document and proves the
// document rehydrates byte-identically: unmarshal into a fresh Results,
// re-marshal, compare. Anything Encode accepts is therefore safe to serve
// from the store in place of a fresh simulation. Returns ErrNotPersistable
// (wrapped) when the round-trip fails.
func Encode(res *core.Results) ([]byte, error) {
	doc, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("store: marshal result: %w", err)
	}
	back, err := Decode(doc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotPersistable, err)
	}
	redoc, err := json.Marshal(back)
	if err != nil {
		return nil, fmt.Errorf("%w: re-marshal: %v", ErrNotPersistable, err)
	}
	if !bytes.Equal(doc, redoc) {
		return nil, ErrNotPersistable
	}
	return doc, nil
}

// Decode rehydrates a canonical Results document produced by Encode.
func Decode(doc []byte) (*core.Results, error) {
	res := new(core.Results)
	if err := json.Unmarshal(doc, res); err != nil {
		return nil, err
	}
	return res, nil
}

var (
	codeStampOnce sync.Once
	codeStamp     string
)

// CodeStamp returns this binary's code-version stamp: the main module
// version plus, when the binary was built from a VCS checkout, the
// revision (and a +dirty marker for modified trees). Folding the stamp
// into every store Key means a rebuilt binary starts a fresh keyspace and
// can never serve results persisted by different code — simulator output
// is only guaranteed byte-stable within one build.
func CodeStamp() string {
	codeStampOnce.Do(func() {
		codeStamp = readCodeStamp()
	})
	return codeStamp
}

func readCodeStamp() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	stamp := bi.Main.Version
	if stamp == "" {
		stamp = "(devel)"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		stamp += "@" + rev + dirty
	}
	return stamp
}
