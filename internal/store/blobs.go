package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"srlproc/internal/core"
)

// renderBlobs renders the artifacts a result carries into named byte
// blobs: the cycle-window timeline as plotting-ready CSV, the event trace
// in Chrome trace format (opens in chrome://tracing and Perfetto), and any
// oracle divergences as JSON. A plain result renders nothing.
func renderBlobs(res *core.Results) (map[string][]byte, error) {
	out := make(map[string][]byte)
	if res.Timeline != nil {
		var buf bytes.Buffer
		if err := res.Timeline.WriteCSV(&buf); err != nil {
			return nil, fmt.Errorf("store: render timeline blob: %w", err)
		}
		out["timeline.csv"] = buf.Bytes()
	}
	if res.Trace != nil {
		var buf bytes.Buffer
		if err := res.Trace.WriteChromeTrace(&buf, res.Timeline); err != nil {
			return nil, fmt.Errorf("store: render trace blob: %w", err)
		}
		out["trace.chrome.json"] = buf.Bytes()
	}
	if len(res.Divergences) > 0 {
		doc, err := json.Marshal(res.Divergences)
		if err != nil {
			return nil, fmt.Errorf("store: render divergence blob: %w", err)
		}
		out["divergences.json"] = doc
	}
	return out, nil
}

// hashHex returns the hex SHA-256 content address of data.
func hashHex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
