// Package multicore runs several latency tolerant cores in cycle lockstep
// with real coherence traffic between them, exercising the paper's
// multiprocessor memory ordering machinery (Section 3) with genuine
// cross-processor stores instead of the single-core simulator's synthetic
// snoop injection.
//
// Each core runs its own copy of a workload suite in a private address
// space, except for a shared hot segment that all cores read and write
// (configurable sharing fraction). Every globally visible store a core
// performs — a committed store queue drain or an SRL redo update — is
// broadcast on a model bus and delivered to every other core's coherence
// port after a fixed bus latency. A snoop that hits a core's (secondary)
// load buffer is a consistency violation and restarts that core from the
// hit load's checkpoint, exactly the recovery path the paper describes.
package multicore

import (
	"context"
	"fmt"

	"srlproc/internal/core"
	"srlproc/internal/stats"
	"srlproc/internal/trace"
)

// Config parameterises a multicore system.
type Config struct {
	Cores int
	// Core is the per-core machine configuration (the store design under
	// test). Seed and the synthetic snoop injector are overridden per core.
	Core core.Config
	// Suite selects the workload each core runs (its own copy, private
	// address space plus the shared segment).
	Suite trace.Suite
	// SharedHotFrac is the fraction of hot-region accesses that target the
	// globally shared segment (0 = no sharing, no coherence traffic).
	SharedHotFrac float64
	// BusLatency is the snoop delivery delay in cycles.
	BusLatency uint64
}

// DefaultConfig returns a 4-core system with moderate sharing.
func DefaultConfig(d core.StoreDesign, suite trace.Suite) Config {
	cc := core.DefaultConfig(d)
	cc.WarmupUops = 20_000
	cc.RunUops = 80_000
	return Config{
		Cores:         4,
		Core:          cc,
		Suite:         suite,
		SharedHotFrac: 0.10,
		BusLatency:    32,
	}
}

// Results aggregates a multicore run.
type Results struct {
	PerCore []*core.Results
	// SnoopsDelivered counts cross-core snoop deliveries (each store is
	// delivered to every other core).
	SnoopsDelivered uint64
	// SnoopsDropped counts deliveries elided because the target core had
	// already finished its measured region. A Done core's pipeline is
	// drained and its load buffer empty, so the snoop could not change
	// anything — but the count makes the elision visible instead of
	// silently folding it into SnoopsDelivered.
	SnoopsDropped uint64
	// Cycles is the lockstep cycle count until the last core finished.
	Cycles uint64
}

// TotalSnoopViolations sums consistency violations across cores.
func (r *Results) TotalSnoopViolations() uint64 {
	var n uint64
	for _, c := range r.PerCore {
		n += c.SnoopViolations
	}
	return n
}

// AggregateIPC returns total committed micro-ops per lockstep cycle.
func (r *Results) AggregateIPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	var uops uint64
	for _, c := range r.PerCore {
		uops += c.Uops
	}
	return float64(uops) / float64(r.Cycles)
}

// String renders a summary table.
func (r *Results) String() string {
	t := stats.NewTable("Multicore run", "Core", "IPC", "SnoopViol", "Restarts", "MemDepViol")
	for i, c := range r.PerCore {
		t.AddRowf(fmt.Sprintf("%d", i), c.IPC(), fmt.Sprintf("%d", c.SnoopViolations),
			fmt.Sprintf("%d", c.Restarts), fmt.Sprintf("%d", c.MemDepViolations))
	}
	return t.String() +
		fmt.Sprintf("aggregate IPC %.2f, snoops delivered %d (dropped %d), consistency violations %d\n",
			r.AggregateIPC(), r.SnoopsDelivered, r.SnoopsDropped, r.TotalSnoopViolations())
}

// pendingSnoop is an in-flight bus transaction.
type pendingSnoop struct {
	deliverAt uint64
	from      int
	addr      uint64
}

// System is a lockstep multicore simulation.
type System struct {
	cfg     Config
	cores   []*core.Core
	bus     []pendingSnoop
	cycle   uint64
	sent    uint64
	dropped uint64
}

// New builds the system.
func New(cfg Config) (*System, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("multicore: need at least one core")
	}
	s := &System{cfg: cfg}
	for i := 0; i < cfg.Cores; i++ {
		prof := trace.ProfileFor(cfg.Suite)
		prof.CoreID = i
		prof.SharedHotFrac = cfg.SharedHotFrac
		prof.SnoopPer1KCycles = 0 // real traffic replaces the synthetic injector
		// Mirror the memory-ordering workload knobs, exactly as core.New
		// does for single-core runs: zero knobs leave the profile (and the
		// generator's RNG stream) untouched.
		prof.FencePer1K = cfg.Core.FencePer1K
		prof.AcquireFrac = cfg.Core.AcquireFrac
		prof.ReleaseFrac = cfg.Core.ReleaseFrac

		cc := cfg.Core
		cc.Seed = cfg.Core.Seed + uint64(i)*7919
		cc.SnoopsEnabled = false
		src := trace.NewGenerator(prof, cc.Seed)
		c, err := core.NewFromSource(cc, src, prof)
		if err != nil {
			return nil, err
		}
		id := i
		c.SetSnoopSink(func(addr uint64) { s.broadcast(id, addr) })
		s.cores = append(s.cores, c)
	}
	return s, nil
}

// broadcast queues a store's line address for delivery to every other core.
// A store performed in lockstep cycle N is snooped no earlier than cycle
// N+1 even at BusLatency 0 — delivery runs after every core has stepped, so
// a same-cycle snoop is impossible by construction. Normalising the latency
// here pins that edge explicitly instead of leaving BusLatency 0 and 1 to
// coincide by arithmetic accident (see TestBusDeliveryTiming).
func (s *System) broadcast(from int, addr uint64) {
	if s.cfg.Cores == 1 {
		return
	}
	lat := s.cfg.BusLatency
	if lat == 0 {
		lat = 1
	}
	s.bus = append(s.bus, pendingSnoop{deliverAt: s.cycle + lat, from: from, addr: addr})
}

// deliver dispatches due bus transactions.
func (s *System) deliver() {
	out := s.bus[:0]
	for _, p := range s.bus {
		if p.deliverAt > s.cycle {
			out = append(out, p)
			continue
		}
		for i, c := range s.cores {
			if i == p.from {
				continue
			}
			if c.Done() {
				s.dropped++
				continue
			}
			c.ExternalSnoop(p.addr)
			s.sent++
		}
	}
	s.bus = out
}

// ctxPollMask sets how often RunContext polls its context: every
// ctxPollMask+1 lockstep cycles, mirroring the single-core RunContext
// cadence so cancellation latency stays in the microseconds while the
// check stays off the per-cycle hot path.
const ctxPollMask = 0x1fff

// Run advances all cores in lockstep until each has completed its measured
// region, then returns the aggregated results.
func (s *System) Run() (*Results, error) {
	return s.RunContext(context.Background())
}

// RunContext simulates like Run but with cooperative cancellation: the
// context is polled every few thousand lockstep cycles and, once it is
// done, the run stops and ctx.Err() is returned (wrapped). The system is
// left mid-flight and must not be reused after a cancelled run.
func (s *System) RunContext(ctx context.Context) (*Results, error) {
	guard := uint64(0)
	limit := 400*(s.cfg.Core.WarmupUops+s.cfg.Core.RunUops) + 10_000_000
	for {
		if guard&ctxPollMask == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("multicore: run aborted at cycle %d: %w", s.cycle, ctx.Err())
		}
		done := true
		for _, c := range s.cores {
			if !c.Done() {
				done = false
				c.StepCycle()
			}
		}
		if done {
			break
		}
		s.cycle++
		s.deliver()
		guard++
		if guard > limit {
			return nil, fmt.Errorf("multicore: no forward progress at cycle %d", s.cycle)
		}
	}
	res := &Results{Cycles: s.cycle, SnoopsDelivered: s.sent, SnoopsDropped: s.dropped}
	for _, c := range s.cores {
		res.PerCore = append(res.PerCore, c.Finalize())
	}
	return res, nil
}
