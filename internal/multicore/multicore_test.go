package multicore

import (
	"testing"

	"srlproc/internal/core"
	"srlproc/internal/trace"
)

func smallCfg(d core.StoreDesign, cores int, shared float64) Config {
	cfg := DefaultConfig(d, trace.SERVER)
	cfg.Cores = cores
	cfg.SharedHotFrac = shared
	cfg.Core.WarmupUops = 3_000
	cfg.Core.RunUops = 15_000
	return cfg
}

func TestMulticoreRuns(t *testing.T) {
	s, err := New(smallCfg(core.DesignSRL, 2, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 2 {
		t.Fatalf("%d per-core results", len(res.PerCore))
	}
	for i, c := range res.PerCore {
		if c.Uops < 15_000 {
			t.Fatalf("core %d committed %d", i, c.Uops)
		}
	}
	if res.AggregateIPC() <= 0 {
		t.Fatal("no aggregate throughput")
	}
}

func TestSharingProducesCoherenceTraffic(t *testing.T) {
	s, err := New(smallCfg(core.DesignSRL, 2, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SnoopsDelivered == 0 {
		t.Fatal("no snoops delivered despite sharing")
	}
	if res.TotalSnoopViolations() == 0 {
		t.Log("no consistency violations this run (loads never raced a remote store)")
	}
}

func TestMoreSharingMoreViolations(t *testing.T) {
	run := func(shared float64) *Results {
		s, err := New(smallCfg(core.DesignSRL, 2, shared))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	none := run(0)
	heavy := run(0.4)
	if none.TotalSnoopViolations() != 0 {
		t.Fatalf("violations without sharing: %d", none.TotalSnoopViolations())
	}
	if heavy.SnoopsDelivered <= none.SnoopsDelivered {
		t.Fatalf("sharing produced no extra traffic: %d vs %d",
			heavy.SnoopsDelivered, none.SnoopsDelivered)
	}
}

func TestMulticoreConventionalDesign(t *testing.T) {
	// The hierarchical design's fully associative load queue handles the
	// same coherence traffic.
	s, err := New(smallCfg(core.DesignHierarchical, 2, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMulticoreDeterminism(t *testing.T) {
	run := func() *Results {
		s, err := New(smallCfg(core.DesignSRL, 2, 0.15))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.SnoopsDelivered != b.SnoopsDelivered ||
		a.TotalSnoopViolations() != b.TotalSnoopViolations() {
		t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)",
			a.Cycles, a.SnoopsDelivered, a.TotalSnoopViolations(),
			b.Cycles, b.SnoopsDelivered, b.TotalSnoopViolations())
	}
}

func TestPrivateAddressSpacesDisjoint(t *testing.T) {
	// With zero sharing, no snoop may ever hit a load buffer: address
	// spaces are fully disjoint.
	s, err := New(smallCfg(core.DesignSRL, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := res.TotalSnoopViolations(); v != 0 {
		t.Fatalf("disjoint cores produced %d consistency violations", v)
	}
}

func TestNewValidation(t *testing.T) {
	cfg := smallCfg(core.DesignSRL, 0, 0)
	if _, err := New(cfg); err == nil {
		t.Fatal("zero cores accepted")
	}
}
