package multicore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"

	"srlproc/internal/core"
	"srlproc/internal/trace"
)

func smallCfg(d core.StoreDesign, cores int, shared float64) Config {
	cfg := DefaultConfig(d, trace.SERVER)
	cfg.Cores = cores
	cfg.SharedHotFrac = shared
	cfg.Core.WarmupUops = 3_000
	cfg.Core.RunUops = 15_000
	return cfg
}

func TestMulticoreRuns(t *testing.T) {
	s, err := New(smallCfg(core.DesignSRL, 2, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 2 {
		t.Fatalf("%d per-core results", len(res.PerCore))
	}
	for i, c := range res.PerCore {
		if c.Uops < 15_000 {
			t.Fatalf("core %d committed %d", i, c.Uops)
		}
	}
	if res.AggregateIPC() <= 0 {
		t.Fatal("no aggregate throughput")
	}
}

func TestSharingProducesCoherenceTraffic(t *testing.T) {
	s, err := New(smallCfg(core.DesignSRL, 2, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SnoopsDelivered == 0 {
		t.Fatal("no snoops delivered despite sharing")
	}
	if res.TotalSnoopViolations() == 0 {
		t.Log("no consistency violations this run (loads never raced a remote store)")
	}
}

func TestMoreSharingMoreViolations(t *testing.T) {
	run := func(shared float64) *Results {
		s, err := New(smallCfg(core.DesignSRL, 2, shared))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	none := run(0)
	heavy := run(0.4)
	if none.TotalSnoopViolations() != 0 {
		t.Fatalf("violations without sharing: %d", none.TotalSnoopViolations())
	}
	if heavy.SnoopsDelivered <= none.SnoopsDelivered {
		t.Fatalf("sharing produced no extra traffic: %d vs %d",
			heavy.SnoopsDelivered, none.SnoopsDelivered)
	}
}

func TestMulticoreConventionalDesign(t *testing.T) {
	// The hierarchical design's fully associative load queue handles the
	// same coherence traffic.
	s, err := New(smallCfg(core.DesignHierarchical, 2, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMulticoreDeterminism(t *testing.T) {
	run := func() *Results {
		s, err := New(smallCfg(core.DesignSRL, 2, 0.15))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.SnoopsDelivered != b.SnoopsDelivered ||
		a.TotalSnoopViolations() != b.TotalSnoopViolations() {
		t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)",
			a.Cycles, a.SnoopsDelivered, a.TotalSnoopViolations(),
			b.Cycles, b.SnoopsDelivered, b.TotalSnoopViolations())
	}
}

func TestPrivateAddressSpacesDisjoint(t *testing.T) {
	// With zero sharing, no snoop may ever hit a load buffer: address
	// spaces are fully disjoint.
	s, err := New(smallCfg(core.DesignSRL, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := res.TotalSnoopViolations(); v != 0 {
		t.Fatalf("disjoint cores produced %d consistency violations", v)
	}
}

func TestNewValidation(t *testing.T) {
	cfg := smallCfg(core.DesignSRL, 0, 0)
	if _, err := New(cfg); err == nil {
		t.Fatal("zero cores accepted")
	}
}

// TestBusDeliveryTiming pins the bus timing contract: a store broadcast in
// lockstep cycle N is snooped by the other cores in cycle N+max(1,BusLatency)
// — never the same cycle, even on a zero-latency bus, because delivery runs
// after every core has stepped.
func TestBusDeliveryTiming(t *testing.T) {
	cases := []struct {
		lat  uint64 // configured BusLatency
		want uint64 // delivery delay relative to the broadcast cycle
	}{
		{0, 1}, // a zero-latency bus still takes one lockstep cycle
		{1, 1},
		{2, 2},
		{5, 5},
		{32, 32},
	}
	for _, tc := range cases {
		cfg := smallCfg(core.DesignSRL, 2, 0)
		cfg.BusLatency = tc.lat
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const n = 100
		s.cycle = n
		s.broadcast(0, 0x40)
		if len(s.bus) != 1 {
			t.Fatalf("lat %d: %d pending transactions after broadcast", tc.lat, len(s.bus))
		}
		for cyc := uint64(n + 1); cyc <= n+tc.want; cyc++ {
			s.cycle = cyc
			s.deliver()
			if delivered, want := s.sent > 0, cyc == n+tc.want; delivered != want {
				t.Fatalf("lat %d: delivered=%v at cycle %d (broadcast at %d, want delivery at %d)",
					tc.lat, delivered, cyc, uint64(n), n+tc.want)
			}
		}
		if s.sent != 1 || s.dropped != 0 || len(s.bus) != 0 {
			t.Fatalf("lat %d: sent=%d dropped=%d pending=%d after the delivery window",
				tc.lat, s.sent, s.dropped, len(s.bus))
		}
	}
}

// TestSnoopDroppedToFinishedCore pins the drop accounting: a snoop whose
// target core has already finished its measured region is counted as
// dropped, not delivered.
func TestSnoopDroppedToFinishedCore(t *testing.T) {
	cfg := smallCfg(core.DesignSRL, 2, 0)
	cfg.Core.WarmupUops = 0
	cfg.Core.RunUops = 2_000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !s.cores[1].Done() {
		s.cores[1].StepCycle()
	}
	// Discard the traffic core 1's own stores produced while it ran; the
	// assertion below is about one fresh snoop aimed at the finished core.
	s.bus = s.bus[:0]
	s.sent, s.dropped = 0, 0
	s.broadcast(0, 0x40)
	s.cycle += cfg.BusLatency + 1
	s.deliver()
	if s.sent != 0 || s.dropped != 1 {
		t.Fatalf("snoop to a finished core: sent=%d dropped=%d, want 0/1", s.sent, s.dropped)
	}
}

// TestRunContextCancel pins the RunContext contract: an already-cancelled
// context aborts the run with the context's error before any cycles pass.
func TestRunContextCancel(t *testing.T) {
	s, err := New(smallCfg(core.DesignSRL, 2, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

// TestMulticoreOracleClean is the multicore analog of the single-core
// figure sweep's oracle gate: every core of a lockstep system runs with the
// differential oracle attached while the workload carries fences and
// release/acquire traffic over real cross-core snoops, and must report zero
// divergences. The second leg re-runs each point unchecked and requires
// identical timing — attaching the checker observes, never perturbs.
// SRLPROC_ORACLE_FULL=1 scales the points up for the nightly budget.
func TestMulticoreOracleClean(t *testing.T) {
	warm, run := uint64(2_000), uint64(8_000)
	if os.Getenv("SRLPROC_ORACLE_FULL") == "1" {
		warm, run = 8_000, 40_000
	}
	for _, d := range []core.StoreDesign{core.DesignBaseline, core.DesignSRL} {
		for _, suite := range []trace.Suite{trace.SERVER, trace.SINT2K} {
			t.Run(fmt.Sprintf("%s-%s", d, suite), func(t *testing.T) {
				runOnce := func(check bool) *Results {
					cfg := DefaultConfig(d, suite)
					cfg.Cores = 2
					cfg.SharedHotFrac = 0.15
					cfg.Core.WarmupUops = warm
					cfg.Core.RunUops = run
					cfg.Core.Check = check
					cfg.Core.FencePer1K = 3
					cfg.Core.AcquireFrac = 0.12
					cfg.Core.ReleaseFrac = 0.12
					s, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					res, err := s.RunContext(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				checked := runOnce(true)
				for i, c := range checked.PerCore {
					if c.DivergenceCount != 0 {
						t.Fatalf("core %d: %d divergences; first: %v",
							i, c.DivergenceCount, c.Divergences[0])
					}
					if c.Fences == 0 {
						t.Fatalf("core %d committed no fences; ordering knobs not mirrored", i)
					}
				}
				plain := runOnce(false)
				if checked.Cycles != plain.Cycles ||
					checked.SnoopsDelivered != plain.SnoopsDelivered ||
					checked.SnoopsDropped != plain.SnoopsDropped {
					t.Fatalf("checker perturbed timing: checked (%d cycles, %d/%d snoops) vs unchecked (%d, %d/%d)",
						checked.Cycles, checked.SnoopsDelivered, checked.SnoopsDropped,
						plain.Cycles, plain.SnoopsDelivered, plain.SnoopsDropped)
				}
				for i := range checked.PerCore {
					if checked.PerCore[i].Cycles != plain.PerCore[i].Cycles ||
						checked.PerCore[i].Uops != plain.PerCore[i].Uops {
						t.Fatalf("checker perturbed core %d: %d cycles/%d uops vs %d/%d",
							i, checked.PerCore[i].Cycles, checked.PerCore[i].Uops,
							plain.PerCore[i].Cycles, plain.PerCore[i].Uops)
					}
				}
			})
		}
	}
}
