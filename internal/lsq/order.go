package lsq

import "srlproc/internal/heapq"

// OrderTracker models the write-after-read bit array of Section 4.3: the
// store at the SRL head may update the cache during redo only after all
// loads before it in program order have executed. The hardware is a bit
// array with head/tail pointers where loads set a bit at allocate and clear
// it at completion; this model keeps the set of outstanding (allocated but
// not completed) load sequence numbers with a min-heap, which answers the
// same question: "have all loads older than seq executed?".
//
// A load may be allocated, squashed by a checkpoint restart, and allocated
// again with the same sequence number; the tracker therefore deduplicates
// heap entries and keeps the authoritative outstanding set separately.
// The heap is an index-based heapq.Heap rather than container/heap so the
// per-load Push/Pop does not box its uint64 through an interface value.
type OrderTracker struct {
	h           heapq.Heap[struct{}]
	inHeap      map[uint64]bool
	outstanding map[uint64]bool
}

// NewOrderTracker returns an empty tracker.
func NewOrderTracker() *OrderTracker {
	return &OrderTracker{
		inHeap:      make(map[uint64]bool),
		outstanding: make(map[uint64]bool),
	}
}

// LoadAllocated records a load entering the window (its bit is set).
func (t *OrderTracker) LoadAllocated(seq uint64) {
	t.outstanding[seq] = true
	if !t.inHeap[seq] {
		t.inHeap[seq] = true
		t.h.Push(seq, struct{}{})
	}
}

// LoadCompleted records a load finishing execution (its bit clears).
func (t *OrderTracker) LoadCompleted(seq uint64) {
	delete(t.outstanding, seq)
	t.drain()
}

func (t *OrderTracker) drain() {
	for t.h.Len() > 0 {
		seq, _ := t.h.Min()
		if t.outstanding[seq] {
			break
		}
		delete(t.inHeap, seq)
		t.h.PopMin()
	}
}

// AllLoadsOlderThanDone reports whether every load strictly older than seq
// has completed — the SRL head store's drain condition (loads and stores
// never share a sequence number, so the boundary case is moot in practice).
func (t *OrderTracker) AllLoadsOlderThanDone(seq uint64) bool {
	t.drain()
	if t.h.Len() == 0 {
		return true
	}
	oldest, _ := t.h.Min()
	return oldest >= seq
}

// Outstanding returns the number of loads allocated but not completed.
func (t *OrderTracker) Outstanding() int { return len(t.outstanding) }

// SquashYoungerThan discards outstanding loads strictly younger than seq:
// a load survives iff its Seq <= seq, so its bit keeps gating the SRL head.
// This is the repo-wide squash convention (see StoreQueue.SquashYoungerThan);
// callers restarting at a checkpoint whose first sequence number is fromSeq
// pass fromSeq-1.
func (t *OrderTracker) SquashYoungerThan(seq uint64) {
	for s := range t.outstanding {
		if s > seq {
			delete(t.outstanding, s)
		}
	}
	t.drain()
}

// Reset clears the tracker (full squash).
func (t *OrderTracker) Reset() {
	t.h.Reset()
	t.inHeap = make(map[uint64]bool)
	t.outstanding = make(map[uint64]bool)
}
