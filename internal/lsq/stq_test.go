package lsq

import "testing"

func mkEntry(seq uint64, addr uint64, ready bool) StoreEntry {
	return StoreEntry{Seq: seq, Addr: addr, Size: 8, AddrKnown: true, DataReady: ready, SRLIndex: seq}
}

func TestStoreQueueFIFO(t *testing.T) {
	q := NewStoreQueue("t", 4, 3)
	for i := uint64(1); i <= 4; i++ {
		if _, ok := q.Alloc(mkEntry(i, i*8, true)); !ok {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if _, ok := q.Alloc(mkEntry(5, 40, true)); ok {
		t.Fatal("alloc succeeded on a full queue")
	}
	if !q.Full() || q.Len() != 4 {
		t.Fatal("occupancy wrong")
	}
	for i := uint64(1); i <= 4; i++ {
		e, ok := q.PopHead()
		if !ok || e.Seq != i {
			t.Fatalf("pop %d: got %v/%v", i, e.Seq, ok)
		}
	}
	if _, ok := q.PopHead(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
}

func TestSearchFindsYoungestOlder(t *testing.T) {
	q := NewStoreQueue("t", 8, 3)
	q.Alloc(mkEntry(1, 0x100, true))
	q.Alloc(mkEntry(2, 0x100, true)) // younger store, same word
	q.Alloc(mkEntry(3, 0x200, true))
	r := q.Search(0x100, 8, 10)
	if !r.Hit || r.Entry.Seq != 2 {
		t.Fatalf("search hit=%v seq=%v; want youngest older (2)", r.Hit, r.Entry)
	}
	// A load between the two stores must see only the first.
	r = q.Search(0x100, 8, 2)
	if !r.Hit || r.Entry.Seq != 1 {
		t.Fatalf("age-bounded search got %+v", r.Entry)
	}
	// A load older than both must miss.
	if r := q.Search(0x100, 8, 1); r.Hit {
		t.Fatal("load forwarded from a younger store")
	}
}

func TestSearchUnknownAddresses(t *testing.T) {
	q := NewStoreQueue("t", 8, 3)
	e := mkEntry(1, 0, false)
	e.AddrKnown = false
	q.Alloc(e)
	q.Alloc(mkEntry(2, 0x100, true))
	r := q.Search(0x300, 8, 10)
	if r.Hit {
		t.Fatal("spurious hit")
	}
	if !r.UnknownOlder || len(r.UnknownSeqs) != 1 || r.UnknownSeqs[0] != 1 {
		t.Fatalf("unknown screening: %+v", r)
	}
}

func TestSearchPoisonedMatch(t *testing.T) {
	q := NewStoreQueue("t", 8, 3)
	q.Alloc(mkEntry(1, 0x100, false)) // address known, data not ready
	r := q.Search(0x100, 8, 5)
	if !r.Hit || !r.PoisonedMatch {
		t.Fatalf("poisoned match not flagged: %+v", r)
	}
}

func TestWordGranularityMatch(t *testing.T) {
	q := NewStoreQueue("t", 8, 3)
	q.Alloc(mkEntry(1, 0x100, true))
	if r := q.Search(0x104, 4, 5); !r.Hit {
		t.Fatal("same-word different-offset access missed")
	}
	if r := q.Search(0x108, 8, 5); r.Hit {
		t.Fatal("different word matched")
	}
}

func TestLocate(t *testing.T) {
	q := NewStoreQueue("t", 4, 3)
	slot, _ := q.Alloc(mkEntry(7, 0x100, false))
	if e := q.Locate(slot, 7); e == nil || e.Seq != 7 {
		t.Fatal("locate failed")
	}
	if q.Locate(slot, 8) != nil {
		t.Fatal("locate matched wrong seq")
	}
	q.PopHead()
	if q.Locate(slot, 7) != nil {
		t.Fatal("locate found a popped entry")
	}
}

func TestSquashYoungerThan(t *testing.T) {
	q := NewStoreQueue("t", 8, 3)
	for i := uint64(1); i <= 5; i++ {
		q.Alloc(mkEntry(i, i*0x100, true))
	}
	removed := q.SquashYoungerThan(3)
	if len(removed) != 2 {
		t.Fatalf("removed %d", len(removed))
	}
	if removed[0].Seq != 5 || removed[1].Seq != 4 {
		t.Fatalf("squash order %v %v", removed[0].Seq, removed[1].Seq)
	}
	if q.Len() != 3 {
		t.Fatalf("len %d", q.Len())
	}
	// Re-allocation after squash reuses the freed space.
	if _, ok := q.Alloc(mkEntry(4, 0x400, true)); !ok {
		t.Fatal("realloc after squash failed")
	}
}

func TestCAMActivityCounted(t *testing.T) {
	q := NewStoreQueue("t", 8, 3)
	q.Alloc(mkEntry(1, 0x100, true))
	q.Alloc(mkEntry(2, 0x200, true))
	q.Search(0x100, 8, 10)
	if q.Searches() != 1 {
		t.Fatalf("searches %d", q.Searches())
	}
	if q.CamEntryOps() != 2 {
		t.Fatalf("entry ops %d (every resident entry's comparator fires)", q.CamEntryOps())
	}
	if q.Forwards() != 1 {
		t.Fatalf("forwards %d", q.Forwards())
	}
}

func TestMTB(t *testing.T) {
	m := NewMTB(64)
	if m.MightContain(0x100) {
		t.Fatal("empty filter matched")
	}
	m.Add(0x100)
	m.Add(0x100)
	if !m.MightContain(0x100) {
		t.Fatal("added address missed")
	}
	m.Remove(0x100)
	if !m.MightContain(0x100) {
		t.Fatal("count-2 address dropped after one removal")
	}
	m.Remove(0x100)
	if m.MightContain(0x100) {
		t.Fatal("fully removed address still matches")
	}
	if m.Probes() != 4 || m.Maybes() != 2 {
		t.Fatalf("activity %d/%d", m.Probes(), m.Maybes())
	}
	// Underflow is clamped.
	m.Remove(0x100)
	if m.MightContain(0x100) {
		t.Fatal("underflow corrupted the filter")
	}
}

func TestMTBAliasing(t *testing.T) {
	m := NewMTB(8)
	m.Add(0x100)
	aliased := uint64(0x100 + 8*8) // same counter (word-granular index)
	if !m.MightContain(aliased) {
		t.Fatal("aliasing should produce a (false-positive) match")
	}
}

func TestMTBReset(t *testing.T) {
	m := NewMTB(8)
	m.Add(0x100)
	m.Reset()
	if m.MightContain(0x100) {
		t.Fatal("reset did not clear")
	}
}
