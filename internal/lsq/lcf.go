package lsq

// HashKind selects the LCF index hash function (Section 6.4).
type HashKind int

const (
	// HashLAB indexes with the lower address bits.
	HashLAB HashKind = iota
	// Hash3PAX indexes with the XOR of the lower, middle and upper address
	// bit fields ("3-Piece Address XOR").
	Hash3PAX
)

// String names the hash for reports.
func (h HashKind) String() string {
	if h == Hash3PAX {
		return "3-PAX"
	}
	return "LAB"
}

// LCF is the Loose Check Filter (Section 4.3): a direct-mapped, non-tagged
// array of 6-bit counters indexed by a hash of the memory address — a
// counting Bloom filter over the SRL's contents. A zero counter proves no
// store to the address is in the SRL, so a load may issue safely during the
// redo phase. Each entry also stores the SRL index of the last matching
// store inserted, enabling indexed forwarding without a CAM.
type LCF struct {
	count     []uint8
	lastIndex []uint64
	bits      uint // log2(entries)
	hash      HashKind
	maxCount  uint8

	probes                 uint64
	hitsNZ                 uint64 // probes finding a non-zero counter
	overflows              uint64 // increments refused (counter saturated)
	increments, decrements uint64
}

// NewLCF creates a loose check filter with entries counters (power of two)
// using the given hash. counterBits is the counter width (the paper uses 6).
func NewLCF(entries int, hash HashKind, counterBits uint) *LCF {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("lsq: LCF entries must be a positive power of two")
	}
	bits := uint(0)
	for 1<<bits < entries {
		bits++
	}
	return &LCF{
		count:     make([]uint8, entries),
		lastIndex: make([]uint64, entries),
		bits:      bits,
		hash:      hash,
		maxCount:  uint8(1<<counterBits - 1),
	}
}

// Entries returns the number of counters.
func (f *LCF) Entries() int { return len(f.count) }

// Hash returns the configured hash kind.
func (f *LCF) Hash() HashKind { return f.hash }

// Probes, NonZeroHits and Overflows return activity counts.
func (f *LCF) Probes() uint64      { return f.probes }
func (f *LCF) NonZeroHits() uint64 { return f.hitsNZ }
func (f *LCF) Overflows() uint64   { return f.overflows }

func (f *LCF) idx(addr uint64) uint64 {
	w := wordAddr(addr)
	mask := uint64(1)<<f.bits - 1
	switch f.hash {
	case Hash3PAX:
		return (w ^ (w >> f.bits) ^ (w >> (2 * f.bits))) & mask
	default: // HashLAB
		return w & mask
	}
}

// Inc records a store entering the SRL, remembering its SRL index for
// indexed forwarding. It returns false when the counter is saturated, in
// which case the caller must stall SRL allocation (the paper's overflow
// rule).
func (f *LCF) Inc(addr uint64, srlIndex uint64) bool {
	i := f.idx(addr)
	if f.count[i] == f.maxCount {
		f.overflows++
		return false
	}
	f.count[i]++
	f.lastIndex[i] = srlIndex
	f.increments++
	return true
}

// Dec records a store leaving the SRL (redo drain or squash).
func (f *LCF) Dec(addr uint64) {
	i := f.idx(addr)
	if f.count[i] > 0 {
		f.count[i]--
	}
	f.decrements++
}

// Probe checks whether a load at addr may have a matching store in the SRL.
// A zero count guarantees it does not; a non-zero count also returns the
// SRL index of the last matching store inserted, for indexed forwarding.
func (f *LCF) Probe(addr uint64) (mayMatch bool, lastSRLIndex uint64) {
	f.probes++
	i := f.idx(addr)
	if f.count[i] == 0 {
		return false, 0
	}
	f.hitsNZ++
	return true, f.lastIndex[i]
}

// Peek is Probe without activity accounting, for re-examining an
// already-stalled load (the hardware holds the load in a wait buffer and
// wakes it; it does not re-probe the filter every cycle).
func (f *LCF) Peek(addr uint64) (mayMatch bool, lastSRLIndex uint64) {
	i := f.idx(addr)
	if f.count[i] == 0 {
		return false, 0
	}
	return true, f.lastIndex[i]
}

// Reset clears every counter (full-window squash).
func (f *LCF) Reset() {
	for i := range f.count {
		f.count[i] = 0
		f.lastIndex[i] = 0
	}
}

// SizeBytes returns the storage footprint: the paper's 2K-entry LCF stores
// a 10-bit SRL index plus a 6-bit counter per entry = 2 bytes.
func (f *LCF) SizeBytes() int { return len(f.count) * 2 }
