package lsq

// HashKind selects the LCF index hash function (Section 6.4).
type HashKind int

const (
	// HashLAB indexes with the lower address bits.
	HashLAB HashKind = iota
	// Hash3PAX indexes with the XOR of the lower, middle and upper address
	// bit fields ("3-Piece Address XOR").
	Hash3PAX
)

// String names the hash for reports.
func (h HashKind) String() string {
	if h == Hash3PAX {
		return "3-PAX"
	}
	return "LAB"
}

// LCF is the Loose Check Filter (Section 4.3): a direct-mapped, non-tagged
// array of 6-bit counters indexed by a hash of the memory address — a
// counting Bloom filter over the SRL's contents. A zero counter proves no
// store to the address is in the SRL, so a load may issue safely during the
// redo phase. Each entry also stores the SRL index of the last matching
// store inserted, enabling indexed forwarding without a CAM.
type LCF struct {
	count     []uint8
	lastIndex []uint64
	sticky    []bool // saturated by an unrefusable insert; ignores Dec
	bits      uint   // log2(entries)
	hash      HashKind
	maxCount  uint8

	probes                 uint64
	hitsNZ                 uint64 // probes finding a non-zero counter
	overflows              uint64 // increments refused (counter saturated)
	increments, decrements uint64
}

// NewLCF creates a loose check filter with entries counters (power of two)
// using the given hash. counterBits is the counter width (the paper uses 6).
func NewLCF(entries int, hash HashKind, counterBits uint) *LCF {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("lsq: LCF entries must be a positive power of two")
	}
	bits := uint(0)
	for 1<<bits < entries {
		bits++
	}
	return &LCF{
		count:     make([]uint8, entries),
		lastIndex: make([]uint64, entries),
		sticky:    make([]bool, entries),
		bits:      bits,
		hash:      hash,
		maxCount:  uint8(1<<counterBits - 1),
	}
}

// Entries returns the number of counters.
func (f *LCF) Entries() int { return len(f.count) }

// Hash returns the configured hash kind.
func (f *LCF) Hash() HashKind { return f.hash }

// Probes, NonZeroHits and Overflows return activity counts.
func (f *LCF) Probes() uint64      { return f.probes }
func (f *LCF) NonZeroHits() uint64 { return f.hitsNZ }
func (f *LCF) Overflows() uint64   { return f.overflows }

func (f *LCF) idx(addr uint64) uint64 {
	w := wordAddr(addr)
	mask := uint64(1)<<f.bits - 1
	switch f.hash {
	case Hash3PAX:
		return (w ^ (w >> f.bits) ^ (w >> (2 * f.bits))) & mask
	default: // HashLAB
		return w & mask
	}
}

// Inc records a store entering the SRL, remembering its SRL index for
// indexed forwarding. It returns false when the counter is saturated, in
// which case the caller must stall SRL allocation (the paper's overflow
// rule).
//
// lastIndex must point at the *youngest* counted store mapping to the
// entry: indexed forwarding assumes it. Stores usually enter the SRL in
// program order, but a reserved slot filled out of order counts late — so
// lastIndex only moves forward (SRL virtual indices are monotonic in
// program order). The one exception is the 0→1 transition, where the
// stored index belongs to an already-drained store and must be replaced
// unconditionally.
func (f *LCF) Inc(addr uint64, srlIndex uint64) bool {
	i := f.idx(addr)
	if f.count[i] == f.maxCount {
		f.overflows++
		return false
	}
	f.count[i]++
	if f.count[i] == 1 || srlIndex > f.lastIndex[i] {
		f.lastIndex[i] = srlIndex
	}
	f.increments++
	return true
}

// IncSticky records a store that cannot be refused — a reserved SRL slot
// filled late, after its address resolves. Where Inc stalls allocation on a
// saturated counter, a late fill has no stall option: the slot is already
// allocated in program order. A saturated counter therefore pins at its
// maximum ("sticky") and ignores decrements from then on — once it has
// absorbed more inserts than it can count, any decrement could zero it
// while matching stores remain in the SRL, breaking the filter's
// no-false-negatives guarantee. Sticky state clears when the SRL empties
// and the owner calls Reset (every counter is provably zero then).
func (f *LCF) IncSticky(addr uint64, srlIndex uint64) {
	i := f.idx(addr)
	if f.count[i] >= f.maxCount {
		f.count[i] = f.maxCount
		f.sticky[i] = true
		f.overflows++
	} else {
		f.count[i]++
		f.increments++
	}
	if f.count[i] == 1 || srlIndex > f.lastIndex[i] {
		f.lastIndex[i] = srlIndex
	}
}

// Dec records a store leaving the SRL (redo drain or squash). A sticky
// counter (see IncSticky) absorbs the decrement: its true population is
// unknown, so it must stay conservatively non-zero until Reset.
func (f *LCF) Dec(addr uint64) {
	i := f.idx(addr)
	f.decrements++
	if f.sticky[i] {
		return
	}
	if f.count[i] > 0 {
		f.count[i]--
	}
}

// Probe checks whether a load at addr may have a matching store in the SRL.
// A zero count guarantees it does not; a non-zero count also returns the
// SRL index of the last matching store inserted, for indexed forwarding.
func (f *LCF) Probe(addr uint64) (mayMatch bool, lastSRLIndex uint64) {
	f.probes++
	i := f.idx(addr)
	if f.count[i] == 0 {
		return false, 0
	}
	f.hitsNZ++
	return true, f.lastIndex[i]
}

// Peek is Probe without activity accounting, for re-examining an
// already-stalled load (the hardware holds the load in a wait buffer and
// wakes it; it does not re-probe the filter every cycle).
func (f *LCF) Peek(addr uint64) (mayMatch bool, lastSRLIndex uint64) {
	i := f.idx(addr)
	if f.count[i] == 0 {
		return false, 0
	}
	return true, f.lastIndex[i]
}

// Reset clears every counter and all sticky state. Sound whenever the SRL
// is empty (episode end, full squash): an empty SRL means every counter's
// true population is zero.
func (f *LCF) Reset() {
	for i := range f.count {
		f.count[i] = 0
		f.lastIndex[i] = 0
		f.sticky[i] = false
	}
}

// SizeBytes returns the storage footprint: the paper's 2K-entry LCF stores
// a 10-bit SRL index plus a 6-bit counter per entry = 2 bytes.
func (f *LCF) SizeBytes() int { return len(f.count) * 2 }
