package lsq

import "testing"

// The repo-wide squash convention: SquashYoungerThan(seq) removes entries
// with Seq strictly greater than seq; seq itself survives. A caller
// restarting at a checkpoint whose first sequence number is fromSeq passes
// fromSeq-1. These boundary tests pin the convention on every structure —
// an off-by-one in any of them forwards stale data silently.

const boundary = 10

func seqsKept(t *testing.T, name string, present func(seq uint64) bool) {
	t.Helper()
	for _, tc := range []struct {
		seq  uint64
		want bool
	}{{9, true}, {10, true}, {11, false}} {
		if got := present(tc.seq); got != tc.want {
			t.Errorf("%s: after SquashYoungerThan(%d), seq %d present=%v, want %v",
				name, boundary, tc.seq, got, tc.want)
		}
	}
}

func TestSquashBoundaryStoreQueue(t *testing.T) {
	q := NewStoreQueue("t", 8, 1)
	for _, s := range []uint64{9, 10, 11} {
		q.Alloc(StoreEntry{Seq: s})
	}
	removed := q.SquashYoungerThan(boundary)
	if len(removed) != 1 || removed[0].Seq != 11 {
		t.Fatalf("removed = %v, want [seq 11]", removed)
	}
	seqsKept(t, "StoreQueue", func(seq uint64) bool {
		for i := 0; i < q.Len(); i++ {
			if q.at(i).Seq == seq {
				return true
			}
		}
		return false
	})
}

func TestSquashBoundarySRL(t *testing.T) {
	s := NewSRL(8)
	for i, seq := range []uint64{9, 10, 11} {
		s.Alloc(StoreEntry{Seq: seq, SRLIndex: 100 + uint64(i), AddrKnown: true, DataReady: true})
	}
	removed := s.SquashYoungerThan(boundary)
	if len(removed) != 1 || removed[0].Seq != 11 {
		t.Fatalf("removed = %v, want [seq 11]", removed)
	}
	seqsKept(t, "SRL", func(seq uint64) bool {
		found := false
		s.ForEach(func(i int, e *StoreEntry) {
			if e.Seq == seq {
				found = true
			}
		})
		return found
	})
}

func TestSquashBoundaryFC(t *testing.T) {
	f := NewFC(16, 4)
	// Distinct words so each store owns an entry.
	f.Update(0x100, 8, 100, 9, 1)
	f.Update(0x200, 8, 101, 10, 1)
	f.Update(0x300, 8, 102, 11, 1)
	f.SquashYoungerThan(boundary)
	seqsKept(t, "FC", func(seq uint64) bool {
		addr := map[uint64]uint64{9: 0x100, 10: 0x200, 11: 0x300}[seq]
		// Lookup from a far-future load: any surviving entry is eligible.
		_, ok := f.Lookup(addr, 1<<40)
		return ok
	})
}

func TestSquashBoundaryLoadBuffer(t *testing.T) {
	b := NewLoadBuffer(16, 4, OverflowViolate, 0)
	for _, s := range []uint64{9, 10, 11} {
		b.Insert(LoadEntry{Seq: s, Addr: s * 0x100, FwdStoreID: NoFwd})
	}
	if n := b.SquashYoungerThan(boundary); n != 1 {
		t.Fatalf("removed %d entries, want 1", n)
	}
	seqsKept(t, "LoadBuffer", func(seq uint64) bool {
		found := false
		b.ForEach(func(e *LoadEntry) {
			if e.Seq == seq {
				found = true
			}
		})
		return found
	})
}

func TestSquashBoundaryOrderTracker(t *testing.T) {
	tr := NewOrderTracker()
	for _, s := range []uint64{9, 10, 11} {
		tr.LoadAllocated(s)
	}
	tr.SquashYoungerThan(boundary)
	seqsKept(t, "OrderTracker", func(seq uint64) bool { return tr.outstanding[seq] })
	// The surviving loads still gate the SRL head; the squashed one does not.
	if tr.AllLoadsOlderThanDone(11) {
		t.Fatal("loads 9 and 10 must still gate a head at seq 11")
	}
	tr.LoadCompleted(9)
	tr.LoadCompleted(10)
	if !tr.AllLoadsOlderThanDone(12) {
		t.Fatal("squashed load 11 must not gate the head")
	}
}

// TestFCUpdateAgeGuard pins the out-of-order late-fill fix: an older store
// whose data arrives late must not clobber a younger store's FC entry for
// the same word.
func TestFCUpdateAgeGuard(t *testing.T) {
	f := NewFC(16, 4)
	f.Update(0x100, 8, 120, 20, 1) // younger store, seq 20
	f.Update(0x100, 8, 110, 10, 1) // older store fills late, seq 10
	hit, ok := f.Lookup(0x100, 30)
	if !ok || hit.SRLIndex != 120 || hit.StoreSeq != 20 {
		t.Fatalf("lookup = %+v ok=%v, want younger store (idx 120, seq 20)", hit, ok)
	}
	// A genuinely younger update still replaces the entry.
	f.Update(0x100, 8, 130, 25, 1)
	hit, ok = f.Lookup(0x100, 30)
	if !ok || hit.SRLIndex != 130 {
		t.Fatalf("lookup = %+v ok=%v, want idx 130", hit, ok)
	}
}

// TestLCFLastIndexMonotone pins the companion fix in the LCF: a late
// increment from an older store must not move lastIndex backwards (indexed
// forwarding assumes lastIndex names the youngest counted store), but the
// 0→1 transition must replace a stale index unconditionally.
func TestLCFLastIndexMonotone(t *testing.T) {
	f := NewLCF(64, HashLAB, 6)
	f.Inc(0x100, 120) // younger store first
	f.Inc(0x100, 110) // older store counts late
	if may, last := f.Peek(0x100); !may || last != 120 {
		t.Fatalf("Peek = %v,%d, want true,120", may, last)
	}
	// Drain both; then a fresh store with a smaller index (post-squash
	// replay) must take over on the 0→1 transition.
	f.Dec(0x100)
	f.Dec(0x100)
	f.Inc(0x100, 50)
	if may, last := f.Peek(0x100); !may || last != 50 {
		t.Fatalf("Peek after reuse = %v,%d, want true,50", may, last)
	}
}

// TestFCFaultInvertAge verifies the fault-injection knob used by the
// checker's seeded-bug test: with the inversion on, only a younger
// producer forwards.
func TestFCFaultInvertAge(t *testing.T) {
	f := NewFC(16, 4)
	f.Update(0x100, 8, 110, 10, 1)
	if _, ok := f.Lookup(0x100, 20); !ok {
		t.Fatal("healthy lookup should forward from the older store")
	}
	f.FaultInvertAge = true
	if _, ok := f.Lookup(0x100, 20); ok {
		t.Fatal("inverted lookup must reject the older store")
	}
	if hit, ok := f.Lookup(0x100, 5); !ok || hit.StoreSeq != 10 {
		t.Fatal("inverted lookup must forward from a younger store")
	}
}
