package lsq

// SRL is the Store Redo Log (Section 4): a first-in first-out structure
// recording, in program order, every store in the shadow of a long-latency
// miss. It has no CAM and no search; its only access modes are allocate at
// the tail, fill by index (a miss-dependent store writing its address and
// data after slice re-execution), read/pop at the head (redo drain), and
// indexed read (indexed forwarding via the LCF's stored index).
//
// Store identifiers: the hardware uses the SRL entry index plus a
// wrap-around bit so the relative program order of two stores is a single
// magnitude comparison. This model uses a monotonically increasing 64-bit
// virtual index with a ring buffer underneath, which has identical
// comparison semantics and never wraps in practice.
type SRL struct {
	entries []StoreEntry
	base    uint64 // virtual index of entries[head]
	head    int
	count   int

	writes       uint64 // RAM writes (allocate/fill)
	reads        uint64 // RAM reads (drain/indexed forward)
	indexedReads uint64

	// squashScratch backs SquashYoungerThan's returned slice, so squashes
	// allocate nothing in the steady state.
	squashScratch []StoreEntry
}

// NewSRL creates a store redo log with the given capacity (the paper uses
// 1K entries; Figure 7 shows that suffices for all suites).
func NewSRL(capacity int) *SRL {
	return &SRL{entries: make([]StoreEntry, capacity)}
}

// Len, Cap and Full report occupancy.
func (s *SRL) Len() int   { return s.count }
func (s *SRL) Cap() int   { return len(s.entries) }
func (s *SRL) Full() bool { return s.count == len(s.entries) }

// Empty reports whether the SRL holds no stores.
func (s *SRL) Empty() bool { return s.count == 0 }

// Writes, Reads and IndexedReads return RAM activity for the power model.
func (s *SRL) Writes() uint64       { return s.writes }
func (s *SRL) Reads() uint64        { return s.reads }
func (s *SRL) IndexedReads() uint64 { return s.indexedReads }

// HeadIndex returns the virtual index of the oldest entry (valid only when
// non-empty).
func (s *SRL) HeadIndex() uint64 { return s.base }

// Alloc appends a store at the tail. The entry's SRLIndex must already be
// set to the store's identifier (its global allocation order): stores enter
// the SRL strictly in program order, so within one occupancy run the
// identifiers are consecutive; when the SRL is empty the base resets to the
// new entry's identifier. For a miss-independent store the entry carries
// address+data (DataReady=true); for a miss-dependent store only the slot
// is reserved (DataReady=false) and the index is recorded with the store in
// the SDB for the later Fill.
func (s *SRL) Alloc(e StoreEntry) (uint64, bool) {
	if s.Full() {
		return 0, false
	}
	if s.count == 0 {
		s.base = e.SRLIndex
	} else if e.SRLIndex != s.base+uint64(s.count) {
		panic("lsq: SRL allocation out of store-identifier order")
	}
	s.entries[(s.head+s.count)%len(s.entries)] = e
	s.count++
	s.writes++
	return e.SRLIndex, true
}

// Get returns the entry at virtual index idx, or nil if it is no longer
// (or not yet) resident.
func (s *SRL) Get(idx uint64) *StoreEntry {
	if idx < s.base || idx >= s.base+uint64(s.count) {
		return nil
	}
	return &s.entries[(s.head+int(idx-s.base))%len(s.entries)]
}

// Fill completes a reserved entry: the re-executed miss-dependent store
// writes its address and data into its pre-allocated slot.
func (s *SRL) Fill(idx uint64, addr uint64, size uint8) bool {
	e := s.Get(idx)
	if e == nil {
		return false
	}
	e.Addr = addr
	e.Size = size
	e.AddrKnown = true
	e.DataReady = true
	s.writes++
	return true
}

// Head returns the oldest entry without removing it.
func (s *SRL) Head() *StoreEntry {
	if s.count == 0 {
		return nil
	}
	return &s.entries[s.head]
}

// PopHead removes and returns the oldest entry (one redo cache update).
func (s *SRL) PopHead() (StoreEntry, bool) {
	if s.count == 0 {
		return StoreEntry{}, false
	}
	e := s.entries[s.head]
	s.head = (s.head + 1) % len(s.entries)
	s.base++
	s.count--
	s.reads++
	return e, true
}

// IndexedRead reads the entry at idx for indexed forwarding (a single RAM
// read plus one external comparator — no CAM).
func (s *SRL) IndexedRead(idx uint64) *StoreEntry {
	s.indexedReads++
	return s.Get(idx)
}

// ForEach visits resident entries oldest-first, passing each entry's
// position from the head (virtual index = HeadIndex()+i). For the
// differential checker's FIFO/coverage sweeps.
func (s *SRL) ForEach(fn func(i int, e *StoreEntry)) {
	for i := 0; i < s.count; i++ {
		fn(i, &s.entries[(s.head+i)%len(s.entries)])
	}
}

// SquashYoungerThan removes entries strictly younger than seq from the
// tail: an entry survives iff its Seq <= seq. This is the repo-wide squash
// convention (see StoreQueue.SquashYoungerThan); callers restarting at a
// checkpoint whose first sequence number is fromSeq pass fromSeq-1. It
// returns the removed entries so the caller can decrement LCF counters; the
// returned slice aliases a reusable scratch buffer and is valid only until
// the next SquashYoungerThan call.
func (s *SRL) SquashYoungerThan(seq uint64) []StoreEntry {
	removed := s.squashScratch[:0]
	for s.count > 0 {
		tail := &s.entries[(s.head+s.count-1)%len(s.entries)]
		if tail.Seq <= seq {
			break
		}
		removed = append(removed, *tail)
		s.count--
	}
	s.squashScratch = removed[:0]
	return removed
}
