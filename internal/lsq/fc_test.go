package lsq

import "testing"

func TestFCForwardYoungestOlder(t *testing.T) {
	fc := NewFC(16, 4)
	fc.Update(0x100, 8, 10, 100, 1) // store seq 100
	fc.Update(0x100, 8, 11, 200, 1) // younger store, same word
	// A load younger than both forwards from the youngest.
	hit, ok := fc.Lookup(0x100, 300)
	if !ok || hit.SRLIndex != 11 {
		t.Fatalf("lookup: %+v ok=%v", hit, ok)
	}
	// A load between the two must NOT forward (the resident entry is
	// younger than it); it falls through to the cache and the load buffer
	// catches any true dependence later.
	if _, ok := fc.Lookup(0x100, 150); ok {
		t.Fatal("forwarded from a younger store")
	}
}

func TestFCMissOnDifferentWord(t *testing.T) {
	fc := NewFC(16, 4)
	fc.Update(0x100, 8, 1, 10, 0)
	if _, ok := fc.Lookup(0x108, 100); ok {
		t.Fatal("different word hit")
	}
}

func TestFCEvictionLRU(t *testing.T) {
	fc := NewFC(8, 2) // 4 sets, 2-way
	// Two words in the same set: word addresses congruent mod 4.
	a := uint64(0 * 8)
	b := uint64(4 * 8)
	c := uint64(8 * 8)
	fc.Update(a, 8, 1, 10, 0)
	fc.Update(b, 8, 2, 20, 0)
	fc.Update(c, 8, 3, 30, 0) // evicts a (LRU)
	if _, ok := fc.Lookup(a, 100); ok {
		t.Fatal("evicted entry still forwards")
	}
	if _, ok := fc.Lookup(b, 100); !ok {
		t.Fatal("resident entry lost")
	}
}

func TestFCDiscardAll(t *testing.T) {
	fc := NewFC(16, 4)
	fc.Update(0x100, 8, 1, 10, 0)
	fc.DiscardAll()
	if fc.Len() != 0 {
		t.Fatal("discard left entries")
	}
	if _, ok := fc.Lookup(0x100, 100); ok {
		t.Fatal("discarded entry forwards")
	}
}

func TestFCSquash(t *testing.T) {
	fc := NewFC(16, 4)
	fc.Update(0x100, 8, 1, 10, 0)
	fc.Update(0x200, 8, 2, 20, 0)
	fc.SquashYoungerThan(15)
	if _, ok := fc.Lookup(0x100, 100); !ok {
		t.Fatal("older entry squashed")
	}
	if _, ok := fc.Lookup(0x200, 100); ok {
		t.Fatal("younger entry survived squash")
	}
}

func TestFCUpdateInPlace(t *testing.T) {
	fc := NewFC(16, 4)
	fc.Update(0x100, 8, 1, 10, 0)
	fc.Update(0x100, 8, 5, 50, 2) // same word re-written
	if fc.Len() != 1 {
		t.Fatalf("duplicate entries: %d", fc.Len())
	}
	hit, ok := fc.Lookup(0x100, 100)
	if !ok || hit.SRLIndex != 5 || hit.StoreSeq != 50 {
		t.Fatalf("in-place update lost: %+v", hit)
	}
}

func TestFCActivityCounters(t *testing.T) {
	fc := NewFC(16, 4)
	fc.Update(0x100, 8, 1, 10, 0)
	fc.Lookup(0x100, 100)
	fc.Lookup(0x999, 100)
	if fc.Updates() != 1 || fc.Lookups() != 2 || fc.Hits() != 1 {
		t.Fatalf("counters u=%d l=%d h=%d", fc.Updates(), fc.Lookups(), fc.Hits())
	}
}
