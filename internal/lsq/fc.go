package lsq

// FC is the Forwarding Cache (Section 4.3): a small set-associative cache
// that miss-independent stores update as they leave the L1 STQ, and from
// which later miss-independent loads forward at L1-hit latency. Its
// contents are temporary: they are discarded when the miss returns and the
// store redo begins, and entries belonging to a squashed checkpoint are
// flash-cleared. Using the FC instead of the data cache avoids the dirty
// writebacks, associativity stalls and redo-phase re-misses Section 6.5
// measures (Figure 10).
//
// Each entry is tagged with the word address and carries the SRL index of
// the producing store, so a load can check the producer is older than
// itself (a single magnitude comparison — no CAM).
type FC struct {
	sets  [][]fcEntry
	assoc int
	nsets int

	// FaultInvertAge inverts the producer-age eligibility comparison in
	// Lookup (fault injection: lets the checker and fuzzer prove they catch
	// an inverted storeSeq < loadSeq bug). Never set in real runs.
	FaultInvertAge bool

	lookups uint64
	hits    uint64
	updates uint64
}

type fcEntry struct {
	valid    bool
	word     uint64
	srlIndex uint64 // producing store's SRL virtual index
	storeSeq uint64
	ckpt     int
}

// NewFC creates a forwarding cache with the given total entries and
// associativity (the paper evaluates 256 entries, 4-way).
func NewFC(entries, assoc int) *FC {
	nsets := entries / assoc
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("lsq: FC set count must be a positive power of two")
	}
	f := &FC{sets: make([][]fcEntry, nsets), assoc: assoc, nsets: nsets}
	for i := range f.sets {
		f.sets[i] = make([]fcEntry, 0, assoc)
	}
	return f
}

// Lookups, Hits and Updates return activity counts for the power model.
func (f *FC) Lookups() uint64 { return f.lookups }
func (f *FC) Hits() uint64    { return f.hits }
func (f *FC) Updates() uint64 { return f.updates }

func (f *FC) set(addr uint64) int { return int(wordAddr(addr) % uint64(f.nsets)) }

// Update records a miss-independent store's temporary data. Stores
// normally reach the FC in program order (they leave the L1 STQ in order),
// so the entry holds the youngest store to the word — but a store whose
// data arrives late (an SRL slot reserved at displacement time and filled
// out of order) may update after a younger store to the same word already
// did. The age guard refuses to let such a late, older store clobber the
// younger entry: forwarding from it would silently hand loads stale data.
func (f *FC) Update(addr uint64, size uint8, srlIndex, storeSeq uint64, ckpt int) {
	f.updates++
	w := wordAddr(addr)
	si := f.set(addr)
	set := f.sets[si]
	for i := range set {
		if set[i].valid && set[i].word == w {
			if storeSeq < set[i].storeSeq {
				return
			}
			e := set[i]
			e.srlIndex, e.storeSeq, e.ckpt = srlIndex, storeSeq, ckpt
			copy(set[1:i+1], set[:i])
			set[0] = e
			return
		}
	}
	ne := fcEntry{valid: true, word: w, srlIndex: srlIndex, storeSeq: storeSeq, ckpt: ckpt}
	if len(set) < f.assoc {
		f.sets[si] = append(set, fcEntry{})
		set = f.sets[si]
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = ne
}

// FCHit describes a successful forwarding lookup.
type FCHit struct {
	SRLIndex uint64
	StoreSeq uint64
}

// Lookup checks whether a load at addr can forward. olderThanSeq restricts
// the producer to stores older than the load in program order; a younger
// producer is ignored (the load falls through to the data cache, and any
// true dependence on an intermediate store is caught later by the load
// buffer during redo).
func (f *FC) Lookup(addr uint64, loadSeq uint64) (FCHit, bool) {
	f.lookups++
	w := wordAddr(addr)
	set := f.sets[f.set(addr)]
	for i := range set {
		if set[i].valid && set[i].word == w {
			older := set[i].storeSeq < loadSeq
			if f.FaultInvertAge {
				older = !older
			}
			if older {
				f.hits++
				return FCHit{SRLIndex: set[i].srlIndex, StoreSeq: set[i].storeSeq}, true
			}
			return FCHit{}, false
		}
	}
	return FCHit{}, false
}

// DiscardAll drops every temporary update (miss returned; redo begins).
func (f *FC) DiscardAll() {
	for i := range f.sets {
		f.sets[i] = f.sets[i][:0]
	}
}

// SquashYoungerThan flash-clears entries produced by stores strictly
// younger than seq: an entry survives iff its producer's storeSeq <= seq.
// This is the repo-wide squash convention (see StoreQueue.SquashYoungerThan);
// callers restarting at a checkpoint whose first sequence number is
// fromSeq pass fromSeq-1.
func (f *FC) SquashYoungerThan(seq uint64) {
	for si := range f.sets {
		set := f.sets[si]
		out := set[:0]
		for i := range set {
			if set[i].valid && set[i].storeSeq <= seq {
				out = append(out, set[i])
			}
		}
		f.sets[si] = out
	}
}

// Len returns the number of valid entries (for tests).
func (f *FC) Len() int {
	n := 0
	for i := range f.sets {
		n += len(f.sets[i])
	}
	return n
}
