// Package lsq implements every load/store processing structure the paper
// discusses: the small fast L1 store queue (an age-ordered CAM with
// forwarding), the large single-level "ideal" store queue, the hierarchical
// two-level store queue with its Membership Test Buffer (Akkary et al.), and
// the paper's proposal — the Store Redo Log (SRL), the Loose Check Filter
// (LCF), the Forwarding Cache (FC), indexed forwarding, the write-after-read
// order tracker, and the set-associative secondary load buffer.
//
// All structures are timing models: they track addresses, program order and
// occupancy, and count the CAM/RAM activity that the power model (package
// power) converts into energy. Data values are not simulated; forwarding
// correctness is resolved by address and age, exactly the information the
// hardware comparators use.
package lsq

// StoreEntry is one store's record in a store queue or the SRL.
type StoreEntry struct {
	Seq       uint64 // program-order sequence number
	PC        uint64
	Addr      uint64
	Size      uint8
	AddrKnown bool // address has been computed (store has issued)
	DataReady bool // data value captured (not poisoned / slice returned)
	Ckpt      int  // owning checkpoint
	SRLIndex  uint64
	// LCFCounted marks an SRL entry whose address has been counted in the
	// loose check filter (so squashes decrement exactly what was added).
	LCFCounted bool
	// Rel marks a store-release; Ver is the core's ordering version at its
	// allocation — the drain path holds a release until every load with
	// version <= Ver has performed (DESIGN.md §12).
	Rel bool
	Ver uint64
}

func wordAddr(a uint64) uint64 { return a >> 3 }

// overlap reports whether two accesses touch the same 8-byte word. The
// paper's CAM includes byte masks for unaligned/partial matches; at the
// granularity this timing model needs, word overlap is the match condition.
func overlap(a1 uint64, s1 uint8, a2 uint64, s2 uint8) bool {
	return wordAddr(a1) == wordAddr(a2)
}

// SearchResult is the outcome of a load's store-queue search.
type SearchResult struct {
	// Hit is true when an older matching store with known address exists.
	Hit bool
	// Entry is the youngest such store (the forwarding source).
	Entry *StoreEntry
	// UnknownOlder is true when at least one older store has an unknown
	// address — the load might depend on it (consult the dependence
	// predictor).
	UnknownOlder bool
	// UnknownSeqs lists the sequence numbers of those unknown-address
	// older stores, youngest first. The slice aliases a per-queue scratch
	// buffer and is valid only until the queue's next Search call.
	UnknownSeqs []uint64
	// PoisonedMatch is true when the matching store's data is not ready
	// (a miss-dependent store): the load must join the slice.
	PoisonedMatch bool
}

// StoreQueue is an age-ordered store queue with a fully associative search
// (a CAM): the conventional L1 STQ, and — at larger sizes — the "ideal"
// single-level store queue of Figure 6 and the L2 STQ of the hierarchical
// design.
type StoreQueue struct {
	name    string
	entries []StoreEntry // ring, program order
	head    int          // oldest
	count   int
	latency uint64

	searches    uint64 // CAM search operations
	camEntryOps uint64 // per-entry comparisons (power proxy)
	forwards    uint64

	// Reusable result buffers: Search and SquashYoungerThan return slices
	// backed by these, so the steady state allocates nothing. Each is valid
	// only until the next call of the same method on this queue.
	unknownScratch []uint64
	squashScratch  []StoreEntry
}

// NewStoreQueue creates a store queue with capacity entries and the given
// forwarding/search latency in cycles.
func NewStoreQueue(name string, capacity int, latency uint64) *StoreQueue {
	return &StoreQueue{name: name, entries: make([]StoreEntry, capacity), latency: latency}
}

// Latency returns the queue's search/forward latency.
func (q *StoreQueue) Latency() uint64 { return q.latency }

// Len and Cap report occupancy.
func (q *StoreQueue) Len() int { return q.count }
func (q *StoreQueue) Cap() int { return len(q.entries) }

// Full reports whether allocation would fail.
func (q *StoreQueue) Full() bool { return q.count == len(q.entries) }

// Searches and CamEntryOps return CAM activity counts for the power model.
func (q *StoreQueue) Searches() uint64    { return q.searches }
func (q *StoreQueue) CamEntryOps() uint64 { return q.camEntryOps }
func (q *StoreQueue) Forwards() uint64    { return q.forwards }

// Alloc appends a store at the tail, returning the absolute slot index
// (stable until the entry is popped or squashed) and false when full.
func (q *StoreQueue) Alloc(e StoreEntry) (int, bool) {
	if q.Full() {
		return -1, false
	}
	slot := (q.head + q.count) % len(q.entries)
	q.entries[slot] = e
	q.count++
	return slot, true
}

// Locate returns the entry at the given slot if it still holds sequence
// number seq, else nil. This lets a re-executing store find its entry in
// O(1) without a CAM (the hardware keeps the index with the uop).
func (q *StoreQueue) Locate(slot int, seq uint64) *StoreEntry {
	if slot < 0 || slot >= len(q.entries) {
		return nil
	}
	off := (slot - q.head + len(q.entries)) % len(q.entries)
	if off >= q.count {
		return nil
	}
	if q.entries[slot].Seq != seq {
		return nil
	}
	return &q.entries[slot]
}

// at returns the i-th entry from the head (0 = oldest).
func (q *StoreQueue) at(i int) *StoreEntry {
	return &q.entries[(q.head+i)%len(q.entries)]
}

// Head returns the oldest entry, or nil when empty.
func (q *StoreQueue) Head() *StoreEntry {
	if q.count == 0 {
		return nil
	}
	return q.at(0)
}

// PopHead removes and returns the oldest entry.
func (q *StoreQueue) PopHead() (StoreEntry, bool) {
	if q.count == 0 {
		return StoreEntry{}, false
	}
	e := *q.at(0)
	q.head = (q.head + 1) % len(q.entries)
	q.count--
	return e, true
}

// Find returns the entry with sequence number seq, or nil.
func (q *StoreQueue) Find(seq uint64) *StoreEntry {
	for i := 0; i < q.count; i++ {
		if e := q.at(i); e.Seq == seq {
			return e
		}
	}
	return nil
}

// Search performs the CAM lookup a load issues: find the youngest store
// older than loadSeq whose address matches (addr, size); report unknown
// older addresses. This is the power-hungry operation the SRL eliminates
// from the secondary level.
func (q *StoreQueue) Search(addr uint64, size uint8, loadSeq uint64) SearchResult {
	q.searches++
	var res SearchResult
	res.UnknownSeqs = q.unknownScratch[:0]
	for i := q.count - 1; i >= 0; i-- { // youngest first
		e := q.at(i)
		if e.Seq >= loadSeq {
			continue
		}
		q.camEntryOps++
		if !e.AddrKnown {
			res.UnknownOlder = true
			res.UnknownSeqs = append(res.UnknownSeqs, e.Seq)
			continue
		}
		if overlap(e.Addr, e.Size, addr, size) && !res.Hit {
			res.Hit = true
			res.Entry = e
			res.PoisonedMatch = !e.DataReady
			// Older matching stores are shadowed by this one; unknown
			// addresses older than the match can still matter, keep
			// scanning for them only.
		}
	}
	q.unknownScratch = res.UnknownSeqs[:0]
	if len(res.UnknownSeqs) == 0 {
		res.UnknownSeqs = nil
	}
	if res.Hit {
		q.forwards++
	}
	return res
}

// SquashYoungerThan removes all entries strictly younger than seq: an
// entry survives iff its Seq <= seq. This exclusive boundary is the
// repo-wide squash convention — every SquashYoungerThan in this package
// (StoreQueue, SRL, FC, LoadBuffer, OrderTracker) keeps seq itself and
// removes Seq > seq, and a caller restarting at a checkpoint whose first
// sequence number is fromSeq passes fromSeq-1. The removed entries are
// returned (youngest first) so the caller can maintain side structures
// such as the MTB. The returned slice aliases a per-queue scratch buffer
// and is valid only until this queue's next SquashYoungerThan call.
func (q *StoreQueue) SquashYoungerThan(seq uint64) []StoreEntry {
	removed := q.squashScratch[:0]
	for q.count > 0 {
		tail := q.at(q.count - 1)
		if tail.Seq <= seq {
			break
		}
		removed = append(removed, *tail)
		q.count--
	}
	q.squashScratch = removed[:0]
	return removed
}

// --- Membership Test Buffer (hierarchical design) ---

// MTB is the Membership Test Buffer of the hierarchical store queue: a
// counting filter that answers "might the L2 STQ hold a store to this
// address?", saving L2 STQ searches (and their power) on misses.
type MTB struct {
	counters []uint16
	mask     uint64
	probes   uint64
	maybes   uint64
}

// NewMTB creates a membership test buffer with entries counters (power of
// two).
func NewMTB(entries int) *MTB {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("lsq: MTB entries must be a positive power of two")
	}
	return &MTB{counters: make([]uint16, entries), mask: uint64(entries - 1)}
}

func (m *MTB) idx(addr uint64) uint64 { return wordAddr(addr) & m.mask }

// Add records a store address entering the L2 STQ.
func (m *MTB) Add(addr uint64) { m.counters[m.idx(addr)]++ }

// Remove records a store address leaving the L2 STQ.
func (m *MTB) Remove(addr uint64) {
	if m.counters[m.idx(addr)] > 0 {
		m.counters[m.idx(addr)]--
	}
}

// MightContain reports whether the L2 STQ may hold a matching store.
func (m *MTB) MightContain(addr uint64) bool {
	m.probes++
	if m.counters[m.idx(addr)] > 0 {
		m.maybes++
		return true
	}
	return false
}

// Probes and Maybes return filter activity for the power model.
func (m *MTB) Probes() uint64 { return m.probes }
func (m *MTB) Maybes() uint64 { return m.maybes }

// Reset clears all counters (used on full-window squash).
func (m *MTB) Reset() {
	for i := range m.counters {
		m.counters[i] = 0
	}
}
