package lsq

import (
	"testing"
	"testing/quick"
)

func srlEntry(seq, idx uint64, ready bool) StoreEntry {
	return StoreEntry{Seq: seq, Addr: seq * 0x40, Size: 8, AddrKnown: ready, DataReady: ready, SRLIndex: idx}
}

func TestSRLFIFOOrder(t *testing.T) {
	s := NewSRL(8)
	for i := uint64(0); i < 5; i++ {
		idx, ok := s.Alloc(srlEntry(i+1, 10+i, true))
		if !ok || idx != 10+i {
			t.Fatalf("alloc %d: idx=%d ok=%v", i, idx, ok)
		}
	}
	if s.HeadIndex() != 10 || s.Len() != 5 {
		t.Fatalf("head=%d len=%d", s.HeadIndex(), s.Len())
	}
	for i := uint64(0); i < 5; i++ {
		e, ok := s.PopHead()
		if !ok || e.SRLIndex != 10+i {
			t.Fatalf("pop %d: %v %v", i, e.SRLIndex, ok)
		}
	}
	if !s.Empty() {
		t.Fatal("not empty after draining")
	}
}

func TestSRLBaseResetsWhenEmpty(t *testing.T) {
	s := NewSRL(4)
	s.Alloc(srlEntry(1, 5, true))
	s.PopHead()
	// After draining, the next occupancy run starts at a fresh identifier.
	if _, ok := s.Alloc(srlEntry(9, 42, true)); !ok {
		t.Fatal("alloc after drain failed")
	}
	if s.HeadIndex() != 42 {
		t.Fatalf("base did not reset: %d", s.HeadIndex())
	}
}

func TestSRLOutOfOrderAllocPanics(t *testing.T) {
	s := NewSRL(4)
	s.Alloc(srlEntry(1, 10, true))
	defer func() {
		if recover() == nil {
			t.Fatal("identifier gap did not panic")
		}
	}()
	s.Alloc(srlEntry(2, 12, true)) // gap: 11 skipped
}

func TestSRLFull(t *testing.T) {
	s := NewSRL(2)
	s.Alloc(srlEntry(1, 0, true))
	s.Alloc(srlEntry(2, 1, true))
	if _, ok := s.Alloc(srlEntry(3, 2, true)); ok {
		t.Fatal("alloc on full SRL succeeded")
	}
}

func TestSRLFill(t *testing.T) {
	s := NewSRL(4)
	s.Alloc(srlEntry(1, 0, true))
	e := srlEntry(2, 1, false) // reserved slot of a miss-dependent store
	s.Alloc(e)
	if s.Head().DataReady != true {
		t.Fatal("independent head not ready")
	}
	if got := s.Get(1); got == nil || got.DataReady {
		t.Fatal("reserved slot state wrong")
	}
	if !s.Fill(1, 0xBEEF, 8) {
		t.Fatal("fill failed")
	}
	got := s.Get(1)
	if !got.DataReady || got.Addr != 0xBEEF || !got.AddrKnown {
		t.Fatalf("fill did not apply: %+v", got)
	}
	if s.Fill(99, 0, 8) {
		t.Fatal("fill of a non-resident index succeeded")
	}
}

func TestSRLGetBounds(t *testing.T) {
	s := NewSRL(4)
	s.Alloc(srlEntry(1, 7, true))
	if s.Get(6) != nil || s.Get(8) != nil {
		t.Fatal("out-of-range Get returned an entry")
	}
	if s.Get(7) == nil {
		t.Fatal("resident index missed")
	}
}

func TestSRLSquash(t *testing.T) {
	s := NewSRL(8)
	for i := uint64(0); i < 5; i++ {
		s.Alloc(srlEntry(i+1, i, true))
	}
	removed := s.SquashYoungerThan(2)
	if len(removed) != 3 {
		t.Fatalf("removed %d", len(removed))
	}
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
	// Identifier continuity resumes where the squash cut.
	if _, ok := s.Alloc(srlEntry(3, 2, true)); !ok {
		t.Fatal("post-squash realloc failed")
	}
}

func TestSRLIndexedRead(t *testing.T) {
	s := NewSRL(4)
	s.Alloc(srlEntry(1, 0, true))
	if e := s.IndexedRead(0); e == nil || e.Seq != 1 {
		t.Fatal("indexed read failed")
	}
	if s.IndexedReads() != 1 {
		t.Fatalf("indexed reads %d", s.IndexedReads())
	}
}

// Property: after any valid sequence of allocs/pops/squashes, entries pop
// in strictly ascending identifier order and Get(idx) agrees with the
// entry's own identifier.
func TestSRLOrderProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := NewSRL(32)
		next := uint64(100)
		var lastPopped uint64
		seq := uint64(0)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // alloc
				seq++
				if !s.Full() {
					s.Alloc(StoreEntry{Seq: seq, Addr: seq * 8, AddrKnown: true, DataReady: true, SRLIndex: next})
					next++
				}
			case 2: // pop
				if e, ok := s.PopHead(); ok {
					if lastPopped != 0 && e.SRLIndex <= lastPopped {
						return false
					}
					lastPopped = e.SRLIndex
				}
			case 3: // indexed get consistency
				if s.Len() > 0 {
					idx := s.HeadIndex() + uint64(int(op)%s.Len())
					if e := s.Get(idx); e == nil || e.SRLIndex != idx {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
