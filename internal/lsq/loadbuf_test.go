package lsq

import (
	"testing"
	"testing/quick"

	"srlproc/internal/xrand"
)

func ld(seq, addr, nearest, fwd uint64, ckpt int) LoadEntry {
	return LoadEntry{Seq: seq, PC: seq * 4, Addr: addr, Size: 8, NearestStoreID: nearest, FwdStoreID: fwd, Ckpt: ckpt}
}

func TestStoreCheckDetectsMissedForward(t *testing.T) {
	b := NewLoadBuffer(64, 4, OverflowViolate, 0)
	// Load (nearest store id 10) read memory; store id 8 (older) to the
	// same word later resolves: the load should have seen it — violation.
	b.Insert(ld(100, 0x100, 10, NoFwd, 3))
	v, found := b.StoreCheck(0x100, 8, 8)
	if !found || v.LoadSeq != 100 || v.Ckpt != 3 {
		t.Fatalf("violation not detected: %+v %v", v, found)
	}
}

func TestStoreCheckForwardedFromThisStore(t *testing.T) {
	b := NewLoadBuffer(64, 4, OverflowViolate, 0)
	b.Insert(ld(100, 0x100, 10, 8, 3)) // forwarded from store 8
	if _, found := b.StoreCheck(0x100, 8, 8); found {
		t.Fatal("correctly-forwarded load flagged")
	}
}

func TestStoreCheckForwardedFromYounger(t *testing.T) {
	b := NewLoadBuffer(64, 4, OverflowViolate, 0)
	b.Insert(ld(100, 0x100, 10, 9, 3)) // forwarded from store 9 (younger than 8)
	if _, found := b.StoreCheck(0x100, 8, 8); found {
		t.Fatal("load shadowed by a younger store was flagged")
	}
}

func TestStoreCheckLoadOlderThanStore(t *testing.T) {
	b := NewLoadBuffer(64, 4, OverflowViolate, 0)
	b.Insert(ld(100, 0x100, 5, NoFwd, 3)) // nearest store 5 < store id 8
	if _, found := b.StoreCheck(0x100, 8, 8); found {
		t.Fatal("load older than the store was flagged")
	}
}

func TestStoreCheckReturnsOldestViolator(t *testing.T) {
	b := NewLoadBuffer(64, 4, OverflowViolate, 0)
	b.Insert(ld(200, 0x100, 10, NoFwd, 4))
	b.Insert(ld(100, 0x100, 10, NoFwd, 3))
	v, found := b.StoreCheck(0x100, 8, 8)
	if !found || v.LoadSeq != 100 {
		t.Fatalf("oldest violator not chosen: %+v", v)
	}
}

func TestStoreCheckDifferentWordIgnored(t *testing.T) {
	b := NewLoadBuffer(64, 4, OverflowViolate, 0)
	b.Insert(ld(100, 0x108, 10, NoFwd, 3))
	if _, found := b.StoreCheck(0x100, 8, 8); found {
		t.Fatal("different word flagged")
	}
}

func TestSnoopCheckAnyMatch(t *testing.T) {
	b := NewLoadBuffer(64, 4, OverflowViolate, 0)
	b.Insert(ld(100, 0x100, 10, 9, 3))
	v, found := b.SnoopCheck(0x100)
	if !found || !v.External || v.Ckpt != 3 {
		t.Fatalf("snoop check: %+v %v", v, found)
	}
	if _, found := b.SnoopCheck(0x900); found {
		t.Fatal("snoop matched an absent address")
	}
}

func TestOverflowViolatePolicy(t *testing.T) {
	b := NewLoadBuffer(8, 2, OverflowViolate, 0) // 4 sets, 2-way
	// Fill one set (same word => same set).
	if !b.Insert(ld(1, 0x100, 1, NoFwd, 0)) || !b.Insert(ld(2, 0x100, 1, NoFwd, 0)) {
		t.Fatal("initial inserts failed")
	}
	if b.Insert(ld(3, 0x100, 1, NoFwd, 0)) {
		t.Fatal("overflow insert succeeded under violate policy")
	}
	if b.Overflows() != 1 {
		t.Fatalf("overflows %d", b.Overflows())
	}
}

func TestOverflowVictimPolicy(t *testing.T) {
	b := NewLoadBuffer(8, 2, OverflowVictim, 2)
	b.Insert(ld(1, 0x100, 1, NoFwd, 0))
	b.Insert(ld(2, 0x100, 1, NoFwd, 0))
	if !b.Insert(ld(3, 0x100, 1, NoFwd, 0)) {
		t.Fatal("victim buffer rejected an overflow")
	}
	// Victim entries are still visible to checks.
	if _, found := b.SnoopCheck(0x100); !found {
		t.Fatal("victim entry invisible to snoops")
	}
	b.Insert(ld(4, 0x100, 1, NoFwd, 0))
	if b.Insert(ld(5, 0x100, 1, NoFwd, 0)) {
		t.Fatal("full victim buffer accepted another entry")
	}
}

func TestCommitCkptBulkRemoval(t *testing.T) {
	b := NewLoadBuffer(64, 4, OverflowViolate, 0)
	b.Insert(ld(1, 0x100, 1, NoFwd, 7))
	b.Insert(ld(2, 0x200, 1, NoFwd, 7))
	b.Insert(ld(3, 0x300, 1, NoFwd, 8))
	if n := b.CommitCkpt(7); n != 2 {
		t.Fatalf("committed %d", n)
	}
	if b.Len() != 1 {
		t.Fatalf("len %d", b.Len())
	}
	if _, found := b.SnoopCheck(0x100); found {
		t.Fatal("committed load still snoopable")
	}
}

func TestSquashYoungerThanLoads(t *testing.T) {
	b := NewLoadBuffer(64, 4, OverflowViolate, 0)
	b.Insert(ld(10, 0x100, 1, NoFwd, 0))
	b.Insert(ld(20, 0x200, 1, NoFwd, 0))
	if n := b.SquashYoungerThan(15); n != 1 {
		t.Fatalf("squashed %d", n)
	}
	if _, found := b.SnoopCheck(0x200); found {
		t.Fatal("squashed load still present")
	}
}

func TestFullyAssociativeMode(t *testing.T) {
	// assoc >= capacity degrades to one fully associative set (the
	// conventional load queue of the baseline designs).
	b := NewLoadBuffer(16, 16, OverflowViolate, 0)
	for i := uint64(0); i < 16; i++ {
		if !b.Insert(ld(i+1, 0x100, 1, NoFwd, 0)) {
			t.Fatalf("insert %d failed in fully associative mode", i)
		}
	}
	if b.Insert(ld(99, 0x100, 1, NoFwd, 0)) {
		t.Fatal("capacity exceeded")
	}
}

// Property: StoreCheck agrees with a naive reference model over random
// load/store interleavings.
func TestStoreCheckMatchesReferenceModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		b := NewLoadBuffer(256, 8, OverflowVictim, 64)
		type rec struct {
			e  LoadEntry
			ok bool
		}
		var loads []rec
		for i := 0; i < 60; i++ {
			e := ld(uint64(i+1), uint64(rng.Intn(8))*8, uint64(rng.Intn(20)), NoFwd, i/10)
			if rng.Bool(0.5) {
				e.FwdStoreID = uint64(rng.Intn(20))
			}
			ok := b.Insert(e)
			loads = append(loads, rec{e, ok})
		}
		for trial := 0; trial < 20; trial++ {
			addr := uint64(rng.Intn(8)) * 8
			storeIdx := uint64(rng.Intn(20))
			// Reference: oldest inserted load with same word, nearest >=
			// storeIdx, and fwd older than storeIdx (or none).
			var want *LoadEntry
			for i := range loads {
				if !loads[i].ok {
					continue
				}
				e := &loads[i].e
				if e.Addr>>3 != addr>>3 || e.NearestStoreID < storeIdx {
					continue
				}
				if e.FwdStoreID != NoFwd && e.FwdStoreID >= storeIdx {
					continue
				}
				if want == nil || e.Seq < want.Seq {
					want = e
				}
			}
			v, found := b.StoreCheck(addr, 8, storeIdx)
			if (want != nil) != found {
				return false
			}
			if found && v.LoadSeq != want.Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
