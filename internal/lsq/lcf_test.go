package lsq

import (
	"testing"
	"testing/quick"

	"srlproc/internal/xrand"
)

func TestLCFBasic(t *testing.T) {
	f := NewLCF(256, Hash3PAX, 6)
	if may, _ := f.Probe(0x100); may {
		t.Fatal("empty filter matched")
	}
	if !f.Inc(0x100, 42) {
		t.Fatal("inc failed")
	}
	may, idx := f.Probe(0x100)
	if !may || idx != 42 {
		t.Fatalf("probe: may=%v idx=%d", may, idx)
	}
	f.Dec(0x100)
	if may, _ := f.Probe(0x100); may {
		t.Fatal("decremented filter still matches")
	}
}

func TestLCFLastIndexTracksLatest(t *testing.T) {
	f := NewLCF(256, HashLAB, 6)
	f.Inc(0x100, 1)
	f.Inc(0x100, 9)
	if _, idx := f.Probe(0x100); idx != 9 {
		t.Fatalf("last index %d, want the most recent insertion", idx)
	}
}

func TestLCFCounterSaturation(t *testing.T) {
	f := NewLCF(64, HashLAB, 2) // 2-bit counters saturate at 3
	for i := 0; i < 3; i++ {
		if !f.Inc(0x100, uint64(i)) {
			t.Fatalf("inc %d refused", i)
		}
	}
	if f.Inc(0x100, 99) {
		t.Fatal("saturated counter accepted an increment")
	}
	if f.Overflows() != 1 {
		t.Fatalf("overflows %d", f.Overflows())
	}
}

func TestLCFDecFloorsAtZero(t *testing.T) {
	f := NewLCF(64, HashLAB, 6)
	f.Dec(0x100) // nothing to remove
	if may, _ := f.Probe(0x100); may {
		t.Fatal("underflowed counter nonzero")
	}
	f.Inc(0x100, 1)
	if may, _ := f.Probe(0x100); !may {
		t.Fatal("counter lost after prior underflow")
	}
}

func TestLCFHashesDiffer(t *testing.T) {
	lab := NewLCF(256, HashLAB, 6)
	pax := NewLCF(256, Hash3PAX, 6)
	// Two addresses that collide under LAB (equal low word-address bits)
	// but not under 3-PAX (the differing middle bits fold into the index).
	a := uint64(0x0000_1000)
	b := uint64(0x0000_5000)
	lab.Inc(a, 1)
	pax.Inc(a, 1)
	mayLab, _ := lab.Probe(b)
	mayPax, _ := pax.Probe(b)
	if !mayLab {
		t.Fatal("LAB should alias equal-low-bits addresses")
	}
	if mayPax {
		t.Fatal("3-PAX should separate these addresses")
	}
}

func TestLCFPeekCountsNothing(t *testing.T) {
	f := NewLCF(64, HashLAB, 6)
	f.Inc(0x100, 5)
	before := f.Probes()
	may, idx := f.Peek(0x100)
	if !may || idx != 5 {
		t.Fatal("peek result wrong")
	}
	if f.Probes() != before {
		t.Fatal("peek counted as a probe")
	}
}

func TestLCFReset(t *testing.T) {
	f := NewLCF(64, HashLAB, 6)
	f.Inc(0x100, 1)
	f.Reset()
	if may, _ := f.Probe(0x100); may {
		t.Fatal("reset did not clear")
	}
}

func TestLCFSizeBytes(t *testing.T) {
	// The paper's 2K-entry LCF is 4KB (2 bytes per entry).
	if got := NewLCF(2048, Hash3PAX, 6).SizeBytes(); got != 4096 {
		t.Fatalf("size %d", got)
	}
}

// Property: a zero counter is a GUARANTEE of no matching store (no false
// negatives) — the safety property loads rely on. Model the SRL contents as
// a multiset and compare.
func TestLCFNoFalseNegativesProperty(t *testing.T) {
	f := func(seed uint64, opsRaw []uint8) bool {
		lcf := NewLCF(128, Hash3PAX, 6)
		rng := xrand.New(seed)
		resident := map[uint64]int{} // address -> count in SRL
		for _, op := range opsRaw {
			addr := uint64(rng.Intn(64)) * 8
			if op%2 == 0 {
				if lcf.Inc(addr, 0) {
					resident[addr]++
				}
			} else if resident[addr] > 0 {
				lcf.Dec(addr)
				resident[addr]--
			}
		}
		for addr, n := range resident {
			if n > 0 {
				if may, _ := lcf.Probe(addr); !may {
					return false // false negative: unsafe
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
