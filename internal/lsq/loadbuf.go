package lsq

// LoadEntry is one executed load's record in the (secondary) load buffer.
type LoadEntry struct {
	Seq  uint64
	PC   uint64
	Addr uint64
	Size uint8
	// NearestStoreID is the SRL virtual index of the last store allocated
	// before the load in program order: a single magnitude comparison
	// against a store's index determines their relative program order
	// (Section 3, "Enforcing load-store dependence").
	NearestStoreID uint64
	// FwdStoreID is the SRL index of the store that forwarded data to the
	// load, or NoFwd if the load read the cache/memory.
	FwdStoreID uint64
	Ckpt       int
}

// NoFwd marks a load that did not forward from any store.
const NoFwd = ^uint64(0)

// Violation describes a detected memory ordering problem.
type Violation struct {
	LoadSeq  uint64
	LoadPC   uint64
	Ckpt     int // checkpoint to restart from
	External bool
}

// OverflowPolicy selects what happens when a load buffer set is full
// (Section 3 offers both options).
type OverflowPolicy int

const (
	// OverflowVictim spills to a small fully associative victim buffer.
	OverflowVictim OverflowPolicy = iota
	// OverflowViolate takes a memory ordering violation on the overflow.
	OverflowViolate
)

// LoadBuffer is the paper's secondary load buffer (Section 3): a
// set-associative, cache-organised structure holding the addresses of all
// loads completed in the shadow of a miss. Unlike a conventional load queue
// it is not program-ordered and is never searched with a full CAM: internal
// store drains and external snoops index one set; checkpoint bits allow
// bulk removal; store identifiers give relative age by magnitude
// comparison. Multiple loads to the same address occupy different ways of
// the same set.
//
// The same structure also models the conventional fully associative load
// queue (associativity = capacity, one set) for the baseline and
// hierarchical designs; the power model charges that configuration CAM
// costs.
type LoadBuffer struct {
	sets   [][]LoadEntry
	assoc  int
	nsets  int
	policy OverflowPolicy
	victim []LoadEntry
	vcap   int

	count     int
	lookups   uint64
	entryCmps uint64
	overflows uint64
	inserts   uint64
}

// NewLoadBuffer creates a load buffer with the given total capacity and
// associativity. If assoc >= capacity the buffer is one fully associative
// set (a conventional load queue). victimCap sizes the overflow victim
// buffer when policy is OverflowVictim.
func NewLoadBuffer(capacity, assoc int, policy OverflowPolicy, victimCap int) *LoadBuffer {
	if assoc >= capacity {
		assoc = capacity
	}
	nsets := capacity / assoc
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("lsq: load buffer set count must be a positive power of two")
	}
	b := &LoadBuffer{
		sets: make([][]LoadEntry, nsets), assoc: assoc, nsets: nsets,
		policy: policy, vcap: victimCap,
	}
	for i := range b.sets {
		b.sets[i] = make([]LoadEntry, 0, assoc)
	}
	return b
}

// Len returns the number of resident entries.
func (b *LoadBuffer) Len() int { return b.count }

// Lookups and EntryCompares return search activity for the power model.
func (b *LoadBuffer) Lookups() uint64       { return b.lookups }
func (b *LoadBuffer) EntryCompares() uint64 { return b.entryCmps }

// Overflows returns how many inserts hit a full set.
func (b *LoadBuffer) Overflows() uint64 { return b.overflows }

// set hashes the word address over the sets. The upper bits are folded in
// so strided access patterns (unit-stride streams touch every 8th word)
// spread across all sets instead of aliasing onto a power-of-two subset.
func (b *LoadBuffer) set(addr uint64) int {
	w := wordAddr(addr)
	return int((w ^ (w >> 7) ^ (w >> 14)) % uint64(b.nsets))
}

// Insert records an executed load. It returns ok=false only under
// OverflowViolate when the set (and victim space) is full — the caller must
// treat it as an ordering violation and restart from the load's checkpoint.
func (b *LoadBuffer) Insert(e LoadEntry) bool {
	b.inserts++
	si := b.set(e.Addr)
	if len(b.sets[si]) < b.assoc {
		b.sets[si] = append(b.sets[si], e)
		b.count++
		return true
	}
	b.overflows++
	if b.policy == OverflowVictim && len(b.victim) < b.vcap {
		b.victim = append(b.victim, e)
		b.count++
		return true
	}
	return false
}

// scan calls fn over every entry matching addr by word.
func (b *LoadBuffer) scan(addr uint64, fn func(*LoadEntry)) {
	w := wordAddr(addr)
	set := b.sets[b.set(addr)]
	for i := range set {
		b.entryCmps++
		if wordAddr(set[i].Addr) == w {
			fn(&set[i])
		}
	}
	for i := range b.victim {
		b.entryCmps++
		if wordAddr(b.victim[i].Addr) == w {
			fn(&b.victim[i])
		}
	}
}

// StoreCheck is the lookup an internal store performs when it completes (or
// drains from the SRL): find loads younger than the store (load's
// NearestStoreID >= store's index) that consumed data from an older source
// (FwdStoreID < store's index, including NoFwd... which is treated as
// "memory", i.e. older than every store). The oldest such load is a memory
// dependence violation; execution restarts from its checkpoint.
func (b *LoadBuffer) StoreCheck(addr uint64, size uint8, storeIdx uint64) (Violation, bool) {
	b.lookups++
	var v Violation
	found := false
	b.scan(addr, func(e *LoadEntry) {
		if e.NearestStoreID < storeIdx {
			return // load is older than the store: no dependence
		}
		got := e.FwdStoreID
		violated := false
		if got == NoFwd {
			violated = true // load read memory but should have seen this store
		} else if got < storeIdx {
			violated = true // load forwarded from an older store
		}
		if violated && (!found || e.Seq < v.LoadSeq) {
			found = true
			v = Violation{LoadSeq: e.Seq, LoadPC: e.PC, Ckpt: e.Ckpt}
		}
	})
	return v, found
}

// SnoopCheck is the lookup an external store performs: any matching load is
// a consistency violation; restart from the oldest matching load's
// checkpoint (no order check is needed — Section 3).
func (b *LoadBuffer) SnoopCheck(addr uint64) (Violation, bool) {
	b.lookups++
	var v Violation
	found := false
	b.scan(addr, func(e *LoadEntry) {
		if !found || e.Seq < v.LoadSeq {
			found = true
			v = Violation{LoadSeq: e.Seq, LoadPC: e.PC, Ckpt: e.Ckpt, External: true}
		}
	})
	return v, found
}

// CommitCkpt bulk-removes all entries belonging to checkpoint ckpt (the
// checkpoint committed; its loads are architectural). This is the
// checkpoint-bits bulk reset of Section 3.
func (b *LoadBuffer) CommitCkpt(ckpt int) int {
	return b.removeIf(func(e *LoadEntry) bool { return e.Ckpt == ckpt })
}

// SquashYoungerThan removes entries of loads strictly younger than seq: an
// entry survives iff its Seq <= seq. This is the repo-wide squash
// convention (see StoreQueue.SquashYoungerThan); callers restarting at a
// checkpoint whose first sequence number is fromSeq pass fromSeq-1.
func (b *LoadBuffer) SquashYoungerThan(seq uint64) int {
	return b.removeIf(func(e *LoadEntry) bool { return e.Seq > seq })
}

// ForEach visits every resident entry (sets in index order, then the
// victim buffer). For the differential checker's monotonicity sweep.
func (b *LoadBuffer) ForEach(fn func(e *LoadEntry)) {
	for si := range b.sets {
		set := b.sets[si]
		for i := range set {
			fn(&set[i])
		}
	}
	for i := range b.victim {
		fn(&b.victim[i])
	}
}

func (b *LoadBuffer) removeIf(pred func(*LoadEntry) bool) int {
	removed := 0
	for si := range b.sets {
		set := b.sets[si]
		out := set[:0]
		for i := range set {
			if pred(&set[i]) {
				removed++
			} else {
				out = append(out, set[i])
			}
		}
		b.sets[si] = out
	}
	vout := b.victim[:0]
	for i := range b.victim {
		if pred(&b.victim[i]) {
			removed++
		} else {
			vout = append(vout, b.victim[i])
		}
	}
	b.victim = vout
	b.count -= removed
	return removed
}
