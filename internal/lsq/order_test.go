package lsq

import (
	"testing"
	"testing/quick"
)

func TestOrderTrackerBasics(t *testing.T) {
	o := NewOrderTracker()
	if !o.AllLoadsOlderThanDone(100) {
		t.Fatal("empty tracker should pass")
	}
	o.LoadAllocated(10)
	o.LoadAllocated(20)
	if o.AllLoadsOlderThanDone(15) {
		t.Fatal("outstanding load 10 should gate seq 15")
	}
	if !o.AllLoadsOlderThanDone(10) {
		t.Fatal("load 10 itself is not older than seq 10")
	}
	o.LoadCompleted(10)
	if !o.AllLoadsOlderThanDone(15) {
		t.Fatal("completed load still gates")
	}
	if o.AllLoadsOlderThanDone(25) {
		t.Fatal("load 20 still outstanding")
	}
}

func TestOrderTrackerSquash(t *testing.T) {
	o := NewOrderTracker()
	o.LoadAllocated(10)
	o.LoadAllocated(20)
	o.SquashYoungerThan(15)
	if o.AllLoadsOlderThanDone(25) {
		t.Fatal("load 10 survived the squash and must gate")
	}
	o.LoadCompleted(10)
	if !o.AllLoadsOlderThanDone(25) {
		t.Fatal("squashed load 20 still gates")
	}
}

func TestOrderTrackerReplayDuplicate(t *testing.T) {
	// A load allocated, squashed, and allocated again (a checkpoint
	// restart) must behave like a single outstanding load — the bug class
	// that deadlocked the SRL drain.
	o := NewOrderTracker()
	o.LoadAllocated(10)
	o.SquashYoungerThan(5) // squashes 10
	o.LoadAllocated(10)    // replayed
	if o.AllLoadsOlderThanDone(15) {
		t.Fatal("replayed load not outstanding")
	}
	o.LoadCompleted(10)
	if !o.AllLoadsOlderThanDone(15) {
		t.Fatal("replayed load stuck after completion")
	}
	if o.Outstanding() != 0 {
		t.Fatalf("outstanding %d", o.Outstanding())
	}
}

func TestOrderTrackerReset(t *testing.T) {
	o := NewOrderTracker()
	o.LoadAllocated(10)
	o.Reset()
	if !o.AllLoadsOlderThanDone(100) || o.Outstanding() != 0 {
		t.Fatal("reset did not clear")
	}
}

// Property: the tracker's gate answer always equals the reference "min of
// the outstanding set > seq" under random alloc/complete/squash traffic,
// including replays of the same sequence numbers.
func TestOrderTrackerMatchesReference(t *testing.T) {
	f := func(ops []uint16) bool {
		o := NewOrderTracker()
		ref := map[uint64]bool{}
		for _, op := range ops {
			seq := uint64(op%64) + 1
			switch (op / 64) % 3 {
			case 0:
				o.LoadAllocated(seq)
				ref[seq] = true
			case 1:
				o.LoadCompleted(seq)
				delete(ref, seq)
			case 2:
				o.SquashYoungerThan(seq)
				for s := range ref {
					if s > seq {
						delete(ref, s)
					}
				}
			}
			// Compare on a probe point.
			probe := uint64(op%97) + 1
			want := true
			for s := range ref {
				if s < probe {
					want = false
					break
				}
			}
			if o.AllLoadsOlderThanDone(probe) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
