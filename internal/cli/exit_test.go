package cli

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestExitCode(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want int
	}{
		{"success", nil, OK},
		{"interrupt", context.Canceled, Interrupt},
		{"wrapped interrupt", fmt.Errorf("fig2: %w", context.Canceled), Interrupt},
		{"timeout", context.DeadlineExceeded, Timeout},
		{"wrapped timeout", fmt.Errorf("point: %w", context.DeadlineExceeded), Timeout},
		{"generic", errors.New("boom"), Err},
	} {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
	// The codes are distinct: a caller (CI, scripts) can tell an
	// interrupted run from a timed-out one from a failed one.
	seen := map[int]bool{}
	for _, c := range []int{OK, Err, Usage, Timeout, Interrupt} {
		if seen[c] {
			t.Fatalf("duplicate exit code %d", c)
		}
		seen[c] = true
	}
}
