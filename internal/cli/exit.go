// Package cli holds the conventions shared by srlproc's command-line
// binaries: process exit codes and their mapping from run errors.
//
// The binaries follow the `main() { os.Exit(run()) }` shape so that every
// return path unwinds normally — signal.NotifyContext stop functions and
// other defers run before the process exits. log.Fatal and bare os.Exit
// calls inside the run skip defers and are therefore avoided.
package cli

import (
	"context"
	"errors"
)

// Exit codes. Timeout follows coreutils timeout(1); Interrupt is the
// shell convention 128+SIGINT.
const (
	OK        = 0
	Err       = 1
	Usage     = 2
	Timeout   = 124
	Interrupt = 130
)

// ExitCode maps a run error to the process exit code: nil is success, a
// cancelled context is an interrupt (the only caller of cancel is the
// signal handler), an exceeded deadline is a timeout, anything else is a
// generic error.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, context.Canceled):
		return Interrupt
	case errors.Is(err, context.DeadlineExceeded):
		return Timeout
	default:
		return Err
	}
}
