package trace

import (
	"bytes"
	"io"
	"testing"

	"srlproc/internal/isa"
)

func TestTraceRoundTrip(t *testing.T) {
	g := NewGenerator(ProfileFor(SINT2K), 5)
	var buf bytes.Buffer
	if err := Record(&buf, g, 2000); err != nil {
		t.Fatal(err)
	}

	// Replaying must reproduce the identical stream.
	g2 := NewGenerator(ProfileFor(SINT2K), 5)
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		want := g2.Next()
		got := r.Next()
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestTraceLoopsWithDenseSeqs(t *testing.T) {
	g := NewGenerator(ProfileFor(PROD), 3)
	var buf bytes.Buffer
	if err := Record(&buf, g, 100); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 350; i++ { // 3.5 passes
		u := r.Next()
		if u.Seq != last+1 {
			t.Fatalf("seq %d after %d at record %d", u.Seq, last, i)
		}
		last = u.Seq
		// MemSeq must stay behind the load that references it across
		// loop boundaries.
		if u.MemSeq != 0 && u.MemSeq >= u.Seq {
			t.Fatalf("record %d: MemSeq %d >= Seq %d", i, u.MemSeq, u.Seq)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestTraceBadHeaderRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(isa.Uop{Seq: 1, Class: isa.IntALU})
	w.Flush()
	b := buf.Bytes()
	b[4] = 99 // corrupt version
	if _, err := NewReader(bytes.NewReader(b)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestTraceTruncatedRecordLoops(t *testing.T) {
	g := NewGenerator(ProfileFor(WS), 7)
	var buf bytes.Buffer
	if err := Record(&buf, g, 10); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record: the reader treats it as end-of-trace and loops.
	b := buf.Bytes()[:buf.Len()-13]
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 30; i++ {
		u := r.Next()
		if u.Seq != last+1 {
			t.Fatalf("seq gap after truncation: %d -> %d", last, u.Seq)
		}
		last = u.Seq
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := w.Write(isa.Uop{Seq: uint64(i + 1), Class: isa.IntALU}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 7 {
		t.Fatalf("count %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 8+7*recordBytes {
		t.Fatalf("file size %d", buf.Len())
	}
}

// failingWriter errors after n bytes, to exercise writer error latching.
type failingWriter struct{ left int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, io.ErrClosedPipe
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, io.ErrClosedPipe
	}
	return n, nil
}

func TestWriterLatchesErrors(t *testing.T) {
	w, err := NewWriter(&failingWriter{left: 8 + recordBytes})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the buffer far enough to force a flush failure eventually.
	var firstErr error
	for i := 0; i < 10_000; i++ {
		if err := w.Write(isa.Uop{Seq: uint64(i + 1)}); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		firstErr = w.Flush()
	}
	if firstErr == nil {
		t.Fatal("no error surfaced from failing writer")
	}
}
