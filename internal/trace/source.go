package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"srlproc/internal/isa"
)

// Source supplies the simulator's dynamic micro-op stream in program order.
// Generator implements it with synthetic workloads; Reader implements it
// over recorded trace files, so real traces (converted to this format) can
// drive the machine instead.
type Source interface {
	Next() isa.Uop
}

// Generator implements Source.
var _ Source = (*Generator)(nil)

// Trace file format: a fixed magic/version header followed by fixed-width
// little-endian records. The format is deliberately dumb — one 44-byte
// record per micro-op — so that converters from other simulators' trace
// formats are trivial to write.
const (
	traceMagic   = uint32(0x53524C54) // "SRLT"
	traceVersion = uint32(1)
	recordBytes  = 44

	// Ordering-flag bits in record byte 38 (previously reserved, so
	// version-1 traces written before the flags existed read back as
	// plain loads and stores).
	flagAcq = 1 << 0
	flagRel = 1 << 1
)

// Writer serialises a micro-op stream to a trace file.
type Writer struct {
	w   *bufio.Writer
	n   uint64
	err error
}

// NewWriter writes a trace header to w and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one micro-op record.
func (t *Writer) Write(u isa.Uop) error {
	if t.err != nil {
		return t.err
	}
	var rec [recordBytes]byte
	binary.LittleEndian.PutUint64(rec[0:], u.Seq)
	binary.LittleEndian.PutUint64(rec[8:], u.PC)
	binary.LittleEndian.PutUint64(rec[16:], u.Addr)
	binary.LittleEndian.PutUint64(rec[24:], u.MemSeq)
	rec[32] = byte(u.Class)
	rec[33] = byte(u.Src1)
	rec[34] = byte(u.Src2)
	rec[35] = byte(u.Dst)
	rec[36] = u.Size
	if u.Taken {
		rec[37] = 1
	}
	// rec[38] is the ordering-flag byte; rec[39:44] stay reserved. Old
	// readers ignore the byte and old traces carry zeros, so the format
	// version is unchanged.
	if u.Acq {
		rec[38] |= flagAcq
	}
	if u.Rel {
		rec[38] |= flagRel
	}
	_, t.err = t.w.Write(rec[:])
	if t.err == nil {
		t.n++
	}
	return t.err
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.n }

// Flush flushes buffered records to the underlying writer.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Record captures n micro-ops from src into w (a convenience for building
// trace files from the synthetic generators).
func Record(w io.Writer, src Source, n uint64) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		if err := tw.Write(src.Next()); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// WriteRecords serialises a complete micro-op slice as one trace file — the
// writer the divergence minimizer uses to emit replayable traces.
func WriteRecords(w io.Writer, uops []isa.Uop) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for _, u := range uops {
		if err := tw.Write(u); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// ReadRecords parses a whole trace file into memory (one pass, no looping) —
// the counterpart of WriteRecords for replaying minimized divergence traces.
func ReadRecords(rd io.Reader) ([]isa.Uop, error) {
	br := bufio.NewReaderSize(rd, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", got)
	}
	if got := binary.LittleEndian.Uint32(hdr[4:]); got != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", got)
	}
	var uops []isa.Uop
	for {
		var rec [recordBytes]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				return uops, nil
			}
			return nil, fmt.Errorf("trace: reading record %d: %w", len(uops), err)
		}
		uops = append(uops, isa.Uop{
			Seq:    binary.LittleEndian.Uint64(rec[0:]),
			PC:     binary.LittleEndian.Uint64(rec[8:]),
			Addr:   binary.LittleEndian.Uint64(rec[16:]),
			MemSeq: binary.LittleEndian.Uint64(rec[24:]),
			Class:  isa.Class(rec[32]),
			Src1:   int8(rec[33]),
			Src2:   int8(rec[34]),
			Dst:    int8(rec[35]),
			Size:   rec[36],
			Taken:  rec[37] != 0,
			Acq:    rec[38]&flagAcq != 0,
			Rel:    rec[38]&flagRel != 0,
		})
	}
}

// Reader replays a recorded trace as a Source. When the trace is exhausted
// it loops from the beginning (re-numbering sequence numbers so they stay
// dense and monotonic), because the simulator expects an unbounded stream;
// looping requires the underlying reader to be an io.ReadSeeker.
type Reader struct {
	rs      io.ReadSeeker
	br      *bufio.Reader
	seqBase uint64
	lastSeq uint64
	seqSpan uint64 // sequence numbers consumed by one full pass
	err     error
}

// NewReader validates the header and returns a replaying Source.
func NewReader(rs io.ReadSeeker) (*Reader, error) {
	r := &Reader{rs: rs}
	if err := r.rewind(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reader) rewind() error {
	if _, err := r.rs.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r.br = bufio.NewReaderSize(r.rs, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != traceMagic {
		return fmt.Errorf("trace: bad magic %#x", got)
	}
	if got := binary.LittleEndian.Uint32(hdr[4:]); got != traceVersion {
		return fmt.Errorf("trace: unsupported version %d", got)
	}
	return nil
}

// Err returns the first error encountered while replaying (io errors make
// Next return harmless no-op micro-ops rather than panicking mid-run).
func (r *Reader) Err() error { return r.err }

// Next implements Source.
func (r *Reader) Next() isa.Uop {
	if r.err != nil {
		r.lastSeq++
		return isa.Uop{Seq: r.lastSeq, Class: isa.IntALU, Src1: isa.NoReg, Src2: isa.NoReg, Dst: 0}
	}
	var rec [recordBytes]byte
	if _, err := io.ReadFull(r.br, rec[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// Loop: replay from the start with shifted sequence numbers.
			r.seqBase = r.lastSeq
			r.seqSpan = 0
			if err := r.rewind(); err != nil {
				r.err = err
				return r.Next()
			}
			return r.Next()
		}
		r.err = err
		return r.Next()
	}
	u := isa.Uop{
		Seq:    binary.LittleEndian.Uint64(rec[0:]) + r.seqBase,
		PC:     binary.LittleEndian.Uint64(rec[8:]),
		Addr:   binary.LittleEndian.Uint64(rec[16:]),
		MemSeq: binary.LittleEndian.Uint64(rec[24:]),
		Class:  isa.Class(rec[32]),
		Src1:   int8(rec[33]),
		Src2:   int8(rec[34]),
		Dst:    int8(rec[35]),
		Size:   rec[36],
		Taken:  rec[37] != 0,
		Acq:    rec[38]&flagAcq != 0,
		Rel:    rec[38]&flagRel != 0,
	}
	if u.MemSeq != 0 {
		u.MemSeq += r.seqBase
	}
	r.lastSeq = u.Seq
	r.seqSpan++
	return u
}
