// Package trace generates the synthetic instruction streams that stand in
// for the paper's proprietary benchmark traces (Table 2: SPECFP2K,
// SPECINT2K, WEB, MM, PROD, SERVER, WS).
//
// Each suite is a statistical profile: micro-op mix, memory footprint and
// locality (which determine the cache miss rates that drive the latency
// tolerant machinery), register dependence-chain structure (which determines
// slice sizes — the "miss-dependent uops" of Table 3), store-to-load
// forwarding distance (the paper reports 20-35% of loads forward), branch
// predictability, and multiprocessor sharing (external snoop rate). The
// generator expands a profile into a synthetic static program (so PCs are
// stable and predictors can train) and then walks that program, producing an
// unbounded dynamic micro-op stream.
package trace

import "fmt"

// Suite identifies one of the paper's seven benchmark suites.
type Suite int

// The benchmark suites of Table 2, in the paper's presentation order.
const (
	SFP2K Suite = iota
	SINT2K
	WEB
	MM
	PROD
	SERVER
	WS
	NumSuites
)

// String returns the suite's name as used in the paper's figures.
func (s Suite) String() string {
	switch s {
	case SFP2K:
		return "SFP2K"
	case SINT2K:
		return "SINT2K"
	case WEB:
		return "WEB"
	case MM:
		return "MM"
	case PROD:
		return "PROD"
	case SERVER:
		return "SERVER"
	case WS:
		return "WS"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// AllSuites lists every suite in presentation order.
func AllSuites() []Suite {
	return []Suite{SFP2K, SINT2K, WEB, MM, PROD, SERVER, WS}
}

// MarshalText renders the suite by name, so Suite-keyed maps marshal to
// readable JSON objects instead of integer keys.
func (s Suite) MarshalText() ([]byte, error) {
	return []byte(s.String()), nil
}

// UnmarshalText parses a suite name as produced by String/MarshalText.
func (s *Suite) UnmarshalText(text []byte) error {
	name := string(text)
	for _, su := range AllSuites() {
		if su.String() == name {
			*s = su
			return nil
		}
	}
	return fmt.Errorf("trace: unknown suite %q", name)
}

// Profile parameterises a suite's synthetic workload.
type Profile struct {
	Suite    Suite
	Name     string
	NumBench int    // number of benchmarks the paper's suite contains
	Desc     string // Table 2 description
	// Micro-op mix (fractions of the dynamic stream; remainder is IntALU).
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FPFrac     float64 // fraction of non-mem, non-branch ops that are FP

	// Memory behaviour. Footprints are in 64B lines; locality is a mixture
	// of a hot set (stack/globals), a Zipf-reused heap, and unit-stride
	// streams (which the prefetcher can catch).
	HotLines   int     // hot region size
	HeapLines  int     // heap region size (vs 16K-line L2 → drives L2 misses)
	HotFrac    float64 // accesses hitting the hot region
	StreamFrac float64 // accesses that stream
	ZipfS      float64 // heap reuse skew (higher = more locality)
	NumStreams int     // concurrent static stream sites

	// Register dependence structure.
	ChainProb  float64 // prob. an op extends a load's dependence chain
	ChainDecay int     // chain registers live this many uops
	// Store data dependence: prob. a store's data comes from a chain reg
	// (makes the store miss-dependent when the chain root missed).
	StoreChainProb float64

	// Store-to-load forwarding.
	FwdFrac     float64 // fraction of loads that read a recent store's address
	FwdDistGeoP float64 // geometric parameter of the backward distance in stores

	// Phase behaviour: the heap working set slides to a fresh window of
	// PhaseLines lines every PhaseUops micro-ops, producing the bursty,
	// clustered long-latency misses real programs show (between phases the
	// window is cache-resident). PhaseUops <= 0 disables phasing.
	PhaseUops  int
	PhaseLines int

	// Branch behaviour: fraction of branch sites that are effectively
	// random (the rest are biased or loop-patterned).
	BranchNoise float64

	// Multiprocessor sharing: external store snoops per 1000 cycles.
	SnoopPer1KCycles float64

	// Memory-ordering generation (all zero by default, which emits no
	// ordering ops and keeps pre-existing streams bit-identical — the
	// zero-valued knobs consume no RNG draws). FencePer1K is the number of
	// full-fence uops per 1000 micro-ops; AcquireFrac marks that fraction
	// of load sites as load-acquire; ReleaseFrac marks that fraction of
	// store sites as store-release.
	FencePer1K  int
	AcquireFrac float64
	ReleaseFrac float64

	// Multicore generation (package multicore sets these; zero values give
	// the single-core behaviour). CoreID offsets the private regions so
	// cores do not falsely share; SharedHotFrac is the fraction of
	// hot-region accesses that target the globally shared segment instead
	// of the core-private one — the read-write sharing that produces real
	// coherence traffic.
	CoreID        int
	SharedHotFrac float64
}

// Profiles returns the calibrated profile for each suite. The numbers are
// chosen so the suites' relative characters match the paper's Table 3 and
// Figure 2: SFP2K has high memory miss rates, long dependence chains and
// many miss-dependent stores; SERVER has a large irregular footprint and the
// most sharing; PROD barely misses; WS has many miss-dependent stores but
// short chains; etc.
func Profiles() map[Suite]Profile {
	return map[Suite]Profile{
		SFP2K: {
			Suite: SFP2K, Name: "SFP2K", NumBench: 13, Desc: "www.spec.org (SPECFP2K)",
			LoadFrac: 0.28, StoreFrac: 0.14, BranchFrac: 0.06, FPFrac: 0.60,
			HotLines: 64, HeapLines: 1 << 18, HotFrac: 0.20, StreamFrac: 0.55,
			ZipfS: 0.6, NumStreams: 12,
			ChainProb: 0.45, ChainDecay: 56, StoreChainProb: 0.85,
			FwdFrac: 0.22, FwdDistGeoP: 0.08,
			PhaseUops: 30_000, PhaseLines: 96,
			BranchNoise: 0.01, SnoopPer1KCycles: 0,
		},
		SINT2K: {
			Suite: SINT2K, Name: "SINT2K", NumBench: 10, Desc: "www.spec.org (SPECINT2K)",
			LoadFrac: 0.27, StoreFrac: 0.12, BranchFrac: 0.16, FPFrac: 0.02,
			HotLines: 256, HeapLines: 1 << 15, HotFrac: 0.60, StreamFrac: 0.05,
			ZipfS: 1.1, NumStreams: 2,
			ChainProb: 0.35, ChainDecay: 28, StoreChainProb: 0.10,
			FwdFrac: 0.30, FwdDistGeoP: 0.20,
			PhaseUops: 22_000, PhaseLines: 64,
			BranchNoise: 0.06, SnoopPer1KCycles: 0,
		},
		WEB: {
			Suite: WEB, Name: "WEB", NumBench: 10, Desc: "SPECJbb, WebMark",
			LoadFrac: 0.28, StoreFrac: 0.14, BranchFrac: 0.17, FPFrac: 0.01,
			HotLines: 256, HeapLines: 1 << 16, HotFrac: 0.55, StreamFrac: 0.05,
			ZipfS: 0.9, NumStreams: 2,
			ChainProb: 0.45, ChainDecay: 36, StoreChainProb: 0.02,
			FwdFrac: 0.32, FwdDistGeoP: 0.25,
			PhaseUops: 25_000, PhaseLines: 32,
			BranchNoise: 0.07, SnoopPer1KCycles: 0.25,
		},
		MM: {
			Suite: MM, Name: "MM", NumBench: 14, Desc: "MPEG, speech, photoshop",
			LoadFrac: 0.26, StoreFrac: 0.13, BranchFrac: 0.11, FPFrac: 0.25,
			HotLines: 128, HeapLines: 1 << 16, HotFrac: 0.45, StreamFrac: 0.30,
			ZipfS: 0.9, NumStreams: 6,
			ChainProb: 0.38, ChainDecay: 44, StoreChainProb: 0.10,
			FwdFrac: 0.26, FwdDistGeoP: 0.18,
			PhaseUops: 24_000, PhaseLines: 64,
			BranchNoise: 0.04, SnoopPer1KCycles: 0,
		},
		PROD: {
			Suite: PROD, Name: "PROD", NumBench: 7, Desc: "SYSMark2k, Winstone",
			LoadFrac: 0.28, StoreFrac: 0.14, BranchFrac: 0.17, FPFrac: 0.02,
			HotLines: 384, HeapLines: 1 << 13, HotFrac: 0.75, StreamFrac: 0.03,
			ZipfS: 1.2, NumStreams: 1,
			ChainProb: 0.20, ChainDecay: 16, StoreChainProb: 0.05,
			FwdFrac: 0.33, FwdDistGeoP: 0.30,
			PhaseUops: 70_000, PhaseLines: 48,
			BranchNoise: 0.05, SnoopPer1KCycles: 0.1,
		},
		SERVER: {
			Suite: SERVER, Name: "SERVER", NumBench: 7, Desc: "TPC-C",
			LoadFrac: 0.29, StoreFrac: 0.13, BranchFrac: 0.16, FPFrac: 0.01,
			HotLines: 256, HeapLines: 1 << 18, HotFrac: 0.35, StreamFrac: 0.04,
			ZipfS: 0.55, NumStreams: 2,
			ChainProb: 0.50, ChainDecay: 96, StoreChainProb: 0.10,
			FwdFrac: 0.25, FwdDistGeoP: 0.15,
			PhaseUops: 30_000, PhaseLines: 32,
			BranchNoise: 0.07, SnoopPer1KCycles: 1.0,
		},
		WS: {
			Suite: WS, Name: "WS", NumBench: 13, Desc: "CAD, rendering",
			LoadFrac: 0.27, StoreFrac: 0.15, BranchFrac: 0.10, FPFrac: 0.35,
			HotLines: 128, HeapLines: 1 << 17, HotFrac: 0.35, StreamFrac: 0.35,
			ZipfS: 0.7, NumStreams: 8,
			ChainProb: 0.25, ChainDecay: 48, StoreChainProb: 0.70,
			FwdFrac: 0.24, FwdDistGeoP: 0.12,
			PhaseUops: 35_000, PhaseLines: 40,
			BranchNoise: 0.03, SnoopPer1KCycles: 0.1,
		},
	}
}

// ProfileFor returns the calibrated profile for suite s.
func ProfileFor(s Suite) Profile {
	p, ok := Profiles()[s]
	if !ok {
		panic(fmt.Sprintf("trace: unknown suite %v", s))
	}
	return p
}
