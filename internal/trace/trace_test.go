package trace

import (
	"math"
	"testing"

	"srlproc/internal/isa"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != int(NumSuites) {
		t.Fatalf("%d profiles for %d suites", len(ps), NumSuites)
	}
	totalBench := 0
	for _, s := range AllSuites() {
		p := ps[s]
		if p.Suite != s || p.Name == "" || p.NumBench <= 0 {
			t.Fatalf("profile %v malformed: %+v", s, p)
		}
		if p.LoadFrac+p.StoreFrac+p.BranchFrac >= 1 {
			t.Fatalf("%v: op mix exceeds 1", s)
		}
		totalBench += p.NumBench
	}
	// Table 2's suite sizes: 13+10+10+14+7+7+13 = 74 benchmarks.
	if totalBench != 74 {
		t.Fatalf("total benchmarks %d, Table 2 says 74", totalBench)
	}
}

func TestSuiteStrings(t *testing.T) {
	names := map[string]bool{}
	for _, s := range AllSuites() {
		names[s.String()] = true
	}
	for _, want := range []string{"SFP2K", "SINT2K", "WEB", "MM", "PROD", "SERVER", "WS"} {
		if !names[want] {
			t.Fatalf("missing suite name %s", want)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(ProfileFor(SINT2K), 7)
	b := NewGenerator(ProfileFor(SINT2K), 7)
	for i := 0; i < 5000; i++ {
		ua, ub := a.Next(), b.Next()
		if ua != ub {
			t.Fatalf("divergence at %d: %v vs %v", i, ua, ub)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := NewGenerator(ProfileFor(SINT2K), 1)
	b := NewGenerator(ProfileFor(SINT2K), 2)
	diff := 0
	for i := 0; i < 1000; i++ {
		if a.Next().Addr != b.Next().Addr {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical address streams")
	}
}

func TestGeneratorMixMatchesProfile(t *testing.T) {
	for _, s := range AllSuites() {
		p := ProfileFor(s)
		g := NewGenerator(p, 1)
		n := 100_000
		var loads, stores, branches int
		for i := 0; i < n; i++ {
			switch g.Next().Class {
			case isa.Load:
				loads++
			case isa.Store:
				stores++
			case isa.Branch:
				branches++
			}
		}
		check := func(name string, got int, want float64) {
			frac := float64(got) / float64(n)
			if math.Abs(frac-want) > 0.02 {
				t.Errorf("%v %s fraction %.3f, profile %.3f", s, name, frac, want)
			}
		}
		check("load", loads, p.LoadFrac)
		check("store", stores, p.StoreFrac)
		check("branch", branches, p.BranchFrac)
	}
}

func TestSequenceNumbersDense(t *testing.T) {
	g := NewGenerator(ProfileFor(WEB), 3)
	for i := uint64(1); i <= 10_000; i++ {
		if u := g.Next(); u.Seq != i {
			t.Fatalf("seq %d at position %d", u.Seq, i)
		}
	}
}

func TestMemoryOperandsWellFormed(t *testing.T) {
	g := NewGenerator(ProfileFor(SFP2K), 5)
	for i := 0; i < 50_000; i++ {
		u := g.Next()
		switch u.Class {
		case isa.Load:
			if u.Addr == 0 || u.Size == 0 || u.Dst == isa.NoReg {
				t.Fatalf("malformed load %v", u.String())
			}
		case isa.Store:
			if u.Addr == 0 || u.Size == 0 || u.Src2 == isa.NoReg || u.Dst != isa.NoReg {
				t.Fatalf("malformed store %v", u.String())
			}
		}
		if u.Src1 >= isa.NumArchRegs || u.Src2 >= isa.NumArchRegs || u.Dst >= isa.NumArchRegs {
			t.Fatalf("register out of range: %v", u.String())
		}
	}
}

func TestForwardingLoadsReferenceRealStores(t *testing.T) {
	g := NewGenerator(ProfileFor(PROD), 9)
	stores := map[uint64]uint64{} // seq -> addr
	fwd := 0
	n := 60_000
	for i := 0; i < n; i++ {
		u := g.Next()
		if u.Class == isa.Store {
			stores[u.Seq] = u.Addr
		}
		if u.Class == isa.Load && u.MemSeq != 0 {
			fwd++
			addr, ok := stores[u.MemSeq]
			if !ok {
				t.Fatalf("load %d forwards from unknown store %d", u.Seq, u.MemSeq)
			}
			if addr != u.Addr {
				t.Fatalf("load %d address %#x != store address %#x", u.Seq, u.Addr, addr)
			}
		}
	}
	// PROD's forwarding fraction is 0.33 of loads ~ 0.28 of uops.
	frac := float64(fwd) / (float64(n) * ProfileFor(PROD).LoadFrac)
	if frac < 0.2 || frac > 0.45 {
		t.Fatalf("forwarding fraction %.2f implausible", frac)
	}
}

func TestAddressesStayInRegions(t *testing.T) {
	g := NewGenerator(ProfileFor(MM), 11)
	for i := 0; i < 30_000; i++ {
		u := g.Next()
		if u.Class != isa.Load && u.Class != isa.Store {
			continue
		}
		a := u.Addr
		ok := (a >= hotBase && a < hotBase+1<<24) ||
			(a >= heapBase && a < streamBase) ||
			(a >= streamBase && a < streamBase+1<<32)
		if !ok {
			t.Fatalf("address %#x outside all regions", a)
		}
	}
}

func TestPhaseSweepTouchesFreshLines(t *testing.T) {
	p := ProfileFor(SINT2K)
	g := NewGenerator(p, 13)
	seen := map[uint64]bool{}
	heapLines := func(n int) map[uint64]bool {
		lines := map[uint64]bool{}
		for i := 0; i < n; i++ {
			u := g.Next()
			if (u.Class == isa.Load || u.Class == isa.Store) && u.Addr >= heapBase && u.Addr < streamBase {
				lines[u.Addr/isa.CacheLineSize] = true
			}
		}
		return lines
	}
	// First phase.
	for l := range heapLines(p.PhaseUops) {
		seen[l] = true
	}
	// Second phase must touch a mostly-disjoint window.
	fresh, overlap := 0, 0
	for l := range heapLines(p.PhaseUops) {
		if seen[l] {
			overlap++
		} else {
			fresh++
		}
	}
	if fresh < p.PhaseLines/2 {
		t.Fatalf("second phase touched only %d fresh lines (window %d)", fresh, p.PhaseLines)
	}
}

func TestChainSetBounded(t *testing.T) {
	g := NewGenerator(ProfileFor(SFP2K), 17)
	for i := 0; i < 50_000; i++ {
		g.Next()
		if len(g.chain) > maxLiveChain {
			t.Fatalf("live chain set grew to %d", len(g.chain))
		}
	}
}

func TestBranchOutcomesDeterministicPerSeed(t *testing.T) {
	mk := func() []bool {
		g := NewGenerator(ProfileFor(SERVER), 21)
		var out []bool
		for i := 0; i < 20_000; i++ {
			if u := g.Next(); u.Class == isa.Branch {
				out = append(out, u.Taken)
			}
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("branch outcome divergence at %d", i)
		}
	}
}

func TestProfileForUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown suite did not panic")
		}
	}()
	ProfileFor(Suite(99))
}
