package trace

import (
	"srlproc/internal/isa"
	"srlproc/internal/xrand"
)

// Generator produces an unbounded dynamic micro-op stream for one suite.
// It is deterministic for a given (profile, seed) pair, so every store
// queue design in an experiment replays an identical instruction stream.
type Generator struct {
	prof Profile
	rng  *xrand.RNG

	program []tmpl
	pc      int // index of next template

	heapZipf *xrand.Zipf

	// Phased heap working set: accesses target a sliding window of the
	// heap; the window steps to fresh (cold) lines every PhaseUops
	// micro-ops. The first accesses of a phase sweep the new window's cold
	// lines densely (a working-set change touches its data quickly), which
	// clusters the long-latency misses into overlapping bursts — the
	// memory-level parallelism latency tolerant processors exploit.
	phaseOffset uint64
	sweepLeft   int
	// lastAddrSweep marks that the most recent heap address came from the
	// cold sweep (it will miss to memory); the generator roots a long-lived
	// dependence chain at such loads so the misses that actually poison
	// grow realistic forward slices.
	lastAddrSweep bool

	seq uint64

	// chain tracks registers holding values data-dependent on a recent
	// load (the raw material of miss slices). Keyed by register number,
	// value is the sequence number at which membership expires. Expiry only
	// stops further chain *extension*; the register remains tainted (unsafe
	// for "independent" reads) until overwritten, because in the simulator
	// a poisoned value stays poisoned until the slice re-executes.
	chain map[int8]uint64
	taint map[int8]bool

	nextReg int8

	storeRing  [storeRingN]storeRec // recent stores, for forwarding loads
	storeCount int                  // total stores generated
	storeHead  int                  // index of most recent store

	streamPositions []uint64 // per-stream-site advancing pointers

	// loopCount tracks per-template patterned branch positions.
	loopCount []int
}

type storeRec struct {
	seq  uint64
	addr uint64
	size uint8
}

// template kinds for branches.
const (
	brBiased = iota
	brPattern
	brNoisy
)

type tmpl struct {
	class  isa.Class
	pc     uint64
	region int // 0 hot, 1 heap, 2 stream
	stream int // stream site id when region==2
	fwd    bool
	brKind int
	brBias float64 // for biased
	brPer  int     // for patterned
	// addrChain: this load's address depends on a chain register
	// (pointer chasing), deepening slices.
	addrChain bool
	// acq/rel: release-consistency annotations for load/store sites.
	acq bool
	rel bool
}

const (
	regionHot = iota
	regionHeap
	regionStream
)

// Memory layout of the synthetic address space (all regions disjoint).
const (
	hotBase    = 0x0000_1000_0000
	heapBase   = 0x0000_4000_0000
	streamBase = 0x0000_8000_0000
	progBase   = 0x0000_0040_0000
	programLen = 4096
	storeRingN = 64

	// sharedHotBase is the globally shared segment multicore workloads
	// read and write; coreStride separates per-core private regions.
	sharedHotBase = 0x0000_0100_0000
	coreStride    = uint64(1) << 40
)

// NewGenerator builds a generator for profile prof seeded with seed.
func NewGenerator(prof Profile, seed uint64) *Generator {
	g := &Generator{
		prof:  prof,
		rng:   xrand.New(seed ^ uint64(prof.Suite+1)*0x9E37),
		chain: make(map[int8]uint64),
		taint: make(map[int8]bool),
	}
	zipfSpan := prof.HeapLines
	if prof.PhaseUops > 0 && prof.PhaseLines > 0 {
		zipfSpan = prof.PhaseLines
	}
	g.heapZipf = xrand.NewZipf(g.rng, zipfSpan, prof.ZipfS)
	g.buildProgram()
	g.loopCount = make([]int, len(g.program))
	return g
}

// buildProgram expands the profile into a static program so that PCs recur
// and the branch predictor and store-sets predictor can train.
func (g *Generator) buildProgram() {
	p := g.prof
	g.program = make([]tmpl, programLen)
	// fenceFrac precedes every other threshold so that a zero knob leaves
	// all thresholds — and the RNG draw sequence — exactly as before.
	fenceFrac := float64(p.FencePer1K) / 1000
	for i := range g.program {
		t := tmpl{pc: progBase + uint64(i)*4}
		r := g.rng.Float64()
		switch {
		case fenceFrac > 0 && r < fenceFrac:
			t.class = isa.Fence
		case r < fenceFrac+p.LoadFrac:
			t.class = isa.Load
			t.fwd = g.rng.Bool(p.FwdFrac)
			t.addrChain = !t.fwd && g.rng.Bool(p.ChainProb*0.4)
			t.region, t.stream = g.pickRegion()
			if p.AcquireFrac > 0 {
				t.acq = g.rng.Bool(p.AcquireFrac)
			}
		case r < fenceFrac+p.LoadFrac+p.StoreFrac:
			t.class = isa.Store
			t.region, t.stream = g.pickRegion()
			if p.ReleaseFrac > 0 {
				t.rel = g.rng.Bool(p.ReleaseFrac)
			}
		case r < fenceFrac+p.LoadFrac+p.StoreFrac+p.BranchFrac:
			t.class = isa.Branch
			br := g.rng.Float64()
			switch {
			case br < p.BranchNoise:
				// Data-dependent branches: weakly biased, the predictor can
				// learn only the bias.
				t.brKind = brNoisy
			case br < p.BranchNoise+0.10:
				// Loop back-edges: taken for per-1 iterations, then one
				// not-taken (run-length behaviour counters learn well).
				t.brKind = brPattern
				t.brPer = 16 + g.rng.Intn(48)
			default:
				t.brKind = brBiased
				if g.rng.Bool(0.7) {
					t.brBias = 0.99
				} else {
					t.brBias = 0.01
				}
			}
		default:
			if g.rng.Bool(p.FPFrac) {
				switch g.rng.Intn(3) {
				case 0:
					t.class = isa.FPAdd
				case 1:
					t.class = isa.FPMul
				default:
					t.class = isa.FPDiv
				}
			} else {
				if g.rng.Bool(0.1) {
					t.class = isa.IntMul
				} else {
					t.class = isa.IntALU
				}
			}
		}
		g.program[i] = t
	}
}

func (g *Generator) pickRegion() (region, stream int) {
	r := g.rng.Float64()
	switch {
	case r < g.prof.HotFrac:
		return regionHot, 0
	case r < g.prof.HotFrac+g.prof.StreamFrac:
		return regionStream, g.rng.Intn(maxInt(1, g.prof.NumStreams))
	default:
		return regionHeap, 0
	}
}

// streamAddr returns the next address of a unit-stride stream site,
// lazily initialising the per-site pointers.
func (g *Generator) streamAddr(site int) uint64 {
	if g.streamPositions == nil {
		g.streamPositions = make([]uint64, maxInt(1, g.prof.NumStreams))
		for i := range g.streamPositions {
			g.streamPositions[i] = g.coreOff() + streamBase + uint64(i)<<24
		}
	}
	a := g.streamPositions[site]
	g.streamPositions[site] += 8 // sequential word walk: 8 accesses per line
	// Wrap each stream within a 16MB window so footprints stay bounded.
	base := g.coreOff() + streamBase + uint64(site)<<24
	if g.streamPositions[site]-base >= 1<<24 {
		g.streamPositions[site] = base
	}
	return a
}

// coreOff shifts private regions into the owning core's address space.
func (g *Generator) coreOff() uint64 {
	return uint64(g.prof.CoreID) * coreStride
}

func (g *Generator) address(t *tmpl) uint64 {
	switch t.region {
	case regionHot:
		if g.prof.SharedHotFrac > 0 && g.rng.Bool(g.prof.SharedHotFrac) {
			return sharedHotBase + uint64(g.rng.Intn(g.prof.HotLines))*isa.CacheLineSize + uint64(g.rng.Intn(8))*8
		}
		return g.coreOff() + hotBase + uint64(g.rng.Intn(g.prof.HotLines))*isa.CacheLineSize + uint64(g.rng.Intn(8))*8
	case regionStream:
		return g.streamAddr(t.stream)
	default:
		var line uint64
		off := g.coreOff()
		g.lastAddrSweep = false
		if g.sweepLeft > 0 {
			g.lastAddrSweep = true
			// Cold sweep of the fresh window, stride 3 lines (coprime with
			// the window size) so the stream prefetcher cannot hide it.
			k := uint64(g.prof.PhaseLines - g.sweepLeft)
			line = (g.phaseOffset + (k*3)%uint64(g.prof.PhaseLines)) % uint64(g.prof.HeapLines)
			g.sweepLeft--
		} else {
			line = uint64(g.heapZipf.Next())
			if g.prof.PhaseUops > 0 && g.prof.PhaseLines > 0 {
				line = (g.phaseOffset + line) % uint64(g.prof.HeapLines)
			}
		}
		return off + heapBase + line*isa.CacheLineSize + uint64(g.rng.Intn(8))*8
	}
}

func (g *Generator) pruneChains() {
	for r, exp := range g.chain {
		if exp <= g.seq {
			delete(g.chain, r)
		}
	}
}

// chainReg returns a live chain register, preferring the youngest-expiring
// (deepest) chain: long-lived chains are rooted at cold-sweep loads — the
// ones that actually miss — so dependent consumers concentrate on real
// slices. Scanning register order keeps selection deterministic.
func (g *Generator) chainReg() (int8, bool) {
	// Prefer a sweep-rooted (deep) chain: its expiry lies beyond what a
	// normal joinChain could produce.
	deepBound := g.seq + 2*uint64(g.prof.ChainDecay)
	for r := int8(0); r < isa.NumArchRegs; r++ {
		if exp, ok := g.chain[r]; ok && exp > deepBound {
			return r, true
		}
	}
	start := int8(g.seq % isa.NumArchRegs)
	for i := int8(0); i < isa.NumArchRegs; i++ {
		r := (start + i) % isa.NumArchRegs
		if _, ok := g.chain[r]; ok {
			return r, true
		}
	}
	return 0, false
}

// allocReg picks a destination register, preferring dead values — tainted
// registers whose chain membership has expired — the way register
// allocation reuses registers as soon as values die. Rapid overwrite of
// dead chain values keeps the tainted fraction of the register file low,
// which in turn keeps miss slices bounded.
func (g *Generator) allocReg() int8 {
	for r := int8(0); r < isa.NumArchRegs; r++ {
		if g.taint[r] {
			if _, live := g.chain[r]; !live {
				return r
			}
		}
	}
	g.nextReg = (g.nextReg + 1) % isa.NumArchRegs
	return g.nextReg
}

// cleanReg returns a register that is (very likely) not part of a live
// dependence chain. Keeping non-chain operations off chain registers is
// what bounds slice growth: in real code most values feed a handful of
// nearby consumers and then die, so a miss's forward slice is a bounded
// fraction of the window (Table 3), not an epidemic over the register file.
func (g *Generator) cleanReg() int8 {
	for try := 0; try < 6; try++ {
		r := int8(g.rng.Intn(isa.NumArchRegs))
		if !g.taint[r] {
			return r
		}
	}
	return int8(g.rng.Intn(isa.NumArchRegs))
}

// maxLiveChain bounds the live chain set so the register file never
// saturates with in-flight dependent values (real code spills and kills
// values; a bounded live set is what keeps slices a bounded fraction of the
// window).
const maxLiveChain = 10

func (g *Generator) joinChain(reg int8) {
	if len(g.chain) >= maxLiveChain {
		g.taint[reg] = true // value still poisonable, but chain stops growing
		return
	}
	g.chain[reg] = g.seq + uint64(g.prof.ChainDecay)
	g.taint[reg] = true
}

// joinChainLong roots a chain with a much longer life, used for cold-sweep
// loads (the ones that miss to memory): their consumers form the slice. If
// the live set is full, the earliest-expiring chain is displaced — a miss
// root always gets a chain.
func (g *Generator) joinChainLong(reg int8) {
	if _, ok := g.chain[reg]; !ok && len(g.chain) >= maxLiveChain {
		victim := int8(-1)
		var vexp uint64
		for r, exp := range g.chain {
			if victim < 0 || exp < vexp {
				victim, vexp = r, exp
			}
		}
		delete(g.chain, victim)
	}
	g.chain[reg] = g.seq + 6*uint64(g.prof.ChainDecay)
	g.taint[reg] = true
}

func (g *Generator) leaveChain(reg int8) {
	delete(g.chain, reg)
	delete(g.taint, reg)
}

// Next produces the next micro-op in program order.
func (g *Generator) Next() isa.Uop {
	g.seq++
	if g.prof.PhaseUops > 0 && g.prof.PhaseLines > 0 && g.seq%uint64(g.prof.PhaseUops) == 0 {
		g.phaseOffset = (g.phaseOffset + uint64(g.prof.PhaseLines)) % uint64(g.prof.HeapLines)
		g.sweepLeft = g.prof.PhaseLines
	}
	g.pruneChains()
	ti := g.pc
	t := &g.program[ti]
	g.pc++
	if g.pc == len(g.program) {
		g.pc = 0
	}

	u := isa.Uop{Seq: g.seq, PC: t.pc, Class: t.class, Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg}

	switch t.class {
	case isa.Fence:
		// Full barrier: no operands, no draws — sites are fixed at program
		// build time so zero-knob streams replay identically.

	case isa.Load:
		u.Size = 8
		u.Acq = t.acq
		if t.fwd && g.storeCount > 0 {
			avail := g.storeCount
			if avail > storeRingN {
				avail = storeRingN
			}
			d := g.rng.Geometric(g.prof.FwdDistGeoP)
			if d > avail {
				d = avail
			}
			idx := ((g.storeHead-(d-1))%storeRingN + storeRingN) % storeRingN
			rec := g.storeRing[idx]
			u.Addr = rec.addr
			u.Size = rec.size
			u.MemSeq = rec.seq
		} else {
			u.Addr = g.address(t)
		}
		if t.addrChain {
			if r, ok := g.chainReg(); ok {
				u.Src1 = r
			} else {
				u.Src1 = g.cleanReg()
			}
		} else {
			u.Src1 = g.cleanReg()
		}
		u.Dst = g.allocReg()
		if g.lastAddrSweep {
			g.joinChainLong(u.Dst) // a miss root: its slice grows for a while
		} else {
			g.joinChain(u.Dst)
		}

	case isa.Store:
		u.Size = 8
		u.Rel = t.rel
		u.Addr = g.address(t)
		u.Src1 = g.cleanReg() // address base
		if g.rng.Bool(g.prof.StoreChainProb) {
			if r, ok := g.chainReg(); ok {
				u.Src2 = r
			} else {
				u.Src2 = g.cleanReg()
			}
		} else {
			u.Src2 = g.cleanReg()
		}
		g.storeHead = (g.storeHead + 1) % storeRingN
		g.storeRing[g.storeHead] = storeRec{seq: g.seq, addr: u.Addr, size: u.Size}
		g.storeCount++

	case isa.Branch:
		// Branches occasionally test chain values (they are sinks: no
		// destination, so they end chains but can join slices).
		if g.rng.Bool(0.15) {
			if r, ok := g.chainReg(); ok {
				u.Src1 = r
			} else {
				u.Src1 = g.cleanReg()
			}
		} else {
			u.Src1 = g.cleanReg()
		}
		switch t.brKind {
		case brNoisy:
			u.Taken = g.rng.Bool(0.7) // data-dependent, weakly biased
		case brPattern:
			g.loopCount[ti]++
			u.Taken = g.loopCount[ti]%t.brPer != 0
		default:
			u.Taken = g.rng.Bool(t.brBias)
		}

	default:
		if g.rng.Bool(g.prof.ChainProb) {
			if r, ok := g.chainReg(); ok {
				u.Src1 = r
				if g.rng.Bool(0.4) {
					u.Src2 = g.cleanReg()
				}
				u.Dst = g.allocReg()
				g.joinChain(u.Dst) // chain propagates through the op
				break
			}
		}
		u.Src1 = g.cleanReg()
		if g.rng.Bool(0.5) {
			u.Src2 = g.cleanReg()
		}
		u.Dst = g.allocReg()
		g.leaveChain(u.Dst) // overwritten with a non-chain value
	}
	return u
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
