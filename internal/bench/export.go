package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"srlproc/internal/core"
	"srlproc/internal/trace"
)

// Machine-readable exports for every experiment result type. JSON forms
// embed the raw per-point Results (whose own MarshalJSON adds the derived
// figures); CSV forms are the flat series the paper's plots need, suites
// as rows.

// MarshalJSON renders one series with its label and per-suite values.
func (s SpeedupSeries) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Label   string                  `json:"label"`
		BySuite map[trace.Suite]float64 `json:"bySuite"`
	}{s.Label, s.BySuite})
}

// MarshalJSON renders the figure: title, every series, and the raw
// per-(label, suite) results.
func (f *FigureResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Title  string                                   `json:"title"`
		Series []SpeedupSeries                          `json:"series"`
		Raw    map[string]map[trace.Suite]*core.Results `json:"raw,omitempty"`
	}{f.Title, f.Series, f.Raw})
}

// WriteCSV renders the figure with suites as rows and series as columns
// (percent speedup over the figure's baseline).
func (f *FigureResult) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("suite")
	for _, s := range f.Series {
		bw.WriteByte(',')
		bw.WriteString(csvQuote(s.Label))
	}
	bw.WriteByte('\n')
	for _, su := range trace.AllSuites() {
		bw.WriteString(su.String())
		for _, s := range f.Series {
			fmt.Fprintf(bw, ",%.4f", s.BySuite[su])
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// MarshalJSON renders the table rows plus the raw per-suite results.
func (t *Table3Result) MarshalJSON() ([]byte, error) {
	type row struct {
		Suite               trace.Suite `json:"suite"`
		RedoneStoresPct     float64     `json:"redoneStoresPct"`
		MissDepStoresPct    float64     `json:"missDepStoresPct"`
		MissDepUopsPct      float64     `json:"missDepUopsPct"`
		SRLLoadStallsPer10K float64     `json:"srlLoadStallsPer10K"`
		PctTimeSRLOccupied  float64     `json:"pctTimeSRLOccupied"`
	}
	rows := make([]row, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = row(r)
	}
	return json.Marshal(struct {
		Rows []row                         `json:"rows"`
		Raw  map[trace.Suite]*core.Results `json:"raw,omitempty"`
	}{rows, t.Raw})
}

// WriteCSV renders Table 3, one row per suite.
func (t *Table3Result) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("suite,redone_stores_pct,miss_dep_stores_pct,miss_dep_uops_pct,srl_load_stalls_per_10k,pct_time_srl_occupied\n")
	for _, r := range t.Rows {
		fmt.Fprintf(bw, "%s,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			r.Suite, r.RedoneStoresPct, r.MissDepStoresPct, r.MissDepUopsPct,
			r.SRLLoadStallsPer10K, r.PctTimeSRLOccupied)
	}
	return bw.Flush()
}

// MarshalJSON renders the occupancy distribution plus the raw per-suite
// results.
func (f *Figure7Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Thresholds []uint64                      `json:"thresholds"`
		BySuite    map[trace.Suite][]float64     `json:"bySuite"`
		Raw        map[trace.Suite]*core.Results `json:"raw,omitempty"`
	}{f.Thresholds, f.BySuite, f.Raw})
}

// WriteCSV renders the distribution with suites as rows and one ">N"
// column per threshold.
func (f *Figure7Result) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("suite")
	for _, th := range f.Thresholds {
		fmt.Fprintf(bw, ",gt_%d", th)
	}
	bw.WriteByte('\n')
	for _, su := range trace.AllSuites() {
		bw.WriteString(su.String())
		for _, v := range f.BySuite[su] {
			fmt.Fprintf(bw, ",%.4f", v)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// MarshalJSON renders the energy attribution rows.
func (e *EnergyResult) MarshalJSON() ([]byte, error) {
	type row struct {
		Design      core.StoreDesign `json:"design"`
		Suite       trace.Suite      `json:"suite"`
		NJPer1KUops float64          `json:"njPer1kUops"`
		CAMSharePct float64          `json:"camSharePct"`
	}
	rows := make([]row, len(e.Rows))
	for i, r := range e.Rows {
		rows[i] = row(r)
	}
	return json.Marshal(struct {
		Rows []row `json:"rows"`
	}{rows})
}

// WriteCSV renders the energy attribution, one row per (design, suite).
func (e *EnergyResult) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("design,suite,nj_per_1k_uops,cam_share_pct\n")
	for _, r := range e.Rows {
		fmt.Fprintf(bw, "%s,%s,%.4f,%.4f\n", r.Design, r.Suite, r.NJPer1KUops, r.CAMSharePct)
	}
	return bw.Flush()
}

// MarshalJSON renders the latency tolerance curves.
func (l *LatencyResult) MarshalJSON() ([]byte, error) {
	type point struct {
		Design     core.StoreDesign `json:"design"`
		MemLatency uint64           `json:"memLatency"`
		IPC        float64          `json:"ipc"`
	}
	points := make([]point, len(l.Points))
	for i, p := range l.Points {
		points[i] = point(p)
	}
	return json.Marshal(struct {
		Suite  trace.Suite `json:"suite"`
		Points []point     `json:"points"`
	}{l.Suite, points})
}

// WriteCSV renders the curves, one row per (design, latency).
func (l *LatencyResult) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("suite,design,mem_latency,ipc\n")
	for _, p := range l.Points {
		fmt.Fprintf(bw, "%s,%s,%d,%.4f\n", l.Suite, p.Design, p.MemLatency, p.IPC)
	}
	return bw.Flush()
}

// MarshalJSON renders the ordering scenario-pack grid.
func (l *OrderingResult) MarshalJSON() ([]byte, error) {
	type point struct {
		Design   core.StoreDesign `json:"design"`
		Scenario string           `json:"scenario"`
		IPC      float64          `json:"ipc"`
	}
	points := make([]point, len(l.Points))
	for i, p := range l.Points {
		points[i] = point(p)
	}
	return json.Marshal(struct {
		Suite  trace.Suite `json:"suite"`
		Points []point     `json:"points"`
	}{l.Suite, points})
}

// WriteCSV renders the grid, one row per (design, scenario).
func (l *OrderingResult) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("suite,design,scenario,ipc\n")
	for _, p := range l.Points {
		fmt.Fprintf(bw, "%s,%s,%s,%.4f\n", l.Suite, p.Design, p.Scenario, p.IPC)
	}
	return bw.Flush()
}

// csvQuote quotes a CSV field only when it needs it.
func csvQuote(s string) string {
	needs := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' || c == '\r' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out = append(out, '"')
		}
		out = append(out, s[i])
	}
	return string(append(out, '"'))
}
