package bench

import (
	"bytes"
	"context"
	"encoding/csv"
	"io"
	"reflect"
	"testing"
)

// TestShapeMatchesWriteCSV pins Shape to reality: for every experiment, the
// declared CSV header and row count must match what the experiment's
// WriteCSV actually emits, and Points must match ExperimentPoints. The
// paper pipeline's validator trusts this shape, so drift here would let a
// malformed artifact through.
func TestShapeMatchesWriteCSV(t *testing.T) {
	o := tinyOptions()
	for _, id := range AllExperiments() {
		shape, err := Shape(id, o)
		if err != nil {
			t.Fatalf("%v: shape: %v", id, err)
		}
		points, err := ExperimentPoints(id, o)
		if err != nil {
			t.Fatalf("%v: points: %v", id, err)
		}
		if shape.Points != len(points) {
			t.Errorf("%v: shape.Points = %d, want %d", id, shape.Points, len(points))
		}
		if len(shape.CSVHeader) == 0 || shape.CSVRows == 0 {
			t.Fatalf("%v: degenerate shape %+v", id, shape)
		}

		r, err := RunExperiment(context.Background(), id, o)
		if err != nil {
			t.Fatalf("%v: run: %v", id, err)
		}
		cw, ok := r.Value().(interface{ WriteCSV(io.Writer) error })
		if !ok {
			t.Fatalf("%v: result has no WriteCSV form", id)
		}
		var buf bytes.Buffer
		if err := cw.WriteCSV(&buf); err != nil {
			t.Fatalf("%v: WriteCSV: %v", id, err)
		}
		records, err := csv.NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("%v: parse CSV: %v", id, err)
		}
		if len(records) == 0 {
			t.Fatalf("%v: empty CSV", id)
		}
		if !reflect.DeepEqual(records[0], shape.CSVHeader) {
			t.Errorf("%v: CSV header %q, shape declares %q", id, records[0], shape.CSVHeader)
		}
		if got := len(records) - 1; got != shape.CSVRows {
			t.Errorf("%v: CSV has %d data rows, shape declares %d", id, got, shape.CSVRows)
		}
	}
}

// TestShapeScaleInvariant pins the quick/full contract the paper pipeline's
// profiles rely on: simulation scale (uops, warmup, seed, skip mode) never
// changes an experiment's structure — same points, same CSV schema.
func TestShapeScaleInvariant(t *testing.T) {
	quick := QuickOptions()
	full := DefaultOptions()
	full.Seed = 7
	full.NoEventSkip = true
	for _, id := range AllExperiments() {
		qs, err := Shape(id, quick)
		if err != nil {
			t.Fatalf("%v quick: %v", id, err)
		}
		fs, err := Shape(id, full)
		if err != nil {
			t.Fatalf("%v full: %v", id, err)
		}
		if !reflect.DeepEqual(qs, fs) {
			t.Errorf("%v: quick shape %+v != full shape %+v", id, qs, fs)
		}
		qp, _ := ExperimentPoints(id, quick)
		fp, _ := ExperimentPoints(id, full)
		if len(qp) != len(fp) {
			t.Errorf("%v: quick enumerates %d points, full %d", id, len(qp), len(fp))
		}
		for i := range qp {
			if qp[i].Label != fp[i].Label || qp[i].Suite != fp[i].Suite {
				t.Errorf("%v: point %d identity differs: %s/%s vs %s/%s",
					id, i, qp[i].Label, qp[i].Suite, fp[i].Label, fp[i].Suite)
			}
		}
	}
}

// TestConfigTablesRenderIdentically pins the ConfigTable refactor: the
// structured Table1/Table2 rows must render to the exact text the CLI has
// always printed, and carry sane structure for other renderers.
func TestConfigTablesRenderIdentically(t *testing.T) {
	for _, tc := range []struct {
		ct     ConfigTable
		render string
	}{
		{Table1(), RenderTable1()},
		{Table2(), RenderTable2()},
	} {
		if renderConfigTable(tc.ct) != tc.render {
			t.Errorf("%s: structured rows render differently from the legacy text", tc.ct.Title)
		}
		if tc.ct.Title == "" || len(tc.ct.Headers) < 2 || len(tc.ct.Rows) == 0 {
			t.Errorf("%s: degenerate ConfigTable %+v", tc.ct.Title, tc.ct)
		}
		for _, row := range tc.ct.Rows {
			if len(row) != len(tc.ct.Headers) {
				t.Errorf("%s: row %q has %d cells, want %d", tc.ct.Title, row, len(row), len(tc.ct.Headers))
			}
		}
	}
}
