package bench

import (
	"strings"
	"testing"

	"srlproc/internal/trace"
)

// tinyOptions keep unit tests fast; experiment correctness (not statistics)
// is under test here.
func tinyOptions() Options {
	return Options{WarmupUops: 2_000, RunUops: 10_000, Seed: 1, Parallel: true}
}

func TestRenderTables(t *testing.T) {
	t1 := RenderTable1()
	for _, want := range []string{"8 GHz", "gshare-perceptron", "Store buffer size", "1 MB"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := RenderTable2()
	for _, want := range []string{"SFP2K", "TPC-C", "CAD, rendering", "13"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, t2)
		}
	}
}

func TestRunFigure2Structure(t *testing.T) {
	fig, err := RunFigure2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(Figure2Sizes) {
		t.Fatalf("%d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.BySuite) != len(trace.AllSuites()) {
			t.Fatalf("series %s covers %d suites", s.Label, len(s.BySuite))
		}
	}
	if !strings.Contains(fig.String(), "512-entry STQ") {
		t.Fatal("figure render missing series label")
	}
}

func TestRunFigure6Structure(t *testing.T) {
	fig, err := RunFigure6(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, s := range fig.Series {
		labels[s.Label] = true
	}
	for _, want := range []string{"SRL", "Hierarchical STQ", "Ideal STQ"} {
		if !labels[want] {
			t.Fatalf("missing series %q", want)
		}
	}
	// Raw results available for every (label, suite) pair.
	if fig.Raw["SRL"][trace.SFP2K] == nil {
		t.Fatal("raw results missing")
	}
}

func TestRunTable3Structure(t *testing.T) {
	tbl, err := RunTable3(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(trace.AllSuites()) {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r.PctTimeSRLOccupied < 0 || r.PctTimeSRLOccupied > 100 {
			t.Fatalf("%v occupancy %v", r.Suite, r.PctTimeSRLOccupied)
		}
	}
	if !strings.Contains(tbl.String(), "Redone Stores") {
		t.Fatal("table render incomplete")
	}
}

func TestRunFigure7Structure(t *testing.T) {
	fig, err := RunFigure7(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, su := range trace.AllSuites() {
		vals := fig.BySuite[su]
		if len(vals) != len(fig.Thresholds) {
			t.Fatalf("%v has %d points", su, len(vals))
		}
		// The distribution is a survival curve: non-increasing in the
		// threshold.
		for i := 1; i < len(vals); i++ {
			if vals[i] > vals[i-1]+1e-9 {
				t.Fatalf("%v distribution not monotone: %v", su, vals)
			}
		}
	}
}

func TestRunPowerAreaMentionsReductions(t *testing.T) {
	s := RunPowerArea()
	for _, want := range []string{"Hierarchical L2 STQ", "SRL + LCF + FC", "area reduction"} {
		if !strings.Contains(s, want) {
			t.Fatalf("power report missing %q:\n%s", want, s)
		}
	}
}

func TestSequentialMatchesParallel(t *testing.T) {
	o := tinyOptions()
	o.RunUops = 5_000
	par, err := RunTable3(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Parallel = false
	seq, err := RunTable3(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range par.Rows {
		if par.Rows[i] != seq.Rows[i] {
			t.Fatalf("parallel/sequential divergence: %+v vs %+v", par.Rows[i], seq.Rows[i])
		}
	}
}

func TestRunEnergyStructure(t *testing.T) {
	res, err := RunEnergy(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3*len(trace.AllSuites()) {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The SRL's secondary-structure energy must undercut the hierarchical
	// design's on every suite — the paper's central power claim.
	byKey := map[string]float64{}
	for _, r := range res.Rows {
		byKey[r.Design.String()+"/"+r.Suite.String()] = r.NJPer1KUops
	}
	for _, su := range trace.AllSuites() {
		srl := byKey["SRL/"+su.String()]
		hier := byKey["hierarchical-STQ/"+su.String()]
		if srl >= hier {
			t.Fatalf("%v: SRL energy %.1f >= hierarchical %.1f nJ/1k uops", su, srl, hier)
		}
	}
	if !strings.Contains(res.String(), "CAM share") {
		t.Fatal("render incomplete")
	}
}

func TestRunLatencySweepShape(t *testing.T) {
	o := tinyOptions()
	o.RunUops = 30_000
	res, err := RunLatencySweep(o, trace.SFP2K)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3*len(LatencySweepLatencies) {
		t.Fatalf("%d points", len(res.Points))
	}
	// Each design's IPC must be non-increasing in memory latency, and the
	// baseline must degrade at least as much as the SRL from first to last
	// point (the latency tolerance claim).
	ipc := map[string]map[uint64]float64{}
	for _, p := range res.Points {
		d := p.Design.String()
		if ipc[d] == nil {
			ipc[d] = map[uint64]float64{}
		}
		ipc[d][p.MemLatency] = p.IPC
	}
	for d, m := range ipc {
		if m[LatencySweepLatencies[0]] < m[LatencySweepLatencies[len(LatencySweepLatencies)-1]] {
			t.Fatalf("%s: IPC grew with memory latency", d)
		}
	}
	// Cross-design comparisons need statistically meaningful run lengths;
	// they are asserted in the core integration tests and shown at full
	// scale by cmd/experiments. Here only the structural properties above
	// are checked.
	if res.String() == "" {
		t.Fatal("empty render")
	}
}
