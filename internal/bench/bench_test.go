package bench

import (
	"context"
	"errors"
	"strings"
	"testing"

	"srlproc/internal/sweep"
	"srlproc/internal/trace"
)

// tinyOptions keep unit tests fast; experiment correctness (not statistics)
// is under test here.
func tinyOptions() Options {
	return Options{WarmupUops: 2_000, RunUops: 10_000, Seed: 1, Parallel: true}
}

func TestRenderTables(t *testing.T) {
	t1 := RenderTable1()
	for _, want := range []string{"8 GHz", "gshare-perceptron", "Store buffer size", "1 MB"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := RenderTable2()
	for _, want := range []string{"SFP2K", "TPC-C", "CAD, rendering", "13"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, t2)
		}
	}
}

func TestRunFigure2Structure(t *testing.T) {
	fig, err := RunFigure2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(Figure2Sizes) {
		t.Fatalf("%d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.BySuite) != len(trace.AllSuites()) {
			t.Fatalf("series %s covers %d suites", s.Label, len(s.BySuite))
		}
	}
	if !strings.Contains(fig.String(), "512-entry STQ") {
		t.Fatal("figure render missing series label")
	}
}

func TestRunFigure6Structure(t *testing.T) {
	fig, err := RunFigure6(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, s := range fig.Series {
		labels[s.Label] = true
	}
	for _, want := range []string{"SRL", "Hierarchical STQ", "Ideal STQ"} {
		if !labels[want] {
			t.Fatalf("missing series %q", want)
		}
	}
	// Raw results available for every (label, suite) pair.
	if fig.Raw["SRL"][trace.SFP2K] == nil {
		t.Fatal("raw results missing")
	}
}

func TestRunTable3Structure(t *testing.T) {
	tbl, err := RunTable3(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(trace.AllSuites()) {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r.PctTimeSRLOccupied < 0 || r.PctTimeSRLOccupied > 100 {
			t.Fatalf("%v occupancy %v", r.Suite, r.PctTimeSRLOccupied)
		}
	}
	if !strings.Contains(tbl.String(), "Redone Stores") {
		t.Fatal("table render incomplete")
	}
}

func TestRunFigure7Structure(t *testing.T) {
	fig, err := RunFigure7(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, su := range trace.AllSuites() {
		vals := fig.BySuite[su]
		if len(vals) != len(fig.Thresholds) {
			t.Fatalf("%v has %d points", su, len(vals))
		}
		// The distribution is a survival curve: non-increasing in the
		// threshold.
		for i := 1; i < len(vals); i++ {
			if vals[i] > vals[i-1]+1e-9 {
				t.Fatalf("%v distribution not monotone: %v", su, vals)
			}
		}
	}
}

func TestRunPowerAreaMentionsReductions(t *testing.T) {
	s := RunPowerArea()
	for _, want := range []string{"Hierarchical L2 STQ", "SRL + LCF + FC", "area reduction"} {
		if !strings.Contains(s, want) {
			t.Fatalf("power report missing %q:\n%s", want, s)
		}
	}
}

func TestSequentialMatchesParallel(t *testing.T) {
	o := tinyOptions()
	o.RunUops = 5_000
	o.NoCache = true // compare two real runs, not a run and its memo
	par, err := RunTable3(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Parallel = false
	seq, err := RunTable3(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range par.Rows {
		if par.Rows[i] != seq.Rows[i] {
			t.Fatalf("parallel/sequential divergence: %+v vs %+v", par.Rows[i], seq.Rows[i])
		}
	}
}

// TestWorkersCountsMatch asserts the new Workers knob yields identical
// figures regardless of pool size (the deterministic-aggregation claim).
func TestWorkersCountsMatch(t *testing.T) {
	o := tinyOptions()
	o.RunUops = 5_000
	o.NoCache = true
	var rendered []string
	for _, w := range []int{1, 4} {
		o.Workers = w
		fig, err := RunFigure10Context(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		rendered = append(rendered, fig.String())
	}
	if rendered[0] != rendered[1] {
		t.Fatalf("figure depends on worker count:\n%s\nvs\n%s", rendered[0], rendered[1])
	}
}

// TestMemoizationAcrossFigures is the acceptance check: a Figure 2 +
// Figure 6 pass sharing the process cache must simulate strictly fewer
// points than the two figures contain (the baseline recurs, and Figure 2's
// 1K-entry STQ is Figure 6's ideal STQ).
func TestMemoizationAcrossFigures(t *testing.T) {
	o := tinyOptions()
	o.Seed = 4242 // unique to this test so the global cache starts cold for it
	hits0, misses0 := sweep.Global().Hits(), sweep.Global().Misses()
	fig2, err := RunFigure2Context(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	fig6, err := RunFigure6Context(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	suites := len(trace.AllSuites())
	totalPoints := (len(fig2.Series)+1)*suites + (len(fig6.Series)+1)*suites
	simulated := int(sweep.Global().Misses() - misses0)
	hits := int(sweep.Global().Hits() - hits0)
	if simulated+hits != totalPoints {
		t.Fatalf("cache accounting: %d simulated + %d hits != %d points", simulated, hits, totalPoints)
	}
	if simulated >= totalPoints {
		t.Fatalf("memoization saved nothing: %d simulations for %d points", simulated, totalPoints)
	}
	// Figure 6 shares the baseline and the 1K-entry LargeSTQ config with
	// Figure 2: two full suite rows of hits.
	if hits < 2*suites {
		t.Fatalf("expected >= %d cache hits, got %d", 2*suites, hits)
	}
}

// TestCancelledContextSurfaces asserts a cancelled experiment reports
// ctx.Err() through the joined error.
func TestCancelledContextSurfaces(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunFigure6Context(ctx, tinyOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled figure error = %v", err)
	}
	if _, err := RunLatencySweepContext(ctx, tinyOptions(), trace.SFP2K); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled latency sweep error = %v", err)
	}
}

// TestProgressReported asserts the Options.Progress hook sees every point.
func TestProgressReported(t *testing.T) {
	o := tinyOptions()
	o.RunUops = 5_000
	o.NoCache = true
	var calls int
	var last sweep.Progress
	o.Workers = 1 // serialise so the plain counters below are race-free
	o.Progress = func(p sweep.Progress) {
		calls++
		last = p
	}
	if _, err := RunTable3Context(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	if want := len(trace.AllSuites()); calls != want || last.Done != want || last.Total != want {
		t.Fatalf("progress calls=%d lastDone=%d lastTotal=%d want %d", calls, last.Done, last.Total, want)
	}
}

func TestRunEnergyStructure(t *testing.T) {
	res, err := RunEnergy(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3*len(trace.AllSuites()) {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The SRL's secondary-structure energy must undercut the hierarchical
	// design's on every suite — the paper's central power claim.
	byKey := map[string]float64{}
	for _, r := range res.Rows {
		byKey[r.Design.String()+"/"+r.Suite.String()] = r.NJPer1KUops
	}
	for _, su := range trace.AllSuites() {
		srl := byKey["SRL/"+su.String()]
		hier := byKey["hierarchical-STQ/"+su.String()]
		if srl >= hier {
			t.Fatalf("%v: SRL energy %.1f >= hierarchical %.1f nJ/1k uops", su, srl, hier)
		}
	}
	if !strings.Contains(res.String(), "CAM share") {
		t.Fatal("render incomplete")
	}
}

func TestRunLatencySweepShape(t *testing.T) {
	o := tinyOptions()
	o.RunUops = 30_000
	res, err := RunLatencySweep(o, trace.SFP2K)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3*len(LatencySweepLatencies) {
		t.Fatalf("%d points", len(res.Points))
	}
	// Each design's IPC must be non-increasing in memory latency, and the
	// baseline must degrade at least as much as the SRL from first to last
	// point (the latency tolerance claim).
	ipc := map[string]map[uint64]float64{}
	for _, p := range res.Points {
		d := p.Design.String()
		if ipc[d] == nil {
			ipc[d] = map[uint64]float64{}
		}
		ipc[d][p.MemLatency] = p.IPC
	}
	for d, m := range ipc {
		if m[LatencySweepLatencies[0]] < m[LatencySweepLatencies[len(LatencySweepLatencies)-1]] {
			t.Fatalf("%s: IPC grew with memory latency", d)
		}
	}
	// Cross-design comparisons need statistically meaningful run lengths;
	// they are asserted in the core integration tests and shown at full
	// scale by cmd/experiments. Here only the structural properties above
	// are checked.
	if res.String() == "" {
		t.Fatal("empty render")
	}
}
