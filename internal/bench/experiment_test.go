package bench

import (
	"context"
	"encoding/json"
	"testing"

	"srlproc/internal/trace"
)

func TestExperimentIDNamesRoundTrip(t *testing.T) {
	for _, id := range AllExperiments() {
		text, err := id.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		var back ExperimentID
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if back != id {
			t.Fatalf("%v round-tripped to %v", id, back)
		}
	}
	// JSON embedding uses the same text form.
	doc, err := json.Marshal(map[ExperimentID]int{Fig10: 1})
	if err != nil || string(doc) != `{"fig10":1}` {
		t.Fatalf("map key marshal: %s %v", doc, err)
	}
}

func TestParseExperimentIDAliases(t *testing.T) {
	cases := map[string]ExperimentID{
		"fig2":     Fig2,
		"Figure2":  Fig2,
		"FIGURE10": Fig10,
		"  fig9 ":  Fig9,
		"TABLE3":   Table3,
		"Energy":   Energy,
		"latency":  Latency,
	}
	for in, want := range cases {
		got, err := ParseExperimentID(in)
		if err != nil || got != want {
			t.Errorf("ParseExperimentID(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseExperimentID("fig11"); err == nil {
		t.Fatal("fig11 parsed")
	}
	if _, err := ParseExperimentID(""); err == nil {
		t.Fatal("empty name parsed")
	}
}

func TestRunExperimentInvalidID(t *testing.T) {
	if _, err := RunExperiment(context.Background(), numExperiments, tinyOptions()); err == nil {
		t.Fatal("invalid id ran")
	}
}

// TestRunExperimentAllIDs is the unified entry point's coverage test:
// every experiment of the evaluation runs through RunExperiment, returns a
// correctly tagged result with exactly one typed field set, and marshals
// to the same document as its payload — the compatibility guarantee the
// HTTP and CLI surfaces rely on.
func TestRunExperimentAllIDs(t *testing.T) {
	o := tinyOptions()
	for _, id := range AllExperiments() {
		res, err := RunExperiment(context.Background(), id, o)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if res.ID != id {
			t.Fatalf("%v: tagged as %v", id, res.ID)
		}
		fields := 0
		for _, set := range []bool{
			res.Figure != nil, res.Figure7 != nil, res.Table3 != nil,
			res.Energy != nil, res.Latency != nil, res.Ordering != nil,
		} {
			if set {
				fields++
			}
		}
		if fields != 1 {
			t.Fatalf("%v: %d typed fields set, want exactly 1", id, fields)
		}
		if res.Value() == nil {
			t.Fatalf("%v: Value is nil", id)
		}
		if res.String() == "" {
			t.Fatalf("%v: empty String", id)
		}
		wrapped, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		inner, err := json.Marshal(res.Value())
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if string(wrapped) != string(inner) {
			t.Fatalf("%v: ExperimentResult JSON differs from its payload", id)
		}
	}
}

// TestLatencySuiteOption pins the Latency experiment's suite selection:
// the zero value sweeps SFP2K (the historical default) and a set value is
// honoured both by RunExperiment and the typed shim.
func TestLatencySuiteOption(t *testing.T) {
	o := tinyOptions()
	res, err := RunExperiment(context.Background(), Latency, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Suite != trace.SFP2K {
		t.Fatalf("default latency suite = %v, want SFP2K", res.Latency.Suite)
	}
	o.LatencySuite = trace.WEB
	res, err = RunExperiment(context.Background(), Latency, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Suite != trace.WEB {
		t.Fatalf("latency suite = %v, want WEB", res.Latency.Suite)
	}
	viaShim, err := RunLatencySweepContext(context.Background(), tinyOptions(), trace.WEB)
	if err != nil {
		t.Fatal(err)
	}
	if viaShim.Suite != trace.WEB {
		t.Fatalf("shim latency suite = %v, want WEB", viaShim.Suite)
	}
}
