package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"srlproc/internal/trace"
)

// ExperimentID names one experiment of the paper's evaluation. It is the
// single entry-point vocabulary shared by the library facade
// (srlproc.RunExperiment), the CLI (cmd/experiments) and the HTTP service
// (POST /v1/sweep): every surface resolves a name to an ExperimentID and
// dispatches through RunExperiment, so experiments behave identically no
// matter which door they come in through.
type ExperimentID int

// The experiments, in the evaluation's presentation order.
const (
	// Fig2 sweeps single-level store queue sizes (128..1K entries).
	Fig2 ExperimentID = iota
	// Fig6 compares SRL vs hierarchical vs ideal store queues.
	Fig6
	// Fig7 measures the SRL occupancy distribution.
	Fig7
	// Fig8 ablates the LCF and indexed forwarding.
	Fig8
	// Fig9 crosses LCF sizes with hashing functions.
	Fig9
	// Fig10 compares the forwarding cache against data-cache forwarding.
	Fig10
	// Table3 reports SRL statistics per suite.
	Table3
	// Energy attributes dynamic energy to structure activity.
	Energy
	// Latency sweeps memory latency per design (Options.LatencySuite
	// selects the suite; its zero value is SFP2K).
	Latency

	numExperiments
)

// experimentNames are the canonical wire names — exactly the names
// /v1/sweep and `experiments -only` have always accepted.
var experimentNames = [numExperiments]string{
	Fig2:    "fig2",
	Fig6:    "fig6",
	Fig7:    "fig7",
	Fig8:    "fig8",
	Fig9:    "fig9",
	Fig10:   "fig10",
	Table3:  "table3",
	Energy:  "energy",
	Latency: "latency",
}

// AllExperiments lists every experiment in presentation order.
func AllExperiments() []ExperimentID {
	out := make([]ExperimentID, numExperiments)
	for i := range out {
		out[i] = ExperimentID(i)
	}
	return out
}

// String returns the canonical experiment name.
func (id ExperimentID) String() string {
	if id >= 0 && id < numExperiments {
		return experimentNames[id]
	}
	return fmt.Sprintf("experiment(%d)", int(id))
}

// Valid reports whether id names a known experiment.
func (id ExperimentID) Valid() bool { return id >= 0 && id < numExperiments }

// MarshalText renders the canonical name, so ExperimentIDs embed cleanly
// in JSON documents and map keys.
func (id ExperimentID) MarshalText() ([]byte, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("bench: invalid experiment id %d", int(id))
	}
	return []byte(id.String()), nil
}

// UnmarshalText resolves a name via ParseExperimentID (aliases included).
func (id *ExperimentID) UnmarshalText(text []byte) error {
	got, err := ParseExperimentID(string(text))
	if err != nil {
		return err
	}
	*id = got
	return nil
}

// ParseExperimentID resolves an experiment name: the canonical short names
// ("fig2" ... "table3", "energy", "latency"), their long aliases
// ("figure2", "figure10"), case-insensitively.
func ParseExperimentID(name string) (ExperimentID, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	n = strings.Replace(n, "figure", "fig", 1)
	for id, canon := range experimentNames {
		if n == canon {
			return ExperimentID(id), nil
		}
	}
	return 0, fmt.Errorf("bench: unknown experiment %q (have: %s)", name, ExperimentNames())
}

// ExperimentNames returns the canonical names, space-separated in
// presentation order — ready for error messages and usage strings.
func ExperimentNames() string {
	return strings.Join(experimentNames[:], " ")
}

// ExperimentResult is the tagged result of one RunExperiment call: ID
// reports which experiment ran and exactly one result field is non-nil.
// Value returns that field untyped; the typed fields serve callers that
// already know what they asked for.
//
// The JSON form is the inner result document itself (the ID rides in
// headers or envelopes chosen by each surface), so a document produced
// through RunExperiment is byte-identical to one from the per-experiment
// entry points.
type ExperimentResult struct {
	ID ExperimentID

	Figure  *FigureResult  // Fig2, Fig6, Fig8, Fig9, Fig10
	Figure7 *Figure7Result // Fig7
	Table3  *Table3Result  // Table3
	Energy  *EnergyResult  // Energy
	Latency *LatencyResult // Latency
}

// Value returns the one non-nil result, untyped.
func (r *ExperimentResult) Value() any {
	switch {
	case r.Figure != nil:
		return r.Figure
	case r.Figure7 != nil:
		return r.Figure7
	case r.Table3 != nil:
		return r.Table3
	case r.Energy != nil:
		return r.Energy
	case r.Latency != nil:
		return r.Latency
	}
	return nil
}

// String renders the result's human-readable table.
func (r *ExperimentResult) String() string {
	if v, ok := r.Value().(fmt.Stringer); ok {
		return v.String()
	}
	return fmt.Sprintf("%s: no result", r.ID)
}

// MarshalJSON emits the inner result document, unwrapped.
func (r *ExperimentResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Value())
}

// RunExperiment runs one experiment of the paper's evaluation. It is the
// unified entry point behind every per-experiment Run* function: resolve
// an ExperimentID (ParseExperimentID for wire names), pick Options, and
// the returned ExperimentResult carries the same document the dedicated
// entry point would have produced.
func RunExperiment(ctx context.Context, id ExperimentID, o Options) (*ExperimentResult, error) {
	out := &ExperimentResult{ID: id}
	var err error
	switch id {
	case Fig2:
		out.Figure, err = runFigure2(ctx, o)
	case Fig6:
		out.Figure, err = runFigure6(ctx, o)
	case Fig7:
		out.Figure7, err = runFigure7(ctx, o)
	case Fig8:
		out.Figure, err = runFigure8(ctx, o)
	case Fig9:
		out.Figure, err = runFigure9(ctx, o)
	case Fig10:
		out.Figure, err = runFigure10(ctx, o)
	case Table3:
		out.Table3, err = runTable3(ctx, o)
	case Energy:
		out.Energy, err = runEnergy(ctx, o)
	case Latency:
		out.Latency, err = runLatencySweep(ctx, o, o.LatencySuite)
	default:
		return nil, fmt.Errorf("bench: invalid experiment id %d", int(id))
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// suite check: Latency's default (the zero LatencySuite) must stay SFP2K,
// the suite the HTTP and CLI surfaces have always swept.
var _ = [1]struct{}{}[trace.SFP2K]
