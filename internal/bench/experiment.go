package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"srlproc/internal/sweep"
	"srlproc/internal/trace"
)

// ExperimentID names one experiment of the paper's evaluation. It is the
// single entry-point vocabulary shared by the library facade
// (srlproc.RunExperiment), the CLI (cmd/experiments) and the HTTP service
// (POST /v1/sweep): every surface resolves a name to an ExperimentID and
// dispatches through RunExperiment, so experiments behave identically no
// matter which door they come in through.
type ExperimentID int

// The experiments, in the evaluation's presentation order.
const (
	// Fig2 sweeps single-level store queue sizes (128..1K entries).
	Fig2 ExperimentID = iota
	// Fig6 compares SRL vs hierarchical vs ideal store queues.
	Fig6
	// Fig7 measures the SRL occupancy distribution.
	Fig7
	// Fig8 ablates the LCF and indexed forwarding.
	Fig8
	// Fig9 crosses LCF sizes with hashing functions.
	Fig9
	// Fig10 compares the forwarding cache against data-cache forwarding.
	Fig10
	// Table3 reports SRL statistics per suite.
	Table3
	// Energy attributes dynamic energy to structure activity.
	Energy
	// Latency sweeps memory latency per design (Options.LatencySuite
	// selects the suite; its zero value is SFP2K).
	Latency
	// Ordering runs the memory-ordering + far-memory scenario pack:
	// {plain, sync} × {local, far, far-degraded} on the baseline and SRL
	// machines (Options.LatencySuite selects the suite, default SFP2K).
	Ordering

	numExperiments
)

// experimentNames are the canonical wire names — exactly the names
// /v1/sweep and `experiments -only` have always accepted.
var experimentNames = [numExperiments]string{
	Fig2:    "fig2",
	Fig6:    "fig6",
	Fig7:    "fig7",
	Fig8:    "fig8",
	Fig9:    "fig9",
	Fig10:   "fig10",
	Table3:   "table3",
	Energy:   "energy",
	Latency:  "latency",
	Ordering: "ordering",
}

// experimentDescriptions are one-line summaries surfaced by the
// discoverability endpoints (GET /v1/experiments, CLI usage errors).
var experimentDescriptions = [numExperiments]string{
	Fig2:    "store queue size sweep: 128..1K-entry STQs over the 48-entry baseline",
	Fig6:    "SRL vs hierarchical vs ideal store queue (percent speedup over baseline)",
	Fig7:    "SRL occupancy distribution over the paper's thresholds",
	Fig8:    "LCF and indexed-forwarding ablation",
	Fig9:    "LCF size crossed with LAB and 3-PAX hashing",
	Fig10:   "separate forwarding cache vs data-cache forwarding",
	Table3:   "SRL statistics per suite",
	Energy:   "dynamic energy attributed to secondary-structure activity",
	Latency:  "IPC vs memory latency per design (suite: Options.LatencySuite, default SFP2K)",
	Ordering: "memory-ordering + far-memory scenario pack: {plain,sync} x {local,far,far-degraded}",
}

// Description returns the experiment's one-line summary.
func (id ExperimentID) Description() string {
	if id.Valid() {
		return experimentDescriptions[id]
	}
	return ""
}

// Aliases returns the alternate names ParseExperimentID accepts for this
// experiment beyond the canonical one ("figure2" for "fig2"); nil when
// the canonical name is the only spelling.
func (id ExperimentID) Aliases() []string {
	if !id.Valid() {
		return nil
	}
	canon := experimentNames[id]
	if strings.HasPrefix(canon, "fig") {
		return []string{"figure" + strings.TrimPrefix(canon, "fig")}
	}
	return nil
}

// AllExperiments lists every experiment in presentation order.
func AllExperiments() []ExperimentID {
	out := make([]ExperimentID, numExperiments)
	for i := range out {
		out[i] = ExperimentID(i)
	}
	return out
}

// String returns the canonical experiment name.
func (id ExperimentID) String() string {
	if id >= 0 && id < numExperiments {
		return experimentNames[id]
	}
	return fmt.Sprintf("experiment(%d)", int(id))
}

// Valid reports whether id names a known experiment.
func (id ExperimentID) Valid() bool { return id >= 0 && id < numExperiments }

// MarshalText renders the canonical name, so ExperimentIDs embed cleanly
// in JSON documents and map keys.
func (id ExperimentID) MarshalText() ([]byte, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("bench: invalid experiment id %d", int(id))
	}
	return []byte(id.String()), nil
}

// UnmarshalText resolves a name via ParseExperimentID (aliases included).
func (id *ExperimentID) UnmarshalText(text []byte) error {
	got, err := ParseExperimentID(string(text))
	if err != nil {
		return err
	}
	*id = got
	return nil
}

// ParseExperimentID resolves an experiment name: the canonical short names
// ("fig2" ... "table3", "energy", "latency"), their long aliases
// ("figure2", "figure10"), case-insensitively.
func ParseExperimentID(name string) (ExperimentID, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	n = strings.Replace(n, "figure", "fig", 1)
	for id, canon := range experimentNames {
		if n == canon {
			return ExperimentID(id), nil
		}
	}
	return 0, fmt.Errorf("bench: unknown experiment %q (have: %s)", name, ExperimentNames())
}

// ExperimentNames returns the canonical names, space-separated in
// presentation order — ready for error messages and usage strings.
func ExperimentNames() string {
	return strings.Join(experimentNames[:], " ")
}

// ExperimentResult is the tagged result of one RunExperiment call: ID
// reports which experiment ran and exactly one result field is non-nil.
// Value returns that field untyped; the typed fields serve callers that
// already know what they asked for.
//
// The JSON form is the inner result document itself (the ID rides in
// headers or envelopes chosen by each surface), so a document produced
// through RunExperiment is byte-identical to one from the per-experiment
// entry points.
type ExperimentResult struct {
	ID ExperimentID

	Figure   *FigureResult   // Fig2, Fig6, Fig8, Fig9, Fig10
	Figure7  *Figure7Result  // Fig7
	Table3   *Table3Result   // Table3
	Energy   *EnergyResult   // Energy
	Latency  *LatencyResult  // Latency
	Ordering *OrderingResult // Ordering
}

// Value returns the one non-nil result, untyped.
func (r *ExperimentResult) Value() any {
	switch {
	case r.Figure != nil:
		return r.Figure
	case r.Figure7 != nil:
		return r.Figure7
	case r.Table3 != nil:
		return r.Table3
	case r.Energy != nil:
		return r.Energy
	case r.Latency != nil:
		return r.Latency
	case r.Ordering != nil:
		return r.Ordering
	}
	return nil
}

// String renders the result's human-readable table.
func (r *ExperimentResult) String() string {
	if v, ok := r.Value().(fmt.Stringer); ok {
		return v.String()
	}
	return fmt.Sprintf("%s: no result", r.ID)
}

// MarshalJSON emits the inner result document, unwrapped.
func (r *ExperimentResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Value())
}

// plan is one experiment's decomposition: the canonical simulation point
// list and the assembly that turns a completed report over exactly those
// points into the experiment's result document. The split is what makes
// experiments distributable — a coordinator enumerates the same points,
// shards them across workers by fingerprint, merges the partial reports
// and assembles the identical document.
type plan struct {
	points   []sweep.Point
	assemble func(*sweep.Report) (*ExperimentResult, error)

	// csvHeader and csvRows describe the experiment's WriteCSV form: the
	// exact header fields and the number of data rows below them. They are
	// filled by every plan constructor from the same labeled-config lists
	// the assembly uses, so Shape never drifts from the real export.
	csvHeader []string
	csvRows   int
}

// experimentPlan builds the plan for one experiment under the given
// options. It is deterministic: every process of a cluster derives the
// same point list (and therefore the same point fingerprints) from the
// same (id, Options) pair.
func experimentPlan(id ExperimentID, o Options) (*plan, error) {
	switch id {
	case Fig2:
		return planFigure2(o), nil
	case Fig6:
		return planFigure6(o), nil
	case Fig7:
		return planFigure7(o), nil
	case Fig8:
		return planFigure8(o), nil
	case Fig9:
		return planFigure9(o), nil
	case Fig10:
		return planFigure10(o), nil
	case Table3:
		return planTable3(o), nil
	case Energy:
		return planEnergy(o), nil
	case Latency:
		return planLatencySweep(o, o.LatencySuite), nil
	case Ordering:
		return planOrdering(o, o.LatencySuite), nil
	}
	return nil, fmt.Errorf("bench: invalid experiment id %d", int(id))
}

// ExperimentPoints returns the experiment's canonical simulation point
// list under the given options, in the exact order AssembleExperiment
// expects a report's points. Index i of this list is the job identity the
// cluster protocol ships between coordinator and workers: both sides
// re-derive the list from (id, Options) and agree on every index and
// fingerprint without ever serializing a core.Config.
func ExperimentPoints(id ExperimentID, o Options) ([]sweep.Point, error) {
	p, err := experimentPlan(id, o)
	if err != nil {
		return nil, err
	}
	return p.points, nil
}

// AssembleExperiment aggregates a completed report over exactly the
// ExperimentPoints list — same points, same order — into the experiment's
// result document. The report may come from one sweep.Run or from
// sweep.MergeReports over per-shard partial reports: the simulator is
// deterministic in its config, so both assemble to byte-identical JSON.
// Every point must carry results; failed or missing points are an error.
func AssembleExperiment(id ExperimentID, o Options, rep *sweep.Report) (*ExperimentResult, error) {
	p, err := experimentPlan(id, o)
	if err != nil {
		return nil, err
	}
	if len(rep.Points) != len(p.points) {
		return nil, fmt.Errorf("bench: %s report has %d points, want %d", id, len(rep.Points), len(p.points))
	}
	return p.assemble(rep)
}

// ExperimentShape describes the deterministic output structure of one
// experiment under given options: how many simulation points it
// enumerates, and the exact header fields plus data-row count of its
// WriteCSV form. The paper-artifact pipeline (internal/paper) validates
// every emitted CSV against this shape, so a truncated run or a schema
// drift hard-fails instead of producing a silently short figure.
type ExperimentShape struct {
	// Points is the canonical simulation point count — len(ExperimentPoints).
	Points int
	// CSVHeader is the experiment's WriteCSV header, one entry per column
	// (unquoted; WriteCSV applies CSV quoting where labels need it).
	CSVHeader []string
	// CSVRows is the number of data rows WriteCSV emits below the header.
	CSVRows int
}

// Shape returns the experiment's output shape under the given options.
// The shape depends only on the experiment's structure (labels, suites,
// swept latencies), never on simulation scale: quick and full profiles
// share identical shapes.
func Shape(id ExperimentID, o Options) (ExperimentShape, error) {
	p, err := experimentPlan(id, o)
	if err != nil {
		return ExperimentShape{}, err
	}
	return ExperimentShape{
		Points:    len(p.points),
		CSVHeader: p.csvHeader,
		CSVRows:   p.csvRows,
	}, nil
}

// RunExperiment runs one experiment of the paper's evaluation. It is the
// unified entry point behind every per-experiment Run* function: resolve
// an ExperimentID (ParseExperimentID for wire names), pick Options, and
// the returned ExperimentResult carries the same document the dedicated
// entry point would have produced. It is exactly ExperimentPoints →
// sweep.Run → AssembleExperiment, which is also the decomposition the
// cluster coordinator distributes across workers.
func RunExperiment(ctx context.Context, id ExperimentID, o Options) (*ExperimentResult, error) {
	p, err := experimentPlan(id, o)
	if err != nil {
		return nil, err
	}
	rep, err := sweep.Run(ctx, p.points, o.sweepOptions())
	if err != nil {
		return nil, err
	}
	return p.assemble(rep)
}

// suite check: Latency's default (the zero LatencySuite) must stay SFP2K,
// the suite the HTTP and CLI surfaces have always swept.
var _ = [1]struct{}{}[trace.SFP2K]
