// Package bench defines and runs the paper's experiments: every table and
// figure of the evaluation section maps to one Run* function returning the
// same rows/series the paper reports, plus formatting helpers.
//
// Every experiment has a context-accepting form (RunFigure2Context, ...)
// that supports cancellation and deadlines; the plain forms run with
// context.Background(). All simulation points execute on the
// internal/sweep engine: a bounded worker pool with panic isolation,
// progress reporting and process-wide result memoization, tuned through
// Options.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"srlproc/internal/core"
	"srlproc/internal/lsq"
	"srlproc/internal/obs"
	"srlproc/internal/power"
	"srlproc/internal/stats"
	"srlproc/internal/sweep"
	"srlproc/internal/trace"
)

// Progress is one sweep progress snapshot; see sweep.Progress.
type Progress = sweep.Progress

// ProgressFunc observes experiment progress; see sweep.ProgressFunc.
type ProgressFunc = sweep.ProgressFunc

// Options control experiment scale (simulated micro-ops per point) and how
// the sweep engine runs the points.
type Options struct {
	WarmupUops uint64
	RunUops    uint64
	Seed       uint64

	// Parallel is the pre-worker-pool concurrency switch.
	//
	// Deprecated: set Workers instead. Parallel is only consulted when
	// Workers is 0: Parallel=true maps to a GOMAXPROCS-sized pool,
	// Parallel=false to a serial run.
	Parallel bool

	// Workers bounds the simulation worker pool: n > 1 runs at most n
	// points concurrently, 1 runs serially, and 0 defers to the
	// deprecated Parallel switch (DefaultOptions and QuickOptions set
	// Parallel, so 0 means a GOMAXPROCS-sized pool for them). Negative
	// values mean GOMAXPROCS.
	Workers int

	// Progress, when non-nil, is called after every completed point.
	Progress ProgressFunc

	// NoCache disables cross-experiment result memoization, forcing
	// every point to simulate fresh.
	NoCache bool

	// Cache overrides the memo cache the sweep engine uses; nil means the
	// process-wide sweep.Global() cache. Long-lived callers (the srlserved
	// HTTP server) supply their own bounded cache here. Ignored when
	// NoCache is set.
	Cache *sweep.Cache

	// Obs configures per-run observability (cycle-window timeline sampling
	// and event tracing) on every simulated point; the zero value disables
	// both. See obs.Config. Observed points fingerprint differently from
	// unobserved ones, so they memoize separately.
	Obs obs.Config

	// LatencySuite selects the benchmark suite the Latency experiment
	// sweeps; other experiments ignore it. The zero value is trace.SFP2K,
	// the suite the CLI and HTTP surfaces have always used.
	LatencySuite trace.Suite

	// NoEventSkip disables the core's event-driven cycle-skip fast path
	// on every simulated point (cmd/experiments -noskip). Results are
	// bit-identical either way — core.Config.EventSkip is excluded from
	// the memo fingerprint for exactly that reason — so this exists only
	// to measure the fast path itself or to rule it out while chasing a
	// suspected simulator bug.
	NoEventSkip bool
}

// DefaultOptions is sized for minutes-scale full reproduction runs.
func DefaultOptions() Options {
	return Options{WarmupUops: 30_000, RunUops: 150_000, Seed: 1, Parallel: true}
}

// QuickOptions is sized for fast sanity runs and unit tests.
func QuickOptions() Options {
	return Options{WarmupUops: 8_000, RunUops: 40_000, Seed: 1, Parallel: true}
}

func (o Options) apply(cfg core.Config) core.Config {
	cfg.WarmupUops = o.WarmupUops
	cfg.RunUops = o.RunUops
	cfg.Seed = o.Seed
	cfg.Obs = o.Obs
	if o.NoEventSkip {
		cfg.EventSkip = false
	}
	return cfg
}

// Validate normalises the options in place and reports inconsistencies.
// It is the one place the deprecated Parallel switch is interpreted:
// Workers == 0 folds Parallel into Workers (true → a GOMAXPROCS-sized
// pool, false → serial), after which Parallel is never consulted again.
// Every experiment entry point validates its options, so callers only
// need to call this to normalise early or to surface errors themselves.
func (o *Options) Validate() error {
	if o.Workers == 0 {
		if o.Parallel {
			o.Workers = -1 // sweep: GOMAXPROCS
		} else {
			o.Workers = 1
		}
	}
	if o.RunUops == 0 {
		return fmt.Errorf("bench: RunUops must be positive")
	}
	return nil
}

func (o Options) sweepOptions() sweep.Options {
	o.Validate() // normalise the Parallel switch on our local copy
	return sweep.Options{Workers: o.Workers, Progress: o.Progress, NoCache: o.NoCache, Cache: o.Cache}
}

// labeledConfig pairs one figure-series label with its configuration.
type labeledConfig struct {
	Label string
	Cfg   core.Config
}

// matrixPoints enumerates one configuration per label across all suites in
// sorted label order — the canonical point order of every matrix-shaped
// experiment. The same enumeration runs on a standalone process, on a
// cluster coordinator (which shards the list by point fingerprint) and on
// every worker (which re-derives it to resolve job indexes), so it must be
// deterministic in (cfgs, suites) alone.
func matrixPoints(cfgs map[string]core.Config) []sweep.Point {
	labels := make([]string, 0, len(cfgs))
	for label := range cfgs {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	var points []sweep.Point
	for _, label := range labels {
		for _, s := range trace.AllSuites() {
			points = append(points, sweep.Point{Label: label, Cfg: cfgs[label], Suite: s})
		}
	}
	return points
}

// matrixRaw reassembles results[label][suite] from a completed matrix
// report. Every point must carry results: a report with failed or missing
// points cannot be aggregated into a figure.
func matrixRaw(rep *sweep.Report) (map[string]map[trace.Suite]*core.Results, error) {
	out := make(map[string]map[trace.Suite]*core.Results)
	for i := range rep.Points {
		pr := &rep.Points[i]
		if pr.Results == nil {
			return nil, pointError(pr)
		}
		m := out[pr.Point.Label]
		if m == nil {
			m = make(map[trace.Suite]*core.Results)
			out[pr.Point.Label] = m
		}
		m[pr.Point.Suite] = pr.Results
	}
	return out, nil
}

// pointError describes a point that finished without results.
func pointError(pr *sweep.PointResult) error {
	if pr.Err != nil {
		return fmt.Errorf("bench: point %s: %w", pr.Point, pr.Err)
	}
	return fmt.Errorf("bench: point %s has no results", pr.Point)
}

// SpeedupSeries is one figure series: percent speedup over baseline per
// suite.
type SpeedupSeries struct {
	Label   string
	BySuite map[trace.Suite]float64
}

// FigureResult is a generic speedup figure: several series over the suites.
type FigureResult struct {
	Title  string
	Series []SpeedupSeries
	// Raw results for deeper inspection: raw[label][suite].
	Raw map[string]map[trace.Suite]*core.Results
}

// String renders the figure as a table (suites as rows, series as columns).
func (f *FigureResult) String() string {
	headers := []string{"Suite"}
	for _, s := range f.Series {
		headers = append(headers, s.Label)
	}
	t := stats.NewTable(f.Title, headers...)
	for _, su := range trace.AllSuites() {
		cells := []interface{}{su.String()}
		for _, s := range f.Series {
			cells = append(cells, s.BySuite[su])
		}
		t.AddRowf(cells...)
	}
	return t.String()
}

// speedupPlan decomposes a percent-speedup figure (each labelled config
// over the baseline config, per suite) into its point list and assembly.
func speedupPlan(id ExperimentID, o Options, title string, baseline core.Config, labeled []labeledConfig) *plan {
	cfgs := map[string]core.Config{"__base__": o.apply(baseline)}
	for _, lc := range labeled {
		cfgs[lc.Label] = o.apply(lc.Cfg)
	}
	header := []string{"suite"}
	for _, lc := range labeled {
		header = append(header, lc.Label)
	}
	return &plan{
		points:    matrixPoints(cfgs),
		csvHeader: header,
		csvRows:   len(trace.AllSuites()),
		assemble: func(rep *sweep.Report) (*ExperimentResult, error) {
			raw, err := matrixRaw(rep)
			if err != nil {
				return nil, err
			}
			fig := &FigureResult{Title: title, Raw: raw}
			for _, lc := range labeled {
				s := SpeedupSeries{Label: lc.Label, BySuite: make(map[trace.Suite]float64)}
				for _, su := range trace.AllSuites() {
					s.BySuite[su] = raw[lc.Label][su].SpeedupOver(raw["__base__"][su])
				}
				fig.Series = append(fig.Series, s)
			}
			return &ExperimentResult{ID: id, Figure: fig}, nil
		},
	}
}

// --- Figure 2: store queue size sweep ---

// Figure2Sizes are the paper's swept store queue sizes.
var Figure2Sizes = []int{128, 256, 512, 1024}

// RunFigure2 reproduces Figure 2 with context.Background(); see
// RunFigure2Context.
//
// Deprecated: migrate to RunExperiment(ctx, Fig2, o) — the unified entry
// point every surface dispatches through — or RunFigure2Context to keep
// the typed result; this form cannot be cancelled.
func RunFigure2(o Options) (*FigureResult, error) {
	return RunFigure2Context(context.Background(), o)
}

// RunFigure2Context reproduces Figure 2: percent speedup of single-level
// store queues of 128..1K entries over the 48-entry baseline, per suite.
// It is a typed shim over RunExperiment(ctx, Fig2, o).
//
// Deprecated: call RunExperiment(ctx, Fig2, o) directly and read the
// typed payload off the ExperimentResult.
func RunFigure2Context(ctx context.Context, o Options) (*FigureResult, error) {
	r, err := RunExperiment(ctx, Fig2, o)
	if err != nil {
		return nil, err
	}
	return r.Figure, nil
}

func planFigure2(o Options) *plan {
	base := core.DefaultConfig(core.DesignBaseline)
	var labeled []labeledConfig
	for _, size := range Figure2Sizes {
		cfg := core.DefaultConfig(core.DesignLargeSTQ)
		cfg.STQSize = size
		label := fmt.Sprintf("%d-entry STQ", size)
		if size == 1024 {
			label = "1K-entry STQ"
		}
		labeled = append(labeled, labeledConfig{label, cfg})
	}
	return speedupPlan(Fig2, o, "Figure 2: impact of store queue size (percent speedup over 48-entry STQ)", base, labeled)
}

// --- Figure 6: SRL vs hierarchical vs ideal ---

// RunFigure6 reproduces Figure 6 with context.Background(); see
// RunFigure6Context.
//
// Deprecated: migrate to RunExperiment(ctx, Fig6, o) or
// RunFigure6Context; this form cannot be cancelled.
func RunFigure6(o Options) (*FigureResult, error) {
	return RunFigure6Context(context.Background(), o)
}

// RunFigure6Context reproduces Figure 6: SRL vs the hierarchical store
// queue vs an ideal (1K-entry, fast) store queue, as percent speedup over
// the baseline. It is a typed shim over RunExperiment(ctx, Fig6, o).
//
// Deprecated: call RunExperiment(ctx, Fig6, o) directly and read the
// typed payload off the ExperimentResult.
func RunFigure6Context(ctx context.Context, o Options) (*FigureResult, error) {
	r, err := RunExperiment(ctx, Fig6, o)
	if err != nil {
		return nil, err
	}
	return r.Figure, nil
}

func planFigure6(o Options) *plan {
	base := core.DefaultConfig(core.DesignBaseline)
	srl := core.DefaultConfig(core.DesignSRL)
	hier := core.DefaultConfig(core.DesignHierarchical)
	ideal := core.DefaultConfig(core.DesignLargeSTQ)
	ideal.STQSize = 1024
	return speedupPlan(Fig6, o, "Figure 6: SRL performance comparison (percent speedup over baseline)", base,
		[]labeledConfig{
			{"SRL", srl},
			{"Hierarchical STQ", hier},
			{"Ideal STQ", ideal},
		})
}

// --- Table 3: SRL statistics ---

// Table3Row is one suite's SRL statistics.
type Table3Row struct {
	Suite               trace.Suite
	RedoneStoresPct     float64
	MissDepStoresPct    float64
	MissDepUopsPct      float64
	SRLLoadStallsPer10K float64
	PctTimeSRLOccupied  float64
}

// Table3Result holds all suites' SRL statistics plus raw results.
type Table3Result struct {
	Rows []Table3Row
	Raw  map[trace.Suite]*core.Results
}

// String renders the table in the paper's format.
func (t *Table3Result) String() string {
	tb := stats.NewTable("Table 3: SRL statistics",
		"Suite", "Redone Stores(%)", "Miss-dep Stores(%)", "Miss-dep Uops(%)", "SRL Load Stalls/10K", "%time SRL occupied")
	for _, r := range t.Rows {
		tb.AddRowf(r.Suite.String(), r.RedoneStoresPct, r.MissDepStoresPct, r.MissDepUopsPct,
			r.SRLLoadStallsPer10K, r.PctTimeSRLOccupied)
	}
	return tb.String()
}

// RunTable3 reproduces Table 3 with context.Background(); see
// RunTable3Context.
//
// Deprecated: migrate to RunExperiment(ctx, Table3, o) or
// RunTable3Context; this form cannot be cancelled.
func RunTable3(o Options) (*Table3Result, error) {
	return RunTable3Context(context.Background(), o)
}

// RunTable3Context reproduces Table 3 on the SRL configuration. It is a
// typed shim over RunExperiment(ctx, Table3, o).
//
// Deprecated: call RunExperiment(ctx, Table3, o) directly and read the
// typed payload off the ExperimentResult.
func RunTable3Context(ctx context.Context, o Options) (*Table3Result, error) {
	r, err := RunExperiment(ctx, Table3, o)
	if err != nil {
		return nil, err
	}
	return r.Table3, nil
}

func planTable3(o Options) *plan {
	cfgs := map[string]core.Config{"srl": o.apply(core.DefaultConfig(core.DesignSRL))}
	return &plan{
		points: matrixPoints(cfgs),
		csvHeader: []string{"suite", "redone_stores_pct", "miss_dep_stores_pct",
			"miss_dep_uops_pct", "srl_load_stalls_per_10k", "pct_time_srl_occupied"},
		csvRows: len(trace.AllSuites()),
		assemble: func(rep *sweep.Report) (*ExperimentResult, error) {
			raw, err := matrixRaw(rep)
			if err != nil {
				return nil, err
			}
			out := &Table3Result{Raw: raw["srl"]}
			for _, su := range trace.AllSuites() {
				r := raw["srl"][su]
				out.Rows = append(out.Rows, Table3Row{
					Suite:               su,
					RedoneStoresPct:     r.PctRedoneStores(),
					MissDepStoresPct:    r.PctMissDependentStores(),
					MissDepUopsPct:      r.PctMissDependentUops(),
					SRLLoadStallsPer10K: r.SRLStallsPer10K(),
					PctTimeSRLOccupied:  r.PctTimeSRLOccupied(),
				})
			}
			return &ExperimentResult{ID: Table3, Table3: out}, nil
		},
	}
}

// --- Figure 7: SRL occupancy distribution ---

// Figure7Result holds, per suite, the percent of SRL-occupied time with
// more than N entries, for the paper's thresholds.
type Figure7Result struct {
	Thresholds []uint64
	BySuite    map[trace.Suite][]float64
	// Raw results per suite for deeper inspection (occupancy histograms,
	// timelines when Options.Obs is set).
	Raw map[trace.Suite]*core.Results
}

// String renders the distribution.
func (f *Figure7Result) String() string {
	headers := []string{"Suite"}
	for _, th := range f.Thresholds {
		headers = append(headers, fmt.Sprintf(">%d", th))
	}
	t := stats.NewTable("Figure 7: SRL occupancy distribution (percent of occupied time)", headers...)
	for _, su := range trace.AllSuites() {
		cells := []interface{}{su.String()}
		for _, v := range f.BySuite[su] {
			cells = append(cells, v)
		}
		t.AddRowf(cells...)
	}
	return t.String()
}

// RunFigure7 reproduces Figure 7 with context.Background(); see
// RunFigure7Context.
//
// Deprecated: migrate to RunExperiment(ctx, Fig7, o) or
// RunFigure7Context; this form cannot be cancelled.
func RunFigure7(o Options) (*Figure7Result, error) {
	return RunFigure7Context(context.Background(), o)
}

// RunFigure7Context reproduces Figure 7 from the SRL configuration's
// occupancy tracker. It is a typed shim over RunExperiment(ctx, Fig7, o).
//
// Deprecated: call RunExperiment(ctx, Fig7, o) directly and read the
// typed payload off the ExperimentResult.
func RunFigure7Context(ctx context.Context, o Options) (*Figure7Result, error) {
	r, err := RunExperiment(ctx, Fig7, o)
	if err != nil {
		return nil, err
	}
	return r.Figure7, nil
}

func planFigure7(o Options) *plan {
	cfgs := map[string]core.Config{"srl": o.apply(core.DefaultConfig(core.DesignSRL))}
	header := []string{"suite"}
	for _, th := range stats.Figure7Thresholds {
		header = append(header, fmt.Sprintf("gt_%d", th))
	}
	return &plan{
		points:    matrixPoints(cfgs),
		csvHeader: header,
		csvRows:   len(trace.AllSuites()),
		assemble: func(rep *sweep.Report) (*ExperimentResult, error) {
			raw, err := matrixRaw(rep)
			if err != nil {
				return nil, err
			}
			out := &Figure7Result{Thresholds: stats.Figure7Thresholds, BySuite: make(map[trace.Suite][]float64), Raw: raw["srl"]}
			for _, su := range trace.AllSuites() {
				occ := raw["srl"][su].SRLOccupancy
				var vals []float64
				for _, th := range out.Thresholds {
					vals = append(vals, 100*occ.FracOccupiedAbove(th))
				}
				out.BySuite[su] = vals
			}
			return &ExperimentResult{ID: Fig7, Figure7: out}, nil
		},
	}
}

// --- Figure 8: LCF and indexed forwarding ablation ---

// RunFigure8 reproduces Figure 8 with context.Background(); see
// RunFigure8Context.
//
// Deprecated: migrate to RunExperiment(ctx, Fig8, o) or
// RunFigure8Context; this form cannot be cancelled.
func RunFigure8(o Options) (*FigureResult, error) {
	return RunFigure8Context(context.Background(), o)
}

// RunFigure8Context reproduces Figure 8: SRL, SRL without indexed
// forwarding, and SRL without the LCF and indexed forwarding, over the
// baseline. It is a typed shim over RunExperiment(ctx, Fig8, o).
//
// Deprecated: call RunExperiment(ctx, Fig8, o) directly and read the
// typed payload off the ExperimentResult.
func RunFigure8Context(ctx context.Context, o Options) (*FigureResult, error) {
	r, err := RunExperiment(ctx, Fig8, o)
	if err != nil {
		return nil, err
	}
	return r.Figure, nil
}

func planFigure8(o Options) *plan {
	base := core.DefaultConfig(core.DesignBaseline)
	full := core.DefaultConfig(core.DesignSRL)
	noIF := core.DefaultConfig(core.DesignSRL)
	noIF.UseIndexedFwd = false
	noLCF := core.DefaultConfig(core.DesignSRL)
	noLCF.UseIndexedFwd = false
	noLCF.UseLCF = false
	return speedupPlan(Fig8, o, "Figure 8: impact of LCF and indexed forwarding (percent speedup over baseline)", base,
		[]labeledConfig{
			{"SRL", full},
			{"SRL w/o indexed fwd", noIF},
			{"SRL w/o LCF+IF", noLCF},
		})
}

// --- Figure 9: LCF size and hash sweep ---

// RunFigure9 reproduces Figure 9 with context.Background(); see
// RunFigure9Context.
//
// Deprecated: migrate to RunExperiment(ctx, Fig9, o) or
// RunFigure9Context; this form cannot be cancelled.
func RunFigure9(o Options) (*FigureResult, error) {
	return RunFigure9Context(context.Background(), o)
}

// RunFigure9Context reproduces Figure 9: LCF sizes 256/2K crossed with LAB
// and 3-PAX hashing, plus a no-LCF reference, over the baseline. It is a
// typed shim over RunExperiment(ctx, Fig9, o).
//
// Deprecated: call RunExperiment(ctx, Fig9, o) directly and read the
// typed payload off the ExperimentResult.
func RunFigure9Context(ctx context.Context, o Options) (*FigureResult, error) {
	r, err := RunExperiment(ctx, Fig9, o)
	if err != nil {
		return nil, err
	}
	return r.Figure, nil
}

func planFigure9(o Options) *plan {
	base := core.DefaultConfig(core.DesignBaseline)
	mk := func(size int, hash lsq.HashKind) core.Config {
		cfg := core.DefaultConfig(core.DesignSRL)
		cfg.LCFSize = size
		cfg.LCFHash = hash
		return cfg
	}
	noLCF := core.DefaultConfig(core.DesignSRL)
	noLCF.UseLCF = false
	noLCF.UseIndexedFwd = false
	return speedupPlan(Fig9, o, "Figure 9: LCF size and hashing function impact (percent speedup over baseline)", base,
		[]labeledConfig{
			{"No LCF", noLCF},
			{"LCF256 + LAB", mk(256, lsq.HashLAB)},
			{"LCF2K + LAB", mk(2048, lsq.HashLAB)},
			{"LCF256 + 3-PAX", mk(256, lsq.Hash3PAX)},
			{"LCF2K + 3-PAX", mk(2048, lsq.Hash3PAX)},
		})
}

// --- Figure 10: forwarding cache vs data cache ---

// RunFigure10 reproduces Figure 10 with context.Background(); see
// RunFigure10Context.
//
// Deprecated: migrate to RunExperiment(ctx, Fig10, o) or
// RunFigure10Context; this form cannot be cancelled.
func RunFigure10(o Options) (*FigureResult, error) {
	return RunFigure10Context(context.Background(), o)
}

// RunFigure10Context reproduces Figure 10: SRL with the separate
// forwarding cache vs using the data cache for temporary updates, over the
// baseline. It is a typed shim over RunExperiment(ctx, Fig10, o).
//
// Deprecated: call RunExperiment(ctx, Fig10, o) directly and read the
// typed payload off the ExperimentResult.
func RunFigure10Context(ctx context.Context, o Options) (*FigureResult, error) {
	r, err := RunExperiment(ctx, Fig10, o)
	if err != nil {
		return nil, err
	}
	return r.Figure, nil
}

func planFigure10(o Options) *plan {
	base := core.DefaultConfig(core.DesignBaseline)
	fc := core.DefaultConfig(core.DesignSRL)
	dc := core.DefaultConfig(core.DesignSRL)
	dc.UseFC = false
	return speedupPlan(Fig10, o, "Figure 10: forwarding design option impact (percent speedup over baseline)", base,
		[]labeledConfig{
			{"Separate forwarding cache", fc},
			{"Data cache for forwarding", dc},
		})
}

// --- Section 6.2: power and area ---

// RunPowerArea reproduces the Section 6.2 comparison.
func RunPowerArea() string {
	hier, srl, srlFC := power.Section62()
	var b strings.Builder
	b.WriteString("Section 6.2: power and area comparison (90nm, calibrated analytical model)\n")
	for _, r := range []power.Report{hier, srl, srlFC} {
		b.WriteString("  " + r.String() + "\n")
	}
	b.WriteString(fmt.Sprintf("  area reduction: %.1fx   leakage reduction: %.1fx   dynamic reduction: %.1fx\n",
		hier.AreaMM2/srlFC.AreaMM2, hier.LeakageMW/srlFC.LeakageMW, hier.DynamicMW/srlFC.DynamicMW))
	return b.String()
}

// --- Tables 1 and 2 (configuration echoes) ---

// ConfigTable is a titled header+rows view of one configuration echo table
// (Tables 1 and 2). The aligned-text renderers below consume it, and so do
// renderers with other output grammars — the paper-artifact pipeline
// (internal/paper) emits the same rows as Markdown and LaTeX.
type ConfigTable struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// renderConfigTable renders a ConfigTable in the aligned-text format the
// CLI has always printed.
func renderConfigTable(ct ConfigTable) string {
	t := stats.NewTable(ct.Title, ct.Headers...)
	for _, r := range ct.Rows {
		t.AddRow(r...)
	}
	return t.String()
}

// Table1 returns the baseline machine configuration as structured rows.
func Table1() ConfigTable {
	cfg := core.DefaultConfig(core.DesignSRL)
	ct := ConfigTable{Title: "Table 1: baseline processor model", Headers: []string{"Parameter", "Value"}}
	add := func(k, v string) { ct.Rows = append(ct.Rows, []string{k, v}) }
	add("Processor frequency", "8 GHz (100ns memory = 800 cycles)")
	add("Rename/issue/retire width", fmt.Sprintf("%d/%d/%d", cfg.AllocWidth, cfg.IssueWidth, cfg.RetireWidth))
	add("Branch mispred. penalty", fmt.Sprintf("minimum %d cycles", cfg.MispredictPenalty))
	add("Scheduling window size", fmt.Sprintf("%d Int, %d FP, %d Mem", cfg.SchedInt, cfg.SchedFP, cfg.SchedMem))
	add("Map table checkpoints", fmt.Sprintf("%d", cfg.Checkpoints))
	add("Register file", fmt.Sprintf("%d int, %d fp", cfg.IntRegs, cfg.FPRegs))
	add("Store buffer size", fmt.Sprintf("%d", cfg.L1STQSize))
	add("Load buffer", fmt.Sprintf("%d entries", cfg.LQSize))
	add("Memory dependence pred.", fmt.Sprintf("store sets (%d-entry SSIT)", cfg.StoreSetsSize))
	add("Branch predictor", "gshare-perceptron hybrid (64K gshare, 256 perceptron)")
	add("Hardware data prefetcher", fmt.Sprintf("stream-based (%d streams)", cfg.Mem.PrefetchN))
	add("L1 data cache", fmt.Sprintf("%d KB, %d cycles", cfg.Mem.L1Size/1024, cfg.Mem.L1Latency))
	add("L2 unified cache", fmt.Sprintf("%d MB, %d cycles", cfg.Mem.L2Size/(1024*1024), cfg.Mem.L2Latency))
	add("L1/L2 line size", "64 bytes")
	add("Memory lat (req to use)", fmt.Sprintf("%d cycles (100 ns)", cfg.Mem.MemLatency))
	return ct
}

// RenderTable1 prints the baseline machine configuration.
func RenderTable1() string { return renderConfigTable(Table1()) }

// Table2 returns the benchmark suite table as structured rows.
func Table2() ConfigTable {
	ct := ConfigTable{Title: "Table 2: benchmark suites", Headers: []string{"Suite", "# of Bench", "Desc./Examples"}}
	for _, su := range trace.AllSuites() {
		p := trace.ProfileFor(su)
		ct.Rows = append(ct.Rows, []string{p.Name, fmt.Sprintf("%d", p.NumBench), p.Desc})
	}
	return ct
}

// RenderTable2 prints the benchmark suite table.
func RenderTable2() string { return renderConfigTable(Table2()) }

// --- Energy attribution (extension beyond the paper's static Section 6.2) ---

// EnergyRow is one design's simulated-activity energy on one suite.
type EnergyRow struct {
	Design      core.StoreDesign
	Suite       trace.Suite
	NJPer1KUops float64
	CAMSharePct float64
}

// EnergyResult compares secondary load/store structure dynamic energy,
// attributed from simulated activity counts via the calibrated
// per-operation energies of internal/power.
type EnergyResult struct {
	Rows []EnergyRow
}

// String renders the comparison (suites as rows, designs as column pairs).
func (e *EnergyResult) String() string {
	t := stats.NewTable("Energy attribution: secondary load/store structures (dynamic, from simulated activity)",
		"Suite", "Design", "nJ / 1k uops", "CAM share %")
	for _, r := range e.Rows {
		t.AddRowf(r.Suite.String(), r.Design.String(), r.NJPer1KUops, r.CAMSharePct)
	}
	return t.String()
}

// RunEnergy runs the energy attribution with context.Background(); see
// RunEnergyContext.
//
// Deprecated: migrate to RunExperiment(ctx, Energy, o) or
// RunEnergyContext; this form cannot be cancelled.
func RunEnergy(o Options) (*EnergyResult, error) {
	return RunEnergyContext(context.Background(), o)
}

// RunEnergyContext runs the hierarchical and SRL designs across all suites
// and attributes dynamic energy to their structure activity. It is a typed
// shim over RunExperiment(ctx, Energy, o).
//
// Deprecated: call RunExperiment(ctx, Energy, o) directly and read the
// typed payload off the ExperimentResult.
func RunEnergyContext(ctx context.Context, o Options) (*EnergyResult, error) {
	r, err := RunExperiment(ctx, Energy, o)
	if err != nil {
		return nil, err
	}
	return r.Energy, nil
}

// planEnergy quantifies the paper's argument from the simulation itself:
// the hierarchical design's energy is dominated by CAM comparator
// activations that the SRL design simply never performs.
func planEnergy(o Options) *plan {
	filtered := core.DefaultConfig(core.DesignFilteredSTQ)
	filtered.STQSize = 1024
	cfgs := map[string]core.Config{
		"hier":     o.apply(core.DefaultConfig(core.DesignHierarchical)),
		"filtered": o.apply(filtered),
		"srl":      o.apply(core.DefaultConfig(core.DesignSRL)),
	}
	return &plan{
		points:    matrixPoints(cfgs),
		csvHeader: []string{"design", "suite", "nj_per_1k_uops", "cam_share_pct"},
		csvRows:   len(cfgs) * len(trace.AllSuites()),
		assemble: func(rep *sweep.Report) (*ExperimentResult, error) {
			raw, err := matrixRaw(rep)
			if err != nil {
				return nil, err
			}
			out := &EnergyResult{}
			for _, label := range []string{"hier", "filtered", "srl"} {
				for _, su := range trace.AllSuites() {
					r := raw[label][su]
					a := power.ActivityEnergy{
						CamEntryOps: r.CamEntryOps,
						SRLReads:    r.SRLReads,
						SRLWrites:   r.SRLWrites,
						LCFProbes:   r.LCFProbes,
						FCLookups:   r.FCLookups,
						MTBProbes:   r.MTBProbes,
						LBEntryCmps: r.LBEntryCmps,
					}
					out.Rows = append(out.Rows, EnergyRow{
						Design:      raw[label][su].Design,
						Suite:       su,
						NJPer1KUops: a.TotalPJ() / 1000 / (float64(r.Uops) / 1000),
						CAMSharePct: a.CAMSharePct(),
					})
				}
			}
			return &ExperimentResult{ID: Energy, Energy: out}, nil
		},
	}
}

// --- Latency tolerance sweep (the paper's framing, quantified) ---

// LatencyPoint is one (memory latency, design) measurement.
type LatencyPoint struct {
	Design     core.StoreDesign
	MemLatency uint64
	IPC        float64
}

// LatencyResult holds the tolerance curves.
type LatencyResult struct {
	Suite  trace.Suite
	Points []LatencyPoint
}

// String renders IPC vs memory latency, one row per latency, one column per
// design.
func (l *LatencyResult) String() string {
	designs := []core.StoreDesign{}
	lats := []uint64{}
	seenD := map[core.StoreDesign]bool{}
	seenL := map[uint64]bool{}
	for _, p := range l.Points {
		if !seenD[p.Design] {
			seenD[p.Design] = true
			designs = append(designs, p.Design)
		}
		if !seenL[p.MemLatency] {
			seenL[p.MemLatency] = true
			lats = append(lats, p.MemLatency)
		}
	}
	headers := []string{"MemLat(cyc)"}
	for _, d := range designs {
		headers = append(headers, d.String()+" IPC")
	}
	t := stats.NewTable(fmt.Sprintf("Latency tolerance on %s (IPC vs memory latency)", l.Suite), headers...)
	for _, lat := range lats {
		cells := []interface{}{fmt.Sprintf("%d", lat)}
		for _, d := range designs {
			for _, p := range l.Points {
				if p.Design == d && p.MemLatency == lat {
					cells = append(cells, fmt.Sprintf("%.2f", p.IPC))
				}
			}
		}
		t.AddRowf(cells...)
	}
	return t.String()
}

// LatencySweepLatencies are the swept memory latencies in cycles.
var LatencySweepLatencies = []uint64{200, 400, 800, 1600}

// RunLatencySweep runs the latency tolerance sweep with
// context.Background(); see RunLatencySweepContext.
//
// Deprecated: migrate to RunExperiment(ctx, Latency, o) with
// Options.LatencySuite set, or RunLatencySweepContext; this form cannot
// be cancelled.
func RunLatencySweep(o Options, suite trace.Suite) (*LatencyResult, error) {
	return RunLatencySweepContext(context.Background(), o, suite)
}

// RunLatencySweepContext runs the latency tolerance sweep on one suite.
// It is a typed shim over RunExperiment(ctx, Latency, o) with
// Options.LatencySuite set to suite.
//
// Deprecated: call RunExperiment(ctx, Latency, o) directly and read the
// typed payload off the ExperimentResult.
func RunLatencySweepContext(ctx context.Context, o Options, suite trace.Suite) (*LatencyResult, error) {
	o.LatencySuite = suite
	r, err := RunExperiment(ctx, Latency, o)
	if err != nil {
		return nil, err
	}
	return r.Latency, nil
}

// planLatencySweep measures how each design's throughput degrades as
// memory latency grows — the latency tolerance the paper's title claims.
// The baseline's small store queue caps its in-flight window, so its IPC
// decays faster with latency than the SRL's (whose secondary buffering
// scales the window with the miss).
func planLatencySweep(o Options, suite trace.Suite) *plan {
	type pointID struct {
		d   core.StoreDesign
		lat uint64
	}
	var ids []pointID
	var points []sweep.Point
	for _, d := range []core.StoreDesign{core.DesignBaseline, core.DesignSRL, core.DesignHierarchical} {
		for _, lat := range LatencySweepLatencies {
			cfg := o.apply(core.DefaultConfig(d))
			cfg.Mem.MemLatency = lat
			ids = append(ids, pointID{d, lat})
			points = append(points, sweep.Point{
				Label: fmt.Sprintf("%s@%d", d, lat),
				Cfg:   cfg,
				Suite: suite,
			})
		}
	}
	return &plan{
		points:    points,
		csvHeader: []string{"suite", "design", "mem_latency", "ipc"},
		csvRows:   len(points),
		assemble: func(rep *sweep.Report) (*ExperimentResult, error) {
			out := &LatencyResult{Suite: suite}
			for i, id := range ids {
				pr := &rep.Points[i]
				if pr.Results == nil {
					return nil, pointError(pr)
				}
				out.Points = append(out.Points, LatencyPoint{
					Design:     id.d,
					MemLatency: id.lat,
					IPC:        pr.Results.IPC(),
				})
			}
			return &ExperimentResult{ID: Latency, Latency: out}, nil
		},
	}
}

// --- Memory-ordering + far-memory scenario pack (DESIGN.md §12) ---

// OrderingPoint is one (design, scenario) measurement of the ordering
// scenario pack.
type OrderingPoint struct {
	Design   core.StoreDesign
	Scenario string
	IPC      float64
}

// OrderingResult holds the scenario-pack grid: how much throughput each
// design keeps when the workload carries fences and acquire/release
// traffic, and when half the working set lives in a far (CXL-like) memory
// tier — separately and combined.
type OrderingResult struct {
	Suite  trace.Suite
	Points []OrderingPoint
}

// String renders IPC per scenario, one row per scenario, one column per
// design.
func (l *OrderingResult) String() string {
	designs := []core.StoreDesign{}
	scens := []string{}
	seenD := map[core.StoreDesign]bool{}
	seenS := map[string]bool{}
	for _, p := range l.Points {
		if !seenD[p.Design] {
			seenD[p.Design] = true
			designs = append(designs, p.Design)
		}
		if !seenS[p.Scenario] {
			seenS[p.Scenario] = true
			scens = append(scens, p.Scenario)
		}
	}
	headers := []string{"Scenario"}
	for _, d := range designs {
		headers = append(headers, d.String()+" IPC")
	}
	t := stats.NewTable(fmt.Sprintf("Ordering + far-memory scenarios on %s (IPC)", l.Suite), headers...)
	for _, sc := range scens {
		cells := []interface{}{sc}
		for _, d := range designs {
			for _, p := range l.Points {
				if p.Design == d && p.Scenario == sc {
					cells = append(cells, fmt.Sprintf("%.2f", p.IPC))
				}
			}
		}
		t.AddRowf(cells...)
	}
	return t.String()
}

// orderingScenarios enumerates the scenario pack: {plain, sync} crossed
// with {local, far, far-degraded}. The sync knobs inject 3 fences per 1K
// uops and tag 12% of load/store sites acquire/release; the far tier
// splits half the lines to a 2400-cycle CXL-like band, and the degraded
// variants halve that tier's effective bandwidth mid-run (latency doubles
// from cycle 20K on — the fail-over/degradation knob).
func orderingScenarios() []struct {
	name  string
	apply func(*core.Config)
} {
	sync := func(cfg *core.Config) {
		cfg.FencePer1K = 3
		cfg.AcquireFrac = 0.12
		cfg.ReleaseFrac = 0.12
	}
	far := func(cfg *core.Config) {
		cfg.Mem.FarFrac = 0.5
		cfg.Mem.FarLatency = 2400
	}
	degraded := func(cfg *core.Config) {
		far(cfg)
		cfg.Mem.FarDegradeAfter = 20_000
		cfg.Mem.FarDegradedLatency = 4800
	}
	return []struct {
		name  string
		apply func(*core.Config)
	}{
		{"local", func(*core.Config) {}},
		{"far", far},
		{"far-degraded", degraded},
		{"sync-local", sync},
		{"sync-far", func(cfg *core.Config) { sync(cfg); far(cfg) }},
		{"sync-far-degraded", func(cfg *core.Config) { sync(cfg); degraded(cfg) }},
	}
}

// planOrdering measures the ordering scenario pack on the baseline and the
// SRL machine: the cost of release-consistency enforcement rides on the
// drain path the SRL already owns, so the SRL's advantage should survive
// sync traffic — and widen under far-memory latency, which deepens the
// miss shadows the paper's mechanism hides. Options.LatencySuite selects
// the suite (default SFP2K), mirroring the Latency experiment.
func planOrdering(o Options, suite trace.Suite) *plan {
	type pointID struct {
		d    core.StoreDesign
		scen string
	}
	var ids []pointID
	var points []sweep.Point
	for _, d := range []core.StoreDesign{core.DesignBaseline, core.DesignSRL} {
		for _, sc := range orderingScenarios() {
			cfg := o.apply(core.DefaultConfig(d))
			sc.apply(&cfg)
			ids = append(ids, pointID{d, sc.name})
			points = append(points, sweep.Point{
				Label: fmt.Sprintf("%s@%s", d, sc.name),
				Cfg:   cfg,
				Suite: suite,
			})
		}
	}
	return &plan{
		points:    points,
		csvHeader: []string{"suite", "design", "scenario", "ipc"},
		csvRows:   len(points),
		assemble: func(rep *sweep.Report) (*ExperimentResult, error) {
			out := &OrderingResult{Suite: suite}
			for i, id := range ids {
				pr := &rep.Points[i]
				if pr.Results == nil {
					return nil, pointError(pr)
				}
				out.Points = append(out.Points, OrderingPoint{
					Design:   id.d,
					Scenario: id.scen,
					IPC:      pr.Results.IPC(),
				})
			}
			return &ExperimentResult{ID: Ordering, Ordering: out}, nil
		},
	}
}
