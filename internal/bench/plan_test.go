package bench

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"srlproc/internal/sweep"
)

// TestExperimentPointsAssembleMatchesRun pins the decomposition contract:
// for every experiment, ExperimentPoints → sweep.Run → AssembleExperiment
// produces a document byte-identical to RunExperiment's. The cluster
// coordinator is exactly this split path with the middle step distributed,
// so this test is the local half of the byte-identity guarantee.
func TestExperimentPointsAssembleMatchesRun(t *testing.T) {
	o := tinyOptions()
	for _, id := range AllExperiments() {
		direct, err := RunExperiment(context.Background(), id, o)
		if err != nil {
			t.Fatalf("%v: direct: %v", id, err)
		}
		points, err := ExperimentPoints(id, o)
		if err != nil {
			t.Fatalf("%v: points: %v", id, err)
		}
		if len(points) == 0 {
			t.Fatalf("%v: empty point list", id)
		}
		rep, err := sweep.Run(context.Background(), points, sweep.Options{Workers: o.Workers})
		if err != nil {
			t.Fatalf("%v: run: %v", id, err)
		}
		split, err := AssembleExperiment(id, o, rep)
		if err != nil {
			t.Fatalf("%v: assemble: %v", id, err)
		}
		want, _ := json.Marshal(direct)
		got, _ := json.Marshal(split)
		if string(got) != string(want) {
			t.Fatalf("%v: split path differs from RunExperiment:\n%s\nvs\n%s", id, got, want)
		}
	}
}

// TestShardedMergeMatchesSingleNode is the cluster correctness core: an
// experiment's points split across disjoint "nodes" (each with a private
// cache, as separate processes would have), run independently, merged with
// sweep.MergeReports and assembled — must produce JSON byte-identical to
// the single-node RunExperiment document, with cache stats summed across
// the shards.
func TestShardedMergeMatchesSingleNode(t *testing.T) {
	o := tinyOptions()
	id := Fig6
	single, err := RunExperiment(context.Background(), id, o)
	if err != nil {
		t.Fatal(err)
	}
	points, err := ExperimentPoints(id, o)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	parts := make([]*sweep.Report, shards)
	for s := 0; s < shards; s++ {
		var mine []sweep.Point
		for i, p := range points {
			if i%shards == s { // interleaved shard assignment, like a hash ring's
				mine = append(mine, p)
			}
		}
		cache := sweep.NewCache()
		rep, err := sweep.Run(context.Background(), mine, sweep.Options{Cache: cache})
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		stats := cache.Stats()
		if int(stats.Misses) != len(mine) {
			t.Fatalf("shard %d: %d cache misses for %d points", s, stats.Misses, len(mine))
		}
		parts[s] = rep
	}
	merged, err := sweep.MergeReports(points, parts...)
	if err != nil {
		t.Fatal(err)
	}
	var simulated, hits int
	for _, part := range parts {
		simulated += part.Simulated
		hits += part.CacheHits
	}
	if merged.Simulated != simulated || merged.CacheHits != hits || merged.Failed != 0 {
		t.Fatalf("merged stats simulated=%d hits=%d failed=%d, want %d/%d/0",
			merged.Simulated, merged.CacheHits, merged.Failed, simulated, hits)
	}
	assembled, err := AssembleExperiment(id, o, merged)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(single)
	got, _ := json.Marshal(assembled)
	if string(got) != string(want) {
		t.Fatalf("sharded document differs from single node:\n%s\nvs\n%s", got, want)
	}
}

func TestAssembleExperimentRejectsBadReports(t *testing.T) {
	o := tinyOptions()
	points, err := ExperimentPoints(Fig7, o)
	if err != nil {
		t.Fatal(err)
	}
	short := &sweep.Report{Points: make([]sweep.PointResult, len(points)-1)}
	if _, err := AssembleExperiment(Fig7, o, short); err == nil || !strings.Contains(err.Error(), "points") {
		t.Fatalf("short report accepted: %v", err)
	}
	// A right-length report whose points never ran must surface the
	// per-point errors, not assemble garbage.
	hole := &sweep.Report{Points: make([]sweep.PointResult, len(points))}
	for i := range hole.Points {
		hole.Points[i].Point = points[i]
	}
	if _, err := AssembleExperiment(Fig7, o, hole); err == nil {
		t.Fatal("report with nil results assembled")
	}
}

// TestExperimentMetadata covers the discoverability surface: every
// experiment carries a description, and every alias resolves back to its
// experiment.
func TestExperimentMetadata(t *testing.T) {
	for _, id := range AllExperiments() {
		if id.Description() == "" {
			t.Errorf("%v: empty description", id)
		}
		for _, alias := range id.Aliases() {
			got, err := ParseExperimentID(alias)
			if err != nil || got != id {
				t.Errorf("alias %q of %v parsed to %v, %v", alias, id, got, err)
			}
		}
	}
	if Fig2.Aliases()[0] != "figure2" {
		t.Fatalf("fig2 aliases = %v", Fig2.Aliases())
	}
	if ExperimentID(-1).Description() != "" || ExperimentID(-1).Aliases() != nil {
		t.Fatal("invalid id has metadata")
	}
}
