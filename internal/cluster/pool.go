package cluster

import (
	"context"
	"sync"
	"time"
)

// ProbeFunc checks one worker's health (GET /healthz in production); nil
// means healthy.
type ProbeFunc func(ctx context.Context, worker string) error

// Pool tracks cluster membership across sweeps. Workers are configured
// once (-workers flag); health is learned lazily: a worker is marked
// down when a job RPC fails, and stays out of the live set until an
// exponentially backed-off /healthz probe succeeds — so a flapping
// worker costs one probe per backoff window, not one failed sweep per
// request.
type Pool struct {
	probe ProbeFunc
	base  time.Duration // first-retry backoff
	max   time.Duration // backoff cap
	now   func() time.Time

	mu      sync.Mutex
	members map[string]*member
	order   []string // configured order, for stable reporting
}

type member struct {
	down     bool
	failures int       // consecutive probe/RPC failures
	retryAt  time.Time // next probe no earlier than this
	lastErr  string
}

// MemberStatus is one worker's health snapshot, exported by /metrics.
type MemberStatus struct {
	Worker   string `json:"worker"`
	Healthy  bool   `json:"healthy"`
	Failures int    `json:"failures,omitempty"`
	LastErr  string `json:"last_error,omitempty"`
}

// NewPool tracks the given workers, probing health with probe. Backoff
// starts at 1s and doubles to a 30s cap.
func NewPool(workers []string, probe ProbeFunc) *Pool {
	p := &Pool{
		probe:   probe,
		base:    time.Second,
		max:     30 * time.Second,
		now:     time.Now,
		members: make(map[string]*member, len(workers)),
	}
	for _, w := range workers {
		if w == "" {
			continue
		}
		if _, dup := p.members[w]; dup {
			continue
		}
		p.members[w] = &member{}
		p.order = append(p.order, w)
	}
	return p
}

// Live returns the workers currently considered healthy, in configured
// order. Down workers whose backoff window has expired are re-probed
// (concurrently, bounded by ctx) and revived on success.
func (p *Pool) Live(ctx context.Context) []string {
	p.mu.Lock()
	var due []string
	for _, w := range p.order {
		m := p.members[w]
		if m.down && !p.now().Before(m.retryAt) {
			due = append(due, w)
		}
	}
	p.mu.Unlock()

	if len(due) > 0 && p.probe != nil {
		var wg sync.WaitGroup
		for _, w := range due {
			wg.Add(1)
			go func(w string) {
				defer wg.Done()
				if err := p.probe(ctx, w); err != nil {
					p.MarkDown(w, err)
				} else {
					p.MarkUp(w)
				}
			}(w)
		}
		wg.Wait()
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	live := make([]string, 0, len(p.order))
	for _, w := range p.order {
		if !p.members[w].down {
			live = append(live, w)
		}
	}
	return live
}

// MarkDown records a failed RPC or probe: the worker leaves the live set
// and its next probe backs off exponentially.
func (p *Pool) MarkDown(worker string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.members[worker]
	if !ok {
		return
	}
	m.down = true
	m.failures++
	backoff := p.base << uint(m.failures-1)
	if backoff > p.max || backoff <= 0 {
		backoff = p.max
	}
	m.retryAt = p.now().Add(backoff)
	if err != nil {
		m.lastErr = err.Error()
	}
}

// MarkUp revives a worker after a successful probe or RPC.
func (p *Pool) MarkUp(worker string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, ok := p.members[worker]; ok {
		m.down = false
		m.failures = 0
		m.lastErr = ""
	}
}

// Snapshot reports every configured worker's health, in configured order.
func (p *Pool) Snapshot() []MemberStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]MemberStatus, 0, len(p.order))
	for _, w := range p.order {
		m := p.members[w]
		out = append(out, MemberStatus{
			Worker:   w,
			Healthy:  !m.down,
			Failures: m.failures,
			LastErr:  m.lastErr,
		})
	}
	return out
}

// Workers returns the configured worker list (healthy or not).
func (p *Pool) Workers() []string {
	out := make([]string, len(p.order))
	copy(out, p.order)
	return out
}
