package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// JobClient is the coordinator's transport to one worker. Production
// uses HTTPClient; dispatcher tests substitute fakes.
type JobClient interface {
	// RunJob executes req on the worker and returns its response. A
	// non-nil error is either a transport failure or a decoded *APIError;
	// per-point simulation failures travel inside the response instead.
	RunJob(ctx context.Context, worker string, req *JobRequest) (*JobResponse, error)
}

// HTTPClient speaks the /v1/jobs and /healthz endpoints of srlserved
// workers.
type HTTPClient struct {
	// Client is the underlying http.Client; nil means
	// http.DefaultClient. Job deadlines ride on the request context, so
	// the client itself needs no timeout.
	Client *http.Client
}

func (c *HTTPClient) httpClient() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// BaseURL normalizes a -workers entry: "host:port" gains an http://
// scheme, trailing slashes are dropped.
func BaseURL(worker string) string {
	w := strings.TrimRight(worker, "/")
	if !strings.Contains(w, "://") {
		w = "http://" + w
	}
	return w
}

// maxErrorBody bounds how much of an error response the client reads —
// enough for any envelope, safe against a worker streaming garbage.
const maxErrorBody = 64 << 10

// RunJob POSTs req to the worker's /v1/jobs endpoint.
func (c *HTTPClient) RunJob(ctx context.Context, worker string, req *JobRequest) (*JobResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal job: %w", err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, BaseURL(worker)+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		return nil, DecodeError(resp.StatusCode, bytes.TrimSpace(raw))
	}
	var out JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cluster: decode job response from %s: %w", worker, err)
	}
	return &out, nil
}

// Probe implements the pool's health check: GET /healthz, healthy on
// 200. A draining worker answers 503 and correctly stays out of the
// live set.
func (c *HTTPClient) Probe(ctx context.Context, worker string) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, BaseURL(worker)+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxErrorBody))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s /healthz: %s", worker, resp.Status)
	}
	return nil
}
