package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over worker names. Each member
// contributes `replicas` virtual nodes, placed by FNV-1a of
// "member#replica"; a point fingerprint is owned by the first virtual
// node clockwise from it. The properties the cluster leans on:
//
//   - stability: the same member set always yields the same ring, so a
//     coordinator restart (or a second coordinator) routes every
//     fingerprint to the same worker — each worker's memo cache and
//     persistent store accumulate a stable shard of the keyspace;
//   - minimal disruption: removing a member reassigns only the points it
//     owned; every other shard stays put, keeping caches warm through
//     worker failures.
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted, deduplicated
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultReplicas is the virtual-node count used when NewRing is given
// replicas <= 0. 64 keeps the shard-size spread within a few percent for
// small clusters without measurable lookup cost.
const DefaultReplicas = 64

// NewRing builds a ring over members (duplicates ignored). An empty
// member set yields a ring whose Owner always reports false.
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
		for v := 0; v < replicas; v++ {
			h := fnv.New64a()
			h.Write([]byte(m))
			h.Write([]byte{'#'})
			h.Write([]byte(strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{hash: h.Sum64(), member: m})
		}
	}
	sort.Strings(r.members)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member // deterministic on (absurdly unlikely) collisions
	})
	return r
}

// Owner returns the member owning fingerprint fp, or ("", false) on an
// empty ring.
func (r *Ring) Owner(fp uint64) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= fp })
	if i == len(r.points) {
		i = 0 // wrap: fp is past the highest virtual node
	}
	return r.points[i].member, true
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}
