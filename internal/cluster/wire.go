// Package cluster distributes sweep execution across srlserved worker
// processes: a consistent-hash ring assigns each design point to the
// worker whose memo cache and persistent store own that shard of the
// fingerprint keyspace, a health-checked pool tracks membership, and a
// per-sweep dispatcher ships point-index jobs, steals work from
// stragglers and re-dispatches jobs lost to failed workers. Determinism
// makes all of this safe: any worker produces byte-identical results for
// a given point, so retries and steals never change the merged document.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Error codes of the v1 error envelope. The same envelope travels on the
// public API and on the coordinator↔worker job RPC, which is why it is
// defined here rather than in internal/serve: the serve handlers write
// it and the cluster client decodes it, without an import cycle.
const (
	CodeBadRequest          = "bad_request"
	CodeNotFound            = "not_found"
	CodeMethodNotAllowed    = "method_not_allowed"
	CodeUnsupportedMedia    = "unsupported_media_type"
	CodeTooManyRequests     = "too_many_requests"
	CodeClientClosedRequest = "client_closed_request"
	CodeTimeout             = "timeout"
	CodeDraining            = "draining"
	CodeUnavailable         = "unavailable"
	CodeInternal            = "internal"
	CodePayloadTooLarge     = "payload_too_large"
)

// APIError is the one error shape every v1 endpoint answers with:
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": 1000}}
//
// Status is the HTTP status it traveled with (not part of the JSON
// document). RetryAfterMs is set on load-shed responses and mirrors the
// Retry-After header.
type APIError struct {
	Status       int    `json:"-"`
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

func (e *APIError) Error() string {
	return fmt.Sprintf("%s (%d %s)", e.Message, e.Status, e.Code)
}

// envelope is the wire wrapper around APIError.
type envelope struct {
	Error *APIError `json:"error"`
}

// Errorf builds an APIError.
func Errorf(status int, code, format string, args ...any) *APIError {
	return &APIError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// WriteError emits e as the uniform JSON error document, setting the
// Retry-After header when the error carries a backoff hint.
func WriteError(w http.ResponseWriter, e *APIError) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfterMs > 0 {
		secs := (e.RetryAfterMs + 999) / 1000
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.WriteHeader(e.Status)
	doc, _ := json.Marshal(envelope{Error: e})
	w.Write(append(doc, '\n'))
}

// DecodeError reconstructs the APIError a non-200 response carried.
// Bodies that are not the envelope (a proxy's HTML 502, a truncated
// read) degrade to a synthesized error with a code derived from the
// status, so callers always get a structured error.
func DecodeError(status int, body []byte) *APIError {
	var env envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.Status = status
		return env.Error
	}
	msg := string(body)
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return &APIError{Status: status, Code: CodeForStatus(status), Message: msg}
}

// CodeForStatus maps an HTTP status to the envelope code serve uses for
// it — the fallback when a response body could not be decoded.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusUnsupportedMediaType:
		return CodeUnsupportedMedia
	case http.StatusTooManyRequests:
		return CodeTooManyRequests
	case http.StatusGatewayTimeout:
		return CodeTimeout
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	}
	return CodeInternal
}

// RetryAfter returns the server-suggested backoff, or def when the error
// carries none.
func (e *APIError) RetryAfter(def time.Duration) time.Duration {
	if e.RetryAfterMs > 0 {
		return time.Duration(e.RetryAfterMs) * time.Millisecond
	}
	return def
}

// JobRequest is the POST /v1/jobs body: a slice of one experiment's
// canonical point list, named by index. The experiment-shaping fields
// mirror /v1/sweep's so a worker resolves exactly the bench.Options the
// coordinator resolved; both sides then derive the same
// bench.ExperimentPoints list, and Indexes name points in it. Shipping
// indexes instead of serialized configs keeps the wire format trivial
// and makes disagreement impossible: there is nothing to drift.
type JobRequest struct {
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick,omitempty"`
	RunUops    uint64 `json:"run_uops,omitempty"`
	WarmupUops uint64 `json:"warmup_uops,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	NoCache    bool   `json:"no_cache,omitempty"`
	TimeoutMs  int64  `json:"timeout_ms,omitempty"`

	Indexes []int `json:"indexes"`
}

// JobPoint is one point's outcome on the worker. Result is the canonical
// core.Results document, round-trip proven by store.Encode before it is
// shipped — the coordinator rehydrates it byte-identically. Fingerprint
// is the worker's core.PointFingerprint for the point, cross-checked by
// the coordinator against its own enumeration.
type JobPoint struct {
	Index       int             `json:"index"`
	Fingerprint string          `json:"fingerprint"`
	CacheHit    bool            `json:"cache_hit,omitempty"`
	WallMs      int64           `json:"wall_ms,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	Error       string          `json:"error,omitempty"`
}

// JobResponse is the worker's answer: one JobPoint per requested index.
type JobResponse struct {
	Experiment string     `json:"experiment"`
	Points     []JobPoint `json:"points"`
}
