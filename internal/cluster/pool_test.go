package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock drives Pool time in tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestPoolBackoffProbes(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	var mu sync.Mutex
	probes := 0
	probeErr := errors.New("still down")
	pool := NewPool([]string{"a", "b"}, func(_ context.Context, w string) error {
		mu.Lock()
		probes++
		mu.Unlock()
		return probeErr
	})
	pool.now = clock.Now

	ctx := context.Background()
	if live := pool.Live(ctx); len(live) != 2 {
		t.Fatalf("initial live set: %v", live)
	}
	pool.MarkDown("b", errors.New("connection refused"))
	if live := fmt.Sprint(pool.Live(ctx)); live != "[a]" {
		t.Fatalf("after MarkDown: %v", live)
	}
	if probes != 0 {
		t.Fatalf("probed before backoff expired: %d", probes)
	}

	// First backoff window (1s) expires: one probe, which fails and
	// doubles the window.
	clock.Advance(1100 * time.Millisecond)
	pool.Live(ctx)
	if probes != 1 {
		t.Fatalf("want 1 probe after first window, got %d", probes)
	}
	clock.Advance(1100 * time.Millisecond) // 2s window not yet over
	pool.Live(ctx)
	if probes != 1 {
		t.Fatalf("probe fired inside doubled backoff: %d", probes)
	}
	clock.Advance(1 * time.Second)
	probeErr = nil // worker recovered
	if live := fmt.Sprint(pool.Live(ctx)); live != "[a b]" {
		t.Fatalf("worker not revived: %v", live)
	}
	if probes != 2 {
		t.Fatalf("want 2 probes total, got %d", probes)
	}

	snap := pool.Snapshot()
	if len(snap) != 2 || !snap[1].Healthy || snap[1].Failures != 0 {
		t.Fatalf("snapshot after revival: %+v", snap)
	}
}

func TestPoolSnapshotCarriesError(t *testing.T) {
	pool := NewPool([]string{"w"}, nil)
	pool.MarkDown("w", errors.New("boom"))
	snap := pool.Snapshot()
	if snap[0].Healthy || snap[0].LastErr != "boom" || snap[0].Failures != 1 {
		t.Fatalf("snapshot: %+v", snap[0])
	}
	// Unknown workers are ignored rather than invented.
	pool.MarkDown("stranger", nil)
	pool.MarkUp("stranger")
	if len(pool.Workers()) != 1 {
		t.Fatalf("workers: %v", pool.Workers())
	}
}
