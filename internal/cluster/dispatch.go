package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"srlproc/internal/core"
	"srlproc/internal/store"
	"srlproc/internal/sweep"
)

// ErrNoLiveWorkers is the terminal dispatch error: every worker is gone
// (none configured, or the last one failed mid-sweep). Callers match it
// with errors.Is to answer 503 instead of 500.
var ErrNoLiveWorkers = errors.New("no live workers")

// Options tune one Dispatch call.
type Options struct {
	// Replicas is the ring's virtual-node count (DefaultReplicas).
	Replicas int

	// InFlight is how many jobs one worker runs concurrently (default
	// 2): enough to hide RPC latency without swamping a worker's
	// admission queue.
	InFlight int

	// MaxBusyRetries bounds how often a 429 from a worker is retried on
	// the same worker before it counts as a failure (default 8). The
	// wait honours the worker's Retry-After hint, capped at 5s.
	MaxBusyRetries int

	// RetryBackoff is the wait for a 429 without a hint (default 250ms).
	RetryBackoff time.Duration

	// Progress, when non-nil, receives a cluster-wide snapshot after
	// every resolved point — the multiplexed feed behind coordinator
	// SSE streams.
	Progress sweep.ProgressFunc

	// OnWorkerDown is notified when a worker is dropped mid-sweep (its
	// jobs re-dispatch to the survivors); serve points this at
	// Pool.MarkDown so the failure outlives the sweep.
	OnWorkerDown func(worker string, err error)
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = DefaultReplicas
	}
	if o.InFlight <= 0 {
		o.InFlight = 2
	}
	if o.MaxBusyRetries <= 0 {
		o.MaxBusyRetries = 8
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 250 * time.Millisecond
	}
	return o
}

// WorkerSummary is one worker's share of a dispatched sweep.
type WorkerSummary struct {
	Worker    string `json:"worker"`
	Jobs      int    `json:"jobs"`
	Points    int    `json:"points"`
	CacheHits int    `json:"cache_hits"`
	Failed    bool   `json:"failed,omitempty"`
}

// Summary describes how a Dispatch call spread its work.
type Summary struct {
	Workers      []WorkerSummary `json:"workers"`
	Steals       int             `json:"steals"`
	Redispatched int             `json:"redispatched"`
}

// Dispatch executes points across workers and returns the merged report
// in canonical point order, exactly as a local sweep.Run over the same
// list would have ordered it.
//
// Each point is initially routed to the worker owning its fingerprint on
// the consistent-hash ring, so repeated sweeps hit the same workers'
// caches. An idle worker steals from the longest remaining queue — the
// tail end, farthest from where the owner is working. When a worker's
// RPC fails its queued and in-flight points re-dispatch to the
// survivors' ring; the simulator's determinism guarantees the retried
// points produce byte-identical results, so a mid-sweep worker loss is
// invisible in the merged document. Per-point simulation errors are NOT
// worker failures: they are recorded in the report like a local run's.
//
// template carries the experiment-shaping fields of every JobRequest;
// Dispatch fills Indexes per job. The returned error is terminal (no
// live workers left, or ctx done); per-point failures surface in
// Report.Err like sweep.Run's.
func Dispatch(ctx context.Context, client JobClient, workers []string, template JobRequest, points []sweep.Point, o Options) (*sweep.Report, *Summary, error) {
	o = o.withDefaults()
	if len(workers) == 0 {
		return nil, nil, fmt.Errorf("cluster: %w", ErrNoLiveWorkers)
	}
	d := &dispatcher{
		client:   client,
		template: template,
		points:   points,
		fps:      make([]uint64, len(points)),
		o:        o,
		queues:   make(map[string][]int, len(workers)),
		live:     make(map[string]bool, len(workers)),
		parts:    make(map[string]*sweep.Report, len(workers)),
		stats:    make(map[string]*WorkerSummary, len(workers)),
		order:    workers,
		start:    time.Now(),
	}
	d.cond = sync.NewCond(&d.mu)
	d.remaining = len(points)
	for _, w := range workers {
		d.live[w] = true
		d.stats[w] = &WorkerSummary{Worker: w}
	}
	ring := NewRing(workers, o.Replicas)
	for i, p := range points {
		d.fps[i] = core.PointFingerprint(p.Cfg, p.Suite)
		owner, _ := ring.Owner(d.fps[i])
		d.queues[owner] = append(d.queues[owner], i)
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		for k := 0; k < o.InFlight; k++ {
			wg.Add(1)
			go func(w string) {
				defer wg.Done()
				d.loop(ctx, w)
			}(w)
		}
	}
	wg.Wait()

	sum := d.summary()
	d.mu.Lock()
	failed := d.failedErr
	d.mu.Unlock()
	if failed != nil {
		return nil, sum, failed
	}
	parts := make([]*sweep.Report, 0, len(d.parts))
	for _, w := range workers {
		if part := d.parts[w]; part != nil {
			parts = append(parts, part)
		}
	}
	rep, err := sweep.MergeReports(points, parts...)
	if err != nil {
		return nil, sum, err
	}
	rep.Elapsed = time.Since(d.start)
	return rep, sum, nil
}

type dispatcher struct {
	client   JobClient
	template JobRequest
	points   []sweep.Point
	fps      []uint64
	o        Options
	order    []string
	start    time.Time

	mu        sync.Mutex
	cond      *sync.Cond
	queues    map[string][]int
	live      map[string]bool
	inflight  int
	remaining int
	aborted   bool
	failedErr error

	parts                      map[string]*sweep.Report
	stats                      map[string]*WorkerSummary
	steals, redispatched       int
	done, cacheHits, failedPts int
}

// loop is one in-flight slot of one worker: claim a point, run it,
// record it; on RPC failure take the worker down and exit.
func (d *dispatcher) loop(ctx context.Context, w string) {
	for {
		idx, ok := d.next(w)
		if !ok {
			return
		}
		resp, err := d.runWithRetry(ctx, w, idx)
		if err != nil {
			if ctx.Err() != nil {
				d.abort(ctx.Err())
				return
			}
			d.workerFailed(w, idx, err)
			return
		}
		d.complete(w, idx, resp)
	}
}

// next claims the next point for worker w: its own queue front, else a
// steal from the tail of the longest live queue. It blocks while other
// slots are in flight (their failure may re-dispatch work this way) and
// returns false when the sweep is finished, aborted, or w is down.
func (d *dispatcher) next(w string) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.aborted || d.remaining == 0 || !d.live[w] {
			return 0, false
		}
		if q := d.queues[w]; len(q) > 0 {
			idx := q[0]
			d.queues[w] = q[1:]
			d.inflight++
			return idx, true
		}
		victim, best := "", 0
		for v, q := range d.queues {
			if v != w && d.live[v] && len(q) > best {
				victim, best = v, len(q)
			}
		}
		if best > 0 {
			q := d.queues[victim]
			idx := q[len(q)-1]
			d.queues[victim] = q[:len(q)-1]
			d.steals++
			d.inflight++
			return idx, true
		}
		if d.inflight == 0 {
			// remaining > 0 with nothing queued or running is a logic
			// error; fail loudly rather than hang every slot.
			d.abortLocked(fmt.Errorf("cluster: %d points unaccounted for", d.remaining))
			return 0, false
		}
		d.cond.Wait()
	}
}

// runWithRetry ships one point to w, retrying bounded 429 shed responses
// on the same worker (it is busy, not gone) with the server's suggested
// backoff.
func (d *dispatcher) runWithRetry(ctx context.Context, w string, idx int) (*JobResponse, error) {
	req := d.template
	req.Indexes = []int{idx}
	for attempt := 0; ; attempt++ {
		resp, err := d.client.RunJob(ctx, w, &req)
		if err == nil {
			return resp, nil
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Code != CodeTooManyRequests || attempt >= d.o.MaxBusyRetries {
			return nil, err
		}
		wait := apiErr.RetryAfter(d.o.RetryBackoff)
		if wait > 5*time.Second {
			wait = 5 * time.Second
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// workerFailed drops w from the sweep and re-dispatches its queue plus
// the failed in-flight point across the survivors' ring.
func (d *dispatcher) workerFailed(w string, idx int, err error) {
	d.mu.Lock()
	d.inflight--
	// A worker with several in-flight slots fails once per slot; only the
	// first transition counts as the worker going down.
	firstDown := d.live[w]
	d.live[w] = false
	d.stats[w].Failed = true
	orphans := append(d.queues[w], idx)
	d.queues[w] = nil
	var survivors []string
	for v, alive := range d.live {
		if alive {
			survivors = append(survivors, v)
		}
	}
	if len(survivors) == 0 {
		d.abortLocked(fmt.Errorf("cluster: %w (last: %s: %v)", ErrNoLiveWorkers, w, err))
		d.mu.Unlock()
		if firstDown {
			d.notifyDown(w, err)
		}
		return
	}
	ring := NewRing(survivors, d.o.Replicas)
	for _, i := range orphans {
		owner, _ := ring.Owner(d.fps[i])
		d.queues[owner] = append(d.queues[owner], i)
		d.redispatched++
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	if firstDown {
		d.notifyDown(w, err)
	}
}

func (d *dispatcher) notifyDown(w string, err error) {
	if d.o.OnWorkerDown != nil {
		d.o.OnWorkerDown(w, err)
	}
}

// complete records one answered job and publishes a progress snapshot.
func (d *dispatcher) complete(w string, idx int, resp *JobResponse) {
	pr := sweep.PointResult{Point: d.points[idx]}
	var jp *JobPoint
	for i := range resp.Points {
		if resp.Points[i].Index == idx {
			jp = &resp.Points[i]
			break
		}
	}
	switch {
	case jp == nil:
		pr.Err = fmt.Errorf("cluster: worker %s returned no result for point %d", w, idx)
	case jp.Error != "":
		pr.Err = errors.New(jp.Error)
	default:
		want := fmt.Sprintf("%016x", d.fps[idx])
		if jp.Fingerprint != "" && jp.Fingerprint != want {
			// The worker enumerated a different point list — a version
			// skew the determinism guarantee cannot survive.
			pr.Err = fmt.Errorf("cluster: worker %s fingerprint %s != %s for point %d (version skew?)", w, jp.Fingerprint, want, idx)
		} else if res, err := store.Decode(jp.Result); err != nil {
			pr.Err = fmt.Errorf("cluster: decode result from %s: %w", w, err)
		} else {
			pr.Results = res
			pr.CacheHit = jp.CacheHit
			pr.Wall = time.Duration(jp.WallMs) * time.Millisecond
		}
	}

	d.mu.Lock()
	d.inflight--
	part := d.parts[w]
	if part == nil {
		part = &sweep.Report{Workers: 1}
		d.parts[w] = part
	}
	part.Points = append(part.Points, pr)
	st := d.stats[w]
	st.Jobs++
	st.Points++
	if pr.CacheHit {
		st.CacheHits++
		d.cacheHits++
	}
	if pr.Err != nil {
		d.failedPts++
	}
	d.done++
	d.remaining--
	prog := sweep.Progress{
		Done:      d.done,
		Total:     len(d.points),
		CacheHits: d.cacheHits,
		Failed:    d.failedPts,
		Elapsed:   time.Since(d.start),
		Last:      pr.Point,
	}
	if d.done > 0 && d.done < prog.Total {
		prog.ETA = time.Duration(int64(prog.Elapsed) / int64(d.done) * int64(prog.Total-d.done))
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	if d.o.Progress != nil {
		d.o.Progress(prog)
	}
}

func (d *dispatcher) abort(err error) {
	d.mu.Lock()
	d.abortLocked(err)
	d.mu.Unlock()
}

// abortLocked ends the sweep with a terminal error; callers hold d.mu.
func (d *dispatcher) abortLocked(err error) {
	if !d.aborted {
		d.aborted = true
		d.failedErr = err
	}
	d.cond.Broadcast()
}

// summary snapshots the per-worker accounting in configured order.
func (d *dispatcher) summary() *Summary {
	d.mu.Lock()
	defer d.mu.Unlock()
	sum := &Summary{Steals: d.steals, Redispatched: d.redispatched}
	for _, w := range d.order {
		sum.Workers = append(sum.Workers, *d.stats[w])
	}
	return sum
}
