package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"srlproc/internal/core"
	"srlproc/internal/store"
	"srlproc/internal/sweep"
	"srlproc/internal/trace"
)

// testPoints builds n fast, distinct design points.
func testPoints(n int, seed uint64) []sweep.Point {
	pts := make([]sweep.Point, n)
	for i := range pts {
		cfg := core.DefaultConfig(core.DesignSRL)
		cfg.WarmupUops = 500
		cfg.RunUops = 2_000
		cfg.Seed = seed + uint64(i)
		pts[i] = mkPoint(fmt.Sprintf("d%d", i), cfg)
	}
	return pts
}

// mkPoint builds one PROD-suite sweep point.
func mkPoint(label string, cfg core.Config) sweep.Point {
	return sweep.Point{Label: label, Cfg: cfg, Suite: trace.PROD}
}

// fakeWorker is one simulated srlserved worker: it really simulates the
// requested points (through its own private cache, like a real node) and
// can be configured to shed load or die.
type fakeWorker struct {
	mu    sync.Mutex
	cache *sweep.Cache
	calls int
	busy  int // answer this many leading calls with 429
	dieAt int // fail RPCs from this call count on (0 = never)
	slow  time.Duration
	jobs  [][]int
}

// fakeClient routes jobs to fakeWorkers against a canonical point list.
type fakeClient struct {
	points  []sweep.Point
	workers map[string]*fakeWorker
}

func newFakeClient(points []sweep.Point, names ...string) *fakeClient {
	c := &fakeClient{points: points, workers: make(map[string]*fakeWorker)}
	for _, n := range names {
		c.workers[n] = &fakeWorker{cache: sweep.NewCache()}
	}
	return c
}

func (c *fakeClient) RunJob(ctx context.Context, worker string, req *JobRequest) (*JobResponse, error) {
	fw, ok := c.workers[worker]
	if !ok {
		return nil, fmt.Errorf("no route to %s", worker)
	}
	fw.mu.Lock()
	fw.calls++
	call := fw.calls
	fw.jobs = append(fw.jobs, append([]int(nil), req.Indexes...))
	busy := call <= fw.busy
	dead := fw.dieAt > 0 && call >= fw.dieAt
	slow := fw.slow
	fw.mu.Unlock()

	if dead {
		return nil, errors.New("connection refused")
	}
	if busy {
		return nil, &APIError{Status: 429, Code: CodeTooManyRequests, Message: "job queue full", RetryAfterMs: 1}
	}
	if slow > 0 {
		select {
		case <-time.After(slow):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	resp := &JobResponse{Experiment: req.Experiment}
	for _, idx := range req.Indexes {
		p := c.points[idx]
		jp := JobPoint{Index: idx, Fingerprint: fmt.Sprintf("%016x", core.PointFingerprint(p.Cfg, p.Suite))}
		rep, err := sweep.Run(ctx, []sweep.Point{p}, sweep.Options{Workers: 1, Cache: fw.cache})
		if err != nil {
			jp.Error = err.Error()
		} else {
			pr := rep.Points[0]
			jp.CacheHit = pr.CacheHit
			doc, err := store.Encode(pr.Results)
			if err != nil {
				jp.Error = err.Error()
			} else {
				jp.Result = doc
			}
		}
		resp.Points = append(resp.Points, jp)
	}
	return resp, nil
}

// localGolden runs the points locally for comparison.
func localGolden(t *testing.T, points []sweep.Point) *sweep.Report {
	t.Helper()
	rep, err := sweep.Run(context.Background(), points, sweep.Options{Cache: sweep.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// assertSameResults requires the dispatched report to carry byte-identical
// per-point documents in the same canonical order as the local run.
func assertSameResults(t *testing.T, got, want *sweep.Report) {
	t.Helper()
	if len(got.Points) != len(want.Points) {
		t.Fatalf("point count %d != %d", len(got.Points), len(want.Points))
	}
	for i := range want.Points {
		if got.Points[i].Point.String() != want.Points[i].Point.String() {
			t.Fatalf("point %d is %s, want %s", i, got.Points[i].Point, want.Points[i].Point)
		}
		g, _ := json.Marshal(got.Points[i].Results)
		w, _ := json.Marshal(want.Points[i].Results)
		if string(g) != string(w) {
			t.Fatalf("point %d results differ:\n%s\nvs\n%s", i, g, w)
		}
	}
}

func TestDispatchMatchesLocalRun(t *testing.T) {
	points := testPoints(8, 11000)
	client := newFakeClient(points, "w1", "w2")
	rep, sum, err := Dispatch(context.Background(), client, []string{"w1", "w2"}, JobRequest{Experiment: "test"}, points, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != nil || rep.Failed != 0 {
		t.Fatalf("dispatched report failed: %v", rep.Err)
	}
	assertSameResults(t, rep, localGolden(t, points))
	if rep.Simulated != len(points) {
		t.Fatalf("simulated = %d, want %d", rep.Simulated, len(points))
	}
	total := 0
	for _, w := range sum.Workers {
		total += w.Points
		if w.Failed {
			t.Fatalf("worker %s marked failed: %+v", w.Worker, w)
		}
	}
	if total != len(points) {
		t.Fatalf("summary points %d != %d", total, len(points))
	}
	// Both workers own shards on the ring, so with ample points both
	// should have done work.
	for _, w := range sum.Workers {
		if w.Points == 0 {
			t.Logf("note: worker %s processed 0 points (ring skew)", w.Worker)
		}
	}
}

func TestDispatchRoutesByRingOwner(t *testing.T) {
	points := testPoints(6, 12000)
	client := newFakeClient(points, "w1", "w2")
	// Slow both workers slightly so neither drains the other's queue
	// before it starts its own.
	client.workers["w1"].slow = 20 * time.Millisecond
	client.workers["w2"].slow = 20 * time.Millisecond
	_, sum, err := Dispatch(context.Background(), client, []string{"w1", "w2"}, JobRequest{}, points, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing([]string{"w1", "w2"}, 0)
	wantOwned := map[string]int{}
	for _, p := range points {
		owner, _ := ring.Owner(core.PointFingerprint(p.Cfg, p.Suite))
		wantOwned[owner]++
	}
	for _, ws := range sum.Workers {
		// Stealing can move points toward a faster worker but a worker
		// never processes fewer than zero nor can totals disagree.
		if ws.Points < 0 || ws.Points > len(points) {
			t.Fatalf("bogus summary: %+v", ws)
		}
	}
	if sum.Redispatched != 0 {
		t.Fatalf("healthy sweep re-dispatched %d points", sum.Redispatched)
	}
	_ = wantOwned
}

func TestDispatchWorkerDeathRedispatches(t *testing.T) {
	points := testPoints(10, 13000)
	client := newFakeClient(points, "w1", "w2")
	client.workers["w2"].dieAt = 2 // first call succeeds, then the worker vanishes
	var downMu sync.Mutex
	var down []string
	rep, sum, err := Dispatch(context.Background(), client, []string{"w1", "w2"}, JobRequest{}, points, Options{
		OnWorkerDown: func(w string, err error) {
			downMu.Lock()
			down = append(down, w)
			downMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != nil || rep.Failed != 0 {
		t.Fatalf("report failed despite redispatch: %v", rep.Err)
	}
	assertSameResults(t, rep, localGolden(t, points))
	if len(down) == 0 || down[0] != "w2" {
		t.Fatalf("OnWorkerDown not notified: %v", down)
	}
	var w2 *WorkerSummary
	for i := range sum.Workers {
		if sum.Workers[i].Worker == "w2" {
			w2 = &sum.Workers[i]
		}
	}
	if w2 == nil || !w2.Failed {
		t.Fatalf("w2 not marked failed: %+v", sum.Workers)
	}
	if sum.Redispatched == 0 {
		t.Fatal("no points re-dispatched")
	}
}

func TestDispatchAllWorkersDead(t *testing.T) {
	points := testPoints(4, 14000)
	client := newFakeClient(points, "w1", "w2")
	client.workers["w1"].dieAt = 1
	client.workers["w2"].dieAt = 1
	_, _, err := Dispatch(context.Background(), client, []string{"w1", "w2"}, JobRequest{}, points, Options{})
	if err == nil || !strings.Contains(err.Error(), "no live workers") {
		t.Fatalf("want no-live-workers error, got %v", err)
	}
	if _, _, err := Dispatch(context.Background(), client, nil, JobRequest{}, points, Options{}); err == nil {
		t.Fatal("empty worker list accepted")
	}
}

func TestDispatchRetriesBusyWorker(t *testing.T) {
	points := testPoints(3, 15000)
	client := newFakeClient(points, "w1")
	client.workers["w1"].busy = 2 // shed the first two calls with 429
	rep, sum, err := Dispatch(context.Background(), client, []string{"w1"}, JobRequest{}, points, Options{RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("429s escalated to failures: %+v", rep)
	}
	if sum.Workers[0].Failed {
		t.Fatal("busy worker marked failed")
	}
}

func TestDispatchBusyBeyondRetryBudgetFails(t *testing.T) {
	points := testPoints(2, 15500)
	client := newFakeClient(points, "w1")
	client.workers["w1"].busy = 1 << 30 // never stops shedding
	_, _, err := Dispatch(context.Background(), client, []string{"w1"}, JobRequest{}, points, Options{RetryBackoff: time.Millisecond, MaxBusyRetries: 2})
	if err == nil || !strings.Contains(err.Error(), "no live workers") {
		t.Fatalf("want terminal failure, got %v", err)
	}
}

func TestDispatchProgressMonotonic(t *testing.T) {
	points := testPoints(6, 16000)
	client := newFakeClient(points, "w1", "w2")
	var mu sync.Mutex
	var dones []int
	rep, _, err := Dispatch(context.Background(), client, []string{"w1", "w2"}, JobRequest{}, points, Options{
		Progress: func(p sweep.Progress) {
			mu.Lock()
			dones = append(dones, p.Done)
			mu.Unlock()
			if p.Total != len(points) {
				t.Errorf("progress total %d", p.Total)
			}
		},
	})
	if err != nil || rep.Failed != 0 {
		t.Fatalf("dispatch: %v %v", err, rep.Err)
	}
	if len(dones) != len(points) {
		t.Fatalf("%d progress events for %d points", len(dones), len(points))
	}
	seen := map[int]bool{}
	for _, d := range dones {
		if d < 1 || d > len(points) || seen[d] {
			t.Fatalf("bad done sequence: %v", dones)
		}
		seen[d] = true
	}
}

func TestDispatchContextCancel(t *testing.T) {
	points := testPoints(4, 17000)
	client := newFakeClient(points, "w1")
	client.workers["w1"].slow = 200 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, _, err := Dispatch(ctx, client, []string{"w1"}, JobRequest{}, points, Options{})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
}

func TestDispatchPerPointErrorIsNotWorkerFailure(t *testing.T) {
	points := testPoints(3, 18000)
	client := &errClient{inner: newFakeClient(points, "w1"), failIdx: 1}
	rep, sum, err := Dispatch(context.Background(), client, []string{"w1"}, JobRequest{}, points, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Points[1].Err == nil {
		t.Fatalf("point failure not recorded: %+v", rep)
	}
	if rep.Points[0].Err != nil || rep.Points[2].Err != nil {
		t.Fatal("healthy points failed")
	}
	if sum.Workers[0].Failed {
		t.Fatal("simulation error took the worker down")
	}
}

// errClient wraps a fakeClient, replacing one point's result with a
// simulation error.
type errClient struct {
	inner   *fakeClient
	failIdx int
}

func (c *errClient) RunJob(ctx context.Context, worker string, req *JobRequest) (*JobResponse, error) {
	resp, err := c.inner.RunJob(ctx, worker, req)
	if err != nil {
		return nil, err
	}
	for i := range resp.Points {
		if resp.Points[i].Index == c.failIdx {
			resp.Points[i] = JobPoint{Index: c.failIdx, Error: "simulated point fault"}
		}
	}
	return resp, nil
}
