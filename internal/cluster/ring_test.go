package cluster

import (
	"fmt"
	"testing"
)

func TestRingStableAndComplete(t *testing.T) {
	members := []string{"w1:8080", "w2:8080", "w3:8080"}
	a := NewRing(members, 0)
	b := NewRing([]string{"w3:8080", "w1:8080", "w2:8080", "w1:8080"}, 0) // order + dup insensitive
	counts := map[string]int{}
	for fp := uint64(0); fp < 4096; fp++ {
		h := fp * 0x9e3779b97f4a7c15 // spread the probe keys over the ring
		oa, ok := a.Owner(h)
		if !ok {
			t.Fatal("owner not found")
		}
		ob, _ := b.Owner(h)
		if oa != ob {
			t.Fatalf("ring not stable: %q vs %q for %x", oa, ob, h)
		}
		counts[oa]++
	}
	for _, m := range members {
		if counts[m] == 0 {
			t.Fatalf("member %s owns nothing: %v", m, counts)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	full := NewRing([]string{"a", "b", "c"}, 0)
	reduced := NewRing([]string{"a", "c"}, 0)
	moved := 0
	const n = 4096
	for fp := uint64(0); fp < n; fp++ {
		h := fp * 0x9e3779b97f4a7c15
		before, _ := full.Owner(h)
		after, _ := reduced.Owner(h)
		if before != "b" && before != after {
			t.Fatalf("point %x moved %s -> %s though its owner survived", h, before, after)
		}
		if before == "b" {
			moved++
		}
	}
	// With 64 virtual nodes per member the split is only roughly fair;
	// the property that matters is that b owned a real share (its points
	// moved) and nothing else moved (checked above).
	if moved == 0 || moved == n {
		t.Fatalf("b owned %d of %d points", moved, n)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if _, ok := r.Owner(42); ok {
		t.Fatal("empty ring returned an owner")
	}
	if got := len(NewRing([]string{"", "x"}, 1).Members()); got != 1 {
		t.Fatalf("blank member not dropped: %d members", got)
	}
}

func TestRingMembersSorted(t *testing.T) {
	r := NewRing([]string{"z", "a", "m"}, 4)
	got := fmt.Sprint(r.Members())
	if got != "[a m z]" {
		t.Fatalf("members = %s", got)
	}
}
