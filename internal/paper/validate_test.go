package paper

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"srlproc/internal/bench"
)

// testShape mimics a two-row speedup figure: a suite key column plus two
// numeric series columns.
var testShape = bench.ExperimentShape{
	Points:    4,
	CSVHeader: []string{"suite", "srl", "hier"},
	CSVRows:   2,
}

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateCSV(t *testing.T) {
	cases := []struct {
		name, csv string
		want      string // "" = valid
	}{
		{"valid", "suite,srl,hier\nSFP2K,1.25,0.50\nWEB,-3.5,0\n", ""},
		{"quoted key", "suite,srl,hier\n\"SFP,2K\",1,2\nWEB,3,4\n", ""},
		{"wrong columns", "suite,srl,ideal\nSFP2K,1,2\nWEB,3,4\n", "want \"hier\""},
		{"missing column", "suite,srl\nSFP2K,1\nWEB,3\n", "wrong number of fields"},
		{"short row", "suite,srl,hier\nSFP2K,1,2\n", "data rows, want 2"},
		{"extra row", "suite,srl,hier\nSFP2K,1,2\nWEB,3,4\nMM,5,6\n", "data rows, want 2"},
		{"ragged row", "suite,srl,hier\nSFP2K,1\nWEB,3,4\n", "wrong number of fields"},
		{"empty cell", "suite,srl,hier\nSFP2K,,2\nWEB,3,4\n", "is empty"},
		{"nan cell", "suite,srl,hier\nSFP2K,NaN,2\nWEB,3,4\n", "non-finite"},
		{"inf cell", "suite,srl,hier\nSFP2K,+Inf,2\nWEB,3,4\n", "non-finite"},
		{"text cell", "suite,srl,hier\nSFP2K,fast,2\nWEB,3,4\n", "not numeric"},
		{"empty file", "", "empty file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateCSV(writeCSV(t, tc.csv), testShape)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid CSV rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestValidateCSVMissingFile(t *testing.T) {
	if err := ValidateCSV(filepath.Join(t.TempDir(), "nope.csv"), testShape); err == nil {
		t.Fatal("missing file should fail validation")
	}
}
