package paper

import (
	"encoding/csv"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"srlproc/internal/bench"
)

// keyColumns are the non-numeric identity columns a result CSV may carry;
// every other cell must parse as a finite number.
var keyColumns = map[string]bool{"suite": true, "design": true, "scenario": true}

// ValidateCSV hard-fails a result CSV that does not match its
// experiment's declared shape: exact header, exact data-row count, no
// empty cells, and every value cell a finite number (NaN and ±Inf are
// rejections, not data). A validated CSV is guaranteed plottable and
// summarizable without surprises downstream.
func ValidateCSV(path string, shape bench.ExperimentShape) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("paper: validate: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = len(shape.CSVHeader)
	records, err := r.ReadAll()
	if err != nil {
		return fmt.Errorf("paper: validate %s: %w", path, err)
	}
	if len(records) == 0 {
		return fmt.Errorf("paper: validate %s: empty file", path)
	}
	header := records[0]
	for i, want := range shape.CSVHeader {
		if header[i] != want {
			return fmt.Errorf("paper: validate %s: column %d is %q, want %q (header %v)",
				path, i+1, header[i], want, header)
		}
	}
	rows := records[1:]
	if len(rows) != shape.CSVRows {
		return fmt.Errorf("paper: validate %s: %d data rows, want %d", path, len(rows), shape.CSVRows)
	}
	for ri, row := range rows {
		for ci, cell := range row {
			col := shape.CSVHeader[ci]
			if strings.TrimSpace(cell) == "" {
				return fmt.Errorf("paper: validate %s: row %d column %q is empty", path, ri+1, col)
			}
			if keyColumns[col] {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return fmt.Errorf("paper: validate %s: row %d column %q: %q is not numeric", path, ri+1, col, cell)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("paper: validate %s: row %d column %q: non-finite value %q", path, ri+1, col, cell)
			}
		}
	}
	return nil
}

// readCSV loads a validated CSV back as header + rows for the analysis
// and plot stages. It assumes ValidateCSV has already passed.
func readCSV(path string) (header []string, rows [][]string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(records) == 0 {
		return nil, nil, fmt.Errorf("%s: empty", path)
	}
	return records[0], records[1:], nil
}
