package paper

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Deterministic SVG renderers for the paper's figures: grouped bars for
// the percent-speedup comparisons (Figures 2, 6, 8, 9, 10) and lines for
// the occupancy distribution (Figure 7) and the latency-tolerance curves.
// Same data in, same bytes out — the artifacts byte-compare across runs.
//
// Colors follow a validated categorical palette (fixed slot order — the
// ordering is the colorblind-safety mechanism), marks are thin with
// rounded data ends and 2px surface gaps, text stays in ink colors, and a
// legend names every series.

// seriesPalette is the categorical palette, light mode, in its validated
// fixed order. Series take slots in order and never cycle; more series
// than slots is a renderer error, not a generated hue.
var seriesPalette = []string{
	"#2a78d6", // blue
	"#eb6834", // orange
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#e87ba4", // magenta
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
}

// Chart chrome (light surface).
const (
	chartSurface = "#fcfcfb"
	inkPrimary   = "#0b0b0b"
	inkSecondary = "#52514e"
	inkMuted     = "#898781"
	gridHairline = "#e1e0d9"
	axisBaseline = "#c3c2b7"
	chartFont    = "system-ui, sans-serif"
)

// Series is one named data series over the chart's categories.
type Series struct {
	Label  string
	Values []float64
}

// chart geometry shared by both forms.
const (
	chartW      = 720
	chartH      = 420
	marginLeft  = 56
	marginRight = 16
	marginTop   = 64
	marginBot   = 44
)

type canvas struct {
	b strings.Builder
}

func (c *canvas) printf(format string, args ...any) {
	fmt.Fprintf(&c.b, format, args...)
}

// num formats a coordinate deterministically.
func num(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// tickLabel formats an axis tick without trailing zeros.
func tickLabel(v float64) string {
	// Round tiny float noise off tick arithmetic before formatting.
	r := math.Round(v*1e9) / 1e9
	return strconv.FormatFloat(r, 'g', -1, 64)
}

// esc escapes text for SVG content and attributes.
func esc(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// yScale maps data values to pixel y, with nice ticks.
type yScale struct {
	min, max float64
	ticks    []float64
}

// niceTicks picks a human-round tick step covering [lo, hi] with ~n lines.
func niceTicks(lo, hi float64, n int) yScale {
	if lo > 0 {
		lo = 0 // bars and speedups anchor at zero
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		hi = lo + 1
	}
	span := hi - lo
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch frac := raw / mag; {
	case frac <= 1:
		step = mag
	case frac <= 2:
		step = 2 * mag
	case frac <= 5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	min := math.Floor(lo/step) * step
	max := math.Ceil(hi/step) * step
	var ticks []float64
	for v := min; v <= max+step/2; v += step {
		ticks = append(ticks, v)
	}
	return yScale{min: min, max: max, ticks: ticks}
}

func (s yScale) y(v float64) float64 {
	plotH := float64(chartH - marginTop - marginBot)
	return float64(marginTop) + plotH*(s.max-v)/(s.max-s.min)
}

// header renders the surface, title, y-axis caption, legend, gridlines
// and tick labels common to both chart forms.
func (c *canvas) header(title, yLabel string, series []Series, ys yScale) {
	c.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="%s">`+"\n",
		chartW, chartH, chartW, chartH, chartFont)
	c.printf(`<rect width="%d" height="%d" fill="%s"/>`+"\n", chartW, chartH, chartSurface)
	c.printf(`<text x="%d" y="22" font-size="15" font-weight="600" fill="%s">%s</text>`+"\n",
		marginLeft, inkPrimary, esc(title))
	if yLabel != "" {
		c.printf(`<text x="%d" y="%d" font-size="11" fill="%s">%s</text>`+"\n",
			marginLeft, marginTop-10, inkMuted, esc(yLabel))
	}
	// Legend: always present for two or more series; a single series is
	// named by the title.
	if len(series) > 1 {
		x := marginLeft
		for i, s := range series {
			c.printf(`<rect x="%d" y="34" width="10" height="10" rx="2" fill="%s"/>`+"\n", x, seriesPalette[i])
			c.printf(`<text x="%d" y="43" font-size="11" fill="%s">%s</text>`+"\n", x+14, inkSecondary, esc(s.Label))
			x += 14 + 7*len(s.Label) + 18
		}
	}
	// Gridlines + tick labels.
	for _, t := range ys.ticks {
		y := ys.y(t)
		stroke := gridHairline
		if t == 0 {
			stroke = axisBaseline
		}
		c.printf(`<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="%s" stroke-width="1"/>`+"\n",
			marginLeft, num(y), chartW-marginRight, num(y), stroke)
		c.printf(`<text x="%d" y="%s" font-size="11" fill="%s" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, num(y+4), inkMuted, tickLabel(t))
	}
}

func (c *canvas) close() []byte {
	c.b.WriteString("</svg>\n")
	return []byte(c.b.String())
}

// checkSeries validates series shape against the palette and categories.
func checkSeries(categories []string, series []Series) error {
	if len(series) == 0 || len(categories) == 0 {
		return fmt.Errorf("paper: empty chart")
	}
	if len(series) > len(seriesPalette) {
		return fmt.Errorf("paper: %d series exceed the %d-slot palette; fold or facet instead",
			len(series), len(seriesPalette))
	}
	for _, s := range series {
		if len(s.Values) != len(categories) {
			return fmt.Errorf("paper: series %q has %d values for %d categories", s.Label, len(s.Values), len(categories))
		}
	}
	return nil
}

// GroupedBarSVG renders categories on the x axis with one bar per series
// in each group: the paper's speedup-comparison form (suites × designs).
func GroupedBarSVG(title, yLabel string, categories []string, series []Series) ([]byte, error) {
	if err := checkSeries(categories, series); err != nil {
		return nil, err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	ys := niceTicks(lo, hi, 5)
	var c canvas
	c.header(title, yLabel, series, ys)

	plotW := float64(chartW - marginLeft - marginRight)
	slot := plotW / float64(len(categories))
	const gap = 2.0 // surface gap between adjacent bars in a group
	groupW := slot * 0.7
	barW := (groupW - gap*float64(len(series)-1)) / float64(len(series))
	y0 := ys.y(0)
	for ci, cat := range categories {
		x0 := float64(marginLeft) + slot*float64(ci) + (slot-groupW)/2
		for si, s := range series {
			x := x0 + float64(si)*(barW+gap)
			c.barPath(x, barW, y0, ys.y(s.Values[ci]), seriesPalette[si])
		}
		c.printf(`<text x="%s" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
			num(float64(marginLeft)+slot*(float64(ci)+0.5)), chartH-marginBot+18, inkMuted, esc(cat))
	}
	return c.close(), nil
}

// barPath draws one bar from the zero baseline to yv with a rounded data
// end (the end away from the baseline).
func (c *canvas) barPath(x, w, y0, yv float64, fill string) {
	r := math.Min(4, w/2)
	up := yv <= y0 // positive value: bar grows upward
	top, bot := yv, y0
	if !up {
		top, bot = y0, yv
	}
	if h := bot - top; h < r {
		r = h
	}
	var d string
	if up {
		d = fmt.Sprintf("M%s %s L%s %s Q%s %s %s %s L%s %s Q%s %s %s %s L%s %s Z",
			num(x), num(bot), num(x), num(top+r),
			num(x), num(top), num(x+r), num(top),
			num(x+w-r), num(top), num(x+w), num(top), num(x+w), num(top+r),
			num(x+w), num(bot))
	} else {
		d = fmt.Sprintf("M%s %s L%s %s Q%s %s %s %s L%s %s Q%s %s %s %s L%s %s Z",
			num(x), num(top), num(x), num(bot-r),
			num(x), num(bot), num(x+r), num(bot),
			num(x+w-r), num(bot), num(x+w), num(bot), num(x+w), num(bot-r),
			num(x+w), num(top))
	}
	c.printf(`<path d="%s" fill="%s"/>`+"\n", d, fill)
}

// LineSVG renders one 2px line per series over ordered x categories with
// ringed markers: the occupancy-distribution and latency-tolerance form.
func LineSVG(title, yLabel string, xLabels []string, series []Series) ([]byte, error) {
	if err := checkSeries(xLabels, series); err != nil {
		return nil, err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	ys := niceTicks(lo, hi, 5)
	var c canvas
	c.header(title, yLabel, series, ys)

	plotW := float64(chartW - marginLeft - marginRight)
	xAt := func(i int) float64 {
		if len(xLabels) == 1 {
			return float64(marginLeft) + plotW/2
		}
		return float64(marginLeft) + plotW*float64(i)/float64(len(xLabels)-1)
	}
	for i, lab := range xLabels {
		c.printf(`<text x="%s" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
			num(xAt(i)), chartH-marginBot+18, inkMuted, esc(lab))
	}
	for si, s := range series {
		var pts []string
		for i, v := range s.Values {
			pts = append(pts, num(xAt(i))+","+num(ys.y(v)))
		}
		c.printf(`<polyline points="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`+"\n",
			strings.Join(pts, " "), seriesPalette[si])
		// Markers with a 2px surface ring so overlapping series separate.
		for i, v := range s.Values {
			c.printf(`<circle cx="%s" cy="%s" r="4" fill="%s" stroke="%s" stroke-width="2"/>`+"\n",
				num(xAt(i)), num(ys.y(v)), seriesPalette[si], chartSurface)
		}
	}
	return c.close(), nil
}
