package paper

import (
	"fmt"
	"strings"
)

// Markdown and LaTeX renderers for the paper's tables. Both consume plain
// (title, headers, rows) — fed from bench.ConfigTable for the
// configuration echoes (Tables 1 and 2) and from validated CSVs for the
// measured tables — and both are deterministic: same rows, same bytes.

// MarkdownTable renders a GitHub-flavored Markdown table.
func MarkdownTable(title string, headers []string, rows [][]string) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", escapeMarkdown(title))
	}
	b.WriteString("|")
	for _, h := range headers {
		b.WriteString(" " + escapeMarkdown(h) + " |")
	}
	b.WriteString("\n|")
	for range headers {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range rows {
		b.WriteString("|")
		for i := range headers {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			b.WriteString(" " + escapeMarkdown(cell) + " |")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// LaTeXTable renders a booktabs-style LaTeX table ready to drop into a
// paper source (the caption carries the title).
func LaTeXTable(title string, headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("\\begin{table}[t]\n\\centering\n")
	if title != "" {
		fmt.Fprintf(&b, "\\caption{%s}\n", escapeLaTeX(title))
	}
	b.WriteString("\\begin{tabular}{" + strings.Repeat("l", len(headers)) + "}\n\\toprule\n")
	cells := make([]string, len(headers))
	for i, h := range headers {
		cells[i] = "\\textbf{" + escapeLaTeX(h) + "}"
	}
	b.WriteString(strings.Join(cells, " & ") + " \\\\\n\\midrule\n")
	for _, row := range rows {
		for i := range headers {
			cells[i] = ""
			if i < len(row) {
				cells[i] = escapeLaTeX(row[i])
			}
		}
		b.WriteString(strings.Join(cells, " & ") + " \\\\\n")
	}
	b.WriteString("\\bottomrule\n\\end{tabular}\n\\end{table}\n")
	return b.String()
}

// escapeMarkdown protects the characters that would break a table cell.
func escapeMarkdown(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	s = strings.ReplaceAll(s, "\n", " ")
	return s
}

// latexReplacer escapes LaTeX special characters in data cells.
var latexReplacer = strings.NewReplacer(
	"\\", "\\textbackslash{}",
	"&", "\\&",
	"%", "\\%",
	"$", "\\$",
	"#", "\\#",
	"_", "\\_",
	"{", "\\{",
	"}", "\\}",
	"~", "\\textasciitilde{}",
	"^", "\\textasciicircum{}",
)

func escapeLaTeX(s string) string { return latexReplacer.Replace(s) }
