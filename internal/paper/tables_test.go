package paper

import "testing"

var (
	tblHeaders = []string{"suite", "redone_stores_pct"}
	tblRows    = [][]string{{"SFP2K", "1.25"}, {"WEB|x", "3_4"}}
)

func TestMarkdownTable(t *testing.T) {
	got := MarkdownTable("Table 3: SRL statistics", tblHeaders, tblRows)
	want := "**Table 3: SRL statistics**\n\n" +
		"| suite | redone_stores_pct |\n" +
		"|---|---|\n" +
		"| SFP2K | 1.25 |\n" +
		"| WEB\\|x | 3_4 |\n"
	if got != want {
		t.Fatalf("MarkdownTable:\n got %q\nwant %q", got, want)
	}
}

func TestLaTeXTable(t *testing.T) {
	got := LaTeXTable("Stats 100% & more", tblHeaders, tblRows)
	want := "\\begin{table}[t]\n\\centering\n" +
		"\\caption{Stats 100\\% \\& more}\n" +
		"\\begin{tabular}{ll}\n\\toprule\n" +
		"\\textbf{suite} & \\textbf{redone\\_stores\\_pct} \\\\\n\\midrule\n" +
		"SFP2K & 1.25 \\\\\n" +
		"WEB|x & 3\\_4 \\\\\n" +
		"\\bottomrule\n\\end{tabular}\n\\end{table}\n"
	if got != want {
		t.Fatalf("LaTeXTable:\n got %q\nwant %q", got, want)
	}
}

func TestTablesHandleShortRows(t *testing.T) {
	// A short row pads with empty cells rather than panicking.
	md := MarkdownTable("", []string{"a", "b"}, [][]string{{"only"}})
	if want := "| a | b |\n|---|---|\n| only |  |\n"; md != want {
		t.Fatalf("short row markdown = %q, want %q", md, want)
	}
}
