package paper

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// e2eGrid runs the two cheapest experiments at unit-test scale: table3
// exercises the table path, fig7 the line-plot path.
const e2eGrid = `{
  "repeats": 2,
  "common": { "uops": 10000, "warmup": 2000, "seed": 1 },
  "experiments": [ { "id": "table3" }, { "id": "fig7" } ]
}`

func runPipeline(t *testing.T, dir string, mutate func(*RunnerConfig)) *Manifest {
	t.Helper()
	g := mustParse(t, e2eGrid)
	cfg := RunnerConfig{
		Grid: g, GridBytes: []byte(e2eGrid), Profile: FullProfile,
		Dir: dir, Stamp: "test",
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	m, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func TestPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	m := runPipeline(t, dir, nil)

	if len(m.Units) != 4 {
		t.Fatalf("manifest has %d units, want 4", len(m.Units))
	}
	// Repeats share a seed on a deterministic simulator: identical digests.
	if m.Units[0].SHA256 != m.Units[1].SHA256 {
		t.Errorf("table3 repeats disagree: %s vs %s", m.Units[0].SHA256, m.Units[1].SHA256)
	}
	for _, f := range []string{
		"manifest.json", "state.json", "experiments.json",
		"csv/table3_r01.csv", "csv/table3_r02.json", "csv/fig7_r02.csv",
		"logs/fig7_r01.log",
	} {
		if !fileExists(filepath.Join(dir, f)) {
			t.Errorf("missing %s", f)
		}
	}

	// Analysis over the finished run.
	g := mustParse(t, e2eGrid)
	aCfg := AnalyzeConfig{Grid: g, Profile: FullProfile, Dir: dir}
	if err := Analyze(aCfg); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for _, f := range []string{
		"analysis/summary_runs.csv", "analysis/summary_grouped.csv",
		"analysis/tables/table1.md", "analysis/tables/table1.tex",
		"analysis/tables/table2.md", "analysis/tables/table3.md",
		"analysis/plots/fig7.svg", "analysis/report.md",
	} {
		if !fileExists(filepath.Join(dir, f)) {
			t.Errorf("missing %s", f)
		}
	}
	if fileExists(filepath.Join(dir, "analysis/plots/table3.svg")) {
		t.Error("table3 should render as a table, not a chart")
	}

	// Checks: repeats agree and a generous band on a table3 metric holds.
	exp := &Expectations{Profiles: map[string][]MetricBand{
		FullProfile: {
			{Experiment: "table3", Column: "pct_time_srl_occupied", Min: 0, Max: 100},
			{Experiment: "fig7", Match: map[string]string{"suite": "WEB"}, Column: "gt_0", Min: 0, Max: 100},
		},
	}}
	units, _ := g.Plan(FullProfile, nil, 0)
	results, err := Check(dir, units, exp, FullProfile)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(results) != 4 { // 2 repeat checks + 2 bands
		t.Errorf("%d check results, want 4: %+v", len(results), results)
	}
	if !fileExists(filepath.Join(dir, "analysis/check.md")) {
		t.Error("missing analysis/check.md")
	}

	// A violated band fails the check and names the row.
	bad := &Expectations{Profiles: map[string][]MetricBand{
		FullProfile: {{Experiment: "table3", Column: "pct_time_srl_occupied", Min: 1000, Max: 2000}},
	}}
	if _, err := Check(dir, units, bad, FullProfile); err == nil {
		t.Error("out-of-band metric must fail the check")
	}

	// A band for an experiment outside the (e.g. -only restricted) plan is
	// skipped, never failed.
	partial := &Expectations{Profiles: map[string][]MetricBand{
		FullProfile: {{Experiment: "fig6", Match: map[string]string{"suite": "SFP2K"}, Column: "SRL", Min: 0, Max: 100}},
	}}
	skipped, err := Check(dir, units, partial, FullProfile)
	if err != nil {
		t.Fatalf("Check with out-of-plan band: %v", err)
	}
	found := false
	for _, r := range skipped {
		if strings.HasPrefix(r.Name, "band/fig6/") {
			found = true
			if !r.Skip || !r.OK {
				t.Errorf("out-of-plan band should skip, got %+v", r)
			}
		}
	}
	if !found {
		t.Errorf("no band/fig6 result in %+v", skipped)
	}

	// Resume: a second run over the same directory re-executes nothing.
	m2 := runPipeline(t, dir, func(c *RunnerConfig) { c.Resume = true })
	for _, u := range m2.Units {
		if !u.Resumed {
			t.Errorf("%s repeat %d re-ran despite completed state", u.Experiment, u.Repeat)
		}
	}
	// Without -resume, an existing run directory refuses to restart.
	g2 := mustParse(t, e2eGrid)
	r, err := NewRunner(RunnerConfig{Grid: g2, GridBytes: []byte(e2eGrid), Profile: FullProfile, Dir: dir, Stamp: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err == nil {
		t.Error("restarting a populated run dir without -resume must fail")
	}

	// Determinism: a fresh directory reproduces csv/ byte-for-byte.
	dir2 := t.TempDir()
	runPipeline(t, dir2, nil)
	if err := Analyze(AnalyzeConfig{Grid: g, Profile: FullProfile, Dir: dir2}); err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{
		"csv/table3_r01.csv", "csv/fig7_r01.json",
		"analysis/summary_grouped.csv", "analysis/plots/fig7.svg", "analysis/report.md",
	} {
		a, err := os.ReadFile(filepath.Join(dir, rel))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir2, rel))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between identical runs", rel)
		}
	}
}

// TestPipelineServerMode points the runner at a stub /v1/sweep that sheds
// the first request, and verifies the artifacts are byte-identical to the
// in-process ones (the CSV is rendered from the document either way).
func TestPipelineServerMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	localDir := t.TempDir()
	runPipeline(t, localDir, nil)

	docs := map[string][]byte{}
	for _, id := range []string{"table3", "fig7"} {
		doc, err := os.ReadFile(filepath.Join(localDir, "csv", id+"_r01.json"))
		if err != nil {
			t.Fatal(err)
		}
		docs[id] = doc
	}

	shed := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweep" || r.Method != http.MethodPost {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		if shed {
			shed = false
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"overloaded","message":"shed","retry_after_ms":50}}`))
			return
		}
		var req struct {
			Experiment string `json:"experiment"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		doc, ok := docs[req.Experiment]
		if !ok {
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error":{"code":"bad_request","message":"unknown experiment"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		// Real srlserved streams the document through a json.Encoder,
		// which appends a trailing newline; mimic that so the test pins
		// the client-side normalization.
		w.Write(doc)
		w.Write([]byte("\n"))
	}))
	defer srv.Close()

	dir := t.TempDir()
	runPipeline(t, dir, func(c *RunnerConfig) {
		c.Server = srv.URL
		c.Client = srv.Client()
	})
	for _, rel := range []string{"csv/table3_r01.csv", "csv/fig7_r01.csv", "csv/table3_r01.json"} {
		a, err := os.ReadFile(filepath.Join(localDir, rel))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, rel))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s: server-mode artifact differs from in-process", rel)
		}
	}
}

// TestServerModeErrorEnvelope surfaces the /v1 error envelope in failures.
func TestServerModeErrorEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"code":"bad_request","message":"no such experiment"}}`))
	}))
	defer srv.Close()

	g := mustParse(t, e2eGrid)
	r, err := NewRunner(RunnerConfig{
		Grid: g, GridBytes: []byte(e2eGrid), Profile: FullProfile,
		Dir: t.TempDir(), Stamp: "test", Server: srv.URL, Client: srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "bad_request: no such experiment") {
		t.Fatalf("error %v should carry the envelope message", err)
	}
}

// TestResumeRejectsConfigChange pins the state fingerprint guard.
func TestResumeRejectsConfigChange(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	one := `{"repeats":1,"common":{"uops":10000,"warmup":2000,"seed":1},"experiments":[{"id":"table3"}]}`
	g := mustParse(t, one)
	r, err := NewRunner(RunnerConfig{Grid: g, GridBytes: []byte(one), Profile: FullProfile, Dir: dir, Stamp: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	edited := one + "\n"
	g2 := mustParse(t, edited)
	r2, err := NewRunner(RunnerConfig{Grid: g2, GridBytes: []byte(edited), Profile: FullProfile, Dir: dir, Stamp: "test", Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Run(context.Background()); err == nil {
		t.Error("resume with an edited grid must refuse and demand a fresh run")
	}
}
