package paper

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"srlproc/internal/bench"
)

var (
	plotCats   = []string{"SFP2K", "WEB", "MM"}
	plotSeries = []Series{
		{Label: "srl", Values: []float64{12.5, -3.2, 0}},
		{Label: "hier", Values: []float64{8.1, 2.4, 5.5}},
	}
)

func TestGroupedBarSVG(t *testing.T) {
	svg, err := GroupedBarSVG("Figure X", "% speedup", plotCats, plotSeries)
	if err != nil {
		t.Fatalf("GroupedBarSVG: %v", err)
	}
	again, err := GroupedBarSVG("Figure X", "% speedup", plotCats, plotSeries)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(svg, again) {
		t.Error("renderer is not deterministic")
	}
	s := string(svg)
	for _, want := range []string{
		"<svg xmlns=", "Figure X", "% speedup",
		">srl</text>", ">hier</text>", // legend labels (two series)
		seriesPalette[0], seriesPalette[1],
		">SFP2K</text>", ">WEB</text>", ">MM</text>",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(s, "<path "); got != len(plotCats)*len(plotSeries) {
		t.Errorf("%d bars, want %d", got, len(plotCats)*len(plotSeries))
	}
}

func TestLineSVG(t *testing.T) {
	svg, err := LineSVG("Latency", "IPC", []string{"200", "400", "800"}, plotSeries)
	if err != nil {
		t.Fatalf("LineSVG: %v", err)
	}
	s := string(svg)
	if got := strings.Count(s, "<polyline "); got != len(plotSeries) {
		t.Errorf("%d polylines, want %d", got, len(plotSeries))
	}
	if got := strings.Count(s, "<circle "); got != 6 {
		t.Errorf("%d markers, want 6", got)
	}
}

func TestSingleSeriesHasNoLegend(t *testing.T) {
	svg, err := GroupedBarSVG("Solo", "", plotCats, plotSeries[:1])
	if err != nil {
		t.Fatal(err)
	}
	// The title names a single series; a legend swatch row would be noise.
	if strings.Contains(string(svg), `y="34" width="10"`) {
		t.Error("single-series chart rendered a legend")
	}
}

func TestChartErrors(t *testing.T) {
	over := make([]Series, len(seriesPalette)+1)
	for i := range over {
		over[i] = Series{Label: fmt.Sprintf("s%d", i), Values: []float64{1}}
	}
	if _, err := GroupedBarSVG("t", "", []string{"a"}, over); err == nil {
		t.Error("series beyond the palette must error, not cycle hues")
	}
	bad := []Series{{Label: "x", Values: []float64{1, 2}}}
	if _, err := LineSVG("t", "", []string{"a"}, bad); err == nil {
		t.Error("value/category count mismatch must error")
	}
	if _, err := GroupedBarSVG("t", "", nil, plotSeries); err == nil {
		t.Error("empty chart must error")
	}
}

// TestPlotExperimentForms drives the per-experiment chart dispatch with
// synthetic CSV rows shaped like the real artifacts.
func TestPlotExperimentForms(t *testing.T) {
	fig := [][]string{{"SFP2K", "1", "2"}, {"WEB", "3", "4"}}
	svg, err := plotExperiment(bench.Fig6, "Figure 6", []string{"suite", "srl", "hier"}, fig)
	if err != nil || !strings.Contains(string(svg), "<path ") {
		t.Errorf("fig6 bar form: err=%v", err)
	}

	occ := [][]string{{"SFP2K", "90", "10"}}
	svg, err = plotExperiment(bench.Fig7, "Figure 7", []string{"suite", "gt_0", "gt_64"}, occ)
	if err != nil || !strings.Contains(string(svg), "&gt;64") {
		t.Errorf("fig7 line form: err=%v svg=%.120s", err, svg)
	}

	energy := [][]string{
		{"srl", "SFP2K", "4.5", "60"}, {"srl", "WEB", "5.5", "61"},
		{"hier", "SFP2K", "9.5", "80"}, {"hier", "WEB", "10.5", "81"},
	}
	svg, err = plotExperiment(bench.Energy, "Energy", []string{"design", "suite", "nj_per_1k_uops", "cam_share_pct"}, energy)
	if err != nil || strings.Count(string(svg), "<path ") != 4 {
		t.Errorf("energy pivot: err=%v", err)
	}

	lat := [][]string{
		{"WEB", "srl", "200", "1.5"}, {"WEB", "srl", "400", "1.4"},
		{"WEB", "hier", "200", "1.2"}, {"WEB", "hier", "400", "1.0"},
	}
	svg, err = plotExperiment(bench.Latency, "Latency", []string{"suite", "design", "mem_latency", "ipc"}, lat)
	if err != nil || strings.Count(string(svg), "<polyline ") != 2 {
		t.Errorf("latency pivot: err=%v", err)
	}

	svg, err = plotExperiment(bench.Table3, "t", nil, nil)
	if err != nil || svg != nil {
		t.Errorf("table3 must have no chart form: svg=%v err=%v", svg != nil, err)
	}
}
