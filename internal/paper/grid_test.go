package paper

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"srlproc/internal/bench"
)

const testGrid = `{
  "repeats": 2,
  "common": { "seed": 7 },
  "profiles": {
    "quick": { "uops": 40000, "warmup": 8000 },
    "stress": { "nocache": true, "noskip": true }
  },
  "experiments": [
    { "id": "fig6" },
    { "id": "table3", "repeats": 3, "overrides": { "seed": 11 } },
    { "id": "latency" }
  ]
}`

func mustParse(t *testing.T, src string) *Grid {
	t.Helper()
	g, err := ParseGrid([]byte(src))
	if err != nil {
		t.Fatalf("ParseGrid: %v", err)
	}
	return g
}

func TestParseGridErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no repeats", `{"experiments":[{"id":"fig6"}]}`, "repeats must be >= 1"},
		{"no experiments", `{"repeats":1}`, "no experiments"},
		{"unknown field", `{"repeats":1,"experiments":[{"id":"fig6"}],"bogus":1}`, "bogus"},
		{"unknown knob", `{"repeats":1,"common":{"cycles":5},"experiments":[{"id":"fig6"}]}`, "cycles"},
		{"bad id", `{"repeats":1,"experiments":[{"id":"fig99"}]}`, "fig99"},
		{"duplicate id", `{"repeats":1,"experiments":[{"id":"fig6"},{"id":"figure6"}]}`, "duplicate"},
		{"redefined full", `{"repeats":1,"profiles":{"full":{}},"experiments":[{"id":"fig6"}]}`, "implicit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseGrid([]byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestPlanKnobLayering(t *testing.T) {
	g := mustParse(t, testGrid)

	units, err := g.Plan("quick", nil, 0)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	// fig6 ×2, table3 ×3, latency ×2 in grid order.
	var keys []string
	for _, u := range units {
		keys = append(keys, u.Key())
	}
	want := []string{"fig6_r01", "fig6_r02", "table3_r01", "table3_r02", "table3_r03", "latency_r01", "latency_r02"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("plan keys = %v, want %v", keys, want)
	}

	fig6 := units[0].Options
	if fig6.RunUops != 40000 || fig6.WarmupUops != 8000 {
		t.Errorf("quick profile scale not applied: run=%d warmup=%d", fig6.RunUops, fig6.WarmupUops)
	}
	if fig6.Seed != 7 {
		t.Errorf("common seed not applied: %d", fig6.Seed)
	}
	if table3 := units[2].Options; table3.Seed != 11 {
		t.Errorf("per-experiment override lost: seed=%d", table3.Seed)
	}

	// The stress profile flips the boolean knobs via pointers.
	stress, err := g.Plan("stress", nil, 0)
	if err != nil {
		t.Fatalf("Plan stress: %v", err)
	}
	if o := stress[0].Options; !o.NoCache || !o.NoEventSkip {
		t.Errorf("stress profile booleans not applied: %+v", o)
	}

	// The full profile keeps the default scale.
	full, err := g.Plan(FullProfile, nil, 0)
	if err != nil {
		t.Fatalf("Plan full: %v", err)
	}
	def := bench.DefaultOptions()
	if o := full[0].Options; o.RunUops != def.RunUops || o.WarmupUops != def.WarmupUops {
		t.Errorf("full profile changed scale: %+v", o)
	}
}

func TestPlanOnlyAndRepeats(t *testing.T) {
	g := mustParse(t, testGrid)

	units, err := g.Plan("full", []bench.ExperimentID{bench.Table3}, 1)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(units) != 1 || units[0].Key() != "table3_r01" {
		t.Fatalf("only+repeats plan = %v", units)
	}

	if _, err := g.Plan("full", []bench.ExperimentID{bench.Fig2}, 0); err == nil {
		t.Fatal("planning an experiment outside the grid should fail")
	}
	if _, err := g.Plan("nope", nil, 0); err == nil || !strings.Contains(err.Error(), "unknown profile") {
		t.Fatalf("unknown profile error = %v", err)
	}
}

func TestConfigHash(t *testing.T) {
	a := ConfigHash([]byte(testGrid), "full")
	if b := ConfigHash([]byte(testGrid), "quick"); a == b {
		t.Error("hash ignores profile")
	}
	if b := ConfigHash([]byte(testGrid+" "), "full"); a == b {
		t.Error("hash ignores grid bytes")
	}
	if b := ConfigHash([]byte(testGrid), "full"); a != b {
		t.Error("hash not stable")
	}
	if len(a) != 16 {
		t.Errorf("hash length %d, want 16", len(a))
	}
}

// TestQuickAndFullProfilesSameStructure pins the shipped grid: the quick
// profile must enumerate exactly the experiments, repeats, points and CSV
// schemas of the full profile — only the simulation scale differs. That
// equivalence is what lets the CI smoke run stand in for the nightly.
func TestQuickAndFullProfilesSameStructure(t *testing.T) {
	g, _, err := LoadGrid(filepath.Join("..", "..", "scripts", "paper", "experiments.json"))
	if err != nil {
		t.Fatalf("LoadGrid: %v", err)
	}
	quick, err := g.Plan("quick", nil, 0)
	if err != nil {
		t.Fatalf("Plan quick: %v", err)
	}
	full, err := g.Plan(FullProfile, nil, 0)
	if err != nil {
		t.Fatalf("Plan full: %v", err)
	}
	if len(quick) != len(full) {
		t.Fatalf("quick has %d units, full %d", len(quick), len(full))
	}
	ids := map[bench.ExperimentID]bool{}
	for i := range quick {
		q, f := quick[i], full[i]
		if q.ID != f.ID || q.Repeat != f.Repeat || q.Repeats != f.Repeats {
			t.Fatalf("unit %d: quick %s vs full %s", i, q.Key(), f.Key())
		}
		ids[q.ID] = true
		qs, err := bench.Shape(q.ID, q.Options)
		if err != nil {
			t.Fatalf("Shape quick %s: %v", q.Key(), err)
		}
		fs, err := bench.Shape(f.ID, f.Options)
		if err != nil {
			t.Fatalf("Shape full %s: %v", f.Key(), err)
		}
		if !reflect.DeepEqual(qs, fs) {
			t.Errorf("%s: quick shape %+v != full shape %+v", q.ID, qs, fs)
		}
	}
	// The shipped grid covers every runnable experiment.
	for _, id := range bench.AllExperiments() {
		if !ids[id] {
			t.Errorf("shipped grid is missing experiment %s", id)
		}
	}
}
