package paper

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"srlproc/internal/bench"
	"srlproc/internal/store"
)

// Layout of one run directory (paper_runs/<stamp>/):
//
//	experiments.json   the grid that produced the run (provenance copy)
//	manifest.json      what ran, under which code, and how long it took
//	state.json         resumable per-unit completion state
//	csv/<key>.csv      one validated CSV per experiment × repeat
//	csv/<key>.json     the full result document (byte-compared across repeats)
//	logs/<key>.log     per-unit execution log
//	analysis/          summary stats, tables, plots, report.md (Analyze)
const (
	csvDir      = "csv"
	logDir      = "logs"
	analysisDir = "analysis"

	manifestFile = "manifest.json"
	stateFile    = "state.json"
	gridCopyFile = "experiments.json"
)

// ManifestUnit records one executed unit in the manifest.
type ManifestUnit struct {
	Experiment string `json:"experiment"`
	Repeat     int    `json:"repeat"`
	Points     int    `json:"points"`
	WallMs     int64  `json:"wall_ms"`
	SHA256     string `json:"sha256"` // of the result JSON document
	Resumed    bool   `json:"resumed,omitempty"`
}

// Manifest records a run's provenance: the exact code (stamp + VCS
// revision), the exact configuration (grid hash + profile) and the wall
// time each experiment cost. Wall times vary run to run, so the manifest
// lives outside the byte-stable csv/ and analysis/ trees.
type Manifest struct {
	Stamp      string         `json:"stamp"`
	Profile    string         `json:"profile"`
	ConfigHash string         `json:"config_hash"`
	CodeStamp  string         `json:"code_stamp"`
	GitSHA     string         `json:"git_sha,omitempty"`
	GoVersion  string         `json:"go_version"`
	Server     string         `json:"server,omitempty"`
	Units      []ManifestUnit `json:"units"`
	WallMs     int64          `json:"wall_ms"`
}

// unitState is one completed unit's entry in state.json.
type unitState struct {
	SHA256 string `json:"sha256"`
	WallMs int64  `json:"wall_ms"`
	Points int    `json:"points"`
}

// runState is the resumable completion state. A run directory only
// resumes under the same (grid, profile) fingerprint: editing either
// starts over instead of mixing schemas.
type runState struct {
	ConfigHash string               `json:"config_hash"`
	Profile    string               `json:"profile"`
	Done       map[string]unitState `json:"done"`
}

// RunnerConfig parameterises one pipeline run.
type RunnerConfig struct {
	Grid      *Grid
	GridBytes []byte
	Profile   string
	// Only restricts the plan to these experiments (nil = the whole grid).
	Only []bench.ExperimentID
	// Repeats overrides every repeat count when positive.
	Repeats int
	// Dir is the run directory (paper_runs/<stamp>).
	Dir   string
	Stamp string
	// Server, when set, executes every experiment against a running
	// srlserved via POST /v1/sweep instead of in-process — the pipeline
	// then doubles as a standing load generator for the service.
	Server string
	// Workers sizes the in-process sweep pool (or the per-job pool the
	// server is asked for); 0 keeps each side's default.
	Workers int
	// Resume skips units state.json already records as complete.
	Resume bool
	// Log receives human progress lines; nil discards them.
	Log io.Writer
	// Client overrides the HTTP client for -server mode (tests).
	Client *http.Client
}

// Runner executes a grid plan into a run directory.
type Runner struct {
	cfg   RunnerConfig
	units []Unit
	state runState
}

// NewRunner validates the config and resolves the plan.
func NewRunner(cfg RunnerConfig) (*Runner, error) {
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	units, err := cfg.Grid.Plan(cfg.Profile, cfg.Only, cfg.Repeats)
	if err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, units: units}, nil
}

// Units returns the resolved plan.
func (r *Runner) Units() []Unit { return r.units }

// Run executes the plan and writes the manifest. Completed units are
// checkpointed into state.json one by one, so an interrupted run resumes
// from the last finished experiment instead of starting over.
func (r *Runner) Run(ctx context.Context) (*Manifest, error) {
	start := time.Now()
	for _, d := range []string{"", csvDir, logDir, analysisDir} {
		if err := os.MkdirAll(filepath.Join(r.cfg.Dir, d), 0o755); err != nil {
			return nil, fmt.Errorf("paper: %w", err)
		}
	}
	hash := ConfigHash(r.cfg.GridBytes, r.cfg.Profile)
	if err := r.loadState(hash); err != nil {
		return nil, err
	}
	// Provenance copy: the grid as it was when the run started.
	if err := writeFileAtomic(filepath.Join(r.cfg.Dir, gridCopyFile), r.cfg.GridBytes); err != nil {
		return nil, err
	}

	m := &Manifest{
		Stamp:      r.cfg.Stamp,
		Profile:    r.cfg.Profile,
		ConfigHash: hash,
		CodeStamp:  store.CodeStamp(),
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		Server:     r.cfg.Server,
	}
	for _, u := range r.units {
		mu, err := r.runUnit(ctx, u)
		if err != nil {
			return nil, fmt.Errorf("paper: %s: %w", u.Key(), err)
		}
		m.Units = append(m.Units, *mu)
		m.WallMs = time.Since(start).Milliseconds()
		if err := r.writeManifest(m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// runUnit executes (or resumes) one experiment × repeat.
func (r *Runner) runUnit(ctx context.Context, u Unit) (*ManifestUnit, error) {
	key := u.Key()
	csvPath := filepath.Join(r.cfg.Dir, csvDir, key+".csv")
	docPath := filepath.Join(r.cfg.Dir, csvDir, key+".json")
	shape, err := bench.Shape(u.ID, u.Options)
	if err != nil {
		return nil, err
	}

	if done, ok := r.state.Done[key]; ok && fileExists(csvPath) && fileExists(docPath) {
		fmt.Fprintf(r.cfg.Log, "resume  %-12s %d points (done)\n", key, done.Points)
		return &ManifestUnit{Experiment: u.ID.String(), Repeat: u.Repeat,
			Points: done.Points, WallMs: done.WallMs, SHA256: done.SHA256, Resumed: true}, nil
	}

	o := u.Options
	if r.cfg.Workers != 0 {
		o.Workers = r.cfg.Workers
	}
	fmt.Fprintf(r.cfg.Log, "run     %-12s %d points (repeat %d/%d)\n", key, shape.Points, u.Repeat, u.Repeats)

	logPath := filepath.Join(r.cfg.Dir, logDir, key+".log")
	lf, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	defer lf.Close()
	fmt.Fprintf(lf, "unit: %s\nexperiment: %s repeat %d/%d\npoints: %d\nuops: %d warmup: %d seed: %d noskip: %v nocache: %v\nstart: %s\n",
		key, u.ID, u.Repeat, u.Repeats, shape.Points,
		o.RunUops, o.WarmupUops, o.Seed, o.NoEventSkip, o.NoCache, time.Now().Format(time.RFC3339))

	begin := time.Now()
	var doc []byte
	if r.cfg.Server != "" {
		if o.NoEventSkip {
			fmt.Fprintf(lf, "note: noskip knob has no /v1/sweep form; server ran with its default skip mode (results are bit-identical either way)\n")
		}
		doc, err = r.runServer(ctx, u.ID, o)
	} else {
		doc, err = runLocal(ctx, u.ID, o)
	}
	wall := time.Since(begin)
	if err != nil {
		fmt.Fprintf(lf, "error: %v\n", err)
		return nil, err
	}

	// One CSV path for both execution modes: the CSV is always rendered
	// from the result document itself, so a server-produced artifact is
	// byte-identical to a local one by construction.
	csvBytes, err := resultCSV(u.ID, doc)
	if err != nil {
		return nil, fmt.Errorf("render CSV: %w", err)
	}
	if err := writeFileAtomic(docPath, doc); err != nil {
		return nil, err
	}
	if err := writeFileAtomic(csvPath, csvBytes); err != nil {
		return nil, err
	}
	if err := ValidateCSV(csvPath, shape); err != nil {
		return nil, err
	}

	sum := sha256.Sum256(doc)
	st := unitState{SHA256: hex.EncodeToString(sum[:]), WallMs: wall.Milliseconds(), Points: shape.Points}
	r.state.Done[key] = st
	if err := r.writeState(); err != nil {
		return nil, err
	}
	fmt.Fprintf(lf, "end: %s\nwall_ms: %d\nsha256: %s\ncsv: %s\n",
		time.Now().Format(time.RFC3339), st.WallMs, st.SHA256, filepath.Base(csvPath))
	fmt.Fprintf(r.cfg.Log, "done    %-12s %s  sha %s\n", key, wall.Round(time.Millisecond), st.SHA256[:12])
	return &ManifestUnit{Experiment: u.ID.String(), Repeat: u.Repeat,
		Points: shape.Points, WallMs: st.WallMs, SHA256: st.SHA256}, nil
}

// runLocal executes one experiment in-process on the sweep engine and
// returns its canonical JSON document — the same bytes `experiments
// -json -only <id>` would print.
func runLocal(ctx context.Context, id bench.ExperimentID, o bench.Options) ([]byte, error) {
	res, err := bench.RunExperiment(ctx, id, o)
	if err != nil {
		return nil, err
	}
	return json.Marshal(res)
}

// runServer executes one experiment against a running srlserved via
// POST /v1/sweep, retrying bounded 429 sheds with the server's advertised
// Retry-After. The response body is the same document runLocal produces.
func (r *Runner) runServer(ctx context.Context, id bench.ExperimentID, o bench.Options) ([]byte, error) {
	client := r.cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(map[string]any{
		"experiment":  id.String(),
		"run_uops":    o.RunUops,
		"warmup_uops": o.WarmupUops,
		"seed":        o.Seed,
		"workers":     r.cfg.Workers,
		"no_cache":    o.NoCache,
	})
	if err != nil {
		return nil, err
	}
	url := r.cfg.Server + "/v1/sweep"
	const maxRetries = 5
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		doc, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			// The server's json.Encoder appends a newline that the local
			// json.Marshal path does not; trim it so the two execution
			// modes emit byte-identical documents.
			return bytes.TrimRight(doc, "\n"), nil
		case resp.StatusCode == http.StatusTooManyRequests && attempt < maxRetries:
			delay := retryAfter(resp, doc)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		default:
			return nil, fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, errorMessage(doc))
		}
	}
}

// retryAfter extracts the server's shed backoff from the Retry-After
// header or the error envelope's retry_after_ms, clamped to [1s, 10s].
func retryAfter(resp *http.Response, doc []byte) time.Duration {
	d := time.Second
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			d = time.Duration(secs) * time.Second
		}
	} else {
		var env struct {
			Error struct {
				RetryAfterMs int64 `json:"retry_after_ms"`
			} `json:"error"`
		}
		if json.Unmarshal(doc, &env) == nil && env.Error.RetryAfterMs > 0 {
			d = time.Duration(env.Error.RetryAfterMs) * time.Millisecond
		}
	}
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

// errorMessage renders a /v1 error envelope, falling back to the raw body.
func errorMessage(doc []byte) string {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(doc, &env) == nil && env.Error.Message != "" {
		return env.Error.Code + ": " + env.Error.Message
	}
	if len(doc) > 200 {
		doc = doc[:200]
	}
	return string(doc)
}

func (r *Runner) loadState(hash string) error {
	r.state = runState{ConfigHash: hash, Profile: r.cfg.Profile, Done: map[string]unitState{}}
	path := filepath.Join(r.cfg.Dir, stateFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("paper: %w", err)
	}
	if !r.cfg.Resume {
		return fmt.Errorf("paper: %s already has run state; pass -resume to continue it or use a fresh stamp", r.cfg.Dir)
	}
	var prev runState
	if err := json.Unmarshal(raw, &prev); err != nil {
		return fmt.Errorf("paper: %s: %w", path, err)
	}
	if prev.ConfigHash != hash || prev.Profile != r.cfg.Profile {
		return fmt.Errorf("paper: %s was produced by config %s profile %q; current is %s profile %q — start a fresh run",
			r.cfg.Dir, prev.ConfigHash, prev.Profile, hash, r.cfg.Profile)
	}
	if prev.Done != nil {
		r.state.Done = prev.Done
	}
	return nil
}

func (r *Runner) writeState() error {
	b, err := json.MarshalIndent(r.state, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(r.cfg.Dir, stateFile), append(b, '\n'))
}

func (r *Runner) writeManifest(m *Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(r.cfg.Dir, manifestFile), append(b, '\n'))
}

// gitSHA reads the build's VCS revision, when the binary was built from a
// checkout (go run / go build stamp it automatically).
func gitSHA() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}

// writeFileAtomic writes via a temp file + rename, so a crashed run never
// leaves a half-written artifact that a resume would then trust.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
