package paper

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"srlproc/internal/bench"
)

// resultCSV renders the CSV form of one experiment's result document.
// Both execution modes route through here — the in-process runner first
// marshals its typed result to the document, a server run receives the
// document over HTTP — so the CSV artifact is identical by construction
// no matter where the simulation ran, and every run re-proves the
// document round-trips (the same property the persistent store and the
// cluster protocol rely on).
func resultCSV(id bench.ExperimentID, doc []byte) ([]byte, error) {
	var cw interface{ WriteCSV(io.Writer) error }
	switch id {
	case bench.Fig2, bench.Fig6, bench.Fig8, bench.Fig9, bench.Fig10:
		r := new(bench.FigureResult)
		if err := json.Unmarshal(doc, r); err != nil {
			return nil, fmt.Errorf("paper: decode %s: %w", id, err)
		}
		cw = r
	case bench.Fig7:
		r := new(bench.Figure7Result)
		if err := json.Unmarshal(doc, r); err != nil {
			return nil, fmt.Errorf("paper: decode %s: %w", id, err)
		}
		cw = r
	case bench.Table3:
		r := new(bench.Table3Result)
		if err := json.Unmarshal(doc, r); err != nil {
			return nil, fmt.Errorf("paper: decode %s: %w", id, err)
		}
		cw = r
	case bench.Energy:
		r := new(bench.EnergyResult)
		if err := json.Unmarshal(doc, r); err != nil {
			return nil, fmt.Errorf("paper: decode %s: %w", id, err)
		}
		cw = r
	case bench.Latency:
		r := new(bench.LatencyResult)
		if err := json.Unmarshal(doc, r); err != nil {
			return nil, fmt.Errorf("paper: decode %s: %w", id, err)
		}
		cw = r
	case bench.Ordering:
		r := new(bench.OrderingResult)
		if err := json.Unmarshal(doc, r); err != nil {
			return nil, fmt.Errorf("paper: decode %s: %w", id, err)
		}
		cw = r
	default:
		return nil, fmt.Errorf("paper: no CSV decoder for experiment %s", id)
	}
	var buf bytes.Buffer
	if err := cw.WriteCSV(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
