package paper

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The -check stage: repeats of a deterministic simulation must agree to
// the byte, and headline metrics must land inside checked-in tolerance
// bands. Both checks read only produced artifacts, so the stage can run
// on a resumed or server-produced directory alike.

// MetricBand asserts one headline metric from one experiment's CSV.
type MetricBand struct {
	// Experiment names the CSV to read ("fig6", "table3", ...).
	Experiment string `json:"experiment"`
	// Match filters rows by key-column equality, e.g.
	// {"suite": "SFP2K"} or {"design": "srl", "suite": "WEB"}.
	// Empty means every row.
	Match map[string]string `json:"match,omitempty"`
	// Column is the numeric column under test.
	Column string `json:"column"`
	// Min and Max bound the value (inclusive) for every matched row.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Note says what the band pins, for the check report.
	Note string `json:"note,omitempty"`
}

// Expectations holds tolerance bands per profile: quick-profile numbers
// differ from full-profile numbers, so each profile pins its own.
type Expectations struct {
	Profiles map[string][]MetricBand `json:"profiles"`
}

// LoadExpectations reads scripts/paper/expectations.json.
func LoadExpectations(path string) (*Expectations, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("paper: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var e Expectations
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("paper: %s: %w", path, err)
	}
	return &e, nil
}

// CheckResult is one line of the check report.
type CheckResult struct {
	Name string
	OK   bool
	// Skip marks a band whose experiment is not in this run's plan (an
	// -only run deliberately restricts it); skipped bands never fail.
	Skip bool
	Info string
}

// Check runs both check families over a completed run directory, writes
// analysis/check.md, and returns an error if anything failed. exp may be
// nil to run only the repeat byte-comparison.
func Check(dir string, units []Unit, exp *Expectations, profile string) ([]CheckResult, error) {
	runs, err := groupPlan(units)
	if err != nil {
		return nil, err
	}
	var results []CheckResult

	// Family 1: repeats must be byte-identical. The simulator is seeded
	// and deterministic; any divergence means nondeterminism crept in.
	for _, er := range runs {
		base, err := os.ReadFile(filepath.Join(dir, csvDir, er.Repeats[0].Key()+".json"))
		if err != nil {
			return nil, err
		}
		ok, info := true, fmt.Sprintf("%d repeat(s) byte-identical, sha %s", len(er.Repeats), sha256Hex(base)[:12])
		for _, u := range er.Repeats[1:] {
			doc, err := os.ReadFile(filepath.Join(dir, csvDir, u.Key()+".json"))
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(base, doc) {
				ok = false
				info = fmt.Sprintf("repeat %d diverges from repeat 1 (sha %s vs %s)",
					u.Repeat, sha256Hex(doc)[:12], sha256Hex(base)[:12])
				break
			}
		}
		results = append(results, CheckResult{Name: "repeats/" + er.ID.String(), OK: ok, Info: info})
	}

	// Family 2: headline metrics inside their tolerance bands.
	if exp != nil {
		bands, ok := exp.Profiles[profile]
		if !ok {
			results = append(results, CheckResult{
				Name: "expectations/" + profile, OK: false,
				Info: fmt.Sprintf("expectations file has no %q profile (has: %s)", profile, strings.Join(profileNames(exp), ", ")),
			})
		}
		for _, band := range bands {
			res, err := checkBand(dir, runs, band)
			if err != nil {
				return nil, err
			}
			results = append(results, res)
		}
	}

	if err := writeCheckReport(dir, results); err != nil {
		return nil, err
	}
	for _, r := range results {
		if !r.OK {
			return results, fmt.Errorf("paper: check failed: %s: %s", r.Name, r.Info)
		}
	}
	return results, nil
}

func profileNames(e *Expectations) []string {
	var names []string
	for name := range e.Profiles {
		names = append(names, name)
	}
	// Deterministic report text.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return names
}

// checkBand evaluates one tolerance band against repeat 1's CSV.
func checkBand(dir string, runs []*experimentRun, band MetricBand) (CheckResult, error) {
	name := "band/" + band.Experiment + "/" + band.Column
	if len(band.Match) > 0 {
		name += "[" + matchString(band.Match) + "]"
	}
	var er *experimentRun
	for _, r := range runs {
		if r.ID.String() == band.Experiment {
			er = r
			break
		}
	}
	if er == nil {
		// An -only run legitimately restricts the plan; bands for the
		// omitted experiments are skipped, not failed.
		return CheckResult{Name: name, OK: true, Skip: true,
			Info: fmt.Sprintf("skipped: experiment %q not in this run's plan", band.Experiment)}, nil
	}
	header, rows, err := readCSV(filepath.Join(dir, csvDir, er.Repeats[0].Key()+".csv"))
	if err != nil {
		return CheckResult{}, err
	}
	col := -1
	for i, h := range header {
		if h == band.Column {
			col = i
			break
		}
	}
	if col < 0 {
		return CheckResult{Name: name, OK: false,
			Info: fmt.Sprintf("no column %q in %v", band.Column, header)}, nil
	}
	matched := 0
	for _, row := range rows {
		if !rowMatches(header, row, band.Match) {
			continue
		}
		matched++
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			return CheckResult{}, fmt.Errorf("paper: %s: %w", band.Experiment, err)
		}
		if v < band.Min || v > band.Max {
			return CheckResult{Name: name, OK: false,
				Info: fmt.Sprintf("row %s: %s = %s outside [%s, %s]%s",
					rowKey(header, row), band.Column, fnum(v), fnum(band.Min), fnum(band.Max), noteSuffix(band))}, nil
		}
	}
	if matched == 0 {
		return CheckResult{Name: name, OK: false,
			Info: fmt.Sprintf("no rows matched %s", matchString(band.Match))}, nil
	}
	return CheckResult{Name: name, OK: true,
		Info: fmt.Sprintf("%d row(s) inside [%s, %s]%s", matched, fnum(band.Min), fnum(band.Max), noteSuffix(band))}, nil
}

func noteSuffix(band MetricBand) string {
	if band.Note == "" {
		return ""
	}
	return " — " + band.Note
}

func matchString(m map[string]string) string {
	var parts []string
	for k, v := range m {
		parts = append(parts, k+"="+v)
	}
	for i := 0; i < len(parts); i++ {
		for j := i + 1; j < len(parts); j++ {
			if parts[j] < parts[i] {
				parts[i], parts[j] = parts[j], parts[i]
			}
		}
	}
	return strings.Join(parts, ",")
}

func rowMatches(header, row []string, match map[string]string) bool {
	for k, want := range match {
		got, found := "", false
		for i, h := range header {
			if h == k {
				got, found = row[i], true
				break
			}
		}
		if !found || got != want {
			return false
		}
	}
	return true
}

// writeCheckReport writes analysis/check.md: one PASS/FAIL line per check.
func writeCheckReport(dir string, results []CheckResult) error {
	var b strings.Builder
	b.WriteString("# Check report\n\n")
	pass, skip := 0, 0
	for _, r := range results {
		switch {
		case r.Skip:
			skip++
		case r.OK:
			pass++
		}
	}
	if skip > 0 {
		fmt.Fprintf(&b, "%d/%d checks passed, %d skipped.\n\n", pass, len(results)-skip, skip)
	} else {
		fmt.Fprintf(&b, "%d/%d checks passed.\n\n", pass, len(results))
	}
	for _, r := range results {
		verdict := "PASS"
		switch {
		case r.Skip:
			verdict = "SKIP"
		case !r.OK:
			verdict = "**FAIL**"
		}
		fmt.Fprintf(&b, "- %s `%s` — %s\n", verdict, r.Name, r.Info)
	}
	if err := os.MkdirAll(filepath.Join(dir, analysisDir), 0o755); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, analysisDir, "check.md"), []byte(b.String()))
}

func sha256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
