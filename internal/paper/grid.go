// Package paper is the reproducible paper-artifact pipeline: it executes a
// declarative experiment grid (scripts/paper/experiments.json) through
// bench.RunExperiment — or against a running srlserved via /v1/sweep —
// into a paper_runs/<stamp>/ directory of validated CSVs, grouped summary
// statistics, Markdown and LaTeX tables, SVG plots and a report.md index,
// plus a manifest recording exactly what produced them.
//
// The pipeline is the reproduction's deliverable ("here is the paper,
// regenerated in one command") and doubles as a regression oracle: every
// CSV is validated against the experiment's declared shape
// (bench.Shape), repeats are byte-compared (the simulator is
// deterministic), and headline metrics are asserted against checked-in
// tolerance bands (scripts/paper/expectations.json).
package paper

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"srlproc/internal/bench"
)

// Knobs are the per-experiment simulation overrides a grid entry (or a
// profile) can set — the same knobs cmd/experiments exposes as flags.
// Zero values mean "inherit"; NoSkip and NoCache use pointers so a profile
// can explicitly switch them off again.
type Knobs struct {
	// Uops overrides measured micro-ops per point (cmd flag -uops).
	Uops uint64 `json:"uops,omitempty"`
	// Warmup overrides warmup micro-ops per point (-warmup).
	Warmup uint64 `json:"warmup,omitempty"`
	// Seed overrides the workload seed (-seed).
	Seed uint64 `json:"seed,omitempty"`
	// NoSkip disables event-driven cycle skipping (-noskip). Results are
	// bit-identical either way; this only measures the fast path.
	NoSkip *bool `json:"noskip,omitempty"`
	// NoCache disables result memoization for the experiment, forcing a
	// fresh simulation of every point (-nocache).
	NoCache *bool `json:"nocache,omitempty"`
}

// merge applies the non-zero fields of over on top of k.
func (k Knobs) merge(over Knobs) Knobs {
	if over.Uops != 0 {
		k.Uops = over.Uops
	}
	if over.Warmup != 0 {
		k.Warmup = over.Warmup
	}
	if over.Seed != 0 {
		k.Seed = over.Seed
	}
	if over.NoSkip != nil {
		k.NoSkip = over.NoSkip
	}
	if over.NoCache != nil {
		k.NoCache = over.NoCache
	}
	return k
}

// apply folds the knobs into options.
func (k Knobs) apply(o bench.Options) bench.Options {
	if k.Uops != 0 {
		o.RunUops = k.Uops
	}
	if k.Warmup != 0 {
		o.WarmupUops = k.Warmup
	}
	if k.Seed != 0 {
		o.Seed = k.Seed
	}
	if k.NoSkip != nil {
		o.NoEventSkip = *k.NoSkip
	}
	if k.NoCache != nil {
		o.NoCache = *k.NoCache
	}
	return o
}

// GridExperiment is one experiment entry of the grid.
type GridExperiment struct {
	// ID names the experiment; it resolves through bench.ParseExperimentID,
	// so aliases like "figure2" work.
	ID string `json:"id"`
	// Repeats overrides the grid-level repeat count for this experiment.
	Repeats int `json:"repeats,omitempty"`
	// Overrides are experiment-local knob overrides, applied after the
	// grid's common knobs and the active profile's.
	Overrides Knobs `json:"overrides,omitempty"`
}

// Grid is the declarative experiment grid scripts/paper/experiments.json
// describes: which experiments to run, how many independent repeats, and
// the knob layers (common → profile → per-experiment) that build each
// run's bench.Options.
type Grid struct {
	// Repeats is the default number of independent repeats per experiment
	// (at least 1). The simulator is deterministic, so repeats must agree
	// byte-for-byte — that agreement is exactly what `-check` asserts.
	Repeats int `json:"repeats"`
	// Common knobs apply to every experiment before profile overrides.
	Common Knobs `json:"common,omitempty"`
	// Profiles are named knob sets selected with -profile; "quick" is the
	// CI smoke scale. The implicit "full" profile applies no overrides.
	Profiles map[string]Knobs `json:"profiles,omitempty"`
	// Experiments lists the grid entries in run (and report) order.
	Experiments []GridExperiment `json:"experiments"`
}

// FullProfile is the implicit profile running the grid at its common
// scale, with no profile overrides.
const FullProfile = "full"

// Unit is one schedulable cell of the grid: an experiment, a repeat index
// (1-based) and the fully-resolved options it runs under.
type Unit struct {
	ID      bench.ExperimentID
	Repeat  int
	Repeats int
	Options bench.Options
}

// Key is the unit's file-naming key, e.g. "fig6_r01".
func (u Unit) Key() string { return fmt.Sprintf("%s_r%02d", u.ID, u.Repeat) }

// LoadGrid reads and validates a grid file, returning the grid and the
// raw bytes that hash into the run manifest's config fingerprint.
func LoadGrid(path string) (*Grid, []byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("paper: read grid: %w", err)
	}
	g, err := ParseGrid(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("paper: %s: %w", path, err)
	}
	return g, raw, nil
}

// ParseGrid parses and validates grid bytes.
func ParseGrid(raw []byte) (*Grid, error) {
	var g Grid
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("parse grid: %w", err)
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

func (g *Grid) validate() error {
	if g.Repeats < 1 {
		return fmt.Errorf("grid: repeats must be >= 1 (got %d)", g.Repeats)
	}
	if len(g.Experiments) == 0 {
		return fmt.Errorf("grid: no experiments")
	}
	seen := make(map[bench.ExperimentID]string)
	for _, e := range g.Experiments {
		id, err := bench.ParseExperimentID(e.ID)
		if err != nil {
			return fmt.Errorf("grid: %w", err)
		}
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("grid: duplicate experiment %q (also listed as %q)", e.ID, prev)
		}
		seen[id] = e.ID
		if e.Repeats < 0 {
			return fmt.Errorf("grid: %s: negative repeats", e.ID)
		}
	}
	if _, ok := g.Profiles[FullProfile]; ok {
		return fmt.Errorf("grid: profile %q is implicit and cannot be redefined", FullProfile)
	}
	return nil
}

// ProfileNames lists the grid's selectable profiles: the implicit full
// profile plus the declared ones, sorted.
func (g *Grid) ProfileNames() []string {
	names := []string{FullProfile}
	for name := range g.Profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Plan resolves the grid into its unit list for one profile: every
// experiment × repeat with fully-merged options, in grid order. only, when
// non-empty, restricts the plan to the listed experiments (which must all
// be in the grid); repeats, when positive, overrides every repeat count.
func (g *Grid) Plan(profile string, only []bench.ExperimentID, repeats int) ([]Unit, error) {
	prof, ok := g.Profiles[profile]
	if !ok && profile != FullProfile {
		return nil, fmt.Errorf("paper: unknown profile %q (have: %s)", profile, strings.Join(g.ProfileNames(), " "))
	}
	want := make(map[bench.ExperimentID]bool, len(only))
	for _, id := range only {
		want[id] = true
	}
	var units []Unit
	for _, e := range g.Experiments {
		id, err := bench.ParseExperimentID(e.ID)
		if err != nil {
			return nil, err
		}
		if len(only) > 0 && !want[id] {
			continue
		}
		delete(want, id)
		n := g.Repeats
		if e.Repeats > 0 {
			n = e.Repeats
		}
		if repeats > 0 {
			n = repeats
		}
		knobs := g.Common.merge(prof).merge(e.Overrides)
		o := knobs.apply(bench.DefaultOptions())
		for rep := 1; rep <= n; rep++ {
			units = append(units, Unit{ID: id, Repeat: rep, Repeats: n, Options: o})
		}
	}
	for id := range want {
		return nil, fmt.Errorf("paper: experiment %s is not in the grid", id)
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("paper: empty plan")
	}
	return units, nil
}

// ConfigHash fingerprints a (grid bytes, profile) pair. It keys the
// resumable per-experiment state: a run directory produced under one hash
// refuses to resume under another, so editing the grid mid-run restarts
// cleanly instead of mixing schemas.
func ConfigHash(gridBytes []byte, profile string) string {
	h := sha256.New()
	h.Write(gridBytes)
	h.Write([]byte{0})
	h.Write([]byte(profile))
	return hex.EncodeToString(h.Sum(nil))[:16]
}
