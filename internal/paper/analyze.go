package paper

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"srlproc/internal/bench"
)

// Analyze runs the analysis stage over a completed (or resumed) run
// directory: it re-validates every CSV against its experiment's shape,
// computes grouped summary statistics across repeats, renders the
// Markdown and LaTeX tables and the SVG figure plots, and writes the
// report.md index. Everything it writes is deterministic in the CSVs, so
// two runs over byte-identical results produce byte-identical analyses.
type AnalyzeConfig struct {
	Grid    *Grid
	Profile string
	Only    []bench.ExperimentID
	Repeats int
	// Dir is the run directory (paper_runs/<stamp>).
	Dir string
}

// experimentRun groups one experiment's repeats for analysis.
type experimentRun struct {
	ID      bench.ExperimentID
	Shape   bench.ExperimentShape
	Repeats []Unit
}

// groupPlan folds the unit plan by experiment, preserving grid order.
func groupPlan(units []Unit) ([]*experimentRun, error) {
	var runs []*experimentRun
	byID := map[bench.ExperimentID]*experimentRun{}
	for _, u := range units {
		er := byID[u.ID]
		if er == nil {
			shape, err := bench.Shape(u.ID, u.Options)
			if err != nil {
				return nil, err
			}
			er = &experimentRun{ID: u.ID, Shape: shape}
			byID[u.ID] = er
			runs = append(runs, er)
		}
		er.Repeats = append(er.Repeats, u)
	}
	return runs, nil
}

// Analyze executes the analysis stage; see AnalyzeConfig.
func Analyze(cfg AnalyzeConfig) error {
	units, err := cfg.Grid.Plan(cfg.Profile, cfg.Only, cfg.Repeats)
	if err != nil {
		return err
	}
	runs, err := groupPlan(units)
	if err != nil {
		return err
	}
	anaDir := filepath.Join(cfg.Dir, analysisDir)
	for _, d := range []string{anaDir, filepath.Join(anaDir, "tables"), filepath.Join(anaDir, "plots")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return fmt.Errorf("paper: %w", err)
		}
	}

	// Stage 1: validation. Every CSV must match its declared shape before
	// anything downstream consumes it.
	for _, er := range runs {
		for _, u := range er.Repeats {
			if err := ValidateCSV(filepath.Join(cfg.Dir, csvDir, u.Key()+".csv"), er.Shape); err != nil {
				return err
			}
		}
	}

	if err := writeRunSummary(cfg.Dir, runs); err != nil {
		return err
	}
	if err := writeGroupedSummary(cfg.Dir, runs); err != nil {
		return err
	}
	if err := writeTables(cfg.Dir, runs); err != nil {
		return err
	}
	if err := writePlots(cfg.Dir, runs); err != nil {
		return err
	}
	return writeReport(cfg, runs)
}

// writeRunSummary emits summary_runs.csv: one row per produced CSV with
// its size and the result document's digest (the repeat-identity key).
func writeRunSummary(dir string, runs []*experimentRun) error {
	var b strings.Builder
	b.WriteString("experiment,repeat,file,rows,csv_bytes,doc_sha256\n")
	for _, er := range runs {
		for _, u := range er.Repeats {
			csvPath := filepath.Join(dir, csvDir, u.Key()+".csv")
			docPath := filepath.Join(dir, csvDir, u.Key()+".json")
			st, err := os.Stat(csvPath)
			if err != nil {
				return err
			}
			doc, err := os.ReadFile(docPath)
			if err != nil {
				return err
			}
			fmt.Fprintf(&b, "%s,%d,%s,%d,%d,%s\n",
				er.ID, u.Repeat, csvDir+"/"+u.Key()+".csv", er.Shape.CSVRows, st.Size(), sha256Hex(doc))
		}
	}
	return writeFileAtomic(filepath.Join(dir, analysisDir, "summary_runs.csv"), []byte(b.String()))
}

// writeGroupedSummary emits summary_grouped.csv: mean/std/min/max of every
// numeric cell across repeats. The simulator is deterministic, so std is
// expected to be exactly zero — a non-zero std here is itself a finding.
func writeGroupedSummary(dir string, runs []*experimentRun) error {
	var b strings.Builder
	b.WriteString("experiment,row,column,repeats,mean,std,min,max\n")
	for _, er := range runs {
		type cellKey struct{ row, col int }
		var header []string
		var rowKeys []string
		samples := map[cellKey][]float64{}
		for _, u := range er.Repeats {
			h, rows, err := readCSV(filepath.Join(dir, csvDir, u.Key()+".csv"))
			if err != nil {
				return err
			}
			if header == nil {
				header = h
				for _, row := range rows {
					rowKeys = append(rowKeys, rowKey(h, row))
				}
			}
			for ri, row := range rows {
				for ci, cell := range row {
					if keyColumns[header[ci]] {
						continue
					}
					v, err := strconv.ParseFloat(cell, 64)
					if err != nil {
						return fmt.Errorf("paper: %s: %w", u.Key(), err)
					}
					k := cellKey{ri, ci}
					samples[k] = append(samples[k], v)
				}
			}
		}
		for ri, key := range rowKeys {
			for ci, col := range header {
				vals, ok := samples[cellKey{ri, ci}]
				if !ok {
					continue
				}
				mean, std, lo, hi := summarize(vals)
				fmt.Fprintf(&b, "%s,%s,%s,%d,%s,%s,%s,%s\n",
					er.ID, key, col, len(vals), fnum(mean), fnum(std), fnum(lo), fnum(hi))
			}
		}
	}
	return writeFileAtomic(filepath.Join(dir, analysisDir, "summary_grouped.csv"), []byte(b.String()))
}

// rowKey joins a row's identity columns ("srl|SFP2K"); rows without key
// columns key by their first cell.
func rowKey(header []string, row []string) string {
	var parts []string
	for i, col := range header {
		if keyColumns[col] {
			parts = append(parts, row[i])
		}
	}
	if len(parts) == 0 {
		return row[0]
	}
	return strings.Join(parts, "|")
}

func summarize(vals []float64) (mean, std, lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		mean += v
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(vals)))
	return mean, std, lo, hi
}

// fnum formats a summary number deterministically and compactly.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeTables renders Tables 1–3 as Markdown and LaTeX. Tables 1 and 2
// are configuration echoes from bench; Table 3 comes from the run's own
// measured CSV when the grid includes it.
func writeTables(dir string, runs []*experimentRun) error {
	emit := func(name, title string, headers []string, rows [][]string) error {
		md := MarkdownTable(title, headers, rows)
		if err := writeFileAtomic(filepath.Join(dir, analysisDir, "tables", name+".md"), []byte(md)); err != nil {
			return err
		}
		tex := LaTeXTable(title, headers, rows)
		return writeFileAtomic(filepath.Join(dir, analysisDir, "tables", name+".tex"), []byte(tex))
	}
	for name, ct := range map[string]bench.ConfigTable{"table1": bench.Table1(), "table2": bench.Table2()} {
		if err := emit(name, ct.Title, ct.Headers, ct.Rows); err != nil {
			return err
		}
	}
	for _, er := range runs {
		if er.ID != bench.Table3 {
			continue
		}
		header, rows, err := readCSV(filepath.Join(dir, csvDir, er.Repeats[0].Key()+".csv"))
		if err != nil {
			return err
		}
		if err := emit("table3", "Table 3: SRL statistics", header, rows); err != nil {
			return err
		}
	}
	return nil
}

// plotTitle names each experiment's figure.
func plotTitle(id bench.ExperimentID, doc []byte) string {
	switch id {
	case bench.Fig7:
		return "Figure 7: SRL occupancy distribution (percent of occupied time)"
	case bench.Energy:
		return "Energy attribution: secondary load/store structures (nJ / 1k uops)"
	case bench.Latency:
		return "Latency tolerance (IPC vs memory latency)"
	case bench.Ordering:
		return "Ordering + far-memory scenario pack (IPC)"
	}
	// Figure documents carry their own title.
	var t struct {
		Title string `json:"title"`
	}
	if json.Unmarshal(doc, &t) == nil && t.Title != "" {
		return t.Title
	}
	return id.Description()
}

// writePlots renders the figure SVGs from the first repeat's CSV (repeats
// are byte-identical; `-check` enforces it).
func writePlots(dir string, runs []*experimentRun) error {
	for _, er := range runs {
		key := er.Repeats[0].Key()
		header, rows, err := readCSV(filepath.Join(dir, csvDir, key+".csv"))
		if err != nil {
			return err
		}
		doc, err := os.ReadFile(filepath.Join(dir, csvDir, key+".json"))
		if err != nil {
			return err
		}
		svg, err := plotExperiment(er.ID, plotTitle(er.ID, doc), header, rows)
		if err != nil {
			return err
		}
		if svg == nil {
			continue // no plot form (table3)
		}
		if err := writeFileAtomic(filepath.Join(dir, analysisDir, "plots", er.ID.String()+".svg"), svg); err != nil {
			return err
		}
	}
	return nil
}

// plotExperiment picks the chart form for one experiment's CSV.
func plotExperiment(id bench.ExperimentID, title string, header []string, rows [][]string) ([]byte, error) {
	parse := func(cell string) (float64, error) { return strconv.ParseFloat(cell, 64) }
	switch id {
	case bench.Fig2, bench.Fig6, bench.Fig8, bench.Fig9, bench.Fig10:
		// suite rows × series columns → grouped bars.
		var cats []string
		series := make([]Series, len(header)-1)
		for i, h := range header[1:] {
			series[i].Label = h
		}
		for _, row := range rows {
			cats = append(cats, row[0])
			for i, cell := range row[1:] {
				v, err := parse(cell)
				if err != nil {
					return nil, err
				}
				series[i].Values = append(series[i].Values, v)
			}
		}
		return GroupedBarSVG(title, "% speedup over baseline", cats, series)
	case bench.Fig7:
		// suite rows × ">N" threshold columns → one line per suite.
		xs := make([]string, len(header)-1)
		for i, h := range header[1:] {
			xs[i] = ">" + strings.TrimPrefix(h, "gt_")
		}
		var series []Series
		for _, row := range rows {
			s := Series{Label: row[0]}
			for _, cell := range row[1:] {
				v, err := parse(cell)
				if err != nil {
					return nil, err
				}
				s.Values = append(s.Values, v)
			}
			series = append(series, s)
		}
		return LineSVG(title, "% of SRL-occupied time above threshold", xs, series)
	case bench.Energy:
		// (design, suite) rows → suites as categories, designs as bars.
		return pivotChart(title, "nJ / 1k uops", header, rows, "design", "suite", "nj_per_1k_uops", GroupedBarSVG)
	case bench.Latency:
		// (suite, design, latency) rows → latency on x, one line per design.
		return pivotChart(title, "IPC", header, rows, "design", "mem_latency", "ipc", LineSVG)
	case bench.Ordering:
		// (suite, design, scenario) rows → scenarios as categories, one bar
		// group per design.
		return pivotChart(title, "IPC", header, rows, "design", "scenario", "ipc", GroupedBarSVG)
	case bench.Table3:
		return nil, nil // Table 3 renders as a table, not a chart
	}
	return nil, fmt.Errorf("paper: no plot form for %s", id)
}

// pivotChart pivots long-form rows (seriesCol, xCol, valueCol) into chart
// series, preserving first-seen order for both axes.
func pivotChart(title, yLabel string, header []string, rows [][]string,
	seriesCol, xCol, valueCol string,
	render func(string, string, []string, []Series) ([]byte, error)) ([]byte, error) {
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for _, c := range []string{seriesCol, xCol, valueCol} {
		if _, ok := col[c]; !ok {
			return nil, fmt.Errorf("paper: pivot: no column %q in %v", c, header)
		}
	}
	var xs []string
	xIdx := map[string]int{}
	var series []Series
	sIdx := map[string]int{}
	for _, row := range rows {
		x := row[col[xCol]]
		if _, ok := xIdx[x]; !ok {
			xIdx[x] = len(xs)
			xs = append(xs, x)
		}
		name := row[col[seriesCol]]
		if _, ok := sIdx[name]; !ok {
			sIdx[name] = len(series)
			series = append(series, Series{Label: name})
		}
	}
	for i := range series {
		series[i].Values = make([]float64, len(xs))
	}
	for _, row := range rows {
		v, err := strconv.ParseFloat(row[col[valueCol]], 64)
		if err != nil {
			return nil, err
		}
		series[sIdx[row[col[seriesCol]]]].Values[xIdx[row[col[xCol]]]] = v
	}
	return render(title, yLabel, xs, series)
}

// writeReport writes the analysis/report.md index. It is deterministic in
// the run's results: wall times and timestamps stay in the manifest.
func writeReport(cfg AnalyzeConfig, runs []*experimentRun) error {
	var b strings.Builder
	b.WriteString("# Paper reproduction report\n\n")
	b.WriteString("Scalable Load and Store Processing in Latency Tolerant Processors — regenerated artifacts.\n\n")
	fmt.Fprintf(&b, "- profile: `%s`\n- experiments: %d\n", cfg.Profile, len(runs))
	b.WriteString("- provenance: [`manifest.json`](../manifest.json) (code stamp, git revision, wall times)\n")
	b.WriteString("- summaries: [`summary_runs.csv`](summary_runs.csv), [`summary_grouped.csv`](summary_grouped.csv)\n")
	b.WriteString("- checks: `check.md` appears here when the run used `-check`\n\n")

	b.WriteString("## Configuration tables\n\n")
	for _, name := range []string{"table1", "table2"} {
		fmt.Fprintf(&b, "- [%s](tables/%s.md) ([LaTeX](tables/%s.tex))\n", name, name, name)
	}
	b.WriteString("\n## Experiments\n\n")
	for _, er := range runs {
		fmt.Fprintf(&b, "### %s\n\n%s\n\n", er.ID, er.ID.Description())
		fmt.Fprintf(&b, "- points: %d · repeats: %d · CSV: ", er.Shape.Points, len(er.Repeats))
		for i, u := range er.Repeats {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "[`%s.csv`](../csv/%s.csv)", u.Key(), u.Key())
		}
		b.WriteString("\n")
		if er.ID == bench.Table3 {
			b.WriteString("- tables: [table3.md](tables/table3.md) ([LaTeX](tables/table3.tex))\n\n")
			md, err := os.ReadFile(filepath.Join(cfg.Dir, analysisDir, "tables", "table3.md"))
			if err != nil {
				return err
			}
			b.Write(md)
			b.WriteString("\n")
		} else {
			fmt.Fprintf(&b, "\n![%s](plots/%s.svg)\n\n", er.ID, er.ID)
		}
	}
	return writeFileAtomic(filepath.Join(cfg.Dir, analysisDir, "report.md"), []byte(b.String()))
}
