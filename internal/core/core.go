package core

import (
	"context"
	"fmt"

	"srlproc/internal/bpred"
	"srlproc/internal/cachesim"
	"srlproc/internal/isa"
	"srlproc/internal/lsq"
	"srlproc/internal/memdep"
	"srlproc/internal/obs"
	"srlproc/internal/stats"
	"srlproc/internal/trace"
	"srlproc/internal/xrand"
)

// Core is one simulated latency tolerant processor.
type Core struct {
	cfg  Config
	gen  trace.Source
	prof trace.Profile

	cycle uint64

	// In-flight window and replay position.
	win       *window
	replayPos int // index into win of the next uop to (re)allocate; == win.len() means fetch new

	// Checkpoints, oldest first.
	ckpts      []*ckptState
	nextCkptID int

	// Rename state: last writer of each architectural register
	// (epoch-stamped; a stale reference means the writer committed and the
	// value is architectural).
	lastWriter [isa.NumArchRegs]uopRef

	// Resource occupancy.
	schedInt, schedFP, schedMem int
	regsInt, regsFP             int
	loadsInWindow               int
	storesInWindow              int

	// Scheduling.
	ready readyHeap
	cmpl  cmplHeap
	// sdb is the slice data buffer. It is kept ordered by sequence number
	// (oldest poisoned uop first): slices drain and re-insert in program
	// order, and a consumer can never block the queue ahead of its
	// producer, which a plain arrival-order FIFO would allow after
	// re-slicing against a second miss.
	sdb       readyHeap
	sdbCount  int       // live entries (inSDB) in the sdb heap
	pendDrain []*dynUop // poisoned uops waiting for SDB space

	// Memory-ordering enforcement (ordering.go, DESIGN.md §12): the
	// monotonic ordering version bumped at every sync allocation, the ring
	// of per-version outstanding-load counters (Louvre-style), and the
	// program-ordered list of unperformed fences/load-acquires.
	ordVer       uint64
	verBase      uint64
	verHead      int
	verCounts    []uint32
	verTotal     int
	pendingSyncs []uopRef

	// SRL-stalled loads, plus the retry loop's reusable snapshot buffer
	// (the loop must not iterate srlStalled itself: releasing a load can
	// restart the machine, which rewrites the list in place).
	srlStalled      []*dynUop
	srlRetryScratch []*dynUop

	// In-flight stores with unknown (poisoned) addresses, for the memory
	// dependence predictor to screen loads against.
	unknownStores []*dynUop

	// unknownAddrStores counts resident store-queue entries whose address
	// has not been computed yet (gates the filtered design's search skip).
	unknownAddrStores int

	// Store identifier assignment (the paper's store IDs = SRL indices).
	storeCounter uint64

	// Front-end redirect: no allocation before this cycle.
	fetchResume uint64

	// Uops deferred to the next cycle (MSHR-full retries).
	deferred []*dynUop

	// Steady-state allocation pools and scratch. uopFree recycles dynUops
	// popped from the window at commit (epoch-bumped, so stale references
	// self-invalidate); nodeFree recycles waiter-list nodes; ckptFree
	// recycles checkpoint records; parkedScratch is issue()'s per-cycle
	// holding pen for port-starved entries, reused across cycles.
	uopFree       []*dynUop
	nodeFree      *waiterNode
	ckptFree      []*ckptState
	parkedScratch []readyEntry

	// pendingFetch holds a generated-but-not-yet-allocated uop so that a
	// resource stall never drops an instruction from the stream.
	pendingFetch *dynUop

	// Youngest architecturally committed sequence number.
	lastCommittedSeq uint64

	// Structures.
	l1stq *lsq.StoreQueue
	l2stq *lsq.StoreQueue // hierarchical only
	mtb   *lsq.MTB        // hierarchical only
	srl   *lsq.SRL        // SRL design only
	lcf   *lsq.LCF
	fc    *lsq.FC
	ldbuf *lsq.LoadBuffer
	order *lsq.OrderTracker

	mem *cachesim.Hierarchy
	bp  bpred.Predictor
	mdp *memdep.StoreSets

	// Branch confidence estimator (for checkpoint placement).
	conf []uint8

	// Outstanding memory misses (poisoned loads awaiting data).
	outstandingMisses int

	// redoActive is true from a miss return until the SRL drains empty —
	// the "store redo mode" of Section 4.3.
	redoActive bool

	// tempUpdateStall holds §6.5-variant store processing until this cycle
	// (a temporary update's writeback or conflict).
	tempUpdateStall uint64

	// forceShortCkpt implements CPR's forward-progress rule: after a
	// restart, a new checkpoint is created shortly after the restart point
	// so at least part of the replay always commits.
	forceShortCkpt bool

	// Snoop injection.
	snoopRNG    *xrand.RNG
	recentLoads []uint64
	rlPos       int

	// pendingSnoopFire marks that the cycle-skip fast-forward already drew
	// this cycle's snoop coin (and it came up heads): injectSnoops must
	// fire without drawing again. See skip.go's applySkip.
	pendingSnoopFire bool

	// skip is the event-driven cycle-skipping engine (see skip.go): it
	// probes one real cycle, verifies the machine was quiescent, and
	// fast-forwards to the next interesting cycle with every
	// cycle-denominated statistic extrapolated across the gap.
	skip skipState

	// snoopSink, when set, receives the line address of every globally
	// visible store this core performs (a multicore system routes these to
	// the other cores' coherence ports).
	snoopSink func(addr uint64)
	finalized bool

	// Statistics. metrics is the typed hot-path counter set (array
	// increments, no allocation); counters keeps only genuinely free-form
	// extras whose names are dynamic.
	res              Results
	srlOcc           *stats.OccupancyTracker
	metrics          obs.MetricSet
	counters         *stats.Counters
	committed        uint64 // total committed uops
	committedAtReset uint64
	measuring        bool
	statsResetAt     uint64
	actBase          activity

	// Observability (nil unless cfg.Obs enables it): the cycle-window
	// sampler and typed event trace. Disabled runs pay one nil test per
	// cycle.
	obsrv *obsState

	// Differential checker (nil unless cfg.Check): the lockstep reference
	// memory system plus structure-invariant sweeps. See check.go.
	chk *checker
}

// New builds a core for the given configuration and workload suite. The
// config's memory-ordering workload knobs are mirrored into the suite
// profile before the generator is built — zero knobs leave the profile
// untouched, so pre-existing streams replay bit-identically.
func New(cfg Config, suite trace.Suite) (*Core, error) {
	prof := trace.ProfileFor(suite)
	prof.FencePer1K = cfg.FencePer1K
	prof.AcquireFrac = cfg.AcquireFrac
	prof.ReleaseFrac = cfg.ReleaseFrac
	return NewFromSource(cfg, trace.NewGenerator(prof, cfg.Seed), prof)
}

// NewFromSource builds a core over an arbitrary micro-op source — e.g. a
// recorded trace file replayed with trace.NewReader — instead of the
// built-in synthetic generators. The profile supplies only the ambient
// workload metadata the core itself consumes (the external snoop rate and
// the suite label on results); pass a zero Profile for none.
func NewFromSource(cfg Config, src trace.Source, prof trace.Profile) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		cfg:      cfg,
		gen:      src,
		prof:     prof,
		win:      newWindow(cfg.WindowCap),
		order:    lsq.NewOrderTracker(),
		mem:      cachesim.NewHierarchy(cfg.Mem),
		bp:       bpred.NewHybrid(),
		mdp:      memdep.New(cfg.StoreSetsSize),
		conf:     make([]uint8, 4096),
		snoopRNG: xrand.New(cfg.Seed*7919 + uint64(prof.Suite)),
		srlOcc:   stats.NewOccupancyTracker(),
		counters: stats.NewCounters(),
		obsrv:    newObsState(cfg.Obs),
	}
	c.res.Suite = prof.Suite
	c.res.Design = cfg.Design
	c.recentLoads = make([]uint64, 64)
	// Pre-size the scheduler heaps from the structures that bound their
	// live population (the scheduler windows for ready, the slice data
	// buffer and completion burst for the others): after at most one
	// amortized growth lap to the run's true working size, the cycle loop
	// never allocates. Sizing from WindowCap would be correct too but
	// wastes ~0.7 MB per core across a sweep's many short-lived cores.
	c.ready.Grow(cfg.SchedInt + cfg.SchedFP + cfg.SchedMem + cfg.IssueWidth)
	c.sdb.Grow(256)
	c.cmpl.Grow(256)
	c.uopFree = make([]*dynUop, 0, 64)
	c.ckptFree = make([]*ckptState, 0, cfg.Checkpoints+1)
	c.parkedScratch = make([]readyEntry, 0, cfg.IssueWidth+2)
	// Store identifiers start at 1: a load allocated before any store then
	// carries nearestStoreID 0, which every magnitude age comparison reads
	// as "older than all stores". Starting at 0 made that value underflow
	// to ^uint64(0) — the load looked younger than everything, provoking
	// spurious store-check violations and, with indexed forwarding,
	// accepting a younger store as a producer. It also disambiguates
	// dynUop.storeID's 0-means-unassigned sentinel.
	c.storeCounter = 1

	switch cfg.Design {
	case DesignBaseline, DesignLargeSTQ:
		c.l1stq = lsq.NewStoreQueue("STQ", cfg.STQSize, cfg.L1STQLatency)
		c.ldbuf = lsq.NewLoadBuffer(cfg.LQSize, cfg.LQSize, lsq.OverflowViolate, 0)
	case DesignFilteredSTQ:
		c.l1stq = lsq.NewStoreQueue("STQ", cfg.STQSize, cfg.L1STQLatency)
		c.mtb = lsq.NewMTB(cfg.MTBSize)
		c.ldbuf = lsq.NewLoadBuffer(cfg.LQSize, cfg.LQSize, lsq.OverflowViolate, 0)
	case DesignHierarchical:
		c.l1stq = lsq.NewStoreQueue("L1STQ", cfg.L1STQSize, cfg.L1STQLatency)
		c.l2stq = lsq.NewStoreQueue("L2STQ", cfg.L2STQSize, cfg.L2STQLatency)
		c.mtb = lsq.NewMTB(cfg.MTBSize)
		c.ldbuf = lsq.NewLoadBuffer(cfg.LQSize, cfg.LQSize, lsq.OverflowViolate, 0)
	case DesignSRL:
		c.l1stq = lsq.NewStoreQueue("L1STQ", cfg.L1STQSize, cfg.L1STQLatency)
		c.srl = lsq.NewSRL(cfg.SRLSize)
		if cfg.UseLCF {
			c.lcf = lsq.NewLCF(cfg.LCFSize, cfg.LCFHash, cfg.LCFCounterBits)
		}
		if cfg.UseFC {
			c.fc = lsq.NewFC(cfg.FCSize, cfg.FCAssoc)
		}
		c.ldbuf = lsq.NewLoadBuffer(cfg.LQSize, cfg.LoadBufAssoc, cfg.LoadBufPolicy, cfg.LoadBufVictim)
	default:
		return nil, fmt.Errorf("core: unknown design %v", cfg.Design)
	}

	if c.fc != nil {
		c.fc.FaultInvertAge = cfg.FaultInvertFwdAge
	}
	if cfg.Check {
		c.chk = newChecker(c)
	}

	// The first checkpoint.
	c.newCheckpoint(1)
	return c, nil
}

// srlMode reports whether secondary (shadow-of-miss) store processing is
// active: a long-latency miss is outstanding or the SRL still holds stores.
func (c *Core) srlMode() bool {
	if c.cfg.Design != DesignSRL {
		return false
	}
	return c.outstandingMisses > 0 || !c.srl.Empty()
}

func (c *Core) newCheckpoint(startSeq uint64) *ckptState {
	var ck *ckptState
	if n := len(c.ckptFree); n > 0 {
		ck = c.ckptFree[n-1]
		c.ckptFree = c.ckptFree[:n-1]
	} else {
		ck = &ckptState{}
	}
	*ck = ckptState{
		id:           c.nextCkptID,
		startSeq:     startSeq,
		startStoreID: c.storeCounter,
		renameSnap:   c.lastWriter,
	}
	c.nextCkptID++
	c.ckpts = append(c.ckpts, ck)
	c.obsEvent(obs.EvCheckpointCreate, uint64(ck.id))
	return ck
}

// freeCkpt returns a checkpoint record to the pool. Identity is the
// monotonic id (never reused), so stale id lookups via findCkpt stay safe.
func (c *Core) freeCkpt(ck *ckptState) {
	c.ckptFree = append(c.ckptFree, ck)
}

// newDynUop hands out a dynamic uop, recycling committed ones. A recycled
// object keeps its (already bumped) epoch so references captured in its
// previous life read as stale.
func (c *Core) newDynUop(u isa.Uop) *dynUop {
	if n := len(c.uopFree); n > 0 {
		d := c.uopFree[n-1]
		c.uopFree = c.uopFree[:n-1]
		*d = dynUop{u: u, ckptID: -1, stqSlot: -1, epoch: d.epoch}
		return d
	}
	return &dynUop{u: u, ckptID: -1, stqSlot: -1}
}

// freeUop recycles a committed uop popped from the window. The epoch bump
// invalidates every outstanding reference (heap entries, producer refs,
// rename snapshots); the fields themselves are wiped only at reuse, so a
// waiter node that still points here sees committed=true and its original
// sequence number — the same inert entry it would have seen before pooling.
func (c *Core) freeUop(d *dynUop) {
	if d.waiters != nil {
		c.freeWaiterChain(d.waiters)
		d.waiters = nil
	}
	d.epoch++
	c.uopFree = append(c.uopFree, d)
}

// newWaiterNode draws a waiter-list node from the pool.
func (c *Core) newWaiterNode() *waiterNode {
	if n := c.nodeFree; n != nil {
		c.nodeFree = n.next
		return n
	}
	return &waiterNode{}
}

// freeWaiterChain returns a whole waiter list to the pool.
func (c *Core) freeWaiterChain(n *waiterNode) {
	for n != nil {
		next := n.next
		n.d = nil
		n.next = c.nodeFree
		c.nodeFree = n
		n = next
	}
}

func (c *Core) curCkpt() *ckptState { return c.ckpts[len(c.ckpts)-1] }

// oldestCkptID returns the id of the oldest live checkpoint.
func (c *Core) oldestCkptID() int { return c.ckpts[0].id }

// findCkpt returns the live checkpoint with the given id, or nil.
func (c *Core) findCkpt(id int) *ckptState {
	for _, ck := range c.ckpts {
		if ck.id == id {
			return ck
		}
	}
	return nil
}

// Run simulates until cfg.WarmupUops+cfg.RunUops micro-ops have committed
// and returns the measured-region results.
func (c *Core) Run() *Results {
	res, _ := c.RunContext(context.Background())
	return res
}

// ctxPollMask sets how often RunContext polls its context: every
// ctxPollMask+1 simulated cycles (a few microseconds of wall time), so
// cancellation latency is far below any point's runtime while the check
// stays off the per-cycle hot path.
const ctxPollMask = 0x1fff

// progressGuardIters bounds loop iterations between committed-uop advances.
// It is denominated in iterations, not cycles: with EventSkip one iteration
// can cover thousands of simulated cycles, so a cycle-based bound would
// false-panic on legitimately long miss shadows when skipping is off and
// degenerate to uselessness when it is on. The largest legitimate
// commit-to-commit gap observed across the figure sweeps is a few million
// stepped cycles; 40M iterations is an order of magnitude of headroom while
// still catching a genuinely wedged machine in seconds of wall time.
const progressGuardIters = 40_000_000

// RunContext simulates like Run but with cooperative cancellation: the
// context is polled every few thousand loop iterations and, once it is
// done, the run stops and ctx.Err() is returned (wrapped). The core is left
// mid-flight and must not be reused after a cancelled run.
//
// When cfg.EventSkip is set, each real step may be followed by a
// fast-forward over a proven-quiescent gap (see skip.go). The ctx poll
// cadence is iteration-based, so cancellation latency stays wall-clock
// bounded no matter how many simulated cycles a single iteration covers.
func (c *Core) RunContext(ctx context.Context) (*Results, error) {
	var iter, sinceCommit uint64
	lastCommitted := c.committed
	for !c.Done() {
		if iter&ctxPollMask == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("core: %s/%s run aborted at cycle %d: %w",
				c.res.Suite, c.res.Design, c.cycle, ctx.Err())
		}
		c.StepCycle()
		if c.cfg.EventSkip {
			c.maybeSkip()
		}
		iter++
		if c.committed != lastCommitted {
			lastCommitted = c.committed
			sinceCommit = 0
		} else if sinceCommit++; sinceCommit > progressGuardIters {
			panic("core: no forward progress: " + c.debugState())
		}
	}
	return c.Finalize(), nil
}

// StepCycle advances the machine by exactly one cycle, handling the
// warmup-to-measurement transition. It lets an external driver (a multicore
// system) run several cores in lockstep.
func (c *Core) StepCycle() {
	if !c.measuring && c.committed >= c.cfg.WarmupUops {
		c.resetStats()
		c.measuring = true
	}
	c.step()
}

// Done reports whether the measured region is complete.
func (c *Core) Done() bool {
	return c.measuring && c.committed-c.committedAtReset >= c.cfg.RunUops
}

// MeasuredUops returns micro-ops committed inside the measured region so far.
func (c *Core) MeasuredUops() uint64 {
	if !c.measuring {
		return 0
	}
	return c.committed - c.committedAtReset
}

// Finalize closes the measured region and returns the results (idempotent).
func (c *Core) Finalize() *Results {
	if !c.finalized {
		c.finalize()
		c.finalized = true
	}
	return &c.res
}

// SetSnoopSink registers a callback receiving the line address of every
// globally visible store this core performs. Used by package multicore to
// route real coherence traffic between cores.
func (c *Core) SetSnoopSink(sink func(addr uint64)) { c.snoopSink = sink }

// ExternalSnoop delivers another processor's store to this core's coherence
// port: the line is invalidated and the (secondary) load buffer is searched;
// a hit is a multiprocessor ordering violation and execution restarts from
// the hit load's checkpoint (Section 3).
func (c *Core) ExternalSnoop(addr uint64) {
	c.metrics.Inc(obs.MetricSnoopsExternal)
	c.mem.Snoop(addr)
	if v, found := c.ldbuf.SnoopCheck(addr); found {
		c.res.SnoopViolations++
		c.obsEvent(obs.EvSnoopViolation, addr)
		c.restart(v.Ckpt, c.cfg.MispredictPenalty)
	}
}

func (c *Core) resetStats() {
	saved := c.res
	c.res = Results{Suite: saved.Suite, Design: saved.Design}
	c.srlOcc = stats.NewOccupancyTracker()
	c.srlOcc.Set(c.cycle, uint64(c.srlLen()))
	c.metrics = obs.MetricSet{}
	c.counters = stats.NewCounters()
	c.statsResetAt = c.cycle
	c.committedAtReset = c.committed
	// Structure activity counters are cumulative; snapshot baselines.
	c.actBase = c.snapshotActivity()
	if c.obsrv != nil {
		c.obsRebaseline()
	}
}

func (c *Core) srlLen() int {
	if c.srl == nil {
		return 0
	}
	return c.srl.Len()
}

// step advances the machine by one cycle.
func (c *Core) step() {
	c.cycle++
	if c.obsrv != nil && c.cycle >= c.obsrv.nextSample {
		c.obsSample()
	}
	if c.outstandingMisses > 0 {
		c.metrics.Inc(obs.MetricCyclesMissOutstanding)
	}
	if debugInvariants && c.cycle%5000 == 0 {
		actual := 0
		for i := 0; i < c.win.len(); i++ {
			d := c.win.at(i)
			if d.allocated && d.missReturn > 0 && !d.done {
				actual++
			}
		}
		if actual != c.outstandingMisses {
			panic(fmt.Sprintf("outstandingMisses leak: counter=%d actual=%d cycle=%d", c.outstandingMisses, actual, c.cycle))
		}
	}
	if c.srl != nil && !c.srl.Empty() {
		c.metrics.Inc(obs.MetricCyclesSRLNonEmpty)
		if c.srl.Head().DataReady {
			c.metrics.Inc(obs.MetricCyclesSRLHeadReady)
		}
	}
	if debugInvariants && c.win.len() > 0 && c.win.at(0).u.Seq < c.ckpts[0].startSeq {
		panic("core: window head older than oldest checkpoint: " + c.debugState())
	}
	c.processCompletions()
	c.commitCheckpoints()
	c.injectSnoops()
	c.drainStores()
	c.movePendingDrains()
	c.reinsertSlice()
	c.retrySRLStalled()
	c.issue()
	c.allocate()
}

func (c *Core) processCompletions() {
	for c.cmpl.Len() > 0 {
		cyc, _ := c.cmpl.Min()
		if cyc > c.cycle {
			break
		}
		_, ev := c.cmpl.PopMin()
		if ev.d.epoch != ev.epoch {
			continue // squashed
		}
		c.complete(ev.d)
	}
}

func (c *Core) finalize() {
	if c.redoActive {
		// The measured region ended mid-episode; close it so the event
		// trace's start/end pairing holds for consumers.
		c.redoActive = false
		c.obsEvent(obs.EvRedoEnd, 0)
	}
	if c.chk != nil {
		c.chkFinish()
	}
	c.res.Cycles = c.cycle - c.statsResetAt
	c.res.Uops = c.committed - c.committedAtReset
	c.srlOcc.Finish(c.cycle)
	c.res.SRLOccupancy = c.srlOcc
	c.res.Metrics = c.metrics
	c.res.Counters = c.counters
	c.obsFinalize()
	act := c.snapshotActivity()
	c.res.CamSearches = act.camSearches - c.actBase.camSearches
	c.res.CamEntryOps = act.camEntryOps - c.actBase.camEntryOps
	c.res.LCFProbes = act.lcfProbes - c.actBase.lcfProbes
	c.res.LCFNonZero = act.lcfNonZero - c.actBase.lcfNonZero
	c.res.LCFOverflows = act.lcfOverflows - c.actBase.lcfOverflows
	c.res.FCLookups = act.fcLookups - c.actBase.fcLookups
	c.res.FCHits = act.fcHits - c.actBase.fcHits
	c.res.LBLookups = act.lbLookups - c.actBase.lbLookups
	c.res.LBEntryCmps = act.lbEntryCmps - c.actBase.lbEntryCmps
	c.res.LBOverflows = act.lbOverflows - c.actBase.lbOverflows
	c.res.MTBProbes = act.mtbProbes - c.actBase.mtbProbes
	c.res.MTBMaybes = act.mtbMaybes - c.actBase.mtbMaybes
	c.res.SRLReads = act.srlReads - c.actBase.srlReads
	c.res.SRLWrites = act.srlWrites - c.actBase.srlWrites
	c.res.L1Misses = act.l1Misses - c.actBase.l1Misses
	c.res.L2Misses = act.l2Misses - c.actBase.l2Misses
	c.res.MemAccesses = act.memAccesses - c.actBase.memAccesses
	c.res.Writebacks = act.writebacks - c.actBase.writebacks
	c.res.FarAccesses = act.farAccesses - c.actBase.farAccesses
	c.res.FarDegradedAccesses = act.farDegraded - c.actBase.farDegraded
}

// activity is a snapshot of cumulative structure counters.
type activity struct {
	camSearches, camEntryOps            uint64
	lcfProbes, lcfNonZero, lcfOverflows uint64
	fcLookups, fcHits                   uint64
	lbLookups, lbEntryCmps, lbOverflows uint64
	mtbProbes, mtbMaybes                uint64
	srlReads, srlWrites                 uint64
	l1Misses, l2Misses, memAccesses     uint64
	writebacks                          uint64
	farAccesses, farDegraded            uint64
}

func (c *Core) snapshotActivity() activity {
	var a activity
	a.camSearches = c.l1stq.Searches()
	a.camEntryOps = c.l1stq.CamEntryOps()
	if c.l2stq != nil {
		a.camSearches += c.l2stq.Searches()
		a.camEntryOps += c.l2stq.CamEntryOps()
	}
	if c.lcf != nil {
		a.lcfProbes = c.lcf.Probes()
		a.lcfNonZero = c.lcf.NonZeroHits()
		a.lcfOverflows = c.lcf.Overflows()
	}
	if c.fc != nil {
		a.fcLookups = c.fc.Lookups()
		a.fcHits = c.fc.Hits()
	}
	a.lbLookups = c.ldbuf.Lookups()
	a.lbEntryCmps = c.ldbuf.EntryCompares()
	a.lbOverflows = c.ldbuf.Overflows()
	if c.mtb != nil {
		a.mtbProbes = c.mtb.Probes()
		a.mtbMaybes = c.mtb.Maybes()
	}
	if c.srl != nil {
		a.srlReads = c.srl.Reads()
		a.srlWrites = c.srl.Writes()
	}
	a.l1Misses = c.mem.L1.Misses()
	a.l2Misses = c.mem.L2.Misses()
	a.memAccesses = c.mem.MemAccesses()
	a.writebacks = c.mem.L1.Writebacks() + c.mem.L2.Writebacks()
	a.farAccesses = c.mem.FarAccesses()
	a.farDegraded = c.mem.FarDegradedAccesses()
	return a
}

// debugState renders a diagnostic snapshot for forward-progress failures.
func (c *Core) debugState() string {
	s := fmt.Sprintf("%s/%s cycle=%d committed=%d win=%d replayPos=%d sdb=%d pend=%d srlStalled=%d ready=%d cmpl=%d ckpts=%d fetchResume=%d\n",
		c.res.Suite, c.res.Design, c.cycle, c.committed, c.win.len(), c.replayPos,
		c.sdbCount, len(c.pendDrain), len(c.srlStalled), c.ready.Len(), c.cmpl.Len(), len(c.ckpts), c.fetchResume)
	s += fmt.Sprintf("sched(i/f/m)=%d/%d/%d regs(i/f)=%d/%d loadsInWin=%d l1stq=%d srlLen=%d outMiss=%d\n",
		c.schedInt, c.schedFP, c.schedMem, c.regsInt, c.regsFP, c.loadsInWindow, c.l1stq.Len(), c.srlLen(), c.outstandingMisses)
	if len(c.ckpts) > 0 {
		ck := c.ckpts[0]
		s += fmt.Sprintf("ckpt0: id=%d start=%d pending=%d uops=%d closed=%v\n", ck.id, ck.startSeq, ck.pending, ck.uops, ck.closed)
	}
	if c.srl != nil && !c.srl.Empty() {
		h := c.srl.Head()
		hu := c.uopBySeq(h.Seq)
		s += fmt.Sprintf("srl head: seq=%d idx=%d addrKnown=%v dataReady=%v lcfCnt=%v uop=%v\n",
			h.Seq, h.SRLIndex, h.AddrKnown, h.DataReady, h.LCFCounted, hu != nil)
		if hu != nil {
			s += fmt.Sprintf("  head uop: alloc=%v done=%v pois=%v inSDB=%v inSched=%v srlRes=%v srlIdx=%d pendSrc=%d\n",
				hu.allocated, hu.done, hu.poisoned, hu.inSDB, hu.inSched, hu.srlReserved, hu.srlIdx, hu.pendingSrc)
		}
		s += fmt.Sprintf("order: allLoadsOlderDone(head)=%v outstanding=%d\n",
			c.order.AllLoadsOlderThanDone(h.Seq), c.order.Outstanding())
	}
	for _, ld := range c.srlStalled {
		s += fmt.Sprintf("  stalled load seq=%d nearest=%d srlHeadIdx=%d\n", ld.u.Seq, ld.nearestStoreID, c.srl.HeadIndex())
		break
	}
	if c.sdb.Len() > 0 {
		_, re := c.sdb.Min()
		d := re.d
		s += fmt.Sprintf("  sdb[0]: %s\n", d.u.String())
		// Walk the producer chain of the SDB head.
		cur := d
		for hop := 0; hop < 12 && cur != nil; hop++ {
			var next *dynUop
			for j, r := range cur.prod {
				if p := r.live(); p != nil && !p.done && p.allocated {
					s += fmt.Sprintf("   hop%d prod%d: %s done=%v pois=%v inSDB=%v inSched=%v issued=%v stall=%v pendSrc=%d missRet=%d\n",
						hop, j, p.u.String(), p.done, p.poisoned, p.inSDB, p.inSched, p.issued, p.srlStalled, p.pendingSrc, p.missReturn)
					next = p
				}
			}
			if p := cur.memDep.live(); next == nil && p != nil && !p.done {
				s += fmt.Sprintf("   hop%d memDep: %s done=%v pois=%v inSDB=%v inSched=%v issued=%v stall=%v pendSrc=%d missRet=%d\n",
					hop, p.u.String(), p.done, p.poisoned, p.inSDB, p.inSched, p.issued, p.srlStalled, p.pendingSrc, p.missReturn)
				next = p
			}
			cur = next
		}
	}
	// First few incomplete uops in the window.
	n := 0
	for i := 0; i < c.win.len() && n < 6; i++ {
		d := c.win.at(i)
		if d.done || !d.allocated {
			continue
		}
		s += fmt.Sprintf("  stuck uop %s alloc=%v inSched=%v issued=%v pois=%v inSDB=%v pendSrc=%d stall=%v missRet=%d\n",
			d.u.String(), d.allocated, d.inSched, d.issued, d.poisoned, d.inSDB, d.pendingSrc, d.srlStalled, d.missReturn)
		n++
	}
	return s
}
