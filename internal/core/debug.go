package core

import "fmt"

// debugInvariants enables expensive internal consistency checks and
// tracing; tests turn it on.
var debugInvariants = false

// debugTrace prints internal tracing when invariants are enabled.
func debugTrace(format string, args ...interface{}) {
	fmt.Printf(format+"\n", args...)
}
