package core

import (
	"testing"

	"srlproc/internal/trace"
)

// shortCfg shrinks a config for fast unit testing.
func shortCfg(d StoreDesign) Config {
	cfg := DefaultConfig(d)
	cfg.WarmupUops = 5_000
	cfg.RunUops = 20_000
	return cfg
}

func TestSmokeAllDesigns(t *testing.T) {
	for _, d := range []StoreDesign{DesignBaseline, DesignLargeSTQ, DesignHierarchical, DesignSRL} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			cfg := shortCfg(d)
			if d == DesignLargeSTQ {
				cfg.STQSize = 1024
			}
			c, err := New(cfg, trace.SINT2K)
			if err != nil {
				t.Fatal(err)
			}
			res := c.Run()
			if res.Uops < cfg.RunUops {
				t.Fatalf("committed %d uops, want >= %d", res.Uops, cfg.RunUops)
			}
			if res.Cycles == 0 {
				t.Fatal("no cycles elapsed")
			}
			ipc := res.IPC()
			if ipc <= 0.05 || ipc > float64(cfg.IssueWidth) {
				t.Fatalf("implausible IPC %.3f", ipc)
			}
			t.Logf("%s: IPC=%.2f loads=%d stores=%d missDep=%.1f%% restarts=%d",
				d, ipc, res.Loads, res.Stores, res.PctMissDependentUops(), res.Restarts)
		})
	}
}

func TestSmokeAllSuitesSRL(t *testing.T) {
	for _, s := range trace.AllSuites() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			c, err := New(shortCfg(DesignSRL), s)
			if err != nil {
				t.Fatal(err)
			}
			res := c.Run()
			if res.Uops < 20_000 {
				t.Fatalf("committed %d uops", res.Uops)
			}
			t.Logf("%s: IPC=%.2f redone=%.1f%% missDepStores=%.1f%% srlOcc=%.1f%% stalls/10k=%.1f",
				s, res.IPC(), res.PctRedoneStores(), res.PctMissDependentStores(),
				res.PctTimeSRLOccupied(), res.SRLStallsPer10K())
		})
	}
}

func TestDeterminism(t *testing.T) {
	for _, skip := range []bool{true, false} {
		skip := skip
		name := "skip"
		if !skip {
			name = "step"
		}
		t.Run(name, func(t *testing.T) {
			run := func() *Results {
				cfg := shortCfg(DesignSRL)
				cfg.EventSkip = skip
				c, err := New(cfg, trace.SFP2K)
				if err != nil {
					t.Fatal(err)
				}
				return c.Run()
			}
			a, b := run(), run()
			if a.Cycles != b.Cycles || a.Uops != b.Uops || a.Restarts != b.Restarts {
				t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)",
					a.Cycles, a.Uops, a.Restarts, b.Cycles, b.Uops, b.Restarts)
			}
		})
	}
}
