package core

import (
	"fmt"
	"hash/fnv"

	"srlproc/internal/trace"
)

// Fingerprint returns a stable 64-bit hash of the complete configuration,
// covering every field including the nested memory-hierarchy config and the
// workload seed. Two configs with equal fingerprints describe the same
// simulation point (the simulator is deterministic in its config), which is
// what makes cross-experiment result memoization in internal/sweep sound.
//
// The hash is stable within a process and across runs of the same build; it
// is not a serialization format and makes no cross-version promises.
//
// EventSkip is normalized out before hashing: cycle skipping is proven
// bit-for-bit identical to plain stepping, so a skipped and a stepped run
// of the same point are the same result and must share memo/store entries.
func (c Config) Fingerprint() uint64 {
	c.EventSkip = false
	h := fnv.New64a()
	// %#v spells out every field name and value of the struct, recursing
	// into the nested cachesim.Config, so any config change perturbs the
	// hash. Config is a pure value type (no pointers, maps or slices), so
	// this rendering is deterministic.
	fmt.Fprintf(h, "%#v", c)
	return h.Sum64()
}

// PointFingerprint extends Config.Fingerprint with the workload suite,
// identifying one (config, suite) simulation point. The seed is part of the
// config and therefore already hashed.
func PointFingerprint(c Config, suite trace.Suite) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%x|%d", c.Fingerprint(), suite)
	return h.Sum64()
}
