package core

import (
	"srlproc/internal/isa"
	"srlproc/internal/lsq"
	"srlproc/internal/obs"
)

// waiter registration: consumers subscribe to producers through pooled
// intrusive list nodes. The node pins the consumer's sequence number, not
// its pointer identity: a squashed-then-replayed consumer keeps its seq and
// must still be woken, while a recycled consumer object carries a new,
// strictly larger seq and the stale node is inert.
func (c *Core) addWaiter(producer, consumer *dynUop) {
	consumer.pendingSrc++
	n := c.newWaiterNode()
	n.d = consumer
	n.seq = consumer.u.Seq
	n.next = producer.waiters
	producer.waiters = n
}

// wakeWaiters notifies consumers that d's value (or poison) is available.
// List order does not affect behavior: woken consumers are pushed into the
// ready heap keyed by their distinct sequence numbers, and a min-heap pops
// distinct keys in sorted order regardless of push order.
func (c *Core) wakeWaiters(d *dynUop) {
	n := d.waiters
	d.waiters = nil
	for n != nil {
		next := n.next
		w := n.d
		if n.seq == w.u.Seq && w.allocated && !w.committed {
			if w.pendingSrc > 0 {
				w.pendingSrc--
			}
			if w.pendingSrc == 0 && w.inSched {
				pushReady(&c.ready, w)
			}
		}
		n.d = nil
		n.next = c.nodeFree
		c.nodeFree = n
		n = next
	}
}

// sdbCauseNames precomputes the per-class SDB-cause counter names so the
// drain path does not concatenate strings per poisoned uop.
var sdbCauseNames = func() [isa.NumClasses]string {
	var names [isa.NumClasses]string
	for cl := isa.Class(0); cl < isa.NumClasses; cl++ {
		names[cl] = "sdb_cause_poisoned_src_" + cl.String()
	}
	return names
}()

func sdbCauseName(cl isa.Class) string {
	if cl < isa.NumClasses {
		return sdbCauseNames[cl]
	}
	return "sdb_cause_poisoned_src_" + cl.String()
}

// --- resource helpers ---

// sliceReserve is the number of scheduler entries per window reserved for
// slice reinsertion: the SDB must always be able to re-acquire resources or
// the pipeline deadlocks (consumers of a stalled load can otherwise fill
// the scheduler while the load's own slice waits to re-enter).
const sliceReserve = 4

// schedAvail reports front-end allocation space (leaving the reserve).
func (c *Core) schedAvail(cl isa.Class) bool {
	switch {
	case cl.IsMem():
		return c.schedMem < c.cfg.SchedMem-sliceReserve
	case cl.IsFP():
		return c.schedFP < c.cfg.SchedFP-sliceReserve
	default:
		return c.schedInt < c.cfg.SchedInt-sliceReserve
	}
}

// schedAvailSlice reports reinsertion space (full window, including the
// reserve).
func (c *Core) schedAvailSlice(cl isa.Class) bool {
	switch {
	case cl.IsMem():
		return c.schedMem < c.cfg.SchedMem
	case cl.IsFP():
		return c.schedFP < c.cfg.SchedFP
	default:
		return c.schedInt < c.cfg.SchedInt
	}
}

func (c *Core) schedTake(cl isa.Class) {
	switch {
	case cl.IsMem():
		c.schedMem++
	case cl.IsFP():
		c.schedFP++
	default:
		c.schedInt++
	}
}

func (c *Core) schedFree(cl isa.Class) {
	switch {
	case cl.IsMem():
		c.schedMem--
	case cl.IsFP():
		c.schedFP--
	default:
		c.schedInt--
	}
}

// regAvail reports front-end allocation space, leaving a reserve for slice
// reinsertion (same rationale as the scheduler reserve: the SDB must always
// be able to re-acquire a destination register, or stalled loads holding
// registers can deadlock the redo).
func (c *Core) regAvail(d *dynUop) bool {
	if d.u.Dst == isa.NoReg {
		return true
	}
	if d.u.Class.IsFP() {
		return c.regsFP < c.cfg.FPRegs-sliceReserve
	}
	return c.regsInt < c.cfg.IntRegs-sliceReserve
}

// regAvailSlice reports reinsertion space (full register file).
func (c *Core) regAvailSlice(d *dynUop) bool {
	if d.u.Dst == isa.NoReg {
		return true
	}
	if d.u.Class.IsFP() {
		return c.regsFP < c.cfg.FPRegs
	}
	return c.regsInt < c.cfg.IntRegs
}

func (c *Core) regTake(d *dynUop) {
	if d.u.Dst == isa.NoReg {
		return
	}
	if d.u.Class.IsFP() {
		c.regsFP++
	} else {
		c.regsInt++
	}
	d.holdsReg = true
}

func (c *Core) regFree(d *dynUop) {
	if !d.holdsReg {
		return
	}
	if d.u.Class.IsFP() {
		c.regsFP--
	} else {
		c.regsInt--
	}
	d.holdsReg = false
}

// --- slice (CFP) handling ---

// drainToSDB moves a poisoned uop out of the pipeline into the slice data
// buffer, releasing its scheduler entry and register — the Continual Flow
// Pipeline property that keeps cycle-critical resources small.
func (c *Core) drainToSDB(d *dynUop) {
	d.poisoned = true
	if d.inSched {
		d.inSched = false
		c.schedFree(d.u.Class)
	}
	c.regFree(d)
	if !d.everInSDB {
		d.everInSDB = true
		c.res.MissDependentUops++
		if d.isStore() {
			c.res.MissDependentStores++
		}
		m := d.memDep.live()
		switch {
		case d.missReturn > 0:
			c.metrics.Inc(obs.MetricSDBCauseMissRoot)
		case m != nil && m.poisoned && !m.done:
			c.metrics.Inc(obs.MetricSDBCauseMemDep)
		default:
			c.counters.Inc(sdbCauseName(d.u.Class))
		}
	}
	if c.sdbCount < c.cfg.SDBSize {
		d.inSDB = true
		c.sdbCount++
		pushReady(&c.sdb, d)
	} else {
		c.pendDrain = append(c.pendDrain, d)
	}
	// For stores with a known (clean) address, record the address in the
	// store queue entry so loads can disambiguate against it; otherwise the
	// store's address is unknown and the dependence predictor screens loads.
	if d.isStore() {
		ap := d.prod[0].live()
		if (ap == nil || ap.done) && !d.addrKnown {
			if e := c.locateStoreEntry(d); e != nil {
				e.AddrKnown = true
				e.Addr = d.u.Addr
				e.Size = d.u.Size
				d.addrKnown = true
				c.noteStoreAddrKnown()
				if c.cfg.Design == DesignFilteredSTQ {
					c.mtb.Add(d.u.Addr)
				}
				if c.chk != nil {
					// Address visible to disambiguation, data still poisoned.
					c.chkStoreResolved(d, false)
				}
			}
		}
		if !d.addrKnown && !d.inUnknownList {
			d.inUnknownList = true
			c.unknownStores = append(c.unknownStores, d)
		}
	}
	// Poison propagates to consumers.
	c.wakeWaiters(d)
}

func (c *Core) movePendingDrains() {
	i := 0
	for i < len(c.pendDrain) && c.sdbCount < c.cfg.SDBSize {
		d := c.pendDrain[i]
		i++
		if d.poisoned && !d.inSDB && d.allocated {
			d.inSDB = true
			c.sdbCount++
			pushReady(&c.sdb, d)
		}
	}
	if i > 0 {
		n := copy(c.pendDrain, c.pendDrain[i:])
		for j := n; j < len(c.pendDrain); j++ {
			c.pendDrain[j] = nil
		}
		c.pendDrain = c.pendDrain[:n]
	}
	if len(c.pendDrain) > 0 {
		c.res.StallSDB++
	}
}

// sliceHeadReady reports whether the SDB head can re-enter the pipeline.
func (c *Core) sliceHeadReady(d *dynUop) bool {
	if d.missReturn > 0 {
		return c.cycle >= d.missReturn
	}
	for i := range d.prod {
		if !d.srcAvailable(i) {
			return false
		}
	}
	if m := d.memDep.live(); m != nil && !m.done && !m.poisoned && m.allocated {
		return false
	}
	return true
}

// reinsertSlice drains the SDB head back into the pipeline when the miss
// data has returned (Section 2.1: slice re-acquires resources and executes,
// interleaved in program order with the redo of independent stores).
// sdbHead returns the oldest live SDB resident, discarding stale heap
// entries (squashed or already-removed uops).
func (c *Core) sdbHead() *dynUop {
	for c.sdb.Len() > 0 {
		_, re := c.sdb.Min()
		if re.epoch != re.d.epoch || !re.d.allocated || !re.d.inSDB || !re.d.poisoned {
			c.sdb.PopMin()
			continue
		}
		return re.d
	}
	return nil
}

func (c *Core) popSDB(d *dynUop) {
	c.sdb.PopMin()
	d.inSDB = false
	c.sdbCount--
}

func (c *Core) reinsertSlice() {
	budget := c.cfg.AllocWidth
	for budget > 0 {
		d := c.sdbHead()
		if d == nil {
			break
		}
		if !c.sliceHeadReady(d) {
			break
		}
		if d.missReturn > 0 {
			// The miss load itself: its data arrived from memory; it
			// completes directly (the register write of the returning
			// fill), consuming a register but no execution slot.
			if !c.regAvailSlice(d) {
				c.res.StallRegs++
				break
			}
			c.popSDB(d)
			budget--
			d.poisoned = false
			c.regTake(d)
			d.fwdStoreID = lsq.NoFwd
			c.outstandingMisses--
			d.missReturn = 0
			c.obsEvent(obs.EvMissReturn, d.u.Addr)
			c.onMissReturn()
			c.complete(d)
			continue
		}
		if d.anyPoisonedSrc() {
			// The oldest poisoned uop cannot itself have a poisoned-in-SDB
			// producer (the producer would be older and thus at the head),
			// so this only occurs transiently via the pending-drain list;
			// wait for the producer to enter the SDB.
			break
		}
		// Re-acquire scheduler and register resources and re-execute.
		if !c.schedAvailSlice(d.u.Class) {
			c.res.StallSched++
			break
		}
		if !c.regAvailSlice(d) {
			c.res.StallRegs++
			break
		}
		c.popSDB(d)
		budget--
		d.poisoned = false
		d.inSched = true
		c.schedTake(d.u.Class)
		c.regTake(d)
		d.pendingSrc = 0
		pushReady(&c.ready, d)
	}
}

// onMissReturn implements the "temporary updates are discarded when the
// miss returns" rule: the forwarding cache (or the data cache's temporary
// lines in the §6.5 variant) is flash-cleared as the redo begins.
func (c *Core) onMissReturn() {
	if c.cfg.Design != DesignSRL {
		return
	}
	// Discard temporary updates once per redo episode (the first returning
	// miss starts the redo; later returns of the same burst join it).
	if c.redoActive || c.srl.Empty() {
		return
	}
	c.redoActive = true
	c.obsEvent(obs.EvRedoStart, uint64(c.srlLen()))
	if c.fc != nil {
		c.fc.DiscardAll()
	} else {
		// Temporary updates discarded: the next access re-misses to L2 —
		// the extra redo-phase misses of §6.5.
		addrs := c.mem.L1.DiscardSpecTemp()
		c.res.SpecDiscards += uint64(c.mem.DiscardSpecInto(c.cycle, addrs))
	}
}

// --- completion ---

// complete finishes a uop's execution with real data.
func (c *Core) complete(d *dynUop) {
	if d.done || !d.allocated {
		return
	}
	d.done = true
	d.poisoned = false
	d.doneCycle = c.cycle
	c.regFree(d)
	if ck := c.findCkpt(d.ckptID); ck != nil {
		ck.pending--
	}

	restarted := false
	switch {
	case d.isLoad():
		c.order.LoadCompleted(d.u.Seq)
		c.verForget(d)
		c.noteRecentLoad(d.u.Addr)
		if d.ldbufInserted {
			// Already recorded at access time (long-latency miss); a second
			// insert would duplicate the entry.
			break
		}
		entry := lsq.LoadEntry{
			Seq: d.u.Seq, PC: d.u.PC, Addr: d.u.Addr, Size: d.u.Size,
			NearestStoreID: d.nearestStoreID, FwdStoreID: d.fwdStoreID,
			Ckpt: d.ckptID,
		}
		if !c.ldbuf.Insert(entry) {
			// Set overflow with the violate-on-overflow policy: take a
			// memory ordering violation (Section 3).
			c.res.OverflowViolations++
			c.obsEvent(obs.EvOverflowViolation, d.u.Addr)
			c.wakeWaiters(d)
			c.restart(d.ckptID, c.cfg.MispredictPenalty)
			return
		}
	case d.isStore():
		restarted = c.completeStore(d)
	case d.u.Class == isa.Branch:
		c.wakeWaiters(d)
		c.resolveBranch(d)
		return
	case d.u.Class == isa.Fence:
		if c.chk != nil {
			c.chkFencePerformed(d)
		}
	}
	if !restarted {
		c.wakeWaiters(d)
	}
}

// locateStoreEntry finds d's store queue entry (L1 or, in the hierarchical
// design, L2 after displacement).
func (c *Core) locateStoreEntry(d *dynUop) *lsq.StoreEntry {
	if d.inL2STQ && c.l2stq != nil {
		return c.l2stq.Locate(d.stqSlot, d.u.Seq)
	}
	return c.l1stq.Locate(d.stqSlot, d.u.Seq)
}

// completeStore captures a store's address and data, fills its SRL slot if
// one was reserved, and performs the load-buffer violation check of
// Sections 3 and 4.2 (cases v/vi). Returns true if a restart was triggered.
func (c *Core) completeStore(d *dynUop) bool {
	wasUnknown := !d.addrKnown
	d.addrKnown = true
	if c.chk != nil {
		// Address and data both available from here on.
		c.chkStoreResolved(d, true)
	}
	if wasUnknown {
		c.noteStoreAddrKnown()
		if c.cfg.Design == DesignFilteredSTQ {
			c.mtb.Add(d.u.Addr)
		}
	}
	if e := c.locateStoreEntry(d); e != nil {
		e.AddrKnown = true
		e.Addr = d.u.Addr
		e.Size = d.u.Size
		e.DataReady = true
		// A store displaced to the L2 STQ with an unknown address joins
		// the membership test buffer once the address resolves.
		if wasUnknown && d.inL2STQ && c.mtb != nil {
			c.mtb.Add(d.u.Addr)
		}
	} else if d.srlReserved && c.srl != nil {
		c.srl.Fill(d.srlIdx, d.u.Addr, d.u.Size)
		if c.lcf != nil {
			if se := c.srl.Get(d.srlIdx); se != nil {
				// The slot was reserved before the address was known, so a
				// saturated counter cannot refuse this insert the way
				// drainToSRL stalls allocation — it pins sticky instead.
				c.lcf.IncSticky(d.u.Addr, d.srlIdx)
				se.LCFCounted = true
				se.Ckpt = d.ckptID
			}
		}
		// The completing store also performs its temporary forwarding
		// update (it has left the L1 STQ; later independent loads source
		// its data from the FC or the data cache, Section 4.1). Stores can
		// fill their SRL slots out of program order, and after a redo-start
		// flash-clear the forwarding structure may be empty: a late older
		// store must not publish its value as the newest temporary update
		// when a younger already-filled SRL store overlaps it. (The FC's own
		// age guard covers the entry-still-present case; this covers
		// insertion after eviction or discard.)
		if !c.youngerSRLStoreOverlaps(d) {
			if c.fc != nil {
				c.fc.Update(d.u.Addr, d.u.Size, d.srlIdx, d.u.Seq, d.ckptID)
			} else if c.cfg.Design == DesignSRL && !c.cfg.UseFC {
				if se := c.srl.Get(d.srlIdx); se != nil {
					c.tempUpdateDataCache(se)
				}
			}
		}
	}
	if wasUnknown {
		c.removeUnknownStore(d)
	}
	// A store whose address was unknown while younger loads executed may
	// expose a memory dependence violation now.
	if v, found := c.ldbuf.StoreCheck(d.u.Addr, d.u.Size, d.storeID); found {
		c.res.MemDepViolations++
		c.obsEvent(obs.EvMemDepViolation, d.u.Addr)
		c.mdp.RecordViolation(v.LoadPC, d.u.PC)
		c.wakeWaiters(d)
		c.restart(v.Ckpt, c.cfg.MispredictPenalty)
		return true
	}
	return false
}

// youngerSRLStoreOverlaps reports whether an SRL-resident store younger
// than d has already filled its slot with an address overlapping d's
// write — the witness that d's late temporary update would be stale.
func (c *Core) youngerSRLStoreOverlaps(d *dynUop) bool {
	if c.srl == nil {
		return false
	}
	lo, hi := d.u.Addr, d.u.Addr+uint64(d.u.Size)
	found := false
	c.srl.ForEach(func(_ int, e *lsq.StoreEntry) {
		if !found && e.Seq > d.u.Seq && e.AddrKnown && e.DataReady &&
			e.Addr < hi && lo < e.Addr+uint64(e.Size) {
			found = true
		}
	})
	return found
}

func (c *Core) removeUnknownStore(d *dynUop) {
	d.inUnknownList = false
	out := c.unknownStores[:0]
	for _, s := range c.unknownStores {
		if s != d {
			out = append(out, s)
		}
	}
	c.unknownStores = out
}

// resolveBranch triggers misprediction recovery (the predictor itself was
// trained in program order at allocation).
func (c *Core) resolveBranch(d *dynUop) {
	if d.brResolved {
		return // replayed after recovery; the front end knows the outcome
	}
	d.brResolved = true
	if d.predTaken != d.u.Taken {
		c.res.BranchMispredicts++
		c.obsEvent(obs.EvBranchMispredict, d.u.PC)
		c.restart(d.ckptID, c.cfg.MispredictPenalty)
	}
}

// --- commit ---

func (c *Core) commitCheckpoints() {
	for len(c.ckpts) > 0 {
		ck := c.ckpts[0]
		if !ck.closed || ck.pending > 0 {
			return
		}
		// Bulk commit (CPR commits a checkpoint instantaneously once its
		// completion counter reaches zero).
		c.obsEvent(obs.EvCheckpointCommit, uint64(ck.id))
		endSeq := ck.startSeq + uint64(ck.uops) - 1
		c.lastCommittedSeq = endSeq
		for c.win.len() > 0 && c.win.at(0).u.Seq <= endSeq {
			d := c.win.popFront()
			d.committed = true
			if c.chk != nil {
				// In sequence order, so a store commits before younger loads.
				c.chkCommitUop(d)
			}
			c.committed++
			c.replayPos--
			if d.isLoad() {
				c.loadsInWindow--
				if c.measuring {
					c.res.Loads++
				}
			}
			if d.isStore() {
				c.storesInWindow--
				if c.measuring {
					c.res.Stores++
					if d.everRedone {
						c.res.RedoneStores++
					}
				}
			}
			if d.u.Class == isa.Fence && c.measuring {
				c.res.Fences++
			}
			c.freeUop(d)
		}
		c.ldbuf.CommitCkpt(ck.id)
		c.mem.L1.CommitSpec(ck.id)
		if c.chk != nil {
			c.chkSweep()
		}
		n := copy(c.ckpts, c.ckpts[1:])
		c.ckpts[n] = nil
		c.ckpts = c.ckpts[:n]
		c.freeCkpt(ck)
		if len(c.ckpts) == 0 {
			// Always keep a live checkpoint to allocate into.
			c.newCheckpoint(c.lastCommittedSeq + 1)
		}
	}
}

// --- issue ---

func (c *Core) issue() {
	// Re-arm uops deferred to this cycle (MSHR-full retries).
	for _, d := range c.deferred {
		if d.allocated && d.inSched {
			pushReady(&c.ready, d)
		}
	}
	c.deferred = c.deferred[:0]

	budget := c.cfg.IssueWidth
	loadP := c.cfg.LoadPorts
	storeP := c.cfg.StorePorts
	parked := c.parkedScratch[:0]
	for budget > 0 && c.ready.Len() > 0 {
		_, re := c.ready.PopMin()
		d := re.d
		if re.epoch != d.epoch || !d.inSched || d.pendingSrc > 0 {
			continue
		}
		if d.anyPoisonedSrc() {
			c.drainToSDB(d)
			budget--
			continue
		}
		switch d.u.Class {
		case isa.Load:
			if loadP == 0 {
				parked = append(parked, re)
				continue
			}
			loadP--
		case isa.Store:
			if storeP == 0 {
				parked = append(parked, re)
				continue
			}
			storeP--
		}
		budget--
		c.execute(d)
	}
	for _, re := range parked {
		// Re-insert with the captured epoch (not a fresh one): the entry
		// must stay invalid if the uop was squashed while parked.
		c.ready.Push(re.d.u.Seq, re)
	}
	c.parkedScratch = parked[:0]
}

// --- allocate / fetch ---

func (c *Core) allocate() {
	if c.cycle < c.fetchResume {
		return
	}
	budget := c.cfg.AllocWidth
	for budget > 0 {
		replay := c.replayPos < c.win.len()
		var d *dynUop
		if replay {
			d = c.win.at(c.replayPos)
		} else if c.pendingFetch != nil {
			d = c.pendingFetch
		} else {
			if c.win.full() {
				c.res.StallWindow++
				return
			}
			u := c.gen.Next()
			d = c.newDynUop(u)
			c.pendingFetch = d
		}

		// Checkpoint placement: interval boundary, stall-closed checkpoint,
		// or low-confidence branch.
		ck := c.curCkpt()
		needNew := ck.closed || ck.uops >= c.cfg.CkptInterval
		// A fence opens a fresh checkpoint: older stores then sit in
		// older, independently committable checkpoints, so the fence's
		// wait for their drain (fenceReady) can never deadlock against
		// its own checkpoint's completion counter.
		if !needNew && d.u.Class == isa.Fence && ck.uops > 0 {
			needNew = true
		}
		// Forward progress (Section 3): create a checkpoint soon after a
		// restart so the restarted region commits piecewise even if the
		// violation recurs.
		if c.forceShortCkpt && ck.uops >= 8 && len(c.ckpts) < c.cfg.Checkpoints {
			needNew = true
			c.forceShortCkpt = false
		}
		// Miss-free store pressure: close the checkpoint proactively so
		// resident stores become commit-eligible before a small store
		// queue fills (CPR adapts checkpoint boundaries to resource
		// pressure). The threshold is the in-window store population —
		// deliberately independent of the design's store queue size, so
		// every design sees the same checkpoint cadence and none gets a
		// cheaper-misprediction subsidy. During a miss the window must
		// keep growing instead; that is the behaviour under study.
		if !needNew && c.outstandingMisses == 0 && ck.uops >= 64 &&
			len(c.ckpts) < c.cfg.Checkpoints && c.storesInWindow >= 36 {
			needNew = true
		}
		// CPR places extra checkpoints at low-confidence branches so a
		// likely misprediction rolls back cheaply — but spends them
		// sparingly, since exhausting the checkpoint budget caps the
		// in-flight window.
		if !needNew && d.u.Class == isa.Branch && ck.uops >= 32 && !d.brResolved &&
			len(c.ckpts) < c.cfg.Checkpoints-1 {
			ci := (d.u.PC >> 2) & uint64(len(c.conf)-1)
			if c.conf[ci] < 2 {
				needNew = true
			}
		}
		if needNew {
			if len(c.ckpts) == c.cfg.Checkpoints {
				c.res.StallCkpt++
				return
			}
			ck.closed = true
			ck = c.newCheckpoint(d.u.Seq)
		}

		// Resource checks. A stall with no older checkpoint left to commit
		// would deadlock (the stalled resource frees only after commit, and
		// commit needs this checkpoint to close), so the checkpoint is
		// closed at the stall point in that case.
		if !c.schedAvail(d.u.Class) {
			c.res.StallSched++
			c.maybeCloseCkptOnStall()
			return
		}
		if !c.regAvail(d) {
			c.res.StallRegs++
			c.maybeCloseCkptOnStall()
			return
		}
		if d.isLoad() && c.loadsInWindow >= c.cfg.LQSize {
			c.res.StallLQ++
			c.maybeCloseCkptOnStall()
			return
		}
		if d.isStore() && !c.allocStoreEntry(d, ck.id) {
			if c.srlMode() {
				c.metrics.Inc(obs.MetricSTQStallSRLMode)
			} else if c.outstandingMisses > 0 {
				c.metrics.Inc(obs.MetricSTQStallMissMode)
			} else {
				c.metrics.Inc(obs.MetricSTQStallQuiet)
			}
			c.maybeCloseCkptOnStall()
			return
		}

		// Commit the allocation.
		if !replay {
			c.win.push(d)
			c.pendingFetch = nil
		}
		c.replayPos++
		budget--
		d.allocated = true
		d.ckptID = ck.id
		ck.pending++
		ck.uops++

		// Memory-ordering stamping (ordering.go): every uop carries the
		// version current at its allocation; sync operations bump it, so
		// ops older than a sync carry a version <= the sync's and younger
		// ops a strictly greater one.
		d.ordVer = c.ordVer
		if isSyncUop(&d.u) {
			c.ordVer++
		}

		// Dependences from the rename state. A stale lastWriter reference
		// means the producer committed (its value is architectural), so the
		// source needs no producer link — same as the register being clean.
		d.pendingSrc = 0
		d.prod[0], d.prod[1] = uopRef{}, uopRef{}
		for i, src := range [2]int8{d.u.Src1, d.u.Src2} {
			if src == isa.NoReg {
				continue
			}
			r := c.lastWriter[src]
			p := r.live()
			if p == nil {
				continue
			}
			d.prod[i] = r
			if !p.done && !p.poisoned {
				c.addWaiter(p, d)
			}
		}
		if d.u.Dst != isa.NoReg {
			c.lastWriter[d.u.Dst] = ref(d)
			c.regTake(d)
		}
		c.schedTake(d.u.Class)
		d.inSched = true

		switch d.u.Class {
		case isa.Store:
			c.storesInWindow++
		case isa.Load:
			d.nearestStoreID = c.storeCounter - 1
			d.fwdStoreID = lsq.NoFwd
			c.order.LoadAllocated(d.u.Seq)
			c.loadsInWindow++
			c.verAdd(d.ordVer)
			d.verCounted = true
			if d.u.Acq {
				c.notePendingSync(d)
			}
			if c.chk != nil {
				c.chkLoadAlloc(d)
			}
		case isa.Fence:
			c.notePendingSync(d)
			if c.chk != nil {
				c.chkFenceAlloc(d)
			}
		case isa.Branch:
			// Predict and train in program order at allocation (the
			// front end sees branches in order; training at out-of-order
			// resolution would scramble the global history). The
			// mispredict penalty is still paid at resolution.
			if !d.bpTrained {
				d.predTaken = c.bp.Predict(d.u.PC)
				c.bp.Update(d.u.PC, d.u.Taken)
				ci := (d.u.PC >> 2) & uint64(len(c.conf)-1)
				if d.predTaken == d.u.Taken {
					if c.conf[ci] < 15 {
						c.conf[ci]++
					}
				} else {
					c.conf[ci] = 0
				}
				d.bpTrained = true
			}
			if d.brResolved {
				d.predTaken = d.u.Taken
			}
		}

		if d.pendingSrc == 0 {
			pushReady(&c.ready, d)
		}
	}
}

// maybeCloseCkptOnStall closes the current checkpoint during a resource
// stall so its completed work can bulk-commit and release the stalled
// resource (CPR adapts checkpoint boundaries to resource pressure; without
// this, a store queue sized below checkpoint-span x store-fraction would
// stall even in miss-free execution).
func (c *Core) maybeCloseCkptOnStall() {
	ck := c.curCkpt()
	if ck.uops == 0 || ck.closed {
		return
	}
	// In miss-free execution commit is only waiting for the checkpoint to
	// close, so adapt. During a long-latency miss the oldest checkpoint
	// cannot commit anyway; closing here would only fragment the window
	// (the baseline's store-queue-bound stall in a miss shadow is exactly
	// the behaviour under study). The single-checkpoint case is a deadlock
	// escape and always closes.
	if c.outstandingMisses == 0 || len(c.ckpts) == 1 {
		ck.closed = true
	}
}

// allocStoreEntry assigns the store's identifier and allocates its store
// queue entry per design. Returns false (and records the stall) when the
// design's store buffering is exhausted — the effect Figure 2 measures.
func (c *Core) allocStoreEntry(d *dynUop, ckptID int) bool {
	if d.storeID == 0 {
		d.storeID = c.storeCounter
	}
	c.storeCounter = d.storeID + 1

	entry := lsq.StoreEntry{
		Seq: d.u.Seq, PC: d.u.PC, Ckpt: ckptID, SRLIndex: d.storeID,
		// Release-consistency tags: the drain path holds a release until
		// every load at or below Ver has performed. c.ordVer is the value
		// the commit section will stamp into d.ordVer this same iteration.
		Rel: d.u.Rel, Ver: c.ordVer,
	}
	switch c.cfg.Design {
	case DesignHierarchical:
		if c.l1stq.Full() {
			// Displace the L1 STQ head (the oldest store) into the L2 STQ.
			if c.l2stq.Full() {
				c.res.StallSTQ++
				return false
			}
			he, _ := c.l1stq.PopHead()
			slot, _ := c.l2stq.Alloc(he)
			if he.AddrKnown {
				c.mtb.Add(he.Addr)
			}
			if pos := c.win.indexOfSeq(he.Seq); pos >= 0 {
				hd := c.win.at(pos)
				hd.inL2STQ = true
				hd.stqSlot = slot
			}
		}
		slot, ok := c.l1stq.Alloc(entry)
		if !ok {
			c.res.StallSTQ++
			return false
		}
		d.stqSlot = slot
		d.inL2STQ = false
	default:
		slot, ok := c.l1stq.Alloc(entry)
		if !ok {
			c.res.StallSTQ++
			return false
		}
		d.stqSlot = slot
	}
	c.unknownAddrStores++
	if c.chk != nil {
		c.chkStoreAlloc(d)
	}
	return true
}

// noteStoreAddrKnown maintains the unknown-address store population (used
// by the filtered design's search gate) when a store's address resolves or
// its entry is squashed before resolving.
func (c *Core) noteStoreAddrKnown() {
	if c.unknownAddrStores > 0 {
		c.unknownAddrStores--
	}
}

func (c *Core) noteRecentLoad(addr uint64) {
	c.recentLoads[c.rlPos] = addr
	c.rlPos = (c.rlPos + 1) % len(c.recentLoads)
}
