package core

import (
	"context"
	"encoding/json"
	"testing"

	"srlproc/internal/obs"
	"srlproc/internal/trace"
)

func obsTestConfig() Config {
	cfg := DefaultConfig(DesignSRL)
	cfg.WarmupUops = 4_000
	cfg.RunUops = 25_000
	return cfg
}

func runObs(t testing.TB, cfg Config) *Results {
	t.Helper()
	c, err := New(cfg, trace.SFP2K)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestObservabilityDisabledByDefault: a zero Config.Obs run must produce
// no timeline or trace, but still fill the typed metric set.
func TestObservabilityDisabledByDefault(t *testing.T) {
	res := runObs(t, obsTestConfig())
	if res.Timeline != nil || res.Trace != nil {
		t.Fatalf("unobserved run grew observability artefacts: %v %v", res.Timeline, res.Trace)
	}
	if res.Metric(obs.MetricCyclesMissOutstanding) == 0 {
		t.Fatal("typed metrics not collected")
	}
}

// TestObservedRunMatchesUnobserved: attaching the sampler and trace must
// not perturb the simulation itself — in both cycle-loop modes. With
// EventSkip on, the sampler's nextSample becomes an extra wake event that
// changes which cycles get fast-forwarded, so this pins the stronger
// claim: observation may reshape skip decisions but never their outcomes,
// down to the full typed metric set.
func TestObservedRunMatchesUnobserved(t *testing.T) {
	for _, skip := range []bool{true, false} {
		skip := skip
		name := "skip"
		if !skip {
			name = "step"
		}
		t.Run(name, func(t *testing.T) {
			plainCfg := obsTestConfig()
			plainCfg.EventSkip = skip
			plain := runObs(t, plainCfg)
			cfg := obsTestConfig()
			cfg.EventSkip = skip
			cfg.Obs = obs.DefaultConfig()
			cfg.Obs.SampleEvery = 512
			observed := runObs(t, cfg)
			if plain.Cycles != observed.Cycles || plain.Uops != observed.Uops || plain.Restarts != observed.Restarts {
				t.Fatalf("observation perturbed the run: %d/%d/%d vs %d/%d/%d",
					plain.Cycles, plain.Uops, plain.Restarts, observed.Cycles, observed.Uops, observed.Restarts)
			}
			if plain.Metrics != observed.Metrics {
				t.Fatalf("observation perturbed the metric set:\n--- plain ---\n%s\n--- observed ---\n%s",
					plain.Metrics.String(), observed.Metrics.String())
			}
		})
	}
}

// TestTimelineAndTraceContents sanity-checks what an observed run records.
func TestTimelineAndTraceContents(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Obs = obs.DefaultConfig()
	cfg.Obs.SampleEvery = 512
	res := runObs(t, cfg)

	if res.Timeline == nil || res.Timeline.Len() == 0 {
		t.Fatal("no timeline")
	}
	samples := res.Timeline.Samples()
	var uops uint64
	prevCycle := uint64(0)
	for _, s := range samples {
		if s.Cycle <= prevCycle {
			t.Fatalf("samples not strictly increasing: %d after %d", s.Cycle, prevCycle)
		}
		prevCycle = s.Cycle
		uops += s.Uops
	}
	// Window uop counts cover the whole run (warmup boundary lands on a
	// checkpoint commit, so the exact total varies slightly) — they must at
	// least cover the measured region.
	if uops < res.Uops {
		t.Fatalf("timeline uops %d < measured %d", uops, res.Uops)
	}

	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("no trace")
	}
	if res.Trace.Count(obs.EvCheckpointCreate) == 0 {
		t.Fatal("no checkpoint events")
	}
	if got, want := res.Trace.Count(obs.EvRedoStart), res.Trace.Count(obs.EvRedoEnd); got != want {
		t.Fatalf("unbalanced redo episodes: %d starts, %d ends", got, want)
	}
	// The trace spans warmup too, while Results.Restarts is reset at the
	// measurement boundary — so the event count must dominate.
	if got := res.Trace.Count(obs.EvRestart); got < res.Restarts {
		t.Fatalf("restart events %d < Results.Restarts %d", got, res.Restarts)
	}
}

// TestResultsJSONRoundTrip: the full Results document must marshal and
// round-trip through generic JSON with its derived figures present.
func TestResultsJSONRoundTrip(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Obs = obs.DefaultConfig()
	res := runObs(t, cfg)
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("Results JSON does not round-trip: %v", err)
	}
	for _, key := range []string{"suite", "design", "cycles", "uops", "ipc", "pctRedoneStores", "metrics", "timeline", "trace"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("Results JSON missing %q: %v", key, doc)
		}
	}
	if doc["suite"] != "SFP2K" || doc["design"] != "SRL" {
		t.Fatalf("enum keys not named: suite=%v design=%v", doc["suite"], doc["design"])
	}
	if doc["ipc"].(float64) != res.IPC() {
		t.Fatalf("derived ipc mismatch: %v vs %v", doc["ipc"], res.IPC())
	}
}

// benchCycles runs a fixed-size simulation for benchmarking the cycle
// loop; b.N scales repetition, not run length, so per-op cost is stable.
func benchCycleLoop(b *testing.B, cfg Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1) // dodge the process-unrelated memo layers
		res := runObs(b, cfg)
		b.ReportMetric(float64(res.Cycles), "cycles/run")
	}
}

// BenchmarkCycleLoopObsOff measures the cycle loop with observability
// disabled — the configuration every performance-sensitive caller runs.
// Compare with BenchmarkCycleLoopObsOn to bound the observability tax:
//
//	go test ./internal/core -bench CycleLoopObs -benchtime 5x
func BenchmarkCycleLoopObsOff(b *testing.B) {
	benchCycleLoop(b, obsTestConfig())
}

// BenchmarkCycleLoopObsOn measures the same run with the sampler and
// event trace enabled.
func BenchmarkCycleLoopObsOn(b *testing.B) {
	cfg := obsTestConfig()
	cfg.Obs = obs.DefaultConfig()
	benchCycleLoop(b, cfg)
}
