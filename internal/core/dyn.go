package core

import (
	"container/heap"

	"srlproc/internal/isa"
)

// dynUop is the dynamic (per-instance) state of a micro-op in flight. The
// same object survives checkpoint-restart replays; epoch invalidates stale
// queue/heap references after a squash.
type dynUop struct {
	u isa.Uop

	// Dependences: producers of src1/src2 (nil when the value was already
	// architectural at allocation) and the consumers to wake on
	// availability.
	prod    [2]*dynUop
	waiters []*dynUop

	pendingSrc int8
	epoch      uint32

	// Lifecycle flags.
	allocated bool
	inSched   bool
	issued    bool
	done      bool // executed with real data
	poisoned  bool // currently carrying poison (in or destined for the SDB)
	inSDB     bool
	committed bool

	holdsReg  bool
	doneCycle uint64

	ckptID int // owning checkpoint (monotonic id)

	// Memory state.
	storeID        uint64 // stores: global allocation order (the paper's store identifier)
	nearestStoreID uint64 // loads: identifier of the last prior store
	fwdStoreID     uint64 // loads: identifier of the forwarding store (lsq.NoFwd if memory)
	stqSlot        int    // stores: slot hint in the owning store queue
	inL2STQ        bool   // hierarchical design: entry displaced to L2 STQ
	srlIdx         uint64 // stores: reserved/filled SRL index
	srlReserved    bool
	addrKnown      bool
	missReturn     uint64 // loads: DRAM fill cycle when the load missed to memory
	everInSDB      bool   // for miss-dependent accounting (counted once)
	everRedone     bool   // stores: drained through the SRL at least once
	inUnknownList  bool   // stores: currently in the unknown-address screen list

	// Branch state.
	predTaken  bool
	brResolved bool // outcome known to the front end (post-restart replay)
	bpTrained  bool // predictor updated (once, in program order at allocate)

	// SRL stall state.
	srlStalled bool

	// ldbufInserted marks a load already recorded in the load buffer at
	// access time (long-latency misses insert early so store checks and
	// snoops see them while the miss is in flight); complete() must not
	// insert it again.
	ldbufInserted bool

	// memDep is a store this load must wait for (predicted or detected
	// memory dependence); the load re-executes once the store completes.
	memDep *dynUop
}

func (d *dynUop) isLoad() bool  { return d.u.Class == isa.Load }
func (d *dynUop) isStore() bool { return d.u.Class == isa.Store }

// srcAvailable reports whether producer i is available (done, or poisoned —
// poison is itself a value that propagates).
func (d *dynUop) srcAvailable(i int) bool {
	p := d.prod[i]
	return p == nil || p.done || p.poisoned
}

// anyPoisonedSrc reports whether any producer currently carries poison.
func (d *dynUop) anyPoisonedSrc() bool {
	for _, p := range d.prod {
		if p != nil && p.poisoned && !p.done {
			return true
		}
	}
	return d.memDep != nil && d.memDep.poisoned && !d.memDep.done
}

// --- window ring ---

// window is a FIFO ring of in-flight micro-ops from oldest uncommitted to
// youngest fetched, supporting replay from an arbitrary position after a
// checkpoint restart.
type window struct {
	buf   []*dynUop
	head  int
	count int
}

func newWindow(capacity int) *window {
	return &window{buf: make([]*dynUop, capacity)}
}

func (w *window) len() int   { return w.count }
func (w *window) full() bool { return w.count == len(w.buf) }

func (w *window) push(d *dynUop) {
	if w.full() {
		panic("core: window overflow")
	}
	w.buf[(w.head+w.count)%len(w.buf)] = d
	w.count++
}

func (w *window) at(i int) *dynUop {
	return w.buf[(w.head+i)%len(w.buf)]
}

func (w *window) popFront() *dynUop {
	if w.count == 0 {
		return nil
	}
	d := w.buf[w.head]
	w.buf[w.head] = nil
	w.head = (w.head + 1) % len(w.buf)
	w.count--
	return d
}

// indexOfSeq returns the ring position of the uop with sequence seq, or -1.
// Sequence numbers are dense within the window, so this is O(1).
func (w *window) indexOfSeq(seq uint64) int {
	if w.count == 0 {
		return -1
	}
	first := w.at(0).u.Seq
	if seq < first || seq >= first+uint64(w.count) {
		return -1
	}
	return int(seq - first)
}

// --- event heaps ---

type cmplEvent struct {
	cycle uint64
	d     *dynUop
	epoch uint32
}

type cmplHeap []cmplEvent

func (h cmplHeap) Len() int           { return len(h) }
func (h cmplHeap) Less(i, j int) bool { return h[i].cycle < h[j].cycle }
func (h cmplHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *cmplHeap) Push(x interface{}) {
	*h = append(*h, x.(cmplEvent))
}
func (h *cmplHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type readyEntry struct {
	d     *dynUop
	epoch uint32
}

// readyHeap orders schedulable uops oldest-first (sequence number).
type readyHeap []readyEntry

func (h readyHeap) Len() int           { return len(h) }
func (h readyHeap) Less(i, j int) bool { return h[i].d.u.Seq < h[j].d.u.Seq }
func (h readyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x interface{}) {
	*h = append(*h, x.(readyEntry))
}
func (h *readyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func pushCmpl(h *cmplHeap, cycle uint64, d *dynUop) {
	heap.Push(h, cmplEvent{cycle: cycle, d: d, epoch: d.epoch})
}

func pushReady(h *readyHeap, d *dynUop) {
	heap.Push(h, readyEntry{d: d, epoch: d.epoch})
}

func heapPopSDB(h *readyHeap) {
	heap.Pop(h)
}

// --- checkpoints ---

// ckptState is one CPR map-table checkpoint.
type ckptState struct {
	id           int
	startSeq     uint64
	startStoreID uint64
	renameSnap   [isa.NumArchRegs]*dynUop
	pending      int // allocated-but-not-completed uops
	uops         int // uops allocated into this checkpoint
	closed       bool
}
