package core

import (
	"srlproc/internal/heapq"
	"srlproc/internal/isa"
)

// dynUop is the dynamic (per-instance) state of a micro-op in flight. The
// same object survives checkpoint-restart replays; epoch invalidates stale
// queue/heap references after a squash. Committed uops are recycled through
// the core's free list (the window ring's companion pool), so any reference
// that can outlive commit must be epoch-guarded — hence uopRef below.
type dynUop struct {
	u isa.Uop

	// Dependences: producers of src1/src2 (zero uopRef when the value was
	// already architectural at allocation) and the consumers to wake on
	// availability (an intrusive list of pooled waiterNodes).
	prod    [2]uopRef
	waiters *waiterNode

	pendingSrc int8
	epoch      uint32

	// Lifecycle flags.
	allocated bool
	inSched   bool
	issued    bool
	done      bool // executed with real data
	poisoned  bool // currently carrying poison (in or destined for the SDB)
	inSDB     bool
	committed bool

	holdsReg  bool
	doneCycle uint64

	ckptID int // owning checkpoint (monotonic id)

	// Memory state.
	storeID        uint64 // stores: global allocation order (the paper's store identifier)
	nearestStoreID uint64 // loads: identifier of the last prior store
	fwdStoreID     uint64 // loads: identifier of the forwarding store (lsq.NoFwd if memory)
	stqSlot        int    // stores: slot hint in the owning store queue
	inL2STQ        bool   // hierarchical design: entry displaced to L2 STQ
	srlIdx         uint64 // stores: reserved/filled SRL index
	srlReserved    bool
	addrKnown      bool
	missReturn     uint64 // loads: DRAM fill cycle when the load missed to memory
	everInSDB      bool   // for miss-dependent accounting (counted once)
	everRedone     bool   // stores: drained through the SRL at least once
	inUnknownList  bool   // stores: currently in the unknown-address screen list

	// Branch state.
	predTaken  bool
	brResolved bool // outcome known to the front end (post-restart replay)
	bpTrained  bool // predictor updated (once, in program order at allocate)

	// SRL stall state.
	srlStalled bool

	// Memory-ordering state (DESIGN.md §12): the ordering version stamped
	// at allocation, whether this load is counted in the core's version
	// tracker, and whether this fence/acquire sits in the pending-sync list.
	ordVer     uint64
	verCounted bool
	inSyncList bool

	// ldbufInserted marks a load already recorded in the load buffer at
	// access time (long-latency misses insert early so store checks and
	// snoops see them while the miss is in flight); complete() must not
	// insert it again.
	ldbufInserted bool

	// memDep is a store this load must wait for (predicted or detected
	// memory dependence); the load re-executes once the store completes.
	memDep uopRef
}

// uopRef is an epoch-stamped reference to a dynUop. Committed uops are
// recycled, so a bare pointer held across commit would silently start
// describing a different micro-op; the epoch (bumped at every squash and at
// every recycle) detects that. A stale reference means the original uop is
// gone — and since a consumer is always younger than its producers, the
// only way a producer disappears while the reference holder lives is
// commit, so stale reads as "architecturally complete, not poisoned":
// exactly what a committed producer's flags said before recycling.
type uopRef struct {
	d     *dynUop
	epoch uint32
}

// ref captures an epoch-stamped reference to d at its current epoch.
func ref(d *dynUop) uopRef { return uopRef{d: d, epoch: d.epoch} }

// live returns the referenced uop, or nil if the reference is unset or the
// uop has been squashed or recycled since capture.
func (r uopRef) live() *dynUop {
	if r.d != nil && r.d.epoch == r.epoch {
		return r.d
	}
	return nil
}

// waiterNode is one entry in a producer's waiter list, drawn from the
// core's node pool. seq pins the consumer's identity: a squashed-then-
// replayed consumer keeps its sequence number (and must still be woken,
// preserving the original list semantics), while a recycled consumer
// object carries a new, strictly larger sequence number (and must not be).
type waiterNode struct {
	d    *dynUop
	seq  uint64
	next *waiterNode
}

func (d *dynUop) isLoad() bool  { return d.u.Class == isa.Load }
func (d *dynUop) isStore() bool { return d.u.Class == isa.Store }

// srcAvailable reports whether producer i is available (done, or poisoned —
// poison is itself a value that propagates; a stale reference means the
// producer committed, which is also available).
func (d *dynUop) srcAvailable(i int) bool {
	p := d.prod[i].live()
	return p == nil || p.done || p.poisoned
}

// anyPoisonedSrc reports whether any producer currently carries poison.
func (d *dynUop) anyPoisonedSrc() bool {
	for _, r := range d.prod {
		if p := r.live(); p != nil && p.poisoned && !p.done {
			return true
		}
	}
	m := d.memDep.live()
	return m != nil && m.poisoned && !m.done
}

// --- window ring ---

// window is a FIFO ring of in-flight micro-ops from oldest uncommitted to
// youngest fetched, supporting replay from an arbitrary position after a
// checkpoint restart.
type window struct {
	buf   []*dynUop
	head  int
	count int
}

func newWindow(capacity int) *window {
	return &window{buf: make([]*dynUop, capacity)}
}

func (w *window) len() int   { return w.count }
func (w *window) full() bool { return w.count == len(w.buf) }

func (w *window) push(d *dynUop) {
	if w.full() {
		panic("core: window overflow")
	}
	w.buf[(w.head+w.count)%len(w.buf)] = d
	w.count++
}

func (w *window) at(i int) *dynUop {
	return w.buf[(w.head+i)%len(w.buf)]
}

func (w *window) popFront() *dynUop {
	if w.count == 0 {
		return nil
	}
	d := w.buf[w.head]
	w.buf[w.head] = nil
	w.head = (w.head + 1) % len(w.buf)
	w.count--
	return d
}

// indexOfSeq returns the ring position of the uop with sequence seq, or -1.
// Sequence numbers are dense within the window, so this is O(1).
func (w *window) indexOfSeq(seq uint64) int {
	if w.count == 0 {
		return -1
	}
	first := w.at(0).u.Seq
	if seq < first || seq >= first+uint64(w.count) {
		return -1
	}
	return int(seq - first)
}

// --- event heaps ---
//
// Both scheduler heaps are heapq.Heap instances — index-based min-heaps
// over preallocated slices, no interface boxing on Push/Pop. The ready/SDB
// heaps key on sequence number (oldest schedulable uop first); the
// completion heap keys on the event's cycle. Entries carry the uop's epoch
// at insertion so squashes invalidate them lazily.

// readyEntry is the payload of the ready and SDB heaps (key: d.u.Seq).
type readyEntry struct {
	d     *dynUop
	epoch uint32
}

type readyHeap = heapq.Heap[readyEntry]

// cmplEvent is the payload of the completion heap (key: completion cycle).
type cmplEvent struct {
	d     *dynUop
	epoch uint32
}

type cmplHeap = heapq.Heap[cmplEvent]

func pushCmpl(h *cmplHeap, cycle uint64, d *dynUop) {
	h.Push(cycle, cmplEvent{d: d, epoch: d.epoch})
}

func pushReady(h *readyHeap, d *dynUop) {
	h.Push(d.u.Seq, readyEntry{d: d, epoch: d.epoch})
}

// --- checkpoints ---

// ckptState is one CPR map-table checkpoint. Instances are recycled
// through the core's checkpoint free list; identity is the monotonic id,
// never the pointer.
type ckptState struct {
	id           int
	startSeq     uint64
	startStoreID uint64
	renameSnap   [isa.NumArchRegs]uopRef
	pending      int // allocated-but-not-completed uops
	uops         int // uops allocated into this checkpoint
	closed       bool
}
