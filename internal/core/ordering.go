package core

import "srlproc/internal/isa"

// Memory-ordering enforcement (DESIGN.md §12).
//
// The core supports release consistency over three primitive kinds: full
// fences (isa.Fence), load-acquires (isa.Uop.Acq) and store-releases
// (isa.Uop.Rel). Enforcement uses Louvre-style version tracking: every
// sync operation bumps a monotonically increasing ordering version at
// allocation, every uop is stamped with the version current at its
// allocation, and a ring of per-version outstanding-load counters answers
// "have all loads with version <= v performed?" in O(1) amortized — no
// per-load CAM search, matching the paper's scalable-structures theme.
//
// Program-order invariants the stamping gives for free:
//   - every op older than a sync S carries a version <= S's version;
//   - every op younger than S carries a strictly greater version.
// So verLoadsDone(S.ver) is exactly "all program-order-older loads have
// performed", which is the wait condition for fences and release drains.
//
// The version counter never rolls back at a checkpoint restart: squashed
// counted loads are forgotten from the ring, and replayed uops re-stamp at
// the (monotonically advanced) current version. Monotonicity keeps the
// gates conservative across replays — a replayed load's new version is
// never smaller than any replayed younger sync's, so no gate opens early.

// isSyncUop reports whether u is an ordering sync operation (bumps the
// version at allocation).
func isSyncUop(u *isa.Uop) bool {
	return u.Class == isa.Fence || (u.Class == isa.Load && u.Acq) || (u.Class == isa.Store && u.Rel)
}

// verAdd counts an outstanding (allocated, unperformed) load at version v.
// The ring grows amortized-doubling to the live version span and is reused
// for the rest of the run, so the steady state allocates nothing.
func (c *Core) verAdd(v uint64) {
	if c.verTotal == 0 {
		// Empty tracker: rebase the ring at v so long quiet stretches never
		// force the span (v - base) to grow the ring.
		c.verBase = v
		c.verHead = 0
		if len(c.verCounts) == 0 {
			c.verCounts = make([]uint32, 64)
		} else {
			for i := range c.verCounts {
				c.verCounts[i] = 0
			}
		}
	}
	span := int(v-c.verBase) + 1
	if span > len(c.verCounts) {
		grown := make([]uint32, 2*len(c.verCounts))
		for len(grown) < span {
			grown = append(grown, make([]uint32, len(grown))...)
		}
		for i := 0; i < len(c.verCounts); i++ {
			grown[i] = c.verCounts[(c.verHead+i)%len(c.verCounts)]
		}
		c.verCounts = grown
		c.verHead = 0
	}
	c.verCounts[(c.verHead+span-1)%len(c.verCounts)]++
	c.verTotal++
}

// verForget removes a previously counted load (performed, or squashed
// before performing). Idempotent via d.verCounted.
func (c *Core) verForget(d *dynUop) {
	if !d.verCounted {
		return
	}
	d.verCounted = false
	slot := (c.verHead + int(d.ordVer-c.verBase)) % len(c.verCounts)
	c.verCounts[slot]--
	c.verTotal--
}

// verLoadsDone reports whether every outstanding load stamped with version
// <= v has performed. The head advances lazily past drained versions, so
// repeated queries are O(1) amortized.
func (c *Core) verLoadsDone(v uint64) bool {
	if c.verTotal == 0 || v < c.verBase {
		return true
	}
	for c.verCounts[c.verHead] == 0 {
		c.verHead = (c.verHead + 1) % len(c.verCounts)
		c.verBase++
		if c.verBase > v {
			return true
		}
	}
	return c.verBase > v
}

// notePendingSync registers a fence or load-acquire in the pending-sync
// list at allocation. Entries are appended in program order and the list
// stays sequence-sorted: a restart filters squashed entries and replayed
// syncs re-append with strictly larger sequence numbers than the survivors.
func (c *Core) notePendingSync(d *dynUop) {
	d.inSyncList = true
	c.pendingSyncs = append(c.pendingSyncs, ref(d))
}

// prunePendingSyncs drops completed (or squashed/recycled) entries from the
// front of the pending-sync list. Sync operations complete in program order
// — a fence waits for all older loads including acquires, and an acquire's
// execution is gated behind every older sync — so front pruning retires
// the whole completed prefix.
func (c *Core) prunePendingSyncs() {
	i := 0
	for i < len(c.pendingSyncs) {
		s := c.pendingSyncs[i].live()
		if s != nil && s.allocated && !s.done {
			break
		}
		i++
	}
	if i > 0 {
		n := copy(c.pendingSyncs, c.pendingSyncs[i:])
		for j := n; j < len(c.pendingSyncs); j++ {
			c.pendingSyncs[j] = uopRef{}
		}
		c.pendingSyncs = c.pendingSyncs[:n]
	}
}

// pendingSyncBefore returns the oldest unperformed fence or load-acquire
// strictly older than seq, or nil. Loads may not perform past it; in the
// SRL design, speculative store drains may not pass it either.
func (c *Core) pendingSyncBefore(seq uint64) *dynUop {
	c.prunePendingSyncs()
	for _, r := range c.pendingSyncs {
		s := r.live()
		if s == nil || !s.allocated || s.done {
			continue
		}
		if s.u.Seq >= seq {
			return nil
		}
		return s
	}
	return nil
}

// fenceReady reports whether fence d may perform: every older sync has
// performed, every older load has performed (version query), and every
// older store has drained out of the design's store FIFOs — each FIFO is
// sequence-sorted, so head checks suffice. Fences force a fresh checkpoint
// at allocation (see allocate), so older stores always sit in older,
// committable checkpoints and the drain wait cannot deadlock against the
// fence's own checkpoint.
func (c *Core) fenceReady(d *dynUop) bool {
	if c.pendingSyncBefore(d.u.Seq) != nil {
		return false
	}
	if !c.verLoadsDone(d.ordVer) {
		return false
	}
	if h := c.l1stq.Head(); h != nil && h.Seq < d.u.Seq {
		return false
	}
	if c.l2stq != nil {
		if h := c.l2stq.Head(); h != nil && h.Seq < d.u.Seq {
			return false
		}
	}
	if c.srl != nil {
		if h := c.srl.Head(); h != nil && h.Seq < d.u.Seq {
			return false
		}
	}
	return true
}
