package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"srlproc/internal/obs"
	"srlproc/internal/oracle"
	"srlproc/internal/stats"
	"srlproc/internal/trace"
)

// Results holds everything one simulation run reports.
type Results struct {
	Suite  trace.Suite `json:"suite"`
	Design StoreDesign `json:"design"`

	Cycles uint64 `json:"cycles"`
	Uops   uint64 `json:"uops"` // committed micro-ops in the measured region
	Loads  uint64 `json:"loads"`
	Stores uint64 `json:"stores"`

	// Fences counts committed full fences. Zero (and omitted from JSON)
	// unless the trace profile injects sync traffic (Config.FencePer1K),
	// so documents from fence-free runs are unchanged.
	Fences uint64 `json:"fences,omitempty"`

	// CFP / slice statistics (Table 3 inputs).
	MissDependentUops   uint64 `json:"missDependentUops"` // uops that drained to the SDB at least once
	MissDependentStores uint64 `json:"missDependentStores"`
	RedoneStores        uint64 `json:"redoneStores"`  // stores drained from the SRL
	SRLLoadStalls       uint64 `json:"srlLoadStalls"` // loads stalled on a possible SRL match
	IndexedForwards     uint64 `json:"indexedForwards"`

	// Forwarding sources.
	L1STQForwards uint64 `json:"l1stqForwards"`
	L2STQForwards uint64 `json:"l2stqForwards"`
	FCForwards    uint64 `json:"fcForwards"`

	// Violations and restarts.
	MemDepViolations   uint64 `json:"memDepViolations"`
	SnoopViolations    uint64 `json:"snoopViolations"`
	OverflowViolations uint64 `json:"overflowViolations"`
	BranchMispredicts  uint64 `json:"branchMispredicts"`
	Restarts           uint64 `json:"restarts"`
	ReplayedUops       uint64 `json:"replayedUops"`

	// Memory system.
	L1Misses     uint64 `json:"l1Misses"`
	L2Misses     uint64 `json:"l2Misses"`
	MemAccesses  uint64 `json:"memAccesses"`
	Writebacks   uint64 `json:"writebacks"`
	SpecDiscards uint64 `json:"specDiscards"` // data-cache temporary updates discarded (§6.5 variant)

	// Far-memory tier (Config.Mem.FarFrac > 0). Both are zero — and
	// omitted from JSON — when the tier is off, so documents from
	// far-free configs are unchanged.
	FarAccesses         uint64 `json:"farAccesses,omitempty"`
	FarDegradedAccesses uint64 `json:"farDegradedAccesses,omitempty"`

	// Stall accounting (allocation stall cycles by cause).
	StallSTQ    uint64 `json:"stallSTQ"`
	StallLQ     uint64 `json:"stallLQ"`
	StallSched  uint64 `json:"stallSched"`
	StallRegs   uint64 `json:"stallRegs"`
	StallCkpt   uint64 `json:"stallCkpt"`
	StallWindow uint64 `json:"stallWindow"`
	StallSDB    uint64 `json:"stallSDB"`

	// SRL occupancy (Figure 7 / Table 3 col 6).
	SRLOccupancy *stats.OccupancyTracker `json:"srlOccupancy,omitempty"`

	// Structure activity for the power model.
	CamSearches  uint64 `json:"camSearches"`
	CamEntryOps  uint64 `json:"camEntryOps"`
	LCFProbes    uint64 `json:"lcfProbes"`
	LCFNonZero   uint64 `json:"lcfNonZero"`
	LCFOverflows uint64 `json:"lcfOverflows"`
	FCLookups    uint64 `json:"fcLookups"`
	FCHits       uint64 `json:"fcHits"`
	LBLookups    uint64 `json:"lbLookups"`
	LBEntryCmps  uint64 `json:"lbEntryCmps"`
	LBOverflows  uint64 `json:"lbOverflows"`
	MTBProbes    uint64 `json:"mtbProbes"`
	MTBMaybes    uint64 `json:"mtbMaybes"`
	SRLReads     uint64 `json:"srlReads"`
	SRLWrites    uint64 `json:"srlWrites"`

	// Metrics holds the typed hot-path counters (see obs.Metric). Access
	// individual values through Metric.
	Metrics obs.MetricSet `json:"metrics"`

	// Timeline is the cycle-window time-series, non-nil only when the run
	// was configured with Config.Obs.SampleEvery > 0.
	Timeline *obs.Timeline `json:"timeline,omitempty"`

	// Trace is the typed event trace, non-nil only when the run was
	// configured with Config.Obs.TraceEvents. Its JSON form is a summary;
	// export the full stream with Trace.WriteJSONL or Trace.WriteChromeTrace.
	Trace *obs.TraceWriter `json:"trace,omitempty"`

	// Counters holds free-form extra counters.
	//
	// Deprecated: hot-path counters moved to the typed Metrics set; use
	// Metric for those and Extra/ExtraNames for anything still free-form.
	// Direct map access remains only for backward compatibility.
	Counters *stats.Counters `json:"extras,omitempty"`

	// Divergences holds the differential oracle's findings (Config.Check):
	// the first oracle.DefaultMaxDivergences disagreements in detection
	// order, each with recent-event context. DivergenceCount keeps counting
	// past the retention cap. Both are zero on a clean (or unchecked) run.
	Divergences     []oracle.Divergence `json:"divergences,omitempty"`
	DivergenceCount uint64              `json:"divergenceCount,omitempty"`
}

// Metric returns one typed hot-path counter.
func (r *Results) Metric(m obs.Metric) uint64 { return r.Metrics.Get(m) }

// Extra returns a free-form extra counter by name. Names that correspond
// to typed metrics (see obs.MetricByName) are answered from Metrics, so
// callers that predate the typed set keep working.
func (r *Results) Extra(name string) uint64 {
	if m, ok := obs.MetricByName(name); ok {
		return r.Metrics.Get(m)
	}
	if r.Counters == nil {
		return 0
	}
	return r.Counters.Get(name)
}

// ExtraNames lists the names of all non-zero counters — typed metrics and
// free-form extras — sorted.
func (r *Results) ExtraNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, m := range obs.AllMetrics() {
		if r.Metrics.Get(m) > 0 && !seen[m.String()] {
			seen[m.String()] = true
			names = append(names, m.String())
		}
	}
	if r.Counters != nil {
		for _, name := range r.Counters.Names() {
			if r.Counters.Get(name) > 0 && !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	return names
}

// IPC returns committed micro-ops per cycle.
func (r *Results) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Uops) / float64(r.Cycles)
}

// SpeedupOver returns the percent speedup of r over base for the same
// committed uop count (the paper's y-axes).
func (r *Results) SpeedupOver(base *Results) float64 {
	if r.Cycles == 0 || base.Cycles == 0 {
		return 0
	}
	return (float64(base.Cycles)/float64(r.Cycles) - 1) * 100
}

// PctMissDependentUops returns Table 3 column 4.
func (r *Results) PctMissDependentUops() float64 {
	if r.Uops == 0 {
		return 0
	}
	return 100 * float64(r.MissDependentUops) / float64(r.Uops)
}

// PctMissDependentStores returns Table 3 column 3.
func (r *Results) PctMissDependentStores() float64 {
	if r.Stores == 0 {
		return 0
	}
	return 100 * float64(r.MissDependentStores) / float64(r.Stores)
}

// PctRedoneStores returns Table 3 column 2.
func (r *Results) PctRedoneStores() float64 {
	if r.Stores == 0 {
		return 0
	}
	return 100 * float64(r.RedoneStores) / float64(r.Stores)
}

// SRLStallsPer10K returns Table 3 column 5.
func (r *Results) SRLStallsPer10K() float64 {
	if r.Uops == 0 {
		return 0
	}
	return 10_000 * float64(r.SRLLoadStalls) / float64(r.Uops)
}

// PctTimeSRLOccupied returns Table 3 column 6.
func (r *Results) PctTimeSRLOccupied() float64 {
	if r.SRLOccupancy == nil || r.SRLOccupancy.TotalCycles() == 0 {
		return 0
	}
	return 100 * float64(r.SRLOccupancy.OccupiedCycles()) / float64(r.SRLOccupancy.TotalCycles())
}

// MarshalJSON renders the run as one JSON object: every raw counter plus
// the derived figures the paper reports (ipc, percentage columns), so a
// consumer never has to re-derive them.
func (r *Results) MarshalJSON() ([]byte, error) {
	type raw Results // shed the method set to avoid recursion
	return json.Marshal(struct {
		*raw
		IPC                    float64 `json:"ipc"`
		PctMissDependentUops   float64 `json:"pctMissDependentUops"`
		PctMissDependentStores float64 `json:"pctMissDependentStores"`
		PctRedoneStores        float64 `json:"pctRedoneStores"`
		SRLStallsPer10K        float64 `json:"srlStallsPer10K"`
		PctTimeSRLOccupied     float64 `json:"pctTimeSRLOccupied"`
	}{
		raw:                    (*raw)(r),
		IPC:                    r.IPC(),
		PctMissDependentUops:   r.PctMissDependentUops(),
		PctMissDependentStores: r.PctMissDependentStores(),
		PctRedoneStores:        r.PctRedoneStores(),
		SRLStallsPer10K:        r.SRLStallsPer10K(),
		PctTimeSRLOccupied:     r.PctTimeSRLOccupied(),
	})
}

// resultsCSVHeader is the WriteCSV column set, kept beside the row writer
// so the two cannot drift apart.
var resultsCSVHeader = []string{
	"suite", "design", "cycles", "uops", "ipc", "loads", "stores",
	"miss_dep_uops", "miss_dep_stores", "redone_stores", "srl_load_stalls",
	"fwd_l1stq", "fwd_l2stq", "fwd_fc", "fwd_indexed",
	"memdep_violations", "snoop_violations", "overflow_violations",
	"branch_mispredicts", "restarts", "replayed_uops",
	"l1_misses", "l2_misses", "mem_accesses",
	"stall_stq", "stall_lq", "stall_sched", "stall_regs", "stall_ckpt", "stall_window", "stall_sdb",
}

// WriteCSV renders the run as a two-line CSV document (header + one row).
func (r *Results) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, h := range resultsCSVHeader {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(h)
	}
	bw.WriteByte('\n')
	fmt.Fprintf(bw, "%s,%s,%d,%d,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
		r.Suite, r.Design, r.Cycles, r.Uops, r.IPC(), r.Loads, r.Stores,
		r.MissDependentUops, r.MissDependentStores, r.RedoneStores, r.SRLLoadStalls,
		r.L1STQForwards, r.L2STQForwards, r.FCForwards, r.IndexedForwards,
		r.MemDepViolations, r.SnoopViolations, r.OverflowViolations,
		r.BranchMispredicts, r.Restarts, r.ReplayedUops,
		r.L1Misses, r.L2Misses, r.MemAccesses,
		r.StallSTQ, r.StallLQ, r.StallSched, r.StallRegs, r.StallCkpt, r.StallWindow, r.StallSDB)
	return bw.Flush()
}

// String renders a run summary.
func (r *Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s / %s: %d uops in %d cycles (IPC %.2f)\n",
		r.Suite, r.Design, r.Uops, r.Cycles, r.IPC())
	fmt.Fprintf(&b, "  loads=%d stores=%d missDepUops=%.1f%% missDepStores=%.1f%% redone=%.1f%%\n",
		r.Loads, r.Stores, r.PctMissDependentUops(), r.PctMissDependentStores(), r.PctRedoneStores())
	fmt.Fprintf(&b, "  fwd: L1STQ=%d L2STQ=%d FC=%d indexed=%d srlStalls=%d\n",
		r.L1STQForwards, r.L2STQForwards, r.FCForwards, r.IndexedForwards, r.SRLLoadStalls)
	fmt.Fprintf(&b, "  viol: memdep=%d snoop=%d overflow=%d mispred=%d restarts=%d\n",
		r.MemDepViolations, r.SnoopViolations, r.OverflowViolations, r.BranchMispredicts, r.Restarts)
	fmt.Fprintf(&b, "  mem: L1miss=%d L2miss=%d dram=%d\n", r.L1Misses, r.L2Misses, r.MemAccesses)
	return b.String()
}
