package core

import (
	"fmt"
	"strings"

	"srlproc/internal/stats"
	"srlproc/internal/trace"
)

// Results holds everything one simulation run reports.
type Results struct {
	Suite  trace.Suite
	Design StoreDesign

	Cycles uint64
	Uops   uint64 // committed micro-ops in the measured region
	Loads  uint64
	Stores uint64

	// CFP / slice statistics (Table 3 inputs).
	MissDependentUops   uint64 // uops that drained to the SDB at least once
	MissDependentStores uint64
	RedoneStores        uint64 // stores drained from the SRL
	SRLLoadStalls       uint64 // loads stalled on a possible SRL match
	IndexedForwards     uint64

	// Forwarding sources.
	L1STQForwards uint64
	L2STQForwards uint64
	FCForwards    uint64

	// Violations and restarts.
	MemDepViolations   uint64
	SnoopViolations    uint64
	OverflowViolations uint64
	BranchMispredicts  uint64
	Restarts           uint64
	ReplayedUops       uint64

	// Memory system.
	L1Misses     uint64
	L2Misses     uint64
	MemAccesses  uint64
	Writebacks   uint64
	SpecDiscards uint64 // data-cache temporary updates discarded (§6.5 variant)

	// Stall accounting (allocation stall cycles by cause).
	StallSTQ    uint64
	StallLQ     uint64
	StallSched  uint64
	StallRegs   uint64
	StallCkpt   uint64
	StallWindow uint64
	StallSDB    uint64

	// SRL occupancy (Figure 7 / Table 3 col 6).
	SRLOccupancy *stats.OccupancyTracker

	// Structure activity for the power model.
	CamSearches  uint64
	CamEntryOps  uint64
	LCFProbes    uint64
	LCFNonZero   uint64
	LCFOverflows uint64
	FCLookups    uint64
	FCHits       uint64
	LBLookups    uint64
	LBEntryCmps  uint64
	LBOverflows  uint64
	MTBProbes    uint64
	MTBMaybes    uint64
	SRLReads     uint64
	SRLWrites    uint64

	// Extra counters, free-form.
	Counters *stats.Counters
}

// IPC returns committed micro-ops per cycle.
func (r *Results) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Uops) / float64(r.Cycles)
}

// SpeedupOver returns the percent speedup of r over base for the same
// committed uop count (the paper's y-axes).
func (r *Results) SpeedupOver(base *Results) float64 {
	if r.Cycles == 0 || base.Cycles == 0 {
		return 0
	}
	return (float64(base.Cycles)/float64(r.Cycles) - 1) * 100
}

// PctMissDependentUops returns Table 3 column 4.
func (r *Results) PctMissDependentUops() float64 {
	if r.Uops == 0 {
		return 0
	}
	return 100 * float64(r.MissDependentUops) / float64(r.Uops)
}

// PctMissDependentStores returns Table 3 column 3.
func (r *Results) PctMissDependentStores() float64 {
	if r.Stores == 0 {
		return 0
	}
	return 100 * float64(r.MissDependentStores) / float64(r.Stores)
}

// PctRedoneStores returns Table 3 column 2.
func (r *Results) PctRedoneStores() float64 {
	if r.Stores == 0 {
		return 0
	}
	return 100 * float64(r.RedoneStores) / float64(r.Stores)
}

// SRLStallsPer10K returns Table 3 column 5.
func (r *Results) SRLStallsPer10K() float64 {
	if r.Uops == 0 {
		return 0
	}
	return 10_000 * float64(r.SRLLoadStalls) / float64(r.Uops)
}

// PctTimeSRLOccupied returns Table 3 column 6.
func (r *Results) PctTimeSRLOccupied() float64 {
	if r.SRLOccupancy == nil || r.SRLOccupancy.TotalCycles() == 0 {
		return 0
	}
	return 100 * float64(r.SRLOccupancy.OccupiedCycles()) / float64(r.SRLOccupancy.TotalCycles())
}

// String renders a run summary.
func (r *Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s / %s: %d uops in %d cycles (IPC %.2f)\n",
		r.Suite, r.Design, r.Uops, r.Cycles, r.IPC())
	fmt.Fprintf(&b, "  loads=%d stores=%d missDepUops=%.1f%% missDepStores=%.1f%% redone=%.1f%%\n",
		r.Loads, r.Stores, r.PctMissDependentUops(), r.PctMissDependentStores(), r.PctRedoneStores())
	fmt.Fprintf(&b, "  fwd: L1STQ=%d L2STQ=%d FC=%d indexed=%d srlStalls=%d\n",
		r.L1STQForwards, r.L2STQForwards, r.FCForwards, r.IndexedForwards, r.SRLLoadStalls)
	fmt.Fprintf(&b, "  viol: memdep=%d snoop=%d overflow=%d mispred=%d restarts=%d\n",
		r.MemDepViolations, r.SnoopViolations, r.OverflowViolations, r.BranchMispredicts, r.Restarts)
	fmt.Fprintf(&b, "  mem: L1miss=%d L2miss=%d dram=%d\n", r.L1Misses, r.L2Misses, r.MemAccesses)
	return b.String()
}
