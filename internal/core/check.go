package core

import (
	"sort"

	"srlproc/internal/lsq"
	"srlproc/internal/obs"
	"srlproc/internal/oracle"
)

// checker bridges the core to the differential oracle (internal/oracle):
// it owns the lockstep reference memory system, a small ring of recent
// pipeline events for divergence context, and the structure-invariant
// sweeps that cross-check the LCF, SRL, load buffer and WAR tracker
// against first-principles definitions. Everything here observes; nothing
// feeds back into the simulation, so a checked run's timing is
// bit-identical to an unchecked one (TestCheckedRunMatchesUnchecked).
type checker struct {
	o *oracle.Oracle

	// Recent typed events (restarts, redo episodes, violations), attached
	// to each retained divergence for post-mortem context.
	recent [64]obs.Event
	rpos   int
	rlen   int

	// drains counts SRL head drains for the sampled WAR cross-check.
	drains uint64

	// scratch for the load-buffer monotonicity sweep.
	lbScratch []lbPair
}

type lbPair struct{ seq, nearest uint64 }

// warSampleMask samples the O(window) WAR cross-check every 64th SRL drain.
const warSampleMask = 63

func newChecker(c *Core) *checker {
	k := &checker{}
	// The decision-time memory-staleness check demands that the design's
	// search machinery finds every resolved+ready older store at load
	// issue. The CAM designs promise that; the SRL design only does with
	// the LCF (a zero counter proves absence) — without it, loads
	// legitimately speculate past matching SRL stores (FC capacity
	// eviction, discarded §6.5 temporary updates) and the load buffer
	// catches them later, so only the commit-time checks apply.
	strict := c.cfg.Design != DesignSRL || c.cfg.UseLCF
	k.o = oracle.New(oracle.Options{
		StrictMemory: strict,
		OnDivergence: func(d *oracle.Divergence) {
			d.Events = k.recentEvents()
			// After the snapshot, so the divergence doesn't record itself.
			c.obsEvent(obs.EvDivergence, d.Addr)
		},
	})
	return k
}

func (k *checker) noteEvent(e obs.Event) {
	k.recent[k.rpos] = e
	k.rpos = (k.rpos + 1) % len(k.recent)
	if k.rlen < len(k.recent) {
		k.rlen++
	}
}

// recentEvents returns the ring's contents oldest-first.
func (k *checker) recentEvents() []obs.Event {
	if k.rlen == 0 {
		return nil
	}
	out := make([]obs.Event, 0, k.rlen)
	start := (k.rpos - k.rlen + len(k.recent)) % len(k.recent)
	for i := 0; i < k.rlen; i++ {
		out = append(out, k.recent[(start+i)%len(k.recent)])
	}
	return out
}

// --- hook wrappers (each call site guards on c.chk != nil) ---

func (c *Core) chkStoreAlloc(d *dynUop) {
	// Called from allocStoreEntry, before the commit section stamps
	// d.ordVer — c.ordVer is the value this store is about to receive.
	c.chk.o.StoreAlloc(c.cycle, d.u.Seq, d.storeID, d.u.Rel, c.ordVer)
}

func (c *Core) chkLoadAlloc(d *dynUop) {
	c.chk.o.LoadAlloc(c.cycle, d.u.Seq, d.u.Acq)
}

func (c *Core) chkFenceAlloc(d *dynUop) {
	c.chk.o.FenceAlloc(c.cycle, d.u.Seq)
}

func (c *Core) chkFencePerformed(d *dynUop) {
	c.chk.o.FencePerformed(c.cycle, d.u.Seq)
}

func (c *Core) chkStoreResolved(d *dynUop, ready bool) {
	c.chk.o.StoreResolved(c.cycle, d.u.Seq, d.u.Addr, d.u.Size, ready)
}

func (c *Core) chkStoreDrained(seq uint64) {
	c.chk.o.StoreDrained(c.cycle, seq)
}

// chkSRLDrained records an SRL head drain and runs the sampled WAR
// cross-check: with the order tracker enabled, no load older than the
// drained store may still be unexecuted in the window (the tracker's gate
// is supposed to have held the head back).
func (c *Core) chkSRLDrained(seq uint64) {
	k := c.chk
	k.o.StoreDrained(c.cycle, seq)
	k.drains++
	if !c.cfg.UseWARTracker || k.drains&warSampleMask != 0 {
		return
	}
	for i := 0; i < c.win.len(); i++ {
		d := c.win.at(i)
		if d.u.Seq >= seq {
			break
		}
		if d.allocated && !d.done && d.isLoad() {
			k.o.Report(oracle.Divergence{
				Kind: oracle.KindWARGate, Cycle: c.cycle,
				LoadSeq: d.u.Seq, StoreSeq: seq, Addr: d.u.Addr,
				Detail: "SRL head drained past an unexecuted older load",
			})
			return
		}
	}
}

func (c *Core) chkLoadDecision(d *dynUop, kind oracle.ForwardKind, producer uint64) {
	c.chk.o.LoadDecision(c.cycle, d.u.Seq, d.u.Addr, kind, producer)
}

func (c *Core) chkCommitUop(d *dynUop) {
	if d.isLoad() {
		c.chk.o.CommitLoad(c.cycle, d.u.Seq)
	} else if d.isStore() {
		c.chk.o.CommitStore(c.cycle, d.u.Seq)
	}
}

func (c *Core) chkSquash(fromSeq uint64) {
	c.chk.o.Squash(fromSeq)
}

// chkFinish closes the run: one last sweep, the oracle's end-of-run image
// cross-check, and surfacing the verdict into Results.
func (c *Core) chkFinish() {
	c.chkSweep()
	c.chk.o.Finish(c.cycle)
	c.res.Divergences = c.chk.o.Divergences()
	c.res.DivergenceCount = c.chk.o.Count()
}

// chkSweep cross-checks structure invariants from first principles. It
// runs at every checkpoint commit, at redo-episode end, and at finalize —
// the points the paper's argument leans on the structures being coherent.
func (c *Core) chkSweep() {
	k := c.chk
	if c.srl != nil && !c.srl.Empty() {
		// SRL FIFO order: sequence numbers strictly increasing head to
		// tail, virtual indices consecutive from the base — the "no CAM
		// needed" premise of Section 4.
		base := c.srl.HeadIndex()
		prevSeq := uint64(0)
		c.srl.ForEach(func(i int, e *lsq.StoreEntry) {
			if e.Seq <= prevSeq && i > 0 {
				k.o.Report(oracle.Divergence{
					Kind: oracle.KindSRLOrder, Cycle: c.cycle, StoreSeq: e.Seq,
					Expected: prevSeq, Actual: e.Seq,
					Detail: "SRL residency out of program order",
				})
			}
			prevSeq = e.Seq
			if e.SRLIndex != base+uint64(i) {
				k.o.Report(oracle.Divergence{
					Kind: oracle.KindSRLOrder, Cycle: c.cycle, StoreSeq: e.Seq,
					Expected: base + uint64(i), Actual: e.SRLIndex,
					Detail: "SRL virtual index not consecutive from base",
				})
			}
			// LCF coverage (Section 4.3's no-false-negatives guarantee): a
			// zero counter while a counted matching store sits in the SRL
			// would let a dependent load skip its check entirely.
			if c.lcf != nil && e.AddrKnown && e.LCFCounted {
				if may, _ := c.lcf.Peek(e.Addr); !may {
					k.o.Report(oracle.Divergence{
						Kind: oracle.KindLCFFalseNegative, Cycle: c.cycle,
						StoreSeq: e.Seq, Addr: e.Addr,
						Detail: "LCF counter zero for a counted SRL-resident store",
					})
				}
			}
		})
	}
	// Load-buffer nearest-store monotonicity: identifiers are assigned in
	// allocation order, so sorting resident entries by sequence number
	// must leave NearestStoreID non-decreasing — the magnitude-comparison
	// age test of Section 3 depends on it.
	k.lbScratch = k.lbScratch[:0]
	c.ldbuf.ForEach(func(e *lsq.LoadEntry) {
		k.lbScratch = append(k.lbScratch, lbPair{seq: e.Seq, nearest: e.NearestStoreID})
	})
	sort.Slice(k.lbScratch, func(i, j int) bool { return k.lbScratch[i].seq < k.lbScratch[j].seq })
	for i := 1; i < len(k.lbScratch); i++ {
		if k.lbScratch[i].nearest < k.lbScratch[i-1].nearest {
			k.o.Report(oracle.Divergence{
				Kind: oracle.KindLoadBufOrder, Cycle: c.cycle,
				LoadSeq:  k.lbScratch[i].seq,
				Expected: k.lbScratch[i-1].nearest, Actual: k.lbScratch[i].nearest,
				Detail: "load-buffer nearest-store identifiers not monotonic in program order",
			})
			break
		}
	}
}
