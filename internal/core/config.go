// Package core implements the latency tolerant processor: a cycle-stepped
// timing model of a Continual Flow Pipeline (CFP) on a Checkpoint Processing
// and Recovery (CPR) microarchitecture, with pluggable secondary store
// processing — the paper's baseline, the large single-level ("ideal") store
// queue, the hierarchical two-level store queue, and the proposed Store Redo
// Log organisation.
package core

import (
	"fmt"

	"srlproc/internal/cachesim"
	"srlproc/internal/lsq"
	"srlproc/internal/obs"
)

// StoreDesign selects the store-processing organisation under evaluation.
type StoreDesign int

const (
	// DesignBaseline is a single conventional store queue (48 entries by
	// default) — the denominator of every speedup in the paper.
	DesignBaseline StoreDesign = iota
	// DesignLargeSTQ is a single-level store queue of configurable size at
	// L1-STQ latency; at 1K entries it is Figure 6's "ideal" store queue,
	// and the Figure 2 sweep uses sizes 128..1K.
	DesignLargeSTQ
	// DesignHierarchical is Akkary et al.'s two-level store queue: a small
	// fast L1 STQ backed by a large, slow, CAM-searched L2 STQ with a
	// Membership Test Buffer filtering lookups.
	DesignHierarchical
	// DesignSRL is the paper's proposal: L1 STQ + Store Redo Log + Loose
	// Check Filter + Forwarding Cache + set-associative secondary load
	// buffer.
	DesignSRL
	// DesignFilteredSTQ is the related-work comparator the paper discusses
	// (Sethumadhavan et al., MICRO 2003): a single large store queue whose
	// CAM searches are screened by a Bloom-style membership filter. It
	// saves search (dynamic) power but — the paper's critique — keeps the
	// full CAM's area and leakage.
	DesignFilteredSTQ
)

// String names the design as in the paper's figures.
func (d StoreDesign) String() string {
	switch d {
	case DesignBaseline:
		return "baseline-48STQ"
	case DesignLargeSTQ:
		return "large-STQ"
	case DesignHierarchical:
		return "hierarchical-STQ"
	case DesignSRL:
		return "SRL"
	case DesignFilteredSTQ:
		return "filtered-STQ"
	default:
		return fmt.Sprintf("design(%d)", int(d))
	}
}

// MarshalText renders the design by name, so StoreDesign-keyed maps and
// fields marshal to readable JSON instead of integers.
func (d StoreDesign) MarshalText() ([]byte, error) {
	return []byte(d.String()), nil
}

// UnmarshalText parses a design name as produced by String/MarshalText.
func (d *StoreDesign) UnmarshalText(text []byte) error {
	name := string(text)
	for _, dd := range []StoreDesign{DesignBaseline, DesignLargeSTQ, DesignHierarchical, DesignSRL, DesignFilteredSTQ} {
		if dd.String() == name {
			*d = dd
			return nil
		}
	}
	return fmt.Errorf("core: unknown store design %q", name)
}

// Config parameterises one simulation. DefaultConfig reproduces Table 1.
type Config struct {
	Design StoreDesign

	// Pipeline widths (Table 1: rename/issue/retire = 4/6/4).
	AllocWidth  int
	IssueWidth  int
	RetireWidth int
	LoadPorts   int
	StorePorts  int

	// Scheduling windows (Table 1: 64 Int, 64 FP, 32 Mem).
	SchedInt int
	SchedFP  int
	SchedMem int

	// Physical registers (Table 1: 192 int, 192 fp).
	IntRegs int
	FPRegs  int

	// Checkpoints (Table 1: 8 map table checkpoints).
	Checkpoints  int
	CkptInterval int // max micro-ops per checkpoint

	// Branch handling.
	MispredictPenalty uint64 // minimum redirect penalty (Table 1: 20)

	// Primary load/store queues.
	L1STQSize    int
	L1STQLatency uint64
	LQSize       int // load buffer capacity (Table 1: 1K)

	// Single-level STQ size for DesignBaseline/DesignLargeSTQ.
	STQSize int

	// Hierarchical design.
	L2STQSize    int
	L2STQLatency uint64
	MTBSize      int

	// SRL design.
	SRLSize        int
	UseLCF         bool
	LCFSize        int
	LCFHash        lsq.HashKind
	LCFCounterBits uint
	UseIndexedFwd  bool
	UseFC          bool // false = use the data cache for temporary updates (§6.5)
	FCSize         int
	FCAssoc        int
	LoadBufAssoc   int // secondary load buffer associativity
	LoadBufPolicy  lsq.OverflowPolicy
	LoadBufVictim  int
	UseWARTracker  bool // delay SRL head until prior loads execute (§4.3)

	// Memory hierarchy.
	Mem cachesim.Config

	// Memory dependence predictor SSIT size.
	StoreSetsSize int

	// Slice data buffer capacity (CFP).
	SDBSize int

	// Total in-flight window bound (ring capacity).
	WindowCap int

	// Workload control.
	Seed       uint64
	WarmupUops uint64 // committed uops before stats reset
	RunUops    uint64 // committed uops measured after warmup

	// External snoop injection (multiprocessor ordering traffic);
	// rate comes from the workload profile unless disabled here.
	SnoopsEnabled bool

	// Memory-ordering workload knobs, mirrored into the trace profile
	// (trace.Profile.FencePer1K/AcquireFrac/ReleaseFrac). All zero by
	// default: the generator then emits no ordering ops and replays the
	// exact pre-existing streams. FencePer1K full fences per 1000 uops;
	// AcquireFrac of load sites become load-acquires; ReleaseFrac of store
	// sites become store-releases. The core enforces release consistency
	// with Louvre-style version tracking (DESIGN.md §12).
	FencePer1K  int
	AcquireFrac float64
	ReleaseFrac float64

	// FaultDropSyncGate disables the ordering gates in the store drain
	// path (release stores drain without waiting for older loads; drains
	// ignore pending fences/acquires), so the extended oracle can prove it
	// catches ordering violations. Never set in real experiments.
	FaultDropSyncGate bool

	// EventSkip lets the cycle loop fast-forward quiescent gaps: when a
	// probe cycle proves no uop can make progress, the core jumps straight
	// to the next interesting cycle (completion-heap head, MSHR fill
	// return, SDB drain wake-up, front-end resume, temporary-update
	// retry, or timeline sample), accumulating the skipped width into
	// every cycle-denominated statistic. The jump is bit-for-bit
	// identical to stepping by construction (see internal/core/skip.go
	// and DESIGN.md §11), so EventSkip is excluded from Fingerprint:
	// skipped and stepped runs share memoized results. Default on;
	// `-noskip` in cmd/srlsim and cmd/experiments turns it off.
	EventSkip bool

	// Check runs the differential oracle (internal/oracle) in lockstep
	// with the pipeline: a fully searched program-ordered reference memory
	// system cross-checks every load's forwarding decision, every redo
	// drain, every checkpoint commit and the end-of-run image, plus
	// structure invariants (LCF coverage, SRL FIFO order, load-buffer
	// monotonicity, WAR gating). Divergences land in Results.Divergences;
	// they never abort the run. Checking observes, it never perturbs:
	// a checked run's timing results are bit-identical to an unchecked one.
	Check bool

	// FaultInvertFwdAge injects a deliberate forwarding-age bug (the
	// Forwarding Cache's storeSeq < loadSeq eligibility comparison is
	// inverted) so the checker and fuzzer can prove they catch it.
	// Never set in real experiments.
	FaultInvertFwdAge bool

	// Obs enables run observability: the cycle-window time-series sampler
	// and the typed event trace (see internal/obs). The zero value
	// disables both; a disabled run pays one pointer comparison per cycle
	// and allocates nothing. Obs is part of the config fingerprint, so
	// observed and unobserved runs memoize separately.
	Obs obs.Config
}

// DefaultConfig returns the Table 1 baseline machine with the given store
// design selected and paper-default secondary structures (48-entry L1 STQ,
// 1K SRL, 2K-entry 3-PAX LCF, 256-entry 4-way FC, 1K-entry 8-cycle L2 STQ,
// 1K-entry load buffer).
func DefaultConfig(d StoreDesign) Config {
	return Config{
		Design:      d,
		AllocWidth:  4,
		IssueWidth:  6,
		RetireWidth: 4,
		LoadPorts:   1,
		StorePorts:  1,

		SchedInt: 64,
		SchedFP:  64,
		SchedMem: 32,

		IntRegs: 192,
		FPRegs:  192,

		Checkpoints:  8,
		CkptInterval: 448,

		MispredictPenalty: 20,

		L1STQSize:    48,
		L1STQLatency: 3,
		LQSize:       1024,

		STQSize: 48,

		L2STQSize:    1024,
		L2STQLatency: 8,
		MTBSize:      1024,

		SRLSize:        1024,
		UseLCF:         true,
		LCFSize:        2048,
		LCFHash:        lsq.Hash3PAX,
		LCFCounterBits: 6,
		UseIndexedFwd:  true,
		UseFC:          true,
		FCSize:         256,
		FCAssoc:        4,
		LoadBufAssoc:   8,
		LoadBufPolicy:  lsq.OverflowVictim,
		LoadBufVictim:  16,
		UseWARTracker:  true,

		Mem: cachesim.DefaultConfig(),

		StoreSetsSize: 4096,

		SDBSize:   4096,
		WindowCap: 8192,

		Seed:       1,
		WarmupUops: 50_000,
		RunUops:    250_000,

		SnoopsEnabled: true,
		EventSkip:     true,
	}
}

// Validate checks internal consistency and returns a descriptive error.
func (c *Config) Validate() error {
	switch {
	case c.AllocWidth <= 0 || c.IssueWidth <= 0:
		return fmt.Errorf("core: widths must be positive")
	case c.Checkpoints < 2:
		return fmt.Errorf("core: need at least 2 checkpoints")
	case c.CkptInterval <= 0:
		return fmt.Errorf("core: checkpoint interval must be positive")
	case c.WindowCap < c.CkptInterval*2:
		return fmt.Errorf("core: window cap %d too small for checkpoint interval %d", c.WindowCap, c.CkptInterval)
	case c.RunUops == 0:
		return fmt.Errorf("core: RunUops must be positive")
	case c.FencePer1K < 0 || c.FencePer1K > 1000:
		return fmt.Errorf("core: FencePer1K %d out of range [0,1000]", c.FencePer1K)
	case c.AcquireFrac < 0 || c.AcquireFrac > 1:
		return fmt.Errorf("core: AcquireFrac %v out of range [0,1]", c.AcquireFrac)
	case c.ReleaseFrac < 0 || c.ReleaseFrac > 1:
		return fmt.Errorf("core: ReleaseFrac %v out of range [0,1]", c.ReleaseFrac)
	}
	if err := c.Mem.Validate(); err != nil {
		return err
	}
	if c.Design == DesignSRL {
		if c.SRLSize <= 0 {
			return fmt.Errorf("core: SRL size must be positive")
		}
		if c.UseLCF && c.LCFSize&(c.LCFSize-1) != 0 {
			return fmt.Errorf("core: LCF size must be a power of two")
		}
		if c.UseIndexedFwd && !c.UseLCF {
			return fmt.Errorf("core: indexed forwarding requires the LCF")
		}
	}
	return nil
}
