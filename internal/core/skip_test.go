package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"srlproc/internal/obs"
	"srlproc/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_points.json")

// runSkipVariant runs cfg/suite with EventSkip forced to the given value
// and returns the marshaled Results document. Identity tests must build
// cores directly (New + RunContext): EventSkip is normalized out of the
// fingerprint, so going through the sweep/memo layers would hand both
// variants the same cached result and prove nothing.
func runSkipVariant(t testing.TB, cfg Config, suite trace.Suite, skip bool) (*Results, []byte) {
	t.Helper()
	cfg.EventSkip = skip
	c, err := New(cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, b
}

// skipIdentityPoints is the design-point matrix the skip-identity and
// golden tests share: every store organisation (plus the no-LCF SRL
// ablation) crossed with three workload suites — 18 points.
func skipIdentityPoints() []struct {
	Name  string
	Cfg   Config
	Suite trace.Suite
} {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"baseline", shortCfg(DesignBaseline)},
		{"stq1024", func() Config {
			c := shortCfg(DesignLargeSTQ)
			c.STQSize = 1024
			return c
		}()},
		{"hier", shortCfg(DesignHierarchical)},
		{"srl", shortCfg(DesignSRL)},
		{"filtered", shortCfg(DesignFilteredSTQ)},
		{"srl-nolcf", func() Config {
			c := shortCfg(DesignSRL)
			c.UseLCF = false
			c.UseIndexedFwd = false
			return c
		}()},
	}
	suites := []trace.Suite{trace.SFP2K, trace.SINT2K, trace.WEB}
	var pts []struct {
		Name  string
		Cfg   Config
		Suite trace.Suite
	}
	for _, cc := range configs {
		for _, su := range suites {
			pts = append(pts, struct {
				Name  string
				Cfg   Config
				Suite trace.Suite
			}{fmt.Sprintf("%s/%s", cc.name, su), cc.cfg, su})
		}
	}
	return pts
}

// TestSkipIdentityGoldenPoints is the bit-for-bit gate for event-driven
// cycle skipping: every golden design point must produce a byte-identical
// Results document with EventSkip on and off, and both must match the
// checked-in golden (regenerate with `go test ./internal/core -update`).
func TestSkipIdentityGoldenPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep skipped in -short mode")
	}
	goldenPath := filepath.Join("testdata", "golden_points.json")
	golden := map[string]json.RawMessage{}
	if !*updateGolden {
		b, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden file (run go test ./internal/core -update): %v", err)
		}
		if err := json.Unmarshal(b, &golden); err != nil {
			t.Fatal(err)
		}
	}
	fresh := map[string]json.RawMessage{}
	for _, pt := range skipIdentityPoints() {
		pt := pt
		t.Run(pt.Name, func(t *testing.T) {
			_, skipped := runSkipVariant(t, pt.Cfg, pt.Suite, true)
			_, stepped := runSkipVariant(t, pt.Cfg, pt.Suite, false)
			if string(skipped) != string(stepped) {
				t.Fatalf("EventSkip changed the Results document\n--- skip ---\n%s\n--- step ---\n%s", skipped, stepped)
			}
			fresh[pt.Name] = skipped
			if !*updateGolden {
				want, ok := golden[pt.Name]
				if !ok {
					t.Fatalf("point %s missing from %s (run -update)", pt.Name, goldenPath)
				}
				// The golden file stores each document re-indented;
				// compare compacted forms.
				var wantC bytes.Buffer
				if err := json.Compact(&wantC, want); err != nil {
					t.Fatal(err)
				}
				if wantC.String() != string(skipped) {
					t.Fatalf("drifted from golden\n--- got ---\n%s\n--- want ---\n%s", skipped, wantC.String())
				}
			}
		})
	}
	if *updateGolden && !t.Failed() {
		b, err := json.MarshalIndent(fresh, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d points)", goldenPath, len(fresh))
	}
}

// TestSkipIdentityObserved pins the stronger satellite guarantee: with the
// timeline sampler and event trace enabled, the full obs.MetricSet and
// every timeline sample — not just the top-level Results counters — are
// identical with skipping on and off. The sampler's nextSample is a
// first-class wake event, so observation changes skip decisions' timing
// but never their outcomes.
func TestSkipIdentityObserved(t *testing.T) {
	for _, d := range []StoreDesign{DesignSRL, DesignHierarchical, DesignBaseline} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			cfg := shortCfg(d)
			cfg.Obs = obs.DefaultConfig()
			cfg.Obs.SampleEvery = 512
			skipRes, skipJSON := runSkipVariant(t, cfg, trace.SFP2K, true)
			stepRes, stepJSON := runSkipVariant(t, cfg, trace.SFP2K, false)

			if skipRes.Metrics != stepRes.Metrics {
				t.Errorf("MetricSet differs:\n--- skip ---\n%s\n--- step ---\n%s",
					skipRes.Metrics.String(), stepRes.Metrics.String())
			}
			ss, ts := skipRes.Timeline.Samples(), stepRes.Timeline.Samples()
			if len(ss) != len(ts) {
				t.Fatalf("timeline length differs: %d vs %d samples", len(ss), len(ts))
			}
			for i := range ss {
				if ss[i] != ts[i] {
					t.Fatalf("timeline sample %d differs:\nskip: %+v\nstep: %+v", i, ss[i], ts[i])
				}
			}
			if string(skipJSON) != string(stepJSON) {
				t.Fatal("observed Results document differs between skip and step")
			}
		})
	}
}

// TestSkipActuallySkips proves the fast path engages: every store design
// spends stretches in miss shadows with the whole machine quiescent, so
// the loop must take meaningfully fewer iterations than it simulates
// cycles.
func TestSkipActuallySkips(t *testing.T) {
	for _, d := range []StoreDesign{DesignBaseline, DesignLargeSTQ, DesignHierarchical, DesignSRL} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			cfg := shortCfg(d)
			cfg.EventSkip = true
			c, err := New(cfg, trace.SFP2K)
			if err != nil {
				t.Fatal(err)
			}
			iters := uint64(0)
			for !c.Done() {
				c.StepCycle()
				c.maybeSkip()
				iters++
			}
			c.Finalize()
			if iters >= c.cycle {
				t.Fatalf("nothing skipped: %d iterations for %d cycles", iters, c.cycle)
			}
			t.Logf("%d cycles in %d iterations (%.1f%% skipped)",
				c.cycle, iters, 100*float64(c.cycle-iters)/float64(c.cycle))
		})
	}
}

// TestSkipDeterminism: two skip-enabled runs of the same point must be
// byte-identical (the skip engine holds no hidden nondeterminism).
func TestSkipDeterminism(t *testing.T) {
	cfg := shortCfg(DesignSRL)
	_, a := runSkipVariant(t, cfg, trace.SFP2K, true)
	_, b := runSkipVariant(t, cfg, trace.SFP2K, true)
	if string(a) != string(b) {
		t.Fatal("skip-enabled run is not deterministic")
	}
}

// TestRunContextCancelledMidSkip: cancellation latency must stay
// wall-clock bounded when single loop iterations cover thousands of
// simulated cycles — the ctx poll counts iterations, not cycles.
func TestRunContextCancelledMidSkip(t *testing.T) {
	cfg := DefaultConfig(DesignSRL)
	cfg.WarmupUops = 0
	cfg.RunUops = 50_000_000 // far longer than the test will allow
	cfg.EventSkip = true
	c, err := New(cfg, trace.SFP2K)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := c.RunContext(ctx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v (res=%v)", err, res)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

// TestFingerprintIgnoresEventSkip: skipping is identity-preserving, so a
// skipped and a stepped run of the same point must share memoized and
// persisted results.
func TestFingerprintIgnoresEventSkip(t *testing.T) {
	a := DefaultConfig(DesignSRL)
	b := DefaultConfig(DesignSRL)
	a.EventSkip = true
	b.EventSkip = false
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("EventSkip leaked into the config fingerprint")
	}
	if PointFingerprint(a, trace.SFP2K) != PointFingerprint(b, trace.SFP2K) {
		t.Fatal("EventSkip leaked into the point fingerprint")
	}
}
