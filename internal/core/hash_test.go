package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"srlproc/internal/trace"
)

func TestFingerprintStableAndSensitive(t *testing.T) {
	a := DefaultConfig(DesignSRL)
	b := DefaultConfig(DesignSRL)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs hash differently")
	}
	// Every class of field must perturb the hash: top-level, nested memory
	// config, seed and run-length workload control.
	mods := []func(*Config){
		func(c *Config) { c.Design = DesignBaseline },
		func(c *Config) { c.SRLSize = 512 },
		func(c *Config) { c.Mem.MemLatency = 400 },
		func(c *Config) { c.Seed = 99 },
		func(c *Config) { c.RunUops = 123 },
		func(c *Config) { c.UseLCF = false },
	}
	seen := map[uint64]bool{a.Fingerprint(): true}
	for i, mod := range mods {
		c := DefaultConfig(DesignSRL)
		mod(&c)
		fp := c.Fingerprint()
		if seen[fp] {
			t.Fatalf("mod %d did not change the fingerprint", i)
		}
		seen[fp] = true
	}
}

func TestPointFingerprintIncludesSuite(t *testing.T) {
	cfg := DefaultConfig(DesignSRL)
	if PointFingerprint(cfg, trace.SFP2K) == PointFingerprint(cfg, trace.SINT2K) {
		t.Fatal("suite not part of the point fingerprint")
	}
	if PointFingerprint(cfg, trace.SFP2K) != PointFingerprint(cfg, trace.SFP2K) {
		t.Fatal("point fingerprint unstable")
	}
}

func TestRunContextCancellation(t *testing.T) {
	cfg := DefaultConfig(DesignSRL)
	cfg.WarmupUops = 0
	cfg.RunUops = 50_000_000 // far longer than the test will allow
	c, err := New(cfg, trace.SINT2K)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := c.RunContext(ctx)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned results")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

func TestRunContextCompletesUncancelled(t *testing.T) {
	cfg := DefaultConfig(DesignBaseline)
	cfg.WarmupUops = 500
	cfg.RunUops = 4_000
	c, err := New(cfg, trace.PROD)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Uops < cfg.RunUops {
		t.Fatalf("short run: %d uops", res.Uops)
	}
}
