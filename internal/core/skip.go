package core

import "srlproc/internal/obs"

// Event-driven cycle skipping (DESIGN.md §11).
//
// The latency-tolerant designs spend long stretches inside a miss shadow
// doing nothing but ticking c.cycle: every queue blocked, every scheduler
// empty of issuable work, the only per-cycle effect a handful of linear
// "stall/occupancy cycles" counters. This file fast-forwards those gaps
// while staying bit-for-bit identical to plain stepping, by construction:
//
//  1. Arm. After a real cycle, compute the next interesting cycle e — the
//     earliest of the completion-heap head, an MSHR fill return, the SDB
//     head's miss-return wake-up, the front-end redirect resume, the §6.5
//     temporary-update retry, and the timeline sampler's next sample. If
//     e is at least three cycles out, snapshot the machine fingerprint,
//     the statistics, and the structure-activity counters.
//  2. Probe. The next cycle runs for real — no behaviour is guessed.
//  3. Verify. If the probe changed nothing except whitelisted linear
//     per-cycle counters (the stall breakdown and the cycles-condition
//     metrics), every cycle until e must repeat it exactly: the machine
//     state is unchanged, every cycle-gated branch in the step functions
//     compares c.cycle against one of the enumerated event thresholds
//     (all >= e), and the only RNG consumer on a quiescent cycle is the
//     snoop coin, which applySkip replays draw-for-draw.
//  4. Jump. Extrapolate the probe's whitelisted deltas across the gap
//     and set c.cycle = e-1, so the next real step lands exactly on e.
//
// If verification fails — any counter outside the whitelist moved, any
// structure changed length, any fingerprint field differs — the probe was
// just a normal cycle and stepping continues; nothing was skipped, so
// nothing can be wrong. The golden design-point suite, the determinism
// tests, the regression corpus and the oracle sweep all run with EventSkip
// on and off and require byte-identical results (skip_test.go,
// internal/check).

// skipFP is the structural fingerprint of everything a quiescent cycle
// must leave untouched. It is a plain comparable value: verification is
// one struct compare. Lengths stand in for container contents — any
// insert/remove path that could change contents without changing a length
// here also moves an activity counter or a non-whitelisted statistic,
// which verifySkip checks separately.
type skipFP struct {
	committed         uint64
	lastCommittedSeq  uint64
	storeCounter      uint64
	fetchResume       uint64
	tempUpdateStall   uint64
	ckptSum           uint64
	ordVer            uint64
	verBase           uint64
	verTotal          int
	pendingSyncsLen   int
	outstandingMisses int
	loadsInWindow     int
	storesInWindow    int
	schedInt          int
	schedFP           int
	schedMem          int
	regsInt           int
	regsFP            int
	unknownAddrStores int
	readyLen          int
	cmplLen           int
	sdbLen            int
	sdbCount          int
	pendDrainLen      int
	srlStalledLen     int
	unknownStoresLen  int
	deferredLen       int
	winLen            int
	replayPos         int
	l1stqLen          int
	l2stqLen          int
	srlLen            int
	ldbufLen          int
	ckptsLen          int
	nextCkptID        int
	pendingFetch      bool
	pendingSnoopFire  bool
	forceShortCkpt    bool
	measuring         bool
	redoActive        bool
}

// skipResCount is the number of Results counters captured for
// verification; the first skipResLinear of them must be exactly equal
// across the probe, the rest (the per-cycle stall breakdown) are
// whitelisted to advance linearly and are extrapolated across the gap.
const (
	skipResLinear = 17
	skipResCount  = 24
)

// skipSnap is the armed snapshot the probe cycle is verified against.
type skipSnap struct {
	fp  skipFP
	res [skipResCount]uint64
	met obs.MetricSet
	act activity
}

// skipState is the per-core skip engine, embedded by value in Core so the
// steady state stays allocation-free.
type skipState struct {
	armed bool
	// fails counts consecutive failed verifications and wait is the
	// arming backoff they impose. Snapshot capture is several times the
	// cost of one quiescent step, so arming every cycle of an active
	// phase — where verification keeps failing — is a net loss; backing
	// off exponentially (4..64 cycles) caps that overhead at a few
	// percent while a long gap still gets armed within its first
	// sliver. Backoff shapes only *when* a skip is attempted, never what
	// a skip produces, so it cannot affect results.
	fails uint32
	wait  uint32
	snap  skipSnap
}

// skipMinGap is the shortest event distance worth probing. A capture +
// verify round costs roughly ten quiescent steps, so chasing the short
// gaps between L1/L2 fill returns loses wall clock; the DRAM-latency miss
// shadows the latency-tolerant designs create are hundreds of cycles and
// carry the whole win.
const skipMinGap = 16

// skipMetricLinear marks the typed metrics a quiescent cycle advances
// linearly (at most a fixed amount per cycle while the gating condition
// holds): the cycles-condition occupancy metrics, the store-queue stall
// mode counters, and the SRL drain/stall gating counters. Everything else
// must stay exactly equal across the probe or the skip is vetoed — in
// particular MetricSnoopsInjected, the temporary-update stall metrics and
// the drain-conflict counters, all of which mark real one-off events.
var skipMetricLinear = func() [obs.NumMetrics]bool {
	var lin [obs.NumMetrics]bool
	for _, m := range []obs.Metric{
		obs.MetricCyclesMissOutstanding,
		obs.MetricCyclesSRLNonEmpty,
		obs.MetricCyclesSRLHeadReady,
		obs.MetricSTQStallSRLMode,
		obs.MetricSTQStallMissMode,
		obs.MetricSTQStallQuiet,
		obs.MetricSRLDrainWaitData,
		obs.MetricSRLDrainWaitWAR,
		obs.MetricSRLStallLoadCycles,
		// Ordering waits are per-cycle retries while the gating condition
		// holds: a deferred fence re-checks fenceReady each cycle, and a
		// gated SRL head re-checks its release/sync gate each drain attempt.
		// MetricLoadsBlockedOnSync is deliberately absent — blocking a load
		// is a one-off event (the load then parks on a waiter list).
		obs.MetricSRLDrainWaitRelease,
		obs.MetricSRLDrainWaitSync,
		obs.MetricFenceWaitCycles,
	} {
		lin[m] = true
	}
	return lin
}()

// skipFP captures the structural fingerprint. Every accessor here is pure
// (no lazy pops, no counter bumps): c.sdb.Len() counts raw heap entries
// rather than going through sdbHead, so capture itself perturbs nothing.
func (c *Core) skipFPCapture() skipFP {
	fp := skipFP{
		committed:         c.committed,
		lastCommittedSeq:  c.lastCommittedSeq,
		storeCounter:      c.storeCounter,
		fetchResume:       c.fetchResume,
		tempUpdateStall:   c.tempUpdateStall,
		ckptSum:           c.ckptSumHash(),
		ordVer:            c.ordVer,
		verBase:           c.verBase,
		verTotal:          c.verTotal,
		pendingSyncsLen:   len(c.pendingSyncs),
		outstandingMisses: c.outstandingMisses,
		loadsInWindow:     c.loadsInWindow,
		storesInWindow:    c.storesInWindow,
		schedInt:          c.schedInt,
		schedFP:           c.schedFP,
		schedMem:          c.schedMem,
		regsInt:           c.regsInt,
		regsFP:            c.regsFP,
		unknownAddrStores: c.unknownAddrStores,
		readyLen:          c.ready.Len(),
		cmplLen:           c.cmpl.Len(),
		sdbLen:            c.sdb.Len(),
		sdbCount:          c.sdbCount,
		pendDrainLen:      len(c.pendDrain),
		srlStalledLen:     len(c.srlStalled),
		unknownStoresLen:  len(c.unknownStores),
		deferredLen:       len(c.deferred),
		winLen:            c.win.len(),
		replayPos:         c.replayPos,
		l1stqLen:          c.l1stq.Len(),
		srlLen:            c.srlLen(),
		ldbufLen:          c.ldbuf.Len(),
		ckptsLen:          len(c.ckpts),
		nextCkptID:        c.nextCkptID,
		pendingFetch:      c.pendingFetch != nil,
		pendingSnoopFire:  c.pendingSnoopFire,
		forceShortCkpt:    c.forceShortCkpt,
		measuring:         c.measuring,
		redoActive:        c.redoActive,
	}
	if c.l2stq != nil {
		fp.l2stqLen = c.l2stq.Len()
	}
	return fp
}

// ckptSumHash folds the mutable per-checkpoint bookkeeping (id, closed,
// allocated/pending uop counts, start sequence) into one word, so a probe
// that only closed a checkpoint — maybeCloseCkptOnStall's one-shot — still
// vetoes the skip.
func (c *Core) ckptSumHash() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h = (h ^ v) * 0x9E3779B97F4A7C15
	}
	for _, ck := range c.ckpts {
		mix(uint64(ck.id))
		if ck.closed {
			mix(1)
		} else {
			mix(0)
		}
		mix(uint64(ck.uops))
		mix(uint64(ck.pending))
		mix(ck.startSeq)
	}
	return h
}

// skipResCapture snapshots the Results counters verification cares about.
// Indices < skipResLinear must be equal across the probe; the tail is the
// per-cycle stall breakdown, whitelisted for linear extrapolation.
func (c *Core) skipResCapture() [skipResCount]uint64 {
	r := &c.res
	return [skipResCount]uint64{
		r.Loads, r.Stores,
		r.MissDependentUops, r.MissDependentStores,
		r.RedoneStores, r.SRLLoadStalls, r.IndexedForwards,
		r.L1STQForwards, r.L2STQForwards, r.FCForwards,
		r.MemDepViolations, r.SnoopViolations, r.OverflowViolations,
		r.BranchMispredicts, r.Restarts, r.ReplayedUops,
		r.SpecDiscards,
		// Linear tail (order matches addSkipDeltas).
		r.StallSTQ, r.StallLQ, r.StallSched, r.StallRegs,
		r.StallCkpt, r.StallWindow, r.StallSDB,
	}
}

// nextEventCycle returns the earliest future cycle at which the machine
// can do something a quiescent cycle does not: pop a completion, see a
// memory fill return, wake the SDB head, resume the front end after a
// redirect, retry a §6.5 temporary update, or take a timeline sample.
// These are exactly the c.cycle comparisons the step functions make; any
// behaviour not gated by one of them is caught by the probe instead.
//
// Any event before the horizon makes a skip pointless, so the sources are
// consulted cheapest-first and the walk aborts (ok=false) on the first
// near event. In active phases the completion heap almost always has a
// near head, so this runs per cycle without ever touching the MSHR map.
func (c *Core) nextEventCycle(horizon uint64) (e uint64, ok bool) {
	best := ^uint64(0)
	// consider folds one event in; false means the event is inside the
	// horizon and the caller must bail.
	consider := func(ev uint64) bool {
		if ev <= c.cycle {
			return true // already due; gating logic handles it each step
		}
		if ev < horizon {
			return false
		}
		if ev < best {
			best = ev
		}
		return true
	}
	if c.cmpl.Len() > 0 {
		k, _ := c.cmpl.Min()
		if !consider(k) {
			return 0, false
		}
	}
	if !consider(c.fetchResume) {
		return 0, false
	}
	if !consider(c.tempUpdateStall) {
		return 0, false
	}
	if c.obsrv != nil && c.obsrv.nextSample != ^uint64(0) {
		if !consider(c.obsrv.nextSample) {
			return 0, false
		}
	}
	if d := c.sdbHead(); d != nil && d.missReturn > 0 {
		if !consider(d.missReturn) {
			return 0, false
		}
	}
	if f, fok := c.mem.EarliestPendingFill(c.cycle); fok {
		if !consider(f) {
			return 0, false
		}
	}
	return best, best != ^uint64(0)
}

// maybeSkip runs after every real cycle when Config.EventSkip is set: it
// verifies and applies an armed skip, then re-arms for the next gap when
// the next event is far enough out to be worth a probe.
func (c *Core) maybeSkip() {
	if c.skip.armed {
		c.skip.armed = false
		if c.verifySkip() {
			c.applySkip()
			c.skip.fails = 0
		} else {
			if c.skip.fails < 4 {
				c.skip.fails++
			}
			c.skip.wait = 1 << (c.skip.fails + 1)
		}
	}
	if c.skip.wait > 0 {
		c.skip.wait--
		return
	}
	if c.pendingSnoopFire {
		// The fast-forward already drew a snoop arrival for the next
		// cycle; it will be anything but quiescent.
		return
	}
	// Compute the event before capturing the snapshot: sdbHead may lazily
	// pop squashed heap tops, and those pops must land inside the
	// captured fingerprint, not between it and the probe.
	if _, ok := c.nextEventCycle(c.cycle + skipMinGap); !ok {
		return
	}
	c.skip.snap.fp = c.skipFPCapture()
	c.skip.snap.res = c.skipResCapture()
	c.skip.snap.met = c.metrics
	c.skip.snap.act = c.snapshotActivity()
	c.skip.armed = true
}

// verifySkip reports whether the probe cycle was quiescent: the
// fingerprint and structure-activity counters are unchanged, every
// non-whitelisted statistic is unchanged, and only the linear per-cycle
// counters may have advanced.
func (c *Core) verifySkip() bool {
	s := &c.skip.snap
	if c.skipFPCapture() != s.fp {
		return false
	}
	if c.snapshotActivity() != s.act {
		return false
	}
	cur := c.skipResCapture()
	for i := 0; i < skipResLinear; i++ {
		if cur[i] != s.res[i] {
			return false
		}
	}
	for m, v := range c.metrics {
		if !skipMetricLinear[m] && v != s.met[m] {
			return false
		}
	}
	return true
}

// applySkip jumps from a verified-quiescent probe cycle to just before
// the next event, extrapolating the probe's whitelisted per-cycle deltas
// across the gap. The event is recomputed fresh rather than trusted from
// arm time (the probe may have moved it), and the snoop RNG is replayed
// one draw per skipped cycle: if a draw comes up heads, the jump stops
// just before that cycle and pendingSnoopFire makes injectSnoops consume
// the already-drawn coin when the cycle runs for real.
func (c *Core) applySkip() {
	e, ok := c.nextEventCycle(c.cycle + 2)
	if !ok {
		return
	}
	w := e - 1 - c.cycle
	if c.cfg.SnoopsEnabled && c.prof.SnoopPer1KCycles > 0 {
		p := c.prof.SnoopPer1KCycles / 1000.0
		for done := uint64(0); done < w; done++ {
			if c.snoopRNG.Bool(p) {
				c.addSkipDeltas(done)
				c.cycle += done
				c.pendingSnoopFire = true
				return
			}
		}
	}
	c.addSkipDeltas(w)
	c.cycle += w
}

// addSkipDeltas accumulates w more copies of the probe cycle's whitelisted
// deltas: the stall breakdown and the linear cycles-condition metrics.
// Everything else was verified unchanged, and the occupancy trackers need
// nothing — stats.OccupancyTracker.Set accrues (cycle - lastCycle) at the
// last level, so the next real Set call accounts the gap exactly as
// per-cycle calls at an unchanged level would have.
func (c *Core) addSkipDeltas(w uint64) {
	if w == 0 {
		return
	}
	s := &c.skip.snap
	r := &c.res
	r.StallSTQ += (r.StallSTQ - s.res[17]) * w
	r.StallLQ += (r.StallLQ - s.res[18]) * w
	r.StallSched += (r.StallSched - s.res[19]) * w
	r.StallRegs += (r.StallRegs - s.res[20]) * w
	r.StallCkpt += (r.StallCkpt - s.res[21]) * w
	r.StallWindow += (r.StallWindow - s.res[22]) * w
	r.StallSDB += (r.StallSDB - s.res[23]) * w
	for m, lin := range skipMetricLinear {
		if lin {
			c.metrics[m] += (c.metrics[m] - s.met[m]) * w
		}
	}
}
