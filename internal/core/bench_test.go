package core

import (
	"context"
	"testing"

	"srlproc/internal/trace"
)

// benchCore builds a core and warms it past the measurement reset so the
// pools and heaps have grown to their working size.
func benchCore(b *testing.B, d StoreDesign) *Core {
	b.Helper()
	cfg := DefaultConfig(d)
	cfg.WarmupUops = 5_000
	cfg.RunUops = 1 << 60 // never Done during the benchmark
	c, err := New(cfg, trace.SINT2K)
	if err != nil {
		b.Fatal(err)
	}
	for c.MeasuredUops() < 20_000 {
		c.StepCycle()
	}
	return c
}

// BenchmarkCycleLoop measures the steady-state cost of one simulated cycle
// on a warmed core — the innermost signal the CI bench gate watches. After
// the warm-up lap, allocs/op must stay at (or within rounding of) zero.
func BenchmarkCycleLoop(b *testing.B) {
	for _, d := range []StoreDesign{DesignBaseline, DesignSRL} {
		b.Run(d.String(), func(b *testing.B) {
			c := benchCore(b, d)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.StepCycle()
			}
		})
	}
}

// BenchmarkCycleLoopSkip measures event-driven cycle skipping (skip.go)
// against plain stepping on whole runs of the small-STQ baseline in the
// paper's motivating regime: a deep memory latency (8000 cycles, the
// "growing memory gap" end of Figure 1) with the prefetcher off, so every
// miss is a full DRAM shadow and the commit-blocked machine sits fully
// quiescent for most of its cycles. The two sub-benchmarks must report
// identical sim-cycles/op: they simulate the same machine, or the
// identity gate (TestSkipIdentityGoldenPoints) is broken. At the default
// 800-cycle latency with prefetching the skipped cycles are so cheap the
// win shrinks to 1-3%; here it is the headline number the CI gate pins.
func BenchmarkCycleLoopSkip(b *testing.B) {
	for _, skip := range []bool{true, false} {
		name := "skip"
		if !skip {
			name = "step"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig(DesignBaseline)
			cfg.WarmupUops = 5_000
			cfg.RunUops = 20_000
			cfg.Mem.MemLatency = 8000
			cfg.Mem.PrefetchOn = false
			cfg.EventSkip = skip
			b.ReportAllocs()
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := New(cfg, trace.SFP2K)
				if err != nil {
					b.Fatal(err)
				}
				res, err := c.RunContext(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
		})
	}
}

// BenchmarkReadyHeap measures the scheduler ready-heap push/pop cycle with
// the real readyEntry payload (the hot pair of the issue stage).
func BenchmarkReadyHeap(b *testing.B) {
	var h readyHeap
	h.Grow(256)
	var uops [64]dynUop
	for i := range uops {
		uops[i].u.Seq = uint64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range uops {
			pushReady(&h, &uops[j])
		}
		for h.Len() > 0 {
			h.PopMin()
		}
	}
}

// BenchmarkIssueWidth measures the cycle loop at different issue widths —
// the knob design-point sweeps scale along, so its cost curve is the one a
// perf regression distorts first.
func BenchmarkIssueWidth(b *testing.B) {
	for _, w := range []int{2, 6, 12} {
		b.Run(map[int]string{2: "w2", 6: "w6", 12: "w12"}[w], func(b *testing.B) {
			cfg := DefaultConfig(DesignSRL)
			cfg.WarmupUops = 5_000
			cfg.RunUops = 1 << 60
			cfg.IssueWidth = w
			c, err := New(cfg, trace.SINT2K)
			if err != nil {
				b.Fatal(err)
			}
			for c.MeasuredUops() < 20_000 {
				c.StepCycle()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.StepCycle()
			}
		})
	}
}

// TestSteadyStateZeroAlloc is the allocation budget as a hard test: once a
// core is warm, stepping it must not allocate on the hot path. A small
// budget absorbs the rare amortized growth event (a slice or map passing a
// new high-water mark deep into the run).
func TestSteadyStateZeroAlloc(t *testing.T) {
	for _, d := range []StoreDesign{DesignBaseline, DesignSRL} {
		t.Run(d.String(), func(t *testing.T) {
			cfg := DefaultConfig(d)
			cfg.WarmupUops = 5_000
			cfg.RunUops = 1 << 60
			c, err := New(cfg, trace.SINT2K)
			if err != nil {
				t.Fatal(err)
			}
			for c.MeasuredUops() < 50_000 {
				c.StepCycle()
			}
			const cycles = 2_000
			avg := testing.AllocsPerRun(10, func() {
				for i := 0; i < cycles; i++ {
					c.StepCycle()
				}
			})
			// Budget: well under one allocation per hundred cycles.
			if avg > cycles/100 {
				t.Fatalf("steady state allocates %.1f times per %d cycles", avg, cycles)
			}
		})
	}
}
