package core

import (
	"srlproc/internal/cachesim"
	"srlproc/internal/isa"
	"srlproc/internal/lsq"
	"srlproc/internal/obs"
	"srlproc/internal/oracle"
)

// cachesimSpecResult aliases the cache's speculative-write result.
type cachesimSpecResult = cachesim.SpecWriteResult

// poisonThreshold: a load whose data will take longer than this many cycles
// is treated as a long-latency miss — its destination is poisoned and its
// forward slice drains out of the pipeline (CFP).
const poisonThreshold = 50

// execute dispatches an issued uop (all sources available and clean).
func (c *Core) execute(d *dynUop) {
	switch d.u.Class {
	case isa.Load:
		c.executeLoad(d)
	case isa.Fence:
		// A fence performs only once every older load has performed, every
		// older sync has performed, and every older store has drained out of
		// the store FIFOs (fenceReady). Until then it retries each cycle
		// from the deferred list without leaving the scheduler.
		if !c.fenceReady(d) {
			c.metrics.Inc(obs.MetricFenceWaitCycles)
			c.deferOneCycle(d)
			return
		}
		c.leaveSched(d)
		d.issued = true
		pushCmpl(&c.cmpl, c.cycle+d.u.Class.Latency(), d)
	case isa.Store:
		// Address generation and data capture; the store's architectural
		// memory update happens later, in order, from the store queues.
		c.leaveSched(d)
		d.issued = true
		pushCmpl(&c.cmpl, c.cycle+d.u.Class.Latency(), d)
	default:
		c.leaveSched(d)
		d.issued = true
		pushCmpl(&c.cmpl, c.cycle+d.u.Class.Latency(), d)
	}
}

func (c *Core) leaveSched(d *dynUop) {
	if d.inSched {
		d.inSched = false
		c.schedFree(d.u.Class)
	}
}

// waitOn parks d in the scheduler until producer s is available. If s is
// already available the uop simply retries next cycle.
func (c *Core) waitOn(d, s *dynUop) {
	if !d.inSched {
		d.inSched = true
		c.schedTake(d.u.Class)
	}
	if s.done || s.poisoned || !s.allocated {
		c.deferOneCycle(d)
		return
	}
	c.addWaiter(s, d)
}

// deferOneCycle retries d next cycle (structural hazard such as a full
// MSHR file).
func (c *Core) deferOneCycle(d *dynUop) {
	c.deferred = append(c.deferred, d)
}

// blockOnStore makes load d wait for store s: if the store is part of the
// miss slice the load joins the slice (poison bits via the dependence
// predictor, Section 2.1); otherwise it waits in the scheduler.
func (c *Core) blockOnStore(d, s *dynUop) {
	d.memDep = ref(s)
	if s.poisoned && !s.done {
		c.leaveSched(d)
		c.drainToSDB(d)
		return
	}
	c.waitOn(d, s)
}

// predictedDependentStore returns the youngest older unknown-address store
// the store-sets predictor believes the load depends on, or nil.
func (c *Core) predictedDependentStore(d *dynUop, seqs []uint64) *dynUop {
	if !c.mdp.DependentOnAny(d.u.PC) {
		return nil
	}
	for _, sq := range seqs { // youngest first
		su := c.uopBySeq(sq)
		if su == nil || !su.allocated || su.done {
			continue
		}
		if c.mdp.Dependent(d.u.PC, su.u.PC) {
			return su
		}
	}
	return nil
}

// uopBySeq finds the in-window dynamic uop with the given sequence number.
func (c *Core) uopBySeq(seq uint64) *dynUop {
	if pos := c.win.indexOfSeq(seq); pos >= 0 {
		return c.win.at(pos)
	}
	return nil
}

// executeLoad runs the full load pipeline: dependence screening, L1 STQ
// search, design-specific secondary forwarding (L2 STQ / FC / LCF+SRL), and
// finally the cache hierarchy.
func (c *Core) executeLoad(d *dynUop) {
	// 0. Release-consistency gate (ordering.go): a load may not perform
	// past an unperformed older fence or load-acquire. The wait is
	// event-driven — the load parks on the sync's waiter list, or joins
	// the slice when the sync is itself miss-dependent. Once passed, the
	// gate stays passed (all older syncs were already allocated, and a
	// performed sync only un-performs through a squash that also squashes
	// this load), so retry paths that bypass executeLoad are safe.
	if s := c.pendingSyncBefore(d.u.Seq); s != nil {
		c.metrics.Inc(obs.MetricLoadsBlockedOnSync)
		c.blockOnStore(d, s)
		return
	}

	// 1. Screen against in-flight stores with unknown (poisoned) addresses
	// using the store-sets memory dependence predictor. A predicted
	// dependence on a slice store makes the load part of the slice
	// (Section 2.1).
	for _, s := range c.unknownStores {
		if s.u.Seq >= d.u.Seq || !s.allocated || s.done {
			continue
		}
		if c.mdp.Dependent(d.u.PC, s.u.PC) {
			c.blockOnStore(d, s)
			return
		}
	}

	// 2. Primary (L1) store queue CAM search. The filtered design screens
	// the search with its membership filter: a filter miss proves no
	// resolved store matches, and a load the dependence predictor considers
	// independent then skips the CAM entirely (the related-work power
	// optimisation) — accepting that a mispredicted dependence on a
	// still-unresolved store is caught later by the load buffer.
	var sr lsq.SearchResult
	if c.cfg.Design == DesignFilteredSTQ && !c.mtb.MightContain(d.u.Addr) &&
		(c.unknownAddrStores == 0 || !c.mdp.DependentOnAny(d.u.PC)) {
		c.metrics.Inc(obs.MetricFilteredSearchesSaved)
	} else {
		sr = c.l1stq.Search(d.u.Addr, d.u.Size, d.u.Seq)
	}
	// Unexecuted older stores have unknown addresses: the dependence
	// predictor decides whether the load proceeds past them.
	if sr.UnknownOlder {
		if s := c.predictedDependentStore(d, sr.UnknownSeqs); s != nil {
			c.blockOnStore(d, s)
			return
		}
	}
	if sr.Hit {
		if sr.PoisonedMatch {
			// Forwarding store's data is poisoned (or not yet captured):
			// the load blocks behind the store (a detected, not merely
			// predicted, memory dependence).
			if su := c.uopBySeq(sr.Entry.Seq); su != nil && !su.done {
				c.blockOnStore(d, su)
				return
			}
		}
		if sr.Entry.DataReady {
			c.finishLoadForward(d, sr.Entry.SRLIndex, c.cfg.L1STQLatency, oracle.FwdL1STQ)
			c.res.L1STQForwards++
			return
		}
	}

	// 3. Design-specific secondary forwarding.
	switch c.cfg.Design {
	case DesignHierarchical:
		if c.mtb.MightContain(d.u.Addr) {
			sr2 := c.l2stq.Search(d.u.Addr, d.u.Size, d.u.Seq)
			if sr2.UnknownOlder {
				if s := c.predictedDependentStore(d, sr2.UnknownSeqs); s != nil {
					c.blockOnStore(d, s)
					return
				}
			}
			if sr2.Hit {
				if sr2.PoisonedMatch {
					if su := c.uopBySeq(sr2.Entry.Seq); su != nil && !su.done {
						c.blockOnStore(d, su)
						return
					}
				}
				if sr2.Entry.DataReady {
					// Forwarding from the L2 STQ costs the L2 STQ's access
					// latency (8 cycles) — the disadvantage SRL forwarding
					// at L1-hit latency avoids (Section 6.1).
					c.finishLoadForward(d, sr2.Entry.SRLIndex, c.cfg.L2STQLatency, oracle.FwdL2STQ)
					c.res.L2STQForwards++
					return
				}
			}
		}
	case DesignSRL:
		if c.srlMode() {
			if c.fc != nil {
				if hit, ok := c.fc.Lookup(d.u.Addr, d.u.Seq); ok {
					c.finishLoadForward(d, hit.SRLIndex, c.cfg.L1STQLatency, oracle.FwdFC)
					c.res.FCForwards++
					return
				}
			} else if c.mem.L1.HasTempSpec(d.u.Addr) {
				// §6.5 variant: the data cache itself holds the youngest
				// independent store's temporary value for this line; the
				// load reads it at L1-hit latency. Relative age is not
				// recorded per line, so the load is treated as forwarded
				// from its youngest older store; an intervening dependent
				// store's later fill is caught by the load buffer.
				c.finishLoadForward(d, d.nearestStoreID, c.cfg.L1STQLatency, oracle.FwdTempCache)
				c.res.FCForwards++
				return
			}
			if !c.srl.Empty() {
				if c.lcf != nil {
					mayMatch, lastIdx := c.lcf.Probe(d.u.Addr)
					if mayMatch {
						if c.tryIndexedForward(d, lastIdx) {
							return
						}
						c.stallOnSRL(d)
						return
					}
					// Zero counter: provably no matching store in the SRL.
				} else if c.srl.HeadIndex() <= d.nearestStoreID {
					// No LCF (Figure 8's worst bar): a load cannot prove
					// the SRL holds no matching older store, so it stalls
					// until every older store has drained — in the miss
					// shadow just as in the redo phase. A shadow-resident
					// store's value lives only in the FC or temporary
					// cache, both of which evict; memory stays stale until
					// the redo drains, so reading it here is wrong data.
					c.stallOnSRL(d)
					return
				}
			}
		}
	}

	// 4. Data cache hierarchy.
	c.accessCacheForLoad(d)
}

// tryIndexedForward implements indexed forwarding (Section 4.3): read the
// SRL entry whose index the LCF recorded and do one full address+age check
// with a single comparator — no CAM, no search.
func (c *Core) tryIndexedForward(d *dynUop, lastIdx uint64) bool {
	if !c.cfg.UseIndexedFwd {
		return false
	}
	e := c.srl.IndexedRead(lastIdx)
	if e == nil {
		return false
	}
	if e.SRLIndex > d.nearestStoreID {
		return false // store is younger than the load
	}
	if !e.DataReady || !e.AddrKnown {
		// A reserved, not-yet-filled slot: the address cannot be compared,
		// so indexed forwarding fails and the load stalls; the retry loop
		// re-attempts every cycle and succeeds as soon as the slot fills
		// (Section 4.2 case iv) or the SRL drains past the load's stores.
		return false
	}
	if e.Addr>>3 != d.u.Addr>>3 {
		return false
	}
	c.res.IndexedForwards++
	c.finishLoadForward(d, e.SRLIndex, c.cfg.L1STQLatency+1, oracle.FwdIndexed)
	return true
}

// stallOnSRL parks a load that may depend on an SRL store it cannot forward
// from; it proceeds once every older store has drained from the SRL (head
// pointer passes the load's nearest-store identifier) or the filter clears.
func (c *Core) stallOnSRL(d *dynUop) {
	c.res.SRLLoadStalls++
	c.leaveSched(d)
	d.srlStalled = true
	c.srlStalled = append(c.srlStalled, d)
}

// retrySRLStalled re-examines stalled loads each cycle.
func (c *Core) retrySRLStalled() {
	if len(c.srlStalled) == 0 {
		return
	}
	c.metrics.Add(obs.MetricSRLStallLoadCycles, uint64(len(c.srlStalled)))
	// Stalled loads wake as drains release them; the wait buffer can wake
	// several per cycle (they re-enter through the cache port pipeline).
	budget := 4 * c.cfg.LoadPorts
	// Iterate over a snapshot: releasing a load can trigger an
	// overflow-violation restart, and restart rewrites c.srlStalled (and
	// the uops it holds) in place. The list is rebuilt from the snapshot's
	// survivors; a restart's own filtering then composes with appends here
	// instead of racing the iteration.
	pending := append(c.srlRetryScratch[:0], c.srlStalled...)
	c.srlRetryScratch = pending
	c.srlStalled = c.srlStalled[:0]
	for i, d := range pending {
		if !d.allocated || !d.srlStalled {
			continue
		}
		if budget == 0 {
			c.srlStalled = append(c.srlStalled, pending[i:]...)
			break
		}
		proceed := c.srl.Empty() || c.srl.HeadIndex() > d.nearestStoreID
		if !proceed && c.lcf != nil {
			if may, _ := c.lcf.Peek(d.u.Addr); !may {
				proceed = true
			}
		}
		if !proceed && c.cfg.UseIndexedFwd && c.lcf != nil {
			if _, lastIdx := c.lcf.Peek(d.u.Addr); c.tryIndexedForward(d, lastIdx) {
				d.srlStalled = false
				budget--
				continue
			}
		}
		if proceed {
			d.srlStalled = false
			budget--
			// Re-search the L1 STQ before releasing the load to the cache:
			// an older store may have entered (or completed in) the L1 STQ
			// while the load sat stalled, and skipping the search would
			// silently hand the load pre-store data. The hardware
			// equivalent: a woken load re-enters the load pipeline from the
			// search stage, not the cache stage.
			if sr := c.l1stq.Search(d.u.Addr, d.u.Size, d.u.Seq); sr.Hit {
				if sr.PoisonedMatch {
					if su := c.uopBySeq(sr.Entry.Seq); su != nil && !su.done {
						c.blockOnStore(d, su)
						continue
					}
				}
				if sr.Entry.DataReady {
					c.finishLoadForward(d, sr.Entry.SRLIndex, c.cfg.L1STQLatency, oracle.FwdL1STQ)
					c.res.L1STQForwards++
					continue
				}
			}
			c.accessCacheForLoad(d)
			continue
		}
		c.srlStalled = append(c.srlStalled, d)
	}
}

// finishLoadForward completes a load via store forwarding at the given
// latency. kind names the forwarding mechanism for the differential
// checker (which validates the producer at this decision point).
func (c *Core) finishLoadForward(d *dynUop, storeID uint64, latency uint64, kind oracle.ForwardKind) {
	c.leaveSched(d)
	d.issued = true
	d.fwdStoreID = storeID
	if c.chk != nil {
		c.chkLoadDecision(d, kind, storeID)
	}
	if !d.ldbufInserted && !c.insertLoadBufEntry(d) {
		return
	}
	pushCmpl(&c.cmpl, c.cycle+latency, d)
}

// insertLoadBufEntry records a load in the load buffer at the moment it
// consumes its data. Recording at completion instead opens a window (the
// access latency) in which a completing store's check misses the load and a
// stale read commits undetected — the load must be visible to store checks
// and snoops from its decision cycle on. Returns false when the overflow
// policy forced a violation restart (the load is squashed and replays).
func (c *Core) insertLoadBufEntry(d *dynUop) bool {
	entry := lsq.LoadEntry{
		Seq: d.u.Seq, PC: d.u.PC, Addr: d.u.Addr, Size: d.u.Size,
		NearestStoreID: d.nearestStoreID, FwdStoreID: d.fwdStoreID,
		Ckpt: d.ckptID,
	}
	if !c.ldbuf.Insert(entry) {
		c.res.OverflowViolations++
		c.obsEvent(obs.EvOverflowViolation, d.u.Addr)
		c.restart(d.ckptID, c.cfg.MispredictPenalty)
		return false
	}
	d.ldbufInserted = true
	return true
}

// accessCacheForLoad sends the load to the memory hierarchy; a long-latency
// miss poisons the destination and drains the load into the SDB.
func (c *Core) accessCacheForLoad(d *dynUop) {
	var preState string
	if debugInvariants {
		preState = c.mem.ProbeState(d.u.Addr)
	}
	res := c.mem.Access(c.cycle, d.u.Addr, false)
	if res.MSHRFull {
		if !d.inSched {
			d.inSched = true
			c.schedTake(d.u.Class)
		}
		c.deferOneCycle(d)
		return
	}
	c.leaveSched(d)
	d.issued = true
	d.fwdStoreID = lsq.NoFwd
	if c.chk != nil {
		// The load's decision happens now — it reads the memory image as of
		// this cycle, even if the data arrives much later.
		c.chkLoadDecision(d, oracle.FwdMemory, lsq.NoFwd)
	}
	if !d.ldbufInserted && !c.insertLoadBufEntry(d) {
		return
	}
	if res.Done > c.cycle+poisonThreshold {
		// Long-latency miss: CFP. The load drains to the SDB and its data
		// return re-enters through slice reinsertion.
		switch {
		case d.u.Addr >= 0x8000_0000:
			c.metrics.Inc(obs.MetricMissRegionStream)
		case d.u.Addr >= 0x4000_0000:
			c.metrics.Inc(obs.MetricMissRegionHeap)
		default:
			c.metrics.Inc(obs.MetricMissRegionHot)
			if debugInvariants {
				c.counters.Inc("hotmiss_pre_" + preState)
			}
		}
		if res.Done-c.cycle > 700 {
			c.metrics.Inc(obs.MetricPoisonNewMiss)
		} else {
			c.metrics.Inc(obs.MetricPoisonMerged)
		}
		d.missReturn = res.Done
		c.outstandingMisses++
		c.drainToSDB(d)
		return
	}
	pushCmpl(&c.cmpl, res.Done, d)
}

// --- store drains ---

// drainStores advances the design-specific store pipelines by one cycle.
func (c *Core) drainStores() {
	switch c.cfg.Design {
	case DesignBaseline, DesignLargeSTQ:
		c.drainCommitted(c.l1stq, nil)
	case DesignFilteredSTQ:
		c.drainCommitted(c.l1stq, c.mtb)
	case DesignHierarchical:
		// The L2 STQ holds the oldest stores once displacement has begun.
		if c.l2stq.Len() > 0 {
			c.drainCommitted(c.l2stq, c.mtb)
		} else {
			c.drainCommitted(c.l1stq, nil)
		}
	case DesignSRL:
		if c.srlMode() {
			c.moveL1STQToSRL()
			c.drainSRLHead()
		} else {
			c.drainCommitted(c.l1stq, nil)
		}
		c.srlOcc.Set(c.cycle, uint64(c.srl.Len()))
	}
}

// drainCommitted retires the queue head's store to the data cache once its
// checkpoint has committed (conventional in-order memory update).
func (c *Core) drainCommitted(q *lsq.StoreQueue, mtb *lsq.MTB) {
	// Bulk commit makes whole checkpoints' stores drain-eligible at once;
	// two combined writes per cycle absorb the burst (write combining).
	for i := 0; i < 2*c.cfg.StorePorts; i++ {
		h := q.Head()
		if h == nil || h.Seq > c.lastCommittedSeq || !h.DataReady {
			return
		}
		res := c.mem.Access(c.cycle, h.Addr, true)
		if res.MSHRFull {
			return
		}
		if mtb != nil && h.AddrKnown {
			mtb.Remove(h.Addr)
		}
		if c.snoopSink != nil {
			c.snoopSink(isa.LineAddr(h.Addr))
		}
		seq, addr, size, storeIdx := h.Seq, h.Addr, h.Size, h.SRLIndex
		q.PopHead()
		if c.chk != nil {
			c.chkStoreDrained(seq)
		}
		// Safety net mirroring the SRL drain path: a load that read memory
		// while this (older, committed) store was still queued must have
		// forwarded from it or younger — anything else slipped past the
		// issue-time search and is a memory dependence violation.
		if v, found := c.ldbuf.StoreCheck(addr, size, storeIdx); found {
			c.res.MemDepViolations++
			c.obsEvent(obs.EvMemDepViolation, addr)
			c.restart(v.Ckpt, c.cfg.MispredictPenalty)
			return
		}
	}
}

// moveL1STQToSRL advances the L1 STQ head into the SRL (Section 4.3): a
// completed miss-independent store writes its address and data into the SRL
// and updates the forwarding path; a miss-dependent store reserves its SRL
// slot (recording the index for the later fill) and leaves the L1 STQ.
func (c *Core) moveL1STQToSRL() {
	if c.cycle < c.tempUpdateStall {
		return // §6.5 variant: writeback/conflict holds store processing
	}
	for i := 0; i < 4; i++ { // L1 STQ drain bandwidth
		h := c.l1stq.Head()
		if h == nil {
			return
		}
		if c.srl.Full() {
			return
		}
		if h.DataReady {
			// Independent (completed) store.
			if c.fc == nil && c.cfg.Design == DesignSRL {
				// §6.5 variant: the temporary update goes to the data
				// cache, which costs real bandwidth — a dirty block must
				// be written back first and associativity conflicts stall
				// store processing (the costs Figure 10 measures).
				if !c.tempUpdateDataCacheReady(h) {
					return
				}
			}
			if c.lcf != nil {
				if !c.lcf.Inc(h.Addr, h.SRLIndex) {
					return // LCF counter saturated: stall SRL allocation
				}
			}
			e := *h
			e.LCFCounted = c.lcf != nil
			if _, ok := c.srl.Alloc(e); !ok {
				if c.lcf != nil {
					c.lcf.Dec(h.Addr)
				}
				return
			}
			// Temporary update for forwarding: the FC, or the data cache
			// itself in the §6.5 variant.
			if c.fc != nil {
				c.fc.Update(h.Addr, h.Size, h.SRLIndex, h.Seq, h.Ckpt)
			} else {
				c.tempUpdateDataCache(h)
			}
			c.l1stq.PopHead()
			continue
		}
		// Not yet completed: a miss-dependent (poisoned) store, or a store
		// whose sources are still in flight. A poisoned store always
		// reserves its SRL slot and leaves; a clean in-flight store leaves
		// early only under L1 STQ pressure (displacement, like the
		// hierarchical design's) — otherwise it completes in place within
		// a few cycles and takes the fast independent path above.
		su := c.uopBySeq(h.Seq)
		if su == nil {
			return
		}
		poisonedStore := su.poisoned && !su.done
		pressure := c.l1stq.Len() >= c.l1stq.Cap()/2
		if !su.done && (poisonedStore || pressure) {
			e := *h
			e.DataReady = false
			if _, ok := c.srl.Alloc(e); !ok {
				return
			}
			su.srlReserved = true
			su.srlIdx = h.SRLIndex
			if !poisonedStore && !su.addrKnown && !su.inUnknownList {
				// Its address is unknown for disambiguation until it
				// executes; screen loads against it like any other
				// unknown-address store.
				su.inUnknownList = true
				c.unknownStores = append(c.unknownStores, su)
			}
			c.l1stq.PopHead()
			continue
		}
		// Clean store about to complete: the head waits briefly.
		return
	}
}

// tempUpdateDataCacheReady gates the §6.5 variant's store processing: a
// temporary update to a dirty block must wait for the writeback, an update
// to an absent block must wait for its fetch, and a block speculatively
// owned by another checkpoint stalls store processing entirely (the
// associativity/one-version stalls Section 6.5 describes). Each condition
// holds the L1 STQ head for (at least) a cycle.
func (c *Core) tempUpdateDataCacheReady(h *lsq.StoreEntry) bool {
	ps := c.mem.ProbeState(h.Addr)
	if ps != "l1" {
		// Fetch the block before the temporary update can be applied.
		c.mem.Access(c.cycle, h.Addr, false)
		c.metrics.Inc(obs.MetricTempUpdateFetchStalls)
		return false
	}
	// One version of a block per checkpoint: a temporary update to a block
	// speculatively owned by another live checkpoint stalls store
	// processing until that checkpoint commits (Section 4.3).
	sw := c.mem.L1.SpecWrite(h.Addr, h.Ckpt, true)
	if sw.Conflict {
		if c.findCkpt(sw.OwnerCkpt) == nil {
			c.mem.L1.CommitSpec(sw.OwnerCkpt)
			return true
		}
		c.metrics.Inc(obs.MetricTempUpdateVersionStalls)
		c.tempUpdateStall = c.cycle + 2
		return false
	}
	return true
}

// tempUpdateDataCache performs the §6.5 variant's temporary update into the
// L1 data cache, paying the dirty-writeback and fetch costs Section 6.5
// describes.
func (c *Core) tempUpdateDataCache(h *lsq.StoreEntry) {
	sw := c.specWriteResolvingDeadOwnersTemp(h.Addr, h.Ckpt, true)
	if !sw.Present {
		c.mem.Access(c.cycle, h.Addr, true)
		sw = c.mem.L1.SpecWrite(h.Addr, h.Ckpt, true)
	}
	if sw.NeededWriteback {
		// The pre-update writeback consumes the cache write port: delay
		// subsequent store processing by holding the drain a cycle.
		c.metrics.Inc(obs.MetricSpecWritebacks)
		c.tempUpdateStall = c.cycle + c.cfg.L2STQLatency
	}
	if sw.Conflict {
		c.metrics.Inc(obs.MetricSpecConflicts)
		c.tempUpdateStall = c.cycle + c.cfg.L2STQLatency
	}
}

// specWriteResolvingDeadOwners performs a speculative cache write,
// resolving one-version conflicts against checkpoints that no longer exist:
// a committed owner's line becomes architectural; a squashed owner's line
// was already discarded, so any survivor is stale bookkeeping.
func (c *Core) specWriteResolvingDeadOwners(addr uint64, ckpt int) cachesimSpecResult {
	return c.specWriteResolvingDeadOwnersTemp(addr, ckpt, false)
}

func (c *Core) specWriteResolvingDeadOwnersTemp(addr uint64, ckpt int, temp bool) cachesimSpecResult {
	sw := c.mem.L1.SpecWrite(addr, ckpt, temp)
	if sw.Conflict && c.findCkpt(sw.OwnerCkpt) == nil {
		c.mem.L1.CommitSpec(sw.OwnerCkpt)
		sw = c.mem.L1.SpecWrite(addr, ckpt, temp)
	}
	return sw
}

// drainSRLHead performs one redo cache update (Section 4.1): the SRL head
// store re-updates the data cache in program order, gated by the
// write-after-read order tracker, and looks up the secondary load buffer to
// detect memory dependence violations (Section 4.2, case vi).
func (c *Core) drainSRLHead() {
	for i := 0; i < c.cfg.StorePorts; i++ {
		h := c.srl.Head()
		if h == nil {
			return
		}
		if !h.DataReady {
			c.metrics.Inc(obs.MetricSRLDrainWaitData)
			return // miss-dependent store not yet re-executed
		}
		if c.cfg.UseWARTracker && !c.order.AllLoadsOlderThanDone(h.Seq) {
			c.metrics.Inc(obs.MetricSRLDrainWaitWAR)
			return // prior loads must read the pre-store memory image first
		}
		// Release-consistency gates (ordering.go): a store-release becomes
		// visible only after every older load has performed, and no store
		// may become visible past an unperformed older fence or acquire.
		// The committed drain path needs no such gates — in-order commit
		// already implies every older op performed — but the SRL drains
		// speculatively, ahead of commit. FaultDropSyncGate removes both
		// gates so the oracle can demonstrate it catches the violations.
		if !c.cfg.FaultDropSyncGate {
			if h.Rel && !c.verLoadsDone(h.Ver) {
				c.metrics.Inc(obs.MetricSRLDrainWaitRelease)
				return
			}
			if c.pendingSyncBefore(h.Seq) != nil {
				c.metrics.Inc(obs.MetricSRLDrainWaitSync)
				return
			}
		}
		if h.Seq <= c.lastCommittedSeq {
			// The store's checkpoint has committed: this is an ordinary
			// architectural write (drains run behind bulk commit).
			res := c.mem.Access(c.cycle, h.Addr, true)
			if res.MSHRFull {
				return
			}
		} else {
			sw := c.specWriteResolvingDeadOwners(h.Addr, h.Ckpt)
			if sw.Conflict && sw.OwnerTemp {
				// The conflicting version is a stale temporary update; the
				// in-order redo supersedes it. Discard and rewrite (the
				// committed data was written back before the temporary
				// overwrite, so nothing is lost).
				c.mem.L1.Invalidate(h.Addr)
				c.metrics.Inc(obs.MetricSRLDrainTempDiscards)
				sw = c.mem.L1.SpecWrite(h.Addr, h.Ckpt, false)
			}
			if sw.Conflict {
				c.metrics.Inc(obs.MetricSRLDrainSpecConflicts)
				if debugInvariants && c.metrics.Get(obs.MetricSRLDrainSpecConflicts) == 2000 {
					debugTrace("spec conflict cyc=%d head seq=%d ckpt=%d owner=%d ownerLive=%v oldest=%d lastCommit=%d",
						c.cycle, h.Seq, h.Ckpt, sw.OwnerCkpt, c.findCkpt(sw.OwnerCkpt) != nil, c.oldestCkptID(), c.lastCommittedSeq)
					ck0 := c.ckpts[0]
					debugTrace("ckpt0 id=%d start=%d uops=%d pending=%d", ck0.id, ck0.startSeq, ck0.uops, ck0.pending)
					for i := 0; i < c.win.len(); i++ {
						d := c.win.at(i)
						if d.allocated && !d.done && d.ckptID == ck0.id {
							debugTrace("  pending uop %s ckpt=%d inSched=%v pois=%v inSDB=%v stall=%v missRet=%d pendSrc=%d nearest=%d",
								d.u.String(), d.ckptID, d.inSched, d.poisoned, d.inSDB, d.srlStalled, d.missReturn, d.pendingSrc, d.nearestStoreID)
						}
					}
				}
				return // one speculative version per block (Section 4.3)
			}
			res := c.mem.Access(c.cycle, h.Addr, true)
			if res.MSHRFull {
				return
			}
			if !sw.Present {
				c.mem.L1.SpecWrite(h.Addr, h.Ckpt, false)
			}
		}
		if h.LCFCounted && c.lcf != nil {
			c.lcf.Dec(h.Addr)
		}
		if c.snoopSink != nil {
			c.snoopSink(isa.LineAddr(h.Addr))
		}
		storeIdx := h.SRLIndex
		addr, size := h.Addr, h.Size
		seq := h.Seq
		if su := c.uopBySeq(h.Seq); su != nil {
			su.everRedone = true // counted once, at commit
		} else {
			c.res.RedoneStores++ // store already committed; count directly
		}
		c.srl.PopHead()
		if c.chk != nil {
			c.chkSRLDrained(seq)
		}
		if c.srl.Empty() {
			if c.redoActive {
				c.obsEvent(obs.EvRedoEnd, 0)
				if c.chk != nil {
					c.chkSweep() // redo episode closed: structures quiescent
				}
			}
			c.redoActive = false
			// The episode's temporary updates are all in the cache now. FC
			// entries must not survive into the next miss episode: stores
			// draining through the normal path in between supersede them,
			// and a stale hit would silently forward old data.
			if c.fc != nil {
				c.fc.DiscardAll()
			}
			// Empty SRL: every LCF counter's true population is zero, so
			// rebuild — this is what releases sticky-saturated counters.
			if c.lcf != nil {
				c.lcf.Reset()
			}
		}
		if v, found := c.ldbuf.StoreCheck(addr, size, storeIdx); found {
			c.res.MemDepViolations++
			c.obsEvent(obs.EvMemDepViolation, addr)
			c.restart(v.Ckpt, c.cfg.MispredictPenalty)
			return
		}
	}
}
