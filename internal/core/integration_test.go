package core

import (
	"testing"

	"srlproc/internal/lsq"
	"srlproc/internal/trace"
)

func diffAbs(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

func run(t *testing.T, cfg Config, s trace.Suite) *Results {
	t.Helper()
	c, err := New(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	return c.Run()
}

// TestSameInstructionStreamAcrossDesigns: every design must commit the same
// architectural instruction mix for the same workload seed — the designs
// differ in timing, never in what executes.
func TestSameInstructionStreamAcrossDesigns(t *testing.T) {
	var ref *Results
	for _, d := range []StoreDesign{DesignBaseline, DesignLargeSTQ, DesignHierarchical, DesignSRL} {
		cfg := shortCfg(d)
		cfg.WarmupUops = 0 // identical measurement regions
		res := run(t, cfg, trace.WEB)
		if ref == nil {
			ref = res
			continue
		}
		// Bulk commit is checkpoint-granular, so the measurement boundary
		// can overshoot by up to one checkpoint interval per design; the
		// committed stream itself is identical.
		tol := uint64(cfg.CkptInterval)
		if diffAbs(res.Loads, ref.Loads) > tol || diffAbs(res.Stores, ref.Stores) > tol {
			t.Fatalf("%v committed loads/stores %d/%d, baseline %d/%d",
				d, res.Loads, res.Stores, ref.Loads, ref.Stores)
		}
	}
}

// TestLargerSTQNotSlower: the core Figure 2 direction — growing the store
// queue must not hurt a memory-intensive workload.
func TestLargerSTQNotSlower(t *testing.T) {
	small := shortCfg(DesignBaseline) // 48 entries
	big := shortCfg(DesignLargeSTQ)
	big.STQSize = 1024
	rs := run(t, small, trace.SFP2K)
	rb := run(t, big, trace.SFP2K)
	if rb.SpeedupOver(rs) < 0 {
		t.Fatalf("1K STQ slower than 48-entry: %.1f%%", rb.SpeedupOver(rs))
	}
}

func TestSRLBeatsBaseline(t *testing.T) {
	base := run(t, shortCfg(DesignBaseline), trace.SFP2K)
	srl := run(t, shortCfg(DesignSRL), trace.SFP2K)
	if srl.SpeedupOver(base) <= 0 {
		t.Fatalf("SRL speedup %.1f%% over baseline on SFP2K", srl.SpeedupOver(base))
	}
}

func TestSRLStatisticsSane(t *testing.T) {
	res := run(t, shortCfg(DesignSRL), trace.SFP2K)
	if res.RedoneStores > res.Stores {
		t.Fatalf("redone %d > committed stores %d", res.RedoneStores, res.Stores)
	}
	if p := res.PctTimeSRLOccupied(); p < 0 || p > 100 {
		t.Fatalf("occupancy %.1f%%", p)
	}
	if res.MissDependentStores > res.MissDependentUops {
		t.Fatal("miss-dependent stores exceed miss-dependent uops")
	}
	if res.SRLOccupancy == nil || res.SRLOccupancy.TotalCycles() == 0 {
		t.Fatal("occupancy tracker empty")
	}
}

func TestSnoopsOffMeansNoSnoopViolations(t *testing.T) {
	cfg := shortCfg(DesignSRL)
	cfg.SnoopsEnabled = false
	res := run(t, cfg, trace.SERVER)
	if res.SnoopViolations != 0 {
		t.Fatalf("snoop violations with snoops disabled: %d", res.SnoopViolations)
	}
	if res.Extra("snoops_injected") != 0 {
		t.Fatal("snoops injected while disabled")
	}
}

func TestSnoopsOnServerProduceViolations(t *testing.T) {
	cfg := shortCfg(DesignSRL)
	cfg.RunUops = 60_000
	res := run(t, cfg, trace.SERVER)
	if res.Extra("snoops_injected") == 0 {
		t.Fatal("SERVER suite injected no snoops")
	}
}

// TestAblationsRun exercises every SRL configuration axis end to end.
func TestAblationsRun(t *testing.T) {
	mk := func(mod func(*Config)) Config {
		cfg := shortCfg(DesignSRL)
		mod(&cfg)
		return cfg
	}
	cases := map[string]Config{
		"noLCF":     mk(func(c *Config) { c.UseLCF = false; c.UseIndexedFwd = false }),
		"noIF":      mk(func(c *Config) { c.UseIndexedFwd = false }),
		"noFC":      mk(func(c *Config) { c.UseFC = false }),
		"noWAR":     mk(func(c *Config) { c.UseWARTracker = false }),
		"violate":   mk(func(c *Config) { c.LoadBufPolicy = lsq.OverflowViolate; c.LoadBufVictim = 0 }),
		"smallLCF":  mk(func(c *Config) { c.LCFSize = 256 }),
		"labHash":   mk(func(c *Config) { c.LCFHash = lsq.HashLAB }),
		"loAssocLB": mk(func(c *Config) { c.LoadBufAssoc = 4 }),
	}
	for name, cfg := range cases {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := run(t, cfg, trace.SINT2K)
			if res.Uops < cfg.RunUops {
				t.Fatalf("committed only %d", res.Uops)
			}
		})
	}
}

// TestNoFCVariantDiscardsTemporaryUpdates: the §6.5 configuration must
// exercise the data-cache temporary-update machinery.
func TestNoFCVariantDiscardsTemporaryUpdates(t *testing.T) {
	cfg := shortCfg(DesignSRL)
	cfg.UseFC = false
	res := run(t, cfg, trace.SFP2K)
	if res.SpecDiscards == 0 {
		t.Fatal("no temporary updates were ever discarded in the data-cache variant")
	}
}

// TestTinyResourcesStillProgress stress-tests forward progress with
// minimal structures (deadlock hunting).
func TestTinyResourcesStillProgress(t *testing.T) {
	for _, d := range []StoreDesign{DesignBaseline, DesignHierarchical, DesignSRL} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(d)
			cfg.WarmupUops = 0
			cfg.RunUops = 8_000
			cfg.Checkpoints = 2
			cfg.CkptInterval = 64
			cfg.SchedInt, cfg.SchedFP, cfg.SchedMem = 16, 16, 12
			cfg.IntRegs, cfg.FPRegs = 48, 48
			cfg.L1STQSize = 8
			cfg.STQSize = 8
			cfg.L2STQSize = 64
			cfg.SRLSize = 64
			cfg.SDBSize = 256
			cfg.LQSize = 64
			cfg.WindowCap = 512
			res := run(t, cfg, trace.SINT2K)
			if res.Uops < cfg.RunUops {
				t.Fatalf("committed %d", res.Uops)
			}
		})
	}
}

func TestSeedsProduceDifferentButValidRuns(t *testing.T) {
	cfg := shortCfg(DesignSRL)
	a := run(t, cfg, trace.MM)
	cfg.Seed = 99
	b := run(t, cfg, trace.MM)
	if a.Cycles == b.Cycles && a.Loads == b.Loads {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.AllocWidth = 0 },
		func(c *Config) { c.Checkpoints = 1 },
		func(c *Config) { c.CkptInterval = 0 },
		func(c *Config) { c.RunUops = 0 },
		func(c *Config) { c.LCFSize = 1000 },
		func(c *Config) { c.UseLCF = false }, // with indexed fwd still on
	}
	for i, mod := range bad {
		cfg := DefaultConfig(DesignSRL)
		mod(&cfg)
		if _, err := New(cfg, trace.SINT2K); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestResultsDerivedMetrics(t *testing.T) {
	r := &Results{Cycles: 1000, Uops: 2000, Stores: 100, RedoneStores: 25,
		MissDependentUops: 40, MissDependentStores: 10, SRLLoadStalls: 4, Loads: 500}
	if r.IPC() != 2.0 {
		t.Fatalf("IPC %v", r.IPC())
	}
	if r.PctRedoneStores() != 25 {
		t.Fatalf("redone %v", r.PctRedoneStores())
	}
	if r.PctMissDependentUops() != 2 {
		t.Fatalf("missdep uops %v", r.PctMissDependentUops())
	}
	if r.PctMissDependentStores() != 10 {
		t.Fatalf("missdep stores %v", r.PctMissDependentStores())
	}
	if r.SRLStallsPer10K() != 20 {
		t.Fatalf("stalls %v", r.SRLStallsPer10K())
	}
	base := &Results{Cycles: 2000}
	if r.SpeedupOver(base) != 100 {
		t.Fatalf("speedup %v", r.SpeedupOver(base))
	}
}

// TestViolationMachineryFires: memory dependence violations must occur and
// be recovered from (the workload embeds true store->load dependences that
// the predictor can initially miss).
func TestViolationMachineryFires(t *testing.T) {
	cfg := shortCfg(DesignSRL)
	cfg.RunUops = 60_000
	res := run(t, cfg, trace.SFP2K)
	if res.MemDepViolations == 0 && res.Restarts == res.BranchMispredicts+res.SnoopViolations {
		t.Log("no memory dependence violations observed (predictor perfect on this seed)")
	}
	if res.Restarts == 0 {
		t.Fatal("no restarts at all — recovery machinery untested")
	}
	if res.BranchMispredicts == 0 {
		t.Fatal("no branch mispredicts — CPR recovery untested")
	}
}

// TestForwardingHappens: the paper reports 20-35% of loads forward from
// stores; the simulator's combined forwarding paths should be in that
// ballpark.
func TestForwardingHappens(t *testing.T) {
	res := run(t, shortCfg(DesignSRL), trace.PROD)
	fwd := res.L1STQForwards + res.FCForwards + res.IndexedForwards
	frac := float64(fwd) / float64(res.Loads)
	if frac < 0.10 || frac > 0.60 {
		t.Fatalf("forwarding fraction %.2f outside plausible range", frac)
	}
}

// --- filtered store queue design (related-work comparator) ---

func TestFilteredSTQRuns(t *testing.T) {
	cfg := shortCfg(DesignFilteredSTQ)
	cfg.STQSize = 1024
	res := run(t, cfg, trace.SFP2K)
	if res.Uops < cfg.RunUops {
		t.Fatalf("committed %d", res.Uops)
	}
	if res.RedoneStores != 0 {
		t.Fatal("filtered design has no redo machinery")
	}
	if res.Extra("filtered_searches_saved") == 0 {
		t.Fatal("the membership filter never saved a search")
	}
}

func TestFilteredSTQSavesSearches(t *testing.T) {
	mk := func(d StoreDesign) *Results {
		cfg := shortCfg(d)
		cfg.STQSize = 1024
		return run(t, cfg, trace.PROD)
	}
	plain := mk(DesignLargeSTQ)
	filt := mk(DesignFilteredSTQ)
	if filt.CamEntryOps >= plain.CamEntryOps {
		t.Fatalf("filter saved nothing: %d vs %d comparator activations",
			filt.CamEntryOps, plain.CamEntryOps)
	}
}
