package core

import (
	"srlproc/internal/isa"
	"srlproc/internal/obs"
)

// restart implements CPR checkpoint recovery: execution rolls back to the
// start of the checkpoint with id ckptID (the violating load's or
// mispredicted branch's checkpoint) and replays from there. All younger
// state — scheduler entries, registers, store queue and SRL entries, FC and
// load buffer contents, SDB residents, speculative cache lines — is
// bulk-squashed; the replayed micro-ops re-enter through the normal
// allocate path from the in-window ring.
func (c *Core) restart(ckptID int, penalty uint64) {
	ck := c.findCkpt(ckptID)
	if ck == nil {
		// The checkpoint has already committed (stale violation); nothing
		// younger than commit can be rolled back — restart from the oldest
		// live checkpoint instead.
		ck = c.ckpts[0]
	}
	fromSeq := ck.startSeq
	pos := c.win.indexOfSeq(fromSeq)
	if pos < 0 {
		// The checkpoint's first uop was never (re)fetched yet (restart at
		// the very fetch frontier): nothing to squash.
		if c.win.len() > 0 && fromSeq > c.win.at(c.win.len()-1).u.Seq {
			pos = c.win.len()
		} else {
			pos = 0
		}
	}
	c.res.Restarts++
	c.obsEvent(obs.EvRestart, uint64(ck.id))
	if c.win.len() > pos {
		c.res.ReplayedUops += uint64(c.win.len() - pos)
	}
	if debugInvariants {
		headSeq := uint64(0)
		if c.win.len() > 0 {
			headSeq = c.win.at(0).u.Seq
		}
		debugTrace("restart cyc=%d ckptID=%d found=%v fromSeq=%d pos=%d head=%d winLen=%d replayPos=%d nCkpts=%d oldest=%d cur=%d",
			c.cycle, ckptID, c.findCkpt(ckptID) != nil, fromSeq, pos, headSeq, c.win.len(), c.replayPos, len(c.ckpts), c.ckpts[0].startSeq, c.curCkpt().startSeq)
	}

	// Reset per-uop dynamic state for everything from the restart point.
	for i := pos; i < c.win.len(); i++ {
		d := c.win.at(i)
		d.epoch++
		if d.inSched {
			d.inSched = false
			c.schedFree(d.u.Class)
		}
		c.regFree(d)
		if d.allocated && d.isLoad() {
			c.loadsInWindow--
			c.verForget(d) // uncounts a squashed unperformed load (no-op if performed)
		}
		if d.allocated && d.isStore() {
			c.storesInWindow--
		}
		if d.allocated && d.missReturn > 0 && !d.done {
			c.outstandingMisses--
		}
		d.allocated = false
		d.issued = false
		d.done = false
		d.poisoned = false
		d.inSDB = false
		d.pendingSrc = 0
		c.freeWaiterChain(d.waiters)
		d.waiters = nil
		d.prod[0], d.prod[1] = uopRef{}, uopRef{}
		d.missReturn = 0
		d.srlReserved = false
		d.srlIdx = 0
		d.addrKnown = false
		d.srlStalled = false
		d.inL2STQ = false
		d.stqSlot = -1
		d.fwdStoreID = 0
		d.memDep = uopRef{}
		d.inUnknownList = false
		d.ldbufInserted = false
		d.ordVer = 0 // re-stamped at re-allocation (c.ordVer never rolls back)
		d.inSyncList = false
		// d.everInSDB is deliberately preserved: miss-dependence is
		// counted once per uop even across replays.
	}

	squashBelow := fromSeq // entries with Seq >= fromSeq are squashed
	if c.chk != nil {
		c.chkSquash(fromSeq)
	}
	// Slice data buffer (stale heap entries are dropped lazily; recount the
	// live population) and companion lists.
	live := 0
	for i := 0; i < c.sdb.Len(); i++ {
		_, re := c.sdb.At(i)
		if re.d.allocated && re.d.inSDB && re.epoch == re.d.epoch {
			live++
		}
	}
	c.sdbCount = live
	c.pendDrain = filterUops(c.pendDrain, squashBelow)
	c.srlStalled = filterUops(c.srlStalled, squashBelow)
	c.unknownStores = filterUops(c.unknownStores, squashBelow)
	c.deferred = filterUops(c.deferred, squashBelow)
	c.pendingSyncs = filterSyncRefs(c.pendingSyncs, squashBelow)

	// Store/load structures. Every SquashYoungerThan follows one convention
	// (entries with Seq > argument are removed, see lsq.StoreQueue), so the
	// restart boundary — squash everything with Seq >= fromSeq — is uniformly
	// expressed as SquashYoungerThan(fromSeq-1) across all five structures.
	for _, e := range c.l1stq.SquashYoungerThan(squashBelow - 1) {
		if c.cfg.Design == DesignFilteredSTQ && e.AddrKnown {
			c.mtb.Remove(e.Addr)
		}
	}
	if c.l2stq != nil {
		for _, e := range c.l2stq.SquashYoungerThan(squashBelow - 1) {
			if e.AddrKnown {
				c.mtb.Remove(e.Addr)
			}
		}
	}
	if c.srl != nil {
		for _, e := range c.srl.SquashYoungerThan(squashBelow - 1) {
			if e.LCFCounted && c.lcf != nil {
				c.lcf.Dec(e.Addr)
			}
		}
		if c.srl.Empty() {
			if c.redoActive {
				c.obsEvent(obs.EvRedoEnd, 0)
			}
			c.redoActive = false
			// Episode over: clear surviving temporary updates (see
			// drainSRLHead) so the next miss episode starts clean, and
			// rebuild the LCF (releases sticky-saturated counters).
			if c.fc != nil {
				c.fc.DiscardAll()
			}
			if c.lcf != nil {
				c.lcf.Reset()
			}
		}
	}
	if c.fc != nil {
		c.fc.SquashYoungerThan(squashBelow - 1)
	}
	c.ldbuf.SquashYoungerThan(squashBelow - 1)
	c.order.SquashYoungerThan(squashBelow - 1)
	c.mem.DiscardSpecInto(c.cycle, c.mem.L1.DiscardSpecFrom(ck.id))

	// Checkpoint file: free everything younger than ck, reset ck itself.
	for i, k := range c.ckpts {
		if k.id == ck.id {
			for j := i + 1; j < len(c.ckpts); j++ {
				c.freeCkpt(c.ckpts[j])
				c.ckpts[j] = nil
			}
			c.ckpts = c.ckpts[:i+1]
			break
		}
	}
	ck.pending = 0
	ck.uops = 0
	ck.closed = false

	// Recount the unknown-address store population over the surviving
	// store queue contents.
	c.unknownAddrStores = 0
	for i := 0; i < c.win.len(); i++ {
		d := c.win.at(i)
		if d.allocated && d.isStore() && !d.addrKnown {
			c.unknownAddrStores++
		}
	}

	// Restore the rename map and store-identifier counter from the
	// checkpoint snapshot, set the replay position, and pay the redirect.
	c.lastWriter = ck.renameSnap
	c.storeCounter = ck.startStoreID
	c.replayPos = pos
	c.forceShortCkpt = true
	if resume := c.cycle + penalty; resume > c.fetchResume {
		c.fetchResume = resume
	}
}

func filterUops(list []*dynUop, squashBelow uint64) []*dynUop {
	out := list[:0]
	for _, d := range list {
		if d.u.Seq < squashBelow && d.allocated {
			out = append(out, d)
		}
	}
	return out
}

// filterSyncRefs drops squashed or recycled entries from the pending-sync
// list (the restart reset loop bumped squashed uops' epochs, so live()
// already rejects them); the vacated tail is zeroed so dropped references
// don't pin recycled uops.
func filterSyncRefs(list []uopRef, squashBelow uint64) []uopRef {
	out := list[:0]
	for _, r := range list {
		if s := r.live(); s != nil && s.allocated && s.u.Seq < squashBelow {
			out = append(out, r)
		}
	}
	for i := len(out); i < len(list); i++ {
		list[i] = uopRef{}
	}
	return out
}

// injectSnoops models external processors' stores arriving at this core's
// coherence port. A snoop invalidates the line and searches the (secondary)
// load buffer; any hit is a multiprocessor ordering violation and execution
// restarts from the oldest matching load's checkpoint (Section 3).
//
// The arrival coin is drawn exactly once per cycle when snoops are enabled
// — the cycle-skip fast-forward (skip.go) relies on that to replay the RNG
// draw-for-draw across skipped cycles. When applySkip already drew this
// cycle's coin (and it came up heads) it sets pendingSnoopFire; the snoop
// then fires without drawing again, keeping the RNG stream bit-identical
// to a fully stepped run.
func (c *Core) injectSnoops() {
	if c.pendingSnoopFire {
		c.pendingSnoopFire = false
	} else {
		if !c.cfg.SnoopsEnabled || c.prof.SnoopPer1KCycles <= 0 {
			return
		}
		if !c.snoopRNG.Bool(c.prof.SnoopPer1KCycles / 1000.0) {
			return
		}
	}
	var addr uint64
	if c.snoopRNG.Bool(0.5) {
		addr = c.recentLoads[c.snoopRNG.Intn(len(c.recentLoads))]
		if addr == 0 {
			return
		}
	} else {
		// A random heap line (usually misses everything).
		addr = 0x4000_0000 + c.snoopRNG.Uint64n(1<<20)*isa.CacheLineSize
	}
	c.metrics.Inc(obs.MetricSnoopsInjected)
	c.mem.Snoop(addr)
	if v, found := c.ldbuf.SnoopCheck(addr); found {
		c.res.SnoopViolations++
		c.obsEvent(obs.EvSnoopViolation, addr)
		c.restart(v.Ckpt, c.cfg.MispredictPenalty)
	}
}
