package core

import "srlproc/internal/obs"

// obsState is the per-core observability machinery, allocated only when
// Config.Obs enables something. The core holds it as a single pointer:
// an unobserved run's entire per-cycle cost is the `c.obsrv != nil` test
// in step (and the same test at the event hook sites, which fire far less
// than once per cycle). That is the zero-overhead-when-disabled guarantee
// BenchmarkCycleLoopObsOff pins down.
type obsState struct {
	sampleEvery uint64
	// nextSample is the cycle of the next timeline sample (^0 if
	// disabled). It is a first-class wake-up event in the cycle-skip
	// engine's nextEventCycle (skip.go): a fast-forward never jumps over
	// a sample boundary, so enabling -timeline/-trace-out changes neither
	// the skip decisions' outcomes nor any sampled value — samples always
	// land on real steps and see exactly the counters a stepped run shows.
	nextSample uint64
	timeline   *obs.Timeline
	trace      *obs.TraceWriter

	// Baselines for window-relative deltas. committed never resets, but
	// the res.* counters do (at the warmup boundary), so resetStats
	// re-baselines everything.
	lastCycle     uint64
	lastCommitted uint64
	lastStalls    obs.StallBreakdown
	lastForwards  obs.ForwardMix
	lastRestarts  uint64
}

// newObsState builds the observability state for cfg, or nil when
// observability is disabled.
func newObsState(cfg obs.Config) *obsState {
	if !cfg.Enabled() {
		return nil
	}
	o := &obsState{
		sampleEvery: cfg.SampleEvery,
		nextSample:  ^uint64(0),
		timeline:    cfg.NewTimeline(),
		trace:       cfg.NewTraceWriter(),
	}
	if o.timeline != nil {
		o.nextSample = cfg.SampleEvery
	}
	return o
}

// obsEvent records a typed pipeline event when tracing is enabled. The
// call sites are off the per-cycle path (checkpoints, restarts, miss
// returns), so the double nil-test is all a disabled run pays there. The
// differential checker keeps its own small ring of recent events so a
// divergence can carry context even when tracing is off.
func (c *Core) obsEvent(kind obs.EventKind, arg uint64) {
	if c.obsrv != nil && c.obsrv.trace != nil {
		c.obsrv.trace.Record(c.cycle, kind, arg)
	}
	if c.chk != nil {
		c.chk.noteEvent(obs.Event{Cycle: c.cycle, Kind: kind, Arg: arg})
	}
}

// obsRebaseline re-anchors window deltas after a stats reset (the warmup
// boundary zeroes the res.* counters the sampler differences against).
func (c *Core) obsRebaseline() {
	o := c.obsrv
	o.lastCycle = c.cycle
	o.lastCommitted = c.committed
	o.lastStalls = obs.StallBreakdown{}
	o.lastForwards = obs.ForwardMix{}
	o.lastRestarts = 0
}

// obsStalls snapshots the cumulative stall-cause counters.
func (c *Core) obsStalls() obs.StallBreakdown {
	return obs.StallBreakdown{
		STQ:    c.res.StallSTQ,
		LQ:     c.res.StallLQ,
		Sched:  c.res.StallSched,
		Regs:   c.res.StallRegs,
		Ckpt:   c.res.StallCkpt,
		Window: c.res.StallWindow,
		SDB:    c.res.StallSDB,
	}
}

// obsForwards snapshots the cumulative forwarding-source counters.
func (c *Core) obsForwards() obs.ForwardMix {
	return obs.ForwardMix{
		L1STQ:   c.res.L1STQForwards,
		L2STQ:   c.res.L2STQForwards,
		FC:      c.res.FCForwards,
		Indexed: c.res.IndexedForwards,
	}
}

// obsSample closes the current cycle window: one Sample with the window's
// committed-uop rate, stall-cause and forwarding deltas, plus the
// machine's instantaneous occupancies, appended to the timeline.
func (c *Core) obsSample() {
	o := c.obsrv
	o.nextSample = c.cycle + o.sampleEvery
	winCycles := c.cycle - o.lastCycle
	if winCycles == 0 {
		return
	}
	uops := c.committed - o.lastCommitted
	stalls := c.obsStalls()
	fwd := c.obsForwards()
	s := obs.Sample{
		Cycle:             c.cycle,
		Measuring:         c.measuring,
		Uops:              uops,
		IPC:               float64(uops) / float64(winCycles),
		SRLOcc:            c.srlLen(),
		STQOcc:            c.l1stq.Len(),
		LoadBufOcc:        c.ldbuf.Len(),
		WindowOcc:         c.win.len(),
		SDBOcc:            c.sdbCount,
		Ckpts:             len(c.ckpts),
		OutstandingMisses: c.outstandingMisses,
		RedoActive:        c.redoActive,
		Stalls:            stalls.Sub(o.lastStalls),
		Forwards:          fwd.Sub(o.lastForwards),
		Restarts:          c.res.Restarts - o.lastRestarts,
	}
	if c.l2stq != nil {
		s.L2STQOcc = c.l2stq.Len()
	}
	o.timeline.Append(s)
	o.lastCycle = c.cycle
	o.lastCommitted = c.committed
	o.lastStalls = stalls
	o.lastForwards = fwd
	o.lastRestarts = c.res.Restarts
}

// obsFinalize flushes the tail window and hands the run's observability
// artefacts to the results.
func (c *Core) obsFinalize() {
	o := c.obsrv
	if o == nil {
		return
	}
	if o.timeline != nil && c.cycle > o.lastCycle {
		c.obsSample()
	}
	c.res.Timeline = o.timeline
	c.res.Trace = o.trace
}
