// Package power provides the analytical CAM/SRAM area and power model that
// substitutes for the paper's 90nm SPICE circuit simulations (Section 6.2).
//
// The paper publishes four design points, which we use to calibrate
// per-bit-cell constants:
//
//   - Hierarchical L2 STQ, 512 entries x 44 bits (36 address + 8 byte-mask)
//     of CAM: area 1.4 mm^2, leakage 95 mW, dynamic 4.4 W at 100% lookup
//     activity (440 mW at the hierarchical design's 10% lookup rate).
//   - SRL (512 entries x 6 bytes) + LCF (2K entries x 2 bytes) = 7 KB of
//     SRAM: area 0.35 mm^2, leakage 40 mW, dynamic 30 mW.
//   - Adding the 256-entry 4-way forwarding cache: area 0.45 mm^2, leakage
//     48 mW, dynamic 37 mW.
//
// From these, per-cell constants are derived (a CAM cell is substantially
// larger and leakier than a 6T SRAM cell, and every CAM search activates
// the match line of every entry). The model then scales to arbitrary
// structure sizes so ablation studies can report power/area alongside
// performance. The published points are reproduced exactly by construction;
// the model's value is the ratio and the scaling behaviour.
package power

import "fmt"

// Technology constants calibrated to the paper's 90nm design points.
const (
	// CAM: 512 entries x 44 bits.
	camCells = 512.0 * 44.0
	// CAM area: 1.4 mm^2 across 22528 cells.
	camAreaPerCellMM2 = 1.4 / camCells
	// CAM leakage: 95 mW.
	camLeakPerCellMW = 95.0 / camCells
	// CAM dynamic: 4.4 W when every load searches all 512 entries. The
	// per-entry-activation energy is folded into this full-activity figure
	// and scaled by cell count and lookup fraction in CAMQueue.
	camDynFullW = 4.4

	// SRAM: SRL+LCF = 7 KB = 57344 bits; area 0.35 mm^2.
	sramBits          = 7.0 * 1024 * 8
	sramAreaPerBitMM2 = 0.35 / sramBits
	sramLeakPerBitMW  = 40.0 / sramBits
	// SRAM dynamic: 30 mW for the SRL+LCF running the store/load stream.
	sramDynPerBitMW = 30.0 / sramBits

	// Forwarding cache increment from the paper: 256 entries, 4-way,
	// tag+data ~ (64-bit word + ~24-bit tag + metadata) per entry.
	fcAreaMM2 = 0.45 - 0.35
	fcLeakMW  = 48.0 - 40.0
	fcDynMW   = 37.0 - 30.0
)

// Report is one structure's power/area estimate.
type Report struct {
	Name        string
	AreaMM2     float64
	LeakageMW   float64
	DynamicMW   float64
	SizeBytes   int
	IsCAM       bool
	ActivityPct float64 // fraction of full activity assumed for dynamic power
}

// String renders the report in the paper's units.
func (r Report) String() string {
	kind := "SRAM"
	if r.IsCAM {
		kind = "CAM"
	}
	return fmt.Sprintf("%-28s %-5s area=%.2fmm2 leakage=%.0fmW dynamic=%.0fmW",
		r.Name, kind, r.AreaMM2, r.LeakageMW, r.DynamicMW)
}

// CAMQueue estimates a fully associative searched queue (an L2 STQ) of the
// given entries and tag bits, with lookupFraction the fraction of loads
// that actually search it (the hierarchical design's MTB reduces this to
// ~10%).
func CAMQueue(name string, entries, bits int, lookupFraction float64) Report {
	cells := float64(entries * bits)
	full := camDynFullW * 1000.0 * (cells / camCells) // mW at 100% activity
	return Report{
		Name:        name,
		AreaMM2:     camAreaPerCellMM2 * cells,
		LeakageMW:   camLeakPerCellMW * cells,
		DynamicMW:   full * lookupFraction,
		SizeBytes:   entries * bits / 8,
		IsCAM:       true,
		ActivityPct: lookupFraction * 100,
	}
}

// SRAMArray estimates a RAM-only structure (SRL queue, LCF, bit arrays) of
// the given size in bytes at the given activity (1.0 = the calibration
// workload's store/load stream).
func SRAMArray(name string, sizeBytes int, activity float64) Report {
	bits := float64(sizeBytes * 8)
	return Report{
		Name:        name,
		AreaMM2:     sramAreaPerBitMM2 * bits,
		LeakageMW:   sramLeakPerBitMW * bits,
		DynamicMW:   sramDynPerBitMW * bits * activity,
		SizeBytes:   sizeBytes,
		ActivityPct: activity * 100,
	}
}

// ForwardingCache returns the paper's 256-entry 4-way FC increment.
func ForwardingCache() Report {
	return Report{
		Name:      "Forwarding cache (256x4w)",
		AreaMM2:   fcAreaMM2,
		LeakageMW: fcLeakMW,
		DynamicMW: fcDynMW,
		SizeBytes: 256 * 12,
	}
}

// Sum adds component reports into a named total.
func Sum(name string, parts ...Report) Report {
	t := Report{Name: name}
	for _, p := range parts {
		t.AreaMM2 += p.AreaMM2
		t.LeakageMW += p.LeakageMW
		t.DynamicMW += p.DynamicMW
		t.SizeBytes += p.SizeBytes
		t.IsCAM = t.IsCAM || p.IsCAM
	}
	return t
}

// Section62 reproduces the paper's Section 6.2 comparison: the 512-entry
// hierarchical L2 STQ against the SRL + 2K-entry LCF (and with the
// forwarding cache added).
func Section62() (hier Report, srl Report, srlWithFC Report) {
	// 36 address bits + 8 byte-mask bits per CAM entry; 10% of loads look
	// up the L2 STQ in the hierarchical design.
	hier = CAMQueue("Hierarchical L2 STQ (512e)", 512, 44, 0.10)
	// SRL queue: 512 entries x 6 bytes address = 3KB; LCF: 2K x 2B = 4KB.
	srlQ := SRAMArray("SRL queue (512e x 6B)", 512*6, 1.0)
	lcf := SRAMArray("LCF (2K x 2B)", 2048*2, 1.0)
	srl = Sum("SRL + LCF", srlQ, lcf)
	srlWithFC = Sum("SRL + LCF + FC", srl, ForwardingCache())
	return hier, srl, srlWithFC
}
