package power

import (
	"math"
	"strings"
	"testing"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestSection62CalibrationPoints verifies the model reproduces the paper's
// published SPICE numbers exactly (they are the calibration points).
func TestSection62CalibrationPoints(t *testing.T) {
	hier, srl, srlFC := Section62()

	if !close(hier.AreaMM2, 1.4, 0.01) {
		t.Errorf("L2 STQ area %.3f, paper 1.4", hier.AreaMM2)
	}
	if !close(hier.LeakageMW, 95, 0.5) {
		t.Errorf("L2 STQ leakage %.1f, paper 95", hier.LeakageMW)
	}
	if !close(hier.DynamicMW, 440, 2) {
		t.Errorf("L2 STQ dynamic %.1f, paper 440 (10%% lookups)", hier.DynamicMW)
	}

	if !close(srl.AreaMM2, 0.35, 0.01) {
		t.Errorf("SRL+LCF area %.3f, paper 0.35", srl.AreaMM2)
	}
	if !close(srl.LeakageMW, 40, 0.5) {
		t.Errorf("SRL+LCF leakage %.1f, paper 40", srl.LeakageMW)
	}
	if !close(srl.DynamicMW, 30, 0.5) {
		t.Errorf("SRL+LCF dynamic %.1f, paper 30", srl.DynamicMW)
	}

	if !close(srlFC.AreaMM2, 0.45, 0.01) {
		t.Errorf("SRL+LCF+FC area %.3f, paper 0.45", srlFC.AreaMM2)
	}
	if !close(srlFC.LeakageMW, 48, 0.5) {
		t.Errorf("SRL+LCF+FC leakage %.1f, paper 48", srlFC.LeakageMW)
	}
	if !close(srlFC.DynamicMW, 37, 0.5) {
		t.Errorf("SRL+LCF+FC dynamic %.1f, paper 37", srlFC.DynamicMW)
	}
}

func TestSRLSizes(t *testing.T) {
	// The paper: SRL 512 x 6B = 3KB, LCF 2K x 2B = 4KB, total 7KB.
	srlQ := SRAMArray("srl", 512*6, 1)
	lcf := SRAMArray("lcf", 2048*2, 1)
	if srlQ.SizeBytes != 3*1024 || lcf.SizeBytes != 4*1024 {
		t.Fatalf("sizes %d/%d", srlQ.SizeBytes, lcf.SizeBytes)
	}
}

func TestCAMScalesLinearly(t *testing.T) {
	small := CAMQueue("s", 256, 44, 1.0)
	big := CAMQueue("b", 512, 44, 1.0)
	if !close(big.AreaMM2/small.AreaMM2, 2, 0.01) {
		t.Fatalf("area scaling %.2f", big.AreaMM2/small.AreaMM2)
	}
	if !close(big.LeakageMW/small.LeakageMW, 2, 0.01) {
		t.Fatalf("leakage scaling %.2f", big.LeakageMW/small.LeakageMW)
	}
}

func TestLookupFractionScalesDynamicOnly(t *testing.T) {
	full := CAMQueue("f", 512, 44, 1.0)
	filtered := CAMQueue("g", 512, 44, 0.1)
	if !close(filtered.DynamicMW, full.DynamicMW*0.1, 0.01) {
		t.Fatalf("dynamic not scaled: %v vs %v", filtered.DynamicMW, full.DynamicMW)
	}
	if filtered.LeakageMW != full.LeakageMW {
		t.Fatal("leakage should not depend on activity")
	}
}

func TestCAMCostsMoreThanSRAMPerBit(t *testing.T) {
	cam := CAMQueue("c", 512, 44, 1.0)
	ram := SRAMArray("r", 512*44/8, 1.0)
	if cam.AreaMM2 <= ram.AreaMM2 {
		t.Fatal("CAM cell should be larger than SRAM cell")
	}
	if cam.LeakageMW <= ram.LeakageMW {
		t.Fatal("CAM cell should leak more than SRAM cell")
	}
}

func TestSumAggregates(t *testing.T) {
	a := Report{Name: "a", AreaMM2: 1, LeakageMW: 2, DynamicMW: 3, SizeBytes: 4}
	b := Report{Name: "b", AreaMM2: 10, LeakageMW: 20, DynamicMW: 30, SizeBytes: 40, IsCAM: true}
	s := Sum("total", a, b)
	if s.AreaMM2 != 11 || s.LeakageMW != 22 || s.DynamicMW != 33 || s.SizeBytes != 44 || !s.IsCAM {
		t.Fatalf("sum wrong: %+v", s)
	}
}

func TestReportString(t *testing.T) {
	r := CAMQueue("Hierarchical L2 STQ", 512, 44, 0.1)
	s := r.String()
	if !strings.Contains(s, "CAM") || !strings.Contains(s, "mm2") {
		t.Fatalf("report render: %s", s)
	}
}

// TestPaperRatios checks the headline claim: the SRL organisation is
// several times smaller and lower-power than the hierarchical L2 STQ.
func TestPaperRatios(t *testing.T) {
	hier, _, srlFC := Section62()
	if hier.AreaMM2/srlFC.AreaMM2 < 2.5 {
		t.Fatalf("area reduction only %.1fx", hier.AreaMM2/srlFC.AreaMM2)
	}
	if hier.DynamicMW/srlFC.DynamicMW < 5 {
		t.Fatalf("dynamic reduction only %.1fx", hier.DynamicMW/srlFC.DynamicMW)
	}
}

func TestEnergyConstantsPositive(t *testing.T) {
	for name, v := range map[string]float64{
		"CAMEntryOpPJ": CAMEntryOpPJ,
		"SRAMAccessPJ": SRAMAccessPJ,
		"FCAccessPJ":   FCAccessPJ,
	} {
		if v <= 0 {
			t.Fatalf("%s = %v", name, v)
		}
	}
}

func TestActivityEnergyWeighting(t *testing.T) {
	a := ActivityEnergy{CamEntryOps: 1000}
	b := ActivityEnergy{SRLReads: 1000}
	if a.TotalPJ() <= 0 || b.TotalPJ() <= 0 {
		t.Fatal("zero energy for nonzero activity")
	}
	if a.CAMSharePct() != 100 {
		t.Fatalf("pure-CAM share %v", a.CAMSharePct())
	}
	if b.CAMSharePct() != 0 {
		t.Fatalf("no-CAM share %v", b.CAMSharePct())
	}
	var zero ActivityEnergy
	if zero.CAMSharePct() != 0 {
		t.Fatal("zero activity share")
	}
}
