package power

// Per-operation energies derived from the Section 6.2 calibration points.
// The paper reports structure-level power; to attribute energy to the
// *simulated activity* (an extension beyond the paper's static analysis) we
// unfold those figures into per-operation energies under the stated
// activity assumptions and let the simulator's counters do the weighting.
const (
	// The 512-entry L2 STQ burns 4.4 W when every load searches it. At
	// 8 GHz with one search per cycle activating all 512 entry comparators:
	// 4.4 W / (8e9 * 512) ~= 1.07 pJ per CAM entry activation.
	CAMEntryOpPJ = 4.4e12 / (8e9 * 512)

	// The 7 KB SRL+LCF dissipates 30 mW on the calibration store/load
	// stream; attributing it to roughly one structure access per cycle at
	// 8 GHz gives 30e-3 / 8e9 J ~= 3.75 pJ per RAM access (an SRL entry
	// read/write or an LCF counter probe/update).
	SRAMAccessPJ = 30e9 / 8e9

	// The forwarding cache adds 7 mW under roughly one lookup per cycle:
	// ~0.88 pJ per FC access (tag compare + word read in a 4-way set).
	FCAccessPJ = 7e9 / 8e9

	// A set-associative load buffer way comparison is sized like an FC tag
	// compare.
	LBEntryCmpPJ = FCAccessPJ
)

// ActivityEnergy aggregates a run's secondary load/store structure activity
// into dynamic energy. All fields are event counts from core.Results.
type ActivityEnergy struct {
	CamEntryOps uint64 // L1+L2 STQ comparator activations
	SRLReads    uint64
	SRLWrites   uint64
	LCFProbes   uint64
	FCLookups   uint64
	MTBProbes   uint64
	LBEntryCmps uint64
}

// TotalPJ returns the total dynamic energy in picojoules.
func (a ActivityEnergy) TotalPJ() float64 {
	return float64(a.CamEntryOps)*CAMEntryOpPJ +
		float64(a.SRLReads+a.SRLWrites+a.LCFProbes)*SRAMAccessPJ +
		float64(a.FCLookups+a.MTBProbes)*FCAccessPJ +
		float64(a.LBEntryCmps)*LBEntryCmpPJ
}

// CAMSharePct returns the fraction of the total spent in CAM comparators —
// the energy the SRL design eliminates.
func (a ActivityEnergy) CAMSharePct() float64 {
	total := a.TotalPJ()
	if total == 0 {
		return 0
	}
	return 100 * float64(a.CamEntryOps) * CAMEntryOpPJ / total
}
