package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"srlproc/internal/serve"
)

// decodeEnvelope parses the uniform v1 error document and fails the test
// when the body is anything else.
func decodeEnvelope(t *testing.T, body []byte) (code, message string, retryAfterMs int64) {
	t.Helper()
	var env struct {
		Error *struct {
			Code         string `json:"code"`
			Message      string `json:"message"`
			RetryAfterMs int64  `json:"retry_after_ms"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		t.Fatalf("not an error envelope (err %v): %s", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", body)
	}
	return env.Error.Code, env.Error.Message, env.Error.RetryAfterMs
}

// TestErrorEnvelopeUniformity sweeps every v1 endpoint's client-error
// paths and requires the one JSON envelope everywhere: wrong method
// (405 + Allow), wrong media type (415), malformed input (400), unknown
// paths (404). No handler may fall back to a plain-text error.
func TestErrorEnvelopeUniformity(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name        string
		method      string
		path        string
		contentType string
		body        string
		status      int
		code        string
		allow       string // expected Allow header, when set
	}{
		{name: "simulate wrong method", method: http.MethodGet, path: "/v1/simulate",
			status: http.StatusMethodNotAllowed, code: "method_not_allowed", allow: "POST"},
		{name: "sweep wrong method", method: http.MethodDelete, path: "/v1/sweep",
			status: http.StatusMethodNotAllowed, code: "method_not_allowed", allow: "POST"},
		{name: "jobs wrong method", method: http.MethodGet, path: "/v1/jobs",
			status: http.StatusMethodNotAllowed, code: "method_not_allowed", allow: "POST"},
		{name: "experiments wrong method", method: http.MethodPost, path: "/v1/experiments",
			contentType: "application/json", body: "{}",
			status: http.StatusMethodNotAllowed, code: "method_not_allowed", allow: "GET"},
		{name: "results wrong method", method: http.MethodPost, path: "/v1/results/0123456789abcdef",
			contentType: "application/json", body: "{}",
			status: http.StatusMethodNotAllowed, code: "method_not_allowed", allow: "GET"},
		{name: "store stats wrong method", method: http.MethodPut, path: "/v1/store/stats",
			status: http.StatusMethodNotAllowed, code: "method_not_allowed", allow: "GET"},
		{name: "healthz wrong method", method: http.MethodPost, path: "/healthz",
			contentType: "application/json", body: "{}",
			status: http.StatusMethodNotAllowed, code: "method_not_allowed", allow: "GET"},
		{name: "metrics wrong method", method: http.MethodPost, path: "/metrics",
			contentType: "application/json", body: "{}",
			status: http.StatusMethodNotAllowed, code: "method_not_allowed", allow: "GET"},

		{name: "simulate wrong media type", method: http.MethodPost, path: "/v1/simulate",
			contentType: "text/plain", body: `{"design":"srl","suite":"WEB"}`,
			status: http.StatusUnsupportedMediaType, code: "unsupported_media_type"},
		{name: "sweep form-encoded body", method: http.MethodPost, path: "/v1/sweep",
			contentType: "application/x-www-form-urlencoded", body: "experiment=fig6",
			status: http.StatusUnsupportedMediaType, code: "unsupported_media_type"},
		{name: "jobs wrong media type", method: http.MethodPost, path: "/v1/jobs",
			contentType: "text/html", body: "{}",
			status: http.StatusUnsupportedMediaType, code: "unsupported_media_type"},

		{name: "simulate malformed json", method: http.MethodPost, path: "/v1/simulate",
			contentType: "application/json", body: "{not json",
			status: http.StatusBadRequest, code: "bad_request"},
		{name: "simulate unknown field", method: http.MethodPost, path: "/v1/simulate",
			contentType: "application/json", body: `{"design":"srl","suite":"WEB","typo_field":1}`,
			status: http.StatusBadRequest, code: "bad_request"},
		{name: "simulate unknown design", method: http.MethodPost, path: "/v1/simulate",
			contentType: "application/json", body: `{"design":"nonesuch","suite":"WEB"}`,
			status: http.StatusBadRequest, code: "bad_request"},
		{name: "sweep unknown experiment", method: http.MethodPost, path: "/v1/sweep",
			contentType: "application/json", body: `{"experiment":"fig999"}`,
			status: http.StatusBadRequest, code: "bad_request"},
		{name: "jobs empty indexes", method: http.MethodPost, path: "/v1/jobs",
			contentType: "application/json", body: `{"experiment":"fig6","indexes":[]}`,
			status: http.StatusBadRequest, code: "bad_request"},
		{name: "jobs index out of range", method: http.MethodPost, path: "/v1/jobs",
			contentType: "application/json", body: `{"experiment":"fig6","indexes":[99999]}`,
			status: http.StatusBadRequest, code: "bad_request"},
		{name: "results bad fingerprint", method: http.MethodGet, path: "/v1/results/zzz",
			status: http.StatusServiceUnavailable, code: "unavailable"}, // no store attached

		{name: "unknown path", method: http.MethodGet, path: "/v1/nonesuch",
			status: http.StatusNotFound, code: "not_found"},
		{name: "root path", method: http.MethodGet, path: "/",
			status: http.StatusNotFound, code: "not_found"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.contentType != "" {
				req.Header.Set("Content-Type", tc.contentType)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body := readAll(t, resp)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("error Content-Type %q: %s", ct, body)
			}
			code, _, _ := decodeEnvelope(t, body)
			if code != tc.code {
				t.Fatalf("code %q, want %q: %s", code, tc.code, body)
			}
			if tc.allow != "" {
				if got := resp.Header.Get("Allow"); got != tc.allow {
					t.Fatalf("Allow %q, want %q", got, tc.allow)
				}
			}
		})
	}
}

// TestErrorEnvelopeShedding pins the 429 shape: the envelope carries
// retry_after_ms and the Retry-After header agrees with it.
func TestErrorEnvelopeShedding(t *testing.T) {
	srv := serve.New(serve.Config{MaxConcurrent: 1, QueueDepth: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only slot with a long job, then overflow.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := post(t, ts.Client(), ts.URL+"/v1/simulate",
			`{"design":"srl","suite":"WEB","run_uops":2000000,"warmup_uops":1000}`)
		readAll(t, resp)
	}()
	waitInflight(t, ts.Client(), ts.URL, 1)

	resp := post(t, ts.Client(), ts.URL+"/v1/simulate", `{"design":"srl","suite":"MM"}`)
	body := readAll(t, resp)
	<-done
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	code, _, retryMs := decodeEnvelope(t, body)
	if code != "too_many_requests" {
		t.Fatalf("code %q", code)
	}
	if retryMs <= 0 {
		t.Fatalf("retry_after_ms %d", retryMs)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After header beside retry_after_ms")
	}
}

// TestErrorEnvelopePayloadTooLarge pins the 413 mapping for oversized
// request bodies.
func TestErrorEnvelopePayloadTooLarge(t *testing.T) {
	srv := serve.New(serve.Config{MaxBodyBytes: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := `{"design":"srl","suite":"WEB","seed":1,` + strings.Repeat(" ", 100) + `"run_uops":1}`
	resp := post(t, ts.Client(), ts.URL+"/v1/simulate", big)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if code, _, _ := decodeEnvelope(t, body); code != "payload_too_large" {
		t.Fatalf("code %q", code)
	}
}

// TestEmptyContentTypeTolerated keeps the API curl-friendly: a JSON
// endpoint accepts a body with no Content-Type at all.
func TestEmptyContentTypeTolerated(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate",
		strings.NewReader(`{"design":"srl","suite":"WEB","run_uops":8000,"warmup_uops":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header["Content-Type"] = nil
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}
