package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"srlproc/internal/serve"
)

// sweepBody is the experiment request every cluster test runs: small
// enough to finish fast, deterministic, multi-point (fig6 sweeps four
// designs across all suites).
const sweepBody = `{"experiment":"fig6","run_uops":10000,"warmup_uops":2000,"seed":1}`

// startWorker boots one worker-mode server on httptest.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Config{WorkerMode: true})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// startCoordinator boots a coordinator dispatching to the given workers.
func startCoordinator(t *testing.T, workers ...string) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Config{ClusterWorkers: workers})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// standaloneGolden runs sweepBody on a fresh standalone server and
// returns the response document.
func standaloneGolden(t *testing.T) []byte {
	t.Helper()
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := post(t, ts.Client(), ts.URL+"/v1/sweep", sweepBody)
	doc := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("standalone sweep: status %d: %s", resp.StatusCode, doc)
	}
	return doc
}

// clusterMetricsOf fetches the /metrics cluster section.
func clusterMetricsOf(t *testing.T, ts *httptest.Server) map[string]json.RawMessage {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cluster map[string]json.RawMessage `json:"cluster"`
	}
	if err := json.Unmarshal(readAll(t, resp), &doc); err != nil {
		t.Fatal(err)
	}
	return doc.Cluster
}

// TestClusterSweepMatchesStandalone is the tentpole identity check over
// real HTTP: a sweep fanned out across two worker processes answers with
// a document byte-identical to a standalone server's, and the cluster
// shows up in /healthz roles and the /metrics cluster section.
func TestClusterSweepMatchesStandalone(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	co := startCoordinator(t, w1.URL, w2.URL)

	resp := post(t, co.Client(), co.URL+"/v1/sweep", sweepBody)
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster sweep: status %d: %s", resp.StatusCode, got)
	}
	if h := resp.Header.Get("X-Srlproc-Experiment"); h != "fig6" {
		t.Fatalf("experiment header %q", h)
	}
	if want := standaloneGolden(t); !bytes.Equal(got, want) {
		t.Fatalf("cluster document differs from standalone:\ncluster:    %.300s\nstandalone: %.300s", got, want)
	}

	// Roles: coordinator on the front node, worker on the back nodes.
	hresp, err := co.Client().Get(co.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Role string `json:"role"`
	}
	if err := json.Unmarshal(readAll(t, hresp), &health); err != nil {
		t.Fatal(err)
	}
	if health.Role != "coordinator" {
		t.Fatalf("coordinator role %q", health.Role)
	}
	wresp, err := w1.Client().Get(w1.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readAll(t, wresp), &health); err != nil {
		t.Fatal(err)
	}
	if health.Role != "worker" {
		t.Fatalf("worker role %q", health.Role)
	}

	cm := clusterMetricsOf(t, co)
	if cm == nil {
		t.Fatal("coordinator /metrics has no cluster section")
	}
	if string(cm["role"]) != `"coordinator"` {
		t.Fatalf("metrics role %s", cm["role"])
	}
	if string(cm["sweeps_total"]) != "1" {
		t.Fatalf("sweeps_total %s", cm["sweeps_total"])
	}
	var members []struct {
		Worker  string `json:"worker"`
		Healthy bool   `json:"healthy"`
	}
	if err := json.Unmarshal(cm["workers"], &members); err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 || !members[0].Healthy || !members[1].Healthy {
		t.Fatalf("worker snapshot %+v", members)
	}

	// Both workers simulated a share of the sweep (routing actually
	// spread the points).
	for _, w := range []*httptest.Server{w1, w2} {
		mresp, err := w.Client().Get(w.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Cache struct {
				Misses uint64 `json:"misses"`
			} `json:"cache"`
		}
		if err := json.Unmarshal(readAll(t, mresp), &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Cache.Misses == 0 {
			t.Fatalf("worker %s simulated nothing", w.URL)
		}
	}
}

// TestClusterWorkerDeathMidSweep kills one of two workers partway
// through a sweep (its connection aborts after the first completed job)
// and requires the coordinator to re-dispatch the lost points and still
// produce the byte-identical document — determinism makes the retries
// invisible.
func TestClusterWorkerDeathMidSweep(t *testing.T) {
	w1 := startWorker(t)

	inner := serve.New(serve.Config{WorkerMode: true}).Handler()
	var jobs atomic.Int64
	w2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/jobs" && jobs.Add(1) > 1 {
			panic(http.ErrAbortHandler) // dead worker: connection drops mid-RPC
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(w2.Close)

	co := startCoordinator(t, w1.URL, w2.URL)
	resp := post(t, co.Client(), co.URL+"/v1/sweep", sweepBody)
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster sweep with dying worker: status %d: %s", resp.StatusCode, got)
	}
	if want := standaloneGolden(t); !bytes.Equal(got, want) {
		t.Fatalf("document after worker death differs from standalone:\ncluster:    %.300s\nstandalone: %.300s", got, want)
	}

	cm := clusterMetricsOf(t, co)
	if string(cm["worker_failures_total"]) != "1" {
		t.Fatalf("worker_failures_total %s", cm["worker_failures_total"])
	}
	var redispatched int
	if err := json.Unmarshal(cm["redispatched_total"], &redispatched); err != nil || redispatched == 0 {
		t.Fatalf("redispatched_total %s (err %v)", cm["redispatched_total"], err)
	}
	var members []struct {
		Worker  string `json:"worker"`
		Healthy bool   `json:"healthy"`
	}
	if err := json.Unmarshal(cm["workers"], &members); err != nil {
		t.Fatal(err)
	}
	healthy := 0
	for _, m := range members {
		if m.Healthy {
			healthy++
		}
	}
	if healthy != 1 {
		t.Fatalf("want exactly one healthy member after the kill, got %+v", members)
	}
}

// TestClusterSweepSSE streams a cluster sweep over Server-Sent Events:
// the coordinator multiplexes per-point completions from all workers
// into one monotonic progress feed, and the terminal result event is the
// standalone document.
func TestClusterSweepSSE(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	co := startCoordinator(t, w1.URL, w2.URL)

	body := strings.Replace(sweepBody, "}", `,"stream":true}`, 1)
	resp := post(t, co.Client(), co.URL+"/v1/sweep", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var events, lastData []string
	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	progress := 0
	lastDone := 0
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			events = append(events, event)
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "progress" {
				progress++
				var p struct {
					Done  int `json:"done"`
					Total int `json:"total"`
				}
				if err := json.Unmarshal([]byte(data), &p); err != nil {
					t.Fatalf("progress event: %v", err)
				}
				if p.Done <= lastDone {
					t.Fatalf("progress not monotonic: %d after %d", p.Done, lastDone)
				}
				lastDone = p.Done
			}
			lastData = append(lastData, data)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if progress == 0 {
		t.Fatal("no progress events")
	}
	if len(events) == 0 || events[len(events)-1] != "result" {
		t.Fatalf("terminal event %v", events)
	}
	want := bytes.TrimSuffix(standaloneGolden(t), []byte("\n"))
	if got := lastData[len(lastData)-1]; got != string(want) {
		t.Fatalf("SSE result differs from standalone:\nsse:        %.300s\nstandalone: %.300s", got, want)
	}
}

// TestClusterNoLiveWorkers pins the terminal failure: a coordinator
// whose only worker is unreachable answers 503 with the unavailable
// envelope code rather than hanging or returning 500.
func TestClusterNoLiveWorkers(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	addr := dead.URL
	dead.Close()

	co := startCoordinator(t, addr)
	resp := post(t, co.Client(), co.URL+"/v1/sweep", sweepBody)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "unavailable" {
		t.Fatalf("error code %q: %s", env.Error.Code, body)
	}
}
