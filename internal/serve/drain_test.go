package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"srlproc/internal/serve"
)

// TestGracefulDrainOnSIGTERM runs the production serve loop, delivers a
// real SIGTERM mid-job, and asserts the drain contract: the in-flight job
// completes with a full response, the listener refuses new work, and
// Serve returns cleanly (nil) well inside the hard deadline.
func TestGracefulDrainOnSIGTERM(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGTERM delivery is POSIX-only")
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{DrainTimeout: 60 * time.Second})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 90 * time.Second}

	// An in-flight job sized to outlive the SIGTERM by a comfortable
	// margin but finish well inside the drain deadline.
	jobDone := make(chan *http.Response, 1)
	jobBody := make(chan []byte, 1)
	go func() {
		resp, err := client.Post(base+"/v1/simulate", "application/json",
			strings.NewReader(`{"design":"srl","suite":"WS","run_uops":300000,"warmup_uops":20000}`))
		if err != nil {
			t.Errorf("in-flight job: %v", err)
			jobDone <- nil
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		jobBody <- b
		jobDone <- resp
	}()
	waitInflight(t, client, base, 1)

	// Mid-sweep SIGTERM: the process catches it via NotifyContext, which
	// cancels the serve context exactly as in cmd/srlserved.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The in-flight job must complete normally despite the drain.
	select {
	case resp := <-jobDone:
		if resp == nil {
			t.Fatal("in-flight job failed")
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-flight job status %d during drain", resp.StatusCode)
		}
		var doc struct {
			Uops uint64 `json:"uops"`
		}
		if err := json.Unmarshal(<-jobBody, &doc); err != nil || doc.Uops == 0 {
			t.Fatalf("in-flight job answered a truncated document: %v", err)
		}
	case <-time.After(80 * time.Second):
		t.Fatal("in-flight job did not complete during drain")
	}

	// Serve returns nil: a clean drain, not a hard-deadline abort.
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve after drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	// The listener refuses new work once drained.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting connections after drain")
	}
	if !srv.Draining() {
		t.Fatal("server does not report draining")
	}
}

// TestDrainRefusesNewRequestsImmediately pins the draining 503: a request
// arriving on an already-open connection after drain starts is refused
// with 503 rather than queued.
func TestDrainRefusesNewRequestsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{DrainTimeout: 60 * time.Second})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	// Keep-alive transport so the post-drain request reuses the
	// established connection instead of dialing the closed listener.
	tr := &http.Transport{MaxIdleConnsPerHost: 4}
	client := &http.Client{Transport: tr, Timeout: 90 * time.Second}
	defer tr.CloseIdleConnections()

	// Park one slow job so the drain has something to wait on.
	jobDone := make(chan struct{})
	go func() {
		defer close(jobDone)
		resp, err := client.Post(base+"/v1/simulate", "application/json",
			strings.NewReader(`{"design":"baseline","suite":"MM","run_uops":300000,"warmup_uops":20000}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitInflight(t, client, base, 1)

	cancel() // drain begins
	// Wait until the server flags itself draining.
	deadline := time.Now().Add(10 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := client.Post(base+"/v1/simulate", "application/json",
		strings.NewReader(`{"design":"baseline","suite":"WEB","run_uops":1000}`))
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request during drain got %d, want 503", resp.StatusCode)
		}
	}
	// err != nil is also acceptable: the connection may already be torn
	// down, which equally refuses the work.

	<-jobDone
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestDrainHardDeadline pins the other side of the contract: a job that
// cannot finish inside DrainTimeout is cancelled and Serve reports the
// hard-deadline abort instead of hanging forever.
func TestDrainHardDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{DrainTimeout: 300 * time.Millisecond})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 90 * time.Second}
	go func() {
		resp, err := client.Post(base+"/v1/simulate", "application/json",
			strings.NewReader(`{"design":"srl","suite":"SFP2K","run_uops":500000000,"timeout_ms":60000}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitInflight(t, client, base, 1)

	start := time.Now()
	cancel()
	select {
	case err := <-serveDone:
		if err == nil {
			t.Fatal("hard-deadline drain reported a clean exit")
		}
		if !strings.Contains(err.Error(), "hard deadline") {
			t.Fatalf("drain error: %v", err)
		}
		// The oversized job was cancelled, not awaited: Serve returned in
		// drain-deadline time, far under the job's own 60s budget.
		if d := time.Since(start); d > 30*time.Second {
			t.Fatalf("hard-deadline drain took %v", d)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Serve hung past the drain hard deadline")
	}
}
