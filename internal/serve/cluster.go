package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"srlproc/internal/bench"
	"srlproc/internal/cluster"
	"srlproc/internal/core"
	"srlproc/internal/store"
	"srlproc/internal/sweep"
)

// clusterNode is the coordinator state attached to a Server when
// Config.ClusterWorkers is set: the health-checked membership pool and
// the service-lifetime dispatch counters /metrics exports.
type clusterNode struct {
	pool   *cluster.Pool
	client cluster.JobClient

	mu             sync.Mutex
	sweeps         uint64
	steals         uint64
	redispatched   uint64
	workerFailures uint64
}

func newClusterNode(workers []string, client cluster.JobClient) *clusterNode {
	if client == nil {
		client = &cluster.HTTPClient{}
	}
	var probe cluster.ProbeFunc
	if p, ok := client.(interface {
		Probe(ctx context.Context, worker string) error
	}); ok {
		probe = p.Probe
	}
	return &clusterNode{pool: cluster.NewPool(workers, probe), client: client}
}

// clusterMetrics is the /metrics "cluster" section: the node's role,
// and — on coordinators — worker health plus dispatch counters.
type clusterMetrics struct {
	Role           string                 `json:"role"`
	Workers        []cluster.MemberStatus `json:"workers,omitempty"`
	Sweeps         uint64                 `json:"sweeps_total,omitempty"`
	Steals         uint64                 `json:"steals_total,omitempty"`
	Redispatched   uint64                 `json:"redispatched_total,omitempty"`
	WorkerFailures uint64                 `json:"worker_failures_total,omitempty"`
}

// clusterMetricsSnapshot builds the /metrics cluster section, or nil for
// a standalone server (the section is omitted entirely).
func (s *Server) clusterMetricsSnapshot() *clusterMetrics {
	switch {
	case s.cluster != nil:
		c := s.cluster
		c.mu.Lock()
		defer c.mu.Unlock()
		return &clusterMetrics{
			Role:           "coordinator",
			Workers:        c.pool.Snapshot(),
			Sweeps:         c.sweeps,
			Steals:         c.steals,
			Redispatched:   c.redispatched,
			WorkerFailures: c.workerFailures,
		}
	case s.cfg.WorkerMode:
		return &clusterMetrics{Role: "worker"}
	}
	return nil
}

// runClusterSweep is the coordinator's /v1/sweep execution path: the
// experiment's canonical point list fans out as /v1/jobs RPCs over the
// live workers, and the merged report assembles into the exact
// ExperimentResult a local bench.RunExperiment would produce — the
// simulator's determinism plus store.Encode's round-trip proof make the
// two byte-identical.
func (s *Server) runClusterSweep(ctx context.Context, id bench.ExperimentID, req *SweepRequest, o bench.Options) (*bench.ExperimentResult, error) {
	points, err := bench.ExperimentPoints(id, o)
	if err != nil {
		return nil, err
	}
	c := s.cluster
	workers := c.pool.Live(ctx)
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: %w: none of the %d configured workers is healthy", cluster.ErrNoLiveWorkers, len(c.pool.Workers()))
	}
	template := cluster.JobRequest{
		Experiment: id.String(),
		Quick:      req.Quick,
		RunUops:    req.RunUops,
		WarmupUops: req.WarmupUops,
		Seed:       req.Seed,
		NoCache:    req.NoCache,
		TimeoutMs:  req.TimeoutMs,
	}
	rep, sum, err := cluster.Dispatch(ctx, c.client, workers, template, points, cluster.Options{
		Progress: o.Progress,
		OnWorkerDown: func(worker string, err error) {
			c.pool.MarkDown(worker, err)
			c.mu.Lock()
			c.workerFailures++
			c.mu.Unlock()
		},
	})
	c.mu.Lock()
	c.sweeps++
	if sum != nil {
		c.steals += uint64(sum.Steals)
		c.redispatched += uint64(sum.Redispatched)
	}
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	for i := range rep.Points {
		if pr := &rep.Points[i]; pr.Err == nil && pr.Results != nil {
			s.mergeMetrics(&pr.Results.Metrics)
		}
	}
	if rep.Err != nil {
		return nil, rep.Err
	}
	return bench.AssembleExperiment(id, o, rep)
}

// handleJobs is the worker half of the cluster protocol: POST /v1/jobs
// runs a slice of one experiment's canonical point list, named by index,
// and answers with each point's canonical Results document. The worker
// re-derives the point list from the same experiment-shaping fields the
// coordinator resolved, so nothing config-shaped travels on the wire.
//
// Per-point simulation failures are reported in-band (JobPoint.Error) —
// the coordinator records them like a local run's. Only a dead job
// context fails the RPC itself, which the coordinator treats as a
// worker-level failure and re-dispatches. Every server answers /v1/jobs,
// so any node can be drafted as a worker; jobs share the node's memo
// cache and persistent store exactly like /v1/simulate traffic.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.bump(func(c *counters) { c.Requests++ })
	var req cluster.JobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	id, err := bench.ParseExperimentID(req.Experiment)
	if err != nil {
		s.bump(func(c *counters) { c.BadRequests++ })
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sr := SweepRequest{
		Quick:      req.Quick,
		RunUops:    req.RunUops,
		WarmupUops: req.WarmupUops,
		Seed:       req.Seed,
		NoCache:    req.NoCache,
	}
	o := sr.options(s)
	points, err := bench.ExperimentPoints(id, o)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if len(req.Indexes) == 0 {
		s.bump(func(c *counters) { c.BadRequests++ })
		s.writeError(w, http.StatusBadRequest, "job carries no point indexes")
		return
	}
	sub := make([]sweep.Point, 0, len(req.Indexes))
	for _, idx := range req.Indexes {
		if idx < 0 || idx >= len(points) {
			s.bump(func(c *counters) { c.BadRequests++ })
			s.writeError(w, http.StatusBadRequest,
				"point index %d out of range for %s (%d points) — coordinator/worker version skew?", idx, id, len(points))
			return
		}
		sub = append(sub, points[idx])
	}

	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, stop := s.jobContext(r, req.TimeoutMs)
	defer stop()
	runRelease, err := s.acquireRun(ctx)
	if err != nil {
		s.finishJob(w, err)
		return
	}

	start := time.Now()
	rep, _ := sweep.Run(ctx, sub, sweep.Options{
		Workers: o.Workers,
		Cache:   s.cache,
		NoCache: req.NoCache,
	})
	runRelease()
	s.observeJob(time.Since(start))
	// A dead context fails the whole RPC (worker-level failure for the
	// coordinator); per-point simulation errors travel in-band below.
	if ctx.Err() != nil {
		s.finishJob(w, ctx.Err())
		return
	}

	resp := cluster.JobResponse{
		Experiment: id.String(),
		Points:     make([]cluster.JobPoint, 0, len(rep.Points)),
	}
	for i := range rep.Points {
		pr := &rep.Points[i]
		jp := cluster.JobPoint{
			Index:       req.Indexes[i],
			Fingerprint: fmt.Sprintf("%016x", core.PointFingerprint(pr.Point.Cfg, pr.Point.Suite)),
			CacheHit:    pr.CacheHit,
			WallMs:      pr.Wall.Milliseconds(),
		}
		switch {
		case pr.Err != nil:
			jp.Error = pr.Err.Error()
		default:
			doc, encErr := store.Encode(pr.Results)
			if encErr != nil {
				jp.Error = encErr.Error()
			} else {
				jp.Result = doc
				s.mergeMetrics(&pr.Results.Metrics)
			}
		}
		resp.Points = append(resp.Points, jp)
	}
	s.finishJob(w, nil)
	doc, err := json.Marshal(resp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("X-Srlproc-Experiment", id.String())
	writeJSON(w, http.StatusOK, doc)
}
