package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"srlproc/internal/core"
	"srlproc/internal/serve"
	"srlproc/internal/store"
	"srlproc/internal/sweep"
	"srlproc/internal/trace"
)

// post sends a JSON body and returns the response.
func post(t *testing.T, client *http.Client, url, body string) *http.Response {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return b
}

// waitInflight polls /healthz until the server reports at least n running
// jobs.
func waitInflight(t *testing.T, client *http.Client, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			var doc struct {
				InFlight int `json:"inflight"`
			}
			b := readAll(t, resp)
			if json.Unmarshal(b, &doc) == nil && doc.InFlight >= n {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never reached %d in-flight jobs", n)
}

// TestSimulateMatchesDirectSweepRun is the end-to-end identity check: a
// point served over HTTP must answer with byte-identical Results JSON to
// the same point run through sweep.Run directly.
func TestSimulateMatchesDirectSweepRun(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const runUops, warmup = 20_000, 4_000
	body := fmt.Sprintf(`{"design":"srl","suite":"SINT2K","run_uops":%d,"warmup_uops":%d}`, runUops, warmup)
	resp := post(t, ts.Client(), ts.URL+"/v1/simulate", body)
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-Srlproc-Cache") != "miss" {
		t.Fatalf("first request cache header: %q", resp.Header.Get("X-Srlproc-Cache"))
	}

	cfg := core.DefaultConfig(core.DesignSRL)
	cfg.RunUops = runUops
	cfg.WarmupUops = warmup
	rep, err := sweep.Run(context.Background(),
		[]sweep.Point{{Label: "direct", Cfg: cfg, Suite: trace.SINT2K}},
		sweep.Options{Workers: 1, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(rep.Points[0].Results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSuffix(got, []byte("\n")), want) {
		t.Fatalf("HTTP Results JSON differs from direct sweep.Run:\nhttp:   %.200s\ndirect: %.200s", got, want)
	}
	if fp := resp.Header.Get("X-Srlproc-Point"); len(fp) != 16 {
		t.Fatalf("fingerprint header %q", fp)
	}
}

// TestIdempotentRetryHitsCache pins the idempotency key path: a retried
// identical request collapses onto the memo cache and answers byte-for-
// byte the same.
func TestIdempotentRetryHitsCache(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"design":"baseline","suite":"WEB","run_uops":15000,"warmup_uops":3000}`
	first := post(t, ts.Client(), ts.URL+"/v1/simulate", body)
	firstDoc := readAll(t, first)
	second := post(t, ts.Client(), ts.URL+"/v1/simulate", body)
	secondDoc := readAll(t, second)

	if first.Header.Get("X-Srlproc-Cache") != "miss" || second.Header.Get("X-Srlproc-Cache") != "hit" {
		t.Fatalf("cache headers: first=%q second=%q",
			first.Header.Get("X-Srlproc-Cache"), second.Header.Get("X-Srlproc-Cache"))
	}
	if first.Header.Get("X-Srlproc-Point") != second.Header.Get("X-Srlproc-Point") {
		t.Fatal("idempotency keys differ for identical requests")
	}
	if !bytes.Equal(firstDoc, secondDoc) {
		t.Fatal("retried request answered differently")
	}
	if st := srv.Cache().Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats after retry: %+v", st)
	}
}

// TestLoadShedding pins backpressure: with one execution slot and no
// queue, a second concurrent job is shed with 429 + Retry-After instead
// of queueing.
func TestLoadShedding(t *testing.T) {
	srv := serve.New(serve.Config{MaxConcurrent: 1, QueueDepth: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A deliberately oversized job, bounded by its own deadline so the
	// test server can close cleanly.
	slow := `{"design":"srl","suite":"SFP2K","run_uops":500000000,"timeout_ms":3000}`
	slowDone := make(chan *http.Response, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(slow))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		slowDone <- resp
	}()
	waitInflight(t, ts.Client(), ts.URL, 1)

	resp := post(t, ts.Client(), ts.URL+"/v1/simulate", `{"design":"baseline","suite":"WEB","run_uops":1000}`)
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d: %s", resp.StatusCode, b)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q", ra)
	}

	slowResp := <-slowDone
	if slowResp == nil {
		t.Fatal("slow request failed at transport level")
	}
	// The oversized job hit its own deadline: per-request timeouts
	// propagate into the simulation rather than pinning the worker.
	if slowResp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow job status %d, want 504", slowResp.StatusCode)
	}
}

// TestDeadlinePropagation pins that timeout_ms reaches core.RunContext: an
// oversized simulation returns 504 in deadline time, not run time.
func TestDeadlinePropagation(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	start := time.Now()
	resp := post(t, ts.Client(), ts.URL+"/v1/simulate",
		`{"design":"srl","suite":"SFP2K","run_uops":500000000,"timeout_ms":200}`)
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "deadline") {
		t.Fatalf("error body: %s", b)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("deadline took %v to propagate", d)
	}
}

// TestBadRequests pins the 400 surface: malformed JSON, unknown fields,
// unknown designs/suites/experiments.
func TestBadRequests(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct{ url, body string }{
		{"/v1/simulate", `{not json`},
		{"/v1/simulate", `{"design":"srl","suite":"SINT2K","no_such_field":1}`},
		{"/v1/simulate", `{"design":"warp-drive","suite":"SINT2K"}`},
		{"/v1/simulate", `{"design":"srl","suite":"NOPE"}`},
		{"/v1/sweep", `{"experiment":"fig99"}`},
	} {
		resp := post(t, ts.Client(), ts.URL+tc.url, tc.body)
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d (%s), want 400", tc.url, tc.body, resp.StatusCode, b)
		}
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

func parseSSE(t *testing.T, raw string) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, block := range strings.Split(raw, "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			}
		}
		if ev.event == "" {
			t.Fatalf("unlabeled SSE block: %q", block)
		}
		out = append(out, ev)
	}
	return out
}

// TestSSEProgressOrdering streams a sweep and pins the event contract:
// progress events carry strictly increasing done counts, and exactly one
// result event arrives, last.
func TestSSEProgressOrdering(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := post(t, ts.Client(), ts.URL+"/v1/sweep",
		`{"experiment":"table3","run_uops":2000,"warmup_uops":500,"workers":2,"stream":true}`)
	raw := string(readAll(t, resp))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	events := parseSSE(t, raw)
	if len(events) < 2 {
		t.Fatalf("only %d events: %q", len(events), raw)
	}
	lastDone, total := 0, 0
	for i, ev := range events {
		switch ev.event {
		case "progress":
			if i == len(events)-1 {
				t.Fatal("stream ended on a progress event, result missing")
			}
			var p struct {
				Done  int `json:"done"`
				Total int `json:"total"`
			}
			if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
				t.Fatalf("progress data %q: %v", ev.data, err)
			}
			if p.Done <= lastDone {
				t.Fatalf("progress out of order: done %d after %d", p.Done, lastDone)
			}
			lastDone, total = p.Done, p.Total
		case "result":
			if i != len(events)-1 {
				t.Fatalf("result event not last (index %d of %d)", i, len(events))
			}
			if !json.Valid([]byte(ev.data)) {
				t.Fatalf("result event carries invalid JSON: %.200s", ev.data)
			}
		default:
			t.Fatalf("unexpected event %q", ev.event)
		}
	}
	if total == 0 || lastDone != total {
		t.Fatalf("final progress %d/%d", lastDone, total)
	}
}

// TestSweepMatchesExperimentJSON pins that the non-streamed sweep document
// is the same document the direct bench runner marshals.
func TestSweepMatchesExperimentJSON(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := post(t, ts.Client(), ts.URL+"/v1/sweep", `{"experiment":"energy","run_uops":4000,"warmup_uops":1000}`)
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("sweep document: %v", err)
	}
}

// TestMetricsAndHealth exercises the observability endpoints after a
// served job.
func TestMetricsAndHealth(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post(t, ts.Client(), ts.URL+"/v1/simulate",
		`{"design":"srl","suite":"MM","run_uops":10000,"warmup_uops":2000}`).Body.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b := readAll(t, resp)
	var doc struct {
		Server struct {
			Requests  uint64 `json:"requests_total"`
			Completed uint64 `json:"completed_total"`
		} `json:"server"`
		Cache      sweep.Stats       `json:"cache"`
		SimMetrics map[string]uint64 `json:"sim_metrics"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("metrics document: %v\n%s", err, b)
	}
	if doc.Server.Requests != 1 || doc.Server.Completed != 1 {
		t.Fatalf("server counters: %+v", doc.Server)
	}
	if doc.Cache.Misses != 1 || doc.Cache.Entries != 1 {
		t.Fatalf("cache stats: %+v", doc.Cache)
	}
	if len(doc.SimMetrics) == 0 {
		t.Fatal("no aggregated simulation metrics")
	}

	h, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb := readAll(t, h)
	if h.StatusCode != http.StatusOK || !strings.Contains(string(hb), `"status":"ok"`) {
		t.Fatalf("healthz %d: %s", h.StatusCode, hb)
	}
}

// TestSweepExperimentAliasHeader pins the unified experiment dispatch:
// alias names resolve, and the canonical name is echoed in the
// X-Srlproc-Experiment response header.
func TestSweepExperimentAliasHeader(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := post(t, ts.Client(), ts.URL+"/v1/sweep",
		`{"experiment":"Figure10","run_uops":3000,"warmup_uops":500}`)
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if h := resp.Header.Get("X-Srlproc-Experiment"); h != "fig10" {
		t.Fatalf("X-Srlproc-Experiment = %q, want fig10", h)
	}
}

// TestStoreEndpointsWithoutStore pins the storeless responses: both store
// endpoints answer 503 when no persistent tier is attached.
func TestStoreEndpointsWithoutStore(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/v1/results/0123456789abcdef", "/v1/store/stats"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s: status %d (%s), want 503", path, resp.StatusCode, b)
		}
	}
}

// TestStoreWarmRestartOverHTTP is the service-level warm-restart round
// trip: simulate a point on a server backed by a disk store, "restart"
// (fresh server + memo cache over the same directory), and require the
// repeated request to be served from the store — cache-hit header, zero
// store misses, byte-identical body — and the persisted document to be
// retrievable via GET /v1/results/{fingerprint}.
func TestStoreWarmRestartOverHTTP(t *testing.T) {
	dir := t.TempDir()
	body := `{"design":"srl","suite":"WEB","run_uops":12000,"warmup_uops":2000}`

	st1, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := serve.New(serve.Config{Store: st1})
	ts1 := httptest.NewServer(srv1.Handler())
	cold := post(t, ts1.Client(), ts1.URL+"/v1/simulate", body)
	coldDoc := readAll(t, cold)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", cold.StatusCode, coldDoc)
	}
	fp := cold.Header.Get("X-Srlproc-Point")
	if len(fp) != 16 {
		t.Fatalf("fingerprint header %q", fp)
	}
	srv1.Cache().FlushStore() // what drain does before process exit

	// The persisted document is directly addressable.
	resp, err := ts1.Client().Get(ts1.URL + "/v1/results/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	fetched := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status %d: %s", resp.StatusCode, fetched)
	}
	if !bytes.Equal(fetched, coldDoc) {
		t.Fatal("GET /v1/results body differs from the simulate response")
	}
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/results/ffffffffffffffff", http.StatusNotFound},
		{"/v1/results/xyz", http.StatusBadRequest},
	} {
		r, err := ts1.Client().Get(ts1.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, r)
		if r.StatusCode != tc.want {
			t.Fatalf("GET %s: status %d, want %d", tc.path, r.StatusCode, tc.want)
		}
	}
	ts1.Close()

	// "Restart": a fresh server, fresh memo cache, same store directory.
	st2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := serve.New(serve.Config{Store: st2})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	warm := post(t, ts2.Client(), ts2.URL+"/v1/simulate", body)
	warmDoc := readAll(t, warm)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", warm.StatusCode, warmDoc)
	}
	if h := warm.Header.Get("X-Srlproc-Cache"); h != "hit" {
		t.Fatalf("warm cache header %q, want hit", h)
	}
	if !bytes.Equal(coldDoc, warmDoc) {
		t.Fatal("warm-restart response is not byte-identical")
	}
	stResp, err := ts2.Client().Get(ts2.URL + "/v1/store/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats store.Stats
	if err := json.Unmarshal(readAll(t, stResp), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Hits == 0 || stats.Misses != 0 || stats.Puts != 0 {
		t.Fatalf("warm store stats: %+v", stats)
	}
	if doc := srv2.Cache().Stats(); doc.Misses != 0 || doc.StoreHits == 0 {
		t.Fatalf("warm cache stats: %+v", doc)
	}
}
