package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"srlproc/internal/bench"
	"srlproc/internal/cluster"
	"srlproc/internal/core"
	"srlproc/internal/store"
	"srlproc/internal/sweep"
	"srlproc/internal/trace"
)

// SimulateRequest is the POST /v1/simulate body: one design point. The
// zero values fall back to the Table 1 defaults of the chosen design.
type SimulateRequest struct {
	Design string `json:"design"` // baseline|large|hier|srl|filtered or canonical names
	Suite  string `json:"suite"`  // SFP2K|SINT2K|WEB|MM|PROD|SERVER|WS

	RunUops    uint64 `json:"run_uops,omitempty"`
	WarmupUops uint64 `json:"warmup_uops,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	STQSize    int    `json:"stq_size,omitempty"` // large/filtered designs

	NoLCF        bool `json:"no_lcf,omitempty"`
	NoIndexedFwd bool `json:"no_indexed_fwd,omitempty"`
	NoFC         bool `json:"no_fc,omitempty"`

	// TimeoutMs bounds this job (capped by the server's MaxTimeout);
	// zero means the server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`

	// NoCache forces a fresh simulation, bypassing the memo cache.
	NoCache bool `json:"no_cache,omitempty"`
}

// ParseDesign resolves the CLI short names and the canonical
// StoreDesign.String names.
func ParseDesign(name string) (core.StoreDesign, error) {
	switch strings.ToLower(name) {
	case "baseline":
		return core.DesignBaseline, nil
	case "large", "ideal":
		return core.DesignLargeSTQ, nil
	case "hier", "hierarchical":
		return core.DesignHierarchical, nil
	case "srl":
		return core.DesignSRL, nil
	case "filtered":
		return core.DesignFilteredSTQ, nil
	}
	var d core.StoreDesign
	if err := d.UnmarshalText([]byte(name)); err == nil {
		return d, nil
	}
	return 0, fmt.Errorf("unknown store design %q", name)
}

// ParseSuite resolves a suite name case-insensitively.
func ParseSuite(name string) (trace.Suite, error) {
	for _, s := range trace.AllSuites() {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown suite %q", name)
}

// config builds the core.Config for the request, mirroring cmd/srlsim's
// flag handling so a curl of the service and a CLI run of the same point
// produce byte-identical Results JSON.
func (req *SimulateRequest) config() (core.Config, trace.Suite, error) {
	d, err := ParseDesign(req.Design)
	if err != nil {
		return core.Config{}, 0, err
	}
	su, err := ParseSuite(req.Suite)
	if err != nil {
		return core.Config{}, 0, err
	}
	cfg := core.DefaultConfig(d)
	if req.RunUops > 0 {
		cfg.RunUops = req.RunUops
	}
	if req.WarmupUops > 0 {
		cfg.WarmupUops = req.WarmupUops
	}
	if req.Seed > 0 {
		cfg.Seed = req.Seed
	}
	if d == core.DesignLargeSTQ || d == core.DesignFilteredSTQ {
		cfg.STQSize = 1024
		if req.STQSize > 0 {
			cfg.STQSize = req.STQSize
		}
	}
	if req.NoLCF {
		cfg.UseLCF = false
		cfg.UseIndexedFwd = false
	}
	if req.NoIndexedFwd {
		cfg.UseIndexedFwd = false
	}
	if req.NoFC {
		cfg.UseFC = false
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, 0, err
	}
	return cfg, su, nil
}

// decodeBody parses a bounded JSON request body into dst, rejecting
// unknown fields so client typos surface as 400s rather than silently
// running the wrong experiment.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.bump(func(c *counters) { c.BadRequests++ })
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeAPIError(w, cluster.Errorf(http.StatusRequestEntityTooLarge, cluster.CodePayloadTooLarge,
				"request body exceeds %d bytes", mbe.Limit))
			return false
		}
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// handleSimulate runs one design point and answers with the exact
// core.Results JSON document. Identical retried requests collapse onto
// the memo cache: the X-Srlproc-Cache header reports hit or miss, and
// X-Srlproc-Point carries the core.PointFingerprint idempotency key.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.bump(func(c *counters) { c.Requests++ })
	var req SimulateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	cfg, su, err := req.config()
	if err != nil {
		s.bump(func(c *counters) { c.BadRequests++ })
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	ctx, stop := s.jobContext(r, req.TimeoutMs)
	defer stop()
	runRelease, err := s.acquireRun(ctx)
	if err != nil {
		s.finishJob(w, err)
		return
	}

	start := time.Now()
	rep, err := sweep.Run(ctx, []sweep.Point{{Label: "simulate", Cfg: cfg, Suite: su}},
		sweep.Options{Workers: 1, Cache: s.cache, NoCache: req.NoCache})
	runRelease()
	s.observeJob(time.Since(start))
	if !s.finishJob(w, err) {
		return
	}

	pr := &rep.Points[0]
	s.mergeMetrics(&pr.Results.Metrics)
	doc, err := json.Marshal(pr.Results)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("X-Srlproc-Point", fmt.Sprintf("%016x", core.PointFingerprint(cfg, su)))
	if pr.CacheHit {
		w.Header().Set("X-Srlproc-Cache", "hit")
	} else {
		w.Header().Set("X-Srlproc-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, doc)
}

// SweepRequest is the POST /v1/sweep body: one named experiment of the
// paper's evaluation (a Figure 2/6-style batch, Table 3, ...).
type SweepRequest struct {
	// Experiment names the batch: fig2, fig6, fig7, fig8, fig9, fig10,
	// table3, energy, latency — or a "figure2"-style alias; names resolve
	// through bench.ParseExperimentID.
	Experiment string `json:"experiment"`

	// Quick runs at reduced scale (bench.QuickOptions).
	Quick bool `json:"quick,omitempty"`

	RunUops    uint64 `json:"run_uops,omitempty"`
	WarmupUops uint64 `json:"warmup_uops,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`

	// Workers overrides the per-job sweep pool size.
	Workers int `json:"workers,omitempty"`

	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	NoCache   bool  `json:"no_cache,omitempty"`

	// Stream switches the response to Server-Sent Events: one "progress"
	// event per completed point, then a final "result" (or "error")
	// event. Also triggered by "Accept: text/event-stream".
	Stream bool `json:"stream,omitempty"`
}

// experimentRunner adapts one bench runner to a uniform signature.
type experimentRunner func(ctx context.Context, o bench.Options) (any, error)

// Experiments lists the batch names /v1/sweep accepts, in the
// evaluation's presentation order.
func Experiments() []string {
	ids := bench.AllExperiments()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = id.String()
	}
	return out
}

// experimentDoc is one experiment's entry in GET /v1/experiments.
type experimentDoc struct {
	Name        string   `json:"name"`
	Aliases     []string `json:"aliases,omitempty"`
	Description string   `json:"description"`
}

// experimentsDoc is the GET /v1/experiments response body: the sweepable
// experiments with their accepted aliases, plus a hint per SweepRequest
// parameter so the API is discoverable without reading source.
type experimentsDoc struct {
	Experiments []experimentDoc   `json:"experiments"`
	Parameters  map[string]string `json:"parameters"`
}

// handleExperiments serves the experiment catalog /v1/sweep draws from.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	s.bump(func(c *counters) { c.Requests++ })
	ids := bench.AllExperiments()
	doc := experimentsDoc{
		Experiments: make([]experimentDoc, 0, len(ids)),
		Parameters: map[string]string{
			"experiment":  "required: canonical name or alias from this catalog",
			"quick":       "bool: run at reduced scale",
			"run_uops":    "uint: measured uops per point (0 = experiment default)",
			"warmup_uops": "uint: warmup uops per point (0 = experiment default)",
			"seed":        "uint: base RNG seed (0 = experiment default)",
			"workers":     "int: per-job sweep pool size (0 = server default)",
			"timeout_ms":  "int: job deadline, capped by the server's -max-timeout",
			"no_cache":    "bool: bypass the memo cache",
			"stream":      "bool: stream progress as Server-Sent Events",
		},
	}
	for _, id := range ids {
		doc.Experiments = append(doc.Experiments, experimentDoc{
			Name:        id.String(),
			Aliases:     id.Aliases(),
			Description: id.Description(),
		})
	}
	b, err := json.Marshal(doc)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, b)
}

// options builds the bench.Options for the request against the server's
// cache and worker-pool configuration.
func (req *SweepRequest) options(s *Server) bench.Options {
	o := bench.DefaultOptions()
	if req.Quick {
		o = bench.QuickOptions()
	}
	if req.RunUops > 0 {
		o.RunUops = req.RunUops
	}
	if req.WarmupUops > 0 {
		o.WarmupUops = req.WarmupUops
	}
	if req.Seed > 0 {
		o.Seed = req.Seed
	}
	o.Workers = s.cfg.Workers
	if req.Workers != 0 {
		o.Workers = req.Workers
	}
	o.NoCache = req.NoCache
	o.Cache = s.cache
	return o
}

// handleSweep executes one named experiment batch and answers with its
// JSON document — the same document `experiments -json -only <name>`
// writes — or streams progress over SSE when requested. Experiment names
// resolve through bench.ParseExperimentID, so the historical short names
// and the "figure2"-style aliases are both accepted; the canonical name
// is echoed in the X-Srlproc-Experiment response header.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.bump(func(c *counters) { c.Requests++ })
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	id, err := bench.ParseExperimentID(req.Experiment)
	if err != nil {
		s.bump(func(c *counters) { c.BadRequests++ })
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("X-Srlproc-Experiment", id.String())
	runner := func(ctx context.Context, o bench.Options) (any, error) {
		if s.cluster != nil {
			return s.runClusterSweep(ctx, id, &req, o)
		}
		return bench.RunExperiment(ctx, id, o)
	}
	stream := req.Stream || strings.Contains(r.Header.Get("Accept"), "text/event-stream")

	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	ctx, stop := s.jobContext(r, req.TimeoutMs)
	defer stop()
	runRelease, err := s.acquireRun(ctx)
	if err != nil {
		s.finishJob(w, err)
		return
	}

	opts := req.options(s)
	if stream {
		defer runRelease()
		s.streamSweep(w, ctx, runner, opts)
		return
	}

	start := time.Now()
	result, err := runner(ctx, opts)
	runRelease()
	s.observeJob(time.Since(start))
	if !s.finishJob(w, err) {
		return
	}
	doc, err := json.Marshal(result)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// sseProgress is the wire form of one progress event.
type sseProgress struct {
	Done      int    `json:"done"`
	Total     int    `json:"total"`
	CacheHits int    `json:"cache_hits"`
	Failed    int    `json:"failed"`
	ElapsedMs int64  `json:"elapsed_ms"`
	EtaMs     int64  `json:"eta_ms"`
	Last      string `json:"last"`
}

// streamSweep runs the experiment while emitting SSE events: "progress"
// per completed point (strictly increasing done counts — late-arriving
// concurrent snapshots are dropped rather than reordered), then exactly
// one terminal "result" or "error" event.
func (s *Server) streamSweep(w http.ResponseWriter, ctx context.Context, runner experimentRunner, opts bench.Options) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.finishJob(w, errors.New("streaming unsupported by this connection"))
		return
	}
	s.bump(func(c *counters) { c.SSEStreams++ })
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// Workers publish snapshots concurrently; a buffered channel keeps
	// them off the simulation's critical path, dropping under backlog
	// (the monotonic filter below would discard stale ones anyway).
	progress := make(chan sweep.Progress, 128)
	opts.Progress = func(p sweep.Progress) {
		select {
		case progress <- p:
		default:
		}
	}

	type outcome struct {
		result any
		err    error
	}
	resc := make(chan outcome, 1)
	start := time.Now()
	go func() {
		result, err := runner(ctx, opts)
		resc <- outcome{result, err}
	}()

	writeEvent := func(event string, doc []byte) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, doc)
		fl.Flush()
	}
	lastDone := 0
	emitProgress := func(p sweep.Progress) {
		if p.Done <= lastDone {
			return
		}
		lastDone = p.Done
		doc, _ := json.Marshal(sseProgress{
			Done:      p.Done,
			Total:     p.Total,
			CacheHits: p.CacheHits,
			Failed:    p.Failed,
			ElapsedMs: p.Elapsed.Milliseconds(),
			EtaMs:     p.ETA.Milliseconds(),
			Last:      p.Last.String(),
		})
		writeEvent("progress", doc)
	}
	for {
		select {
		case p := <-progress:
			emitProgress(p)
		case out := <-resc:
			s.observeJob(time.Since(start))
			// Flush progress the workers raced in ahead of the result.
			for {
				select {
				case p := <-progress:
					emitProgress(p)
					continue
				default:
				}
				break
			}
			if out.err != nil {
				s.bump(func(c *counters) {
					c.Failed++
					if errors.Is(out.err, context.DeadlineExceeded) {
						c.Timeouts++
					}
				})
				doc, _ := json.Marshal(map[string]string{"error": out.err.Error()})
				writeEvent("error", doc)
				return
			}
			doc, err := json.Marshal(out.result)
			if err != nil {
				doc, _ = json.Marshal(map[string]string{"error": err.Error()})
				writeEvent("error", doc)
				return
			}
			s.bump(func(c *counters) { c.Completed++ })
			writeEvent("result", doc)
			return
		}
	}
}

// handleResults serves one persisted result by point fingerprint: the
// GET /v1/results/{fingerprint} body is the exact core.Results JSON
// document the simulation answered with. Results are looked up in the
// attached persistent store under this binary's code stamp — 503 without
// a store, 404 when the point is unknown (or persisted artifacts-only,
// i.e. not hydratable).
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	s.bump(func(c *counters) { c.Requests++ })
	st := s.cache.Store()
	if st == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no result store attached (start with -store-dir)")
		return
	}
	raw := r.PathValue("fingerprint")
	fp, err := strconv.ParseUint(raw, 16, 64)
	if err != nil || len(raw) != 16 {
		s.bump(func(c *counters) { c.BadRequests++ })
		s.writeError(w, http.StatusBadRequest, "fingerprint %q: want 16 hex digits", raw)
		return
	}
	key := store.Key{Fingerprint: fp, Stamp: store.CodeStamp()}
	res, ok, err := st.Get(key)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		s.writeError(w, http.StatusNotFound, "no stored result for point %s under this build", key.FingerprintHex())
		return
	}
	doc, err := json.Marshal(res)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("X-Srlproc-Point", key.FingerprintHex())
	writeJSON(w, http.StatusOK, doc)
}

// handleStoreStats serves the persistent store's counter snapshot, or 503
// when the server runs without a store.
func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	s.bump(func(c *counters) { c.Requests++ })
	st, ok := s.cache.StoreStats()
	if !ok {
		s.writeError(w, http.StatusServiceUnavailable, "no result store attached (start with -store-dir)")
		return
	}
	doc, err := json.Marshal(st)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}
