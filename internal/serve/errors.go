package serve

import (
	"context"
	"errors"
	"mime"
	"net/http"

	"srlproc/internal/cluster"
)

// The v1 error contract: every error response, on every endpoint, is the
// one JSON envelope defined in internal/cluster (shared with the
// coordinator↔worker job RPC):
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": 1000}}
//
// with Content-Type application/json. Method and media-type mismatches
// are enforced uniformly by the endpoint wrapper below, so a client can
// always json-decode an error body no matter which handler or layer
// produced it.

// writeError emits a uniform error document whose code derives from the
// status.
func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeAPIError(w, cluster.Errorf(status, cluster.CodeForStatus(status), format, args...))
}

// writeAPIError emits e as the v1 error envelope.
func (s *Server) writeAPIError(w http.ResponseWriter, e *cluster.APIError) {
	cluster.WriteError(w, e)
}

// errStatus maps a job error to an HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, cluster.ErrNoLiveWorkers):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// errCode maps a job error to its envelope code.
func errCode(err error) string {
	switch {
	case errors.Is(err, cluster.ErrNoLiveWorkers):
		return cluster.CodeUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return cluster.CodeTimeout
	case errors.Is(err, context.Canceled):
		return cluster.CodeClientClosedRequest
	default:
		return cluster.CodeInternal
	}
}

// endpoint wraps a handler with the uniform v1 routing contract: exactly
// one allowed method (405 + Allow otherwise) and, for JSON endpoints, an
// application/json request body (415 otherwise; a missing Content-Type is
// tolerated for curl-friendliness).
func (s *Server) endpoint(method string, jsonBody bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			s.bump(func(c *counters) { c.BadRequests++ })
			w.Header().Set("Allow", method)
			s.writeAPIError(w, cluster.Errorf(http.StatusMethodNotAllowed, cluster.CodeMethodNotAllowed,
				"%s does not allow %s (allow: %s)", r.URL.Path, r.Method, method))
			return
		}
		if jsonBody {
			if ct := r.Header.Get("Content-Type"); ct != "" {
				mt, _, err := mime.ParseMediaType(ct)
				if err != nil || mt != "application/json" {
					s.bump(func(c *counters) { c.BadRequests++ })
					s.writeAPIError(w, cluster.Errorf(http.StatusUnsupportedMediaType, cluster.CodeUnsupportedMedia,
						"%s wants Content-Type application/json, got %q", r.URL.Path, ct))
					return
				}
			}
		}
		h(w, r)
	}
}

// handleNotFound answers unrouted paths with the envelope instead of the
// ServeMux plain-text default.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	s.writeAPIError(w, cluster.Errorf(http.StatusNotFound, cluster.CodeNotFound, "no such endpoint: %s", r.URL.Path))
}
