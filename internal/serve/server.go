// Package serve turns the simulator into a long-lived HTTP service:
// simulation and sweep jobs are accepted over JSON, executed on the
// internal/sweep bounded worker pool with per-request deadlines, and
// answered with the same machine-readable documents the CLIs export.
//
// The server is built for a deployment where it stays up for weeks under
// bursty load:
//
//   - a bounded admission queue sheds excess load with 429 + Retry-After
//     instead of queueing unboundedly;
//   - per-request deadlines propagate through context.Context into
//     core.RunContext, so a stuck or oversized job cannot pin a worker;
//   - identical requests collapse onto the single-flight memo cache keyed
//     by core.PointFingerprint, making client retries idempotent and
//     cheap, and the cache itself is bounded (LRU + byte budget) so
//     memoization cannot become a leak;
//   - SIGTERM (via the context handed to Serve) drains gracefully: the
//     listener stops accepting, in-flight jobs finish, and a hard
//     deadline aborts whatever remains.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"srlproc/internal/cluster"
	"srlproc/internal/obs"
	"srlproc/internal/store"
	"srlproc/internal/sweep"
)

// Config sizes the server. The zero value is usable: every field falls
// back to the default named beside it.
type Config struct {
	// MaxConcurrent bounds how many jobs execute at once (default 2).
	// Each job may itself fan out onto Workers simulation goroutines.
	MaxConcurrent int

	// QueueDepth bounds how many admitted jobs may wait for an execution
	// slot beyond the running ones (default 8). Requests beyond
	// MaxConcurrent+QueueDepth are shed with 429.
	QueueDepth int

	// Workers is the sweep worker-pool size inside one job: 0 means one
	// per CPU, 1 means serial, n caps concurrency.
	Workers int

	// DefaultTimeout applies to requests that do not set timeout_ms
	// (default 2m). MaxTimeout caps client-requested deadlines
	// (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// DrainTimeout is the graceful-drain hard deadline: after SIGTERM the
	// server finishes in-flight jobs for at most this long before
	// cancelling them (default 30s).
	DrainTimeout time.Duration

	// Cache is the memo cache jobs run against; nil means a fresh bounded
	// cache with the sweep package defaults.
	Cache *sweep.Cache

	// Store, when non-nil, is attached to the cache as its persistent
	// tier: memo misses fall through to it before simulating, completions
	// write through, and GET /v1/results/{fingerprint} + /v1/store/stats
	// are served from it. Pending writes are flushed on drain; the caller
	// retains ownership and closes the store after Serve returns.
	Store store.ResultStore

	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64

	// ClusterWorkers lists worker base URLs ("host:port" or full URLs).
	// Non-empty turns this server into a cluster coordinator: /v1/sweep
	// fans the experiment's design points out as /v1/jobs RPCs, routed
	// by consistent hash of each point's fingerprint, and merges the
	// partial reports into the same document a local run produces.
	ClusterWorkers []string

	// WorkerMode marks this process as a cluster worker for /healthz and
	// /metrics role reporting. Every server answers /v1/jobs regardless;
	// the flag only documents intent.
	WorkerMode bool

	// ClusterClient overrides the coordinator's worker transport (tests
	// inject fakes); nil means an HTTP client. Ignored without
	// ClusterWorkers.
	ClusterClient cluster.JobClient
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	} else if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Cache == nil {
		c.Cache = sweep.NewCache()
	}
	return c
}

// counters is the server-lifetime counter set exported by /metrics.
// Guarded by Server.mu.
type counters struct {
	Requests        uint64 `json:"requests_total"`
	Shed            uint64 `json:"shed_total"`
	RefusedDraining uint64 `json:"refused_draining_total"`
	Completed       uint64 `json:"completed_total"`
	Failed          uint64 `json:"failed_total"`
	Timeouts        uint64 `json:"timeout_total"`
	BadRequests     uint64 `json:"bad_request_total"`
	SSEStreams      uint64 `json:"sse_streams_total"`
}

// Server is the simulation service. Create with New, expose with Handler
// (tests) or run with Serve (production, including graceful drain).
type Server struct {
	cfg   Config
	cache *sweep.Cache
	start time.Time

	// Admission: slots bounds admitted jobs (running + queued); run
	// bounds the ones actually executing.
	slots chan struct{}
	run   chan struct{}

	draining atomic.Bool
	// hardCtx cancels every in-flight job when the drain hard deadline
	// expires.
	hardCtx    context.Context
	hardCancel context.CancelFunc

	// avgJobNs is an EWMA of job wall time, feeding Retry-After.
	avgJobNs atomic.Int64

	mu   sync.Mutex
	cnt  counters
	agg  obs.MetricSet // per-run metric sets merged over the server's life
	jobs sync.WaitGroup

	// cluster is non-nil on coordinators (Config.ClusterWorkers set).
	cluster *clusterNode
}

// New builds a Server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Store != nil {
		cfg.Cache.AttachStore(cfg.Store)
	}
	hardCtx, hardCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      cfg.Cache,
		start:      time.Now(),
		slots:      make(chan struct{}, cfg.MaxConcurrent+cfg.QueueDepth),
		run:        make(chan struct{}, cfg.MaxConcurrent),
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
	}
	if len(cfg.ClusterWorkers) > 0 {
		s.cluster = newClusterNode(cfg.ClusterWorkers, cfg.ClusterClient)
	}
	return s
}

// role reports this server's cluster role for /healthz and /metrics.
func (s *Server) role() string {
	switch {
	case s.cluster != nil:
		return "coordinator"
	case s.cfg.WorkerMode:
		return "worker"
	}
	return "standalone"
}

// Cache returns the memo cache the server runs jobs against.
func (s *Server) Cache() *sweep.Cache { return s.cache }

// Handler returns the server's routed HTTP handler. Every route goes
// through the endpoint wrapper, so wrong methods (405 + Allow), wrong
// request media types (415) and unknown paths (404) all answer with the
// same JSON error envelope the handlers use.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/simulate", s.endpoint(http.MethodPost, true, s.handleSimulate))
	mux.HandleFunc("/v1/sweep", s.endpoint(http.MethodPost, true, s.handleSweep))
	mux.HandleFunc("/v1/jobs", s.endpoint(http.MethodPost, true, s.handleJobs))
	mux.HandleFunc("/v1/experiments", s.endpoint(http.MethodGet, false, s.handleExperiments))
	mux.HandleFunc("/v1/results/{fingerprint}", s.endpoint(http.MethodGet, false, s.handleResults))
	mux.HandleFunc("/v1/store/stats", s.endpoint(http.MethodGet, false, s.handleStoreStats))
	mux.HandleFunc("/healthz", s.endpoint(http.MethodGet, false, s.handleHealthz))
	mux.HandleFunc("/metrics", s.endpoint(http.MethodGet, false, s.handleMetrics))
	mux.HandleFunc("/", s.handleNotFound)
	return mux
}

// Serve accepts connections on ln until ctx is cancelled (SIGTERM in
// production), then drains: the listener closes, in-flight jobs run to
// completion, and after Config.DrainTimeout whatever remains is cancelled
// and the connections are closed. A clean drain returns nil; hitting the
// hard deadline returns an error so operators can tell the difference.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	return s.drain(hs)
}

// drain performs the graceful-shutdown sequence described on Serve.
// Either way it ends, pending store write-throughs are flushed so every
// completed job's result is durable before the process exits.
func (s *Server) drain(hs *http.Server) error {
	s.draining.Store(true)
	defer s.cache.FlushStore()
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(dctx) // stop accepting, wait for in-flight handlers
	if err == nil {
		return nil
	}
	// Hard deadline: cancel every job context, then close connections.
	s.hardCancel()
	s.jobs.Wait()
	hs.Close()
	return fmt.Errorf("serve: drain hard deadline exceeded: %w", err)
}

// Draining reports whether the server has begun its graceful drain.
func (s *Server) Draining() bool { return s.draining.Load() }

// admit reserves an admission slot, or writes the load-shed/draining
// response and returns false. On success the caller must call the
// returned release func exactly once, after the job finishes.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	if s.draining.Load() {
		s.bump(func(c *counters) { c.RefusedDraining++ })
		s.writeAPIError(w, cluster.Errorf(http.StatusServiceUnavailable, cluster.CodeDraining, "server is draining"))
		return nil, false
	}
	select {
	case s.slots <- struct{}{}:
	default:
		s.bump(func(c *counters) { c.Shed++ })
		e := cluster.Errorf(http.StatusTooManyRequests, cluster.CodeTooManyRequests, "job queue full")
		e.RetryAfterMs = int64(s.retryAfterSeconds()) * 1000
		s.writeAPIError(w, e)
		return nil, false
	}
	s.jobs.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			<-s.slots
			s.jobs.Done()
		})
	}, true
}

// acquireRun blocks until an execution slot frees up, the job context
// dies, or the drain hard deadline fires. It returns a release func on
// success.
func (s *Server) acquireRun(ctx context.Context) (release func(), err error) {
	select {
	case s.run <- struct{}{}:
		return func() { <-s.run }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.hardCtx.Done():
		return nil, errors.New("server is draining")
	}
}

// retryAfterSeconds estimates how long a shed client should back off:
// the EWMA job duration scaled by current occupancy over the execution
// slots, clamped to [1, 60].
func (s *Server) retryAfterSeconds() int {
	avg := time.Duration(s.avgJobNs.Load())
	if avg <= 0 {
		return 1
	}
	occupied := len(s.slots)
	secs := int(math.Ceil(avg.Seconds() * float64(occupied) / float64(s.cfg.MaxConcurrent)))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// observeJob folds one finished job into the Retry-After EWMA.
func (s *Server) observeJob(wall time.Duration) {
	const alpha = 4 // EWMA weight 1/4 on the newest sample
	for {
		old := s.avgJobNs.Load()
		var next int64
		if old == 0 {
			next = int64(wall)
		} else {
			next = old + (int64(wall)-old)/alpha
		}
		if s.avgJobNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// bump applies f to the counter set under the server lock.
func (s *Server) bump(f func(*counters)) {
	s.mu.Lock()
	f(&s.cnt)
	s.mu.Unlock()
}

// mergeMetrics folds one run's typed metric set into the service
// aggregate exported by /metrics.
func (s *Server) mergeMetrics(m *obs.MetricSet) {
	s.mu.Lock()
	s.agg.Merge(m)
	s.mu.Unlock()
}

// jobTimeout resolves a request's timeout_ms against the server bounds.
func (s *Server) jobTimeout(timeoutMs int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// jobContext derives the context one job runs under: the request context
// bounded by the resolved timeout, and cancelled early if the drain hard
// deadline fires. The returned stop func must be deferred.
func (s *Server) jobContext(r *http.Request, timeoutMs int64) (context.Context, func()) {
	ctx, cancel := context.WithTimeout(r.Context(), s.jobTimeout(timeoutMs))
	unhook := context.AfterFunc(s.hardCtx, cancel)
	return ctx, func() {
		unhook()
		cancel()
	}
}

// statusClientClosedRequest is nginx's convention for "client went away";
// nothing can read the response, but logs and counters see the intent.
const statusClientClosedRequest = 499

// finishJob classifies a completed job into counters and, on error,
// writes the error response. It returns true when the job succeeded.
func (s *Server) finishJob(w http.ResponseWriter, err error) bool {
	if err == nil {
		s.bump(func(c *counters) { c.Completed++ })
		return true
	}
	status := errStatus(err)
	s.bump(func(c *counters) {
		c.Failed++
		if status == http.StatusGatewayTimeout {
			c.Timeouts++
		}
	})
	s.writeAPIError(w, cluster.Errorf(status, errCode(err), "%v", err))
	return false
}

// writeJSON emits doc (already-marshaled JSON) with a trailing newline.
func writeJSON(w http.ResponseWriter, status int, doc []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(doc, '\n'))
}

// healthDoc is the /healthz response body. Role drives cluster
// membership: coordinators probe worker /healthz endpoints and only
// dispatch to workers answering 200, so a draining worker (503) leaves
// the live set before its listener goes away.
type healthDoc struct {
	Status   string `json:"status"`
	Role     string `json:"role"`
	InFlight int    `json:"inflight"`
	Queued   int    `json:"queued"`
	UptimeMs int64  `json:"uptime_ms"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	running := len(s.run)
	queued := len(s.slots) - running
	if queued < 0 {
		queued = 0
	}
	doc := healthDoc{
		Status:   "ok",
		Role:     s.role(),
		InFlight: running,
		Queued:   queued,
		UptimeMs: time.Since(s.start).Milliseconds(),
	}
	status := http.StatusOK
	if s.draining.Load() {
		doc.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	b, _ := json.Marshal(doc)
	writeJSON(w, status, b)
}

// metricsDoc is the /metrics response body: server-lifetime counters,
// the memo-cache snapshot, the persistent-store snapshot (when a store
// is attached), and the aggregated per-run typed metrics.
type metricsDoc struct {
	Server struct {
		counters
		UptimeMs int64 `json:"uptime_ms"`
		InFlight int   `json:"inflight"`
		Queued   int   `json:"queued"`
	} `json:"server"`
	Cache      sweep.Stats       `json:"cache"`
	Store      *store.Stats      `json:"store,omitempty"`
	Cluster    *clusterMetrics   `json:"cluster,omitempty"`
	SimMetrics map[string]uint64 `json:"sim_metrics"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var doc metricsDoc
	running := len(s.run)
	queued := len(s.slots) - running
	if queued < 0 {
		queued = 0
	}
	s.mu.Lock()
	doc.Server.counters = s.cnt
	doc.SimMetrics = s.agg.Snapshot()
	s.mu.Unlock()
	doc.Server.UptimeMs = time.Since(s.start).Milliseconds()
	doc.Server.InFlight = running
	doc.Server.Queued = queued
	doc.Cache = s.cache.Stats()
	if st, ok := s.cache.StoreStats(); ok {
		doc.Store = &st
	}
	doc.Cluster = s.clusterMetricsSnapshot()
	b, err := json.Marshal(doc)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, b)
}
