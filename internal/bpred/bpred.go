// Package bpred implements the baseline machine's branch direction
// predictors: a gshare predictor, a perceptron predictor, and the
// gshare-perceptron hybrid with a chooser that Table 1 of the paper
// specifies (64K gshare entries, 256 perceptrons).
package bpred

// Predictor predicts conditional branch directions and is trained with
// outcomes. Implementations keep their own global history; Update must be
// called for every predicted branch, in program order, with the same PC
// passed to Predict.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
}

// --- gshare ---

// Gshare is the classic global-history XOR-indexed two-bit-counter scheme.
type Gshare struct {
	table   []uint8 // 2-bit saturating counters
	history uint64
	histLen uint
	mask    uint64
}

// NewGshare creates a gshare predictor with entries counters (power of two)
// and history length histLen bits.
func NewGshare(entries int, histLen uint) *Gshare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: gshare entries must be a positive power of two")
	}
	g := &Gshare{
		table:   make([]uint8, entries),
		histLen: histLen,
		mask:    uint64(entries - 1),
	}
	for i := range g.table {
		g.table[i] = 1 // weakly not-taken
	}
	return g
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update implements Predictor.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	c := g.table[i]
	if taken {
		if c < 3 {
			g.table[i] = c + 1
		}
	} else {
		if c > 0 {
			g.table[i] = c - 1
		}
	}
	g.history = ((g.history << 1) | b2u(taken)) & ((1 << g.histLen) - 1)
}

// --- perceptron ---

// Perceptron is Jiménez & Lin's perceptron predictor: per-PC weight vectors
// dotted with the global history register.
type Perceptron struct {
	weights   [][]int16
	history   []int8 // +1 taken, -1 not taken
	threshold int32
	mask      uint64
}

// NewPerceptron creates a predictor with rows weight vectors (power of two)
// over histLen history bits.
func NewPerceptron(rows int, histLen int) *Perceptron {
	if rows <= 0 || rows&(rows-1) != 0 {
		panic("bpred: perceptron rows must be a positive power of two")
	}
	p := &Perceptron{
		weights:   make([][]int16, rows),
		history:   make([]int8, histLen),
		threshold: int32(1.93*float64(histLen) + 14), // standard training threshold
		mask:      uint64(rows - 1),
	}
	for i := range p.weights {
		p.weights[i] = make([]int16, histLen+1) // +1 for bias weight
	}
	for i := range p.history {
		p.history[i] = -1
	}
	return p
}

func (p *Perceptron) output(pc uint64) int32 {
	w := p.weights[(pc>>2)&p.mask]
	y := int32(w[0]) // bias
	for i, h := range p.history {
		y += int32(w[i+1]) * int32(h)
	}
	return y
}

// Predict implements Predictor.
func (p *Perceptron) Predict(pc uint64) bool { return p.output(pc) >= 0 }

// Update implements Predictor.
func (p *Perceptron) Update(pc uint64, taken bool) {
	y := p.output(pc)
	pred := y >= 0
	t := int32(-1)
	if taken {
		t = 1
	}
	if pred != taken || abs32(y) <= p.threshold {
		w := p.weights[(pc>>2)&p.mask]
		w[0] = satAdd(w[0], int16(t))
		for i, h := range p.history {
			w[i+1] = satAdd(w[i+1], int16(t*int32(h)))
		}
	}
	copy(p.history, p.history[1:])
	if taken {
		p.history[len(p.history)-1] = 1
	} else {
		p.history[len(p.history)-1] = -1
	}
}

// --- hybrid ---

// Hybrid combines gshare and perceptron with a per-PC two-bit chooser,
// matching the "gshare-perceptron hybrid" of Table 1.
type Hybrid struct {
	g       *Gshare
	p       *Perceptron
	chooser []uint8
	mask    uint64
}

// NewHybrid creates the Table 1 hybrid: a 64K-entry gshare and 256
// perceptrons, with a 4K-entry chooser.
func NewHybrid() *Hybrid {
	return NewHybridSized(64*1024, 16, 256, 32, 4096)
}

// NewHybridSized creates a hybrid with explicit component sizes.
func NewHybridSized(gshareEntries int, gshareHist uint, perceptrons, percHist, chooserEntries int) *Hybrid {
	if chooserEntries <= 0 || chooserEntries&(chooserEntries-1) != 0 {
		panic("bpred: chooser entries must be a positive power of two")
	}
	h := &Hybrid{
		g:       NewGshare(gshareEntries, gshareHist),
		p:       NewPerceptron(perceptrons, percHist),
		chooser: make([]uint8, chooserEntries),
		mask:    uint64(chooserEntries - 1),
	}
	for i := range h.chooser {
		h.chooser[i] = 2 // weakly prefer perceptron
	}
	return h
}

// Predict implements Predictor.
func (h *Hybrid) Predict(pc uint64) bool {
	if h.chooser[(pc>>2)&h.mask] >= 2 {
		return h.p.Predict(pc)
	}
	return h.g.Predict(pc)
}

// Update implements Predictor.
func (h *Hybrid) Update(pc uint64, taken bool) {
	gp := h.g.Predict(pc)
	pp := h.p.Predict(pc)
	i := (pc >> 2) & h.mask
	c := h.chooser[i]
	// Train chooser toward whichever component was right (when they differ).
	if pp == taken && gp != taken && c < 3 {
		h.chooser[i] = c + 1
	} else if gp == taken && pp != taken && c > 0 {
		h.chooser[i] = c - 1
	}
	h.g.Update(pc, taken)
	h.p.Update(pc, taken)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

func satAdd(a, b int16) int16 {
	s := int32(a) + int32(b)
	const lim = 127 // 8-bit weights stored in int16 for simplicity
	if s > lim {
		return lim
	}
	if s < -lim {
		return -lim
	}
	return int16(s)
}
