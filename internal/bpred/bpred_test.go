package bpred

import "testing"

// train runs pred over a synthetic outcome stream and returns accuracy.
func train(p Predictor, outcomes func(i int) (pc uint64, taken bool), n int) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		pc, taken := outcomes(i)
		if p.Predict(pc) == taken {
			correct++
		}
		p.Update(pc, taken)
	}
	return float64(correct) / float64(n)
}

func TestGshareLearnsBias(t *testing.T) {
	g := NewGshare(1024, 8)
	acc := train(g, func(i int) (uint64, bool) { return 0x400, true }, 1000)
	if acc < 0.99 {
		t.Fatalf("always-taken accuracy %v", acc)
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	g := NewGshare(4096, 8)
	acc := train(g, func(i int) (uint64, bool) { return 0x400, i%2 == 0 }, 4000)
	if acc < 0.95 {
		t.Fatalf("alternating-pattern accuracy %v", acc)
	}
}

func TestPerceptronLearnsBias(t *testing.T) {
	p := NewPerceptron(256, 32)
	acc := train(p, func(i int) (uint64, bool) { return uint64(0x400 + (i%8)*4), (i % 8) < 6 }, 8000)
	if acc < 0.95 {
		t.Fatalf("per-PC bias accuracy %v", acc)
	}
}

func TestPerceptronLearnsCorrelation(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: perfectly
	// predictable from one bit of global history.
	p := NewPerceptron(256, 16)
	prevA := false
	acc := train(p, func(i int) (uint64, bool) {
		if i%2 == 0 {
			prevA = (i/2)%3 == 0
			return 0x100, prevA
		}
		return 0x200, prevA
	}, 20_000)
	if acc < 0.9 {
		t.Fatalf("correlated accuracy %v", acc)
	}
}

func TestHybridAtLeastBias(t *testing.T) {
	h := NewHybrid()
	acc := train(h, func(i int) (uint64, bool) {
		pc := uint64(0x1000 + (i%32)*4)
		return pc, (i % 32) != 5 // one rarely-not-taken site among taken ones
	}, 50_000)
	if acc < 0.95 {
		t.Fatalf("hybrid accuracy %v", acc)
	}
}

func TestHybridChooserPrefersBetter(t *testing.T) {
	// A pure-bias stream: both components learn it; the hybrid must too.
	h := NewHybrid()
	acc := train(h, func(i int) (uint64, bool) { return 0x40, true }, 2000)
	if acc < 0.99 {
		t.Fatalf("hybrid bias accuracy %v", acc)
	}
}

func TestPredictorsDeterministic(t *testing.T) {
	mk := func() Predictor { return NewHybrid() }
	a, b := mk(), mk()
	for i := 0; i < 5000; i++ {
		pc := uint64(0x100 + (i%64)*4)
		taken := (i*i)%7 < 3
		if a.Predict(pc) != b.Predict(pc) {
			t.Fatalf("divergence at %d", i)
		}
		a.Update(pc, taken)
		b.Update(pc, taken)
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewGshare(1000, 8) },    // not a power of two
		func() { NewPerceptron(100, 8) }, // not a power of two
	} {
		func() {
			defer func() { recover() }()
			f()
			t.Fatal("invalid size did not panic")
		}()
	}
}
