// Package heapq provides a uint64-keyed generic min-heap over a
// preallocated backing slice. It exists to take container/heap off the
// simulator's per-cycle hot path: the standard package moves elements
// through interface{} values, which boxes every Push and Pop (one heap
// allocation each) — the dominant allocation sites in a cycle-stepped
// run. This heap stores (key, value) pairs inline in a slice, so
// steady-state Push/Pop allocate nothing once the slice has grown to its
// working size.
//
// The sift algorithm is a line-for-line port of container/heap's up/down
// with pairwise swaps. That is deliberate, not incidental: heap order is
// only partial, so the layout after a sequence of operations — and hence
// the pop order among EQUAL keys — depends on the exact swap sequence.
// The simulator's completion heap is keyed by cycle and routinely holds
// many events for the same cycle; replicating container/heap's swaps
// keeps a refactored simulator bit-for-bit identical to the original.
// Do not "optimise" up/down into a hole-copying sift without re-verifying
// determinism against the full oracle sweep.
package heapq

// Heap is a min-heap of values ordered by a uint64 key. Ties pop in an
// order determined by the swap history (see the package comment); callers
// must either tolerate that order or guarantee distinct keys. The zero
// value is an empty heap ready for use; Grow preallocates capacity.
type Heap[V any] struct {
	s []pair[V]
}

type pair[V any] struct {
	k uint64
	v V
}

// Grow ensures capacity for at least n elements without reallocation.
func (h *Heap[V]) Grow(n int) {
	if cap(h.s) < n {
		s := make([]pair[V], len(h.s), n)
		copy(s, h.s)
		h.s = s
	}
}

// Len returns the number of elements.
func (h *Heap[V]) Len() int { return len(h.s) }

// Reset empties the heap, keeping the backing storage.
func (h *Heap[V]) Reset() { h.s = h.s[:0] }

// Push inserts value v with key k.
func (h *Heap[V]) Push(k uint64, v V) {
	h.s = append(h.s, pair[V]{k: k, v: v})
	h.up(len(h.s) - 1)
}

// Min returns the smallest key and its value without removing it. It must
// not be called on an empty heap.
func (h *Heap[V]) Min() (uint64, V) {
	return h.s[0].k, h.s[0].v
}

// PopMin removes and returns the smallest key and its value. It must not
// be called on an empty heap. The removed slot is zeroed so values holding
// pointers do not pin their referents in the backing array.
func (h *Heap[V]) PopMin() (uint64, V) {
	n := len(h.s) - 1
	h.s[0], h.s[n] = h.s[n], h.s[0]
	h.down(0, n)
	p := h.s[n]
	var zero pair[V]
	h.s[n] = zero
	h.s = h.s[:n]
	return p.k, p.v
}

// At returns the i-th element in heap-internal order (0 = the minimum;
// other positions are unspecified). For full scans such as live-entry
// recounts, without exposing the backing slice.
func (h *Heap[V]) At(i int) (uint64, V) {
	return h.s[i].k, h.s[i].v
}

func (h *Heap[V]) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || h.s[j].k >= h.s[i].k {
			break
		}
		h.s[i], h.s[j] = h.s[j], h.s[i]
		j = i
	}
}

func (h *Heap[V]) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.s[j2].k < h.s[j1].k {
			j = j2 // = 2*i + 2  // right child
		}
		if h.s[j].k >= h.s[i].k {
			break
		}
		h.s[i], h.s[j] = h.s[j], h.s[i]
		i = j
	}
}
