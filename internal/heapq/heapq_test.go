package heapq

import (
	"container/heap"
	"math/rand"
	"testing"
)

type refPair struct {
	k  uint64
	id int
}

type refHeap []refPair

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].k < h[j].k }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refPair)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TestMatchesContainerHeap drives this heap and container/heap with the
// same randomized push/pop sequence, with deliberately heavy key ties, and
// requires identical (key, payload) pop order. The simulator's determinism
// depends on this equivalence: the completion heap pops same-cycle events
// in layout order, so the sift algorithm must match container/heap's
// exactly, not merely satisfy the heap property.
func TestMatchesContainerHeap(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var h Heap[int]
		var ref refHeap
		id := 0
		for op := 0; op < 5000; op++ {
			if ref.Len() == 0 || rng.Intn(3) != 0 {
				k := uint64(rng.Intn(16)) // small key space: many ties
				h.Push(k, id)
				heap.Push(&ref, refPair{k: k, id: id})
				id++
			} else {
				gk, gv := h.PopMin()
				want := heap.Pop(&ref).(refPair)
				if gk != want.k || gv != want.id {
					t.Fatalf("seed %d op %d: got (%d,%d), container/heap gives (%d,%d)",
						seed, op, gk, gv, want.k, want.id)
				}
			}
			if h.Len() != ref.Len() {
				t.Fatalf("length mismatch: %d vs %d", h.Len(), ref.Len())
			}
		}
		for ref.Len() > 0 {
			gk, gv := h.PopMin()
			want := heap.Pop(&ref).(refPair)
			if gk != want.k || gv != want.id {
				t.Fatalf("seed %d drain: got (%d,%d), want (%d,%d)", seed, gk, gv, want.k, want.id)
			}
		}
	}
}

func TestGrowAndReset(t *testing.T) {
	var h Heap[struct{}]
	h.Grow(64)
	for i := 63; i >= 0; i-- {
		h.Push(uint64(i), struct{}{})
	}
	if h.Len() != 64 {
		t.Fatalf("len = %d", h.Len())
	}
	if k, _ := h.Min(); k != 0 {
		t.Fatalf("min = %d", k)
	}
	for i := 0; i < 64; i++ {
		if k, _ := h.PopMin(); k != uint64(i) {
			t.Fatalf("pop %d: got %d", i, k)
		}
	}
	h.Push(9, struct{}{})
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("reset did not empty")
	}
}

// TestZeroAllocSteadyState: once warm, push/pop cycles allocate nothing.
func TestZeroAllocSteadyState(t *testing.T) {
	var h Heap[int]
	h.Grow(128)
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 100; i++ {
			h.Push(uint64(i*7%64), i)
		}
		for h.Len() > 0 {
			h.PopMin()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f times per run", allocs)
	}
}
