package cachesim

import "testing"

func newSmall() *Cache { return NewCache("t", 4*64*2, 2, 3) } // 4 sets, 2-way

func TestLookupMissThenHit(t *testing.T) {
	c := newSmall()
	if hit, _ := c.Lookup(10, 0x1000); hit {
		t.Fatal("cold lookup hit")
	}
	c.Insert(0x1000, 10, false)
	hit, ready := c.Lookup(20, 0x1000)
	if !hit {
		t.Fatal("inserted line missed")
	}
	if ready != 23 {
		t.Fatalf("ready %d, want cycle+latency", ready)
	}
	if c.Accesses() != 2 || c.Misses() != 1 {
		t.Fatalf("counters %d/%d", c.Accesses(), c.Misses())
	}
}

func TestFutureReadyPropagates(t *testing.T) {
	c := newSmall()
	c.Insert(0x1000, 500, false) // fill arrives at cycle 500
	_, ready := c.Lookup(100, 0x1000)
	if ready != 500 {
		t.Fatalf("pending fill ready %d, want 500", ready)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newSmall() // 2-way; lines 0x0000, 0x0100, 0x0200 share set 0 (4 sets x 64B)
	c.Insert(0x0000, 0, false)
	c.Insert(0x0100, 0, false)
	c.Lookup(5, 0x0000) // make 0x0000 MRU
	ev := c.Insert(0x0200, 10, false)
	if !ev.Valid || ev.Addr != 0x0100 {
		t.Fatalf("evicted %+v, want LRU 0x0100", ev)
	}
	if !c.Contains(0x0000) || c.Contains(0x0100) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := newSmall()
	c.Insert(0x0000, 0, true)
	c.Insert(0x0100, 0, false)
	ev := c.Insert(0x0200, 0, false)
	if !ev.Dirty {
		t.Fatal("dirty victim not reported")
	}
	if c.Writebacks() != 1 {
		t.Fatalf("writebacks %d", c.Writebacks())
	}
}

func TestMarkDirtyAndInvalidate(t *testing.T) {
	c := newSmall()
	c.Insert(0x1000, 0, false)
	c.MarkDirty(0x1000)
	present, dirty := c.Invalidate(0x1000)
	if !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Contains(0x1000) {
		t.Fatal("line still present after invalidate")
	}
}

func TestInsertExistingMerges(t *testing.T) {
	c := newSmall()
	c.Insert(0x1000, 100, false)
	ev := c.Insert(0x1000, 200, true) // racing fill: later ready, dirty
	if ev.Valid {
		t.Fatal("merging insert evicted something")
	}
	_, ready := c.Lookup(0, 0x1000)
	if ready != 200 {
		t.Fatalf("merged ready %d", ready)
	}
}

// --- speculative line state (Section 4.3) ---

func TestSpecWriteOneVersionRule(t *testing.T) {
	c := newSmall()
	c.Insert(0x1000, 0, false)
	if r := c.SpecWrite(0x1000, 5, false); !r.Present || r.Conflict {
		t.Fatalf("first spec write: %+v", r)
	}
	// Same checkpoint may write again.
	if r := c.SpecWrite(0x1000, 5, false); r.Conflict {
		t.Fatal("same-checkpoint rewrite conflicted")
	}
	// A different checkpoint must stall.
	r := c.SpecWrite(0x1000, 6, false)
	if !r.Conflict || r.OwnerCkpt != 5 {
		t.Fatalf("one-version rule not enforced: %+v", r)
	}
}

func TestSpecWriteDirtyWritebackFirst(t *testing.T) {
	c := newSmall()
	c.Insert(0x1000, 0, true) // committed dirty data
	r := c.SpecWrite(0x1000, 1, false)
	if !r.NeededWriteback {
		t.Fatal("dirty line speculatively overwritten without writeback")
	}
	if c.Writebacks() != 1 {
		t.Fatalf("writebacks %d", c.Writebacks())
	}
	// A second spec write must not write back again.
	if r := c.SpecWrite(0x1000, 1, false); r.NeededWriteback {
		t.Fatal("double writeback")
	}
}

func TestSpecWriteAbsentLine(t *testing.T) {
	c := newSmall()
	if r := c.SpecWrite(0x1000, 1, false); r.Present {
		t.Fatal("absent line reported present")
	}
}

func TestCommitSpecMakesDirty(t *testing.T) {
	c := newSmall()
	c.Insert(0x1000, 0, false)
	c.SpecWrite(0x1000, 3, false)
	if n := c.CommitSpec(3); n != 1 {
		t.Fatalf("committed %d", n)
	}
	// Committed store data is architectural: evicting it must write back.
	c.Insert(0x0000, 0, false) // same set
	ev1 := c.Insert(0x0100+0x1000%0x100, 0, false)
	_ = ev1
	if c.SpecLines() != 0 {
		t.Fatal("spec lines remain after commit")
	}
	// A new checkpoint can now spec-write it.
	if r := c.SpecWrite(0x1000, 9, false); r.Conflict {
		t.Fatal("committed line still owned")
	}
}

func TestDiscardSpecTempOnlyDropsTemps(t *testing.T) {
	c := newSmall()
	c.Insert(0x1000, 0, false)
	c.Insert(0x2000, 0, false)
	c.SpecWrite(0x1000, 1, true)  // temporary update (§6.5)
	c.SpecWrite(0x2000, 1, false) // redo (non-temp) update
	addrs := c.DiscardSpecTemp()
	if len(addrs) != 1 || addrs[0] != 0x1000 {
		t.Fatalf("temp discard returned %v", addrs)
	}
	if c.Contains(0x1000) {
		t.Fatal("temp line still valid")
	}
	if !c.Contains(0x2000) {
		t.Fatal("redo line was dropped")
	}
}

func TestDiscardSpecFrom(t *testing.T) {
	c := newSmall()
	c.Insert(0x1000, 0, false)
	c.Insert(0x2000, 0, false)
	c.SpecWrite(0x1000, 4, false)
	c.SpecWrite(0x2000, 7, false)
	addrs := c.DiscardSpecFrom(5) // squash checkpoints >= 5
	if len(addrs) != 1 || addrs[0] != 0x2000 {
		t.Fatalf("squash discard returned %v", addrs)
	}
	if !c.Contains(0x1000) || c.Contains(0x2000) {
		t.Fatal("wrong lines discarded")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two set count did not panic")
		}
	}()
	NewCache("bad", 3*64, 1, 1)
}

// TestLRUMatchesReference checks the cache's hit/miss stream against a
// straightforward reference LRU model over random traffic.
func TestLRUMatchesReference(t *testing.T) {
	c := NewCache("p", 8*64*4, 4, 1) // 8 sets, 4-way
	type key struct{ set, tag uint64 }
	ref := map[uint64][]uint64{} // set -> tags, MRU first
	rnd := uint64(0x12345)
	next := func(n uint64) uint64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd % n
	}
	for i := 0; i < 20_000; i++ {
		addr := next(64) * 64 // 64 distinct lines over 8 sets
		set := (addr / 64) % 8
		tag := addr / 64 / 8
		// Reference lookup.
		tags := ref[set]
		refHit := false
		for j, tg := range tags {
			if tg == tag {
				refHit = true
				copy(tags[1:j+1], tags[:j])
				tags[0] = tag
				break
			}
		}
		hit, _ := c.Lookup(uint64(i), addr)
		if hit != refHit {
			t.Fatalf("access %d addr %#x: cache hit=%v reference=%v", i, addr, hit, refHit)
		}
		if !hit {
			c.Insert(addr, uint64(i), false)
			tags = append([]uint64{tag}, tags...)
			if len(tags) > 4 {
				tags = tags[:4]
			}
			ref[set] = tags
		}
	}
}
