package cachesim

import (
	"fmt"

	"srlproc/internal/isa"
)

// AccessResult reports the outcome of a hierarchy access.
type AccessResult struct {
	Done     uint64 // cycle the data is available / write completes
	Level    int    // 1 = L1 hit, 2 = L2 hit, 3 = memory
	MSHRFull bool   // true if the access could not start (retry later)
}

// Config sizes the hierarchy; zero values take Table 1 defaults via
// DefaultConfig.
type Config struct {
	L1Size     int
	L1Assoc    int
	L1Latency  uint64
	L2Size     int
	L2Assoc    int
	L2Latency  uint64
	MemLatency uint64 // 100ns at 8GHz = 800 cycles
	MSHRs      int    // outstanding line misses to memory
	PrefetchOn bool
	PrefetchN  int // stream slots
	PrefetchD  int // prefetch depth (lines ahead)

	// Far-memory tier (CXL-like memory expansion). FarFrac of cache lines
	// — selected by a deterministic line-address hash, modelling a static
	// capacity split between local DRAM and the far tier — miss to
	// FarLatency instead of MemLatency. FarDegradeAfter (cycles), when
	// non-zero, models a link fail-over/degradation scenario: far accesses
	// issued at or after that cycle pay FarDegradedLatency instead. All
	// zero = no far tier, bit-identical to the pre-existing hierarchy.
	FarFrac            float64
	FarLatency         uint64
	FarDegradeAfter    uint64
	FarDegradedLatency uint64
}

// Validate checks the far-memory knobs for internal consistency.
func (c *Config) Validate() error {
	switch {
	case c.FarFrac < 0 || c.FarFrac > 1:
		return fmt.Errorf("cachesim: FarFrac %v out of range [0,1]", c.FarFrac)
	case c.FarFrac > 0 && c.FarLatency == 0:
		return fmt.Errorf("cachesim: FarFrac %v requires FarLatency > 0", c.FarFrac)
	case c.FarDegradeAfter > 0 && c.FarDegradedLatency == 0:
		return fmt.Errorf("cachesim: FarDegradeAfter requires FarDegradedLatency > 0")
	}
	return nil
}

// DefaultConfig returns the Table 1 memory hierarchy.
func DefaultConfig() Config {
	return Config{
		L1Size: 32 * 1024, L1Assoc: 4, L1Latency: 3,
		L2Size: 1024 * 1024, L2Assoc: 8, L2Latency: 8,
		MemLatency: 800,
		MSHRs:      32,
		PrefetchOn: true, PrefetchN: 16, PrefetchD: 12,
	}
}

// Hierarchy is the two-level data cache plus memory, with an MSHR file that
// merges and bounds outstanding memory misses (this is what creates
// memory-level parallelism, the resource the latency tolerant processor
// exploits) and an optional stream prefetcher.
type Hierarchy struct {
	L1  *Cache
	L2  *Cache
	cfg Config
	pf  *StreamPrefetcher

	// Diagnostics: evictions of low-address (hot region) lines.
	L2EvictHot uint64

	// mshrs maps outstanding miss line address -> fill completion cycle.
	mshrs map[uint64]uint64

	demandMisses   uint64
	memAccesses    uint64
	mshrFullEvents uint64
	prefFills      uint64
	farAccesses    uint64
	farDegraded    uint64
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	h := &Hierarchy{
		L1:    NewCache("L1D", cfg.L1Size, cfg.L1Assoc, cfg.L1Latency),
		L2:    NewCache("L2", cfg.L2Size, cfg.L2Assoc, cfg.L2Latency),
		cfg:   cfg,
		mshrs: make(map[uint64]uint64),
	}
	if cfg.PrefetchOn {
		h.pf = NewStreamPrefetcher(cfg.PrefetchN, cfg.PrefetchD)
	}
	return h
}

// MemAccesses returns demand fetches that went to memory.
func (h *Hierarchy) MemAccesses() uint64 { return h.memAccesses }

// FarAccesses returns memory fetches (demand or prefetch) served by the
// far-memory tier.
func (h *Hierarchy) FarAccesses() uint64 { return h.farAccesses }

// FarDegradedAccesses returns far-tier fetches that paid the degraded
// (post-fail-over) latency.
func (h *Hierarchy) FarDegradedAccesses() uint64 { return h.farDegraded }

// isFarLine deterministically assigns line addresses to the far tier. A
// multiplicative hash spreads the split across regions so FarFrac of any
// workload's footprint — hot, heap, and stream alike — lands far.
func (h *Hierarchy) isFarLine(la uint64) bool {
	if h.cfg.FarFrac <= 0 {
		return false
	}
	hash := (la / isa.CacheLineSize) * 0x9E3779B97F4A7C15
	return hash>>40 < uint64(h.cfg.FarFrac*float64(uint64(1)<<24))
}

// memLatencyFor returns the memory fetch latency for a line at a cycle,
// routing far-tier lines to the (possibly degraded) far latency.
func (h *Hierarchy) memLatencyFor(cycle, la uint64) uint64 {
	if !h.isFarLine(la) {
		return h.cfg.MemLatency
	}
	h.farAccesses++
	if h.cfg.FarDegradeAfter > 0 && cycle >= h.cfg.FarDegradeAfter {
		h.farDegraded++
		return h.cfg.FarDegradedLatency
	}
	return h.cfg.FarLatency
}

// DemandMisses returns demand (non-prefetch) misses to memory.
func (h *Hierarchy) DemandMisses() uint64 { return h.demandMisses }

// MSHRFullEvents returns how many accesses were rejected for lack of MSHRs.
func (h *Hierarchy) MSHRFullEvents() uint64 { return h.mshrFullEvents }

// PrefetchIssued returns prefetch lines requested.
func (h *Hierarchy) PrefetchIssued() uint64 {
	if h.pf == nil {
		return 0
	}
	return h.pf.Issued()
}

// EarliestPendingFill returns the earliest MSHR fill-completion cycle
// strictly after the given cycle, and whether one exists. It is a pure
// read for the core's cycle-skip event computation: unlike the access
// path it never prunes the MSHR map, so calling it cannot perturb later
// MSHR-occupancy decisions. The answer is conservative — a fill already
// merged into an L1 line resolves through the completion heap instead —
// but every cycle it names is a cycle at which memory state can change.
func (h *Hierarchy) EarliestPendingFill(cycle uint64) (uint64, bool) {
	best := ^uint64(0)
	ok := false
	for _, done := range h.mshrs {
		if done > cycle && done < best {
			best = done
			ok = true
		}
	}
	return best, ok
}

func (h *Hierarchy) pruneMSHRs(cycle uint64) {
	if len(h.mshrs) == 0 {
		return
	}
	for a, done := range h.mshrs {
		if done <= cycle {
			delete(h.mshrs, a)
		}
	}
}

// Access performs a demand read (write=false) or write (write=true) of addr
// at the given cycle. Writes are write-allocate: a missing line is fetched
// then dirtied. Level reports where the data was found.
func (h *Hierarchy) Access(cycle, addr uint64, write bool) AccessResult {
	la := isa.LineAddr(addr)
	if hit, ready := h.L1.Lookup(cycle, addr); hit {
		if write {
			h.L1.MarkDirty(addr)
		}
		return AccessResult{Done: ready, Level: 1}
	}
	// L1 miss: consult prefetcher on the demand miss stream.
	if h.pf != nil {
		for _, pl := range h.pf.OnMiss(addr, cycle) {
			h.prefetchLine(cycle, pl)
		}
	}
	if hit, ready := h.L2.Lookup(cycle, addr); hit {
		// Fill L1 from L2.
		done := ready + h.cfg.L1Latency
		h.fillL1(la, done, write)
		return AccessResult{Done: done, Level: 2}
	}
	// Memory access, merged through the MSHR file. Prune completed fills
	// first: an entry whose fill cycle has passed no longer occupies an
	// MSHR, and counting it against the cap would reject admissible
	// accesses (spurious MSHRFull retries).
	h.pruneMSHRs(cycle)
	if done, ok := h.mshrs[la]; ok {
		d := done + h.cfg.L1Latency
		h.fillL1(la, d, write)
		return AccessResult{Done: d, Level: 3}
	}
	if len(h.mshrs) >= h.cfg.MSHRs {
		h.mshrFullEvents++
		return AccessResult{MSHRFull: true}
	}
	h.demandMisses++
	h.memAccesses++
	fill := cycle + h.memLatencyFor(cycle, la)
	h.mshrs[la] = fill
	if ev := h.L2.Insert(la, fill, false); ev.Valid && ev.Addr < 0x4000_0000 {
		h.L2EvictHot++
	}
	done := fill + h.cfg.L1Latency
	h.fillL1(la, done, write)
	return AccessResult{Done: done, Level: 3}
}

func (h *Hierarchy) fillL1(la, ready uint64, dirty bool) {
	ev := h.L1.Insert(la, ready, dirty)
	if ev.Valid {
		// Victim path: dirty lines write back; clean victims also refresh
		// the L2 copy (pseudo-inclusive — long-L1-resident lines would
		// otherwise silently LRU out of L2 and re-miss to memory).
		h.L2.Insert(ev.Addr, ready, ev.Dirty)
	}
}

// DiscardSpecInto invalidates speculative L1 lines selected by which
// ("from"/"temp"/"all") and re-registers their pre-store architectural data
// in L2 (the committed copy was written back before the speculative
// overwrite). Returns the number of lines discarded.
func (h *Hierarchy) DiscardSpecInto(cycle uint64, addrs []uint64) int {
	for _, a := range addrs {
		h.L2.Insert(a, cycle, false)
	}
	return len(addrs)
}

func (h *Hierarchy) prefetchLine(cycle, addr uint64) {
	la := isa.LineAddr(addr)
	if h.L2.Contains(la) {
		return
	}
	h.pruneMSHRs(cycle)
	if _, ok := h.mshrs[la]; ok {
		return
	}
	if len(h.mshrs) >= h.cfg.MSHRs {
		return // prefetches never steal the last MSHRs
	}
	h.memAccesses++
	h.prefFills++
	fill := cycle + h.memLatencyFor(cycle, la)
	h.mshrs[la] = fill
	h.L2.Insert(la, fill, false)
}

// WouldMissToMemory probes (without side effects) whether a read of addr
// at cycle would have to go to DRAM: nothing cached and no miss already in
// flight. An MSHR entry whose fill cycle has passed is a completed miss,
// not an in-flight one — it merely hasn't been garbage-collected yet — so
// it must not suppress the answer (the probe is side-effect-free and
// cannot prune the file itself).
func (h *Hierarchy) WouldMissToMemory(cycle, addr uint64) bool {
	la := isa.LineAddr(addr)
	if h.L1.Contains(la) || h.L2.Contains(la) {
		return false
	}
	done, pending := h.mshrs[la]
	return !(pending && done > cycle)
}

// ProbeState classifies a line's current residence for diagnostics:
// "l1", "l2", "mshr", or "cold".
func (h *Hierarchy) ProbeState(addr uint64) string {
	la := isa.LineAddr(addr)
	if h.L1.Contains(la) {
		return "l1"
	}
	if h.L2.Contains(la) {
		return "l2"
	}
	if _, ok := h.mshrs[la]; ok {
		return "mshr"
	}
	return "cold"
}

// Snoop invalidates addr's line in both levels (an external store took
// ownership). Returns whether any level held the line.
func (h *Hierarchy) Snoop(addr uint64) bool {
	la := isa.LineAddr(addr)
	p1, _ := h.L1.Invalidate(la)
	p2, _ := h.L2.Invalidate(la)
	return p1 || p2
}
